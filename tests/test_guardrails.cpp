// Degenerate-input edge cases through the solve() facade: structured errors
// up front, or a clean converged run with the guardrails doing the work.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>

#include "parpp/solver/solver.hpp"
#include "parpp/tensor/coo_tensor.hpp"
#include "parpp/tensor/csf_tensor.hpp"
#include "parpp/util/common.hpp"
#include "test_util.hpp"

namespace parpp {
namespace {

TEST(Guardrails, ZeroDenseTensorRejected) {
  const tensor::DenseTensor t({6, 6, 6});  // all zeros
  solver::SolverSpec spec;
  spec.rank = 3;
  try {
    (void)parpp::solve(t, spec);
    FAIL() << "zero tensor accepted";
  } catch (const parpp::error& e) {
    EXPECT_NE(std::string(e.what()).find("identically zero"),
              std::string::npos)
        << e.what();
  }
}

TEST(Guardrails, ZeroSparseTensorRejected) {
  const tensor::CooTensor coo({5, 4, 3});  // no nonzeros
  const tensor::CsfTensor t(coo);
  solver::SolverSpec spec;
  spec.rank = 2;
  spec.engine = core::EngineKind::kSparse;
  EXPECT_THROW((void)parpp::solve(t, spec), parpp::error);
}

TEST(Guardrails, NonFiniteTensorRejected) {
  tensor::DenseTensor t = test::random_tensor({5, 5, 5}, 11);
  t.data()[7] = std::numeric_limits<double>::quiet_NaN();
  solver::SolverSpec spec;
  spec.rank = 2;
  try {
    (void)parpp::solve(t, spec);
    FAIL() << "non-finite tensor accepted";
  } catch (const parpp::error& e) {
    EXPECT_NE(std::string(e.what()).find("non-finite Frobenius norm"),
              std::string::npos)
        << e.what();
  }
}

TEST(Guardrails, RankAboveSmallestModeConverges) {
  // rank 8 > smallest extent 4: the Grams are structurally singular, so
  // every solve leans on the ridge/pinv guardrails — and still converges.
  const tensor::DenseTensor t = test::low_rank_tensor({6, 5, 4}, 2, 12);
  solver::SolverSpec spec;
  spec.rank = 8;
  spec.stopping.max_sweeps = 40;
  const solver::SolveReport report = parpp::solve(t, spec);
  EXPECT_TRUE(std::isfinite(report.fitness));
  EXPECT_GT(report.fitness, 0.99);
  for (const la::Matrix& f : report.factors) EXPECT_TRUE(f.all_finite());
  // Singular Grams are expected to trip the guardrail; whatever fired must
  // be in the log.
  if (report.status != core::SolveStatus::kOk) {
    EXPECT_FALSE(report.recovery_log.empty());
  }
}

TEST(Guardrails, RankAboveSmallestModeConvergesParallel) {
  const tensor::DenseTensor t = test::low_rank_tensor({8, 6, 4}, 2, 13);
  solver::SolverSpec spec;
  spec.rank = 6;
  spec.stopping.max_sweeps = 40;
  spec.execution = solver::Execution::simulated_parallel(4);
  const solver::SolveReport report = parpp::solve(t, spec);
  EXPECT_TRUE(std::isfinite(report.fitness));
  EXPECT_GT(report.fitness, 0.99);
  EXPECT_NE(report.stop_reason, solver::StopReason::kFault);
}

TEST(Guardrails, AllZeroInitialFactorHandled) {
  // A zero warm-start factor zeroes every MTTKRP against it; the Gram-solve
  // guardrails keep the sweep finite and the run terminates cleanly instead
  // of spraying NaNs.
  const tensor::DenseTensor t = test::low_rank_tensor({8, 7, 6}, 3, 14);
  solver::SolverSpec spec;
  spec.rank = 3;
  spec.stopping.max_sweeps = 20;
  spec.initial_factors = test::random_factors({8, 7, 6}, 3, 15);
  spec.initial_factors[1] = la::Matrix(7, 3);  // all zeros
  const solver::SolveReport report = parpp::solve(t, spec);
  EXPECT_TRUE(std::isfinite(report.fitness));
  for (const la::Matrix& f : report.factors) EXPECT_TRUE(f.all_finite());
  EXPECT_NE(report.status, core::SolveStatus::kCommAbort);
}

TEST(Guardrails, FaultPlanRequiresParallelExecution) {
  const tensor::DenseTensor t = test::low_rank_tensor({6, 6, 6}, 2, 16);
  solver::SolverSpec spec;
  spec.rank = 2;
  spec.execution.fault.kind = mpsim::FaultKind::kDelay;
  try {
    (void)parpp::solve(t, spec);
    FAIL() << "fault plan on sequential execution accepted";
  } catch (const parpp::error& e) {
    EXPECT_NE(std::string(e.what()).find("parallel execution"),
              std::string::npos)
        << e.what();
  }
}

TEST(Guardrails, StatusStringsRoundTrip) {
  using core::SolveStatus;
  EXPECT_EQ(solver::to_string(SolveStatus::kOk), "ok");
  EXPECT_EQ(solver::to_string(SolveStatus::kRecovered), "recovered");
  EXPECT_EQ(solver::to_string(SolveStatus::kNumericalAbort),
            "numerical-abort");
  EXPECT_EQ(solver::to_string(SolveStatus::kCommAbort), "comm-abort");
  EXPECT_EQ(solver::to_string(solver::StopReason::kFault), "fault");
  for (const auto kind :
       {mpsim::FaultKind::kNone, mpsim::FaultKind::kDelay,
        mpsim::FaultKind::kTimeout, mpsim::FaultKind::kRankAbort,
        mpsim::FaultKind::kCorruption}) {
    const auto parsed = solver::fault_kind_from_string(
        solver::to_string(kind));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, kind);
  }
  EXPECT_FALSE(solver::fault_kind_from_string("segfault").has_value());
}

}  // namespace
}  // namespace parpp
