// PP-accelerated nonnegative HALS: the new PP x NNCP cell of the solver
// matrix (sequential + parallel drivers).
#include <gtest/gtest.h>

#include <cmath>

#include "parpp/core/pp_nncp.hpp"
#include "parpp/data/collinearity.hpp"
#include "parpp/par/par_pp.hpp"
#include "test_util.hpp"

namespace parpp::core {
namespace {

TEST(PpNncp, RecoversNonnegativeLowRank) {
  const auto t = test::low_rank_tensor({10, 9, 8}, 3, 1601);
  CpOptions opt;
  opt.rank = 3;
  opt.max_sweeps = 200;
  opt.tol = 1e-9;
  PpOptions pp;
  pp.pp_tol = 0.3;
  const CpResult r = pp_nncp_hals(t, opt, pp);
  EXPECT_GT(r.fitness, 0.99);
}

TEST(PpNncp, FactorsStayNonnegative) {
  // Even PP-approximated MTTKRPs feed through the projected HALS update,
  // so feasibility survives the approximation.
  const auto t = test::random_tensor({8, 7, 6}, 1602);
  CpOptions opt;
  opt.rank = 4;
  opt.max_sweeps = 60;
  opt.tol = 0.0;
  PpOptions pp;
  pp.pp_tol = 0.5;
  const CpResult r = pp_nncp_hals(t, opt, pp);
  EXPECT_GT(r.num_pp_approx, 0) << "PP must engage for this test to bite";
  for (const auto& a : r.factors) {
    for (index_t i = 0; i < a.rows(); ++i)
      for (index_t j = 0; j < a.cols(); ++j) EXPECT_GE(a(i, j), 0.0);
  }
}

TEST(PpNncp, UsesPpSweepsOnCollinearityAtEqualFitness) {
  // Acceptance criterion: on the collinearity dataset PP-NNCP reaches the
  // same final fitness as plain NNCP-HALS (within 1e-3) with fewer regular
  // sweeps — the PP-approximated sweeps replace them.
  const auto gen =
      data::make_collinear_tensor({20, 20, 20}, 8, 0.5, 0.9, 1603, 1e-3);
  CpOptions opt;
  opt.rank = 8;
  opt.max_sweeps = 300;
  opt.tol = 1e-5;
  const CpResult plain = nncp_hals(gen.tensor, opt);
  PpOptions pp;
  pp.pp_tol = 0.2;
  const CpResult accel = pp_nncp_hals(gen.tensor, opt, pp);
  EXPECT_NEAR(accel.fitness, plain.fitness, 1e-3);
  EXPECT_GT(accel.num_pp_approx, 0);
  EXPECT_LT(accel.num_als_sweeps, plain.num_als_sweeps)
      << "PP must replace regular sweeps, not add to them";
}

TEST(PpNncp, ResidualMatchesExplicit) {
  const auto t = test::low_rank_tensor({8, 7, 6}, 2, 1604);
  CpOptions opt;
  opt.rank = 2;
  opt.max_sweeps = 80;
  opt.tol = 1e-8;
  const CpResult r = pp_nncp_hals(t, opt);
  EXPECT_NEAR(test::explicit_residual(t, r.factors), r.residual, 1e-6);
}

TEST(PpNncp, ParallelMatchesSequentialFitness) {
  const auto t = test::low_rank_tensor({8, 8, 8}, 3, 1605);
  CpOptions opt;
  opt.rank = 3;
  opt.max_sweeps = 60;
  opt.tol = 1e-8;
  PpOptions pp;
  pp.pp_tol = 0.3;
  const CpResult seq = pp_nncp_hals(t, opt, pp);

  par::ParPpNncpOptions popt;
  popt.par.base = opt;
  popt.par.grid_dims = {1, 2, 2};
  popt.pp = pp;
  const par::ParResult par = par::par_pp_nncp_hals(t, 4, popt);
  // The distributed HALS update is row-exact; PP phase entry depends on
  // norm comparisons whose reduction order differs, so allow small drift.
  EXPECT_NEAR(par.fitness, seq.fitness, 5e-3);
  for (const auto& a : par.factors) {
    for (index_t i = 0; i < a.rows(); ++i)
      for (index_t j = 0; j < a.cols(); ++j) EXPECT_GE(a(i, j), 0.0);
  }
}

}  // namespace
}  // namespace parpp::core
