// Sparse MTTKRP (COO and CSF paths) vs the dense fused reference, plus
// workspace/allocation behavior of the sparse engine.
#include <gtest/gtest.h>

#include <vector>

#include "parpp/core/sparse_engine.hpp"
#include "parpp/data/sparse_synthetic.hpp"
#include "parpp/tensor/csf_tensor.hpp"
#include "parpp/tensor/mttkrp_fused.hpp"
#include "parpp/tensor/mttkrp_sparse.hpp"
#include "test_util.hpp"

namespace parpp {
namespace {

/// Property: on the densified tensor, both sparse paths must match the
/// dense fused kernel for every mode.
void expect_sparse_matches_dense(const tensor::CooTensor& coo,
                                 index_t rank, std::uint64_t seed) {
  const tensor::CsfTensor csf(coo);
  const tensor::DenseTensor dense = coo.densify();
  const auto factors = test::random_factors(coo.shape(), rank, seed);
  for (int mode = 0; mode < coo.order(); ++mode) {
    const la::Matrix ref = tensor::mttkrp_fused(dense, factors, mode);
    test::expect_matrix_near(tensor::mttkrp_coo(coo, factors, mode), ref,
                             1e-10, "COO vs dense fused");
    test::expect_matrix_near(tensor::mttkrp_csf(csf, factors, mode), ref,
                             1e-10, "CSF vs dense fused");
  }
}

TEST(MttkrpSparse, MatchesDenseFusedOrders3To5AllModes) {
  expect_sparse_matches_dense(
      data::make_sparse_random({9, 8, 7}, 0.15, 5), 6, 105);
  expect_sparse_matches_dense(
      data::make_sparse_random({7, 5, 4, 6}, 0.08, 6), 5, 106);
  expect_sparse_matches_dense(
      data::make_sparse_random({5, 4, 3, 4, 5}, 0.05, 7), 4, 107);
}

TEST(MttkrpSparse, Order2MatchesDenseFused) {
  expect_sparse_matches_dense(data::make_sparse_random({12, 9}, 0.2, 8), 5,
                              108);
}

TEST(MttkrpSparse, DuplicateCooInputCoalesces) {
  // Push every entry of a random sparse tensor twice, in scrambled order,
  // plus some explicit zeros; after coalesce() the MTTKRP must equal the
  // dense reference of the doubled tensor.
  const tensor::CooTensor base = data::make_sparse_random({8, 6, 7}, 0.1, 9);
  tensor::CooTensor doubled(base.shape());
  std::vector<index_t> tuple(3);
  for (index_t pass = 0; pass < 2; ++pass) {
    for (index_t e = base.nnz(); e-- > 0;) {
      for (int m = 0; m < 3; ++m) tuple[static_cast<std::size_t>(m)] =
          base.index(e, m);
      doubled.push(tuple, base.value(e));
    }
  }
  tuple = {0, 0, 0};
  doubled.push(tuple, 0.0);  // explicit zero entry
  doubled.coalesce();
  expect_sparse_matches_dense(doubled, 5, 109);

  // And the coalesced values really are the sums.
  const tensor::DenseTensor dd = doubled.densify();
  const tensor::DenseTensor bd = base.densify();
  for (index_t i = 0; i < dd.size(); ++i)
    EXPECT_NEAR(dd[i], 2.0 * bd[i], 1e-14);
}

TEST(MttkrpSparse, ExactlyLowRankTensorAllModes) {
  // Structured (blocky) sparsity exercises skewed fiber trees.
  const auto gen = data::make_sparse_lowrank({10, 8, 9, 7}, 3, 0.02, 23);
  expect_sparse_matches_dense(gen.tensor, 4, 110);
}

TEST(MttkrpSparse, CsfIntoSteadyStateIsAllocationFree) {
  const tensor::CooTensor coo = data::make_sparse_random({16, 15, 14}, 0.05, 4);
  const tensor::CsfTensor csf(coo);
  const auto factors = test::random_factors(coo.shape(), 8, 42);

  util::KernelWorkspace ws;
  la::Matrix out;
  for (int mode = 0; mode < 3; ++mode)
    tensor::mttkrp_csf_into(csf, factors, mode, out, nullptr, &ws);
  const std::size_t bytes = ws.total_bytes();
  const std::size_t allocs = ws.allocation_count();
  for (int sweep = 0; sweep < 5; ++sweep) {
    for (int mode = 0; mode < 3; ++mode)
      tensor::mttkrp_csf_into(csf, factors, mode, out, nullptr, &ws);
  }
  EXPECT_EQ(ws.total_bytes(), bytes);
  EXPECT_EQ(ws.allocation_count(), allocs);
}

TEST(SparseEngine, MatchesKernelAndNeverApproachesDenseFootprint) {
  const tensor::CooTensor coo = data::make_sparse_random({32, 30, 28}, 0.02, 13);
  const tensor::CsfTensor csf(coo);
  auto factors = test::random_factors(coo.shape(), 10, 77);

  core::SparseEngine engine(csf, factors, nullptr);
  EXPECT_EQ(engine.name(), "sparse");
  for (int mode = 0; mode < 3; ++mode) {
    test::expect_matrix_near(engine.mttkrp(mode),
                             tensor::mttkrp_csf(csf, factors, mode), 0.0,
                             "engine vs kernel");
    engine.notify_update(mode);
  }

  // The no-densification guarantee, as counters: the engine's arena holds
  // only per-thread accumulator scratch — far below the densified tensor —
  // and steady-state sweeps stop touching the allocator entirely.
  const std::size_t bytes = engine.workspace().total_bytes();
  const std::size_t allocs = engine.workspace().allocation_count();
  const std::size_t dense_bytes =
      static_cast<std::size_t>(32 * 30 * 28) * sizeof(double);
  EXPECT_LT(bytes, dense_bytes / 4);
  for (int sweep = 0; sweep < 5; ++sweep)
    for (int mode = 0; mode < 3; ++mode) (void)engine.mttkrp(mode);
  EXPECT_EQ(engine.workspace().total_bytes(), bytes);
  EXPECT_EQ(engine.workspace().allocation_count(), allocs);
}

TEST(SparseEngine, DenseFactoryRejectsSparseKind) {
  const tensor::DenseTensor dense = test::random_tensor({4, 4, 4}, 3);
  const auto factors = test::random_factors(dense.shape(), 3, 4);
  EXPECT_THROW((void)core::make_engine(core::EngineKind::kSparse, dense,
                                       factors),
               parpp::error);
}

TEST(SparseEngine, CsfFactoryResolvesEveryKindToSparse) {
  const tensor::CooTensor coo = data::make_sparse_random({6, 5, 7}, 0.1, 2);
  const tensor::CsfTensor csf(coo);
  const auto factors = test::random_factors(coo.shape(), 4, 5);
  for (core::EngineKind kind :
       {core::EngineKind::kNaive, core::EngineKind::kDt,
        core::EngineKind::kMsdt, core::EngineKind::kSparse}) {
    const auto engine = core::make_engine(kind, csf, factors);
    EXPECT_EQ(engine->name(), "sparse");
  }
}

}  // namespace
}  // namespace parpp
