// Checkpoint/restart: serialization round-trips, crash consistency, and
// resume parity with the uninterrupted run through the solve() facade.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "parpp/solver/solver.hpp"
#include "parpp/util/common.hpp"
#include "parpp/util/rng.hpp"
#include "parpp/util/serialize.hpp"
#include "test_util.hpp"

namespace parpp {
namespace {

[[nodiscard]] io::CheckpointState sample_state() {
  io::CheckpointState ck;
  ck.factors = {test::random_matrix(5, 3, 1), test::random_matrix(4, 3, 2)};
  ck.sweep = 17;
  ck.fitness = 0.875;
  ck.prev_fitness = 0.5;
  ck.residual = 0.125;
  ck.seed = 99;
  ck.rng_state = Rng(99).state();
  ck.written_ranks = 4;
  return ck;
}

void expect_state_eq(const io::CheckpointState& a,
                     const io::CheckpointState& b) {
  ASSERT_EQ(a.factors.size(), b.factors.size());
  for (std::size_t m = 0; m < a.factors.size(); ++m)
    EXPECT_EQ(a.factors[m].max_abs_diff(b.factors[m]), 0.0);
  EXPECT_EQ(a.sweep, b.sweep);
  EXPECT_EQ(a.fitness, b.fitness);
  EXPECT_EQ(a.prev_fitness, b.prev_fitness);
  EXPECT_EQ(a.residual, b.residual);
  EXPECT_EQ(a.seed, b.seed);
  EXPECT_EQ(a.rng_state, b.rng_state);
  EXPECT_EQ(a.written_ranks, b.written_ranks);
}

[[nodiscard]] std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + name;
}

TEST(Checkpoint, StreamRoundTrip) {
  const io::CheckpointState ck = sample_state();
  std::stringstream ss;
  io::save_checkpoint(ss, ck);
  expect_state_eq(ck, io::load_checkpoint(ss));
}

TEST(Checkpoint, FileRoundTripLeavesNoTmpResidue) {
  const std::string path = temp_path("parpp_ck_roundtrip.bin");
  const io::CheckpointState ck = sample_state();
  io::save_checkpoint_file(path, ck);
  expect_state_eq(ck, io::load_checkpoint_file(path));
  // Crash consistency: the temp file is renamed over the target, never left.
  EXPECT_FALSE(std::ifstream(path + ".tmp").good());
  std::remove(path.c_str());
}

TEST(Checkpoint, GarbageFileRejected) {
  const std::string path = temp_path("parpp_ck_garbage.bin");
  {
    std::ofstream os(path, std::ios::binary);
    os << "definitely not a checkpoint";
  }
  EXPECT_THROW((void)io::load_checkpoint_file(path), parpp::error);
  std::remove(path.c_str());
}

TEST(Checkpoint, TruncatedFileRejected) {
  const std::string full = temp_path("parpp_ck_full.bin");
  const std::string cut = temp_path("parpp_ck_cut.bin");
  io::save_checkpoint_file(full, sample_state());
  std::ifstream is(full, std::ios::binary);
  std::stringstream buf;
  buf << is.rdbuf();
  const std::string bytes = buf.str();
  {
    std::ofstream os(cut, std::ios::binary);
    os.write(bytes.data(), static_cast<std::streamsize>(bytes.size() / 2));
  }
  EXPECT_THROW((void)io::load_checkpoint_file(cut), parpp::error);
  std::remove(full.c_str());
  std::remove(cut.c_str());
}

TEST(Checkpoint, MissingFileRejected) {
  EXPECT_THROW((void)io::load_checkpoint_file("/nonexistent/parpp_ck.bin"),
               parpp::error);
}

// A version-1 stream (no written_ranks field) must still load: splice the
// 4-byte rank count out of a fresh v2 stream and patch the version field.
TEST(Checkpoint, V1StreamStillLoads) {
  io::CheckpointState ck = sample_state();
  std::stringstream v2;
  io::save_checkpoint(v2, ck);
  std::string bytes = v2.str();
  // Layout: magic[8], u32 version, i32 sweep, i32 written_ranks, ...
  const std::uint32_t v1 = 1;
  bytes.replace(8, 4, reinterpret_cast<const char*>(&v1), 4);
  bytes.erase(16, 4);  // drop written_ranks
  std::stringstream is(bytes);
  io::CheckpointState loaded = io::load_checkpoint(is);
  ck.written_ranks = 0;  // pre-v2 files report "unknown"
  expect_state_eq(ck, loaded);
}

// --- facade resume ---------------------------------------------------------

[[nodiscard]] solver::SolverSpec base_spec(int max_sweeps) {
  solver::SolverSpec spec;
  spec.rank = 4;
  spec.seed = 7;
  spec.stopping.max_sweeps = max_sweeps;
  spec.stopping.fitness_tol = 1e-14;  // force the full sweep budget
  return spec;
}

TEST(Checkpoint, SequentialResumeMatchesUninterrupted) {
  const tensor::DenseTensor t = test::random_tensor({14, 12, 10}, 3);
  const std::string path = temp_path("parpp_ck_seq.bin");
  std::remove(path.c_str());

  const solver::SolveReport whole = parpp::solve(t, base_spec(10));

  solver::SolverSpec first = base_spec(5);
  first.checkpoint.path = path;
  first.checkpoint.every = 1;
  (void)parpp::solve(t, first);

  solver::SolverSpec second = base_spec(10);
  second.checkpoint.path = path;
  second.checkpoint.resume = true;
  const solver::SolveReport resumed = parpp::solve(t, second);

  EXPECT_EQ(resumed.sweeps, whole.sweeps);
  // The MSDT engine rebuilds its contraction tree on warm start, so the
  // resumed sweeps associate the same sums in a different order: parity is
  // a couple of ulps, far inside the 1e-10 the restart contract promises.
  EXPECT_NEAR(resumed.fitness, whole.fitness, 1e-12);
  ASSERT_EQ(resumed.factors.size(), whole.factors.size());
  for (std::size_t m = 0; m < whole.factors.size(); ++m)
    EXPECT_LE(resumed.factors[m].max_abs_diff(whole.factors[m]), 1e-12);
  std::remove(path.c_str());
}

TEST(Checkpoint, ParallelResumeMatchesUninterrupted) {
  const tensor::DenseTensor t = test::random_tensor({12, 12, 8}, 4);
  const std::string path = temp_path("parpp_ck_par.bin");
  std::remove(path.c_str());

  solver::SolverSpec whole_spec = base_spec(8);
  whole_spec.execution = solver::Execution::simulated_parallel(4);
  const solver::SolveReport whole = parpp::solve(t, whole_spec);

  solver::SolverSpec first = base_spec(4);
  first.execution = solver::Execution::simulated_parallel(4);
  first.checkpoint.path = path;
  first.checkpoint.every = 2;
  (void)parpp::solve(t, first);

  solver::SolverSpec second = base_spec(8);
  second.execution = solver::Execution::simulated_parallel(4);
  second.checkpoint.path = path;
  second.checkpoint.resume = true;
  const solver::SolveReport resumed = parpp::solve(t, second);

  EXPECT_EQ(resumed.sweeps, whole.sweeps);
  EXPECT_NEAR(resumed.fitness, whole.fitness, 1e-12);
  ASSERT_EQ(resumed.factors.size(), whole.factors.size());
  for (std::size_t m = 0; m < whole.factors.size(); ++m)
    EXPECT_LE(resumed.factors[m].max_abs_diff(whole.factors[m]), 1e-12);
  std::remove(path.c_str());
}

// The checkpoint stores GLOBAL factors, so it is rank-count-agnostic: a
// run checkpointed at 4 ranks resumes on fewer (the cold-path complement
// of elastic shrink: the machine came back smaller) or more ranks, and
// every resume reaches the uninterrupted run's fitness.
TEST(Checkpoint, CrossRankResumeRepartitions) {
  const tensor::DenseTensor t = test::random_tensor({12, 12, 8}, 4);
  const std::string path = temp_path("parpp_ck_xrank.bin");
  std::remove(path.c_str());

  solver::SolverSpec whole_spec = base_spec(8);
  whole_spec.execution = solver::Execution::simulated_parallel(4);
  const solver::SolveReport whole = parpp::solve(t, whole_spec);

  solver::SolverSpec first = base_spec(4);
  first.execution = solver::Execution::simulated_parallel(4);
  first.checkpoint.path = path;
  first.checkpoint.every = 2;
  (void)parpp::solve(t, first);

  // The file records who wrote it.
  EXPECT_EQ(io::load_checkpoint_file(path).written_ranks, 4);

  for (const int resume_ranks : {2, 6, 7}) {
    SCOPED_TRACE("resume on " + std::to_string(resume_ranks) + " ranks");
    solver::SolverSpec second = base_spec(8);
    second.execution = solver::Execution::simulated_parallel(resume_ranks);
    second.checkpoint.path = path;
    second.checkpoint.resume = true;
    const solver::SolveReport resumed = parpp::solve(t, second);
    EXPECT_EQ(resumed.sweeps, whole.sweeps);
    EXPECT_NEAR(resumed.fitness, whole.fitness, 1e-12);
  }
  std::remove(path.c_str());
}

TEST(Checkpoint, ResumePastExhaustedBudgetReturnsCheckpoint) {
  const tensor::DenseTensor t = test::random_tensor({10, 10, 10}, 5);
  const std::string path = temp_path("parpp_ck_exhausted.bin");
  std::remove(path.c_str());

  solver::SolverSpec first = base_spec(6);
  first.checkpoint.path = path;
  first.checkpoint.every = 1;
  const solver::SolveReport before = parpp::solve(t, first);

  // The checkpoint (sweep 6) already covers a 4-sweep budget: nothing runs,
  // the checkpointed state comes back as-is.
  solver::SolverSpec second = base_spec(4);
  second.checkpoint.path = path;
  second.checkpoint.resume = true;
  const solver::SolveReport resumed = parpp::solve(t, second);

  EXPECT_EQ(resumed.sweeps, 6);
  EXPECT_EQ(resumed.stop_reason, solver::StopReason::kMaxSweeps);
  EXPECT_EQ(resumed.fitness, before.fitness);
  ASSERT_EQ(resumed.factors.size(), before.factors.size());
  for (std::size_t m = 0; m < before.factors.size(); ++m)
    EXPECT_EQ(resumed.factors[m].max_abs_diff(before.factors[m]), 0.0);
  std::remove(path.c_str());
}

TEST(Checkpoint, ResumeWithoutFileColdStarts) {
  const tensor::DenseTensor t = test::random_tensor({10, 10, 10}, 6);
  const std::string path = temp_path("parpp_ck_never_written.bin");
  std::remove(path.c_str());

  const solver::SolveReport cold = parpp::solve(t, base_spec(5));

  // resume with no checkpoint on disk (the previous run "died" before its
  // first checkpoint) must behave exactly like a cold start.
  solver::SolverSpec spec = base_spec(5);
  spec.checkpoint.path = path;
  spec.checkpoint.every = 2;
  spec.checkpoint.resume = true;
  const solver::SolveReport resumed = parpp::solve(t, spec);

  EXPECT_EQ(resumed.sweeps, cold.sweeps);
  EXPECT_EQ(resumed.fitness, cold.fitness);
  std::remove(path.c_str());
}

TEST(Checkpoint, ResumeWithoutPathRejected) {
  const tensor::DenseTensor t = test::random_tensor({8, 8, 8}, 7);
  solver::SolverSpec spec = base_spec(5);
  spec.checkpoint.resume = true;
  EXPECT_THROW((void)parpp::solve(t, spec), parpp::error);
}

TEST(Checkpoint, PpResumeCompletes) {
  // PP checkpoints land after exact sweeps only, so a resumed PP run
  // restarts cleanly in exact mode (operator state is rebuilt, not saved);
  // fitness parity with the uninterrupted run is approximate, not bitwise.
  const tensor::DenseTensor t = test::low_rank_tensor({16, 14, 12}, 4, 8);
  const std::string path = temp_path("parpp_ck_pp.bin");
  std::remove(path.c_str());

  solver::SolverSpec first = base_spec(6);
  first.method = solver::Method::kPp;
  first.checkpoint.path = path;
  first.checkpoint.every = 1;
  (void)parpp::solve(t, first);
  ASSERT_TRUE(std::ifstream(path).good());

  solver::SolverSpec second = base_spec(30);
  second.method = solver::Method::kPp;
  second.stopping.fitness_tol = 1e-8;
  second.checkpoint.path = path;
  second.checkpoint.resume = true;
  const solver::SolveReport resumed = parpp::solve(t, second);

  EXPECT_EQ(resumed.status, core::SolveStatus::kOk);
  EXPECT_GT(resumed.fitness, 0.99);
  EXPECT_GT(resumed.sweeps, 6);
  std::remove(path.c_str());
}

TEST(Checkpoint, SavedStateCarriesRngProvenance) {
  const tensor::DenseTensor t = test::random_tensor({10, 10, 10}, 9);
  const std::string path = temp_path("parpp_ck_prov.bin");
  std::remove(path.c_str());

  solver::SolverSpec spec = base_spec(4);
  spec.seed = 123;
  spec.checkpoint.path = path;
  spec.checkpoint.every = 2;
  (void)parpp::solve(t, spec);

  const io::CheckpointState ck = io::load_checkpoint_file(path);
  EXPECT_EQ(ck.seed, 123u);
  EXPECT_EQ(ck.rng_state, Rng(123).state());
  EXPECT_EQ(ck.sweep, 4);
  EXPECT_FALSE(std::ifstream(path + ".tmp").good());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace parpp
