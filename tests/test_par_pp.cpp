#include <gtest/gtest.h>

#include <cmath>

#include "parpp/data/collinearity.hpp"
#include "parpp/par/par_pp.hpp"
#include "parpp/par/ref_pp.hpp"
#include "test_util.hpp"

namespace parpp::par {
namespace {

TEST(ParPp, ConvergesOnLowRankTensor) {
  const auto t = test::low_rank_tensor({8, 8, 8}, 3, 901);
  ParPpOptions opt;
  opt.par.base.rank = 3;
  opt.par.base.max_sweeps = 120;
  opt.par.base.tol = 1e-9;
  opt.par.grid_dims = {2, 2, 2};
  opt.par.local_engine = core::EngineKind::kMsdt;
  opt.pp.pp_tol = 0.1;
  const ParResult r = par_pp_cp_als(t, 8, opt);
  EXPECT_GT(r.fitness, 0.999);
}

TEST(ParPp, TracksSequentialPpFitness) {
  const auto gen =
      data::make_collinear_tensor({12, 12, 12}, 3, 0.7, 0.8, 902);
  core::CpOptions base;
  base.rank = 3;
  base.max_sweeps = 60;
  base.tol = 1e-8;
  core::PpOptions pp;
  pp.pp_tol = 0.3;
  const core::CpResult seq = core::pp_cp_als(gen.tensor, base, pp);

  ParPpOptions opt;
  opt.par.base = base;
  opt.par.grid_dims = {2, 2, 1};
  opt.pp = pp;
  const ParResult par = par_pp_cp_als(gen.tensor, 4, opt);
  // PP phase entry depends on norm comparisons that are identical in exact
  // arithmetic; allow small drift from reduction-order round-off.
  EXPECT_NEAR(par.fitness, seq.fitness, 5e-3);
  EXPECT_GT(par.num_pp_init + par.num_pp_approx, 0)
      << "PP should engage in the parallel driver too";
}

TEST(ParPp, PpSweepsActivateOnSlowConvergence) {
  const auto gen =
      data::make_collinear_tensor({12, 12, 12}, 4, 0.85, 0.9, 903);
  ParPpOptions opt;
  opt.par.base.rank = 4;
  opt.par.base.max_sweeps = 100;
  opt.par.base.tol = 1e-9;
  opt.par.grid_dims = {2, 2, 1};
  opt.pp.pp_tol = 0.1;
  const ParResult r = par_pp_cp_als(gen.tensor, 4, opt);
  EXPECT_GT(r.num_pp_init, 0);
  EXPECT_GT(r.num_pp_approx, 0);
}

TEST(ParPp, KernelTimingsProduceSaneOutput) {
  const auto t = test::random_tensor({12, 12, 12}, 904);
  ParPpOptions opt;
  opt.par.base.rank = 4;
  opt.par.grid_dims = {2, 2, 1};
  const PpKernelTimings timings = time_pp_kernels(t, 4, opt, 3);
  EXPECT_GT(timings.init_seconds, 0.0);
  EXPECT_GT(timings.approx_sweep_seconds, 0.0);
  EXPECT_GT(timings.init_profile.flops(Kernel::kTTM), 0.0)
      << "PP init does first-level TTMs";
  EXPECT_GT(timings.approx_profile.flops(Kernel::kMTTV), 0.0)
      << "PP approx is mTTV-bound";
  EXPECT_DOUBLE_EQ(timings.approx_profile.flops(Kernel::kTTM), 0.0)
      << "PP approx must not touch the input tensor";
}

TEST(ParPp, RefImplementationCostsMoreCommunication) {
  const auto t = test::random_tensor({12, 12, 12}, 905);
  ParPpOptions opt;
  opt.par.base.rank = 4;
  opt.par.grid_dims = {2, 2, 2};
  const PpKernelTimings ours = time_pp_kernels(t, 8, opt, 3);
  const PpKernelTimings ref = time_ref_pp_kernels(t, 8, opt, 3);
  EXPECT_GT(ref.comm_cost.total().words_horizontal,
            2.0 * ours.comm_cost.total().words_horizontal)
      << "Table II: the reference PP moves far more data";
}

TEST(ParPp, RefApproxStepStillExactForZeroPerturbation) {
  // With dA = 0 the reference approx sweep reduces to solving with M_p —
  // it must keep the factors consistent (no NaNs, residual well-defined).
  const auto t = test::low_rank_tensor({8, 8, 8}, 2, 906);
  ParPpOptions opt;
  opt.par.base.rank = 2;
  opt.par.grid_dims = {2, 1, 1};
  const PpKernelTimings timings = time_ref_pp_kernels(t, 2, opt, 2);
  EXPECT_TRUE(std::isfinite(timings.approx_sweep_seconds));
}

TEST(ParPp, Order4GridRuns) {
  const auto t = test::low_rank_tensor({6, 4, 4, 6}, 2, 907);
  ParPpOptions opt;
  opt.par.base.rank = 2;
  opt.par.base.max_sweeps = 60;
  opt.par.base.tol = 1e-8;
  opt.par.grid_dims = {2, 1, 1, 2};
  opt.pp.pp_tol = 0.1;
  const ParResult r = par_pp_cp_als(t, 4, opt);
  EXPECT_GT(r.fitness, 0.99);
}

}  // namespace
}  // namespace parpp::par
