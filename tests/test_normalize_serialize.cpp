#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <sstream>

#include "parpp/core/normalize.hpp"
#include "parpp/tensor/reconstruct.hpp"
#include "parpp/util/serialize.hpp"
#include "test_util.hpp"

namespace parpp {
namespace {

TEST(Normalize, ColumnsBecomeUnitNorm) {
  auto factors = test::random_factors({6, 7, 8}, 4, 1201);
  const auto lambda = core::normalize_columns(factors);
  ASSERT_EQ(lambda.size(), 4u);
  for (const auto& a : factors) {
    const auto norms = core::column_norms(a);
    for (double n : norms) EXPECT_NEAR(n, 1.0, 1e-12);
  }
  for (double l : lambda) EXPECT_GT(l, 0.0);
}

TEST(Normalize, PreservesTensorAfterAbsorb) {
  auto factors = test::random_factors({5, 6, 4}, 3, 1202);
  const auto before = tensor::reconstruct(factors);
  const auto lambda = core::normalize_columns(factors);
  core::absorb_weights(factors, lambda, 1);
  const auto after = tensor::reconstruct(factors);
  test::expect_tensor_near(after, before, 1e-10 * before.frobenius_norm(),
                           "normalize + absorb round trip");
}

TEST(Normalize, ZeroColumnGivesZeroWeight) {
  auto factors = test::random_factors({4, 4}, 3, 1203);
  for (index_t i = 0; i < 4; ++i) factors[0](i, 1) = 0.0;
  const auto lambda = core::normalize_columns(factors);
  EXPECT_DOUBLE_EQ(lambda[1], 0.0);
  EXPECT_GT(lambda[0], 0.0);
}

TEST(Normalize, ColumnNormsMatchDefinition) {
  la::Matrix a(2, 2, {3.0, 0.0, 4.0, 1.0});
  const auto norms = core::column_norms(a);
  EXPECT_NEAR(norms[0], 5.0, 1e-12);
  EXPECT_NEAR(norms[1], 1.0, 1e-12);
}

TEST(Serialize, TensorRoundTripThroughStream) {
  const auto t = test::random_tensor({3, 5, 2, 4}, 1204);
  std::stringstream ss;
  io::save_tensor(ss, t);
  const auto back = io::load_tensor(ss);
  test::expect_tensor_near(back, t, 0.0, "tensor stream round trip");
}

TEST(Serialize, MatrixRoundTrip) {
  const auto m = test::random_matrix(7, 3, 1205);
  std::stringstream ss;
  io::save_matrix(ss, m);
  const auto back = io::load_matrix(ss);
  test::expect_matrix_near(back, m, 0.0, "matrix round trip");
}

TEST(Serialize, FactorsRoundTrip) {
  const auto factors = test::random_factors({4, 6, 5}, 3, 1206);
  std::stringstream ss;
  io::save_factors(ss, factors);
  const auto back = io::load_factors(ss);
  ASSERT_EQ(back.size(), factors.size());
  for (std::size_t i = 0; i < factors.size(); ++i)
    test::expect_matrix_near(back[i], factors[i], 0.0, "factor round trip");
}

TEST(Serialize, RejectsWrongMagic) {
  const auto t = test::random_tensor({2, 2}, 1207);
  std::stringstream ss;
  io::save_tensor(ss, t);
  EXPECT_THROW((void)io::load_factors(ss), error);
}

TEST(Serialize, RejectsTruncatedStream) {
  const auto t = test::random_tensor({8, 8}, 1208);
  std::stringstream ss;
  io::save_tensor(ss, t);
  std::string buf = ss.str();
  buf.resize(buf.size() / 2);
  std::stringstream truncated(buf);
  EXPECT_THROW((void)io::load_tensor(truncated), error);
}

TEST(Serialize, FileRoundTrip) {
  const auto t = test::random_tensor({4, 3, 5}, 1209);
  const std::string path = "/tmp/parpp_test_tensor.bin";
  io::save_tensor_file(path, t);
  const auto back = io::load_tensor_file(path);
  test::expect_tensor_near(back, t, 0.0, "file round trip");
  std::remove(path.c_str());
}

TEST(Serialize, MissingFileThrows) {
  EXPECT_THROW((void)io::load_tensor_file("/nonexistent/nope.bin"), error);
}

}  // namespace
}  // namespace parpp
