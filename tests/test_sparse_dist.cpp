// dist::SparseBlockDist / dist::BalancedSparseDist and the storage-agnostic
// LocalProblem layer: COO partition correctness (uniform and nnz-balanced
// boundaries), chains-on-chains optimality, O(nnz) bucketing setup, CSF
// round-trip, dense-path equivalence, and balanced-vs-uniform solve parity.
#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "parpp/data/sparse_synthetic.hpp"
#include "parpp/dist/local_problem.hpp"
#include "parpp/dist/sparse_dist.hpp"
#include "parpp/mpsim/runtime.hpp"
#include "parpp/solver/solver.hpp"
#include "parpp/tensor/csf_tensor.hpp"
#include "test_util.hpp"

namespace parpp {
namespace {

/// Builds the grid + BlockDist for every rank of a simulated run and hands
/// each (coords, dist) pair to `body`. Collectives inside ProcessorGrid
/// construction need the full rank set, hence the mpsim round-trip.
void for_each_rank(int nprocs, const std::vector<int>& dims,
                   const std::vector<index_t>& shape,
                   const std::function<void(const dist::BlockDist&,
                                            const std::vector<int>&)>& body) {
  std::mutex mu;
  mpsim::run(nprocs, [&](mpsim::Comm& comm) {
    mpsim::ProcessorGrid grid(comm, dims);
    dist::BlockDist bd(grid, shape);
    std::lock_guard<std::mutex> lock(mu);
    body(bd, grid.coords());
  });
}

TEST(CsfToCoo, RoundTripsEntryList) {
  const tensor::CooTensor coo =
      data::make_sparse_random({9, 7, 8, 5}, 0.05, 17);
  const tensor::CsfTensor csf(coo);
  const tensor::CooTensor back = csf.to_coo();

  ASSERT_EQ(back.shape(), coo.shape());
  ASSERT_EQ(back.nnz(), coo.nnz());
  EXPECT_TRUE(back.coalesced());
  for (index_t e = 0; e < coo.nnz(); ++e) {
    for (int m = 0; m < coo.order(); ++m)
      EXPECT_EQ(back.index(e, m), coo.index(e, m)) << "entry " << e;
    EXPECT_DOUBLE_EQ(back.value(e), coo.value(e)) << "entry " << e;
  }
}

TEST(SparseBlockDist, BlocksPartitionEveryNonzeroExactlyOnce) {
  const tensor::CooTensor coo = data::make_sparse_random({10, 9, 8}, 0.1, 3);
  const dist::SparseBlockDist problem(coo);
  ASSERT_EQ(problem.global_shape(), coo.shape());

  index_t total_nnz = 0;
  double total_sq = 0.0;
  for_each_rank(8, {2, 2, 2}, coo.shape(),
                [&](const dist::BlockDist& bd, const std::vector<int>& c) {
                  auto local = problem.make_local(bd, c);
                  EXPECT_EQ(local->shape(), bd.local_shape());
                  total_sq += local->squared_norm();
                });
  EXPECT_NEAR(total_sq, coo.squared_norm(), 1e-12 * coo.squared_norm());

  // Entry-level check: every global nonzero lands in exactly one block at
  // the reindexed coordinates. Reconstruct ownership from the geometry.
  for_each_rank(8, {2, 2, 2}, coo.shape(),
                [&](const dist::BlockDist& bd, const std::vector<int>& c) {
                  for (index_t e = 0; e < coo.nnz(); ++e) {
                    bool inside = true;
                    for (int m = 0; m < 3; ++m) {
                      const index_t l =
                          coo.index(e, m) -
                          bd.slab_offset(m, c[static_cast<std::size_t>(m)]);
                      if (l < 0 || l >= bd.local_extent(m)) inside = false;
                    }
                    if (inside) ++total_nnz;
                  }
                });
  EXPECT_EQ(total_nnz, coo.nnz());
}

TEST(SparseBlockDist, EmptyBlocksYieldValidLocalProblems) {
  // All nonzeros in one corner: with a 2x2x2 grid most blocks are empty.
  tensor::CooTensor coo({12, 12, 12});
  const std::vector<index_t> idx0{0, 1, 2};
  coo.push(idx0, 3.0);
  const std::vector<index_t> idx1{1, 0, 1};
  coo.push(idx1, -2.0);
  coo.coalesce();
  const dist::SparseBlockDist problem(coo);

  int empty_blocks = 0;
  for_each_rank(8, {2, 2, 2}, coo.shape(),
                [&](const dist::BlockDist& bd, const std::vector<int>& c) {
                  auto local = problem.make_local(bd, c);
                  if (local->squared_norm() == 0.0) ++empty_blocks;
                  // An engine over an empty block must produce a zero
                  // MTTKRP, not crash.
                  std::vector<la::Matrix> factors;
                  for (int m = 0; m < 3; ++m)
                    factors.push_back(
                        test::random_matrix(bd.local_extent(m), 4, 5));
                  auto engine = local->make_engine(
                      core::EngineKind::kSparse, factors, nullptr, {});
                  const la::Matrix m0 = engine->mttkrp(0);
                  EXPECT_EQ(m0.rows(), bd.local_extent(0));
                  EXPECT_EQ(m0.cols(), 4);
                });
  EXPECT_GE(empty_blocks, 6);
}

TEST(SparseBlockDist, CsfConstructorMatchesCooConstructor) {
  const tensor::CooTensor coo = data::make_sparse_random({8, 9, 7}, 0.08, 11);
  const tensor::CsfTensor csf(coo);
  const dist::SparseBlockDist from_coo(coo);
  const dist::SparseBlockDist from_csf(csf);

  for_each_rank(4, {2, 2, 1}, coo.shape(),
                [&](const dist::BlockDist& bd, const std::vector<int>& c) {
                  auto a = from_coo.make_local(bd, c);
                  auto b = from_csf.make_local(bd, c);
                  EXPECT_EQ(a->shape(), b->shape());
                  EXPECT_DOUBLE_EQ(a->squared_norm(), b->squared_norm());
                });
}

/// Like for_each_rank, but the BlockDist geometry comes from the problem
/// (exercises non-uniform boundaries).
void for_each_rank_of(const dist::DistProblem& problem, int nprocs,
                      const std::vector<int>& dims,
                      const std::function<void(const dist::BlockDist&,
                                               const std::vector<int>&)>& body) {
  std::mutex mu;
  mpsim::run(nprocs, [&](mpsim::Comm& comm) {
    mpsim::ProcessorGrid grid(comm, dims);
    const dist::BlockDist bd = problem.make_block_dist(grid);
    std::lock_guard<std::mutex> lock(mu);
    body(bd, grid.coords());
  });
}

TEST(ChainsOnChains, MinimizesBottleneckAndCoversEverySlice) {
  struct Case {
    std::vector<index_t> loads;
    int parts;
  };
  const std::vector<Case> cases = {
      {{100, 1, 1, 1, 1, 1, 1, 1}, 2},  // power-law head
      {{1, 1, 1, 1, 100}, 2},           // heavy tail
      {{5, 5, 5, 5, 5, 5}, 3},          // already even
      {{0, 0, 7, 0, 0, 3, 0}, 4},       // empty slices
      {{9}, 4},                         // more parts than slices
      {{2, 3, 1, 7, 4, 2, 9, 1, 3, 6}, 4},
  };
  for (const auto& c : cases) {
    const auto b = dist::chains_on_chains(c.loads, c.parts);
    ASSERT_EQ(b.size(), static_cast<std::size_t>(c.parts) + 1);
    EXPECT_EQ(b.front(), 0);
    EXPECT_EQ(b.back(), static_cast<index_t>(c.loads.size()));
    index_t bottleneck = 0;
    for (int p = 0; p < c.parts; ++p) {
      ASSERT_LE(b[static_cast<std::size_t>(p)],
                b[static_cast<std::size_t>(p) + 1]);
      index_t chunk = 0;
      for (index_t i = b[static_cast<std::size_t>(p)];
           i < b[static_cast<std::size_t>(p) + 1]; ++i)
        chunk += c.loads[static_cast<std::size_t>(i)];
      bottleneck = std::max(bottleneck, chunk);
    }
    // Brute-force optimal bottleneck over every boundary placement (the
    // inputs are small enough for exhaustive search via recursion).
    std::function<index_t(std::size_t, int)> best = [&](std::size_t from,
                                                        int parts) -> index_t {
      index_t tail = 0;
      for (std::size_t i = from; i < c.loads.size(); ++i) tail += c.loads[i];
      if (parts == 1) return tail;
      index_t opt = tail;  // everything in one chunk, rest empty
      index_t head = 0;
      for (std::size_t cut = from; cut <= c.loads.size(); ++cut) {
        opt = std::min(opt, std::max(head, best(cut, parts - 1)));
        if (cut < c.loads.size()) head += c.loads[cut];
      }
      return opt;
    };
    EXPECT_EQ(bottleneck, best(0, c.parts)) << "parts " << c.parts;
  }
}

TEST(BalancedSparseDist, EveryNonzeroOwnedByExactlyOneBlock) {
  const auto gen = data::make_sparse_powerlaw({24, 20, 16}, 0.08, 1.4, 5, 0);
  const tensor::CooTensor& coo = gen.tensor;
  const dist::BalancedSparseDist problem(coo);
  ASSERT_EQ(problem.global_shape(), coo.shape());

  index_t total_nnz = 0;
  double total_sq = 0.0;
  std::vector<int> owners(static_cast<std::size_t>(coo.nnz()), 0);
  for_each_rank_of(problem, 8, {2, 2, 2},
                   [&](const dist::BlockDist& bd, const std::vector<int>& c) {
                     auto local = problem.make_local(bd, c);
                     // Local coordinates are in-range by construction: the
                     // block must report the padded geometry...
                     EXPECT_EQ(local->shape(), bd.local_shape());
                     // ...and every owned slab must fit inside it.
                     for (int m = 0; m < 3; ++m) {
                       const int cm = c[static_cast<std::size_t>(m)];
                       EXPECT_LE(bd.slab_end(m, cm) - bd.slab_offset(m, cm),
                                 bd.local_extent(m));
                     }
                     total_nnz += local->nnz();
                     total_sq += local->squared_norm();
                     // Geometric ownership: entry-by-entry, against the
                     // boundary arrays.
                     for (index_t e = 0; e < coo.nnz(); ++e) {
                       bool inside = true;
                       for (int m = 0; m < 3; ++m) {
                         const int cm = c[static_cast<std::size_t>(m)];
                         const index_t i = coo.index(e, m);
                         if (i < bd.slab_offset(m, cm) ||
                             i >= bd.slab_end(m, cm))
                           inside = false;
                       }
                       if (inside) ++owners[static_cast<std::size_t>(e)];
                     }
                   });
  EXPECT_EQ(total_nnz, coo.nnz());
  EXPECT_NEAR(total_sq, coo.squared_norm(), 1e-12 * coo.squared_norm());
  for (index_t e = 0; e < coo.nnz(); ++e)
    EXPECT_EQ(owners[static_cast<std::size_t>(e)], 1) << "entry " << e;
}

TEST(BalancedSparseDist, FlattensPowerlawImbalance) {
  const auto gen = data::make_sparse_powerlaw({32, 32, 32}, 0.05, 1.8, 3, 0);
  const dist::SparseBlockDist uniform(gen.tensor);
  const dist::BalancedSparseDist balanced(gen.tensor);

  auto max_block_nnz = [&](const dist::DistProblem& p) {
    index_t worst = 0;
    for_each_rank_of(p, 8, {2, 2, 2},
                     [&](const dist::BlockDist& bd, const std::vector<int>& c) {
                       worst = std::max(worst, p.make_local(bd, c)->nnz());
                     });
    return worst;
  };
  const index_t u = max_block_nnz(uniform);
  const index_t b = max_block_nnz(balanced);
  // The head block of the uniform grid holds most of the tensor; the
  // balanced boundaries must cut its load at least in half.
  EXPECT_LT(2 * b, u) << "uniform worst " << u << ", balanced worst " << b;
}

TEST(SparseBlockDist, SetupIsASingleBucketingPass) {
  const tensor::CooTensor coo = data::make_sparse_random({12, 10, 8}, 0.1, 7);
  const dist::SparseBlockDist uniform(coo);
  const dist::BalancedSparseDist balanced(coo);
  for (const dist::SparseBlockDist* p : {&uniform,
                                         static_cast<const dist::SparseBlockDist*>(
                                             &balanced)}) {
    EXPECT_EQ(p->partition_passes(), 0u);
    for_each_rank_of(*p, 8, {2, 2, 2},
                     [&](const dist::BlockDist& bd, const std::vector<int>& c) {
                       (void)p->make_local(bd, c);
                     });
    // Eight ranks, one shared scan of the entry list (the old geometry
    // re-scanned per rank: O(nprocs * nnz)).
    EXPECT_EQ(p->partition_passes(), 1u);
  }
}

TEST(SparseBlockDist, RefetchingBucketsNeverReturnsEmptyBlocks) {
  // Buckets are moved out of the shared cache (each coordinate fetches
  // once per run); both a full second cycle and an out-of-contract
  // mid-cycle double fetch must rebuild rather than hand back a
  // moved-from empty tensor.
  const tensor::CooTensor coo = data::make_sparse_random({10, 9, 8}, 0.1, 3);
  const dist::SparseBlockDist problem(coo);
  for (int cycle = 0; cycle < 2; ++cycle) {
    index_t total = 0;
    for_each_rank(8, {2, 2, 2}, coo.shape(),
                  [&](const dist::BlockDist& bd, const std::vector<int>& c) {
                    total += problem.make_local(bd, c)->nnz();
                  });
    EXPECT_EQ(total, coo.nnz()) << "cycle " << cycle;
  }
  for_each_rank(8, {2, 2, 2}, coo.shape(),
                [&](const dist::BlockDist& bd, const std::vector<int>& c) {
                  auto a = problem.make_local(bd, c);
                  auto b = problem.make_local(bd, c);  // same coord again
                  EXPECT_EQ(a->nnz(), b->nnz());
                  EXPECT_DOUBLE_EQ(a->squared_norm(), b->squared_norm());
                });
}

TEST(BalancedSparseDist, SolvesAgreeWithUniformAtEveryRankCount) {
  const auto gen = data::make_sparse_powerlaw({20, 18, 16}, 0.06, 1.4, 11, 6);
  const tensor::CsfTensor csf(gen.tensor);

  auto fitness_of = [&](int nprocs, dist::PartitionKind partition) {
    solver::SolverSpec spec;
    spec.rank = 6;
    spec.engine = core::EngineKind::kSparse;
    spec.stopping.max_sweeps = 12;
    spec.stopping.fitness_tol = 0.0;
    spec.record_history = false;
    if (nprocs > 1) {
      spec.execution = solver::Execution::simulated_parallel(nprocs);
      spec.execution.partition = partition;
    }
    return parpp::solve(csf, spec);
  };
  const double seq = fitness_of(1, dist::PartitionKind::kUniformBlocks).fitness;
  for (int nprocs : {2, 4, 8}) {
    const auto uni = fitness_of(nprocs, dist::PartitionKind::kUniformBlocks);
    const auto bal = fitness_of(nprocs, dist::PartitionKind::kBalancedNnz);
    EXPECT_NEAR(uni.fitness, bal.fitness, 1e-10) << nprocs << " ranks";
    EXPECT_NEAR(seq, bal.fitness, 1e-10) << nprocs << " ranks vs sequential";
    // The knob must actually change the geometry, observably: balanced
    // cannot be *more* imbalanced than uniform on a skewed tensor.
    EXPECT_LE(bal.nnz_imbalance, uni.nnz_imbalance + 1e-12);
    EXPECT_GE(bal.nnz_imbalance, 1.0);
  }
}

TEST(DenseBlockProblem, MatchesExtractLocalBlockBitForBit) {
  const tensor::DenseTensor global = test::random_tensor({7, 6, 5}, 21);
  const dist::DenseBlockProblem problem(global);
  ASSERT_EQ(problem.global_shape(), global.shape());

  for_each_rank(4, {2, 2, 1}, global.shape(),
                [&](const dist::BlockDist& bd, const std::vector<int>& c) {
                  const tensor::DenseTensor expected =
                      dist::extract_local_block(global, bd, c);
                  auto local = problem.make_local(bd, c);
                  EXPECT_EQ(local->shape(), expected.shape());
                  EXPECT_DOUBLE_EQ(local->squared_norm(),
                                   expected.squared_norm());
                });
}

}  // namespace
}  // namespace parpp
