// dist::SparseBlockDist and the storage-agnostic LocalProblem layer: COO
// partition correctness, CSF round-trip, dense-path equivalence.
#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "parpp/data/sparse_synthetic.hpp"
#include "parpp/dist/local_problem.hpp"
#include "parpp/dist/sparse_dist.hpp"
#include "parpp/mpsim/runtime.hpp"
#include "parpp/tensor/csf_tensor.hpp"
#include "test_util.hpp"

namespace parpp {
namespace {

/// Builds the grid + BlockDist for every rank of a simulated run and hands
/// each (coords, dist) pair to `body`. Collectives inside ProcessorGrid
/// construction need the full rank set, hence the mpsim round-trip.
void for_each_rank(int nprocs, const std::vector<int>& dims,
                   const std::vector<index_t>& shape,
                   const std::function<void(const dist::BlockDist&,
                                            const std::vector<int>&)>& body) {
  std::mutex mu;
  mpsim::run(nprocs, [&](mpsim::Comm& comm) {
    mpsim::ProcessorGrid grid(comm, dims);
    dist::BlockDist bd(grid, shape);
    std::lock_guard<std::mutex> lock(mu);
    body(bd, grid.coords());
  });
}

TEST(CsfToCoo, RoundTripsEntryList) {
  const tensor::CooTensor coo =
      data::make_sparse_random({9, 7, 8, 5}, 0.05, 17);
  const tensor::CsfTensor csf(coo);
  const tensor::CooTensor back = csf.to_coo();

  ASSERT_EQ(back.shape(), coo.shape());
  ASSERT_EQ(back.nnz(), coo.nnz());
  EXPECT_TRUE(back.coalesced());
  for (index_t e = 0; e < coo.nnz(); ++e) {
    for (int m = 0; m < coo.order(); ++m)
      EXPECT_EQ(back.index(e, m), coo.index(e, m)) << "entry " << e;
    EXPECT_DOUBLE_EQ(back.value(e), coo.value(e)) << "entry " << e;
  }
}

TEST(SparseBlockDist, BlocksPartitionEveryNonzeroExactlyOnce) {
  const tensor::CooTensor coo = data::make_sparse_random({10, 9, 8}, 0.1, 3);
  const dist::SparseBlockDist problem(coo);
  ASSERT_EQ(problem.global_shape(), coo.shape());

  index_t total_nnz = 0;
  double total_sq = 0.0;
  for_each_rank(8, {2, 2, 2}, coo.shape(),
                [&](const dist::BlockDist& bd, const std::vector<int>& c) {
                  auto local = problem.make_local(bd, c);
                  EXPECT_EQ(local->shape(), bd.local_shape());
                  total_sq += local->squared_norm();
                });
  EXPECT_NEAR(total_sq, coo.squared_norm(), 1e-12 * coo.squared_norm());

  // Entry-level check: every global nonzero lands in exactly one block at
  // the reindexed coordinates. Reconstruct ownership from the geometry.
  for_each_rank(8, {2, 2, 2}, coo.shape(),
                [&](const dist::BlockDist& bd, const std::vector<int>& c) {
                  for (index_t e = 0; e < coo.nnz(); ++e) {
                    bool inside = true;
                    for (int m = 0; m < 3; ++m) {
                      const index_t l =
                          coo.index(e, m) -
                          bd.slab_offset(m, c[static_cast<std::size_t>(m)]);
                      if (l < 0 || l >= bd.local_extent(m)) inside = false;
                    }
                    if (inside) ++total_nnz;
                  }
                });
  EXPECT_EQ(total_nnz, coo.nnz());
}

TEST(SparseBlockDist, EmptyBlocksYieldValidLocalProblems) {
  // All nonzeros in one corner: with a 2x2x2 grid most blocks are empty.
  tensor::CooTensor coo({12, 12, 12});
  const std::vector<index_t> idx0{0, 1, 2};
  coo.push(idx0, 3.0);
  const std::vector<index_t> idx1{1, 0, 1};
  coo.push(idx1, -2.0);
  coo.coalesce();
  const dist::SparseBlockDist problem(coo);

  int empty_blocks = 0;
  for_each_rank(8, {2, 2, 2}, coo.shape(),
                [&](const dist::BlockDist& bd, const std::vector<int>& c) {
                  auto local = problem.make_local(bd, c);
                  if (local->squared_norm() == 0.0) ++empty_blocks;
                  // An engine over an empty block must produce a zero
                  // MTTKRP, not crash.
                  std::vector<la::Matrix> factors;
                  for (int m = 0; m < 3; ++m)
                    factors.push_back(
                        test::random_matrix(bd.local_extent(m), 4, 5));
                  auto engine = local->make_engine(
                      core::EngineKind::kSparse, factors, nullptr, {});
                  const la::Matrix m0 = engine->mttkrp(0);
                  EXPECT_EQ(m0.rows(), bd.local_extent(0));
                  EXPECT_EQ(m0.cols(), 4);
                });
  EXPECT_GE(empty_blocks, 6);
}

TEST(SparseBlockDist, CsfConstructorMatchesCooConstructor) {
  const tensor::CooTensor coo = data::make_sparse_random({8, 9, 7}, 0.08, 11);
  const tensor::CsfTensor csf(coo);
  const dist::SparseBlockDist from_coo(coo);
  const dist::SparseBlockDist from_csf(csf);

  for_each_rank(4, {2, 2, 1}, coo.shape(),
                [&](const dist::BlockDist& bd, const std::vector<int>& c) {
                  auto a = from_coo.make_local(bd, c);
                  auto b = from_csf.make_local(bd, c);
                  EXPECT_EQ(a->shape(), b->shape());
                  EXPECT_DOUBLE_EQ(a->squared_norm(), b->squared_norm());
                });
}

TEST(DenseBlockProblem, MatchesExtractLocalBlockBitForBit) {
  const tensor::DenseTensor global = test::random_tensor({7, 6, 5}, 21);
  const dist::DenseBlockProblem problem(global);
  ASSERT_EQ(problem.global_shape(), global.shape());

  for_each_rank(4, {2, 2, 1}, global.shape(),
                [&](const dist::BlockDist& bd, const std::vector<int>& c) {
                  const tensor::DenseTensor expected =
                      dist::extract_local_block(global, bd, c);
                  auto local = problem.make_local(bd, c);
                  EXPECT_EQ(local->shape(), expected.shape());
                  EXPECT_DOUBLE_EQ(local->squared_norm(),
                                   expected.squared_norm());
                });
}

}  // namespace
}  // namespace parpp
