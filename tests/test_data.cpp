#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "parpp/data/chemistry.hpp"
#include "parpp/data/coil.hpp"
#include "parpp/data/collinearity.hpp"
#include "parpp/data/hyperspectral.hpp"
#include "parpp/data/sparse_synthetic.hpp"
#include "parpp/la/gemm.hpp"
#include "parpp/tensor/reconstruct.hpp"
#include "test_util.hpp"

namespace parpp::data {
namespace {

TEST(Collinearity, FactorColumnsHavePrescribedCosine) {
  Rng rng(1101);
  for (double c : {0.0, 0.3, 0.7, 0.95}) {
    const la::Matrix a = collinear_factor(40, 6, c, rng);
    for (index_t i = 0; i < 6; ++i) {
      for (index_t j = 0; j < 6; ++j) {
        double dij = 0.0, dii = 0.0, djj = 0.0;
        for (index_t r = 0; r < 40; ++r) {
          dij += a(r, i) * a(r, j);
          dii += a(r, i) * a(r, i);
          djj += a(r, j) * a(r, j);
        }
        const double cosine = dij / std::sqrt(dii * djj);
        EXPECT_NEAR(cosine, i == j ? 1.0 : c, 1e-10)
            << "c=" << c << " (" << i << "," << j << ")";
      }
    }
  }
}

TEST(Collinearity, TensorShapeAndRange) {
  const auto gen = make_collinear_tensor({10, 12, 11}, 4, 0.4, 0.6, 1102);
  EXPECT_EQ(gen.tensor.shape(), (std::vector<index_t>{10, 12, 11}));
  EXPECT_GE(gen.collinearity, 0.4);
  EXPECT_LT(gen.collinearity, 0.6);
  EXPECT_GT(gen.tensor.frobenius_norm(), 0.0);
  ASSERT_EQ(gen.factors.size(), 3u);
}

TEST(Collinearity, TensorHasExactCpRank) {
  // The generated tensor is exactly rank R: its residual against its own
  // factors is zero.
  const auto gen = make_collinear_tensor({8, 8, 8}, 3, 0.5, 0.6, 1103);
  EXPECT_NEAR(test::explicit_residual(gen.tensor, gen.factors), 0.0, 1e-10);
}

TEST(Collinearity, DeterministicInSeed) {
  const auto a = make_collinear_tensor({6, 6, 6}, 2, 0.2, 0.4, 7);
  const auto b = make_collinear_tensor({6, 6, 6}, 2, 0.2, 0.4, 7);
  EXPECT_DOUBLE_EQ(a.tensor.max_abs_diff(b.tensor), 0.0);
}

TEST(Chemistry, ShapeAndSymmetry) {
  ChemistryOptions opt;
  opt.naux = 40;
  opt.norb = 16;
  opt.terms = 20;
  opt.noise = 0.0;
  const auto d = make_density_fitting_tensor(opt);
  EXPECT_EQ(d.shape(), (std::vector<index_t>{40, 16, 16}));
  // Orbital symmetry D(e,p,q) == D(e,q,p) without noise.
  for (index_t e = 0; e < 40; e += 7)
    for (index_t p = 0; p < 16; ++p)
      for (index_t q = 0; q < p; ++q) {
        const std::array<index_t, 3> a{e, p, q}, b{e, q, p};
        EXPECT_NEAR(d.at(a), d.at(b), 1e-12);
      }
}

TEST(Chemistry, CompressibleAtModerateRank) {
  ChemistryOptions opt;
  opt.naux = 30;
  opt.norb = 12;
  opt.terms = 12;
  opt.noise = 1e-5;
  const auto d = make_density_fitting_tensor(opt);
  core::CpOptions als;
  als.rank = 16;
  als.max_sweeps = 80;
  als.tol = 1e-7;
  const auto result = core::cp_als(d, als);
  EXPECT_GT(result.fitness, 0.9) << "density-fitting tensor should compress";
}

TEST(Coil, ShapeAndVariationAcrossPoses) {
  CoilOptions opt;
  opt.height = 12;
  opt.width = 12;
  opt.objects = 3;
  opt.poses = 5;
  const auto t = make_coil_tensor(opt);
  EXPECT_EQ(t.shape(), (std::vector<index_t>{12, 12, 3, 15}));
  // Different poses of the same object differ but are correlated.
  double diff = 0.0;
  for (index_t y = 0; y < 12; ++y)
    for (index_t x = 0; x < 12; ++x) {
      const std::array<index_t, 4> a{y, x, 0, 0}, b{y, x, 0, 1};
      diff += std::abs(t.at(a) - t.at(b));
    }
  EXPECT_GT(diff, 0.0);
}

TEST(Coil, LowRankCompressible) {
  CoilOptions opt;
  opt.height = 10;
  opt.width = 10;
  opt.objects = 2;
  opt.poses = 6;
  opt.patterns_per_object = 3;
  const auto t = make_coil_tensor(opt);
  core::CpOptions als;
  als.rank = 16;
  als.max_sweeps = 60;
  als.tol = 1e-7;
  const auto result = core::cp_als(t, als);
  EXPECT_GT(result.fitness, 0.8);
}

TEST(Hyperspectral, ShapeAndSmoothness) {
  HyperspectralOptions opt;
  opt.height = 16;
  opt.width = 20;
  opt.bands = 8;
  opt.frames = 4;
  const auto t = make_hyperspectral_tensor(opt);
  EXPECT_EQ(t.shape(), (std::vector<index_t>{16, 20, 8, 4}));
  EXPECT_GT(t.frobenius_norm(), 0.0);
  // Spatial smoothness: neighbouring pixels are close relative to range.
  double max_jump = 0.0, max_val = 0.0;
  for (index_t y = 0; y + 1 < 16; ++y)
    for (index_t x = 0; x < 20; ++x) {
      const std::array<index_t, 4> a{y, x, 0, 0}, b{y + 1, x, 0, 0};
      max_jump = std::max(max_jump, std::abs(t.at(a) - t.at(b)));
      max_val = std::max(max_val, std::abs(t.at(a)));
    }
  EXPECT_LT(max_jump, 0.7 * max_val + 1e-12);
}

TEST(Hyperspectral, Deterministic) {
  HyperspectralOptions opt;
  opt.height = 8;
  opt.width = 8;
  opt.bands = 4;
  opt.frames = 3;
  const auto a = make_hyperspectral_tensor(opt);
  const auto b = make_hyperspectral_tensor(opt);
  EXPECT_DOUBLE_EQ(a.max_abs_diff(b), 0.0);
}

/// Per-mode slice nnz counts of a COO tensor.
std::vector<std::vector<index_t>> slice_histograms(
    const tensor::CooTensor& t) {
  std::vector<std::vector<index_t>> h(static_cast<std::size_t>(t.order()));
  for (int m = 0; m < t.order(); ++m)
    h[static_cast<std::size_t>(m)].assign(
        static_cast<std::size_t>(t.extent(m)), 0);
  for (index_t e = 0; e < t.nnz(); ++e)
    for (int m = 0; m < t.order(); ++m)
      ++h[static_cast<std::size_t>(m)][static_cast<std::size_t>(t.index(e, m))];
  return h;
}

TEST(SparsePowerlaw, SlicesAreHeadHeavyOnEveryMode) {
  const auto gen = make_sparse_powerlaw({40, 32, 24}, 0.05, 1.5, 17, 0);
  const tensor::CooTensor& t = gen.tensor;
  EXPECT_TRUE(t.coalesced());
  EXPECT_TRUE(gen.factors.empty());
  EXPECT_GT(t.nnz(), 0);
  const auto hist = slice_histograms(t);
  for (int m = 0; m < 3; ++m) {
    const auto& h = hist[static_cast<std::size_t>(m)];
    // Zipf head: the first quarter of the slices must dominate the last
    // quarter by a wide margin.
    index_t head = 0, tail = 0;
    const std::size_t quarter = h.size() / 4;
    for (std::size_t i = 0; i < quarter; ++i) head += h[i];
    for (std::size_t i = h.size() - quarter; i < h.size(); ++i) tail += h[i];
    EXPECT_GT(head, 4 * tail) << "mode " << m;
  }
}

TEST(SparsePowerlaw, ZeroExponentMatchesUniformSkewProfile) {
  // exponent 0 means every slice is equally likely: head and tail quarters
  // must be statistically comparable (within 2x of each other).
  const auto gen = make_sparse_powerlaw({40, 40, 40}, 0.03, 0.0, 19, 0);
  const auto hist = slice_histograms(gen.tensor);
  for (int m = 0; m < 3; ++m) {
    const auto& h = hist[static_cast<std::size_t>(m)];
    index_t head = 0, tail = 0;
    for (std::size_t i = 0; i < 10; ++i) head += h[i];
    for (std::size_t i = 30; i < 40; ++i) tail += h[i];
    EXPECT_LT(head, 2 * tail) << "mode " << m;
    EXPECT_LT(tail, 2 * head) << "mode " << m;
  }
}

TEST(SparsePowerlaw, DeterministicInSeed) {
  const auto a = make_sparse_powerlaw({12, 10, 8}, 0.1, 1.2, 23, 0);
  const auto b = make_sparse_powerlaw({12, 10, 8}, 0.1, 1.2, 23, 0);
  ASSERT_EQ(a.tensor.nnz(), b.tensor.nnz());
  for (index_t e = 0; e < a.tensor.nnz(); ++e) {
    for (int m = 0; m < 3; ++m)
      EXPECT_EQ(a.tensor.index(e, m), b.tensor.index(e, m));
    EXPECT_DOUBLE_EQ(a.tensor.value(e), b.tensor.value(e));
  }
  const auto c = make_sparse_powerlaw({12, 10, 8}, 0.1, 1.2, 24, 0);
  EXPECT_FALSE(c.tensor.nnz() == a.tensor.nnz() &&
               c.tensor.squared_norm() == a.tensor.squared_norm());
}

TEST(SparsePowerlaw, ExactRankOptionIsTheReconstruction) {
  // With exact_rank > 0 the tensor must equal the planted factors'
  // reconstruction on its support — and stay skewed.
  const auto gen = make_sparse_powerlaw({14, 12, 10}, 0.08, 1.3, 29, 4);
  ASSERT_EQ(gen.factors.size(), 3u);
  for (int m = 0; m < 3; ++m) {
    EXPECT_EQ(gen.factors[static_cast<std::size_t>(m)].rows(),
              gen.tensor.extent(m));
    EXPECT_EQ(gen.factors[static_cast<std::size_t>(m)].cols(), 4);
  }
  const tensor::DenseTensor full = tensor::reconstruct(gen.factors);
  const tensor::DenseTensor dense = gen.tensor.densify();
  for (index_t e = 0; e < gen.tensor.nnz(); ++e) {
    std::vector<index_t> idx(3);
    for (int m = 0; m < 3; ++m) idx[static_cast<std::size_t>(m)] =
        gen.tensor.index(e, m);
    EXPECT_NEAR(dense.at(idx), full.at(idx), 1e-12) << "entry " << e;
  }
}

}  // namespace
}  // namespace parpp::data
