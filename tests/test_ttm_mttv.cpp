#include <gtest/gtest.h>

#include <array>

#include "parpp/tensor/mttv.hpp"
#include "parpp/tensor/ttm.hpp"
#include "test_util.hpp"

namespace parpp::tensor {
namespace {

/// Reference first-level contraction, elementwise.
DenseTensor ref_ttm_first(const DenseTensor& t, int mode, const la::Matrix& a) {
  const int n = t.order();
  std::vector<index_t> out_shape;
  for (int m = 0; m < n; ++m)
    if (m != mode) out_shape.push_back(t.extent(m));
  out_shape.push_back(a.cols());
  DenseTensor out(out_shape);
  std::vector<index_t> idx(static_cast<std::size_t>(n), 0);
  do {
    const double tv = t.at(idx);
    std::vector<index_t> oidx;
    for (int m = 0; m < n; ++m)
      if (m != mode) oidx.push_back(idx[static_cast<std::size_t>(m)]);
    oidx.push_back(0);
    for (index_t r = 0; r < a.cols(); ++r) {
      oidx.back() = r;
      out.at(oidx) += tv * a(idx[static_cast<std::size_t>(mode)], r);
    }
  } while (next_index(t.shape(), idx));
  return out;
}

/// Reference mTTV, elementwise.
DenseTensor ref_mttv(const DenseTensor& k, int pos, const la::Matrix& a) {
  const int n = k.order();
  std::vector<index_t> out_shape;
  for (int m = 0; m < n - 1; ++m)
    if (m != pos) out_shape.push_back(k.extent(m));
  out_shape.push_back(k.extent(n - 1));
  DenseTensor out(out_shape);
  std::vector<index_t> idx(static_cast<std::size_t>(n), 0);
  do {
    std::vector<index_t> oidx;
    for (int m = 0; m < n - 1; ++m)
      if (m != pos) oidx.push_back(idx[static_cast<std::size_t>(m)]);
    oidx.push_back(idx[static_cast<std::size_t>(n - 1)]);
    out.at(oidx) += k.at(idx) * a(idx[static_cast<std::size_t>(pos)],
                                  idx[static_cast<std::size_t>(n - 1)]);
  } while (next_index(k.shape(), idx));
  return out;
}

class TtmAllModes : public ::testing::TestWithParam<int> {};

TEST_P(TtmAllModes, MatchesReferenceOrder3) {
  const int mode = GetParam();
  const DenseTensor t = test::random_tensor({5, 6, 7}, 11);
  const la::Matrix a = test::random_matrix(t.extent(mode), 4, 12);
  test::expect_tensor_near(ttm_first(t, mode, a), ref_ttm_first(t, mode, a),
                           1e-12, "ttm order 3");
}

INSTANTIATE_TEST_SUITE_P(Modes, TtmAllModes, ::testing::Values(0, 1, 2));

TEST(Ttm, MatchesReferenceOrder4AllModes) {
  const DenseTensor t = test::random_tensor({3, 4, 5, 2}, 13);
  for (int mode = 0; mode < 4; ++mode) {
    const la::Matrix a = test::random_matrix(t.extent(mode), 3, 14 + mode);
    test::expect_tensor_near(ttm_first(t, mode, a), ref_ttm_first(t, mode, a),
                             1e-12, "ttm order 4");
  }
}

TEST(Ttm, OutputShapeAppendsRankLast) {
  const DenseTensor t = test::random_tensor({3, 4, 5}, 15);
  const la::Matrix a = test::random_matrix(4, 6, 16);
  const DenseTensor out = ttm_first(t, 1, a);
  const std::vector<index_t> want{3, 5, 6};
  EXPECT_EQ(out.shape(), want);
}

TEST(Ttm, ShapeMismatchThrows) {
  const DenseTensor t = test::random_tensor({3, 4}, 17);
  const la::Matrix a = test::random_matrix(5, 2, 18);
  EXPECT_THROW((void)ttm_first(t, 0, a), error);
}

TEST(Mttv, MatchesReferenceAllPositions) {
  const DenseTensor k = test::random_tensor({4, 5, 6, 3}, 21);  // last = rank
  for (int pos = 0; pos < 3; ++pos) {
    const la::Matrix a = test::random_matrix(k.extent(pos), 3, 22 + pos);
    test::expect_tensor_near(mttv(k, pos, a), ref_mttv(k, pos, a), 1e-12,
                             "mttv");
  }
}

TEST(Mttv, SingleSlabPosZero) {
  // left == 1 exercises the rt-range parallel path.
  const DenseTensor k = test::random_tensor({64, 10, 5}, 23);
  const la::Matrix a = test::random_matrix(64, 5, 24);
  test::expect_tensor_near(mttv(k, 0, a), ref_mttv(k, 0, a), 1e-10,
                           "mttv pos 0");
}

TEST(Mttv, FinalLeafContraction) {
  // (s, R) contracted at pos 0 -> (R): the per-thread-reduction path.
  const DenseTensor k = test::random_tensor({50, 6}, 25);
  const la::Matrix a = test::random_matrix(50, 6, 26);
  const DenseTensor got = mttv(k, 0, a);
  const DenseTensor want = ref_mttv(k, 0, a);
  test::expect_tensor_near(got, want, 1e-10, "leaf mttv");
}

TEST(Mttv, RankColumnMismatchThrows) {
  const DenseTensor k = test::random_tensor({4, 5, 3}, 27);
  const la::Matrix a = test::random_matrix(4, 2, 28);  // wrong rank cols
  EXPECT_THROW((void)mttv(k, 0, a), error);
}

TEST(TtmMttvChain, OrderIndependentContraction) {
  // Contracting modes {1, 2} of an order-3 tensor in either order gives the
  // same leaf, the core property dimension trees rely on.
  const DenseTensor t = test::random_tensor({6, 5, 4}, 31);
  const la::Matrix a1 = test::random_matrix(5, 3, 32);
  const la::Matrix a2 = test::random_matrix(4, 3, 33);
  // Path A: TTM mode 2, then mTTV former mode 1 (now position 1).
  const DenseTensor pa = mttv(ttm_first(t, 2, a2), 1, a1);
  // Path B: TTM mode 1, then mTTV former mode 2 (now position 1).
  const DenseTensor pb = mttv(ttm_first(t, 1, a1), 1, a2);
  test::expect_tensor_near(pa, pb, 1e-11, "contraction order independence");
}

}  // namespace
}  // namespace parpp::tensor
