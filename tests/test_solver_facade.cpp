// parpp::solve() facade: spec round-trips against the legacy drivers,
// warm-start determinism, observer early-abort and stopping rules.
#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "parpp/core/pp_nncp.hpp"
#include "parpp/par/par_nncp.hpp"
#include "parpp/par/par_pp.hpp"
#include "parpp/solver/solver.hpp"
#include "test_util.hpp"

namespace parpp::solver {
namespace {

SolverSpec small_spec(Method method, index_t rank = 4) {
  SolverSpec spec;
  spec.method = method;
  spec.rank = rank;
  spec.stopping.max_sweeps = 20;
  spec.stopping.fitness_tol = 0.0;  // fixed sweep count: determinism checks
  spec.pp.pp_tol = 0.3;
  return spec;
}

void expect_factors_identical(const std::vector<la::Matrix>& a,
                              const std::vector<la::Matrix>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].rows(), b[i].rows());
    ASSERT_EQ(a[i].cols(), b[i].cols());
    EXPECT_EQ(a[i].max_abs_diff(b[i]), 0.0)
        << "factor " << i << " must match bit-for-bit";
  }
}

TEST(SolverStrings, RoundTripsEveryEnum) {
  for (Method m : {Method::kAls, Method::kPp, Method::kNncpHals,
                   Method::kPpNncp}) {
    const auto parsed = method_from_string(to_string(m));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, m);
  }
  for (core::EngineKind e :
       {core::EngineKind::kNaive, core::EngineKind::kDt,
        core::EngineKind::kMsdt}) {
    const auto parsed = engine_from_string(to_string(e));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, e);
  }
  for (par::SolveMode s : {par::SolveMode::kDistributedRows,
                           par::SolveMode::kReplicatedSequential}) {
    const auto parsed = solve_mode_from_string(to_string(s));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, s);
  }
  EXPECT_FALSE(method_from_string("cubist").has_value());
  EXPECT_FALSE(engine_from_string("gpu").has_value());
  // Case-insensitive parses (CLI convenience).
  EXPECT_EQ(method_from_string("PP-NNCP"), Method::kPpNncp);
  EXPECT_EQ(engine_from_string("MSDT"), core::EngineKind::kMsdt);
}

TEST(SolverRegistry, ListsEveryMethodOnce) {
  const auto& methods = registered_methods();
  ASSERT_EQ(methods.size(), 4u);
  for (const MethodEntry& e : methods) {
    EXPECT_EQ(&method_entry(e.method), &e);
    EXPECT_NE(e.sequential, nullptr);
    EXPECT_NE(e.parallel, nullptr);
  }
}

// --- spec round-trips: facade == legacy driver, bit for bit ---------------

TEST(SolveFacade, AlsMatchesLegacySequential) {
  const auto t = test::low_rank_tensor({9, 8, 7}, 3, 901);
  const SolverSpec spec = small_spec(Method::kAls);
  const SolveReport facade = parpp::solve(t, spec);
  const core::CpResult legacy = core::cp_als(t, base_options(spec));
  expect_factors_identical(facade.factors, legacy.factors);
  EXPECT_EQ(facade.fitness, legacy.fitness);
  EXPECT_EQ(facade.sweeps, legacy.sweeps);
  ASSERT_EQ(facade.history.size(), legacy.history.size());
}

TEST(SolveFacade, PpMatchesLegacySequential) {
  const auto t = test::low_rank_tensor({10, 9, 8}, 3, 902);
  const SolverSpec spec = small_spec(Method::kPp);
  const SolveReport facade = parpp::solve(t, spec);
  core::PpOptions pp = spec.pp;
  pp.regular_engine = spec.engine;
  const core::CpResult legacy = core::pp_cp_als(t, base_options(spec), pp);
  expect_factors_identical(facade.factors, legacy.factors);
  EXPECT_EQ(facade.fitness, legacy.fitness);
  EXPECT_EQ(facade.sweeps, legacy.sweeps);
  EXPECT_EQ(facade.num_pp_init, legacy.num_pp_init);
  EXPECT_EQ(facade.num_pp_approx, legacy.num_pp_approx);
}

TEST(SolveFacade, NncpMatchesLegacySequential) {
  const auto t = test::low_rank_tensor({9, 8, 7}, 3, 903);
  const SolverSpec spec = small_spec(Method::kNncpHals);
  const SolveReport facade = parpp::solve(t, spec);
  core::NncpOptions nn = spec.nncp;
  nn.engine = spec.engine;
  const core::CpResult legacy = core::nncp_hals(t, base_options(spec), nn);
  expect_factors_identical(facade.factors, legacy.factors);
  EXPECT_EQ(facade.fitness, legacy.fitness);
  EXPECT_EQ(facade.sweeps, legacy.sweeps);
}

TEST(SolveFacade, PpNncpMatchesDriverSequential) {
  const auto t = test::low_rank_tensor({9, 8, 7}, 3, 904);
  const SolverSpec spec = small_spec(Method::kPpNncp);
  const SolveReport facade = parpp::solve(t, spec);
  core::PpOptions pp = spec.pp;
  pp.regular_engine = spec.engine;
  core::NncpOptions nn = spec.nncp;
  nn.engine = spec.engine;
  const core::CpResult legacy =
      core::pp_nncp_hals(t, base_options(spec), pp, nn);
  expect_factors_identical(facade.factors, legacy.factors);
  EXPECT_EQ(facade.fitness, legacy.fitness);
  EXPECT_EQ(facade.sweeps, legacy.sweeps);
}

TEST(SolveFacade, AlsMatchesLegacyParallel) {
  const auto t = test::low_rank_tensor({8, 8, 8}, 3, 905);
  SolverSpec spec = small_spec(Method::kAls);
  spec.execution = Execution::simulated_parallel(4);
  const SolveReport facade = parpp::solve(t, spec);
  const par::ParResult legacy =
      par::par_cp_als(t, 4, par_options(spec, t.order()));
  expect_factors_identical(facade.factors, legacy.factors);
  EXPECT_EQ(facade.fitness, legacy.fitness);
  EXPECT_EQ(facade.sweeps, legacy.sweeps);
  // No hooks configured: the facade must add zero collectives.
  EXPECT_EQ(facade.comm_cost.total().messages,
            legacy.comm_cost.total().messages);
}

TEST(SolveFacade, PpMatchesLegacyParallel) {
  const auto t = test::low_rank_tensor({8, 8, 8}, 3, 906);
  SolverSpec spec = small_spec(Method::kPp);
  spec.execution = Execution::simulated_parallel(4);
  const SolveReport facade = parpp::solve(t, spec);
  par::ParPpOptions o;
  o.par = par_options(spec, t.order());
  o.pp = spec.pp;
  o.pp.regular_engine = spec.engine;
  const par::ParResult legacy = par::par_pp_cp_als(t, 4, o);
  expect_factors_identical(facade.factors, legacy.factors);
  EXPECT_EQ(facade.fitness, legacy.fitness);
  EXPECT_EQ(facade.sweeps, legacy.sweeps);
}

TEST(SolveFacade, NncpMatchesLegacyParallel) {
  const auto t = test::low_rank_tensor({8, 8, 8}, 3, 907);
  SolverSpec spec = small_spec(Method::kNncpHals);
  spec.execution = Execution::simulated_parallel(4);
  const SolveReport facade = parpp::solve(t, spec);
  par::ParNncpOptions o;
  o.par = par_options(spec, t.order());
  o.nn = spec.nncp;
  o.nn.engine = spec.engine;
  const par::ParResult legacy = par::par_nncp_hals(t, 4, o);
  expect_factors_identical(facade.factors, legacy.factors);
  EXPECT_EQ(facade.fitness, legacy.fitness);
  EXPECT_EQ(facade.sweeps, legacy.sweeps);
}

TEST(SolveFacade, EveryMethodExecutionCellRuns) {
  // A nonnegative planted tensor every method can recover: the full
  // method x execution matrix must run and converge through one facade.
  const auto t = test::low_rank_tensor({8, 7, 6}, 2, 908);
  for (const MethodEntry& entry : registered_methods()) {
    for (int procs : {1, 4}) {
      SolverSpec spec;
      spec.method = entry.method;
      spec.rank = 2;
      spec.stopping.max_sweeps = 200;
      spec.stopping.fitness_tol = 1e-9;
      spec.pp.pp_tol = 0.3;
      if (procs > 1) spec.execution = Execution::simulated_parallel(procs);
      const SolveReport r = parpp::solve(t, spec);
      EXPECT_GT(r.fitness, 0.9)
          << std::string(entry.name) << " x procs=" << procs;
      EXPECT_EQ(r.factors.size(), 3u);
    }
  }
}

// --- warm start -----------------------------------------------------------

TEST(SolveFacade, WarmStartContinuesBitForBitOnNaiveEngine) {
  // The naive engine carries no cross-sweep state, so 6 + 6 warm-started
  // sweeps must replay 12 continuous sweeps exactly.
  const auto t = test::low_rank_tensor({8, 7, 6}, 3, 909);
  SolverSpec spec = small_spec(Method::kAls, 3);
  spec.engine = core::EngineKind::kNaive;
  spec.stopping.max_sweeps = 12;
  const SolveReport full = parpp::solve(t, spec);

  spec.stopping.max_sweeps = 6;
  const SolveReport first = parpp::solve(t, spec);
  SolverSpec resumed = spec;
  resumed.initial_factors = first.factors;
  const SolveReport second = parpp::solve(t, resumed);

  expect_factors_identical(full.factors, second.factors);
  EXPECT_EQ(full.fitness, second.fitness);
}

TEST(SolveFacade, WarmStartContinuesFitnessCurveOnTreeEngine) {
  const auto t = test::random_tensor({9, 8, 7}, 910);
  SolverSpec spec = small_spec(Method::kAls, 4);
  spec.stopping.max_sweeps = 14;
  const SolveReport full = parpp::solve(t, spec);

  spec.stopping.max_sweeps = 7;
  const SolveReport first = parpp::solve(t, spec);
  SolverSpec resumed = spec;
  resumed.initial_factors = first.factors;
  const SolveReport second = parpp::solve(t, resumed);

  // Tree-engine caches rebuild deterministically from the factor values,
  // so the resumed trajectory tracks the continuous one tightly.
  EXPECT_NEAR(full.fitness, second.fitness, 1e-10);
  ASSERT_EQ(second.history.size(), 7u);
  EXPECT_GE(second.history.front().fitness,
            first.history.back().fitness - 1e-10)
      << "resume must continue the fitness curve, not restart it";
}

TEST(SolveFacade, WarmStartAppliesToParallelExecution) {
  const auto t = test::low_rank_tensor({8, 8, 8}, 3, 911);
  SolverSpec spec = small_spec(Method::kAls, 3);
  spec.stopping.max_sweeps = 10;
  const SolveReport seq = parpp::solve(t, spec);

  SolverSpec warm = spec;
  warm.initial_factors = seq.factors;
  warm.stopping.max_sweeps = 4;
  warm.execution = Execution::simulated_parallel(4);
  const SolveReport par_resumed = parpp::solve(t, warm);
  EXPECT_GE(par_resumed.fitness, seq.fitness - 1e-6)
      << "parallel resume from sequential factors must not regress";
}

TEST(SolveFacade, WarmStartRejectsShapeMismatch) {
  const auto t = test::low_rank_tensor({8, 7, 6}, 3, 912);
  SolverSpec spec = small_spec(Method::kAls, 3);
  spec.initial_factors = core::init_factors({8, 7, 5}, 3, 1);
  EXPECT_THROW((void)parpp::solve(t, spec), error);
}

// --- stopping rules and observer ------------------------------------------

TEST(SolveFacade, ObserverEarlyAbort) {
  const auto t = test::random_tensor({8, 7, 6}, 913);
  SolverSpec spec = small_spec(Method::kAls, 4);
  int seen = 0;
  spec.observer = [&seen](const core::SweepRecord&,
                          const std::vector<la::Matrix>& factors) {
    EXPECT_EQ(factors.size(), 3u) << "sequential observer sees the factors";
    return ++seen >= 3 ? ObserverAction::kStop : ObserverAction::kContinue;
  };
  const SolveReport r = parpp::solve(t, spec);
  EXPECT_EQ(r.sweeps, 3);
  EXPECT_EQ(seen, 3);
  EXPECT_EQ(r.stop_reason, StopReason::kObserver);
}

TEST(SolveFacade, ObserverEarlyAbortParallel) {
  const auto t = test::low_rank_tensor({8, 8, 8}, 3, 914);
  SolverSpec spec = small_spec(Method::kAls, 3);
  spec.execution = Execution::simulated_parallel(4);
  int seen = 0;
  spec.observer = [&seen](const core::SweepRecord&,
                          const std::vector<la::Matrix>&) {
    return ++seen >= 2 ? ObserverAction::kStop : ObserverAction::kContinue;
  };
  const SolveReport r = parpp::solve(t, spec);
  EXPECT_EQ(r.sweeps, 2);
  EXPECT_EQ(r.stop_reason, StopReason::kObserver);
}

TEST(SolveFacade, PredicateStops) {
  const auto t = test::low_rank_tensor({8, 7, 6}, 3, 915);
  SolverSpec spec = small_spec(Method::kAls, 3);
  spec.stopping.predicate = [](const core::SweepRecord& rec) {
    return rec.fitness > 0.5;
  };
  const SolveReport r = parpp::solve(t, spec);
  EXPECT_EQ(r.stop_reason, StopReason::kPredicate);
  EXPECT_GT(r.fitness, 0.5);
  EXPECT_LT(r.sweeps, spec.stopping.max_sweeps);
}

TEST(SolveFacade, TimeBudgetStops) {
  const auto t = test::random_tensor({10, 9, 8}, 916);
  SolverSpec spec = small_spec(Method::kAls, 4);
  spec.stopping.max_sweeps = 10000;
  spec.stopping.max_seconds = 1e-9;  // expires during the first sweep
  const SolveReport r = parpp::solve(t, spec);
  EXPECT_EQ(r.stop_reason, StopReason::kTimeBudget);
  EXPECT_EQ(r.sweeps, 1);
}

TEST(SolveFacade, StopReasonReportsConvergenceAndBudget) {
  const auto t = test::low_rank_tensor({8, 7, 6}, 2, 917);
  SolverSpec spec = small_spec(Method::kAls, 2);
  spec.stopping.max_sweeps = 200;
  spec.stopping.fitness_tol = 1e-6;
  const SolveReport converged = parpp::solve(t, spec);
  EXPECT_EQ(converged.stop_reason, StopReason::kConverged);

  // Re-running with the budget set to exactly the converged sweep count
  // still reports convergence (it happened on the final permitted sweep).
  spec.stopping.max_sweeps = converged.sweeps;
  EXPECT_EQ(parpp::solve(t, spec).stop_reason, StopReason::kConverged);

  // A noise tensor cannot converge in 2 sweeps: budget exhaustion.
  const auto noise = test::random_tensor({8, 7, 6}, 920);
  SolverSpec tight = small_spec(Method::kAls, 2);
  tight.stopping.max_sweeps = 2;
  tight.stopping.fitness_tol = 1e-6;
  EXPECT_EQ(parpp::solve(noise, tight).stop_reason, StopReason::kMaxSweeps);
}

TEST(SolveFacade, ObserverSubsumesHistoryWhenDisabled) {
  const auto t = test::low_rank_tensor({8, 7, 6}, 3, 918);
  SolverSpec spec = small_spec(Method::kAls, 3);
  spec.record_history = false;
  std::vector<double> streamed;
  spec.observer = [&streamed](const core::SweepRecord& rec,
                              const std::vector<la::Matrix>&) {
    streamed.push_back(rec.fitness);
    return ObserverAction::kContinue;
  };
  const SolveReport r = parpp::solve(t, spec);
  EXPECT_TRUE(r.history.empty());
  EXPECT_EQ(static_cast<int>(streamed.size()), r.sweeps);
}

TEST(SolveFacade, RejectsInvalidSpecs) {
  const auto t = test::low_rank_tensor({8, 7, 6}, 2, 919);
  SolverSpec bad_rank = small_spec(Method::kAls);
  bad_rank.rank = 0;
  EXPECT_THROW((void)parpp::solve(t, bad_rank), error);
  SolverSpec bad_sweeps = small_spec(Method::kAls);
  bad_sweeps.stopping.max_sweeps = 0;
  EXPECT_THROW((void)parpp::solve(t, bad_sweeps), error);
}

}  // namespace
}  // namespace parpp::solver
