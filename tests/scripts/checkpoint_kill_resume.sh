#!/bin/sh
# Kill-and-resume smoke test for the checkpoint/restart path.
#
# Runs a reference solve to completion, then starts the identical solve with
# per-sweep checkpointing, SIGKILLs it as soon as the first checkpoint hits
# the disk (so the process dies mid-run with whatever torn state a real crash
# would leave), resumes from the checkpoint file to the same total sweep
# budget, and requires the resumed fitness to match the uninterrupted run to
# 1e-10.
#
# usage: checkpoint_kill_resume.sh /path/to/parpp_cli [workdir]
set -eu

CLI=$1
DIR=${2:-$(mktemp -d)}
mkdir -p "$DIR"
CK="$DIR/kill_resume_ck.bin"
rm -f "$CK" "$CK.tmp"

# Small enough to stay fast under sanitizers, big enough that the victim is
# still mid-run when the first checkpoint appears (on a fast Release build
# the victim may finish before the kill lands; the resume path is exercised
# either way).
ARGS="--dataset random --size 56 --rank 12 --max-sweeps 60 --tol 1e-14 --seed 7"

"$CLI" $ARGS > "$DIR/reference.log"

"$CLI" $ARGS --checkpoint "$CK" --checkpoint-every 1 \
  > "$DIR/victim.log" 2>&1 &
PID=$!
tries=0
while [ ! -f "$CK" ] && [ "$tries" -lt 30000 ]; do
  kill -0 "$PID" 2>/dev/null || break
  tries=$((tries + 1))
  sleep 0.001
done
kill -9 "$PID" 2>/dev/null || true
wait "$PID" 2>/dev/null || true
if [ ! -f "$CK" ]; then
  echo "FAIL: victim exited without writing a checkpoint"
  exit 1
fi

"$CLI" $ARGS --checkpoint "$CK" --checkpoint-every 1 --resume \
  > "$DIR/resumed.log"

ref=$(grep -o 'fitness [0-9.]*' "$DIR/reference.log" | awk '{print $2}')
res=$(grep -o 'fitness [0-9.]*' "$DIR/resumed.log" | awk '{print $2}')
echo "reference fitness: $ref"
echo "resumed   fitness: $res"
if ! awk -v a="$ref" -v b="$res" \
    'BEGIN { d = a - b; if (d < 0) d = -d; exit !(d <= 1e-10) }'; then
  echo "FAIL: resumed fitness differs from the uninterrupted run by > 1e-10"
  exit 1
fi
echo "PASS: kill-and-resume fitness parity within 1e-10"
