#!/bin/sh
# Format gate: every tracked C++ source must be clang-format clean.
# Usage: format_check.sh <clang-format-binary> <repo-root>
set -eu

CLANG_FORMAT="$1"
ROOT="$2"

cd "$ROOT"
FILES=$(find src tests bench examples tools \
        \( -name '*.cpp' -o -name '*.hpp' -o -name '*.h' \) -type f)

FAIL=0
for f in $FILES; do
  if ! "$CLANG_FORMAT" --dry-run --Werror "$f" 2>/dev/null; then
    echo "needs formatting: $f"
    FAIL=1
  fi
done

if [ "$FAIL" -ne 0 ]; then
  echo "FAIL: run: $CLANG_FORMAT -i on the files above"
  exit 1
fi
echo "PASS: clang-format clean"
