#include <gtest/gtest.h>

#include <cmath>

#include "parpp/core/nncp.hpp"
#include "parpp/data/hyperspectral.hpp"
#include "parpp/tensor/reconstruct.hpp"
#include "test_util.hpp"

namespace parpp::core {
namespace {

/// Nonnegative ground truth: uniform [0,1) factors are nonnegative, so the
/// planted tensor is recoverable by NNCP.
TEST(Nncp, RecoversNonnegativeLowRank) {
  const auto t = test::low_rank_tensor({10, 9, 8}, 3, 1301);
  CpOptions opt;
  opt.rank = 3;
  opt.max_sweeps = 200;
  opt.tol = 1e-9;
  const CpResult r = nncp_hals(t, opt);
  EXPECT_GT(r.fitness, 0.995);
}

TEST(Nncp, FactorsStayNonnegative) {
  const auto t = test::random_tensor({8, 7, 6}, 1302);
  CpOptions opt;
  opt.rank = 4;
  opt.max_sweeps = 30;
  opt.tol = 0.0;
  const CpResult r = nncp_hals(t, opt);
  for (const auto& a : r.factors) {
    for (index_t i = 0; i < a.rows(); ++i)
      for (index_t j = 0; j < a.cols(); ++j)
        EXPECT_GE(a(i, j), 0.0) << "HALS must keep factors nonnegative";
  }
}

TEST(Nncp, FitnessNonDecreasing) {
  const auto t = test::random_tensor({9, 8, 7}, 1303);
  CpOptions opt;
  opt.rank = 5;
  opt.max_sweeps = 25;
  opt.tol = 0.0;
  const CpResult r = nncp_hals(t, opt);
  ASSERT_GE(r.history.size(), 2u);
  for (std::size_t i = 1; i < r.history.size(); ++i)
    EXPECT_GE(r.history[i].fitness, r.history[i - 1].fitness - 1e-8);
}

TEST(Nncp, DtAndMsdtEnginesAgree) {
  const auto t = test::low_rank_tensor({8, 8, 8}, 2, 1304);
  CpOptions opt;
  opt.rank = 2;
  opt.max_sweeps = 20;
  opt.tol = 0.0;
  NncpOptions nn;
  nn.engine = EngineKind::kDt;
  const CpResult dt = nncp_hals(t, opt, nn);
  nn.engine = EngineKind::kMsdt;
  const CpResult msdt = nncp_hals(t, opt, nn);
  EXPECT_NEAR(dt.fitness, msdt.fitness, 1e-8)
      << "engines are exact, trajectories must match";
}

TEST(Nncp, ResidualMatchesExplicit) {
  const auto t = test::low_rank_tensor({7, 6, 5}, 2, 1305);
  CpOptions opt;
  opt.rank = 2;
  opt.max_sweeps = 60;
  opt.tol = 1e-8;
  const CpResult r = nncp_hals(t, opt);
  EXPECT_NEAR(test::explicit_residual(t, r.factors), r.residual, 1e-6);
}

TEST(Nncp, HandlesHyperspectralWorkload) {
  data::HyperspectralOptions hs;
  hs.height = 16;
  hs.width = 20;
  hs.bands = 8;
  hs.frames = 4;
  const auto t = data::make_hyperspectral_tensor(hs);
  CpOptions opt;
  opt.rank = 12;
  opt.max_sweeps = 60;
  opt.tol = 1e-6;
  const CpResult r = nncp_hals(t, opt);
  EXPECT_GT(r.fitness, 0.8)
      << "nonnegative radiance data should compress well under NNCP";
}

TEST(Nncp, InnerIterationsStayInSameBallpark) {
  // Extra inner HALS passes change the trajectory but must land at a
  // comparable stationary fitness (they optimize the same subproblems more
  // tightly per sweep — not necessarily better after a fixed sweep count).
  const auto t = test::random_tensor({8, 8, 8}, 1306);
  CpOptions opt;
  opt.rank = 4;
  opt.max_sweeps = 15;
  opt.tol = 0.0;
  NncpOptions one, three;
  three.inner_iterations = 3;
  const CpResult r1 = nncp_hals(t, opt, one);
  const CpResult r3 = nncp_hals(t, opt, three);
  EXPECT_GT(r1.fitness, 0.3);
  EXPECT_GT(r3.fitness, 0.3);
  EXPECT_NEAR(r3.fitness, r1.fitness, 0.05);
}

}  // namespace
}  // namespace parpp::core
