// CsfLayout::kHalf — ceil(N/2) fiber trees, each serving its root mode by
// the classic upward walk and mode N-1-m by the downward leaf-scatter walk.
// The fp64 walks must agree with the dense fused reference to 1e-10 (same
// accumulation discipline as the all-modes layout), and the structural
// promises (tree count, halved pattern memory, walk_for mapping, to_coo
// round-trip) are pinned here.
#include <gtest/gtest.h>

#include <vector>

#include "parpp/core/pp_operators.hpp"
#include "parpp/data/sparse_synthetic.hpp"
#include "parpp/solver/solve.hpp"
#include "parpp/tensor/csf_tensor.hpp"
#include "parpp/tensor/mttkrp_fused.hpp"
#include "parpp/tensor/mttkrp_sparse.hpp"
#include "test_util.hpp"

namespace parpp {
namespace {

tensor::CsfTensor make_half(const tensor::CooTensor& coo) {
  return tensor::CsfTensor(coo, tensor::CsfOptions{tensor::CsfLayout::kHalf});
}

TEST(CsfHalf, TreeCountIsCeilHalfOrder) {
  for (int order : {2, 3, 4, 5}) {
    std::vector<index_t> shape(static_cast<std::size_t>(order), 5);
    const auto coo = data::make_sparse_random(shape, 0.1, 60 + order);
    const tensor::CsfTensor half = make_half(coo);
    EXPECT_EQ(half.layout(), tensor::CsfLayout::kHalf);
    EXPECT_EQ(half.tree_count(), (order + 1) / 2) << "order " << order;
    const tensor::CsfTensor all(coo);
    EXPECT_EQ(all.tree_count(), order);
  }
}

TEST(CsfHalf, PatternMemoryShrinks) {
  // Even orders drop exactly half the trees; odd orders keep the middle
  // tree, so the ratio lands between 1/2 and (ceil(N/2))/N. Either way the
  // pattern footprint must shrink strictly and by roughly the tree ratio.
  for (int order : {3, 4, 5}) {
    std::vector<index_t> shape(static_cast<std::size_t>(order), 7);
    const auto coo = data::make_sparse_random(shape, 0.08, 70 + order);
    const tensor::CsfTensor all(coo);
    const tensor::CsfTensor half = make_half(coo);
    EXPECT_LT(half.pattern_words(), all.pattern_words());
    // Trees of the same tensor differ in size only through prefix sharing;
    // allow 30% slack around the tree-count ratio.
    const double ratio = static_cast<double>(half.pattern_words()) /
                         static_cast<double>(all.pattern_words());
    const double tree_ratio =
        static_cast<double>((order + 1) / 2) / static_cast<double>(order);
    EXPECT_LT(ratio, tree_ratio * 1.3) << "order " << order;
  }
}

TEST(CsfHalf, WalkForMapsEveryMode) {
  // Order 4: trees {0, 1}; modes 0/1 are roots, 3 is tree 0's leaf, 2 is
  // tree 1's leaf.
  const auto coo4 = data::make_sparse_random({6, 5, 4, 5}, 0.08, 80);
  const tensor::CsfTensor h4 = make_half(coo4);
  for (int mode : {0, 1}) {
    const auto wk = h4.walk_for(mode);
    EXPECT_EQ(wk.tree_index, mode);
    EXPECT_FALSE(wk.leaf);
    EXPECT_EQ(wk.tree->mode_order.front(), mode);
  }
  for (int mode : {2, 3}) {
    const auto wk = h4.walk_for(mode);
    EXPECT_EQ(wk.tree_index, 3 - mode);
    EXPECT_TRUE(wk.leaf);
    EXPECT_EQ(wk.tree->mode_order.back(), mode);
  }

  // Order 3: the middle tree (mode 1) serves only its root.
  const auto coo3 = data::make_sparse_random({6, 5, 4}, 0.1, 81);
  const tensor::CsfTensor h3 = make_half(coo3);
  EXPECT_EQ(h3.tree_count(), 2);
  EXPECT_FALSE(h3.walk_for(0).leaf);
  EXPECT_FALSE(h3.walk_for(1).leaf);
  EXPECT_EQ(h3.walk_for(1).tree_index, 1);
  const auto wk2 = h3.walk_for(2);
  EXPECT_TRUE(wk2.leaf);
  EXPECT_EQ(wk2.tree_index, 0);
}

TEST(CsfHalf, TreeAccessorRejectsUpperModes) {
  const auto coo = data::make_sparse_random({6, 5, 4, 5}, 0.08, 82);
  const tensor::CsfTensor half = make_half(coo);
  EXPECT_NO_THROW((void)half.tree(0));
  EXPECT_NO_THROW((void)half.tree(1));
  EXPECT_THROW((void)half.tree(2), parpp::error);
  EXPECT_THROW((void)half.tree(3), parpp::error);
}

void expect_half_matches_dense(const tensor::CooTensor& coo, index_t rank,
                               std::uint64_t seed) {
  const tensor::CsfTensor half = make_half(coo);
  const tensor::DenseTensor dense = coo.densify();
  const auto factors = test::random_factors(coo.shape(), rank, seed);
  for (int mode = 0; mode < coo.order(); ++mode) {
    const la::Matrix ref = tensor::mttkrp_fused(dense, factors, mode);
    test::expect_matrix_near(tensor::mttkrp_csf(half, factors, mode), ref,
                             1e-10, "half-layout CSF vs dense fused");
  }
}

TEST(CsfHalf, MttkrpMatchesDenseFusedOrders2To5AllModes) {
  expect_half_matches_dense(data::make_sparse_random({12, 9}, 0.2, 83), 5,
                            183);
  expect_half_matches_dense(data::make_sparse_random({9, 8, 7}, 0.15, 84), 6,
                            184);
  expect_half_matches_dense(data::make_sparse_random({7, 5, 4, 6}, 0.08, 85),
                            5, 185);
  expect_half_matches_dense(
      data::make_sparse_random({5, 4, 3, 4, 5}, 0.05, 86), 4, 186);
}

TEST(CsfHalf, LeafWalkSequentialAndParallelAgree) {
  // The leaf-scatter walk merges per-thread output slabs in thread order;
  // vs the dense reference both the 1-thread and team paths must hold the
  // 1e-10 bound. (Team size is whatever OpenMP gives this process — the
  // point is exercising the merge path when it is parallel.)
  const auto coo = data::make_sparse_random({30, 4, 28}, 0.05, 87);
  const tensor::CsfTensor half = make_half(coo);
  const tensor::DenseTensor dense = coo.densify();
  const auto factors = test::random_factors(coo.shape(), 8, 187);
  const int leaf_mode = 2;
  ASSERT_TRUE(half.walk_for(leaf_mode).leaf);
  const la::Matrix ref = tensor::mttkrp_fused(dense, factors, leaf_mode);
  test::expect_matrix_near(tensor::mttkrp_csf(half, factors, leaf_mode), ref,
                           1e-10, "leaf-scatter walk");
}

TEST(CsfHalf, ToCooRoundTripsUnderHalfLayout) {
  const auto coo = data::make_sparse_random({8, 6, 7, 5}, 0.06, 88);
  const tensor::CsfTensor half = make_half(coo);
  const tensor::CooTensor back = half.to_coo();
  ASSERT_EQ(back.nnz(), coo.nnz());
  ASSERT_EQ(back.shape(), coo.shape());
  EXPECT_LE(back.densify().max_abs_diff(coo.densify()), 0.0);
}

TEST(CsfHalf, PairOperatorsRequireAllModesLayout) {
  const auto coo = data::make_sparse_random({8, 7, 6}, 0.1, 89);
  const tensor::CsfTensor half = make_half(coo);
  const auto factors = test::random_factors(coo.shape(), 4, 189);
  EXPECT_THROW(core::PpOperators(half, factors), parpp::error);
  tensor::DenseTensor out;
  EXPECT_THROW(tensor::pair_mttkrp_csf_into(half, factors, 0, 1, out),
               parpp::error);
}

TEST(CsfHalf, SolveMatchesAllModesLayout) {
  // Same nonzeros, both layouts, a fixed sweep budget: the ALS iteration is
  // layout-blind (the walks differ only in traversal order), so the final
  // fitness must agree to solver-noise precision.
  const auto data = data::make_sparse_lowrank({14, 12, 10, 8}, 4, 0.05, 90);
  const tensor::CsfTensor all(data.tensor);
  const tensor::CsfTensor half = make_half(data.tensor);

  solver::SolverSpec spec;
  spec.method = solver::Method::kAls;
  spec.rank = 4;
  spec.seed = 11;
  spec.engine = core::EngineKind::kSparse;
  spec.stopping.max_sweeps = 20;
  spec.stopping.fitness_tol = 0.0;

  const auto r_all = parpp::solve(all, spec);
  const auto r_half = parpp::solve(half, spec);
  EXPECT_EQ(r_all.sweeps, r_half.sweeps);
  // The leaf walk reassociates the per-nonzero sums, so roundoff compounds
  // across sweeps — 1e-7 is far below any solver-quality difference.
  EXPECT_NEAR(r_all.fitness, r_half.fitness, 1e-7);
}

}  // namespace
}  // namespace parpp
