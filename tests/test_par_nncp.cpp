#include <gtest/gtest.h>

#include "parpp/data/hyperspectral.hpp"
#include "parpp/par/par_nncp.hpp"
#include "test_util.hpp"

namespace parpp::par {
namespace {

TEST(ParNncp, MatchesSequentialHals) {
  const auto t = test::random_tensor({8, 9, 10}, 1401);
  core::CpOptions opt;
  opt.rank = 4;
  opt.max_sweeps = 10;
  opt.tol = 0.0;
  const auto seq = core::nncp_hals(t, opt);

  ParNncpOptions popt;
  popt.par.base = opt;
  popt.par.grid_dims = {2, 2, 2};
  const auto par = par_nncp_hals(t, 8, popt);
  // HALS is row-local given Γ and M, so any grid reproduces the sequential
  // trajectory exactly.
  EXPECT_NEAR(par.fitness, seq.fitness, 1e-8);
  for (std::size_t m = 0; m < seq.factors.size(); ++m)
    EXPECT_LE(par.factors[m].max_abs_diff(seq.factors[m]), 1e-6);
}

TEST(ParNncp, FactorsStayNonnegativeAcrossGrids) {
  const auto t = test::random_tensor({7, 6, 8}, 1402);
  ParNncpOptions popt;
  popt.par.base.rank = 3;
  popt.par.base.max_sweeps = 8;
  popt.par.base.tol = 0.0;
  popt.par.grid_dims = {2, 1, 2};
  const auto r = par_nncp_hals(t, 4, popt);
  for (const auto& a : r.factors)
    for (index_t i = 0; i < a.rows(); ++i)
      for (index_t j = 0; j < a.cols(); ++j) EXPECT_GE(a(i, j), 0.0);
}

TEST(ParNncp, HyperspectralWorkloadConverges) {
  data::HyperspectralOptions hs;
  hs.height = 16;
  hs.width = 20;
  hs.bands = 8;
  hs.frames = 4;
  const auto t = data::make_hyperspectral_tensor(hs);
  ParNncpOptions popt;
  popt.par.base.rank = 10;
  popt.par.base.max_sweeps = 40;
  popt.par.base.tol = 1e-6;
  popt.par.grid_dims = {2, 2, 1, 1};
  const auto r = par_nncp_hals(t, 4, popt);
  EXPECT_GT(r.fitness, 0.75);
  EXPECT_GT(r.comm_cost.total().messages, 0.0);
}

TEST(ParNncp, NonDivisibleExtentsExact) {
  const auto t = test::random_tensor({9, 5, 7}, 1403);
  core::CpOptions opt;
  opt.rank = 3;
  opt.max_sweeps = 6;
  opt.tol = 0.0;
  const auto seq = core::nncp_hals(t, opt);
  ParNncpOptions popt;
  popt.par.base = opt;
  popt.par.grid_dims = {2, 2, 1};
  const auto par = par_nncp_hals(t, 4, popt);
  EXPECT_NEAR(par.fitness, seq.fitness, 1e-8);
}

}  // namespace
}  // namespace parpp::par
