#include <gtest/gtest.h>

#include <cmath>

#include "parpp/core/cp_als.hpp"
#include "parpp/mpsim/cost.hpp"
#include "parpp/util/cost_model.hpp"
#include "test_util.hpp"

namespace parpp {
namespace {

TEST(CostTally, SecondsCombineTerms) {
  CostParams p;
  p.alpha = 1.0;
  p.beta = 0.1;
  p.gamma = 0.01;
  p.nu = 0.001;
  CostTally t;
  t.add_collective(2.0, 10.0);
  t.add_compute(100.0, 1000.0);
  EXPECT_DOUBLE_EQ(t.seconds(p), 2.0 + 1.0 + 1.0 + 1.0);
}

TEST(CostCounter, PerClassAccounting) {
  mpsim::CostCounter c;
  c.charge(mpsim::Collective::kAllGather, 4, 100.0);
  c.charge(mpsim::Collective::kAllReduce, 4, 50.0);
  EXPECT_DOUBLE_EQ(c.by_class(mpsim::Collective::kAllGather).messages, 2.0);
  EXPECT_DOUBLE_EQ(c.by_class(mpsim::Collective::kAllGather).words_horizontal,
                   100.0);
  EXPECT_DOUBLE_EQ(c.by_class(mpsim::Collective::kAllReduce).messages, 4.0);
  EXPECT_DOUBLE_EQ(c.by_class(mpsim::Collective::kAllReduce).words_horizontal,
                   100.0);
  EXPECT_DOUBLE_EQ(c.total().messages, 6.0);
  EXPECT_DOUBLE_EQ(c.total().words_horizontal, 200.0);
}

TEST(CostCounter, NoChargeForSingleRank) {
  mpsim::CostCounter c;
  c.charge(mpsim::Collective::kBcast, 1, 1000.0);
  EXPECT_DOUBLE_EQ(c.total().messages, 0.0);
  EXPECT_DOUBLE_EQ(c.total().words_horizontal, 0.0);
}

TEST(TableOneModel, ClosedForms) {
  TableOneModel m{3, 100, 10, 8};
  EXPECT_DOUBLE_EQ(m.dt_seq_flops(), 4.0 * 1e6 * 10);
  EXPECT_DOUBLE_EQ(m.msdt_seq_flops(), 3.0 * 1e6 * 10);  // 2N/(N-1) = 3
  EXPECT_DOUBLE_EQ(m.pp_init_seq_flops(), m.dt_seq_flops());
  EXPECT_DOUBLE_EQ(m.pp_approx_seq_flops(),
                   2.0 * 9 * (100.0 * 100.0 * 10.0 + 100.0));
  EXPECT_DOUBLE_EQ(m.dt_local_flops(), m.dt_seq_flops() / 8.0);
}

TEST(TableOneModel, MsdtDtRatioIsTheoretical) {
  for (int n : {3, 4, 5, 6}) {
    TableOneModel m{n, 50, 8, 4};
    EXPECT_NEAR(m.dt_seq_flops() / m.msdt_seq_flops(),
                2.0 * (n - 1) / static_cast<double>(n), 1e-12);
  }
}

/// Measured TTM flops of the engines match the Table I leading terms.
TEST(TableOneModel, MeasuredFlopsMatchDt) {
  const index_t s = 12, r = 4;
  const std::vector<index_t> shape{s, s, s};
  const auto t = test::random_tensor(shape, 1001);
  core::CpOptions opt;
  opt.rank = r;
  opt.max_sweeps = 4;
  opt.tol = 0.0;
  opt.engine = core::EngineKind::kDt;
  const auto result = core::cp_als(t, opt);
  const TableOneModel model{3, s, r, 1};
  const double per_sweep = result.profile.flops(Kernel::kTTM) / 4.0;
  // TTM flops per sweep == 2 first-level TTMs == 4 s^3 R exactly.
  EXPECT_NEAR(per_sweep, model.dt_seq_flops(), 1e-6);
}

TEST(TableOneModel, MeasuredFlopsMatchMsdt) {
  const index_t s = 12, r = 4;
  const std::vector<index_t> shape{s, s, s};
  const auto t = test::random_tensor(shape, 1002);
  core::CpOptions opt;
  opt.rank = r;
  opt.max_sweeps = 9;  // multiple of N-1 plus warmup: rotation-aligned
  opt.tol = 0.0;
  opt.engine = core::EngineKind::kMsdt;
  const auto result = core::cp_als(t, opt);
  const TableOneModel model{3, s, r, 1};
  const double per_sweep = result.profile.flops(Kernel::kTTM) / 9.0;
  // Steady state: 2N/(N-1) s^N R = 3 s^3 R; allow the warm-up extra TTM.
  EXPECT_LT(per_sweep, model.msdt_seq_flops() * 1.15);
  EXPECT_GT(per_sweep, model.msdt_seq_flops() * 0.95);
}

TEST(Profile, DeltaAndAccumulate) {
  Profile a;
  a.add(Kernel::kTTM, 1.0, 100.0);
  Profile b = a;
  b.add(Kernel::kMTTV, 0.5, 50.0);
  const Profile d = b.delta_since(a);
  EXPECT_DOUBLE_EQ(d.seconds(Kernel::kTTM), 0.0);
  EXPECT_DOUBLE_EQ(d.seconds(Kernel::kMTTV), 0.5);
  Profile c;
  c.accumulate(a);
  c.accumulate(d);
  EXPECT_DOUBLE_EQ(c.total_seconds(), b.total_seconds());
  EXPECT_DOUBLE_EQ(c.total_flops(), 150.0);
}

TEST(Profile, SummaryNamesCategories) {
  Profile p;
  p.add(Kernel::kTTM, 1.25);
  p.add(Kernel::kSolve, 0.5);
  const std::string s = p.summary();
  EXPECT_NE(s.find("TTM"), std::string::npos);
  EXPECT_NE(s.find("solve"), std::string::npos);
}

}  // namespace
}  // namespace parpp
