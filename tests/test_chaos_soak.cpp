// Chaos soak: seeded randomized fault plans across the full method ×
// storage × fault-kind × elastic matrix. Every trial must end in a
// structured outcome — ok, recovered, recovered-shrunk, or a clean abort —
// with a finite or absent fitness, never a hang (the short communicator
// timeout bounds every collective), and a same-seed rerun must reproduce
// the report bitwise.
#include <gtest/gtest.h>

#include <cmath>
#include <random>
#include <string>
#include <vector>

#include "parpp/data/sparse_synthetic.hpp"
#include "parpp/solver/solver.hpp"
#include "parpp/tensor/csf_tensor.hpp"
#include "test_util.hpp"

namespace parpp {
namespace {

constexpr int kTrials = 12;

[[nodiscard]] const tensor::DenseTensor& dense_input() {
  static const tensor::DenseTensor t = test::low_rank_tensor({14, 12, 10}, 3, 51);
  return t;
}

[[nodiscard]] const tensor::CsfTensor& sparse_input() {
  static const tensor::CsfTensor t(
      data::make_sparse_lowrank({14, 12, 10}, 3, 0.25, 52).tensor);
  return t;
}

struct Trial {
  solver::SolverSpec spec;
  bool sparse = false;
};

/// Derive a full trial deterministically from its index: same index, same
/// plan, byte for byte. The mt19937 draw order below is part of the test's
/// determinism contract — append new draws, never reorder.
[[nodiscard]] Trial make_trial(int index) {
  std::mt19937 gen(0xC0FFEEu + static_cast<unsigned>(index));
  const auto draw = [&](int lo, int hi) {
    return std::uniform_int_distribution<int>(lo, hi)(gen);
  };

  static const solver::Method kMethods[] = {
      solver::Method::kAls, solver::Method::kPp, solver::Method::kNncpHals};
  static const mpsim::FaultKind kKinds[] = {
      mpsim::FaultKind::kDelay, mpsim::FaultKind::kTimeout,
      mpsim::FaultKind::kRankAbort, mpsim::FaultKind::kCorruption};

  Trial t;
  t.sparse = draw(0, 1) == 1;
  t.spec.method = kMethods[draw(0, 2)];
  t.spec.rank = 3;
  t.spec.seed = 100 + static_cast<std::uint64_t>(index);
  t.spec.stopping.max_sweeps = 6;
  t.spec.stopping.fitness_tol = 1e-14;
  if (t.sparse) t.spec.engine = core::EngineKind::kSparse;

  const int ranks = draw(4, 8);
  t.spec.execution = solver::Execution::simulated_parallel(ranks);
  t.spec.execution.comm_timeout_seconds = 0.3;
  t.spec.execution.elastic.mode =
      draw(0, 1) == 1 ? par::ElasticMode::kShrink : par::ElasticMode::kOff;

  t.spec.execution.fault.kind = kKinds[draw(0, 3)];
  t.spec.execution.fault.rank = draw(0, ranks - 1);
  t.spec.execution.fault.nth = draw(4, 50);
  t.spec.execution.fault.delay_seconds = 0.01 * draw(1, 4);
  t.spec.execution.fault.seed = t.spec.seed;
  // Some trials fire a follow-up fault a while later (the sequence axis).
  if (draw(0, 2) == 0) {
    mpsim::FaultEvent ev;
    ev.kind = t.spec.execution.fault.kind == mpsim::FaultKind::kRankAbort
                  ? mpsim::FaultKind::kDelay
                  : t.spec.execution.fault.kind;
    ev.rank = draw(0, ranks - 1);
    ev.nth = t.spec.execution.fault.nth + draw(20, 40);
    ev.delay_seconds = t.spec.execution.fault.delay_seconds;
    t.spec.execution.fault.then.push_back(ev);
  }
  return t;
}

[[nodiscard]] solver::SolveReport run_trial(const Trial& t) {
  return t.sparse ? parpp::solve(sparse_input(), t.spec)
                  : parpp::solve(dense_input(), t.spec);
}

void expect_identical_reports(const solver::SolveReport& a,
                              const solver::SolveReport& b) {
  EXPECT_EQ(a.status, b.status);
  EXPECT_EQ(a.stop_reason, b.stop_reason);
  EXPECT_EQ(a.sweeps, b.sweeps);
  EXPECT_EQ(a.fitness, b.fitness);  // bitwise
  EXPECT_EQ(a.final_ranks, b.final_ranks);
  ASSERT_EQ(a.recovery_log.size(), b.recovery_log.size());
  for (std::size_t i = 0; i < a.recovery_log.size(); ++i) {
    EXPECT_EQ(a.recovery_log[i].sweep, b.recovery_log[i].sweep);
    EXPECT_EQ(a.recovery_log[i].what, b.recovery_log[i].what);
  }
}

TEST(ChaosSoak, EveryTrialEndsStructuredAndDeterministic) {
  for (int i = 0; i < kTrials; ++i) {
    const Trial t = make_trial(i);
    SCOPED_TRACE("trial " + std::to_string(i) + ": method " +
                 std::string(solver::to_string(t.spec.method)) +
                 (t.sparse ? ", sparse" : ", dense") + ", fault " +
                 std::string(solver::to_string(t.spec.execution.fault.kind)) +
                 " on rank " +
                 std::to_string(t.spec.execution.fault.rank) + "/" +
                 std::to_string(t.spec.execution.nprocs) + " nth " +
                 std::to_string(t.spec.execution.fault.nth) + ", elastic " +
                 std::string(solver::to_string(t.spec.execution.elastic.mode)));

    const solver::SolveReport r = run_trial(t);

    // Structured outcome, never an unclassified state.
    const core::SolveStatus s = r.status;
    EXPECT_TRUE(s == core::SolveStatus::kOk ||
                s == core::SolveStatus::kRecovered ||
                s == core::SolveStatus::kRecoveredShrunk ||
                s == core::SolveStatus::kNumericalAbort ||
                s == core::SolveStatus::kCommAbort)
        << "unexpected status " << solver::to_string(s);
    if (s == core::SolveStatus::kOk || s == core::SolveStatus::kRecovered ||
        s == core::SolveStatus::kRecoveredShrunk) {
      EXPECT_TRUE(std::isfinite(r.fitness));
    }
    if (s == core::SolveStatus::kRecoveredShrunk) {
      EXPECT_EQ(t.spec.execution.elastic.mode, par::ElasticMode::kShrink);
      EXPECT_LT(r.final_ranks, t.spec.execution.nprocs);
      EXPECT_GE(r.final_ranks, 1);
    }
    // Aborts must say why.
    if (s == core::SolveStatus::kNumericalAbort ||
        s == core::SolveStatus::kCommAbort) {
      EXPECT_FALSE(r.recovery_log.empty());
    }

    // Same seed, same plan, same report — bitwise.
    expect_identical_reports(r, run_trial(t));
  }
}

}  // namespace
}  // namespace parpp
