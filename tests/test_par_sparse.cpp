// Distributed sparse CP over the mpsim grid: parallel-vs-sequential parity
// for every sparse method, the full method x execution x storage facade
// matrix, and TensorSource misuse.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "parpp/data/sparse_synthetic.hpp"
#include "parpp/solver/solver.hpp"
#include "parpp/tensor/csf_tensor.hpp"
#include "test_util.hpp"

namespace parpp {
namespace {

solver::SolverSpec sparse_spec(solver::Method method, index_t rank,
                               int max_sweeps, double tol) {
  solver::SolverSpec spec;
  spec.method = method;
  spec.rank = rank;
  spec.seed = 7;
  spec.stopping.max_sweeps = max_sweeps;
  spec.stopping.fitness_tol = tol;
  return spec;
}

TEST(ParSparse, AlsMatchesSequentialFitnessAtEveryRankCount) {
  const auto gen = data::make_sparse_lowrank({18, 16, 17}, 4, 0.06, 31);
  const tensor::CsfTensor csf(gen.tensor);

  // Fixed sweep budget (tol 0) keeps all runs on the same trajectory, so
  // only collective summation order separates the fitness values.
  solver::SolverSpec spec = sparse_spec(solver::Method::kAls, 4, 12, 0.0);
  const auto seq = parpp::solve(csf, spec);

  for (int nprocs : {2, 4, 8}) {
    spec.execution = solver::Execution::simulated_parallel(nprocs);
    const auto par = parpp::solve(csf, spec);
    EXPECT_EQ(par.sweeps, seq.sweeps) << nprocs << " ranks";
    EXPECT_NEAR(par.fitness, seq.fitness, 1e-10) << nprocs << " ranks";
    // Assembled factors reconstruct the same model.
    ASSERT_EQ(par.factors.size(), seq.factors.size());
    for (std::size_t m = 0; m < par.factors.size(); ++m) {
      ASSERT_EQ(par.factors[m].rows(), seq.factors[m].rows());
      ASSERT_EQ(par.factors[m].cols(), seq.factors[m].cols());
    }
  }
}

TEST(ParSparse, NncpMatchesSequentialFitness) {
  const auto gen = data::make_sparse_lowrank({14, 15, 13}, 3, 0.08, 13);
  const tensor::CsfTensor csf(gen.tensor);

  // 6 sweeps stays inside the regime where the trajectories are identical;
  // past that the HALS projection boundary chaotically amplifies summation
  // round-off (the same reason the dense parity tests cap their budgets).
  solver::SolverSpec spec = sparse_spec(solver::Method::kNncpHals, 3, 6, 0.0);
  const auto seq = parpp::solve(csf, spec);
  for (int nprocs : {2, 4, 8}) {
    spec.execution = solver::Execution::simulated_parallel(nprocs);
    const auto par = parpp::solve(csf, spec);
    EXPECT_NEAR(par.fitness, seq.fitness, 1e-10) << nprocs << " ranks";
  }
}

TEST(ParSparse, PpMatchesSequentialFitness) {
  const auto gen = data::make_sparse_lowrank({16, 14, 15}, 4, 0.08, 29);
  const tensor::CsfTensor csf(gen.tensor);

  solver::SolverSpec spec = sparse_spec(solver::Method::kPp, 4, 14, 0.0);
  const auto seq = parpp::solve(csf, spec);
  EXPECT_GT(seq.num_pp_approx, 0)
      << "the PP phase never activated — the comparison is vacuous";

  for (int nprocs : {2, 4, 8}) {
    spec.execution = solver::Execution::simulated_parallel(nprocs);
    const auto par = parpp::solve(csf, spec);
    EXPECT_EQ(par.num_pp_init, seq.num_pp_init) << nprocs << " ranks";
    EXPECT_EQ(par.num_pp_approx, seq.num_pp_approx) << nprocs << " ranks";
    EXPECT_NEAR(par.fitness, seq.fitness, 1e-10) << nprocs << " ranks";
  }
}

TEST(ParSparse, PpNncpConvergesInParallel) {
  const auto gen = data::make_sparse_lowrank({14, 13, 12}, 3, 0.08, 3);
  const tensor::CsfTensor csf(gen.tensor);

  solver::SolverSpec spec =
      sparse_spec(solver::Method::kPpNncp, 3, 300, 1e-9);
  spec.execution = solver::Execution::simulated_parallel(4);
  const auto par = parpp::solve(csf, spec);
  EXPECT_GT(par.fitness, 0.9);
  for (const auto& f : par.factors)
    for (index_t i = 0; i < f.rows(); ++i)
      for (index_t j = 0; j < f.cols(); ++j) EXPECT_GE(f(i, j), 0.0);
}

TEST(ParSparse, ParallelRunsReportCommunicationCosts) {
  const auto gen = data::make_sparse_lowrank({12, 12, 12}, 3, 0.08, 99);
  const tensor::CsfTensor csf(gen.tensor);

  solver::SolverSpec spec = sparse_spec(solver::Method::kAls, 3, 5, 0.0);
  spec.execution = solver::Execution::simulated_parallel(4);
  const auto report = parpp::solve(csf, spec);
  EXPECT_GT(report.comm_cost.total().messages, 0.0);
}

TEST(SolverFacade, EveryCellRunsOrReportsStructuredError) {
  // The complete method x execution x storage matrix must either solve or
  // throw parpp::error — never crash or throw anything else. After this
  // PR all sixteen cells actually run.
  const auto gen = data::make_sparse_lowrank({10, 9, 8}, 2, 0.1, 17);
  const tensor::CsfTensor csf(gen.tensor);
  const tensor::DenseTensor dense = gen.tensor.densify();

  int ran = 0;
  for (const solver::MethodEntry& entry : solver::registered_methods()) {
    for (const bool parallel : {false, true}) {
      for (const bool sparse : {false, true}) {
        solver::SolverSpec spec = sparse_spec(entry.method, 2, 4, 1e-6);
        if (parallel) spec.execution = solver::Execution::simulated_parallel(4);
        const solver::TensorSource source =
            sparse ? solver::TensorSource(csf) : solver::TensorSource(dense);
        try {
          const auto report = parpp::solve(source, spec);
          EXPECT_GE(report.fitness, 0.0);
          EXPECT_LE(report.fitness, 1.0 + 1e-12);
          ++ran;
        } catch (const parpp::error&) {
          // A structured gap report is acceptable; anything else escapes
          // and fails the test.
        }
      }
    }
  }
  EXPECT_EQ(ran, 16) << "some registered cells no longer run";
}

TEST(TensorSource, MisuseTripsStructuredChecks) {
  const auto gen = data::make_sparse_lowrank({6, 6, 6}, 2, 0.2, 1);
  const tensor::CsfTensor csf(gen.tensor);
  const tensor::DenseTensor dense = gen.tensor.densify();

  const solver::TensorSource sparse_source(csf);
  EXPECT_TRUE(sparse_source.is_sparse());
  EXPECT_THROW((void)sparse_source.dense(), parpp::error);
  EXPECT_NO_THROW((void)sparse_source.sparse());

  const solver::TensorSource dense_source(dense);
  EXPECT_FALSE(dense_source.is_sparse());
  EXPECT_THROW((void)dense_source.sparse(), parpp::error);
  EXPECT_NO_THROW((void)dense_source.dense());
}

}  // namespace
}  // namespace parpp
