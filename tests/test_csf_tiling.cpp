// CSF tiling: tile-structure invariants, tiled-walk correctness against the
// fiber walk and the dense reference (including forced multi-thread teams
// on short root modes), allocation-free steady state, and team-sized
// workspace slabs.
#include <gtest/gtest.h>
#include <omp.h>

#include <vector>

#include "parpp/core/sparse_engine.hpp"
#include "parpp/data/sparse_synthetic.hpp"
#include "parpp/tensor/csf_tensor.hpp"
#include "parpp/tensor/mttkrp_fused.hpp"
#include "parpp/tensor/mttkrp_sparse.hpp"
#include "test_util.hpp"

namespace parpp {
namespace {

/// Runs `body` with the OpenMP thread count forced to `threads`.
template <typename Body>
void with_threads(int threads, Body&& body) {
  const int ambient = omp_get_max_threads();
  omp_set_num_threads(threads);
  body();
  omp_set_num_threads(ambient);
}

void expect_valid_tiling(const tensor::CsfTensor& t) {
  for (int mode = 0; mode < t.order(); ++mode) {
    const auto& tree = t.tree(mode);
    const auto level1 = static_cast<index_t>(tree.fids[1].size());
    const index_t tiles = tree.tile_count();
    ASSERT_GE(tiles, 0) << "mode " << mode;
    ASSERT_EQ(tree.tile_root.size(), static_cast<std::size_t>(tiles));
    ASSERT_EQ(tree.tile_root_end.size(), static_cast<std::size_t>(tiles));
    if (tiles == 0) {
      EXPECT_EQ(level1, 0);
      continue;
    }
    EXPECT_EQ(tree.tile_ptr.front(), 0);
    EXPECT_EQ(tree.tile_ptr.back(), level1);
    const auto& root_ptr = tree.fptr.front();
    for (index_t tt = 0; tt < tiles; ++tt) {
      const index_t k0 = tree.tile_ptr[static_cast<std::size_t>(tt)];
      const index_t k1 = tree.tile_ptr[static_cast<std::size_t>(tt) + 1];
      EXPECT_LT(k0, k1) << "empty tile " << tt << " mode " << mode;
      const index_t rb = tree.tile_root[static_cast<std::size_t>(tt)];
      const index_t re = tree.tile_root_end[static_cast<std::size_t>(tt)];
      EXPECT_LT(rb, re);
      // The recorded root range is exactly the set of fibers whose level-1
      // children intersect [k0, k1).
      EXPECT_LE(root_ptr[static_cast<std::size_t>(rb)], k0);
      EXPECT_GT(root_ptr[static_cast<std::size_t>(rb) + 1], k0);
      EXPECT_LT(root_ptr[static_cast<std::size_t>(re) - 1], k1);
      EXPECT_GE(root_ptr[static_cast<std::size_t>(re)], k1);
    }
  }
}

TEST(CsfTiling, TileStructureCoversEveryTree) {
  expect_valid_tiling(
      tensor::CsfTensor(data::make_sparse_random({9, 8, 7}, 0.15, 5)));
  expect_valid_tiling(
      tensor::CsfTensor(data::make_sparse_random({40, 6}, 0.3, 6)));
  expect_valid_tiling(tensor::CsfTensor(
      data::make_sparse_powerlaw({4, 50, 50}, 0.1, 1.5, 7).tensor));
  expect_valid_tiling(tensor::CsfTensor(
      data::make_sparse_random({5, 4, 3, 4, 5}, 0.05, 8)));
}

TEST(CsfTiling, ShortRootModeSplitsIntoMultipleTiles) {
  // 4 root fibers but far more than kTileLeafTarget nonzeros: the fiber
  // schedule sees 4 tasks, the tiling must expose real parallelism.
  const auto gen = data::make_sparse_powerlaw({4, 64, 64}, 0.7, 0.3, 11, 0);
  const tensor::CsfTensor csf(gen.tensor);
  ASSERT_GT(csf.nnz(), 2 * tensor::CsfTensor::kTileLeafTarget);
  const auto& tree = csf.tree(0);
  EXPECT_EQ(tree.root_count(), 4);
  EXPECT_GT(tree.tile_count(), 1);
}

/// Property: the tiled walk equals the fiber walk and the dense reference
/// for every mode, at 1 and 4 threads (4 exercises split-root fix-up paths
/// regardless of the physical core count).
void expect_tiled_matches(const tensor::CooTensor& coo, index_t rank,
                          std::uint64_t seed) {
  const tensor::CsfTensor csf(coo);
  const tensor::DenseTensor dense = coo.densify();
  const auto factors = test::random_factors(coo.shape(), rank, seed);
  for (int threads : {1, 4}) {
    with_threads(threads, [&] {
      for (int mode = 0; mode < coo.order(); ++mode) {
        const la::Matrix ref = tensor::mttkrp_fused(dense, factors, mode);
        test::expect_matrix_near(
            tensor::mttkrp_csf(csf, factors, mode, nullptr, nullptr,
                               tensor::CsfWalk::kTiled),
            ref, 1e-10, "tiled vs dense fused");
        test::expect_matrix_near(
            tensor::mttkrp_csf(csf, factors, mode, nullptr, nullptr,
                               tensor::CsfWalk::kFiber),
            ref, 1e-10, "fiber vs dense fused");
      }
    });
  }
}

TEST(CsfTiling, TiledWalkMatchesReferenceAllModes) {
  expect_tiled_matches(data::make_sparse_random({9, 8, 7}, 0.15, 5), 6, 205);
  expect_tiled_matches(data::make_sparse_random({12, 9}, 0.2, 8), 5, 206);
  expect_tiled_matches(
      data::make_sparse_random({5, 4, 3, 4, 5}, 0.05, 7), 4, 207);
  // Short root mode with skew: roots split across many tiles.
  expect_tiled_matches(
      data::make_sparse_powerlaw({3, 40, 40}, 0.3, 1.0, 9, 0).tensor, 5, 208);
}

TEST(CsfTiling, EmptyAndTinyTensorsAreSafe) {
  tensor::CooTensor empty({6, 5, 4});
  empty.coalesce();
  const tensor::CsfTensor csf(empty);
  EXPECT_EQ(csf.tree(0).tile_count(), 0);
  const auto factors = test::random_factors(empty.shape(), 3, 3);
  const la::Matrix out = tensor::mttkrp_csf(csf, factors, 0, nullptr, nullptr,
                                            tensor::CsfWalk::kTiled);
  EXPECT_EQ(out.rows(), 6);
  for (index_t i = 0; i < out.size(); ++i) EXPECT_EQ(out.data()[i], 0.0);

  expect_tiled_matches(data::make_sparse_random({2, 2, 2}, 0.9, 4), 3, 209);
}

TEST(CsfTiling, TiledSteadyStateIsAllocationFree) {
  const auto gen = data::make_sparse_powerlaw({4, 48, 48}, 0.3, 1.0, 21, 0);
  const tensor::CsfTensor csf(gen.tensor);
  const auto factors = test::random_factors(csf.shape(), 8, 42);
  with_threads(4, [&] {
    util::KernelWorkspace ws;
    la::Matrix out;
    for (int mode = 0; mode < 3; ++mode)
      tensor::mttkrp_csf_into(csf, factors, mode, out, nullptr, &ws,
                              tensor::CsfWalk::kTiled);
    const std::size_t bytes = ws.total_bytes();
    const std::size_t allocs = ws.allocation_count();
    for (int sweep = 0; sweep < 5; ++sweep)
      for (int mode = 0; mode < 3; ++mode)
        tensor::mttkrp_csf_into(csf, factors, mode, out, nullptr, &ws,
                                tensor::CsfWalk::kTiled);
    EXPECT_EQ(ws.total_bytes(), bytes);
    EXPECT_EQ(ws.allocation_count(), allocs);
  });
}

TEST(CsfTiling, WorkspaceSlabsAreTeamSized) {
  // The accumulator slab is sized by the team that actually runs, so a
  // 2-thread cap must lease a smaller arena than a 4-thread one. (Order 4 x
  // rank 128 puts the per-thread slab above the pool's 512-double rounding
  // granularity, so the difference is observable in total_bytes.)
  const tensor::CooTensor coo =
      data::make_sparse_random({10, 9, 8, 7}, 0.05, 4);
  const tensor::CsfTensor csf(coo);
  const auto factors = test::random_factors(coo.shape(), 128, 42);
  auto arena_bytes = [&](int threads) {
    std::size_t bytes = 0;
    with_threads(threads, [&] {
      util::KernelWorkspace ws;
      la::Matrix out;
      tensor::mttkrp_csf_into(csf, factors, 0, out, nullptr, &ws,
                              tensor::CsfWalk::kFiber);
      bytes = ws.total_bytes();
    });
    return bytes;
  };
  EXPECT_LT(arena_bytes(2), arena_bytes(4));
}

TEST(CsfTiling, EngineHonorsWalkOption) {
  const auto gen = data::make_sparse_powerlaw({4, 30, 30}, 0.2, 1.0, 31, 0);
  const tensor::CsfTensor csf(gen.tensor);
  auto factors = test::random_factors(csf.shape(), 6, 17);
  core::EngineOptions tiled_opt;
  tiled_opt.csf_walk = tensor::CsfWalk::kTiled;
  with_threads(4, [&] {
    const auto tiled =
        core::make_engine(core::EngineKind::kSparse, csf, factors, nullptr,
                          tiled_opt);
    const auto fiber = core::make_engine(core::EngineKind::kSparse, csf,
                                         factors, nullptr, {});
    for (int mode = 0; mode < 3; ++mode) {
      test::expect_matrix_near(tiled->mttkrp(mode), fiber->mttkrp(mode),
                               1e-12, "tiled engine vs fiber engine");
    }
  });
}

}  // namespace
}  // namespace parpp
