// Shared helpers for the parpp test suite.
#pragma once

#include <gtest/gtest.h>

#include <vector>

#include "parpp/core/cp_als.hpp"
#include "parpp/la/matrix.hpp"
#include "parpp/tensor/dense_tensor.hpp"
#include "parpp/tensor/reconstruct.hpp"
#include "parpp/util/rng.hpp"

namespace parpp::test {

inline tensor::DenseTensor random_tensor(const std::vector<index_t>& shape,
                                         std::uint64_t seed) {
  tensor::DenseTensor t(shape);
  Rng rng(seed);
  t.fill_uniform(rng);
  return t;
}

inline tensor::DenseTensor random_normal_tensor(
    const std::vector<index_t>& shape, std::uint64_t seed) {
  tensor::DenseTensor t(shape);
  Rng rng(seed);
  t.fill_normal(rng);
  return t;
}

inline la::Matrix random_matrix(index_t rows, index_t cols,
                                std::uint64_t seed) {
  la::Matrix m(rows, cols);
  Rng rng(seed);
  m.fill_uniform(rng);
  return m;
}

inline std::vector<la::Matrix> random_factors(
    const std::vector<index_t>& shape, index_t rank, std::uint64_t seed) {
  return core::init_factors(shape, rank, seed);
}

/// Exact low-rank tensor with known factors.
inline tensor::DenseTensor low_rank_tensor(const std::vector<index_t>& shape,
                                           index_t rank, std::uint64_t seed) {
  return tensor::reconstruct(random_factors(shape, rank, seed));
}

inline void expect_matrix_near(const la::Matrix& a, const la::Matrix& b,
                               double tol, const char* what = "") {
  ASSERT_EQ(a.rows(), b.rows()) << what;
  ASSERT_EQ(a.cols(), b.cols()) << what;
  EXPECT_LE(a.max_abs_diff(b), tol) << what;
}

inline void expect_tensor_near(const tensor::DenseTensor& a,
                               const tensor::DenseTensor& b, double tol,
                               const char* what = "") {
  ASSERT_EQ(a.shape(), b.shape()) << what;
  EXPECT_LE(a.max_abs_diff(b), tol) << what;
}

/// Explicit relative residual ||T - [[A]]||_F / ||T||_F by reconstruction —
/// the ground truth that Eq. (3) must match.
inline double explicit_residual(const tensor::DenseTensor& t,
                                const std::vector<la::Matrix>& factors) {
  tensor::DenseTensor approx = tensor::reconstruct(factors);
  approx.axpy(-1.0, t);
  return approx.frobenius_norm() / t.frobenius_norm();
}

}  // namespace parpp::test
