#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "parpp/mpsim/runtime.hpp"
#include "parpp/util/rng.hpp"

namespace parpp::mpsim {
namespace {

class CommRanks : public ::testing::TestWithParam<int> {};

TEST_P(CommRanks, AllReduceSumsAcrossRanks) {
  const int p = GetParam();
  const index_t n = 37;
  std::vector<std::vector<double>> results(static_cast<std::size_t>(p));
  run(p, [&](Comm& comm) {
    std::vector<double> data(static_cast<std::size_t>(n));
    for (index_t i = 0; i < n; ++i)
      data[static_cast<std::size_t>(i)] =
          static_cast<double>(comm.rank() + 1) * static_cast<double>(i);
    comm.allreduce_sum(data.data(), n, PARPP_COMM_TAG("t-allreduce"));
    results[static_cast<std::size_t>(comm.rank())] = data;
  });
  const double rank_sum = p * (p + 1) / 2.0;
  for (int r = 0; r < p; ++r) {
    for (index_t i = 0; i < n; ++i) {
      EXPECT_NEAR(results[static_cast<std::size_t>(r)]
                         [static_cast<std::size_t>(i)],
                  rank_sum * static_cast<double>(i), 1e-12)
          << "rank " << r << " elem " << i;
    }
  }
}

TEST_P(CommRanks, AllGatherConcatenatesInRankOrder) {
  const int p = GetParam();
  const index_t n = 5;
  std::vector<std::vector<double>> results(static_cast<std::size_t>(p));
  run(p, [&](Comm& comm) {
    std::vector<double> mine(static_cast<std::size_t>(n),
                             static_cast<double>(comm.rank()));
    std::vector<double> all(static_cast<std::size_t>(n * p));
    comm.allgather(mine.data(), n, all.data(), PARPP_COMM_TAG("t-allgather"));
    results[static_cast<std::size_t>(comm.rank())] = all;
  });
  for (int r = 0; r < p; ++r)
    for (int src = 0; src < p; ++src)
      for (index_t i = 0; i < n; ++i)
        EXPECT_DOUBLE_EQ(results[static_cast<std::size_t>(r)]
                                [static_cast<std::size_t>(src * n + i)],
                         static_cast<double>(src));
}

TEST_P(CommRanks, ReduceScatterSumsAndPartitions) {
  const int p = GetParam();
  const index_t chunk = 4;
  const index_t total = chunk * p;
  std::vector<std::vector<double>> results(static_cast<std::size_t>(p));
  run(p, [&](Comm& comm) {
    std::vector<double> contribution(static_cast<std::size_t>(total));
    for (index_t i = 0; i < total; ++i)
      contribution[static_cast<std::size_t>(i)] =
          static_cast<double>(i) + static_cast<double>(comm.rank());
    std::vector<double> out(static_cast<std::size_t>(chunk));
    comm.reduce_scatter_sum(contribution.data(), total, out.data(),
                            PARPP_COMM_TAG("t-reduce-scatter"));
    results[static_cast<std::size_t>(comm.rank())] = out;
  });
  const double rank_offset_sum = p * (p - 1) / 2.0;
  for (int r = 0; r < p; ++r)
    for (index_t i = 0; i < chunk; ++i) {
      const double idx = static_cast<double>(r * chunk + i);
      EXPECT_NEAR(
          results[static_cast<std::size_t>(r)][static_cast<std::size_t>(i)],
          idx * p + rank_offset_sum, 1e-12);
    }
}

TEST_P(CommRanks, BcastReplicatesRoot) {
  const int p = GetParam();
  std::vector<double> seen(static_cast<std::size_t>(p), 0.0);
  run(p, [&](Comm& comm) {
    double v = comm.rank() == 1 % p ? 42.0 : -1.0;
    comm.bcast(&v, 1, 1 % p, PARPP_COMM_TAG("t-bcast"));
    seen[static_cast<std::size_t>(comm.rank())] = v;
  });
  for (double v : seen) EXPECT_DOUBLE_EQ(v, 42.0);
}

TEST_P(CommRanks, AllToAllTransposesChunks) {
  const int p = GetParam();
  const index_t c = 3;
  std::vector<std::vector<double>> results(static_cast<std::size_t>(p));
  run(p, [&](Comm& comm) {
    std::vector<double> in(static_cast<std::size_t>(c * p));
    for (int q = 0; q < p; ++q)
      for (index_t i = 0; i < c; ++i)
        in[static_cast<std::size_t>(q * c + i)] =
            comm.rank() * 100.0 + q * 10.0 + static_cast<double>(i);
    std::vector<double> out(static_cast<std::size_t>(c * p));
    comm.alltoall(in.data(), c, out.data(), PARPP_COMM_TAG("t-alltoall"));
    results[static_cast<std::size_t>(comm.rank())] = out;
  });
  for (int r = 0; r < p; ++r)
    for (int src = 0; src < p; ++src)
      for (index_t i = 0; i < c; ++i)
        EXPECT_DOUBLE_EQ(results[static_cast<std::size_t>(r)]
                                [static_cast<std::size_t>(src * c + i)],
                         src * 100.0 + r * 10.0 + static_cast<double>(i));
}

INSTANTIATE_TEST_SUITE_P(RankCounts, CommRanks,
                         ::testing::Values(1, 2, 3, 4, 7, 8, 16));

TEST(Comm, SplitFormsCorrectSubgroups) {
  const int p = 6;
  std::vector<int> sub_rank(static_cast<std::size_t>(p), -1);
  std::vector<int> sub_size(static_cast<std::size_t>(p), -1);
  std::vector<double> sums(static_cast<std::size_t>(p), 0.0);
  run(p, [&](Comm& comm) {
    const int color = comm.rank() % 2;           // evens and odds
    // key = old rank
    Comm sub = comm.split(color, comm.rank(), PARPP_COMM_TAG("t-split"));
    sub_rank[static_cast<std::size_t>(comm.rank())] = sub.rank();
    sub_size[static_cast<std::size_t>(comm.rank())] = sub.size();
    double v = static_cast<double>(comm.rank());
    sub.allreduce_sum(&v, 1, PARPP_COMM_TAG("t-allreduce"));
    sums[static_cast<std::size_t>(comm.rank())] = v;
  });
  // Evens: ranks 0,2,4 -> sum 6; odds: 1,3,5 -> sum 9.
  for (int r = 0; r < p; ++r) {
    EXPECT_EQ(sub_size[static_cast<std::size_t>(r)], 3);
    EXPECT_EQ(sub_rank[static_cast<std::size_t>(r)], r / 2);
    EXPECT_DOUBLE_EQ(sums[static_cast<std::size_t>(r)],
                     r % 2 == 0 ? 6.0 : 9.0);
  }
}

TEST(Comm, NestedCollectivesAfterSplit) {
  // Collectives on parent and child interleave safely (barrier discipline).
  const int p = 4;
  std::vector<double> results(static_cast<std::size_t>(p), 0.0);
  run(p, [&](Comm& comm) {
    Comm sub =
        comm.split(comm.rank() / 2, comm.rank(), PARPP_COMM_TAG("t-split"));
    double a = 1.0;
    comm.allreduce_sum(&a, 1, PARPP_COMM_TAG("t-allreduce"));  // = 4
    double b = 1.0;
    sub.allreduce_sum(&b, 1, PARPP_COMM_TAG("t-allreduce"));  // = 2
    double c2 = 1.0;
    comm.allreduce_sum(&c2, 1, PARPP_COMM_TAG("t-allreduce"));  // = 4
    results[static_cast<std::size_t>(comm.rank())] = a + b + c2;
  });
  for (double v : results) EXPECT_DOUBLE_EQ(v, 10.0);
}

TEST(Comm, CostChargesMatchModel) {
  const int p = 8;
  std::vector<double> msgs(static_cast<std::size_t>(p), 0.0);
  std::vector<double> words(static_cast<std::size_t>(p), 0.0);
  run(p, [&](Comm& comm) {
    std::vector<double> data(64, 1.0);
    comm.allreduce_sum(data.data(), 64, PARPP_COMM_TAG("t-allreduce"));
    msgs[static_cast<std::size_t>(comm.rank())] =
        comm.cost()->total().messages;
    words[static_cast<std::size_t>(comm.rank())] =
        comm.cost()->total().words_horizontal;
  });
  // All-Reduce: 2 log2(8) = 6 messages, 2 * 64 = 128 words.
  for (int r = 0; r < p; ++r) {
    EXPECT_DOUBLE_EQ(msgs[static_cast<std::size_t>(r)], 6.0);
    EXPECT_DOUBLE_EQ(words[static_cast<std::size_t>(r)], 128.0);
  }
}

TEST(Runtime, PropagatesExceptions) {
  EXPECT_THROW(run(1, [](Comm&) { throw error("boom"); }), error);
}

TEST(Runtime, SingleRankCollectivesAreIdentity) {
  run(1, [](Comm& comm) {
    double v = 3.0;
    comm.allreduce_sum(&v, 1, PARPP_COMM_TAG("t-allreduce"));
    EXPECT_DOUBLE_EQ(v, 3.0);
    double out = 0.0;
    comm.reduce_scatter_sum(&v, 1, &out, PARPP_COMM_TAG("t-reduce-scatter"));
    EXPECT_DOUBLE_EQ(out, 3.0);
    EXPECT_EQ(comm.cost()->total().messages, 0.0);  // no charge for P = 1
  });
}

}  // namespace
}  // namespace parpp::mpsim
