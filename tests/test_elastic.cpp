// Elastic shrink-and-continue: a rank lost mid-solve must not end the run
// when --elastic shrink is on. The survivors agree on the live set, rebuild
// a smaller communicator (with the collective verifier re-registered),
// repartition the tensor, restore the iterate from the buddy-replicated
// snapshot, and finish with the fitness the uninterrupted run reaches —
// deterministically, so same-seed reruns produce bitwise-identical reports.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "parpp/data/sparse_synthetic.hpp"
#include "parpp/solver/solver.hpp"
#include "parpp/tensor/csf_tensor.hpp"
#include "test_util.hpp"

namespace parpp {
namespace {

constexpr int kRanks = 8;

[[nodiscard]] const tensor::DenseTensor& dense_input() {
  static const tensor::DenseTensor t = test::low_rank_tensor({18, 16, 14}, 4, 33);
  return t;
}

[[nodiscard]] const tensor::CsfTensor& sparse_input() {
  static const tensor::CsfTensor t(
      data::make_sparse_lowrank({18, 16, 14}, 4, 0.2, 34).tensor);
  return t;
}

/// A parallel spec that keeps sweeping (tiny tol) so the fault lands
/// mid-solve, with elastic shrink enabled.
[[nodiscard]] solver::SolverSpec elastic_spec(solver::Method method,
                                              bool sparse) {
  solver::SolverSpec spec;
  spec.method = method;
  spec.rank = 4;
  spec.seed = 7;
  spec.stopping.max_sweeps = 10;
  spec.stopping.fitness_tol = 1e-14;
  if (sparse) spec.engine = core::EngineKind::kSparse;
  spec.execution = solver::Execution::simulated_parallel(kRanks);
  spec.execution.comm_timeout_seconds = 0.4;
  spec.execution.elastic.mode = par::ElasticMode::kShrink;
  return spec;
}

void add_rank_abort(solver::SolverSpec& spec, int rank, int nth) {
  if (spec.execution.fault.kind == mpsim::FaultKind::kNone) {
    spec.execution.fault.kind = mpsim::FaultKind::kRankAbort;
    spec.execution.fault.rank = rank;
    spec.execution.fault.nth = nth;
    spec.execution.fault.seed = spec.seed;
  } else {
    mpsim::FaultEvent ev;
    ev.kind = mpsim::FaultKind::kRankAbort;
    ev.rank = rank;
    ev.nth = nth;
    spec.execution.fault.then.push_back(ev);
  }
}

void expect_identical_reports(const solver::SolveReport& a,
                              const solver::SolveReport& b) {
  EXPECT_EQ(a.status, b.status);
  EXPECT_EQ(a.stop_reason, b.stop_reason);
  EXPECT_EQ(a.sweeps, b.sweeps);
  EXPECT_EQ(a.fitness, b.fitness);  // bitwise
  EXPECT_EQ(a.final_ranks, b.final_ranks);
  ASSERT_EQ(a.recovery_log.size(), b.recovery_log.size());
  for (std::size_t i = 0; i < a.recovery_log.size(); ++i) {
    EXPECT_EQ(a.recovery_log[i].sweep, b.recovery_log[i].sweep);
    EXPECT_EQ(a.recovery_log[i].what, b.recovery_log[i].what);
  }
}

[[nodiscard]] bool log_mentions(const solver::SolveReport& r,
                                const std::string& needle) {
  for (const core::RecoveryEvent& e : r.recovery_log)
    if (e.what.find(needle) != std::string::npos) return true;
  return false;
}

// The acceptance scenario: 8 ranks, dense ALS, one rank aborted mid-solve.
// The run must finish on the 7 survivors with the uninterrupted fitness.
TEST(Elastic, ShrinkFinishesWithUninterruptedFitness) {
  solver::SolverSpec clean = elastic_spec(solver::Method::kAls, false);
  const solver::SolveReport baseline = parpp::solve(dense_input(), clean);
  ASSERT_EQ(baseline.status, core::SolveStatus::kOk);

  solver::SolverSpec spec = elastic_spec(solver::Method::kAls, false);
  add_rank_abort(spec, /*rank=*/3, /*nth=*/40);
  const solver::SolveReport r = parpp::solve(dense_input(), spec);

  EXPECT_EQ(r.status, core::SolveStatus::kRecoveredShrunk);
  EXPECT_NE(r.stop_reason, solver::StopReason::kFault);
  EXPECT_EQ(r.final_ranks, kRanks - 1);
  EXPECT_NEAR(r.fitness, baseline.fitness, 1e-6);
  EXPECT_EQ(r.sweeps, baseline.sweeps);
  EXPECT_TRUE(log_mentions(r, "communicator shrunk 8 -> 7"));
  EXPECT_TRUE(log_mentions(r, "rank(s) 3 lost"));

  // Bitwise-deterministic recovery: same seed, same plan, same report.
  expect_identical_reports(r, parpp::solve(dense_input(), spec));
}

// Sparse storage: the shrink repartitions the nonzeros over the smaller
// grid (reported as post-shrink imbalance) and conserves every nonzero.
TEST(Elastic, SparseShrinkRepartitions) {
  solver::SolverSpec clean = elastic_spec(solver::Method::kAls, true);
  clean.execution.partition = dist::PartitionKind::kBalancedNnz;
  const solver::SolveReport baseline = parpp::solve(sparse_input(), clean);

  solver::SolverSpec spec = clean;
  add_rank_abort(spec, /*rank=*/5, /*nth=*/45);
  const solver::SolveReport r = parpp::solve(sparse_input(), spec);

  EXPECT_EQ(r.status, core::SolveStatus::kRecoveredShrunk);
  EXPECT_EQ(r.final_ranks, kRanks - 1);
  EXPECT_NEAR(r.fitness, baseline.fitness, 1e-6);
  EXPECT_GT(r.post_shrink_nnz_imbalance, 0.0);
  expect_identical_reports(r, parpp::solve(sparse_input(), spec));
}

// The NNCP (HALS) driver shares the elastic runner.
TEST(Elastic, NncpShrinkRecovers) {
  solver::SolverSpec spec = elastic_spec(solver::Method::kNncpHals, false);
  add_rank_abort(spec, /*rank=*/2, /*nth=*/40);
  const solver::SolveReport r = parpp::solve(dense_input(), spec);
  EXPECT_EQ(r.status, core::SolveStatus::kRecoveredShrunk);
  EXPECT_EQ(r.final_ranks, kRanks - 1);
  EXPECT_TRUE(std::isfinite(r.fitness));
  expect_identical_reports(r, parpp::solve(dense_input(), spec));
}

// The PP driver too (the phase machinery re-earns PP eligibility with an
// exact sweep after the shrink).
TEST(Elastic, PpShrinkRecovers) {
  solver::SolverSpec spec = elastic_spec(solver::Method::kPp, false);
  add_rank_abort(spec, /*rank=*/2, /*nth=*/60);
  const solver::SolveReport r = parpp::solve(dense_input(), spec);
  EXPECT_EQ(r.status, core::SolveStatus::kRecoveredShrunk);
  EXPECT_EQ(r.final_ranks, kRanks - 1);
  EXPECT_TRUE(std::isfinite(r.fitness));
  expect_identical_reports(r, parpp::solve(dense_input(), spec));
}

// A FaultPlan sequence: two non-adjacent ranks die in different sweeps;
// the run shrinks twice and finishes on 6 survivors.
TEST(Elastic, SequenceShrinksTwice) {
  solver::SolverSpec spec = elastic_spec(solver::Method::kAls, false);
  add_rank_abort(spec, /*rank=*/2, /*nth=*/40);
  add_rank_abort(spec, /*rank=*/5, /*nth=*/90);
  const solver::SolveReport r = parpp::solve(dense_input(), spec);
  EXPECT_EQ(r.status, core::SolveStatus::kRecoveredShrunk);
  EXPECT_EQ(r.final_ranks, kRanks - 2);
  EXPECT_TRUE(log_mentions(r, "communicator shrunk 8 -> 7"));
  EXPECT_TRUE(log_mentions(r, "communicator shrunk 7 -> 6"));
  EXPECT_TRUE(std::isfinite(r.fitness));
  expect_identical_reports(r, parpp::solve(dense_input(), spec));
}

// A rank and its buddy (the next participant, which mirrors its state)
// scheduled to die at the SAME collective. Whether both faults actually
// fire races with poison propagation — exactly as two concurrent hardware
// failures would in real MPI — so this test pins the invariant rather than
// one outcome: the run either aborts cleanly naming the unrecoverable
// replica pair (both died in one round) or recovers past the deaths it
// could absorb (poison unwound one rank before its fault fired, or the
// replicated rebuild snapshot covered the second loss). Never a hang,
// never a silent wrong answer.
TEST(Elastic, AdjacentDoubleDeathEndsStructured) {
  solver::SolverSpec spec = elastic_spec(solver::Method::kAls, false);
  add_rank_abort(spec, /*rank=*/2, /*nth=*/40);
  add_rank_abort(spec, /*rank=*/3, /*nth=*/40);
  const solver::SolveReport r = parpp::solve(dense_input(), spec);
  if (r.status == core::SolveStatus::kCommAbort) {
    // Both lost in one round ("replica holder" verdict), or the second
    // fault struck during recovery itself: either way a clean, explained
    // collective abort.
    EXPECT_EQ(r.stop_reason, solver::StopReason::kFault);
    EXPECT_FALSE(r.recovery_log.empty());
  } else {
    ASSERT_EQ(r.status, core::SolveStatus::kRecoveredShrunk);
    EXPECT_NE(r.stop_reason, solver::StopReason::kFault);
    EXPECT_LE(r.final_ranks, kRanks - 1);
    EXPECT_GE(r.final_ranks, kRanks - 2);
    EXPECT_TRUE(std::isfinite(r.fitness));
  }
}

// Elastic off: the same rank abort keeps the PR-8 semantics — a collective
// comm-abort naming the lost rank.
TEST(Elastic, OffKeepsAbortSemantics) {
  solver::SolverSpec spec = elastic_spec(solver::Method::kAls, false);
  spec.execution.elastic.mode = par::ElasticMode::kOff;
  add_rank_abort(spec, /*rank=*/3, /*nth=*/40);
  const solver::SolveReport r = parpp::solve(dense_input(), spec);
  EXPECT_EQ(r.status, core::SolveStatus::kCommAbort);
  EXPECT_EQ(r.stop_reason, solver::StopReason::kFault);
}

// A transient delay longer than the barrier timeout but within the retry
// budget is absorbed by the retry-with-backoff: no rank is declared dead,
// no shrink happens, the delay is just logged.
TEST(Elastic, TransientDelayAbsorbedByRetry) {
  solver::SolverSpec spec = elastic_spec(solver::Method::kAls, false);
  spec.execution.comm_timeout_seconds = 0.15;
  spec.execution.fault.kind = mpsim::FaultKind::kDelay;
  spec.execution.fault.rank = 1;
  spec.execution.fault.nth = 12;
  spec.execution.fault.delay_seconds = 0.25;  // > timeout, < retry budget
  spec.execution.fault.seed = spec.seed;
  const solver::SolveReport r = parpp::solve(dense_input(), spec);
  EXPECT_EQ(r.status, core::SolveStatus::kRecovered);
  EXPECT_EQ(r.final_ranks, kRanks);
  EXPECT_FALSE(log_mentions(r, "shrunk"));
  EXPECT_TRUE(log_mentions(r, "communication delay"));
}

// A timeout-fault rank stalls past every retry, the survivors poison the
// epoch — but the stalled rank breaks its stall on the poison and is never
// declared dead, so the shrink consensus rebuilds at FULL size: recovered,
// not recovered-shrunk.
TEST(Elastic, TimeoutFaultRejoinsZeroLoss) {
  solver::SolverSpec spec = elastic_spec(solver::Method::kAls, false);
  spec.execution.comm_timeout_seconds = 0.3;
  spec.execution.fault.kind = mpsim::FaultKind::kTimeout;
  spec.execution.fault.rank = 1;
  spec.execution.fault.nth = 12;
  spec.execution.fault.seed = spec.seed;
  const solver::SolveReport r = parpp::solve(dense_input(), spec);
  EXPECT_EQ(r.status, core::SolveStatus::kRecovered);
  EXPECT_EQ(r.final_ranks, kRanks);
  EXPECT_TRUE(log_mentions(r, "rejoined"));
  EXPECT_TRUE(std::isfinite(r.fitness));
}

// A failure before the first snapshot is ever replicated (here: during
// context construction) cold-restarts the survivors from the deterministic
// initial factors instead of a warm snapshot.
TEST(Elastic, ColdRestartBeforeFirstSnapshot) {
  solver::SolverSpec spec = elastic_spec(solver::Method::kAls, false);
  add_rank_abort(spec, /*rank=*/4, /*nth=*/2);  // mid init-gram collectives
  const solver::SolveReport r = parpp::solve(dense_input(), spec);
  EXPECT_EQ(r.status, core::SolveStatus::kRecoveredShrunk);
  EXPECT_EQ(r.final_ranks, kRanks - 1);
  EXPECT_TRUE(log_mentions(r, "initial factors"));
  EXPECT_TRUE(std::isfinite(r.fitness));
  expect_identical_reports(r, parpp::solve(dense_input(), spec));
}

}  // namespace
}  // namespace parpp
