#include <gtest/gtest.h>

#include <cmath>

#include "parpp/core/cp_als.hpp"
#include "parpp/core/fitness.hpp"
#include "parpp/core/gram.hpp"
#include "parpp/tensor/mttkrp_naive.hpp"
#include "test_util.hpp"

namespace parpp::core {
namespace {

TEST(Fitness, EqThreeMatchesExplicitResidual) {
  // Check Eq. (3) against reconstruction on random factors/tensor.
  const std::vector<index_t> shape{5, 6, 7};
  const auto t = test::random_tensor(shape, 501);
  const auto factors = test::random_factors(shape, 3, 502);
  const auto grams = all_grams(factors);
  const la::Matrix gamma = gamma_chain(grams, 2);
  const la::Matrix m = tensor::mttkrp_elementwise(t, factors, 2);
  const double r =
      relative_residual(t.squared_norm(), gamma, grams[2], m, factors[2]);
  EXPECT_NEAR(r, test::explicit_residual(t, factors), 1e-9);
}

TEST(Fitness, ZeroResidualForExactFactors) {
  const auto factors = test::random_factors({4, 5, 6}, 2, 503);
  const auto t = tensor::reconstruct(factors);
  const auto grams = all_grams(factors);
  const la::Matrix gamma = gamma_chain(grams, 2);
  const la::Matrix m = tensor::mttkrp_elementwise(t, factors, 2);
  const double r =
      relative_residual(t.squared_norm(), gamma, grams[2], m, factors[2]);
  EXPECT_NEAR(r, 0.0, 1e-7);
}

TEST(GammaChain, MatchesManualHadamard) {
  const auto factors = test::random_factors({4, 5, 6}, 3, 504);
  const auto grams = all_grams(factors);
  const la::Matrix g = gamma_chain(grams, 1);
  const la::Matrix want = la::hadamard(grams[0], grams[2]);
  test::expect_matrix_near(g, want, 1e-12, "gamma skip 1");
  const la::Matrix full = gamma_chain(grams, -1);
  la::Matrix want_full = la::hadamard(grams[0], grams[1]);
  want_full.hadamard_inplace(grams[2]);
  test::expect_matrix_near(full, want_full, 1e-12, "gamma full");
}

class AlsEngines : public ::testing::TestWithParam<EngineKind> {};

TEST_P(AlsEngines, RecoversLowRankTensor) {
  const std::vector<index_t> shape{10, 11, 12};
  const auto t = test::low_rank_tensor(shape, 3, 505);
  CpOptions opt;
  opt.rank = 3;
  opt.max_sweeps = 150;
  opt.tol = 1e-9;
  opt.engine = GetParam();
  const CpResult result = cp_als(t, opt);
  EXPECT_GT(result.fitness, 0.9999)
      << engine_kind_name(GetParam()) << " should recover a rank-3 tensor";
  EXPECT_NEAR(test::explicit_residual(t, result.factors), result.residual,
              1e-6);
}

INSTANTIATE_TEST_SUITE_P(Engines, AlsEngines,
                         ::testing::Values(EngineKind::kNaive, EngineKind::kDt,
                                           EngineKind::kMsdt));

TEST(CpAls, FitnessMonotonicallyNonDecreasing) {
  const auto t = test::random_tensor({8, 9, 10}, 506);
  CpOptions opt;
  opt.rank = 5;
  opt.max_sweeps = 25;
  opt.tol = 0.0;  // run all sweeps
  const CpResult result = cp_als(t, opt);
  ASSERT_GE(result.history.size(), 2u);
  for (std::size_t i = 1; i < result.history.size(); ++i) {
    EXPECT_GE(result.history[i].fitness,
              result.history[i - 1].fitness - 1e-9)
        << "ALS residual must not increase (sweep " << i << ")";
  }
}

TEST(CpAls, EnginesProduceSameTrajectory) {
  const auto t = test::random_tensor({7, 6, 5}, 507);
  CpOptions opt;
  opt.rank = 4;
  opt.max_sweeps = 10;
  opt.tol = 0.0;
  opt.engine = EngineKind::kDt;
  const CpResult dt = cp_als(t, opt);
  opt.engine = EngineKind::kMsdt;
  const CpResult msdt = cp_als(t, opt);
  opt.engine = EngineKind::kNaive;
  const CpResult naive = cp_als(t, opt);
  EXPECT_NEAR(dt.fitness, msdt.fitness, 1e-8);
  EXPECT_NEAR(dt.fitness, naive.fitness, 1e-8);
  for (int m = 0; m < 3; ++m) {
    EXPECT_LE(dt.factors[static_cast<std::size_t>(m)].max_abs_diff(
                  msdt.factors[static_cast<std::size_t>(m)]),
              1e-6);
  }
}

TEST(CpAls, Order4Works) {
  const auto t = test::low_rank_tensor({6, 5, 4, 5}, 2, 508);
  CpOptions opt;
  opt.rank = 2;
  opt.max_sweeps = 120;
  opt.tol = 1e-10;
  opt.engine = EngineKind::kMsdt;
  const CpResult result = cp_als(t, opt);
  EXPECT_GT(result.fitness, 0.999);
}

TEST(CpAls, StopsOnTolerance) {
  const auto t = test::low_rank_tensor({8, 8, 8}, 2, 509);
  CpOptions opt;
  opt.rank = 2;
  opt.max_sweeps = 300;
  opt.tol = 1e-4;
  const CpResult result = cp_als(t, opt);
  EXPECT_LT(result.sweeps, 300);
}

TEST(CpAls, HistoryTimestampsIncrease) {
  const auto t = test::random_tensor({6, 6, 6}, 510);
  CpOptions opt;
  opt.rank = 3;
  opt.max_sweeps = 5;
  opt.tol = 0.0;
  const CpResult result = cp_als(t, opt);
  for (std::size_t i = 1; i < result.history.size(); ++i)
    EXPECT_GE(result.history[i].seconds, result.history[i - 1].seconds);
}

TEST(CpAls, ProfileAccountsWork) {
  const auto t = test::random_tensor({8, 8, 8}, 511);
  CpOptions opt;
  opt.rank = 4;
  opt.max_sweeps = 3;
  opt.tol = 0.0;
  const CpResult result = cp_als(t, opt);
  EXPECT_GT(result.profile.flops(Kernel::kTTM), 0.0);
  EXPECT_GT(result.profile.flops(Kernel::kMTTV), 0.0);
  EXPECT_GT(result.profile.flops(Kernel::kSolve), 0.0);
  EXPECT_GT(result.profile.flops(Kernel::kHadamard), 0.0);
}

TEST(InitFactors, DeterministicAndInRange) {
  const auto a = init_factors({5, 6}, 3, 42);
  const auto b = init_factors({5, 6}, 3, 42);
  const auto c = init_factors({5, 6}, 3, 43);
  EXPECT_DOUBLE_EQ(a[0].max_abs_diff(b[0]), 0.0);
  EXPECT_GT(a[0].max_abs_diff(c[0]), 0.0);
  for (index_t i = 0; i < 5; ++i)
    for (index_t j = 0; j < 3; ++j) {
      EXPECT_GE(a[0](i, j), 0.0);
      EXPECT_LT(a[0](i, j), 1.0);
    }
}

}  // namespace
}  // namespace parpp::core
