// CooTensor / CsfTensor storage and FROSTT .tns round-trip tests.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstdint>
#include <cstring>
#include <sstream>
#include <vector>

#include "parpp/data/sparse_synthetic.hpp"
#include "parpp/tensor/csf_tensor.hpp"
#include "parpp/util/serialize.hpp"
#include "test_util.hpp"

namespace parpp {
namespace {

TEST(CooTensor, PushCoalesceMergesDuplicatesAndDropsZeros) {
  tensor::CooTensor t({3, 4, 5});
  const std::vector<index_t> a{2, 1, 0}, b{0, 0, 0}, c{1, 3, 4};
  t.push(a, 1.5);
  t.push(b, 2.0);
  t.push(a, 0.25);   // duplicate of a: sums to 1.75
  t.push(c, 3.0);
  t.push(c, -3.0);   // cancels exactly: dropped
  EXPECT_FALSE(t.coalesced());
  EXPECT_EQ(t.nnz(), 5);

  t.coalesce();
  EXPECT_TRUE(t.coalesced());
  ASSERT_EQ(t.nnz(), 2);
  // Lexicographic order: (0,0,0) then (2,1,0).
  EXPECT_EQ(t.index(0, 0), 0);
  EXPECT_DOUBLE_EQ(t.value(0), 2.0);
  EXPECT_EQ(t.index(1, 0), 2);
  EXPECT_EQ(t.index(1, 1), 1);
  EXPECT_DOUBLE_EQ(t.value(1), 1.75);

  EXPECT_DOUBLE_EQ(t.squared_norm(), 2.0 * 2.0 + 1.75 * 1.75);
}

TEST(CooTensor, DensifyAccumulatesDuplicates) {
  tensor::CooTensor t({2, 2});
  const std::vector<index_t> a{1, 0};
  t.push(a, 1.0);
  t.push(a, 2.5);
  const tensor::DenseTensor d = t.densify();
  EXPECT_DOUBLE_EQ(d.at(std::vector<index_t>{1, 0}), 3.5);
  EXPECT_DOUBLE_EQ(d.at(std::vector<index_t>{0, 0}), 0.0);
}

TEST(CooTensor, FromDenseRoundTrip) {
  const tensor::DenseTensor dense = test::random_tensor({4, 3, 5}, 11);
  const tensor::CooTensor coo = tensor::CooTensor::from_dense(dense);
  EXPECT_TRUE(coo.coalesced());
  EXPECT_EQ(coo.nnz(), dense.size());  // uniform [0,1): no exact zeros
  test::expect_tensor_near(coo.densify(), dense, 0.0, "from_dense round trip");
  EXPECT_NEAR(coo.squared_norm(), dense.squared_norm(), 1e-12);
}

TEST(CsfTensor, RequiresCoalescedInput) {
  tensor::CooTensor t({2, 2});
  const std::vector<index_t> a{0, 1};
  t.push(a, 1.0);
  EXPECT_THROW((void)tensor::CsfTensor(t), parpp::error);
  t.coalesce();
  EXPECT_NO_THROW((void)tensor::CsfTensor(t));
}

TEST(CsfTensor, TreeStructureMatchesPattern) {
  // 2x3x2 tensor with nonzeros (0,0,0) (0,0,1) (0,2,0) (1,1,1).
  tensor::CooTensor coo({2, 3, 2});
  for (const auto& e : std::vector<std::vector<index_t>>{
           {0, 0, 0}, {0, 0, 1}, {0, 2, 0}, {1, 1, 1}}) {
    coo.push(e, 1.0);
  }
  coo.coalesce();
  const tensor::CsfTensor csf(coo);
  EXPECT_EQ(csf.nnz(), 4);

  const auto& tr0 = csf.tree(0);
  ASSERT_EQ(tr0.mode_order, (std::vector<int>{0, 1, 2}));
  // Root slices: i=0 (3 nnz, fibers (0,0),(0,2)) and i=1 (1 nnz).
  EXPECT_EQ(tr0.root_count(), 2);
  EXPECT_EQ(tr0.fids[1].size(), 3u);  // fibers (0,0) (0,2) (1,1)
  EXPECT_EQ(tr0.vals.size(), 4u);
  EXPECT_EQ(tr0.fptr[0], (std::vector<index_t>{0, 2, 3}));
  EXPECT_EQ(tr0.fptr[1], (std::vector<index_t>{0, 2, 3, 4}));
  EXPECT_EQ(tr0.internal_nodes, 3);

  // Tree rooted at mode 2: slices k=0 (2 nnz) and k=1 (2 nnz).
  const auto& tr2 = csf.tree(2);
  ASSERT_EQ(tr2.mode_order, (std::vector<int>{2, 0, 1}));
  EXPECT_EQ(tr2.root_count(), 2);
  EXPECT_EQ(tr2.fids[0], (std::vector<index_t>{0, 1}));
}

TEST(CsfTensor, StatsMatchCoo) {
  const tensor::CooTensor coo =
      data::make_sparse_random({6, 7, 5, 4}, 0.07, 3);
  const tensor::CsfTensor csf(coo);
  EXPECT_EQ(csf.order(), 4);
  EXPECT_EQ(csf.nnz(), coo.nnz());
  EXPECT_DOUBLE_EQ(csf.squared_norm(), coo.squared_norm());
  for (int m = 0; m < 4; ++m) {
    const auto& tree = csf.tree(m);
    EXPECT_EQ(tree.mode_order.front(), m);
    EXPECT_EQ(static_cast<index_t>(tree.vals.size()), coo.nnz());
    // Every level is weakly smaller than the one below (prefix counts).
    for (std::size_t l = 1; l < tree.fids.size(); ++l)
      EXPECT_LE(tree.fids[l - 1].size(), tree.fids[l].size());
  }
}

TEST(SerializeTns, FileRoundTrip) {
  const tensor::CooTensor original =
      data::make_sparse_random({9, 5, 12}, 0.05, 21);
  const std::string path = "/tmp/parpp_test_tensor.tns";
  io::save_tns_file(path, original);
  const tensor::CooTensor loaded = io::load_tns_file(path);
  std::remove(path.c_str());

  // The dims header preserves the exact shape even if trailing slices are
  // empty; entries and values round-trip bit-for-bit via %.17g.
  EXPECT_EQ(loaded.shape(), original.shape());
  ASSERT_EQ(loaded.nnz(), original.nnz());
  for (index_t e = 0; e < original.nnz(); ++e) {
    for (int m = 0; m < original.order(); ++m)
      EXPECT_EQ(loaded.index(e, m), original.index(e, m));
    EXPECT_DOUBLE_EQ(loaded.value(e), original.value(e));
  }
}

TEST(SerializeTns, IrrationalValuesRoundTripBitExactly) {
  // Regression: the writer must emit max_digits10 significant digits, not
  // the default stream precision — otherwise irrational and denormal-ish
  // values come back off by up to 5e-7 relative and save/load is lossy.
  const std::vector<double> values{
      M_PI,          std::sqrt(2.0),     1.0 / 3.0,      std::exp(1.0),
      -7.1,          6.02214076e23,      1.0e-300,       -M_PI * 1e-17,
      std::nextafter(1.0, 2.0)};
  tensor::CooTensor original({4, 3, static_cast<index_t>(values.size())});
  for (std::size_t k = 0; k < values.size(); ++k) {
    const std::vector<index_t> idx{static_cast<index_t>(k % 4),
                                   static_cast<index_t>(k % 3),
                                   static_cast<index_t>(k)};
    original.push(idx, values[k]);
  }
  original.coalesce();

  std::ostringstream os;
  io::save_tns(os, original);
  std::istringstream is(os.str());
  const tensor::CooTensor loaded = io::load_tns(is);

  ASSERT_EQ(loaded.nnz(), original.nnz());
  for (index_t e = 0; e < original.nnz(); ++e) {
    const double want = original.value(e), got = loaded.value(e);
    // Bit-exact, not merely close: compare the representations.
    std::uint64_t wbits = 0, gbits = 0;
    std::memcpy(&wbits, &want, sizeof(want));
    std::memcpy(&gbits, &got, sizeof(got));
    EXPECT_EQ(gbits, wbits) << "entry " << e << " value " << want;
  }
}

TEST(SerializeTns, ToleratesCommentsDuplicatesAndInfersShape) {
  // FROSTT-style: 1-indexed, '#' comments anywhere, duplicates sum.
  std::istringstream is(
      "# a comment line\n"
      "1 1 1 2.0\n"
      "\n"
      "3 2 1 -1.5\n"
      "# another comment\n"
      "1 1 1 0.5\n");
  const tensor::CooTensor t = io::load_tns(is);
  EXPECT_EQ(t.shape(), (std::vector<index_t>{3, 2, 1}));
  ASSERT_EQ(t.nnz(), 2);
  EXPECT_TRUE(t.coalesced());
  EXPECT_DOUBLE_EQ(t.value(0), 2.5);   // (0,0,0): 2.0 + 0.5
  EXPECT_DOUBLE_EQ(t.value(1), -1.5);  // (2,1,0)
}

TEST(SerializeTns, EmptyTensorRoundTripsViaDimsHeader) {
  const tensor::CooTensor empty({3, 4, 5});
  std::ostringstream os;
  io::save_tns(os, empty);
  std::istringstream is(os.str());
  const tensor::CooTensor loaded = io::load_tns(is);
  EXPECT_EQ(loaded.shape(), empty.shape());
  EXPECT_EQ(loaded.nnz(), 0);
}

TEST(SerializeTns, RejectsMalformedInput) {
  std::istringstream zero_indexed("0 1 1.0\n");
  EXPECT_THROW((void)io::load_tns(zero_indexed), parpp::error);
  std::istringstream ragged("1 1 1 2.0\n1 1 3.0\n");
  EXPECT_THROW((void)io::load_tns(ragged), parpp::error);
  std::istringstream empty("# nothing here\n");
  EXPECT_THROW((void)io::load_tns(empty), parpp::error);
}

TEST(SparseSynthetic, LowRankMatchesExplicitReconstruction) {
  const auto gen = data::make_sparse_lowrank({8, 9, 7}, 4, 0.1, 17);
  EXPECT_TRUE(gen.tensor.coalesced());
  ASSERT_EQ(gen.factors.size(), 3u);
  // The COO is exactly [[A]]: densifying must reproduce the dense
  // reconstruction of the generating factors.
  test::expect_tensor_near(gen.tensor.densify(),
                           tensor::reconstruct(gen.factors), 1e-12,
                           "sparse lowrank == [[A]]");
}

}  // namespace
}  // namespace parpp
