// Randomized cross-engine stress tests: many (shape, rank, seed) instances
// where all amortization strategies must agree with the unamortized
// reference and with each other under real ALS dynamics.
#include <gtest/gtest.h>

#include <tuple>

#include "parpp/core/gram.hpp"
#include "parpp/core/pp_als.hpp"
#include "parpp/la/gemm.hpp"
#include "parpp/core/solve_update.hpp"
#include "parpp/par/par_cp_als.hpp"
#include "parpp/tensor/mttkrp_naive.hpp"
#include "test_util.hpp"

namespace parpp {
namespace {

using StressCase = std::tuple<int, index_t, index_t, std::uint64_t>;
// (order, base extent, rank, seed); extents are base, base+1, ... so shapes
// are non-equidimensional by construction.

std::vector<index_t> shape_of(const StressCase& c) {
  std::vector<index_t> shape;
  for (int m = 0; m < std::get<0>(c); ++m)
    shape.push_back(std::get<1>(c) + m);
  return shape;
}

class EngineStress : public ::testing::TestWithParam<StressCase> {};

TEST_P(EngineStress, AllEnginesTrackReferenceThroughAls) {
  const auto shape = shape_of(GetParam());
  const index_t rank = std::get<2>(GetParam());
  const std::uint64_t seed = std::get<3>(GetParam());
  const auto t = test::random_tensor(shape, seed);
  const int n = t.order();

  auto factors = test::random_factors(shape, rank, seed + 1);
  auto grams = core::all_grams(factors);
  auto dt = core::make_engine(core::EngineKind::kDt, t, factors);
  auto msdt = core::make_engine(core::EngineKind::kMsdt, t, factors);

  for (int sweep = 0; sweep < 3; ++sweep) {
    for (int i = 0; i < n; ++i) {
      const la::Matrix want = tensor::mttkrp_krp(t, factors, i);
      const la::Matrix m_dt = dt->mttkrp(i);
      const la::Matrix m_msdt = msdt->mttkrp(i);
      const double tol = 1e-9 * want.frobenius_norm() + 1e-12;
      ASSERT_LE(m_dt.max_abs_diff(want), tol) << "DT sweep " << sweep;
      ASSERT_LE(m_msdt.max_abs_diff(want), tol) << "MSDT sweep " << sweep;
      const la::Matrix gamma = core::gamma_chain(grams, i);
      factors[static_cast<std::size_t>(i)] = core::update_factor(gamma, m_dt);
      dt->notify_update(i);
      msdt->notify_update(i);
      grams[static_cast<std::size_t>(i)] =
          la::gram(factors[static_cast<std::size_t>(i)]);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Instances, EngineStress,
    ::testing::Values(StressCase{3, 4, 2, 11}, StressCase{3, 7, 5, 12},
                      StressCase{4, 3, 3, 13}, StressCase{4, 5, 2, 14},
                      StressCase{5, 3, 2, 15}, StressCase{5, 2, 4, 16},
                      StressCase{6, 2, 2, 17}, StressCase{3, 9, 7, 18},
                      StressCase{4, 4, 6, 19}, StressCase{2, 8, 3, 20}));

class ParallelStress : public ::testing::TestWithParam<StressCase> {};

TEST_P(ParallelStress, GridMatchesSequential) {
  const auto shape = shape_of(GetParam());
  const index_t rank = std::get<2>(GetParam());
  const std::uint64_t seed = std::get<3>(GetParam());
  const auto t = test::random_tensor(shape, seed);

  core::CpOptions opt;
  opt.rank = rank;
  opt.max_sweeps = 4;
  opt.tol = 0.0;
  opt.seed = seed + 2;
  const auto seq = core::cp_als(t, opt);

  par::ParOptions popt;
  popt.base = opt;
  popt.grid_dims = mpsim::ProcessorGrid::balanced_dims(
      4, static_cast<int>(shape.size()));
  const auto par = par::par_cp_als(t, 4, popt);
  EXPECT_NEAR(par.fitness, seq.fitness, 1e-8);
}

INSTANTIATE_TEST_SUITE_P(
    Instances, ParallelStress,
    ::testing::Values(StressCase{3, 5, 3, 31}, StressCase{3, 8, 2, 32},
                      StressCase{4, 4, 3, 33}, StressCase{4, 6, 2, 34},
                      StressCase{5, 3, 2, 35}));

/// PP end-to-end on random instances: must never diverge and must land
/// within a modest gap of plain ALS at the same budget.
class PpStress : public ::testing::TestWithParam<StressCase> {};

TEST_P(PpStress, TracksAlsWithinTolerance) {
  const auto shape = shape_of(GetParam());
  const index_t rank = std::get<2>(GetParam());
  const std::uint64_t seed = std::get<3>(GetParam());
  const auto t = test::low_rank_tensor(shape, rank, seed);

  core::CpOptions opt;
  opt.rank = rank;
  opt.max_sweeps = 100;
  opt.tol = 1e-8;
  const auto als = core::cp_als(t, opt);
  core::PpOptions pp;
  pp.pp_tol = 0.1;
  const auto ppr = core::pp_cp_als(t, opt, pp);
  EXPECT_GE(ppr.fitness, als.fitness - 0.01)
      << "PP must not lose meaningful fitness on " << shape.size()
      << "-order instance";
}

INSTANTIATE_TEST_SUITE_P(
    Instances, PpStress,
    ::testing::Values(StressCase{3, 7, 3, 41}, StressCase{3, 10, 2, 42},
                      StressCase{4, 5, 2, 43}, StressCase{4, 4, 4, 44},
                      StressCase{5, 3, 2, 45}));

}  // namespace
}  // namespace parpp
