#include <gtest/gtest.h>

#include <cmath>

#include "parpp/core/gram.hpp"
#include "parpp/la/gemm.hpp"
#include "parpp/core/pp_engine.hpp"
#include "parpp/tensor/mttkrp_naive.hpp"
#include "test_util.hpp"

namespace parpp::core {
namespace {

struct PpSetup {
  tensor::DenseTensor t;
  std::vector<la::Matrix> a_p;       // snapshot
  std::vector<la::Matrix> factors;   // current = a_p + perturbation
  std::vector<la::Matrix> grams;
  PpOperators ops;

  PpSetup(const std::vector<index_t>& shape, index_t rank, double delta,
          std::uint64_t seed)
      : t(test::random_tensor(shape, seed)),
        a_p(test::random_factors(shape, rank, seed + 1)),
        factors(a_p),
        ops(t, a_p) {
    ops.build();
    Rng rng(seed + 2);
    for (auto& f : factors) {
      la::Matrix noise(f.rows(), f.cols());
      noise.fill_normal(rng);
      f.axpy(delta, noise);
    }
    grams = all_grams(factors);
  }
};

TEST(PpApprox, ExactAtZeroPerturbation) {
  PpSetup s({5, 6, 7}, 3, 0.0, 401);
  PpApprox approx(s.ops, s.factors, s.a_p, s.grams);
  for (int n = 0; n < 3; ++n) {
    test::expect_matrix_near(approx.mttkrp_approx(n), s.ops.mttkrp_p(n), 1e-12,
                             "dA = 0 => ~M == M_p");
  }
}

/// First+second-order PP error must shrink faster than linearly in the
/// perturbation size: halving delta should shrink the error by ~4x (second
/// order) — we assert at least 3x to allow round-off.
TEST(PpApprox, ErrorIsSecondOrderInPerturbation) {
  auto max_error = [&](double delta) {
    PpSetup s({6, 5, 7}, 3, delta, 402);
    PpApprox approx(s.ops, s.factors, s.a_p, s.grams);
    double err = 0.0;
    for (int n = 0; n < 3; ++n) {
      const la::Matrix want = tensor::mttkrp_krp(s.t, s.factors, n);
      const la::Matrix got = approx.mttkrp_approx(n);
      err = std::max(err, got.max_abs_diff(want) / want.frobenius_norm());
    }
    return err;
  };
  const double e1 = max_error(2e-2);
  const double e2 = max_error(1e-2);
  EXPECT_GT(e1, 0.0);
  EXPECT_LT(e2, e1 / 3.0);
}

TEST(PpApprox, OrderFourErrorAlsoSecondOrder) {
  auto max_error = [&](double delta) {
    PpSetup s({4, 5, 3, 4}, 2, delta, 403);
    PpApprox approx(s.ops, s.factors, s.a_p, s.grams);
    double err = 0.0;
    for (int n = 0; n < 4; ++n) {
      const la::Matrix want = tensor::mttkrp_krp(s.t, s.factors, n);
      err = std::max(err, approx.mttkrp_approx(n).max_abs_diff(want) /
                              want.frobenius_norm());
    }
    return err;
  };
  EXPECT_LT(max_error(5e-3), max_error(1e-2) / 3.0);
}

/// V(n) is derived from the ALS fixed-point structure, so its benefit is
/// guaranteed around a near-converged snapshot (the regime where Algorithm
/// 2 activates PP): warm-start ALS, perturb, and compare errors.
TEST(PpApprox, SecondOrderTermReducesErrorNearConvergence) {
  const auto t = test::low_rank_tensor({8, 8, 8, 8}, 3, 404);
  CpOptions warm;
  warm.rank = 3;
  warm.max_sweeps = 15;
  warm.tol = 0.0;
  warm.seed = 405;
  auto a_p = cp_als(t, warm).factors;
  auto factors = a_p;
  Rng rng(406);
  for (auto& f : factors) {
    la::Matrix noise(f.rows(), f.cols());
    noise.fill_normal(rng);
    f.axpy(2e-2, noise);
  }
  PpOperators ops(t, a_p);
  ops.build();
  const auto grams = all_grams(factors);
  PpApprox with(ops, factors, a_p, grams);
  PpApprox without(ops, factors, a_p, grams);
  without.set_second_order(false);
  double err_with = 0.0, err_without = 0.0;
  for (int n = 0; n < 4; ++n) {
    const la::Matrix want = tensor::mttkrp_krp(t, factors, n);
    err_with = std::max(err_with, with.mttkrp_approx(n).max_abs_diff(want));
    err_without =
        std::max(err_without, without.mttkrp_approx(n).max_abs_diff(want));
  }
  EXPECT_LT(err_with, 0.5 * err_without);
}

TEST(PpApprox, RefreshTracksFactorChanges) {
  PpSetup s({5, 5, 5}, 2, 1e-2, 405);
  PpApprox approx(s.ops, s.factors, s.a_p, s.grams);
  // Change one factor, refresh, and verify the approximation uses the new
  // dA: it must match a freshly-constructed PpApprox.
  Rng rng(406);
  la::Matrix bump(s.factors[1].rows(), s.factors[1].cols());
  bump.fill_normal(rng);
  s.factors[1].axpy(5e-3, bump);
  s.grams[1] = la::gram(s.factors[1]);
  approx.refresh_mode(1);
  PpApprox fresh(s.ops, s.factors, s.a_p, s.grams);
  for (int n = 0; n < 3; ++n) {
    test::expect_matrix_near(approx.mttkrp_approx(n), fresh.mttkrp_approx(n),
                             1e-12, "refresh == rebuild");
  }
}

TEST(PpApprox, DFactorAccessor) {
  PpSetup s({4, 4, 4}, 2, 1e-2, 407);
  PpApprox approx(s.ops, s.factors, s.a_p, s.grams);
  for (int i = 0; i < 3; ++i) {
    la::Matrix want = s.factors[static_cast<std::size_t>(i)];
    want.axpy(-1.0, s.a_p[static_cast<std::size_t>(i)]);
    test::expect_matrix_near(approx.d_factor(i), want, 0.0, "dA accessor");
  }
}

}  // namespace
}  // namespace parpp::core
