#include <gtest/gtest.h>

#include "parpp/core/gram.hpp"
#include "parpp/la/gemm.hpp"
#include "parpp/core/msdt.hpp"
#include "parpp/core/solve_update.hpp"
#include "parpp/tensor/mttkrp_naive.hpp"
#include "test_util.hpp"

namespace parpp::core {
namespace {

struct MsdtCase {
  std::vector<index_t> shape;
  index_t rank;
  bool transposed_copy;
};

class MsdtShapes : public ::testing::TestWithParam<MsdtCase> {};

/// MSDT must agree with DT on every MTTKRP of every sweep when both run the
/// same ALS updates — the paper's "no accuracy loss" claim. We run two
/// independent ALS loops and compare factors afterwards.
TEST_P(MsdtShapes, BitwiseAgreesWithDtUnderAls) {
  const auto& param = GetParam();
  const auto t = test::random_tensor(param.shape, 201);
  const int n = t.order();

  auto run = [&](EngineKind kind) {
    auto factors = test::random_factors(param.shape, param.rank, 202);
    auto grams = all_grams(factors);
    EngineOptions opts;
    opts.use_transposed_copy =
        param.transposed_copy ? TransposedCopy::kOn : TransposedCopy::kOff;
    auto engine = make_engine(kind, t, factors, nullptr, opts);
    for (int sweep = 0; sweep < 4; ++sweep) {
      for (int i = 0; i < n; ++i) {
        const la::Matrix gamma = gamma_chain(grams, i);
        const la::Matrix m = engine->mttkrp(i);
        factors[static_cast<std::size_t>(i)] = update_factor(gamma, m);
        engine->notify_update(i);
        grams[static_cast<std::size_t>(i)] =
            la::gram(factors[static_cast<std::size_t>(i)]);
      }
    }
    return factors;
  };

  const auto f_dt = run(EngineKind::kDt);
  const auto f_msdt = run(EngineKind::kMsdt);
  for (int m = 0; m < n; ++m) {
    // Same contractions in different association orders: tolerance at the
    // round-off scale, far below any algorithmic difference.
    const double scale =
        f_dt[static_cast<std::size_t>(m)].frobenius_norm() + 1.0;
    EXPECT_LE(f_dt[static_cast<std::size_t>(m)].max_abs_diff(
                  f_msdt[static_cast<std::size_t>(m)]),
              1e-8 * scale)
        << "mode " << m;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, MsdtShapes,
    ::testing::Values(MsdtCase{{6, 7, 8}, 4, false},
                      MsdtCase{{6, 7, 8}, 4, true},
                      MsdtCase{{4, 5, 6, 3}, 3, false},
                      MsdtCase{{4, 5, 6, 3}, 3, true},
                      MsdtCase{{3, 4, 3, 4, 3}, 2, false},
                      MsdtCase{{7, 6}, 3, false}));

/// Every MTTKRP MSDT produces matches the unamortized reference at the
/// current factor values (per-call exactness, not just end-to-end).
TEST(MsdtEngine, EveryCallMatchesReference) {
  const std::vector<index_t> shape{5, 6, 7};
  const auto t = test::random_tensor(shape, 203);
  auto factors = test::random_factors(shape, 4, 204);
  auto grams = all_grams(factors);
  MsdtEngine engine(t, factors, nullptr, {});
  for (int sweep = 0; sweep < 5; ++sweep) {
    for (int i = 0; i < 3; ++i) {
      const la::Matrix m = engine.mttkrp(i);
      const la::Matrix want = tensor::mttkrp_krp(t, factors, i);
      ASSERT_LE(m.max_abs_diff(want), 1e-9 * want.frobenius_norm() + 1e-12)
          << "sweep " << sweep << " mode " << i;
      const la::Matrix gamma = gamma_chain(grams, i);
      factors[static_cast<std::size_t>(i)] = update_factor(gamma, m);
      engine.notify_update(i);
      grams[static_cast<std::size_t>(i)] =
          la::gram(factors[static_cast<std::size_t>(i)]);
    }
  }
}

/// The headline claim: N first-level TTMs per N-1 sweeps in steady state
/// (vs 2 per sweep for DT).
TEST(MsdtEngine, TtmCountMatchesTheory) {
  for (int n : {3, 4, 5}) {
    const std::vector<index_t> shape(static_cast<std::size_t>(n), 5);
    const auto t = test::random_tensor(shape, 205);
    auto factors = test::random_factors(shape, 3, 206);
    MsdtEngine engine(t, factors, nullptr, {});
    auto run_sweep = [&] {
      for (int i = 0; i < n; ++i) {
        (void)engine.mttkrp(i);
        Rng rng(207 + i);
        factors[static_cast<std::size_t>(i)].fill_uniform(rng);
        engine.notify_update(i);
      }
    };
    // Warm up one full rotation, then measure N-1 sweeps.
    for (int s = 0; s < n; ++s) run_sweep();
    const long before = engine.ttm_count();
    for (int s = 0; s < n - 1; ++s) run_sweep();
    EXPECT_EQ(engine.ttm_count() - before, n)
        << "order " << n << ": N TTMs per N-1 sweeps";
  }
}

TEST(MsdtEngine, TransposedCopyDoesNotChangeResults) {
  const std::vector<index_t> shape{5, 4, 6, 3};
  const auto t = test::random_tensor(shape, 208);
  auto factors = test::random_factors(shape, 3, 209);
  EngineOptions plain, copy;
  copy.use_transposed_copy = TransposedCopy::kOn;
  MsdtEngine a(t, factors, nullptr, plain), b(t, factors, nullptr, copy);
  for (int sweep = 0; sweep < 3; ++sweep) {
    for (int i = 0; i < 4; ++i) {
      const la::Matrix ma = a.mttkrp(i);
      const la::Matrix mb = b.mttkrp(i);
      ASSERT_LE(ma.max_abs_diff(mb), 1e-10 * (ma.frobenius_norm() + 1.0));
      Rng rng(210 + sweep * 4 + i);
      factors[static_cast<std::size_t>(i)].fill_uniform(rng);
      a.notify_update(i);
      b.notify_update(i);
    }
  }
}

TEST(MsdtEngine, RobustToOutOfOrderCalls) {
  // Version stamps keep results exact even when the driver deviates from
  // the canonical sweep order (at the price of extra TTMs).
  const std::vector<index_t> shape{5, 6, 4};
  const auto t = test::random_tensor(shape, 211);
  auto factors = test::random_factors(shape, 3, 212);
  MsdtEngine engine(t, factors, nullptr, {});
  for (int mode : {2, 0, 0, 1, 2, 1, 0, 2}) {
    const la::Matrix m = engine.mttkrp(mode);
    const la::Matrix want = tensor::mttkrp_krp(t, factors, mode);
    ASSERT_LE(m.max_abs_diff(want), 1e-9 * want.frobenius_norm() + 1e-12);
    Rng rng(213 + mode);
    factors[static_cast<std::size_t>(mode)].fill_uniform(rng);
    engine.notify_update(mode);
  }
}

TEST(MsdtEngine, AuxiliaryMemoryLargerThanDt) {
  // Table I: MSDT holds an s^{N-1} R intermediate; DT only s^{N/2} R.
  const std::vector<index_t> shape{8, 8, 8, 8};
  const auto t = test::random_tensor(shape, 214);
  const auto factors = test::random_factors(shape, 4, 215);
  DtEngine dt(t, factors, nullptr, {});
  MsdtEngine msdt(t, factors, nullptr, {});
  for (int i = 0; i < 4; ++i) {
    (void)dt.mttkrp(i);
    (void)msdt.mttkrp(i);
  }
  EXPECT_GT(msdt.cached_elements(), dt.cached_elements());
}

}  // namespace
}  // namespace parpp::core
