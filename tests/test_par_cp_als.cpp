#include <gtest/gtest.h>

#include <cmath>

#include "parpp/par/par_cp_als.hpp"
#include "parpp/par/planc_baseline.hpp"
#include "test_util.hpp"

namespace parpp::par {
namespace {

struct GridCase {
  std::vector<int> dims;
};

class ParGrids : public ::testing::TestWithParam<GridCase> {};

/// Algorithm 3 on any grid must reproduce the sequential trajectory exactly
/// (same deterministic initialization, same updates).
TEST_P(ParGrids, MatchesSequentialRun) {
  const std::vector<index_t> shape{8, 9, 10};
  const auto t = test::random_tensor(shape, 801);
  core::CpOptions seq_opt;
  seq_opt.rank = 4;
  seq_opt.max_sweeps = 6;
  seq_opt.tol = 0.0;
  seq_opt.engine = core::EngineKind::kDt;
  const core::CpResult seq = core::cp_als(t, seq_opt);

  ParOptions par_opt;
  par_opt.base = seq_opt;
  par_opt.grid_dims = GetParam().dims;
  int nprocs = 1;
  for (int d : GetParam().dims) nprocs *= d;
  const ParResult par = par_cp_als(t, nprocs, par_opt);

  EXPECT_NEAR(par.fitness, seq.fitness, 1e-8);
  ASSERT_EQ(par.factors.size(), seq.factors.size());
  for (std::size_t m = 0; m < seq.factors.size(); ++m) {
    const double scale = seq.factors[m].frobenius_norm() + 1.0;
    EXPECT_LE(par.factors[m].max_abs_diff(seq.factors[m]), 1e-6 * scale)
        << "mode " << m;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grids, ParGrids,
    ::testing::Values(GridCase{{1, 1, 1}}, GridCase{{2, 1, 1}},
                      GridCase{{1, 2, 2}}, GridCase{{2, 2, 2}},
                      GridCase{{4, 1, 2}}, GridCase{{2, 2, 4}}));

TEST(ParCpAls, MsdtLocalEngineMatchesDt) {
  const auto t = test::random_tensor({8, 8, 8}, 802);
  ParOptions opt;
  opt.base.rank = 3;
  opt.base.max_sweeps = 5;
  opt.base.tol = 0.0;
  opt.grid_dims = {2, 2, 2};
  opt.local_engine = core::EngineKind::kDt;
  const ParResult dt = par_cp_als(t, 8, opt);
  opt.local_engine = core::EngineKind::kMsdt;
  const ParResult msdt = par_cp_als(t, 8, opt);
  EXPECT_NEAR(dt.fitness, msdt.fitness, 1e-8);
}

TEST(ParCpAls, PlancBaselineMatchesDistributedSolve) {
  const auto t = test::random_tensor({6, 8, 10}, 803);
  ParOptions opt;
  opt.base.rank = 3;
  opt.base.max_sweeps = 4;
  opt.base.tol = 0.0;
  opt.grid_dims = {2, 2, 1};
  const ParResult ours = par_cp_als(t, 4, opt);
  const ParResult planc = planc_cp_als(t, 4, opt);
  EXPECT_NEAR(ours.fitness, planc.fitness, 1e-8);
  // PLANC moves more words (the extra M All-Gather).
  EXPECT_GT(planc.comm_cost.total().words_horizontal,
            ours.comm_cost.total().words_horizontal);
}

TEST(ParCpAls, Order4Grid) {
  const auto t = test::random_tensor({6, 4, 6, 4}, 804);
  core::CpOptions seq_opt;
  seq_opt.rank = 3;
  seq_opt.max_sweeps = 4;
  seq_opt.tol = 0.0;
  const core::CpResult seq = core::cp_als(t, seq_opt);
  ParOptions opt;
  opt.base = seq_opt;
  opt.grid_dims = {2, 1, 2, 2};
  const ParResult par = par_cp_als(t, 8, opt);
  EXPECT_NEAR(par.fitness, seq.fitness, 1e-8);
}

TEST(ParCpAls, NonDivisibleExtentsStillExact) {
  // Padding paths: extents not divisible by grid dims or group sizes.
  const auto t = test::random_tensor({7, 9, 5}, 805);
  core::CpOptions seq_opt;
  seq_opt.rank = 3;
  seq_opt.max_sweeps = 5;
  seq_opt.tol = 0.0;
  const core::CpResult seq = core::cp_als(t, seq_opt);
  ParOptions opt;
  opt.base = seq_opt;
  opt.grid_dims = {2, 2, 2};
  const ParResult par = par_cp_als(t, 8, opt);
  EXPECT_NEAR(par.fitness, seq.fitness, 1e-8);
  for (std::size_t m = 0; m < seq.factors.size(); ++m)
    EXPECT_LE(par.factors[m].max_abs_diff(seq.factors[m]), 1e-6);
}

TEST(ParCpAls, SweepProfilesRecorded) {
  const auto t = test::random_tensor({8, 8, 8}, 806);
  ParOptions opt;
  opt.base.rank = 3;
  opt.base.max_sweeps = 3;
  opt.base.tol = 0.0;
  opt.grid_dims = {2, 2, 1};
  const ParResult r = par_cp_als(t, 4, opt);
  ASSERT_EQ(static_cast<int>(r.sweep_profiles.size()), r.sweeps);
  for (const auto& p : r.sweep_profiles) {
    EXPECT_GT(p.flops(Kernel::kTTM), 0.0);
  }
  EXPECT_GT(r.comm_cost.total().messages, 0.0);
  EXPECT_GT(r.mean_sweep_seconds, 0.0);
}

TEST(ParCpAls, CommCostScalesWithCollectiveCount) {
  const auto t = test::random_tensor({8, 8, 8}, 807);
  ParOptions opt;
  opt.base.rank = 3;
  opt.base.tol = 0.0;
  opt.grid_dims = {2, 2, 2};
  opt.base.max_sweeps = 2;
  const ParResult two = par_cp_als(t, 8, opt);
  opt.base.max_sweeps = 4;
  const ParResult four = par_cp_als(t, 8, opt);
  EXPECT_GT(four.comm_cost.total().messages,
            1.5 * two.comm_cost.total().messages);
}

}  // namespace
}  // namespace parpp::par
