#include <gtest/gtest.h>

#include <cmath>

#include "parpp/core/pp_als.hpp"
#include "parpp/data/collinearity.hpp"
#include "test_util.hpp"

namespace parpp::core {
namespace {

TEST(PpAls, ReachesAlsFitnessOnLowRank) {
  const auto t = test::low_rank_tensor({10, 9, 8}, 3, 601);
  CpOptions opt;
  opt.rank = 3;
  opt.max_sweeps = 200;
  opt.tol = 1e-9;
  const CpResult als = cp_als(t, opt);
  PpOptions pp;
  pp.pp_tol = 0.1;
  const CpResult ppr = pp_cp_als(t, opt, pp);
  EXPECT_GT(ppr.fitness, 0.999);
  EXPECT_NEAR(ppr.fitness, als.fitness, 5e-3);
}

TEST(PpAls, ActivatesPpSweepsOnSlowConvergence) {
  // High-collinearity tensors converge slowly, which is exactly when PP
  // engages (paper Sec. V-C).
  const auto gen =
      data::make_collinear_tensor({14, 14, 14}, 4, 0.85, 0.9, 602);
  CpOptions opt;
  opt.rank = 4;
  opt.max_sweeps = 120;
  opt.tol = 1e-8;
  PpOptions pp;
  pp.pp_tol = 0.1;
  const CpResult result = pp_cp_als(gen.tensor, opt, pp);
  EXPECT_GT(result.num_pp_init, 0) << "PP should have initialized";
  EXPECT_GT(result.num_pp_approx, 0) << "PP sweeps should have run";
  EXPECT_GT(result.num_als_sweeps, 0);
}

TEST(PpAls, StatsSumToTotalSweeps) {
  const auto gen = data::make_collinear_tensor({12, 12, 12}, 3, 0.6, 0.8, 603);
  CpOptions opt;
  opt.rank = 3;
  opt.max_sweeps = 80;
  opt.tol = 1e-8;
  const CpResult r = pp_cp_als(gen.tensor, opt);
  EXPECT_EQ(r.sweeps, r.num_als_sweeps + r.num_pp_init + r.num_pp_approx);
}

TEST(PpAls, FinalFitnessMatchesExplicitResidual) {
  const auto t = test::low_rank_tensor({8, 8, 8}, 2, 604);
  CpOptions opt;
  opt.rank = 2;
  opt.max_sweeps = 100;
  opt.tol = 1e-9;
  const CpResult r = pp_cp_als(t, opt);
  EXPECT_NEAR(test::explicit_residual(t, r.factors), r.residual, 1e-5);
}

TEST(PpAls, HistoryPhasesAreLabelled) {
  const auto gen = data::make_collinear_tensor({12, 12, 12}, 3, 0.85, 0.9, 605);
  CpOptions opt;
  opt.rank = 3;
  opt.max_sweeps = 100;
  opt.tol = 1e-9;
  PpOptions pp;
  pp.pp_tol = 0.1;
  const CpResult r = pp_cp_als(gen.tensor, opt, pp);
  bool saw_als = false, saw_init = false, saw_approx = false;
  for (const auto& rec : r.history) {
    saw_als |= rec.phase == "als";
    saw_init |= rec.phase == "pp-init";
    saw_approx |= rec.phase == "pp-approx";
  }
  EXPECT_TRUE(saw_als);
  EXPECT_TRUE(saw_init);
  EXPECT_TRUE(saw_approx);
}

TEST(PpAls, Order4Converges) {
  const auto t = test::low_rank_tensor({6, 5, 4, 5}, 2, 606);
  CpOptions opt;
  opt.rank = 2;
  opt.max_sweeps = 150;
  opt.tol = 1e-9;
  PpOptions pp;
  pp.pp_tol = 0.1;
  const CpResult r = pp_cp_als(t, opt, pp);
  EXPECT_GT(r.fitness, 0.99);
}

TEST(PpAls, RejectsBadTolerance) {
  const auto t = test::random_tensor({4, 4, 4}, 607);
  CpOptions opt;
  PpOptions pp;
  pp.pp_tol = 1.5;
  EXPECT_THROW((void)pp_cp_als(t, opt, pp), error);
}

TEST(PpAls, DtRegularEngineAlsoWorks) {
  const auto t = test::low_rank_tensor({8, 7, 6}, 2, 608);
  CpOptions opt;
  opt.rank = 2;
  opt.max_sweeps = 100;
  opt.tol = 1e-9;
  PpOptions pp;
  pp.regular_engine = EngineKind::kDt;
  const CpResult r = pp_cp_als(t, opt, pp);
  EXPECT_GT(r.fitness, 0.999);
}

}  // namespace
}  // namespace parpp::core
