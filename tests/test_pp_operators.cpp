#include <gtest/gtest.h>

#include "parpp/core/gram.hpp"
#include "parpp/la/gemm.hpp"
#include "parpp/core/msdt.hpp"
#include "parpp/core/pp_operators.hpp"
#include "parpp/core/solve_update.hpp"
#include "parpp/tensor/mttkrp_naive.hpp"
#include "parpp/tensor/mttv.hpp"
#include "parpp/tensor/transpose.hpp"
#include "parpp/tensor/ttm.hpp"
#include "test_util.hpp"

namespace parpp::core {
namespace {

/// Reference pair operator: contract every mode except {i, j} one at a
/// time, highest mode first, tracking positions.
tensor::DenseTensor ref_pair_op(const tensor::DenseTensor& t,
                                const std::vector<la::Matrix>& factors, int i,
                                int j, std::vector<int>* modes_out) {
  const int n = t.order();
  std::vector<int> contract;
  for (int m = n - 1; m >= 0; --m)
    if (m != i && m != j) contract.push_back(m);
  tensor::DenseTensor cur =
      tensor::ttm_first(t, contract[0],
                        factors[static_cast<std::size_t>(contract[0])]);
  std::vector<int> modes;
  for (int m = 0; m < n; ++m)
    if (m != contract[0]) modes.push_back(m);
  for (std::size_t k = 1; k < contract.size(); ++k) {
    const int m = contract[k];
    const auto it = std::find(modes.begin(), modes.end(), m);
    const int pos = static_cast<int>(it - modes.begin());
    cur = tensor::mttv(cur, pos, factors[static_cast<std::size_t>(m)]);
    modes.erase(modes.begin() + pos);
  }
  if (modes_out) *modes_out = modes;
  return cur;
}

class PpOpOrders : public ::testing::TestWithParam<int> {};

TEST_P(PpOpOrders, PairOperatorsMatchReference) {
  const int n = GetParam();
  std::vector<index_t> shape;
  for (int m = 0; m < n; ++m) shape.push_back(4 + m);
  const auto t = test::random_tensor(shape, 301);
  const auto factors = test::random_factors(shape, 3, 302);
  PpOperators ops(t, factors);
  ops.build();
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      std::vector<int> ref_modes;
      const auto want = ref_pair_op(t, factors, i, j, &ref_modes);
      const auto& got = ops.pair_op(i, j);
      ASSERT_EQ(got.modes.size(), 2u);
      // Storage order may differ between implementations; compare after
      // aligning.
      tensor::DenseTensor got_aligned = got.data;
      if (got.modes != ref_modes)
        got_aligned = tensor::transpose(got.data, {1, 0, 2});
      ASSERT_LE(got_aligned.max_abs_diff(want),
                1e-9 * want.frobenius_norm() + 1e-12)
          << "pair (" << i << "," << j << ") order " << n;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Orders, PpOpOrders, ::testing::Values(3, 4, 5));

TEST(PpOperators, LeavesMatchMttkrp) {
  const std::vector<index_t> shape{5, 6, 7, 4};
  const auto t = test::random_tensor(shape, 303);
  const auto factors = test::random_factors(shape, 3, 304);
  PpOperators ops(t, factors);
  ops.build();
  for (int m = 0; m < 4; ++m) {
    const la::Matrix want = tensor::mttkrp_krp(t, factors, m);
    test::expect_matrix_near(ops.mttkrp_p(m), want,
                             1e-9 * want.frobenius_norm() + 1e-12,
                             "M_p(n) == MTTKRP");
  }
}

TEST(PpOperators, DonorAmortizesOneFirstLevelTtm) {
  // After a regular MSDT sweep the engine cache holds a current first-level
  // intermediate; the PP build should then need only 2 fresh TTMs
  // (footnote 1 of the paper).
  const std::vector<index_t> shape{6, 6, 6};
  const auto t = test::random_tensor(shape, 305);
  auto factors = test::random_factors(shape, 3, 306);
  auto grams = all_grams(factors);
  MsdtEngine engine(t, factors, nullptr, {});
  for (int sweep = 0; sweep < 2; ++sweep) {
    for (int i = 0; i < 3; ++i) {
      const la::Matrix gamma = gamma_chain(grams, i);
      factors[static_cast<std::size_t>(i)] =
          update_factor(gamma, engine.mttkrp(i));
      engine.notify_update(i);
      grams[static_cast<std::size_t>(i)] =
          la::gram(factors[static_cast<std::size_t>(i)]);
    }
  }
  PpOperators with_donor(t, factors);
  with_donor.build(&engine);
  PpOperators without(t, factors);
  without.build();
  EXPECT_LT(with_donor.last_build_ttms(), without.last_build_ttms());
  EXPECT_EQ(without.last_build_ttms(), 3);
  EXPECT_EQ(with_donor.last_build_ttms(), 2);
  // And the donated build is still exact.
  for (int m = 0; m < 3; ++m) {
    test::expect_matrix_near(with_donor.mttkrp_p(m), without.mttkrp_p(m),
                             1e-9, "donated build exactness");
  }
}

TEST(PpOperators, OperatorMemoryMatchesTableOne) {
  // Pair operators hold sum_{i<j} s_i s_j R elements.
  const std::vector<index_t> shape{4, 5, 6};
  const auto t = test::random_tensor(shape, 307);
  const auto factors = test::random_factors(shape, 2, 308);
  PpOperators ops(t, factors);
  ops.build();
  EXPECT_EQ(ops.operator_elements(), (4 * 5 + 4 * 6 + 5 * 6) * 2);
}

TEST(PpOperators, RejectsOrderTwo) {
  const auto t = test::random_tensor({4, 4}, 309);
  const auto factors = test::random_factors({4, 4}, 2, 310);
  EXPECT_THROW(PpOperators(t, factors), error);
}

TEST(PpOperators, AccessBeforeBuildThrows) {
  const auto t = test::random_tensor({4, 4, 4}, 311);
  const auto factors = test::random_factors({4, 4, 4}, 2, 312);
  PpOperators ops(t, factors);
  EXPECT_THROW((void)ops.pair_op(0, 1), error);
  EXPECT_THROW((void)ops.mttkrp_p(0), error);
}

}  // namespace
}  // namespace parpp::core
