#include <gtest/gtest.h>

#include <vector>

#include "parpp/core/dim_tree.hpp"
#include "parpp/core/gram.hpp"
#include "parpp/la/gemm.hpp"
#include "parpp/core/solve_update.hpp"
#include "parpp/tensor/mttkrp_naive.hpp"
#include "test_util.hpp"

namespace parpp::core {
namespace {

/// Emulates ALS sweeps with the given engine and checks every produced
/// MTTKRP against the unamortized reference at the *same* factor values.
void check_engine_against_reference(EngineKind kind,
                                    const std::vector<index_t>& shape,
                                    index_t rank, int sweeps,
                                    const EngineOptions& opts = {}) {
  const auto t = test::random_tensor(shape, 101);
  auto factors = test::random_factors(shape, rank, 102);
  auto grams = all_grams(factors);
  auto engine = make_engine(kind, t, factors, nullptr, opts);
  const int n = t.order();
  for (int sweep = 0; sweep < sweeps; ++sweep) {
    for (int i = 0; i < n; ++i) {
      const la::Matrix m = engine->mttkrp(i);
      const la::Matrix want = tensor::mttkrp_krp(t, factors, i);
      ASSERT_LE(m.max_abs_diff(want),
                1e-9 * want.frobenius_norm() + 1e-12)
          << engine->name() << " sweep " << sweep << " mode " << i;
      // Perform the real ALS update so later modes see new factors.
      const la::Matrix gamma = gamma_chain(grams, i);
      factors[static_cast<std::size_t>(i)] = update_factor(gamma, m);
      engine->notify_update(i);
      grams[static_cast<std::size_t>(i)] =
          la::gram(factors[static_cast<std::size_t>(i)]);
    }
  }
}

struct TreeCase {
  std::vector<index_t> shape;
  index_t rank;
};

class DtShapes : public ::testing::TestWithParam<TreeCase> {};

TEST_P(DtShapes, MatchesNaiveAcrossSweeps) {
  check_engine_against_reference(EngineKind::kDt, GetParam().shape,
                                 GetParam().rank, 3);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, DtShapes,
    ::testing::Values(TreeCase{{6, 7}, 3}, TreeCase{{5, 6, 7}, 4},
                      TreeCase{{4, 5, 6, 3}, 3}, TreeCase{{3, 4, 3, 4, 3}, 2},
                      TreeCase{{9, 2, 8}, 5}, TreeCase{{2, 2, 2, 2, 2, 2}, 2}));

TEST(DtEngine, TwoTtmsPerSweepSteadyState) {
  const std::vector<index_t> shape{6, 6, 6, 6};
  const auto t = test::random_tensor(shape, 103);
  auto factors = test::random_factors(shape, 3, 104);
  DtEngine engine(t, factors, nullptr, {});
  // Warm-up sweep then measure two steady-state sweeps.
  auto run_sweep = [&] {
    for (int i = 0; i < 4; ++i) {
      (void)engine.mttkrp(i);
      Rng rng(105 + i);
      factors[static_cast<std::size_t>(i)].fill_uniform(rng);
      engine.notify_update(i);
    }
  };
  run_sweep();
  const long before = engine.ttm_count();
  run_sweep();
  run_sweep();
  EXPECT_EQ(engine.ttm_count() - before, 4);  // 2 TTMs per sweep
}

TEST(DtEngine, CacheShrinksAfterInvalidation) {
  const std::vector<index_t> shape{5, 5, 5};
  const auto t = test::random_tensor(shape, 106);
  auto factors = test::random_factors(shape, 2, 107);
  DtEngine engine(t, factors, nullptr, {});
  (void)engine.mttkrp(0);
  const std::size_t filled = engine.cached_nodes();
  EXPECT_GT(filled, 0u);
  // Invalidate everything: all cached nodes depend on modes 1 or 2.
  Rng rng(108);
  factors[1].fill_uniform(rng);
  engine.notify_update(1);
  factors[2].fill_uniform(rng);
  engine.notify_update(2);
  EXPECT_EQ(engine.cached_nodes(), 0u);
}

TEST(DtEngine, LevelCombiningStillExact) {
  // max_cached_modes = 1 forces recomputation of everything except leaves.
  EngineOptions opts;
  opts.max_cached_modes = 1;
  check_engine_against_reference(EngineKind::kDt, {4, 5, 6, 3}, 3, 2, opts);
}

TEST(DtEngine, LevelCombiningReducesMemory) {
  const std::vector<index_t> shape{8, 8, 8, 8};
  const auto t = test::random_tensor(shape, 109);
  const auto factors = test::random_factors(shape, 4, 110);
  EngineOptions full, limited;
  limited.max_cached_modes = 1;
  DtEngine a(t, factors, nullptr, full), b(t, factors, nullptr, limited);
  for (int i = 0; i < 4; ++i) {
    (void)a.mttkrp(i);
    (void)b.mttkrp(i);
  }
  EXPECT_GT(a.cached_elements(), b.cached_elements());
}

TEST(NaiveEngine, AgreesWithElementwise) {
  const std::vector<index_t> shape{4, 5, 3};
  const auto t = test::random_tensor(shape, 111);
  const auto factors = test::random_factors(shape, 2, 112);
  auto engine = make_engine(EngineKind::kNaive, t, factors);
  for (int i = 0; i < 3; ++i) {
    test::expect_matrix_near(engine->mttkrp(i),
                             tensor::mttkrp_elementwise(t, factors, i), 1e-9,
                             "naive engine");
  }
}

TEST(Engine, FactoryNames) {
  EXPECT_STREQ(engine_kind_name(EngineKind::kDt), "DT");
  EXPECT_STREQ(engine_kind_name(EngineKind::kMsdt), "MSDT");
  EXPECT_STREQ(engine_kind_name(EngineKind::kNaive), "naive");
}

}  // namespace
}  // namespace parpp::core
