// Sparse pairwise perturbation: the CSF pair-operator walk against the COO
// and dense references, sparse-vs-densified PP solves, and the
// allocation-free rebuild guarantee.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "parpp/core/pp_als.hpp"
#include "parpp/core/pp_nncp.hpp"
#include "parpp/core/pp_operators.hpp"
#include "parpp/data/sparse_synthetic.hpp"
#include "parpp/solver/solver.hpp"
#include "parpp/tensor/csf_tensor.hpp"
#include "parpp/tensor/mttkrp_sparse.hpp"
#include "test_util.hpp"

namespace parpp {
namespace {

std::vector<la::Matrix> factors_for(const tensor::CsfTensor& t, index_t rank,
                                    std::uint64_t seed) {
  std::vector<la::Matrix> f;
  for (int m = 0; m < t.order(); ++m)
    f.push_back(test::random_matrix(t.extent(m), rank, seed + m));
  return f;
}

TEST(SparsePairOp, CsfWalkMatchesCooReference) {
  for (const auto& shape :
       {std::vector<index_t>{9, 8, 7}, std::vector<index_t>{6, 5, 7, 4}}) {
    const tensor::CooTensor coo = data::make_sparse_random(shape, 0.08, 13);
    const tensor::CsfTensor csf(coo);
    const auto factors = factors_for(csf, 5, 7);
    const int n = csf.order();
    for (int i = 0; i < n; ++i) {
      for (int j = 0; j < n; ++j) {
        if (i == j) continue;
        tensor::DenseTensor got;
        tensor::pair_mttkrp_csf_into(csf, factors, i, j, got);
        const tensor::DenseTensor want =
            tensor::pair_mttkrp_coo(coo, factors, i, j);
        test::expect_tensor_near(got, want, 1e-12, "pair op");
      }
    }
  }
}

TEST(SparsePpOperators, MatchDenselyBuiltOperators) {
  const tensor::CooTensor coo = data::make_sparse_random({8, 7, 9}, 0.1, 5);
  const tensor::CsfTensor csf(coo);
  const tensor::DenseTensor dense = coo.densify();
  const auto factors = factors_for(csf, 4, 11);

  core::PpOperators sparse_ops(csf, factors);
  core::PpOperators dense_ops(dense, factors);
  sparse_ops.build();
  dense_ops.build();
  EXPECT_TRUE(sparse_ops.sparse());
  EXPECT_FALSE(dense_ops.sparse());

  const int n = csf.order();
  for (int i = 0; i < n; ++i) {
    // Leaves are the exact MTTKRPs; both storages must agree.
    test::expect_matrix_near(sparse_ops.mttkrp_p(i), dense_ops.mttkrp_p(i),
                             1e-11, "M_p leaf");
    for (int j = i + 1; j < n; ++j) {
      const auto& sp = sparse_ops.pair_op(i, j);
      const auto& dp = dense_ops.pair_op(i, j);
      ASSERT_EQ(sp.modes, (std::vector<int>{i, j}));
      // The dense build may store the pair with either mode order; compare
      // elementwise through the mode maps.
      ASSERT_EQ(dp.modes.size(), 2u);
      const bool flipped = dp.modes != sp.modes;
      for (index_t x = 0; x < sp.data.extent(0); ++x) {
        for (index_t y = 0; y < sp.data.extent(1); ++y) {
          for (index_t r = 0; r < sp.data.extent(2); ++r) {
            const std::vector<index_t> sidx{x, y, r};
            const std::vector<index_t> didx =
                flipped ? std::vector<index_t>{y, x, r} : sidx;
            EXPECT_NEAR(sp.data.at(sidx), dp.data.at(didx), 1e-11)
                << "pair (" << i << "," << j << ") at " << x << "," << y
                << "," << r;
          }
        }
      }
    }
  }
}

TEST(SparsePpOperators, RebuildsAreAllocationFree) {
  const tensor::CooTensor coo = data::make_sparse_random({12, 11, 10}, 0.05, 9);
  const tensor::CsfTensor csf(coo);
  auto factors = factors_for(csf, 4, 3);

  core::PpOperators ops(csf, factors);
  ops.build();
  const std::size_t bytes = ops.workspace_bytes();
  const std::size_t allocs = ops.workspace_allocations();
  for (int rebuild = 0; rebuild < 3; ++rebuild) {
    // Perturb the factors (shapes invariant) and rebuild, as the PP phase
    // does at every re-initialization.
    for (auto& f : factors) f.scale(1.0 + 1e-3);
    ops.build();
    EXPECT_EQ(ops.workspace_bytes(), bytes) << "rebuild " << rebuild;
    EXPECT_EQ(ops.workspace_allocations(), allocs) << "rebuild " << rebuild;
  }
}

TEST(SparsePp, SequentialSolveTracksDensifiedRun) {
  const auto gen = data::make_sparse_lowrank({16, 15, 14}, 4, 0.08, 23);
  const tensor::CsfTensor csf(gen.tensor);
  const tensor::DenseTensor dense = gen.tensor.densify();

  core::CpOptions options;
  options.rank = 4;
  options.max_sweeps = 30;
  options.tol = 0.0;  // fixed budget keeps both storages on one trajectory
  options.seed = 7;
  core::PpOptions pp;

  const core::CpResult sparse_run = core::pp_cp_als(csf, options, pp);
  const core::CpResult dense_run = core::pp_cp_als(dense, options, pp);

  ASSERT_EQ(sparse_run.history.size(), dense_run.history.size());
  for (std::size_t s = 0; s < sparse_run.history.size(); ++s) {
    EXPECT_EQ(sparse_run.history[s].phase, dense_run.history[s].phase)
        << "sweep " << s;
    EXPECT_NEAR(sparse_run.history[s].fitness, dense_run.history[s].fitness,
                1e-10)
        << "sweep " << s;
  }
  EXPECT_EQ(sparse_run.num_pp_init, dense_run.num_pp_init);
  EXPECT_EQ(sparse_run.num_pp_approx, dense_run.num_pp_approx);
  EXPECT_GT(sparse_run.num_pp_approx, 0)
      << "the PP phase never activated — the comparison is vacuous";
  EXPECT_NEAR(sparse_run.fitness, dense_run.fitness, 1e-10);
}

TEST(SparsePp, FacadeRunsSparsePpAndPpNncp) {
  const auto gen = data::make_sparse_lowrank({14, 13, 12}, 3, 0.08, 41);
  const tensor::CsfTensor csf(gen.tensor);

  solver::SolverSpec spec;
  spec.method = solver::Method::kPp;
  spec.rank = 3;
  spec.seed = 5;
  spec.stopping.max_sweeps = 200;
  spec.stopping.fitness_tol = 1e-9;
  const auto pp_report = parpp::solve(csf, spec);
  EXPECT_GT(pp_report.fitness, 1.0 - 1e-5);

  spec.method = solver::Method::kPpNncp;
  const auto ppnn_report = parpp::solve(csf, spec);
  EXPECT_GT(ppnn_report.fitness, 0.9);
  for (const auto& f : ppnn_report.factors)
    for (index_t i = 0; i < f.rows(); ++i)
      for (index_t j = 0; j < f.cols(); ++j) EXPECT_GE(f(i, j), 0.0);
}

TEST(SparsePp, SteadyStateSweepsNeverDensify) {
  // Same workspace-flatness proof as the ALS test, on the PP method: the
  // thread-default arena (the only place a sequential sparse solve could
  // lease tensor-sized scratch from) must stop growing after the second
  // sweep and stay far below the dense footprint.
  const auto gen = data::make_sparse_lowrank({48, 48, 48}, 4, 0.01, 5);
  const tensor::CsfTensor csf(gen.tensor);
  const double dense_bytes = 48.0 * 48.0 * 48.0 * sizeof(double);

  auto& ws = util::KernelWorkspace::thread_default();
  ws.trim();
  const std::size_t bytes_before = ws.total_bytes();

  solver::SolverSpec spec;
  spec.method = solver::Method::kPp;
  spec.rank = 4;
  spec.seed = 7;
  spec.stopping.max_sweeps = 40;
  spec.stopping.fitness_tol = 1e-12;
  std::size_t steady_bytes = 0;
  int sweeps_seen = 0;
  bool saw_pp_approx = false;
  spec.observer = [&](const core::SweepRecord& rec,
                      const std::vector<la::Matrix>&) {
    ++sweeps_seen;
    // The first PP-approximated sweep leases the correction scratch once;
    // from then on — PP or regular — the arena must hold flat.
    if (!saw_pp_approx) {
      if (rec.phase == "pp-approx") {
        saw_pp_approx = true;
        steady_bytes = ws.total_bytes();
      }
    } else {
      EXPECT_EQ(ws.total_bytes(), steady_bytes)
          << rec.phase << " sweep " << sweeps_seen;
    }
    return solver::ObserverAction::kContinue;
  };
  const auto report = parpp::solve(csf, spec);

  EXPECT_TRUE(saw_pp_approx) << "the PP phase never activated";
  EXPECT_GE(sweeps_seen, 3);
  EXPECT_GT(report.fitness, 0.9);
  // PP legitimately carries O(s^2 R) auxiliary scratch for the pair
  // operator corrections (Table I), so the bound is looser than the plain
  // ALS test's — but still far below materializing the dense tensor.
  EXPECT_LT(static_cast<double>(ws.total_bytes() - bytes_before),
            dense_bytes / 2);
}

}  // namespace
}  // namespace parpp
