#include <gtest/gtest.h>

#include <numeric>

#include "parpp/tensor/transpose.hpp"
#include "test_util.hpp"

namespace parpp::tensor {
namespace {

/// Reference transpose via explicit index mapping.
DenseTensor ref_transpose(const DenseTensor& in, const std::vector<int>& perm) {
  const int n = in.order();
  std::vector<index_t> out_shape(static_cast<std::size_t>(n));
  for (int m = 0; m < n; ++m)
    out_shape[static_cast<std::size_t>(m)] =
        in.extent(perm[static_cast<std::size_t>(m)]);
  DenseTensor out(out_shape);
  std::vector<index_t> idx(static_cast<std::size_t>(n), 0);
  if (in.size() == 0) return out;
  do {
    std::vector<index_t> oidx(static_cast<std::size_t>(n));
    for (int m = 0; m < n; ++m)
      oidx[static_cast<std::size_t>(m)] =
          idx[static_cast<std::size_t>(perm[static_cast<std::size_t>(m)])];
    out.at(oidx) = in.at(idx);
  } while (next_index(in.shape(), idx));
  return out;
}

TEST(Transpose, IdentityPermutationCopies) {
  const DenseTensor t = test::random_tensor({3, 4, 5}, 1);
  const DenseTensor out = transpose(t, {0, 1, 2});
  test::expect_tensor_near(out, t, 0.0, "identity perm");
}

TEST(Transpose, MatrixTranspose) {
  const DenseTensor t = test::random_tensor({7, 9}, 2);
  const DenseTensor out = transpose(t, {1, 0});
  for (index_t i = 0; i < 7; ++i)
    for (index_t j = 0; j < 9; ++j) {
      const std::array<index_t, 2> a{i, j}, b{j, i};
      EXPECT_DOUBLE_EQ(t.at(a), out.at(b));
    }
}

TEST(Transpose, MatchesReferenceOnAllOrder3Perms) {
  const DenseTensor t = test::random_tensor({4, 5, 6}, 3);
  std::vector<int> perm{0, 1, 2};
  do {
    test::expect_tensor_near(transpose(t, perm), ref_transpose(t, perm), 0.0,
                             "order-3 perm");
  } while (std::next_permutation(perm.begin(), perm.end()));
}

TEST(Transpose, MatchesReferenceOnOrder4Rotation) {
  const DenseTensor t = test::random_tensor({3, 4, 2, 5}, 4);
  const std::vector<int> perm{2, 3, 0, 1};
  test::expect_tensor_near(transpose(t, perm), ref_transpose(t, perm), 0.0,
                           "order-4 rotation");
}

TEST(Transpose, RoundTripIsIdentity) {
  const DenseTensor t = test::random_tensor({5, 3, 4}, 5);
  const std::vector<int> perm{2, 0, 1};
  // inverse[perm[m]] = m
  std::vector<int> inv(3);
  for (int m = 0; m < 3; ++m)
    inv[static_cast<std::size_t>(perm[static_cast<std::size_t>(m)])] = m;
  const DenseTensor back = transpose(transpose(t, perm), inv);
  test::expect_tensor_near(back, t, 0.0, "round trip");
}

TEST(Transpose, RejectsInvalidPermutation) {
  const DenseTensor t = test::random_tensor({2, 2}, 6);
  EXPECT_THROW((void)transpose(t, {0, 0}), error);
  EXPECT_THROW((void)transpose(t, {0}), error);
  EXPECT_THROW((void)transpose(t, {0, 2}), error);
}

TEST(Transpose, IsPermutationHelper) {
  EXPECT_TRUE(is_permutation({2, 0, 1}, 3));
  EXPECT_FALSE(is_permutation({2, 2, 1}, 3));
  EXPECT_FALSE(is_permutation({0, 1}, 3));
}

}  // namespace
}  // namespace parpp::tensor
