// The scalar-type axis: fp32-storage kernels vs their fp64 twins.
//
// Every fp32 entry point stores the *streamed* operands (factors, tensor
// values, KRP panels) in fp32 and accumulates in fp64, so parity vs the
// fp64 kernel is bounded by fp32 representation roundoff of the inputs —
// ~1e-7 relative per element, amplified by the reduction length. The
// property tests below assert ~1e-5 relative across all four hot kernels,
// plus the workspace non-aliasing and allocation-free guarantees and the
// end-to-end convergence-quality bound (fp32 fitness within 1e-4 of fp64).
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "parpp/core/mttkrp_engine.hpp"
#include "parpp/core/pp_operators.hpp"
#include "parpp/core/sparse_engine.hpp"
#include "parpp/data/sparse_synthetic.hpp"
#include "parpp/la/gemm.hpp"
#include "parpp/la/scalar.hpp"
#include "parpp/solver/solve.hpp"
#include "parpp/tensor/csf_tensor.hpp"
#include "parpp/tensor/mttkrp_fused.hpp"
#include "parpp/tensor/mttkrp_sparse.hpp"
#include "test_util.hpp"

namespace parpp {
namespace {

double max_abs(const la::Matrix& m) {
  return m.max_abs_diff(la::Matrix(m.rows(), m.cols()));
}

/// |a - b|_max <= tol * |a|_max — the relative form the fp32 bounds use.
void expect_rel_near(const la::Matrix& a, const la::Matrix& b, double tol,
                     const char* what) {
  ASSERT_EQ(a.rows(), b.rows()) << what;
  ASSERT_EQ(a.cols(), b.cols()) << what;
  const double scale = std::max(max_abs(a), 1.0);
  EXPECT_LE(a.max_abs_diff(b), tol * scale) << what;
}

std::vector<float> to_f32(const double* src, index_t n) {
  std::vector<float> out(static_cast<std::size_t>(n));
  for (index_t i = 0; i < n; ++i)
    out[static_cast<std::size_t>(i)] = static_cast<float>(src[i]);
  return out;
}

// ---------------------------------------------------------------- GEMM --

TEST(ScalarKernels, GemmF32Parity) {
  for (index_t m : {7, 32}) {
    const index_t k = m + 5;
    const index_t n = m + 3;
    const la::Matrix a = test::random_matrix(m, k, 900 + m);
    const la::Matrix b = test::random_matrix(k, n, 901 + m);
    const std::vector<float> a32 = to_f32(a.data(), a.size());
    const std::vector<float> b32 = to_f32(b.data(), b.size());

    la::Matrix c64(m, n);
    la::Matrix c32(m, n);
    la::gemm_raw(la::Trans::kNo, la::Trans::kNo, m, n, k, 1.0, a.data(), k,
                 b.data(), n, 0.0, c64.data(), n);
    la::gemm_raw_f32(la::Trans::kNo, la::Trans::kNo, m, n, k, 1.0,
                     a32.data(), k, b32.data(), n, 0.0, c32.data(), n);
    expect_rel_near(c64, c32, 1e-5, "gemm fp32 storage");
  }
}

TEST(ScalarKernels, GemmF32ParityTransposed) {
  const index_t m = 17, n = 13, k = 21;
  const la::Matrix at = test::random_matrix(k, m, 910);  // op(A) = A^T
  const la::Matrix bt = test::random_matrix(n, k, 911);  // op(B) = B^T
  const std::vector<float> a32 = to_f32(at.data(), at.size());
  const std::vector<float> b32 = to_f32(bt.data(), bt.size());

  la::Matrix c64(m, n);
  la::Matrix c32(m, n);
  la::gemm_raw(la::Trans::kYes, la::Trans::kYes, m, n, k, 2.0, at.data(), m,
               bt.data(), k, 0.0, c64.data(), n);
  la::gemm_raw_f32(la::Trans::kYes, la::Trans::kYes, m, n, k, 2.0,
                   a32.data(), m, b32.data(), k, 0.0, c32.data(), n);
  expect_rel_near(c64, c32, 1e-5, "gemm fp32 storage (transposed)");
}

// --------------------------------------------------------- fused MTTKRP --

void expect_fused_f32_parity(const std::vector<index_t>& shape, index_t rank,
                             std::uint64_t seed) {
  const tensor::DenseTensor t = test::random_tensor(shape, seed);
  const auto factors = test::random_factors(shape, rank, seed + 1);
  const std::vector<float> t32 = to_f32(t.data(), t.size());
  std::vector<la::MatrixF32> mirrors;
  la::sync_mirrors(factors, mirrors);

  for (int mode = 0; mode < t.order(); ++mode) {
    const la::Matrix ref = tensor::mttkrp_fused(t, factors, mode);
    la::Matrix out;
    tensor::mttkrp_into_f32(t32.data(), shape, mirrors, mode, out);
    expect_rel_near(ref, out, 1e-5, "fused MTTKRP fp32 storage");
  }
}

TEST(ScalarKernels, FusedMttkrpF32ParityAllModes) {
  expect_fused_f32_parity({9, 8, 7}, 6, 920);    // generic-rank kernel
  expect_fused_f32_parity({10, 6, 9}, 8, 921);   // R=8 register block
  expect_fused_f32_parity({7, 5, 4, 6}, 16, 922);  // R=16, order 4
}

// ----------------------------------------------------------- CSF walks --

void expect_csf_f32_parity(const tensor::CooTensor& coo,
                           tensor::CsfLayout layout, index_t rank,
                           std::uint64_t seed) {
  const tensor::CsfTensor csf(coo, tensor::CsfOptions{layout});
  const auto factors = test::random_factors(coo.shape(), rank, seed);
  std::vector<la::MatrixF32> mirrors;
  la::sync_mirrors(factors, mirrors);
  tensor::CsfValsF32 vals32;
  vals32.sync(csf);

  for (int mode = 0; mode < coo.order(); ++mode) {
    for (tensor::CsfWalk walk :
         {tensor::CsfWalk::kFiber, tensor::CsfWalk::kTiled}) {
      const la::Matrix ref =
          tensor::mttkrp_csf(csf, factors, mode, nullptr, nullptr, walk);
      la::Matrix out;
      tensor::mttkrp_csf_into_f32(csf, mirrors, mode, vals32, out, nullptr,
                                  nullptr, walk);
      expect_rel_near(ref, out, 1e-5, "CSF MTTKRP fp32 storage");
    }
  }
}

TEST(ScalarKernels, CsfMttkrpF32ParityAllModesLayout) {
  expect_csf_f32_parity(data::make_sparse_random({9, 8, 7}, 0.15, 30),
                        tensor::CsfLayout::kAllModes, 6, 930);
  expect_csf_f32_parity(data::make_sparse_random({7, 5, 4, 6}, 0.08, 31),
                        tensor::CsfLayout::kAllModes, 8, 931);
}

TEST(ScalarKernels, CsfMttkrpF32ParityHalfLayout) {
  // kHalf exercises the downward leaf-scatter walk for the upper modes.
  expect_csf_f32_parity(data::make_sparse_random({9, 8, 7}, 0.15, 32),
                        tensor::CsfLayout::kHalf, 6, 932);
  expect_csf_f32_parity(data::make_sparse_random({7, 5, 4, 6}, 0.08, 33),
                        tensor::CsfLayout::kHalf, 16, 933);
}

// -------------------------------------------------------- pair operator --

void expect_pair_f32_parity(const tensor::CooTensor& coo, index_t rank,
                            std::uint64_t seed) {
  const tensor::CsfTensor csf(coo);
  const auto factors = test::random_factors(coo.shape(), rank, seed);
  std::vector<la::MatrixF32> mirrors;
  la::sync_mirrors(factors, mirrors);
  tensor::CsfValsF32 vals32;
  vals32.sync(csf);

  for (int i = 0; i < coo.order(); ++i) {
    for (int j = 0; j < coo.order(); ++j) {
      if (i == j) continue;
      tensor::DenseTensor ref;
      tensor::pair_mttkrp_csf_into(csf, factors, i, j, ref);
      tensor::DenseTensor out;
      tensor::pair_mttkrp_csf_into_f32(csf, mirrors, i, j, vals32, out);
      ASSERT_EQ(ref.shape(), out.shape());
      double scale = 0.0;
      for (index_t e = 0; e < ref.size(); ++e)
        scale = std::max(scale, std::abs(ref.data()[e]));
      EXPECT_LE(ref.max_abs_diff(out), 1e-5 * std::max(scale, 1.0))
          << "pair operator fp32 storage (" << i << ", " << j << ")";
    }
  }
}

TEST(ScalarKernels, PairMttkrpF32ParityAllPairs) {
  expect_pair_f32_parity(data::make_sparse_random({9, 8, 7}, 0.15, 40), 6,
                         940);
  expect_pair_f32_parity(data::make_sparse_random({6, 5, 4, 5}, 0.08, 41), 8,
                         941);
}

// -------------------------------------------------- workspace discipline --

TEST(ScalarKernels, F32LeaseNeverAliasesF64LeaseOfSameCount) {
  // The arena's free list is keyed by capacity in doubles. An fp32 lease of
  // n elements asks for ceil(n/2) doubles, an fp64 lease of n elements for
  // n doubles — different keys for every n >= 2, so a recycled fp32 buffer
  // can never come back as a too-small fp64 buffer.
  for (index_t n : {2, 3, 17, 64, 1023}) {
    EXPECT_NE(la::f32_lease_doubles(n), n) << "n = " << n;
    EXPECT_GE(la::f32_lease_doubles(n) * 2, n) << "n = " << n;
  }

  util::KernelWorkspace ws;
  {
    auto f32 = ws.lease(la::f32_lease_doubles(64));
    float* p = la::as_f32(f32);
    for (index_t i = 0; i < 64; ++i) p[i] = 1.0f;  // 64 floats must fit
    EXPECT_GE(f32.capacity(), 32);  // the arena may round the slab up
  }
  // Same element count as fp64: whatever the free list serves (recycled or
  // fresh) must hold 64 *doubles*, not 64 floats.
  auto f64 = ws.lease(64);
  EXPECT_GE(f64.capacity(), 64);
}

TEST(ScalarKernels, SparseEngineF32SteadyStateAllocFree) {
  const tensor::CooTensor coo = data::make_sparse_random({12, 10, 9}, 0.1, 50);
  const tensor::CsfTensor csf(coo);
  auto factors = test::random_factors(coo.shape(), 8, 950);

  core::EngineOptions opts;
  opts.scalar = la::Scalar::kF32;
  core::SparseEngine engine(csf, factors, nullptr, opts);

  // Warm-up sweep: leases sized, mirrors allocated.
  for (int mode = 0; mode < csf.order(); ++mode) {
    factors[static_cast<std::size_t>(mode)] = engine.mttkrp(mode);
    engine.notify_update(mode);
  }
  const std::size_t allocs = engine.workspace().allocation_count();
  const std::size_t bytes = engine.workspace().total_bytes();
  // Steady state: mirror re-syncs and walks must reuse everything.
  for (int sweep = 0; sweep < 3; ++sweep) {
    for (int mode = 0; mode < csf.order(); ++mode) {
      factors[static_cast<std::size_t>(mode)] = engine.mttkrp(mode);
      engine.notify_update(mode);
    }
  }
  EXPECT_EQ(engine.workspace().allocation_count(), allocs);
  EXPECT_EQ(engine.workspace().total_bytes(), bytes);
  EXPECT_EQ(engine.workspace().leased_buffers(), 0u);
}

TEST(ScalarKernels, FusedF32SteadyStateAllocFree) {
  const std::vector<index_t> shape = {10, 9, 8};
  const tensor::DenseTensor t = test::random_tensor(shape, 960);
  const auto factors = test::random_factors(shape, 8, 961);
  const std::vector<float> t32 = to_f32(t.data(), t.size());
  std::vector<la::MatrixF32> mirrors;
  la::sync_mirrors(factors, mirrors);

  util::KernelWorkspace ws;
  la::Matrix out;
  for (int mode = 0; mode < t.order(); ++mode)
    tensor::mttkrp_into_f32(t32.data(), shape, mirrors, mode, out, nullptr,
                            &ws);
  const std::size_t allocs = ws.allocation_count();
  const std::size_t bytes = ws.total_bytes();
  for (int sweep = 0; sweep < 3; ++sweep)
    for (int mode = 0; mode < t.order(); ++mode)
      tensor::mttkrp_into_f32(t32.data(), shape, mirrors, mode, out, nullptr,
                              &ws);
  EXPECT_EQ(ws.allocation_count(), allocs);
  EXPECT_EQ(ws.total_bytes(), bytes);
  EXPECT_EQ(ws.leased_buffers(), 0u);
}

// ------------------------------------------------------------ rejection --

TEST(ScalarKernels, DimensionTreeEnginesRejectF32) {
  const std::vector<index_t> shape = {6, 5, 4};
  const tensor::DenseTensor t = test::random_tensor(shape, 970);
  const auto factors = test::random_factors(shape, 4, 971);
  core::EngineOptions opts;
  opts.scalar = la::Scalar::kF32;
  EXPECT_THROW(core::make_engine(core::EngineKind::kDt, t, factors, nullptr,
                                 opts),
               parpp::error);
  EXPECT_THROW(core::make_engine(core::EngineKind::kMsdt, t, factors,
                                 nullptr, opts),
               parpp::error);
  // The naive (fused) engine is the dense fp32 path and must accept it.
  EXPECT_NO_THROW(core::make_engine(core::EngineKind::kNaive, t, factors,
                                    nullptr, opts));
}

// --------------------------------------------------- end-to-end quality --

solver::SolveReport run_dense(const tensor::DenseTensor& t,
                              la::Scalar scalar) {
  solver::SolverSpec spec;
  spec.method = solver::Method::kAls;
  spec.rank = 6;
  spec.seed = 7;
  spec.engine = core::EngineKind::kNaive;
  spec.engine_options.scalar = scalar;
  spec.stopping.max_sweeps = 40;
  spec.stopping.fitness_tol = 0.0;  // fixed sweep count for a fair compare
  return parpp::solve(t, spec);
}

TEST(ScalarKernels, DenseFusedF32ConvergesLikeF64) {
  const tensor::DenseTensor t = test::low_rank_tensor({12, 11, 10}, 6, 980);
  const auto r64 = run_dense(t, la::Scalar::kF64);
  const auto r32 = run_dense(t, la::Scalar::kF32);
  EXPECT_GT(r64.fitness, 0.98);  // sanity: the problem is solvable
  EXPECT_NEAR(r32.fitness, r64.fitness, 1e-4);
}

solver::SolveReport run_sparse(const tensor::CsfTensor& t,
                               solver::Method method, la::Scalar scalar) {
  solver::SolverSpec spec;
  spec.method = method;
  spec.rank = 5;
  spec.seed = 7;
  spec.engine = core::EngineKind::kSparse;
  spec.engine_options.scalar = scalar;
  spec.stopping.max_sweeps = 40;
  spec.stopping.fitness_tol = 0.0;
  return parpp::solve(t, spec);
}

TEST(ScalarKernels, SparseF32ConvergesLikeF64) {
  const auto data = data::make_sparse_lowrank({16, 14, 12}, 5, 0.08, 985);
  const tensor::CsfTensor csf(data.tensor);
  const auto r64 = run_sparse(csf, solver::Method::kAls, la::Scalar::kF64);
  const auto r32 = run_sparse(csf, solver::Method::kAls, la::Scalar::kF32);
  EXPECT_GT(r64.fitness, 0.9);
  EXPECT_NEAR(r32.fitness, r64.fitness, 1e-4);
}

TEST(ScalarKernels, SparsePpF32ConvergesLikeF64) {
  const auto data = data::make_sparse_lowrank({16, 14, 12}, 5, 0.08, 986);
  const tensor::CsfTensor csf(data.tensor);
  const auto r64 = run_sparse(csf, solver::Method::kPp, la::Scalar::kF64);
  const auto r32 = run_sparse(csf, solver::Method::kPp, la::Scalar::kF32);
  EXPECT_GT(r64.num_pp_approx, 0);  // PP actually engaged
  EXPECT_NEAR(r32.fitness, r64.fitness, 1e-4);
}

// fp32 pair operators: parity of the PpOperators build + the fp32-streamed
// correction path against the all-fp64 build.
TEST(ScalarKernels, PpOperatorsF32BuildMatchesF64) {
  const auto data = data::make_sparse_lowrank({12, 10, 9}, 4, 0.1, 987);
  const tensor::CsfTensor csf(data.tensor);
  const auto factors = test::random_factors(csf.shape(), 4, 988);

  core::PpOperators ops64(csf, factors, nullptr, la::Scalar::kF64);
  core::PpOperators ops32(csf, factors, nullptr, la::Scalar::kF32);
  ops64.build();
  ops32.build();
  for (int i = 0; i < csf.order(); ++i) {
    for (int j = i + 1; j < csf.order(); ++j) {
      const auto& a = ops64.pair_op(i, j);
      const auto& b = ops32.pair_op(i, j);
      ASSERT_EQ(a.data.shape(), b.data.shape());
      double scale = 0.0;
      for (index_t e = 0; e < a.data.size(); ++e)
        scale = std::max(scale, std::abs(a.data.data()[e]));
      EXPECT_LE(a.data.max_abs_diff(b.data), 1e-5 * std::max(scale, 1.0));
      EXPECT_TRUE(b.f32_valid);
      ASSERT_EQ(b.data_f32.size(),
                static_cast<std::size_t>(b.data.size()));
      // The fp32 mirror quantizes the fp64 build it rode along with.
      for (index_t e = 0; e < b.data.size(); ++e)
        EXPECT_EQ(b.data_f32[static_cast<std::size_t>(e)],
                  static_cast<float>(b.data.data()[e]));
    }
  }
}

}  // namespace
}  // namespace parpp
