// Malformed FROSTT .tns input must fail with a line-numbered parpp::error,
// never a silent truncation or a bad tensor.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "parpp/tensor/coo_tensor.hpp"
#include "parpp/util/common.hpp"
#include "parpp/util/serialize.hpp"

namespace parpp {
namespace {

[[nodiscard]] std::string load_error(const std::string& text) {
  std::istringstream is(text);
  try {
    (void)io::load_tns(is);
  } catch (const parpp::error& e) {
    return e.what();
  }
  ADD_FAILURE() << "load_tns accepted malformed input:\n" << text;
  return {};
}

TEST(TnsMalformed, ZeroIndexRejected) {
  const std::string err = load_error("1 1 1 2.0\n0 1 1 3.0\n");
  EXPECT_NE(err.find("line 2"), std::string::npos) << err;
  EXPECT_NE(err.find("positive integers"), std::string::npos) << err;
}

TEST(TnsMalformed, NegativeIndexRejected) {
  const std::string err = load_error("2 1 1 2.0\n1 -3 1 1.0\n");
  EXPECT_NE(err.find("line 2"), std::string::npos) << err;
  EXPECT_NE(err.find("positive integers"), std::string::npos) << err;
}

TEST(TnsMalformed, FractionalIndexRejected) {
  const std::string err = load_error("1 1.5 1 2.0\n");
  EXPECT_NE(err.find("line 1"), std::string::npos) << err;
  EXPECT_NE(err.find("positive integers"), std::string::npos) << err;
}

TEST(TnsMalformed, IndexBeyondDimsHeaderRejected) {
  const std::string err = load_error("# dims 2 2 2\n1 1 1 1.0\n1 3 1 1.0\n");
  EXPECT_NE(err.find("index exceeds dims header"), std::string::npos) << err;
}

TEST(TnsMalformed, NonFiniteValueRejected) {
  // istream's double parser rejects "nan"/"inf" outright, so these trip the
  // unparseable-token guard (still line-numbered) rather than the isfinite
  // backstop, which covers values that arrive non-finite by other routes.
  const std::string err = load_error("1 1 1 1.0\n1 2 1 nan\n");
  EXPECT_NE(err.find("line 2"), std::string::npos) << err;
  EXPECT_NE(err.find("unparseable token"), std::string::npos) << err;
  const std::string inf_err = load_error("1 1 1 inf\n");
  EXPECT_NE(inf_err.find("line 1"), std::string::npos) << inf_err;
  EXPECT_NE(inf_err.find("unparseable token"), std::string::npos) << inf_err;
}

TEST(TnsMalformed, WrongArityRejected) {
  // The first data line fixes the order; later lines must match it.
  const std::string err = load_error("1 1 1 1.0\n1 2 2.0\n");
  EXPECT_NE(err.find("line 2"), std::string::npos) << err;
  EXPECT_NE(err.find("expected 4 fields"), std::string::npos) << err;
}

TEST(TnsMalformed, BareValueLineRejected) {
  const std::string err = load_error("3.25\n");
  EXPECT_NE(err.find("at least one coordinate and a value"),
            std::string::npos)
      << err;
}

TEST(TnsMalformed, TrailingGarbageTokenRejected) {
  const std::string err = load_error("1 1 1 1.0 xyz\n");
  EXPECT_NE(err.find("line 1"), std::string::npos) << err;
  EXPECT_NE(err.find("unparseable token"), std::string::npos) << err;
}

TEST(TnsMalformed, NonNumericCoordinateRejected) {
  const std::string err = load_error("1 1 1 1.0\n1 a 1 1.0\n");
  EXPECT_NE(err.find("line 2"), std::string::npos) << err;
  EXPECT_NE(err.find("unparseable token"), std::string::npos) << err;
}

TEST(TnsMalformed, MalformedDimsHeaderRejected) {
  const std::string err = load_error("# dims 4 x 4\n1 1 1 1.0\n");
  EXPECT_NE(err.find("malformed dims header"), std::string::npos) << err;
}

TEST(TnsMalformed, DimsHeaderOrderMismatchRejected) {
  const std::string err = load_error("# dims 4 4\n1 1 1 1.0\n");
  EXPECT_NE(err.find("dims header order mismatch"), std::string::npos) << err;
}

TEST(TnsMalformed, EmptyFileRejected) {
  const std::string err = load_error("# just a comment\n\n");
  EXPECT_NE(err.find("no nonzero entries"), std::string::npos) << err;
}

TEST(TnsMalformed, MissingFileRejected) {
  EXPECT_THROW((void)io::load_tns_file("/nonexistent/tensor.tns"),
               parpp::error);
}

// The happy path stays intact around all the checks above.
TEST(TnsMalformed, WellFormedInputStillLoads) {
  std::istringstream is(
      "# dims 3 4 2\n"
      "1 1 1 1.5\n"
      "3 4 2 -2.0\n"
      "# trailing comment\n"
      "2 2 1 0.25\n");
  const tensor::CooTensor t = io::load_tns(is);
  EXPECT_EQ(t.order(), 3);
  EXPECT_EQ(t.nnz(), 3);
  EXPECT_EQ(t.shape()[0], 3);
  EXPECT_EQ(t.shape()[1], 4);
  EXPECT_EQ(t.shape()[2], 2);
}

}  // namespace
}  // namespace parpp
