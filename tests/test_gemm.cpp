#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "parpp/la/gemm.hpp"
#include "test_util.hpp"

namespace parpp::la {
namespace {

/// Naive reference GEMM.
Matrix ref_matmul(const Matrix& a, const Matrix& b, Trans ta, Trans tb) {
  const index_t m = ta == Trans::kNo ? a.rows() : a.cols();
  const index_t k = ta == Trans::kNo ? a.cols() : a.rows();
  const index_t n = tb == Trans::kNo ? b.cols() : b.rows();
  Matrix c(m, n);
  for (index_t i = 0; i < m; ++i)
    for (index_t j = 0; j < n; ++j) {
      double s = 0.0;
      for (index_t l = 0; l < k; ++l) {
        const double av = ta == Trans::kNo ? a(i, l) : a(l, i);
        const double bv = tb == Trans::kNo ? b(l, j) : b(j, l);
        s += av * bv;
      }
      c(i, j) = s;
    }
  return c;
}

using Shape = std::tuple<index_t, index_t, index_t>;  // m, n, k

class GemmShapes : public ::testing::TestWithParam<Shape> {};

TEST_P(GemmShapes, AllTransposeCombosMatchReference) {
  const auto [m, n, k] = GetParam();
  for (Trans ta : {Trans::kNo, Trans::kYes}) {
    for (Trans tb : {Trans::kNo, Trans::kYes}) {
      const Matrix a = ta == Trans::kNo ? test::random_matrix(m, k, 1)
                                        : test::random_matrix(k, m, 1);
      const Matrix b = tb == Trans::kNo ? test::random_matrix(k, n, 2)
                                        : test::random_matrix(n, k, 2);
      const Matrix got = matmul(a, b, ta, tb);
      const Matrix want = ref_matmul(a, b, ta, tb);
      test::expect_matrix_near(got, want, 1e-10 * static_cast<double>(k + 1),
                               "gemm transpose combo");
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GemmShapes,
    ::testing::Values(Shape{1, 1, 1}, Shape{3, 5, 7}, Shape{16, 16, 16},
                      Shape{65, 33, 17}, Shape{128, 70, 300}, Shape{1, 64, 64},
                      Shape{64, 1, 64}, Shape{64, 64, 1}, Shape{257, 129, 5}));

TEST(Gemm, BetaAccumulates) {
  const Matrix a = test::random_matrix(8, 4, 3);
  const Matrix b = test::random_matrix(4, 6, 4);
  Matrix c = test::random_matrix(8, 6, 5);
  const Matrix c0 = c;
  gemm_raw(Trans::kNo, Trans::kNo, 8, 6, 4, 2.0, a.data(), 4, b.data(), 6, 3.0,
           c.data(), 6);
  const Matrix ab = ref_matmul(a, b, Trans::kNo, Trans::kNo);
  for (index_t i = 0; i < 8; ++i)
    for (index_t j = 0; j < 6; ++j)
      EXPECT_NEAR(c(i, j), 2.0 * ab(i, j) + 3.0 * c0(i, j), 1e-12);
}

TEST(Gemm, BetaZeroOverwritesGarbage) {
  const Matrix a = test::random_matrix(4, 4, 6);
  const Matrix b = test::random_matrix(4, 4, 7);
  Matrix c(4, 4);
  c.fill(std::nan(""));
  gemm_raw(Trans::kNo, Trans::kNo, 4, 4, 4, 1.0, a.data(), 4, b.data(), 4, 0.0,
           c.data(), 4);
  const Matrix want = ref_matmul(a, b, Trans::kNo, Trans::kNo);
  test::expect_matrix_near(c, want, 1e-12, "beta=0 overwrite");
}

TEST(Gemm, InnerDimensionMismatchThrows) {
  const Matrix a(3, 4);
  const Matrix b(5, 6);
  EXPECT_THROW((void)matmul(a, b), error);
}

TEST(Gemm, EmptyResultIsNoop) {
  const Matrix a(0, 4);
  const Matrix b(4, 3);
  const Matrix c = matmul(a, b);
  EXPECT_EQ(c.rows(), 0);
  EXPECT_EQ(c.cols(), 3);
}

TEST(Gram, MatchesTransposeProduct) {
  for (index_t rows : {1, 7, 64, 333}) {
    for (index_t cols : {1, 5, 40}) {
      const Matrix a = test::random_matrix(rows, cols, 11 + rows);
      const Matrix s = gram(a);
      const Matrix want = matmul(a, a, Trans::kYes, Trans::kNo);
      test::expect_matrix_near(s, want, 1e-10 * static_cast<double>(rows),
                               "gram");
      // Symmetry is exact by construction.
      for (index_t i = 0; i < cols; ++i)
        for (index_t j = 0; j < cols; ++j)
          EXPECT_DOUBLE_EQ(s(i, j), s(j, i));
    }
  }
}

}  // namespace
}  // namespace parpp::la
