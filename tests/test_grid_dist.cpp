#include <gtest/gtest.h>

#include <set>

#include "parpp/dist/dist_tensor.hpp"
#include "parpp/dist/factor_dist.hpp"
#include "parpp/mpsim/runtime.hpp"
#include "test_util.hpp"

namespace parpp {
namespace {

TEST(ProcessorGrid, CoordsRoundTrip) {
  mpsim::run(12, [](mpsim::Comm& comm) {
    mpsim::ProcessorGrid grid(comm, {3, 2, 2});
    const auto coords = grid.coords();
    EXPECT_EQ(grid.rank_of(coords), comm.rank());
    for (int r = 0; r < 12; ++r)
      EXPECT_EQ(grid.rank_of(grid.coords_of(r)), r);
  });
}

TEST(ProcessorGrid, SliceCommsGroupByCoordinate) {
  mpsim::run(8, [](mpsim::Comm& comm) {
    mpsim::ProcessorGrid grid(comm, {2, 2, 2});
    for (int mode = 0; mode < 3; ++mode) {
      EXPECT_EQ(grid.slice_comm(mode).size(), 4);
      EXPECT_EQ(grid.slice_size(mode), 4);
      // All members share my coordinate on `mode`: verified via a sum of
      // coordinates — every member contributes the same value.
      double v = static_cast<double>(grid.coord(mode));
      grid.slice_comm(mode).allreduce_sum(&v, 1, PARPP_COMM_TAG("t-allreduce"));
      EXPECT_DOUBLE_EQ(v, 4.0 * grid.coord(mode));
    }
  });
}

TEST(ProcessorGrid, VolumeMismatchThrows) {
  EXPECT_THROW(mpsim::run(4,
                          [](mpsim::Comm& comm) {
                            mpsim::ProcessorGrid grid(comm, {3, 2});
                          }),
               error);
}

TEST(ProcessorGrid, BalancedDims) {
  const auto d1 = mpsim::ProcessorGrid::balanced_dims(8, 3);
  EXPECT_EQ(d1, (std::vector<int>{2, 2, 2}));
  const auto d2 = mpsim::ProcessorGrid::balanced_dims(12, 2);
  EXPECT_EQ(d2[0] * d2[1], 12);
  const auto d3 = mpsim::ProcessorGrid::balanced_dims(7, 3);
  EXPECT_EQ(d3[0] * d3[1] * d3[2], 7);
  const auto d4 = mpsim::ProcessorGrid::balanced_dims(1, 4);
  EXPECT_EQ(d4, (std::vector<int>{1, 1, 1, 1}));
}

TEST(BlockDist, PaddedExtentsDivideEvenly) {
  mpsim::run(8, [](mpsim::Comm& comm) {
    mpsim::ProcessorGrid grid(comm, {2, 2, 2});
    dist::BlockDist dist(grid, {10, 7, 16});
    for (int m = 0; m < 3; ++m) {
      EXPECT_GE(dist.local_extent(m) * grid.dim(m),
                dist.global_shape()[static_cast<std::size_t>(m)]);
      EXPECT_EQ(dist.local_extent(m) % grid.slice_size(m), 0);
      EXPECT_EQ(dist.rows_q(m) * grid.slice_size(m), dist.local_extent(m));
    }
  });
}

TEST(BlockDist, LocalBlocksTileTheTensor) {
  // Sum of squared norms of all local blocks == squared norm of the global
  // tensor (padding contributes zero).
  const auto global = test::random_tensor({9, 6, 10}, 701);
  std::vector<double> sq(8, 0.0);
  mpsim::run(8, [&](mpsim::Comm& comm) {
    mpsim::ProcessorGrid grid(comm, {2, 2, 2});
    dist::BlockDist dist(grid, global.shape());
    const auto local = dist::extract_local_block(global, dist, grid.coords());
    sq[static_cast<std::size_t>(comm.rank())] = local.squared_norm();
  });
  double total = 0.0;
  for (double v : sq) total += v;
  EXPECT_NEAR(total, global.squared_norm(), 1e-9);
}

TEST(BlockDist, BlockContentsMatchGlobal) {
  const auto global = test::random_tensor({4, 6}, 702);
  mpsim::run(4, [&](mpsim::Comm& comm) {
    mpsim::ProcessorGrid grid(comm, {2, 2});
    dist::BlockDist dist(grid, global.shape());
    const auto local = dist::extract_local_block(global, dist, grid.coords());
    for (index_t i = 0; i < dist.local_extent(0); ++i) {
      for (index_t j = 0; j < dist.local_extent(1); ++j) {
        const index_t gi = dist.slab_offset(0, grid.coord(0)) + i;
        const index_t gj = dist.slab_offset(1, grid.coord(1)) + j;
        const std::array<index_t, 2> lidx{i, j};
        if (gi < 4 && gj < 6) {
          const std::array<index_t, 2> gidx{gi, gj};
          EXPECT_DOUBLE_EQ(local.at(lidx), global.at(gidx));
        } else {
          EXPECT_DOUBLE_EQ(local.at(lidx), 0.0);
        }
      }
    }
  });
}

TEST(FactorDist, QRowsPartitionGlobalRows) {
  mpsim::run(8, [](mpsim::Comm& comm) {
    mpsim::ProcessorGrid grid(comm, {2, 2, 2});
    dist::BlockDist dist(grid, {11, 8, 6});
    dist::FactorDist fd(grid, dist, 3);
    for (int mode = 0; mode < 3; ++mode) {
      // Collect global row indices owned across ranks; they must cover
      // 0..s-1 exactly once (padding rows report -1).
      std::vector<double> mine;
      for (index_t r = 0; r < dist.rows_q(mode); ++r)
        mine.push_back(static_cast<double>(fd.q_row_global(mode, r)));
      std::vector<double> all(mine.size() * 8);
      comm.allgather(mine.data(), static_cast<index_t>(mine.size()),
                     all.data(), PARPP_COMM_TAG("t-allgather"));
      if (comm.rank() == 0) {
        std::multiset<long> owned;
        for (double v : all)
          if (v >= 0) owned.insert(static_cast<long>(v));
        const long s = dist.global_shape()[static_cast<std::size_t>(mode)];
        EXPECT_EQ(static_cast<long>(owned.size()), s);
        for (long g = 0; g < s; ++g) EXPECT_EQ(owned.count(g), 1u) << g;
      }
    }
  });
}

TEST(FactorDist, GatherSliceMatchesGlobalRows) {
  const auto global_a = test::random_matrix(10, 3, 703);
  mpsim::run(4, [&](mpsim::Comm& comm) {
    mpsim::ProcessorGrid grid(comm, {2, 2});
    dist::BlockDist dist(grid, {10, 8});
    dist::FactorDist fd(grid, dist, 3);
    fd.set_q_from_global(0, global_a);
    fd.gather_slice(0);
    const auto& slice = fd.slice(0);
    const index_t slab = dist.slab_offset(0, grid.coord(0));
    for (index_t r = 0; r < slice.rows(); ++r) {
      const index_t g = slab + r;
      for (index_t c = 0; c < 3; ++c) {
        const double want = g < 10 ? global_a(g, c) : 0.0;
        EXPECT_DOUBLE_EQ(slice(r, c), want) << "row " << r;
      }
    }
  });
}

TEST(FactorDist, AllGatherGlobalRoundTrips) {
  const auto global_a = test::random_matrix(13, 4, 704);
  mpsim::run(8, [&](mpsim::Comm& comm) {
    mpsim::ProcessorGrid grid(comm, {2, 2, 2});
    dist::BlockDist dist(grid, {13, 6, 6});
    dist::FactorDist fd(grid, dist, 4);
    fd.set_q_from_global(0, global_a);
    const la::Matrix back = fd.allgather_global(0);
    EXPECT_DOUBLE_EQ(back.max_abs_diff(global_a), 0.0);
  });
}

TEST(FactorDist, ReduceScatterSumsSliceContributions) {
  mpsim::run(4, [](mpsim::Comm& comm) {
    mpsim::ProcessorGrid grid(comm, {2, 2});
    dist::BlockDist dist(grid, {8, 8});
    dist::FactorDist fd(grid, dist, 2);
    // Every rank contributes a slice of ones; mode-0 slice group has 2
    // members, so summed Q rows are all 2.
    la::Matrix contribution(dist.local_extent(0), 2);
    contribution.fill(1.0);
    const la::Matrix q = fd.reduce_scatter(0, contribution);
    ASSERT_EQ(q.rows(), dist.rows_q(0));
    for (index_t i = 0; i < q.rows(); ++i)
      for (index_t j = 0; j < 2; ++j) EXPECT_DOUBLE_EQ(q(i, j), 2.0);
  });
}

}  // namespace
}  // namespace parpp
