#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "parpp/la/cholesky.hpp"
#include "parpp/la/eig_jacobi.hpp"
#include "parpp/la/gemm.hpp"
#include "parpp/la/spd_solve.hpp"
#include "test_util.hpp"

namespace parpp::la {
namespace {

/// Well-conditioned SPD matrix: G = B^T B + n I.
Matrix random_spd(index_t n, std::uint64_t seed, double shift = 1.0) {
  const Matrix b = test::random_matrix(n, n, seed);
  Matrix g = matmul(b, b, Trans::kYes, Trans::kNo);
  for (index_t i = 0; i < n; ++i) g(i, i) += shift * static_cast<double>(n);
  return g;
}

TEST(Cholesky, FactorReconstructs) {
  for (index_t n : {1, 2, 5, 17, 60}) {
    const Matrix g = random_spd(n, 21 + n);
    Matrix l = g;
    ASSERT_TRUE(cholesky_lower(l));
    const Matrix llt = matmul(l, l, Trans::kNo, Trans::kYes);
    test::expect_matrix_near(llt, g, 1e-9 * static_cast<double>(n + 1),
                             "L L^T == G");
  }
}

TEST(Cholesky, RejectsIndefinite) {
  Matrix g(2, 2, {1.0, 2.0, 2.0, 1.0});  // eigenvalues 3, -1
  EXPECT_FALSE(cholesky_lower(g));
}

TEST(Cholesky, SolveMatchesResidual) {
  const index_t n = 24, nrhs = 7;
  const Matrix g = random_spd(n, 31);
  Matrix l = g;
  ASSERT_TRUE(cholesky_lower(l));
  const Matrix b = test::random_matrix(n, nrhs, 32);
  const Matrix x = cholesky_solve(l, b);
  const Matrix gx = matmul(g, x);
  test::expect_matrix_near(gx, b, 1e-9, "G X == B");
}

TEST(EigJacobi, DiagonalMatrix) {
  Matrix d(3, 3, {3.0, 0.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0, 2.0});
  const auto eig = eig_symmetric(d);
  EXPECT_NEAR(eig.eigenvalues[0], 1.0, 1e-12);
  EXPECT_NEAR(eig.eigenvalues[1], 2.0, 1e-12);
  EXPECT_NEAR(eig.eigenvalues[2], 3.0, 1e-12);
}

TEST(EigJacobi, ReconstructsMatrix) {
  for (index_t n : {2, 6, 20, 50}) {
    Matrix a = test::random_matrix(n, n, 41 + n);
    // Symmetrize.
    for (index_t i = 0; i < n; ++i)
      for (index_t j = 0; j < i; ++j) a(i, j) = a(j, i);
    const auto eig = eig_symmetric(a);
    // V D V^T == A
    Matrix vd = eig.eigenvectors;
    for (index_t j = 0; j < n; ++j)
      for (index_t i = 0; i < n; ++i)
        vd(i, j) *= eig.eigenvalues[static_cast<std::size_t>(j)];
    const Matrix rec = matmul(vd, eig.eigenvectors, Trans::kNo, Trans::kYes);
    test::expect_matrix_near(rec, a, 1e-9 * static_cast<double>(n),
                             "V D V^T == A");
    // Orthonormal eigenvectors.
    const Matrix vtv =
        matmul(eig.eigenvectors, eig.eigenvectors, Trans::kYes, Trans::kNo);
    test::expect_matrix_near(vtv, identity(n), 1e-10, "V^T V == I");
  }
}

TEST(SolveGram, MatchesDirectSolveOnSpd) {
  const index_t s = 40, r = 12;
  const Matrix g = random_spd(r, 51);
  const Matrix m = test::random_matrix(s, r, 52);
  const Matrix x = solve_gram(g, m);
  // X G == M  (since X = M G^{-1} and G symmetric).
  const Matrix xg = matmul(x, g);
  test::expect_matrix_near(xg, m, 1e-8, "X G == M");
}

TEST(SolveGram, RidgeRecoveryOnSingular) {
  // G singular (rank 1): Cholesky breaks down and the ridge retry takes
  // over. With M in range(G) — the case ALS produces when a rank-deficient
  // Gram comes from duplicated factor columns — the ridge solution still
  // satisfies the normal equations to the relative size of the ridge.
  const index_t r = 6;
  Matrix u(r, 1);
  for (index_t i = 0; i < r; ++i) u(i, 0) = static_cast<double>(i + 1);
  const Matrix g = matmul(u, u, Trans::kNo, Trans::kYes);
  const Matrix z = test::random_matrix(4, r, 61);
  const Matrix m = matmul(z, g);  // M in range(G)
  const SpdStats before = spd_stats();
  const Matrix x = solve_gram(g, m);
  const SpdStats after = spd_stats();
  EXPECT_EQ(after.cholesky_failures, before.cholesky_failures + 1);
  EXPECT_EQ(after.ridge_recoveries, before.ridge_recoveries + 1);
  EXPECT_EQ(after.pinv_fallbacks, before.pinv_fallbacks);
  EXPECT_TRUE(x.all_finite());
  const Matrix xg = matmul(x, g);
  test::expect_matrix_near(xg, m, 1e-8, "X G == M for M in range(G)");
}

TEST(SolveGram, PseudoInverseFallbackOnIndefinite) {
  // Indefinite G defeats Cholesky and every ridge retry (the negative
  // eigenvalue dwarfs the largest ridge), so the eig-based pseudo-inverse
  // is the last resort. Here G is invertible, so G† = G^{-1}: X G == M.
  const Matrix g(2, 2, {1.0, 2.0, 2.0, 1.0});  // eigenvalues 3, -1
  const Matrix m = test::random_matrix(5, 2, 62);
  const SpdStats before = spd_stats();
  const Matrix x = solve_gram(g, m);
  const SpdStats after = spd_stats();
  EXPECT_EQ(after.pinv_fallbacks, before.pinv_fallbacks + 1);
  const Matrix xg = matmul(x, g);
  test::expect_matrix_near(xg, m, 1e-8, "X G == M via pseudo-inverse");
}

TEST(SolveGram, NonFiniteGramReturnsZeros) {
  Matrix g = identity(3);
  g(1, 1) = std::numeric_limits<double>::quiet_NaN();
  const Matrix m = test::random_matrix(4, 3, 63);
  const SpdStats before = spd_stats();
  const Matrix x = solve_gram(g, m);
  const SpdStats after = spd_stats();
  EXPECT_EQ(after.nonfinite_grams, before.nonfinite_grams + 1);
  EXPECT_TRUE(x.all_finite());
  EXPECT_EQ(x.frobenius_norm(), 0.0);
}

TEST(SolveGram, IdentityGramReturnsM) {
  const Matrix g = identity(5);
  const Matrix m = test::random_matrix(9, 5, 71);
  const Matrix x = solve_gram(g, m);
  test::expect_matrix_near(x, m, 1e-12, "X == M for G = I");
}

TEST(SolveGram, ShapeChecks) {
  const Matrix g = identity(4);
  const Matrix m = test::random_matrix(3, 5, 81);
  EXPECT_THROW((void)solve_gram(g, m), error);
}

}  // namespace
}  // namespace parpp::la
