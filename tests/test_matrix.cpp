#include <gtest/gtest.h>

#include <cmath>

#include "parpp/la/matrix.hpp"
#include "test_util.hpp"

namespace parpp::la {
namespace {

TEST(Matrix, ConstructionAndIndexing) {
  Matrix m(3, 4);
  EXPECT_EQ(m.rows(), 3);
  EXPECT_EQ(m.cols(), 4);
  EXPECT_EQ(m.size(), 12);
  m(1, 2) = 5.0;
  EXPECT_DOUBLE_EQ(m(1, 2), 5.0);
  EXPECT_DOUBLE_EQ(m.row(1)[2], 5.0);
}

TEST(Matrix, InitializerList) {
  Matrix m(2, 2, {1.0, 2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(m(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(m(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(m(1, 0), 3.0);
  EXPECT_DOUBLE_EQ(m(1, 1), 4.0);
  EXPECT_THROW(Matrix(2, 2, {1.0}), error);
}

TEST(Matrix, Transposed) {
  Matrix m = test::random_matrix(5, 3, 1);
  Matrix t = m.transposed();
  ASSERT_EQ(t.rows(), 3);
  ASSERT_EQ(t.cols(), 5);
  for (index_t i = 0; i < 5; ++i)
    for (index_t j = 0; j < 3; ++j) EXPECT_DOUBLE_EQ(t(j, i), m(i, j));
}

TEST(Matrix, FrobeniusNorm) {
  Matrix m(2, 2, {3.0, 0.0, 0.0, 4.0});
  EXPECT_DOUBLE_EQ(m.frobenius_norm(), 5.0);
}

TEST(Matrix, DotIsSumOfProducts) {
  Matrix a(2, 2, {1.0, 2.0, 3.0, 4.0});
  Matrix b(2, 2, {5.0, 6.0, 7.0, 8.0});
  EXPECT_DOUBLE_EQ(a.dot(b), 5.0 + 12.0 + 21.0 + 32.0);
}

TEST(Matrix, AxpyAndScale) {
  Matrix a(1, 3, {1.0, 2.0, 3.0});
  Matrix b(1, 3, {10.0, 20.0, 30.0});
  a.axpy(0.5, b);
  EXPECT_DOUBLE_EQ(a(0, 0), 6.0);
  EXPECT_DOUBLE_EQ(a(0, 2), 18.0);
  a.scale(2.0);
  EXPECT_DOUBLE_EQ(a(0, 1), 24.0);
}

TEST(Matrix, HadamardMatchesElementwise) {
  Matrix a = test::random_matrix(4, 4, 2);
  Matrix b = test::random_matrix(4, 4, 3);
  Matrix c = hadamard(a, b);
  for (index_t i = 0; i < 4; ++i)
    for (index_t j = 0; j < 4; ++j)
      EXPECT_DOUBLE_EQ(c(i, j), a(i, j) * b(i, j));
}

TEST(Matrix, HadamardShapeMismatchThrows) {
  Matrix a(2, 3), b(3, 2);
  EXPECT_THROW(a.hadamard_inplace(b), error);
}

TEST(Matrix, Identity) {
  Matrix i = identity(3);
  for (index_t r = 0; r < 3; ++r)
    for (index_t c = 0; c < 3; ++c)
      EXPECT_DOUBLE_EQ(i(r, c), r == c ? 1.0 : 0.0);
}

TEST(Matrix, MaxAbsDiff) {
  Matrix a(1, 2, {1.0, 2.0});
  Matrix b(1, 2, {1.5, 1.0});
  EXPECT_DOUBLE_EQ(a.max_abs_diff(b), 1.0);
}

TEST(Matrix, FillUniformInRange) {
  Matrix m(32, 32);
  Rng rng(4);
  m.fill_uniform(rng);
  double mn = 1.0, mx = 0.0;
  for (index_t i = 0; i < m.rows(); ++i)
    for (index_t j = 0; j < m.cols(); ++j) {
      mn = std::min(mn, m(i, j));
      mx = std::max(mx, m(i, j));
    }
  EXPECT_GE(mn, 0.0);
  EXPECT_LT(mx, 1.0);
  EXPECT_GT(mx - mn, 0.5);  // actually random
}

}  // namespace
}  // namespace parpp::la
