// End-to-end sparse CP-ALS: sparse-vs-densified equivalence through the
// parpp::solve() facade, the no-densification fitness identity, and the
// facade's sparse dispatch rules.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "parpp/core/sparse_engine.hpp"
#include "parpp/data/sparse_synthetic.hpp"
#include "parpp/solver/solver.hpp"
#include "parpp/tensor/csf_tensor.hpp"
#include "test_util.hpp"

namespace parpp {
namespace {

solver::SolverSpec base_spec(solver::Method method, index_t rank,
                             int max_sweeps, double tol) {
  solver::SolverSpec spec;
  spec.method = method;
  spec.rank = rank;
  spec.seed = 7;
  spec.stopping.max_sweeps = max_sweeps;
  spec.stopping.fitness_tol = tol;
  return spec;
}

TEST(SparseSolve, AlsConvergesAndMatchesDensifiedRun) {
  // Exactly-low-rank sparse tensor: both storages run the same sweep from
  // the same init, so the converged fitness must agree to 1e-10 (and both
  // must actually recover the planted decomposition).
  const auto gen = data::make_sparse_lowrank({20, 18, 19}, 5, 0.05, 31);
  const tensor::CsfTensor csf(gen.tensor);
  const tensor::DenseTensor dense = gen.tensor.densify();

  // tol 0 runs the full budget, so both storages saturate at the exactly
  // recoverable solution instead of stopping at a tol-dependent sweep.
  solver::SolverSpec spec = base_spec(solver::Method::kAls, 5, 80, 0.0);
  spec.engine = core::EngineKind::kSparse;
  const solver::SolveReport sparse_report = parpp::solve(csf, spec);

  spec.engine = core::EngineKind::kMsdt;
  const solver::SolveReport dense_report = parpp::solve(dense, spec);

  EXPECT_GT(sparse_report.fitness, 1.0 - 1e-8);
  EXPECT_NEAR(sparse_report.fitness, dense_report.fitness, 1e-10);
  // Same number of factor matrices with the same shapes.
  ASSERT_EQ(sparse_report.factors.size(), dense_report.factors.size());

  // The identity-based fitness never reconstructs the tensor; confirm it
  // agrees with the explicit residual of the returned factors. (Near exact
  // recovery the identity's cancellation floors its accuracy around
  // sqrt(eps) * ||T||, hence the loose absolute tolerance.)
  EXPECT_NEAR(sparse_report.residual,
              test::explicit_residual(dense, sparse_report.factors), 1e-7);
}

TEST(SparseSolve, EarlySweepFitnessTracksDensifiedBitForBit) {
  // Before round-off has a chance to accumulate, each sweep's fitness on
  // the two storages must agree far tighter than the acceptance bar.
  const auto gen = data::make_sparse_lowrank({16, 15, 14}, 4, 0.08, 3);
  const tensor::CsfTensor csf(gen.tensor);
  const tensor::DenseTensor dense = gen.tensor.densify();

  solver::SolverSpec spec = base_spec(solver::Method::kAls, 4, 5, 1e-14);
  spec.engine = core::EngineKind::kSparse;
  const auto sparse_report = parpp::solve(csf, spec);
  spec.engine = core::EngineKind::kNaive;
  const auto dense_report = parpp::solve(dense, spec);

  ASSERT_EQ(sparse_report.history.size(), dense_report.history.size());
  for (std::size_t s = 0; s < sparse_report.history.size(); ++s) {
    EXPECT_NEAR(sparse_report.history[s].fitness,
                dense_report.history[s].fitness, 1e-11)
        << "sweep " << s;
  }
}

TEST(SparseSolve, NncpHalsConvergesOnNonnegativeSparseTensor) {
  // The generator's factors are entrywise >= 0, so NNCP can also recover.
  const auto gen = data::make_sparse_lowrank({17, 16, 15}, 4, 0.05, 91);
  const tensor::CsfTensor csf(gen.tensor);
  const tensor::DenseTensor dense = gen.tensor.densify();

  // Equality leg: a fixed sweep budget (tol 0) keeps the two storages on
  // the same trajectory, where only MTTKRP summation order separates them
  // — a tol-based stop could fire on different sweeps and compare fitness
  // from different iterates.
  solver::SolverSpec spec = base_spec(solver::Method::kNncpHals, 4, 30, 0.0);
  spec.engine = core::EngineKind::kSparse;
  const auto sparse_report = parpp::solve(csf, spec);
  spec.engine = core::EngineKind::kMsdt;
  const auto dense_report = parpp::solve(dense, spec);
  EXPECT_NEAR(sparse_report.fitness, dense_report.fitness, 1e-10);
  for (const auto& f : sparse_report.factors)
    for (index_t i = 0; i < f.rows(); ++i)
      for (index_t j = 0; j < f.cols(); ++j) EXPECT_GE(f(i, j), 0.0);

  // Convergence leg: with a real budget, sparse HALS recovers the planted
  // nonnegative decomposition.
  solver::SolverSpec full = base_spec(solver::Method::kNncpHals, 4, 500, 1e-13);
  full.engine = core::EngineKind::kSparse;
  EXPECT_GT(parpp::solve(csf, full).fitness, 1.0 - 1e-6);
}

TEST(SparseSolve, SteadyStateSweepsNeverDensify) {
  // Allocation/workspace-counter proof that no sweep materializes a dense
  // copy: run the facade on a tensor whose dense form would need ~1.4 MB,
  // observing the thread-default workspace (the only arena a sparse
  // sequential solve can lease tensor-sized scratch from) — it must stay
  // flat across sweeps and far below the dense footprint.
  const auto gen = data::make_sparse_lowrank({56, 56, 56}, 4, 0.01, 5);
  const tensor::CsfTensor csf(gen.tensor);
  const double dense_bytes = 56.0 * 56.0 * 56.0 * sizeof(double);

  auto& ws = util::KernelWorkspace::thread_default();
  ws.trim();
  const std::size_t bytes_before = ws.total_bytes();

  solver::SolverSpec spec = base_spec(solver::Method::kAls, 4, 40, 1e-12);
  spec.engine = core::EngineKind::kSparse;
  std::size_t bytes_after_first_sweep = 0;
  int sweeps_seen = 0;
  spec.observer = [&](const core::SweepRecord&,
                      const std::vector<la::Matrix>&) {
    if (++sweeps_seen == 1) bytes_after_first_sweep = ws.total_bytes();
    // Steady state: the arena stopped growing after the first sweep.
    EXPECT_EQ(ws.total_bytes(), bytes_after_first_sweep);
    return solver::ObserverAction::kContinue;
  };
  const auto report = parpp::solve(csf, spec);

  EXPECT_GE(sweeps_seen, 2);
  EXPECT_GT(report.fitness, 0.9);
  EXPECT_LT(static_cast<double>(ws.total_bytes() - bytes_before),
            dense_bytes / 8);
}

TEST(SparseSolve, FacadeAcceptsAllSparseCellsAndRejectsDenseSparseEngine) {
  const auto gen = data::make_sparse_lowrank({8, 8, 8}, 2, 0.1, 1);
  const tensor::CsfTensor csf(gen.tensor);

  // Since the storage-agnostic parallel layer, PP methods and the
  // simulated-parallel execution run on sparse storage too.
  EXPECT_NO_THROW((void)parpp::solve(
      csf, base_spec(solver::Method::kPp, 2, 10, 1e-6)));
  EXPECT_NO_THROW((void)parpp::solve(
      csf, base_spec(solver::Method::kPpNncp, 2, 10, 1e-6)));
  solver::SolverSpec par = base_spec(solver::Method::kAls, 2, 10, 1e-6);
  par.execution = solver::Execution::simulated_parallel(4);
  EXPECT_NO_THROW((void)parpp::solve(csf, par));

  // A dense tensor still cannot run the sparse engine.
  const tensor::DenseTensor dense = gen.tensor.densify();
  solver::SolverSpec sparse_engine_spec =
      base_spec(solver::Method::kAls, 2, 10, 1e-6);
  sparse_engine_spec.engine = core::EngineKind::kSparse;
  EXPECT_THROW((void)parpp::solve(dense, sparse_engine_spec), parpp::error);
}

TEST(SparseSolve, WarmStartAndObserverComposeWithSparseSource) {
  const auto gen = data::make_sparse_lowrank({14, 13, 12}, 3, 0.08, 8);
  const tensor::CsfTensor csf(gen.tensor);

  solver::SolverSpec spec = base_spec(solver::Method::kAls, 3, 4, 1e-14);
  spec.engine = core::EngineKind::kSparse;
  const auto first = parpp::solve(csf, spec);

  // Resuming from the returned factors must continue improving (or hold)
  // rather than restart from scratch.
  solver::SolverSpec resume = spec;
  resume.initial_factors = first.factors;
  int observed = 0;
  resume.observer = [&](const core::SweepRecord& rec,
                        const std::vector<la::Matrix>&) {
    ++observed;
    EXPECT_GE(rec.fitness, first.fitness - 1e-9);
    return solver::ObserverAction::kContinue;
  };
  const auto second = parpp::solve(csf, resume);
  EXPECT_EQ(observed, second.sweeps);
  EXPECT_GE(second.fitness, first.fitness - 1e-9);
}

TEST(SparseSolve, LegacyCoreOverloadMatchesFacade) {
  const auto gen = data::make_sparse_lowrank({12, 11, 10}, 3, 0.1, 44);
  const tensor::CsfTensor csf(gen.tensor);

  core::CpOptions options;
  options.rank = 3;
  options.max_sweeps = 6;
  options.tol = 1e-14;
  options.seed = 7;
  const core::CpResult direct = core::cp_als(csf, options);

  solver::SolverSpec spec = base_spec(solver::Method::kAls, 3, 6, 1e-14);
  const auto facade = parpp::solve(csf, spec);
  EXPECT_EQ(direct.sweeps, facade.sweeps);
  EXPECT_DOUBLE_EQ(direct.fitness, facade.fitness);
}

}  // namespace
}  // namespace parpp
