// Chaos matrix: every built-in FaultPlan kind against ALS / PP / NNCP on
// dense and sparse storage at 4 simulated ranks. Each cell must terminate
// with a structured status and a non-empty recovery log — no crash, no
// deadlock, no silent wrong answer — and same-seed reruns must produce
// bitwise-identical reports (the fault trigger is a collective count, not a
// clock).
#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <string>
#include <vector>

#include "parpp/data/sparse_synthetic.hpp"
#include "parpp/solver/solver.hpp"
#include "parpp/tensor/csf_tensor.hpp"
#include "test_util.hpp"

namespace parpp {
namespace {

constexpr int kRanks = 4;

const std::vector<solver::Method> kMethods = {
    solver::Method::kAls, solver::Method::kPp, solver::Method::kNncpHals};

[[nodiscard]] const tensor::DenseTensor& dense_input() {
  static const tensor::DenseTensor t =
      test::low_rank_tensor({16, 14, 12}, 4, 21);
  return t;
}

[[nodiscard]] const tensor::CsfTensor& sparse_input() {
  static const tensor::CsfTensor t(
      data::make_sparse_lowrank({16, 14, 12}, 4, 0.2, 22).tensor);
  return t;
}

[[nodiscard]] solver::SolverSpec chaos_spec(solver::Method method,
                                            bool sparse,
                                            mpsim::FaultKind kind) {
  solver::SolverSpec spec;
  spec.method = method;
  spec.rank = 4;
  spec.seed = 5;
  spec.stopping.max_sweeps = 8;
  spec.stopping.fitness_tol = 1e-14;  // keep sweeping; the fault must land
  if (sparse) spec.engine = core::EngineKind::kSparse;
  spec.execution = solver::Execution::simulated_parallel(kRanks);
  spec.execution.comm_timeout_seconds = 0.4;
  spec.execution.fault.kind = kind;
  spec.execution.fault.rank = 1;
  spec.execution.fault.nth = 10;
  spec.execution.fault.delay_seconds = 0.01;
  spec.execution.fault.seed = spec.seed;
  return spec;
}

[[nodiscard]] solver::SolveReport run_cell(solver::Method method, bool sparse,
                                           mpsim::FaultKind kind) {
  const solver::SolverSpec spec = chaos_spec(method, sparse, kind);
  return sparse ? parpp::solve(sparse_input(), spec)
                : parpp::solve(dense_input(), spec);
}

void expect_identical_reports(const solver::SolveReport& a,
                              const solver::SolveReport& b) {
  EXPECT_EQ(a.status, b.status);
  EXPECT_EQ(a.stop_reason, b.stop_reason);
  EXPECT_EQ(a.sweeps, b.sweeps);
  EXPECT_EQ(a.fitness, b.fitness);  // bitwise
  ASSERT_EQ(a.recovery_log.size(), b.recovery_log.size());
  for (std::size_t i = 0; i < a.recovery_log.size(); ++i) {
    EXPECT_EQ(a.recovery_log[i].sweep, b.recovery_log[i].sweep);
    EXPECT_EQ(a.recovery_log[i].what, b.recovery_log[i].what);
  }
}

void run_matrix(mpsim::FaultKind kind,
                const std::function<void(const solver::SolveReport&)>&
                    check_cell) {
  for (const solver::Method method : kMethods) {
    for (const bool sparse : {false, true}) {
      SCOPED_TRACE(std::string(solver::to_string(method)) +
                   (sparse ? " sparse" : " dense"));
      const solver::SolveReport report = run_cell(method, sparse, kind);
      EXPECT_FALSE(report.recovery_log.empty());
      check_cell(report);
      // Determinism: the same seed and plan must reproduce the run exactly.
      expect_identical_reports(report, run_cell(method, sparse, kind));
    }
  }
}

TEST(FaultInjection, DelayIsToleratedAndLogged) {
  run_matrix(mpsim::FaultKind::kDelay, [](const solver::SolveReport& r) {
    EXPECT_EQ(r.status, core::SolveStatus::kRecovered);
    EXPECT_NE(r.stop_reason, solver::StopReason::kFault);
    EXPECT_TRUE(std::isfinite(r.fitness));
    bool logged = false;
    for (const core::RecoveryEvent& e : r.recovery_log)
      logged = logged ||
               e.what.find("communication delay") != std::string::npos;
    EXPECT_TRUE(logged);
  });
}

TEST(FaultInjection, TimeoutAbortsCollectively) {
  run_matrix(mpsim::FaultKind::kTimeout, [](const solver::SolveReport& r) {
    EXPECT_EQ(r.status, core::SolveStatus::kCommAbort);
    EXPECT_EQ(r.stop_reason, solver::StopReason::kFault);
  });
}

TEST(FaultInjection, RankAbortAbortsCollectively) {
  run_matrix(mpsim::FaultKind::kRankAbort, [](const solver::SolveReport& r) {
    EXPECT_EQ(r.status, core::SolveStatus::kCommAbort);
    EXPECT_EQ(r.stop_reason, solver::StopReason::kFault);
    bool names_rank = false;
    for (const core::RecoveryEvent& e : r.recovery_log)
      names_rank =
          names_rank || e.what.find("rank(s)") != std::string::npos;
    EXPECT_TRUE(names_rank);
  });
}

TEST(FaultInjection, CorruptionIsDetectedNeverSilent) {
  run_matrix(mpsim::FaultKind::kCorruption,
             [](const solver::SolveReport& r) {
    // The injected NaN must be noticed: either the rollback recovered the
    // sweep, or the run aborted on the last good state. A clean kOk would
    // mean a silently wrong answer.
    EXPECT_NE(r.status, core::SolveStatus::kOk);
    EXPECT_NE(r.status, core::SolveStatus::kCommAbort);
    EXPECT_TRUE(std::isfinite(r.fitness));
    bool detected = false;
    for (const core::RecoveryEvent& e : r.recovery_log)
      detected = detected ||
                 e.what.find("corrupted collective payload") !=
                     std::string::npos ||
                 e.what.find("non-finite") != std::string::npos;
    EXPECT_TRUE(detected);
  });
}

}  // namespace
}  // namespace parpp
