// Fused MTTKRP vs the element-wise oracle, plus workspace discipline.
#include <gtest/gtest.h>

#include <vector>

#include "parpp/core/cp_als.hpp"
#include "parpp/core/dim_tree.hpp"
#include "parpp/core/msdt.hpp"
#include "parpp/tensor/mttkrp_fused.hpp"
#include "parpp/tensor/mttkrp_naive.hpp"
#include "parpp/util/workspace.hpp"
#include "test_util.hpp"

namespace parpp::tensor {
namespace {

void check_all_modes(const std::vector<index_t>& shape, index_t rank,
                     std::uint64_t seed) {
  const DenseTensor t = test::random_tensor(shape, seed);
  const auto factors = test::random_factors(shape, rank, seed + 1);
  for (int n = 0; n < t.order(); ++n) {
    SCOPED_TRACE(::testing::Message() << "mode " << n << " rank " << rank);
    const la::Matrix oracle = mttkrp_elementwise(t, factors, n);
    const la::Matrix fused = mttkrp_fused(t, factors, n);
    test::expect_matrix_near(oracle, fused, 1e-10, "fused vs elementwise");
  }
}

TEST(MttkrpFused, Order3AllModesAllRanks) {
  for (index_t rank : {1, 8, 33}) check_all_modes({6, 5, 7}, rank, 101);
}

TEST(MttkrpFused, Order4AllModesAllRanks) {
  for (index_t rank : {1, 8, 33}) check_all_modes({4, 3, 5, 4}, rank, 202);
}

TEST(MttkrpFused, Order5AllModesAllRanks) {
  for (index_t rank : {1, 8, 33}) check_all_modes({3, 4, 2, 3, 4}, rank, 303);
}

TEST(MttkrpFused, PanelBoundaryShapes) {
  // right = 35 with rank 33 forces multiple ragged KRP panels once the
  // panel budget shrinks; also covers a long skinny interior mode.
  check_all_modes({2, 9, 5, 7}, 33, 404);
  check_all_modes({1, 17, 1, 13}, 8, 505);
}

TEST(MttkrpFused, ExtentOneModes) {
  check_all_modes({1, 4, 3}, 8, 606);
  check_all_modes({4, 1, 3}, 8, 707);
  check_all_modes({4, 3, 1}, 8, 808);
  check_all_modes({1, 1, 1}, 3, 909);
}

TEST(MttkrpFused, EmptyTensor) {
  const DenseTensor t({3, 0, 4});
  const auto factors = test::random_factors({3, 0, 4}, 5, 111);
  for (int n = 0; n < 3; ++n) {
    const la::Matrix m = mttkrp_fused(t, factors, n);
    EXPECT_EQ(m.rows(), t.extent(n));
    EXPECT_EQ(m.cols(), 5);
    for (index_t i = 0; i < m.rows(); ++i)
      for (index_t j = 0; j < m.cols(); ++j) EXPECT_EQ(m(i, j), 0.0);
  }
}

TEST(MttkrpFused, AgreesWithKrpReference) {
  const DenseTensor t = test::random_tensor({7, 6, 5, 4}, 121);
  const auto factors = test::random_factors({7, 6, 5, 4}, 12, 122);
  for (int n = 0; n < 4; ++n) {
    test::expect_matrix_near(mttkrp_krp(t, factors, n),
                             mttkrp_fused(t, factors, n), 1e-10,
                             "fused vs krp");
  }
}

TEST(MttkrpFused, IntoReusesOutputShape) {
  const DenseTensor t = test::random_tensor({5, 6, 7}, 131);
  const auto factors = test::random_factors({5, 6, 7}, 4, 132);
  la::Matrix out;
  util::KernelWorkspace ws;
  mttkrp_into(t, factors, 1, out, nullptr, &ws);
  const double* buf = out.data();
  const std::size_t bytes = ws.total_bytes();
  mttkrp_into(t, factors, 1, out, nullptr, &ws);
  EXPECT_EQ(out.data(), buf) << "matching-shape output was reallocated";
  EXPECT_EQ(ws.total_bytes(), bytes) << "second identical call grew the arena";
  test::expect_matrix_near(mttkrp_elementwise(t, factors, 1), out, 1e-10,
                           "reused-output result");
}

TEST(MttkrpFused, SecondSweepZeroWorkspaceGrowth) {
  // A full ALS-style sweep over every mode, twice: the arena may grow while
  // the first sweep discovers its footprint, then must stay flat.
  const DenseTensor t = test::random_tensor({6, 5, 4, 3}, 141);
  const auto factors = test::random_factors({6, 5, 4, 3}, 9, 142);
  util::KernelWorkspace ws;
  std::vector<la::Matrix> out(4);
  for (int n = 0; n < 4; ++n)
    mttkrp_into(t, factors, n, out[static_cast<std::size_t>(n)], nullptr, &ws);
  const std::size_t bytes = ws.total_bytes();
  const std::size_t allocs = ws.allocation_count();
  for (int n = 0; n < 4; ++n)
    mttkrp_into(t, factors, n, out[static_cast<std::size_t>(n)], nullptr, &ws);
  EXPECT_EQ(ws.total_bytes(), bytes) << "second sweep grew the workspace";
  EXPECT_EQ(ws.allocation_count(), allocs)
      << "second sweep touched the allocator";
  EXPECT_EQ(ws.leased_buffers(), 0u) << "leases leaked out of the kernels";
}

TEST(MttkrpFused, TreeEngineSteadyStateZeroWorkspaceGrowth) {
  // DT and MSDT cache nodes draw from the engine arena; once the first
  // sweeps have sized it, rebuilds after factor updates must recycle
  // buffers instead of allocating.
  const DenseTensor t = test::random_tensor({5, 4, 6, 3}, 151);
  for (const core::EngineKind kind :
       {core::EngineKind::kDt, core::EngineKind::kMsdt}) {
    auto factors = test::random_factors({5, 4, 6, 3}, 7, 152);
    auto engine = core::make_engine(kind, t, factors);
    auto* tree = dynamic_cast<core::TreeEngineBase*>(engine.get());
    ASSERT_NE(tree, nullptr);
    Rng rng(153);
    auto sweep = [&] {
      for (int mode = 0; mode < 4; ++mode) {
        (void)engine->mttkrp(mode);
        factors[static_cast<std::size_t>(mode)].fill_uniform(rng);
        engine->notify_update(mode);
      }
    };
    // Warm-up: early sweeps see different cache-hit patterns than steady
    // state (version stamps invalidate different node chains), so peak
    // concurrent-lease demand is discovered over the first few sweeps.
    for (int s = 0; s < 3; ++s) sweep();
    const std::size_t bytes = tree->workspace_bytes();
    const std::size_t allocs = tree->workspace_allocations();
    for (int s = 0; s < 4; ++s) sweep();
    EXPECT_EQ(tree->workspace_bytes(), bytes)
        << core::engine_kind_name(kind) << ": steady-state sweep grew arena";
    EXPECT_EQ(tree->workspace_allocations(), allocs)
        << core::engine_kind_name(kind) << ": steady-state sweep allocated";
  }
}

TEST(KernelWorkspace, ReusesByCapacityAndTracksStats) {
  util::KernelWorkspace ws;
  EXPECT_EQ(ws.total_bytes(), 0u);
  double* p0 = nullptr;
  {
    auto lease = ws.lease(100);
    ASSERT_TRUE(lease.engaged());
    EXPECT_GE(lease.capacity(), 100);
    p0 = lease.data();
    EXPECT_EQ(ws.leased_buffers(), 1u);
  }
  EXPECT_EQ(ws.leased_buffers(), 0u);
  {
    auto lease = ws.lease(64);  // smaller fits in the recycled buffer
    EXPECT_EQ(lease.data(), p0);
    EXPECT_EQ(ws.allocation_count(), 1u);
  }
  {
    auto a = ws.lease(100);
    auto b = ws.lease(100);  // first is leased out: must allocate
    EXPECT_NE(a.data(), b.data());
    EXPECT_EQ(ws.allocation_count(), 2u);
  }
  EXPECT_EQ(ws.allocation_count(), 2u);
  const auto bytes = ws.total_bytes();
  { auto c = ws.lease(50); }  // reuse, no growth
  EXPECT_EQ(ws.total_bytes(), bytes);
  ws.trim();
  EXPECT_EQ(ws.total_bytes(), 0u);
}

TEST(KernelWorkspace, LeaseSurvivesWorkspaceDestruction) {
  util::KernelWorkspace::Lease lease;
  {
    util::KernelWorkspace ws;
    lease = ws.lease(32);
    lease.data()[0] = 1.0;
  }
  // Releasing after the workspace is gone must be safe (shared pool).
  EXPECT_EQ(lease.data()[0], 1.0);
  lease.release();
  EXPECT_FALSE(lease.engaged());
}

TEST(KernelWorkspace, AlignedAndZeroSized) {
  util::KernelWorkspace ws;
  auto lease = ws.lease(7);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(lease.data()) % 64, 0u);
  auto empty = ws.lease(0);
  EXPECT_FALSE(empty.engaged());
}

}  // namespace
}  // namespace parpp::tensor
