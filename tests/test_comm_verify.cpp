// Collective-matching verifier tests (mpsim/verify.hpp).
//
// Each scenario drives ranks into a deliberately mismatched rendezvous and
// asserts the run aborts *deterministically* — a CommFailure naming every
// rank's op kind, payload count, and call-site tag — rather than deadlocking
// or corrupting staging buffers. These are the executable contract a real
// MPI backend must inherit: when the simulator says two ranks disagreed at a
// rendezvous, the same program would deadlock or corrupt under MPI.

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "parpp/mpsim/runtime.hpp"

namespace parpp::mpsim {
namespace {

/// Runs `body` expecting the verifier to abort it, and returns the failure
/// message for content checks. Fails the test if no CommFailure surfaces.
std::string expect_mismatch(int nprocs,
                            const std::function<void(Comm&)>& body,
                            const RunOptions& options = {}) {
  try {
    run(nprocs, body, options);
  } catch (const CommFailure& e) {
    return e.what();
  }
  ADD_FAILURE() << "expected the verifier to abort the run";
  return {};
}

TEST(CommVerify, MismatchedKindAbortsWithPerRankCallSites) {
  const std::string msg = expect_mismatch(2, [](Comm& comm) {
    double v = 1.0;
    if (comm.rank() == 0) {
      comm.allreduce_sum(&v, 1, PARPP_COMM_TAG("kind-a"));
    } else {
      comm.bcast(&v, 1, 0, PARPP_COMM_TAG("kind-b"));
    }
  });
  EXPECT_NE(msg.find("collective mismatch"), std::string::npos) << msg;
  EXPECT_NE(msg.find("rank(s) 0"), std::string::npos) << msg;
  EXPECT_NE(msg.find("rank(s) 1"), std::string::npos) << msg;
  EXPECT_NE(msg.find("allreduce_sum"), std::string::npos) << msg;
  EXPECT_NE(msg.find("bcast"), std::string::npos) << msg;
  EXPECT_NE(msg.find("'kind-a'"), std::string::npos) << msg;
  EXPECT_NE(msg.find("'kind-b'"), std::string::npos) << msg;
  // Call sites point at this file.
  EXPECT_NE(msg.find("test_comm_verify.cpp"), std::string::npos) << msg;
}

TEST(CommVerify, MismatchedCountAbortsBeforeAnyCopy) {
  // Rank 1 claims a larger payload; without the verifier the peers would
  // read past rank 1's published buffer. The count check runs before the
  // copy window opens, so the run must abort instead.
  const std::string msg = expect_mismatch(4, [](Comm& comm) {
    std::vector<double> v(comm.rank() == 1 ? 8 : 4, 1.0);
    comm.allreduce_sum(v.data(), static_cast<index_t>(v.size()),
                       PARPP_COMM_TAG("count-check"));
  });
  EXPECT_NE(msg.find("count=4"), std::string::npos) << msg;
  EXPECT_NE(msg.find("count=8"), std::string::npos) << msg;
  EXPECT_NE(msg.find("rank(s) 0,2,3"), std::string::npos) << msg;
  EXPECT_NE(msg.find("rank(s) 1"), std::string::npos) << msg;
}

TEST(CommVerify, MismatchedOrderingReportsBothCallSites) {
  // Both ranks run the same two collectives but in opposite program order;
  // the first rendezvous already disagrees on the tag and aborts.
  const std::string msg = expect_mismatch(2, [](Comm& comm) {
    double a = 1.0;
    double b = 2.0;
    if (comm.rank() == 0) {
      comm.allreduce_sum(&a, 1, PARPP_COMM_TAG("order-first"));
      comm.allreduce_sum(&b, 1, PARPP_COMM_TAG("order-second"));
    } else {
      comm.allreduce_sum(&b, 1, PARPP_COMM_TAG("order-second"));
      comm.allreduce_sum(&a, 1, PARPP_COMM_TAG("order-first"));
    }
  });
  EXPECT_NE(msg.find("'order-first'"), std::string::npos) << msg;
  EXPECT_NE(msg.find("'order-second'"), std::string::npos) << msg;
}

TEST(CommVerify, MismatchedRootDetected) {
  const std::string msg = expect_mismatch(2, [](Comm& comm) {
    double v = static_cast<double>(comm.rank());
    comm.bcast(&v, 1, comm.rank(), PARPP_COMM_TAG("root-check"));
  });
  EXPECT_NE(msg.find("root=0"), std::string::npos) << msg;
  EXPECT_NE(msg.find("root=1"), std::string::npos) << msg;
}

TEST(CommVerify, BarrierAgainstCollectiveDetected) {
  // The historic deadlock shape: one rank at a barrier while peers sit in a
  // data collective. Under verification this is a deterministic abort.
  const std::string msg = expect_mismatch(3, [](Comm& comm) {
    if (comm.rank() == 2) {
      comm.barrier(PARPP_COMM_TAG("stray-barrier"));
    } else {
      double v = 1.0;
      comm.allreduce_sum(&v, 1, PARPP_COMM_TAG("real-work"));
    }
  });
  EXPECT_NE(msg.find("barrier"), std::string::npos) << msg;
  EXPECT_NE(msg.find("'stray-barrier'"), std::string::npos) << msg;
  EXPECT_NE(msg.find("rank(s) 2"), std::string::npos) << msg;
}

TEST(CommVerify, SplitChildrenInheritVerification) {
  const std::string msg = expect_mismatch(4, [](Comm& comm) {
    Comm sub = comm.split(comm.rank() / 2, comm.rank(),
                          PARPP_COMM_TAG("verify-split"));
    double v = 1.0;
    // Within the {2,3} child, the two members disagree.
    if (comm.rank() == 3) {
      sub.barrier(PARPP_COMM_TAG("child-barrier"));
    } else {
      sub.allreduce_sum(&v, 1, PARPP_COMM_TAG("child-allreduce"));
    }
  });
  EXPECT_NE(msg.find("'child-barrier'"), std::string::npos) << msg;
  EXPECT_NE(msg.find("'child-allreduce'"), std::string::npos) << msg;
}

TEST(CommVerify, MatchedProgramsRunUnchanged) {
  // The verifier must be invisible to a correct program: same results, and
  // a long mixed sequence of matched collectives completes without noise.
  const int p = 4;
  std::vector<double> sums(static_cast<std::size_t>(p), 0.0);
  run(p, [&](Comm& comm) {
    for (int iter = 0; iter < 50; ++iter) {
      double v = 1.0;
      comm.allreduce_sum(&v, 1, PARPP_COMM_TAG("loop-allreduce"));
      comm.barrier(PARPP_COMM_TAG("loop-barrier"));
      sums[static_cast<std::size_t>(comm.rank())] += v;
    }
  });
  for (double s : sums) EXPECT_DOUBLE_EQ(s, 50.0 * p);
}

TEST(CommVerify, DisabledVerifierSkipsChecks) {
  // With verification off, matched programs still work (the fingerprint
  // write and cross-check are skipped entirely).
  RunOptions ropt;
  ropt.verify_collectives = false;
  std::vector<double> out(2, 0.0);
  run(
      2,
      [&](Comm& comm) {
        double v = 1.0;
        comm.allreduce_sum(&v, 1, PARPP_COMM_TAG("off-allreduce"));
        out[static_cast<std::size_t>(comm.rank())] = v;
      },
      ropt);
  EXPECT_DOUBLE_EQ(out[0], 2.0);
  EXPECT_DOUBLE_EQ(out[1], 2.0);
}

TEST(CommVerify, CorruptedPayloadIsNotAMismatch) {
  // FaultPlan corruption perturbs payload words, never fingerprints: a
  // chaos run with matched collectives must NOT be reported as a matching
  // violation. The NaN propagates through the sum — a data fault, visible
  // to the numerical guardrails, invisible to the matching verifier.
  RunOptions ropt;
  ropt.fault.kind = FaultKind::kCorruption;
  ropt.fault.rank = 1;
  ropt.fault.nth = 2;
  ropt.fault.seed = 7;
  const int p = 4;
  std::vector<int> corrupted(static_cast<std::size_t>(p), 0);
  run(
      p,
      [&](Comm& comm) {
        std::vector<double> v(16, 1.0);
        for (int iter = 0; iter < 4; ++iter) {
          comm.allreduce_sum(v.data(), static_cast<index_t>(v.size()),
                             PARPP_COMM_TAG("chaos-allreduce"));
          comm.barrier(PARPP_COMM_TAG("chaos-barrier"));
        }
        for (double x : v)
          if (!(x == x))  // NaN check without <cmath>
            corrupted[static_cast<std::size_t>(comm.rank())] = 1;
      },
      ropt);
  // Every rank saw the injected NaN (allreduce replicates it), and nobody
  // threw: the run above returning at all is the real assertion.
  for (int c : corrupted) EXPECT_EQ(c, 1);
}

TEST(CommVerify, MismatchUnderChaosStillNamesTheRealDivergence) {
  // Chaos and a genuine matching bug together: the verifier must still
  // attribute the abort to the mismatched rendezvous, not to the fault.
  RunOptions ropt;
  ropt.fault.kind = FaultKind::kDelay;
  ropt.fault.rank = 0;
  ropt.fault.nth = 1;
  ropt.fault.delay_seconds = 0.01;
  const std::string msg = expect_mismatch(
      2,
      [](Comm& comm) {
        double v = 1.0;
        comm.allreduce_sum(&v, 1, PARPP_COMM_TAG("pre-chaos"));
        if (comm.rank() == 0) {
          comm.barrier(PARPP_COMM_TAG("divergent-barrier"));
        } else {
          comm.allreduce_sum(&v, 1, PARPP_COMM_TAG("divergent-allreduce"));
        }
      },
      ropt);
  EXPECT_NE(msg.find("'divergent-barrier'"), std::string::npos) << msg;
  EXPECT_NE(msg.find("'divergent-allreduce'"), std::string::npos) << msg;
}

TEST(CommVerify, EnvOverrideDisables) {
  // PARPP_VERIFY_COLLECTIVES=0 wins over RunOptions. Probe with a
  // payload-free divergence (two barriers with different call sites): under
  // verification it is a mismatch abort; with the env override the phased
  // barrier happily pairs the two arrivals and the run completes. (A
  // payload-carrying mismatch would be undefined behaviour with the
  // verifier off — that is precisely why it defaults to on.)
  const auto tag_divergent_barriers = [](Comm& comm) {
    if (comm.rank() == 0) {
      comm.barrier(PARPP_COMM_TAG("env-site-a"));
    } else {
      comm.barrier(PARPP_COMM_TAG("env-site-b"));
    }
  };
  ::setenv("PARPP_VERIFY_COLLECTIVES", "0", 1);
  EXPECT_NO_THROW(run(2, tag_divergent_barriers));
  ::unsetenv("PARPP_VERIFY_COLLECTIVES");
  const std::string msg = expect_mismatch(2, tag_divergent_barriers);
  EXPECT_NE(msg.find("'env-site-a'"), std::string::npos) << msg;
  EXPECT_NE(msg.find("'env-site-b'"), std::string::npos) << msg;
}

}  // namespace
}  // namespace parpp::mpsim
