#include <gtest/gtest.h>

#include <array>
#include <cmath>

#include "parpp/tensor/dense_tensor.hpp"
#include "test_util.hpp"

namespace parpp::tensor {
namespace {

TEST(DenseTensor, ShapeAndStrides) {
  DenseTensor t({2, 3, 4});
  EXPECT_EQ(t.order(), 3);
  EXPECT_EQ(t.size(), 24);
  EXPECT_EQ(t.extent(0), 2);
  EXPECT_EQ(t.extent(2), 4);
  const std::vector<index_t> want{12, 4, 1};
  EXPECT_EQ(t.strides(), want);
}

TEST(DenseTensor, LinearizeRowMajor) {
  DenseTensor t({2, 3, 4});
  const std::array<index_t, 3> idx{1, 2, 3};
  EXPECT_EQ(t.linearize(idx), 12 + 8 + 3);
}

TEST(DenseTensor, AtAccessesElements) {
  DenseTensor t({2, 2});
  const std::array<index_t, 2> idx{1, 0};
  t.at(idx) = 7.5;
  EXPECT_DOUBLE_EQ(t[2], 7.5);
}

TEST(DenseTensor, NextIndexOdometer) {
  const std::vector<index_t> shape{2, 3};
  std::vector<index_t> idx{0, 0};
  int count = 1;
  while (next_index(shape, idx)) ++count;
  EXPECT_EQ(count, 6);
  EXPECT_EQ(idx[0], 0);
  EXPECT_EQ(idx[1], 0);
}

TEST(DenseTensor, NormMatchesDefinition) {
  DenseTensor t({3, 3});
  t.fill(2.0);
  EXPECT_DOUBLE_EQ(t.squared_norm(), 36.0);
  EXPECT_DOUBLE_EQ(t.frobenius_norm(), 6.0);
}

TEST(DenseTensor, AxpyAndMaxAbsDiff) {
  DenseTensor a({4}), b({4});
  a.fill(1.0);
  b.fill(3.0);
  a.axpy(2.0, b);
  EXPECT_DOUBLE_EQ(a[0], 7.0);
  DenseTensor c({4});
  c.fill(7.0);
  EXPECT_DOUBLE_EQ(a.max_abs_diff(c), 0.0);
}

TEST(DenseTensor, ExtentProduct) {
  DenseTensor t({2, 3, 4, 5});
  EXPECT_EQ(t.extent_product(0, 4), 120);
  EXPECT_EQ(t.extent_product(1, 3), 12);
  EXPECT_EQ(t.extent_product(2, 2), 1);
}

TEST(DenseTensor, ZeroExtentIsEmpty) {
  DenseTensor t({3, 0, 4});
  EXPECT_EQ(t.size(), 0);
  EXPECT_DOUBLE_EQ(t.frobenius_norm(), 0.0);
}

TEST(DenseTensor, OrderOneBehavesAsVector) {
  DenseTensor t({5});
  t[3] = 2.0;
  EXPECT_DOUBLE_EQ(t.frobenius_norm(), 2.0);
}

TEST(DenseTensor, FillUniformDeterministic) {
  Rng r1(5), r2(5);
  DenseTensor a({10, 10}), b({10, 10});
  a.fill_uniform(r1);
  b.fill_uniform(r2);
  EXPECT_DOUBLE_EQ(a.max_abs_diff(b), 0.0);
}

}  // namespace
}  // namespace parpp::tensor
