#include <gtest/gtest.h>

#include <cmath>

#include "parpp/util/rng.hpp"

namespace parpp {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next_u64() == b.next_u64()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformMeanAndVariance) {
  Rng rng(99);
  const int n = 200000;
  double sum = 0.0, sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double u = rng.uniform();
    sum += u;
    sq += u * u;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.5, 5e-3);
  EXPECT_NEAR(var, 1.0 / 12.0, 5e-3);
}

TEST(Rng, NormalMoments) {
  Rng rng(5);
  const int n = 200000;
  double sum = 0.0, sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 2e-2);
  EXPECT_NEAR(sq / n, 1.0, 2e-2);
}

TEST(Rng, UniformIndexBounds) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const index_t v = rng.uniform_index(17);
    EXPECT_GE(v, 0);
    EXPECT_LT(v, 17);
  }
  EXPECT_THROW((void)rng.uniform_index(0), error);
}

TEST(Rng, SplitStreamsAreIndependentAndDeterministic) {
  Rng root(42);
  Rng s1 = root.split(1);
  Rng s2 = root.split(2);
  Rng s1_again = root.split(1);
  EXPECT_EQ(s1.next_u64(), s1_again.next_u64());
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (s1.next_u64() == s2.next_u64()) ++same;
  EXPECT_LT(same, 2);
}

}  // namespace
}  // namespace parpp
