#include <gtest/gtest.h>

#include <array>

#include "parpp/la/gemm.hpp"
#include "parpp/tensor/khatri_rao.hpp"
#include "parpp/tensor/mttkrp_naive.hpp"
#include "parpp/tensor/reconstruct.hpp"
#include "test_util.hpp"

namespace parpp::tensor {
namespace {

TEST(KhatriRao, SmallExample) {
  la::Matrix a(2, 2, {1.0, 2.0, 3.0, 4.0});
  la::Matrix b(2, 2, {5.0, 6.0, 7.0, 8.0});
  const la::Matrix c = khatri_rao(a, b);
  ASSERT_EQ(c.rows(), 4);
  ASSERT_EQ(c.cols(), 2);
  EXPECT_DOUBLE_EQ(c(0, 0), 5.0);   // a(0,0)*b(0,0)
  EXPECT_DOUBLE_EQ(c(1, 0), 7.0);   // a(0,0)*b(1,0)
  EXPECT_DOUBLE_EQ(c(2, 1), 24.0);  // a(1,1)*b(0,1)
  EXPECT_DOUBLE_EQ(c(3, 1), 32.0);  // a(1,1)*b(1,1)
}

TEST(KhatriRao, ColumnMismatchThrows) {
  la::Matrix a(2, 2), b(2, 3);
  EXPECT_THROW((void)khatri_rao(a, b), error);
}

TEST(KhatriRao, AllWithSkip) {
  const auto factors = test::random_factors({3, 4, 5}, 2, 41);
  const la::Matrix w = khatri_rao_all(factors, 1);
  ASSERT_EQ(w.rows(), 15);
  // Row (i, k) linearized with mode-0 slowest.
  for (index_t i = 0; i < 3; ++i)
    for (index_t k = 0; k < 5; ++k)
      for (index_t r = 0; r < 2; ++r)
        EXPECT_DOUBLE_EQ(w(i * 5 + k, r), factors[0](i, r) * factors[2](k, r));
}

TEST(Unfold, MatchesElementwise) {
  const DenseTensor t = test::random_tensor({3, 4, 5}, 42);
  for (int n = 0; n < 3; ++n) {
    const la::Matrix u = unfold(t, n);
    ASSERT_EQ(u.rows(), t.extent(n));
    ASSERT_EQ(u.cols(), t.size() / t.extent(n));
  }
  // Spot-check mode 1: column index = i0 * s2 + i2.
  const la::Matrix u1 = unfold(t, 1);
  for (index_t i0 = 0; i0 < 3; ++i0)
    for (index_t i1 = 0; i1 < 4; ++i1)
      for (index_t i2 = 0; i2 < 5; ++i2) {
        const std::array<index_t, 3> idx{i0, i1, i2};
        EXPECT_DOUBLE_EQ(u1(i1, i0 * 5 + i2), t.at(idx));
      }
}

TEST(Mttkrp, KrpPathMatchesElementwise) {
  const DenseTensor t = test::random_tensor({4, 5, 6}, 43);
  const auto factors = test::random_factors({4, 5, 6}, 3, 44);
  for (int n = 0; n < 3; ++n) {
    const la::Matrix a = mttkrp_elementwise(t, factors, n);
    const la::Matrix b = mttkrp_krp(t, factors, n);
    test::expect_matrix_near(a, b, 1e-10, "mttkrp paths agree");
  }
}

TEST(Mttkrp, Order4PathsAgree) {
  const DenseTensor t = test::random_tensor({3, 4, 2, 5}, 45);
  const auto factors = test::random_factors({3, 4, 2, 5}, 2, 46);
  for (int n = 0; n < 4; ++n) {
    test::expect_matrix_near(mttkrp_elementwise(t, factors, n),
                             mttkrp_krp(t, factors, n), 1e-10,
                             "order-4 mttkrp");
  }
}

TEST(Reconstruct, MatchesElementwiseDefinition) {
  const auto factors = test::random_factors({3, 4, 5}, 2, 47);
  const DenseTensor t = reconstruct(factors);
  std::vector<index_t> idx(3, 0);
  do {
    double want = 0.0;
    for (index_t r = 0; r < 2; ++r) {
      double p = 1.0;
      for (int m = 0; m < 3; ++m)
        p *= factors[static_cast<std::size_t>(m)](
            idx[static_cast<std::size_t>(m)], r);
      want += p;
    }
    EXPECT_NEAR(t.at(idx), want, 1e-12);
  } while (next_index(t.shape(), idx));
}

TEST(Reconstruct, ExactLowRankRoundTrip) {
  // MTTKRP of a rank-R tensor with its own factors satisfies the normal
  // equations: M(n) = A(n) Γ(n).
  const auto factors = test::random_factors({5, 6, 7}, 3, 48);
  const DenseTensor t = reconstruct(factors);
  const la::Matrix m0 = mttkrp_elementwise(t, factors, 0);
  // Γ(0) = (A1^T A1) * (A2^T A2)
  la::Matrix g1 = la::matmul(factors[1], factors[1], la::Trans::kYes);
  la::Matrix g2 = la::matmul(factors[2], factors[2], la::Trans::kYes);
  g1.hadamard_inplace(g2);
  const la::Matrix want = la::matmul(factors[0], g1);
  test::expect_matrix_near(m0, want, 1e-9, "normal equations");
}

}  // namespace
}  // namespace parpp::tensor
