// Table I: measured leading-order costs vs the closed-form model.
//
// For each algorithm we compare (a) measured TTM+mTTV flops per sweep
// against the Table I sequential/local compute columns, and (b) measured
// horizontal-communication words per sweep against the collective-pattern
// model. This validates that the implementation achieves the complexity
// the paper claims, independent of machine speed.
#include <cstdio>

#include "bench_util.hpp"
#include "parpp/par/par_cp_als.hpp"
#include "parpp/par/par_pp.hpp"
#include "parpp/util/cost_model.hpp"
#include "parpp/util/rng.hpp"

using namespace parpp;

namespace {

void report(const char* row, double measured, double model) {
  std::printf("%-28s %14.4e %14.4e %8.2fx\n", row, measured, model,
              model > 0 ? measured / model : 0.0);
}

}  // namespace

int main(int argc, char** argv) {
  bench::Args args(argc, argv);
  const index_t s = args.get_long("--size", 48);
  const index_t rank = args.get_long("--rank", 24);
  const int sweeps = static_cast<int>(args.get_long("--sweeps", 6));
  const int n = 3;
  const std::vector<int> grid{2, 2, 2};
  const int procs = 8;

  bench::print_header(
      "Table I — measured vs modeled leading-order costs (order 3)",
      "Ma & Solomonik, IPDPS 2021, Table I");
  std::printf("s=%lld (global %lld) R=%lld P=%d sweeps=%d\n\n",
              static_cast<long long>(s), static_cast<long long>(s * 2),
              static_cast<long long>(rank), procs, sweeps);
  std::printf("%-28s %14s %14s %8s\n", "quantity (per sweep)", "measured",
              "model", "ratio");

  std::vector<index_t> shape{s * 2, s * 2, s * 2};  // global dims
  tensor::DenseTensor t(shape);
  Rng rng(31);
  t.fill_uniform(rng);

  const TableOneModel model{n, s * 2, rank, procs};

  par::ParOptions opt;
  opt.base.rank = rank;
  opt.base.max_sweeps = sweeps;
  opt.base.tol = 0.0;
  opt.grid_dims = grid;

  // DT: contraction flops (TTM+mTTV) per sweep per rank vs 4 s^N R / P.
  opt.local_engine = core::EngineKind::kDt;
  const auto dt = par::par_cp_als(t, procs, opt);
  double dt_flops = 0.0, dt_words = 0.0;
  for (const auto& p : dt.sweep_profiles)
    dt_flops += p.flops(Kernel::kTTM) + p.flops(Kernel::kMTTV);
  dt_flops /= sweeps;
  dt_words = dt.comm_cost.total().words_horizontal / sweeps;
  report("DT local flops", dt_flops, model.dt_local_flops());
  report("DT horizontal words", dt_words,
         model.local_tree_horizontal_words());

  // MSDT: 2N/(N-1) s^N R / P.
  opt.local_engine = core::EngineKind::kMsdt;
  const auto msdt = par::par_cp_als(t, procs, opt);
  double msdt_flops = 0.0;
  for (const auto& p : msdt.sweep_profiles)
    msdt_flops += p.flops(Kernel::kTTM) + p.flops(Kernel::kMTTV);
  msdt_flops /= sweeps;
  report("MSDT local flops", msdt_flops, model.msdt_local_flops());
  report("MSDT horizontal words",
         msdt.comm_cost.total().words_horizontal / sweeps,
         model.local_tree_horizontal_words());
  report("MSDT/DT flop ratio", msdt_flops / dt_flops,
         static_cast<double>(n) / (2.0 * (n - 1)));

  // PP approximated step: 2 N^2 (s_loc^2 R + R^2 ...) local.
  par::ParPpOptions ppopt;
  ppopt.par = opt;
  const auto pp = par::time_pp_kernels(t, procs, ppopt, sweeps);
  const double pp_flops =
      (pp.approx_profile.flops(Kernel::kTTM) +
       pp.approx_profile.flops(Kernel::kMTTV)) /
      sweeps;
  report("PP-approx local flops", pp_flops, model.pp_approx_local_flops());
  const double pp_init_flops = pp.init_profile.flops(Kernel::kTTM) +
                               pp.init_profile.flops(Kernel::kMTTV);
  report("PP-init local flops", pp_init_flops, model.dt_local_flops());

  std::printf(
      "\nExpected shape: ratios near 1 for the compute rows (leading-order\n"
      "terms only — lower-order mTTV work inflates DT/MSDT slightly); the\n"
      "MSDT/DT ratio approaches N/(2(N-1)) = %.3f for N=3.\n",
      3.0 / 4.0);
  return 0;
}
