// Table II: per-sweep MTTKRP time of our PP kernels vs the reference PP
// implementation (CTF-style general contractions with global reductions).
//
// Paper grids: 2x4x4 / 4x4x4 / 4x4x8 / 4x8x8 (order 3, s_local=400, R=400)
// and 2x2x2x4 / 2x2x4x4 / 2x4x4x4 / 4x4x4x4 (order 4, s_local=75, R=200).
// Scaled default: grids up to 16 ranks, s_local=40/14.
#include <cstdio>

#include "bench_util.hpp"
#include "parpp/par/par_pp.hpp"
#include "parpp/par/ref_pp.hpp"
#include "parpp/util/rng.hpp"

using namespace parpp;

namespace {

void run_grid(const std::vector<int>& grid, index_t slocal, index_t rank,
              int sweeps) {
  int procs = 1;
  std::vector<index_t> shape;
  for (int d : grid) {
    procs *= d;
    shape.push_back(slocal * d);
  }
  tensor::DenseTensor t(shape);
  Rng rng(29);
  t.fill_uniform(rng);

  par::ParPpOptions opt;
  opt.par.base.rank = rank;
  opt.par.grid_dims = grid;
  opt.par.local_engine = core::EngineKind::kMsdt;

  const auto ours = par::time_pp_kernels(t, procs, opt, sweeps);
  const auto ref = par::time_ref_pp_kernels(t, procs, opt, sweeps);

  std::printf("%-12s %9.4f %12.4f %10.4f %13.4f %11.3e %11.3e\n",
              bench::grid_to_string(grid).c_str(), ours.init_seconds,
              ref.init_seconds, ours.approx_sweep_seconds,
              ref.approx_sweep_seconds,
              ours.comm_cost.total().words_horizontal,
              ref.comm_cost.total().words_horizontal);
  std::fflush(stdout);
}

}  // namespace

int main(int argc, char** argv) {
  bench::Args args(argc, argv);
  const index_t slocal3 = args.get_long("--slocal3", 40);
  const index_t rank3 = args.get_long("--rank3", 32);
  const index_t slocal4 = args.get_long("--slocal4", 14);
  const index_t rank4 = args.get_long("--rank4", 24);
  const int sweeps = static_cast<int>(args.get_long("--sweeps", 3));

  // The paper measures on a real interconnect at up to 1024 ranks; in the
  // shared-memory simulator the collectives are nearly free, so by default
  // we inject the alpha-beta modeled delay of a congested fat-tree so the
  // communication-bound behaviour shows up in wall time (disable with
  // --no-network-model; the comm-words columns carry the comparison either
  // way).
  if (!args.has("--no-network-model")) {
    CostParams net;
    net.alpha = 1.0e-5;
    net.beta = 2.0e-8;
    mpsim::NetworkModel::enable(net);
  }

  bench::print_header(
      "Table II — PP kernels vs reference PP implementation (seconds)",
      "Ma & Solomonik, IPDPS 2021, Table II; scaled down here");
  std::printf("%-12s %9s %12s %10s %13s %11s %11s\n", "grid", "PP-init",
              "PP-init-ref", "PP-approx", "PP-approx-ref", "words", "words-ref");

  for (const auto& grid : std::vector<std::vector<int>>{
           {2, 2, 2}, {4, 2, 2}, {4, 4, 1}, {4, 2, 1}}) {
    run_grid(grid, slocal3, rank3, sweeps);
  }
  for (const auto& grid : std::vector<std::vector<int>>{
           {2, 2, 2, 1}, {2, 2, 2, 2}, {2, 2, 1, 1}, {4, 2, 2, 1}}) {
    run_grid(grid, slocal4, rank4, sweeps);
  }

  std::printf(
      "\nExpected shape (paper): both reference kernels are several times\n"
      "slower, dominated by the global reductions of the full PP operators\n"
      "(init) and the per-correction collectives (approx).\n");
  return 0;
}
