// Distributed sparse scaling bench: ALS vs PP sweep throughput on the
// simulated grid across rank counts {1, 2, 4, 8}, emitting
// BENCH_par_sparse.json for cross-PR perf tracking of the storage-agnostic
// parallel layer (SparseBlockDist + sparse local engines + sparse PP).
//
//   bench_par_sparse [--size 48] [--rank 8] [--density 0.02] [--sweeps 8]
//                    [--out BENCH_par_sparse.json]
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "parpp/data/sparse_synthetic.hpp"
#include "parpp/solver/solver.hpp"
#include "parpp/tensor/csf_tensor.hpp"
#include "parpp/util/timer.hpp"

using namespace parpp;

namespace {

struct Row {
  int ranks = 0;
  double als_sweeps_per_sec = 0.0;
  double pp_sweeps_per_sec = 0.0;
  double als_fitness = 0.0;
  double pp_fitness = 0.0;
  double comm_words = 0.0;  ///< busiest rank, ALS run
};

solver::SolveReport run_cell(const tensor::CsfTensor& t, solver::Method method,
                             index_t rank, int sweeps, int nprocs,
                             double* seconds) {
  solver::SolverSpec spec;
  spec.method = method;
  spec.rank = rank;
  spec.engine = core::EngineKind::kSparse;
  spec.stopping.max_sweeps = sweeps;
  spec.stopping.fitness_tol = 0.0;  // run the full sweep budget
  spec.record_history = false;
  if (nprocs > 1)
    spec.execution = solver::Execution::simulated_parallel(nprocs);
  WallTimer timer;
  solver::SolveReport r = parpp::solve(t, spec);
  *seconds = timer.seconds();
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Args args(argc, argv);
  const index_t size = args.get_long("--size", 48);
  const index_t rank = args.get_long("--rank", 8);
  const double density = args.get_double("--density", 0.02);
  const int sweeps = static_cast<int>(args.get_long("--sweeps", 8));
  const std::string out_path =
      args.get_string("--out", "BENCH_par_sparse.json");

  bench::print_header(
      "Distributed sparse CP — ALS vs PP sweeps/sec across rank counts",
      "storage-agnostic parallel layer (SparseBlockDist over the mpsim "
      "grid)");
  std::printf("s=%lld R=%lld density=%g sweeps=%d\n\n",
              static_cast<long long>(size), static_cast<long long>(rank),
              density, sweeps);

  const auto gen =
      data::make_sparse_lowrank({size, size, size}, rank, density, 7);
  const tensor::CsfTensor csf(gen.tensor);
  std::printf("nnz = %lld (density %.3e)\n\n",
              static_cast<long long>(csf.nnz()), csf.density());

  std::vector<Row> rows;
  std::printf("%6s %12s %12s %10s %10s %12s\n", "ranks", "als-swp/s",
              "pp-swp/s", "als-fit", "pp-fit", "comm-words");
  for (int nprocs : {1, 2, 4, 8}) {
    Row row;
    row.ranks = nprocs;
    double als_s = 0.0, pp_s = 0.0;
    const auto als = run_cell(csf, solver::Method::kAls, rank, sweeps,
                              nprocs, &als_s);
    const auto pp = run_cell(csf, solver::Method::kPp, rank, sweeps, nprocs,
                             &pp_s);
    row.als_sweeps_per_sec =
        als_s > 0.0 ? static_cast<double>(als.sweeps) / als_s : 0.0;
    row.pp_sweeps_per_sec =
        pp_s > 0.0 ? static_cast<double>(pp.sweeps) / pp_s : 0.0;
    row.als_fitness = als.fitness;
    row.pp_fitness = pp.fitness;
    row.comm_words = als.comm_cost.total().words_horizontal;
    rows.push_back(row);
    std::printf("%6d %12.1f %12.1f %10.6f %10.6f %12.3e\n", row.ranks,
                row.als_sweeps_per_sec, row.pp_sweeps_per_sec,
                row.als_fitness, row.pp_fitness, row.comm_words);
  }

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f,
               "{\n  \"bench\": \"par_sparse\",\n  \"size\": %lld,\n"
               "  \"rank\": %lld,\n  \"density\": %g,\n  \"sweeps\": %d,\n"
               "  \"nnz\": %lld,\n  \"rows\": [\n",
               static_cast<long long>(size), static_cast<long long>(rank),
               density, sweeps, static_cast<long long>(csf.nnz()));
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(f,
                 "    {\"ranks\": %d, \"als_sweeps_per_sec\": %.3f, "
                 "\"pp_sweeps_per_sec\": %.3f, \"als_fitness\": %.8f, "
                 "\"pp_fitness\": %.8f, \"comm_words\": %.3e}%s\n",
                 r.ranks, r.als_sweeps_per_sec, r.pp_sweeps_per_sec,
                 r.als_fitness, r.pp_fitness, r.comm_words,
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("\nwrote %s\n", out_path.c_str());
  return 0;
}
