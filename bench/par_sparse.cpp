// Distributed sparse scaling bench: (1) ALS vs PP sweep throughput on the
// simulated grid across rank counts {1, 2, 4, 8}; (2) uniform vs
// nnz-balanced partitioning on a power-law (Zipf slice density) tensor —
// critical-path MTTKRP time, sweeps/sec and per-rank nnz imbalance; (3)
// tiled vs fiber-parallel CSF walk on a short-root-mode tensor. Emits
// BENCH_par_sparse.json for cross-PR perf tracking of the parallel layer.
//
//   bench_par_sparse [--size 48] [--rank 8] [--density 0.02] [--sweeps 8]
//                    [--skew-size 96] [--skew-density 0.1] [--zipf 1.6]
//                    [--threads 4] [--out BENCH_par_sparse.json]
#include <omp.h>

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "parpp/data/sparse_synthetic.hpp"
#include "parpp/solver/solver.hpp"
#include "parpp/tensor/csf_tensor.hpp"
#include "parpp/tensor/mttkrp_sparse.hpp"
#include "parpp/util/rng.hpp"
#include "parpp/util/timer.hpp"

using namespace parpp;

namespace {

struct Row {
  int ranks = 0;
  double als_sweeps_per_sec = 0.0;
  double pp_sweeps_per_sec = 0.0;
  double als_fitness = 0.0;
  double pp_fitness = 0.0;
  double comm_words = 0.0;  ///< busiest rank, ALS run
};

struct SkewRow {
  int ranks = 0;
  std::string partition;
  double mttkrp_s_per_sweep = 0.0;  ///< critical path (slowest rank)
  double sweeps_per_sec = 0.0;
  double nnz_imbalance = 0.0;
  double fitness = 0.0;
};

solver::SolveReport run_cell(const tensor::CsfTensor& t, solver::Method method,
                             index_t rank, int sweeps, int nprocs,
                             dist::PartitionKind partition, double* seconds) {
  solver::SolverSpec spec;
  spec.method = method;
  spec.rank = rank;
  spec.engine = core::EngineKind::kSparse;
  spec.stopping.max_sweeps = sweeps;
  spec.stopping.fitness_tol = 0.0;  // run the full sweep budget
  spec.record_history = false;
  if (nprocs > 1) {
    spec.execution = solver::Execution::simulated_parallel(nprocs);
    spec.execution.partition = partition;
  }
  WallTimer timer;
  solver::SolveReport r = parpp::solve(t, spec);
  *seconds = timer.seconds();
  return r;
}

SkewRow run_skew_cell(const tensor::CsfTensor& t, index_t rank, int sweeps,
                      int nprocs, dist::PartitionKind partition) {
  SkewRow row;
  row.ranks = nprocs;
  row.partition = solver::to_string(partition);
  double secs = 0.0;
  const auto r = run_cell(t, solver::Method::kAls, rank, sweeps, nprocs,
                          partition, &secs);
  // Critical path: per sweep, the MTTKRP seconds of whichever rank was
  // slowest at MTTKRP (sequential runs report their plain profile).
  const double mttkrp_s =
      nprocs > 1 ? r.critical_path_profile.seconds(Kernel::kTTM)
                 : r.profile.seconds(Kernel::kTTM);
  row.mttkrp_s_per_sweep = r.sweeps > 0 ? mttkrp_s / r.sweeps : 0.0;
  row.sweeps_per_sec = secs > 0.0 ? static_cast<double>(r.sweeps) / secs : 0.0;
  row.nnz_imbalance = r.nnz_imbalance;
  row.fitness = r.fitness;
  return row;
}

/// Median-of-reps wall time of one tiled or fiber CSF MTTKRP of `mode`.
double time_walk(const tensor::CsfTensor& t,
                 const std::vector<la::Matrix>& factors, int mode,
                 tensor::CsfWalk walk, int reps) {
  la::Matrix out;
  util::KernelWorkspace ws;
  tensor::mttkrp_csf_into(t, factors, mode, out, nullptr, &ws, walk);  // warm
  std::vector<double> secs;
  for (int i = 0; i < reps; ++i) {
    WallTimer timer;
    tensor::mttkrp_csf_into(t, factors, mode, out, nullptr, &ws, walk);
    secs.push_back(timer.seconds());
  }
  std::sort(secs.begin(), secs.end());
  return secs[secs.size() / 2];
}

}  // namespace

int main(int argc, char** argv) {
  bench::Args args(argc, argv);
  const index_t size = args.get_long("--size", 48);
  const index_t rank = args.get_long("--rank", 8);
  const double density = args.get_double("--density", 0.02);
  const int sweeps = static_cast<int>(args.get_long("--sweeps", 8));
  // The skewed scenario needs enough nonzeros that the MTTKRP walk (not
  // padding and collective overhead) dominates the critical path.
  const index_t skew_size = args.get_long("--skew-size", 96);
  const double skew_density = args.get_double("--skew-density", 0.1);
  const double zipf = args.get_double("--zipf", 1.6);
  const int threads = static_cast<int>(args.get_long("--threads", 4));
  const std::string out_path =
      args.get_string("--out", "BENCH_par_sparse.json");

  bench::print_header(
      "Distributed sparse CP — scaling, partitioning and CSF tiling",
      "storage-agnostic parallel layer (SparseBlockDist / BalancedSparseDist "
      "over the mpsim grid)");
  std::printf("s=%lld R=%lld density=%g sweeps=%d zipf=%g\n\n",
              static_cast<long long>(size), static_cast<long long>(rank),
              density, sweeps, zipf);

  // ---- scenario 1: ALS vs PP sweep throughput (uniform tensor) ----------
  const auto gen =
      data::make_sparse_lowrank({size, size, size}, rank, density, 7);
  const tensor::CsfTensor csf(gen.tensor);
  std::printf("uniform tensor: nnz = %lld (density %.3e)\n\n",
              static_cast<long long>(csf.nnz()), csf.density());

  std::vector<Row> rows;
  std::printf("%6s %12s %12s %10s %10s %12s\n", "ranks", "als-swp/s",
              "pp-swp/s", "als-fit", "pp-fit", "comm-words");
  for (int nprocs : {1, 2, 4, 8}) {
    Row row;
    row.ranks = nprocs;
    double als_s = 0.0, pp_s = 0.0;
    const auto als =
        run_cell(csf, solver::Method::kAls, rank, sweeps, nprocs,
                 dist::PartitionKind::kUniformBlocks, &als_s);
    const auto pp = run_cell(csf, solver::Method::kPp, rank, sweeps, nprocs,
                             dist::PartitionKind::kUniformBlocks, &pp_s);
    row.als_sweeps_per_sec =
        als_s > 0.0 ? static_cast<double>(als.sweeps) / als_s : 0.0;
    row.pp_sweeps_per_sec =
        pp_s > 0.0 ? static_cast<double>(pp.sweeps) / pp_s : 0.0;
    row.als_fitness = als.fitness;
    row.pp_fitness = pp.fitness;
    row.comm_words = als.comm_cost.total().words_horizontal;
    rows.push_back(row);
    std::printf("%6d %12.1f %12.1f %10.6f %10.6f %12.3e\n", row.ranks,
                row.als_sweeps_per_sec, row.pp_sweeps_per_sec,
                row.als_fitness, row.pp_fitness, row.comm_words);
  }

  // ---- scenario 2: uniform vs balanced partition on a skewed tensor -----
  const auto skew_gen = data::make_sparse_powerlaw(
      {skew_size, skew_size, skew_size}, skew_density, zipf, 13, rank);
  const tensor::CsfTensor skew(skew_gen.tensor);
  std::printf("\nskewed tensor (%lld^3, zipf %.2f): nnz = %lld "
              "(density %.3e)\n\n",
              static_cast<long long>(skew_size), zipf,
              static_cast<long long>(skew.nnz()), skew.density());

  std::vector<SkewRow> skew_rows;
  std::printf("%6s %10s %16s %12s %10s %10s\n", "ranks", "partition",
              "mttkrp-s/sweep", "sweeps/s", "imbal", "fitness");
  for (int nprocs : {1, 2, 4, 8}) {
    for (const auto partition : {dist::PartitionKind::kUniformBlocks,
                                 dist::PartitionKind::kBalancedNnz}) {
      if (nprocs == 1 && partition == dist::PartitionKind::kBalancedNnz)
        continue;  // one rank has nothing to balance
      const SkewRow row = run_skew_cell(skew, rank, sweeps, nprocs, partition);
      skew_rows.push_back(row);
      std::printf("%6d %10s %16.3e %12.1f %10.3f %10.6f\n", row.ranks,
                  row.partition.c_str(), row.mttkrp_s_per_sweep,
                  row.sweeps_per_sec, row.nnz_imbalance, row.fitness);
    }
  }

  // ---- scenario 3: tiled vs fiber CSF walk, short root mode -------------
  // Mode 0 has only `short_extent` root fibers — far fewer than the team —
  // so the fiber schedule cannot fill threads_per_rank = `threads`.
  const index_t short_extent = 4;
  const index_t long_extent = size * 4;
  const auto short_gen = data::make_sparse_powerlaw(
      {short_extent, long_extent, long_extent}, 0.02, 0.5, 29, 0);
  const tensor::CsfTensor short_csf(short_gen.tensor);
  std::vector<la::Matrix> factors;
  Rng rng(3);
  for (int m = 0; m < short_csf.order(); ++m) {
    factors.emplace_back(short_csf.extent(m), rank);
    factors.back().fill_uniform(rng);
  }
  const int ambient = omp_get_max_threads();
  omp_set_num_threads(threads);
  const double fiber_s =
      time_walk(short_csf, factors, 0, tensor::CsfWalk::kFiber, 5);
  const double tiled_s =
      time_walk(short_csf, factors, 0, tensor::CsfWalk::kTiled, 5);
  omp_set_num_threads(ambient);
  std::printf("\nshort-root-mode MTTKRP (%lldx%lldx%lld, nnz %lld, %d "
              "threads):\n  fiber %.3e s   tiled %.3e s   speedup %.2fx\n",
              static_cast<long long>(short_extent),
              static_cast<long long>(long_extent),
              static_cast<long long>(long_extent),
              static_cast<long long>(short_csf.nnz()), threads, fiber_s,
              tiled_s, tiled_s > 0.0 ? fiber_s / tiled_s : 0.0);

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f,
               "{\n  \"bench\": \"par_sparse\",\n  \"size\": %lld,\n"
               "  \"rank\": %lld,\n  \"density\": %g,\n  \"sweeps\": %d,\n"
               "  \"nnz\": %lld,\n  \"rows\": [\n",
               static_cast<long long>(size), static_cast<long long>(rank),
               density, sweeps, static_cast<long long>(csf.nnz()));
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(f,
                 "    {\"ranks\": %d, \"als_sweeps_per_sec\": %.3f, "
                 "\"pp_sweeps_per_sec\": %.3f, \"als_fitness\": %.8f, "
                 "\"pp_fitness\": %.8f, \"comm_words\": %.3e}%s\n",
                 r.ranks, r.als_sweeps_per_sec, r.pp_sweeps_per_sec,
                 r.als_fitness, r.pp_fitness, r.comm_words,
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f,
               "  ],\n  \"skewed\": {\n    \"size\": %lld,\n"
               "    \"density\": %g,\n    \"zipf\": %g,\n"
               "    \"nnz\": %lld,\n    \"rows\": [\n",
               static_cast<long long>(skew_size), skew_density, zipf,
               static_cast<long long>(skew.nnz()));
  for (std::size_t i = 0; i < skew_rows.size(); ++i) {
    const SkewRow& r = skew_rows[i];
    std::fprintf(f,
                 "      {\"ranks\": %d, \"partition\": \"%s\", "
                 "\"mttkrp_seconds_per_sweep\": %.4e, "
                 "\"sweeps_per_sec\": %.3f, \"nnz_imbalance\": %.4f, "
                 "\"fitness\": %.8f}%s\n",
                 r.ranks, r.partition.c_str(), r.mttkrp_s_per_sweep,
                 r.sweeps_per_sec, r.nnz_imbalance, r.fitness,
                 i + 1 < skew_rows.size() ? "," : "");
  }
  std::fprintf(f,
               "    ]\n  },\n  \"tiled_walk\": {\n"
               "    \"short_extent\": %lld,\n    \"long_extent\": %lld,\n"
               "    \"nnz\": %lld,\n    \"threads\": %d,\n"
               "    \"fiber_seconds\": %.4e,\n    \"tiled_seconds\": %.4e,\n"
               "    \"speedup\": %.3f\n  }\n}\n",
               static_cast<long long>(short_extent),
               static_cast<long long>(long_extent),
               static_cast<long long>(short_csf.nnz()), threads, fiber_s,
               tiled_s, tiled_s > 0.0 ? fiber_s / tiled_s : 0.0);
  std::fclose(f);
  std::printf("\nwrote %s\n", out_path.c_str());
  return 0;
}
