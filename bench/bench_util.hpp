// Shared helpers for the paper-reproduction benchmark harnesses.
//
// Every bench binary regenerates one table or figure of the paper at
// scaled-down default sizes (see DESIGN.md / EXPERIMENTS.md); pass
// --scale N to grow the workload, --help for per-bench flags.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "parpp/util/common.hpp"

namespace parpp::bench {

/// Minimal command-line flag reader: --name value.
class Args {
 public:
  Args(int argc, char** argv) : argc_(argc), argv_(argv) {}

  [[nodiscard]] long get_long(const char* name, long fallback) const {
    const char* v = find(name);
    return v ? std::atol(v) : fallback;
  }
  [[nodiscard]] double get_double(const char* name, double fallback) const {
    const char* v = find(name);
    return v ? std::atof(v) : fallback;
  }
  [[nodiscard]] std::string get_string(const char* name,
                                       const std::string& fallback) const {
    const char* v = find(name);
    return v ? std::string(v) : fallback;
  }
  [[nodiscard]] bool has(const char* name) const {
    for (int i = 1; i < argc_; ++i)
      if (std::strcmp(argv_[i], name) == 0) return true;
    return false;
  }

 private:
  [[nodiscard]] const char* find(const char* name) const {
    for (int i = 1; i + 1 < argc_; ++i)
      if (std::strcmp(argv_[i], name) == 0) return argv_[i + 1];
    return nullptr;
  }
  int argc_;
  char** argv_;
};

inline void print_header(const char* what, const char* paper_ref) {
  std::printf("================================================================\n");
  std::printf("%s\n", what);
  std::printf("reproduces: %s\n", paper_ref);
  std::printf("================================================================\n");
}

inline std::string grid_to_string(const std::vector<int>& dims) {
  std::string s;
  for (std::size_t i = 0; i < dims.size(); ++i) {
    if (i) s += "x";
    s += std::to_string(dims[i]);
  }
  return s;
}

/// Weak-scaling grid ladder for order-N tensors: doubles one dimension at a
/// time, mirroring the paper's 1x1x1 .. 8x8x16 progression.
inline std::vector<std::vector<int>> grid_ladder(int order, int max_procs) {
  std::vector<std::vector<int>> grids;
  std::vector<int> g(static_cast<std::size_t>(order), 1);
  grids.push_back(g);
  int procs = 1;
  std::size_t next = g.size();  // double the last dim first, paper-style
  while (procs * 2 <= max_procs) {
    next = next == 0 ? g.size() - 1 : next - 1;
    g[next] *= 2;
    procs *= 2;
    grids.push_back(g);
  }
  return grids;
}

}  // namespace parpp::bench
