// Figure 3a: weak scaling of per-sweep time on order-3 synthetic tensors.
//
// Paper setting: s_local = 400, R = 400, grids 1x1x1 .. 8x8x16 on
// Stampede2. Scaled-down default: s_local = 48, R = 32, grids up to
// --max-procs (default 16) simulated thread-ranks. For each grid we report
// the mean per-sweep wall time of PLANC (DT + sequential solve), our DT,
// MSDT, the PP initialization step and the PP approximated step, plus the
// modeled horizontal-communication words of the busiest rank.
#include <cstdio>

#include "bench_util.hpp"
#include "parpp/par/par_cp_als.hpp"
#include "parpp/par/par_pp.hpp"
#include "parpp/par/planc_baseline.hpp"
#include "parpp/util/rng.hpp"

using namespace parpp;

namespace {

double mean_sweep_seconds(const tensor::DenseTensor& t, int procs,
                          const par::ParOptions& opt) {
  const par::ParResult r = par::par_cp_als(t, procs, opt);
  return r.mean_sweep_seconds;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Args args(argc, argv);
  const index_t slocal = args.get_long("--slocal", 48);
  const index_t rank = args.get_long("--rank", 32);
  const int max_procs = static_cast<int>(args.get_long("--max-procs", 16));
  const int sweeps = static_cast<int>(args.get_long("--sweeps", 3));

  bench::print_header(
      "Figure 3a — order-3 weak scaling, per-ALS-sweep time (seconds)",
      "Ma & Solomonik, IPDPS 2021, Fig. 3a (s_local=400, R=400 on KNL; "
      "scaled down here)");
  std::printf("s_local=%lld rank=%lld sweeps=%d\n\n",
              static_cast<long long>(slocal), static_cast<long long>(rank),
              sweeps);
  std::printf("%-10s %8s %8s %8s %8s %9s %12s\n", "grid", "PLANC", "DT",
              "MSDT", "PP-init", "PP-approx", "comm-words");

  for (const auto& grid : bench::grid_ladder(3, max_procs)) {
    int procs = 1;
    std::vector<index_t> shape;
    for (int d : grid) {
      procs *= d;
      shape.push_back(slocal * d);
    }
    tensor::DenseTensor t(shape);
    Rng rng(17);
    t.fill_uniform(rng);

    par::ParOptions opt;
    opt.base.rank = rank;
    opt.base.max_sweeps = sweeps;
    opt.base.tol = 0.0;
    opt.base.record_history = true;
    opt.grid_dims = grid;

    opt.local_engine = core::EngineKind::kDt;
    const double dt = mean_sweep_seconds(t, procs, opt);
    const double planc =
        mean_sweep_seconds(t, procs, par::planc_options(opt));
    opt.local_engine = core::EngineKind::kMsdt;
    opt.engine_options.use_transposed_copy = core::TransposedCopy::kOn;
    const double msdt = mean_sweep_seconds(t, procs, opt);

    par::ParPpOptions ppopt;
    ppopt.par = opt;
    const par::PpKernelTimings pp =
        par::time_pp_kernels(t, procs, ppopt, sweeps);

    std::printf("%-10s %8.4f %8.4f %8.4f %8.4f %9.4f %12.3e\n",
                bench::grid_to_string(grid).c_str(), planc, dt, msdt,
                pp.init_seconds, pp.approx_sweep_seconds,
                pp.comm_cost.total().words_horizontal);
    std::fflush(stdout);
  }

  std::printf(
      "\nExpected shape (paper): MSDT < DT consistently; PP-approx is the\n"
      "fastest per-sweep kernel; PP-init is comparable to one DT sweep.\n");
  return 0;
}
