// Sparse backend benchmark: CSF MTTKRP and ALS sweep throughput versus the
// naive-densified baseline over a density sweep at fixed shape, emitting
// BENCH_sparse.json for cross-PR perf tracking.
//
//   bench_sparse [--size 64] [--rank 16] [--reps 5] [--sweeps 10]
//                [--out BENCH_sparse.json]
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "parpp/data/sparse_synthetic.hpp"
#include "parpp/la/scalar.hpp"
#include "parpp/solver/solver.hpp"
#include "parpp/tensor/csf_tensor.hpp"
#include "parpp/tensor/mttkrp_fused.hpp"
#include "parpp/tensor/mttkrp_sparse.hpp"
#include "parpp/util/timer.hpp"
#include "parpp/util/workspace.hpp"

using namespace parpp;

namespace {

struct Row {
  double density_requested = 0.0;
  long long nnz = 0;
  double density = 0.0;
  double csf_mttkrp_ms = 0.0;    ///< all modes, per rep
  double csf_gflops = 0.0;       ///< useful sparse flops 2R(nnz+interior)
  double csf_gbs = 0.0;          ///< bytes-moved model (values + rows + out)
  double csf32_mttkrp_ms = 0.0;  ///< fp32-storage walk, all modes
  double csf32_gbs = 0.0;
  double dense_mttkrp_ms = 0.0;  ///< densified fused path, all modes
  double dense_gflops = 0.0;     ///< dense flops 2|T|R per mode
  double dense_gbs = 0.0;
  double sparse_sweeps_per_sec = 0.0;
  double densified_sweeps_per_sec = 0.0;
};

/// Bytes the root walk of `mode` streams: one value + one gathered leaf
/// row per nonzero and one row per interior node at the storage width,
/// plus the fp64 output.
double csf_walk_bytes(const tensor::CsfTensor& t, int mode, index_t rank,
                      double storage_bytes) {
  return static_cast<double>(t.nnz()) *
             (1.0 + static_cast<double>(rank)) * storage_bytes +
         static_cast<double>(t.tree(mode).internal_nodes) *
             static_cast<double>(rank) * storage_bytes +
         static_cast<double>(t.extent(mode)) *
             static_cast<double>(rank) * 8.0;
}

double run_sweeps_per_sec(const solver::TensorSource& t, int rank,
                          int sweeps, core::EngineKind engine) {
  solver::SolverSpec spec;
  spec.method = solver::Method::kAls;
  spec.rank = rank;
  spec.engine = engine;
  spec.stopping.max_sweeps = sweeps;
  spec.stopping.fitness_tol = 0.0;  // run the full sweep budget
  spec.record_history = false;
  WallTimer timer;
  const solver::SolveReport r = parpp::solve(t, spec);
  const double s = timer.seconds();
  return s > 0.0 ? static_cast<double>(r.sweeps) / s : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Args args(argc, argv);
  const index_t size = args.get_long("--size", 64);
  const index_t rank = args.get_long("--rank", 16);
  const int reps = static_cast<int>(args.get_long("--reps", 5));
  const int sweeps = static_cast<int>(args.get_long("--sweeps", 10));
  const std::string out_path = args.get_string("--out", "BENCH_sparse.json");
  const std::vector<double> densities{1e-4, 1e-3, 1e-2, 1e-1};

  bench::print_header(
      "Sparse backend — CSF MTTKRP + ALS sweeps vs naive-densified",
      "density sweep at fixed shape (storage-polymorphic tensor layer)");
  std::printf("s=%lld R=%lld reps=%d sweeps=%d\n\n",
              static_cast<long long>(size), static_cast<long long>(rank),
              reps, sweeps);

  const std::vector<index_t> shape{size, size, size};
  std::vector<Row> rows;
  std::printf("%10s %9s %12s %9s %9s %12s %9s %12s %9s %11s %11s\n",
              "density", "nnz", "csf-mtt(ms)", "csf-GF/s", "csf-GB/s",
              "f32-mtt(ms)", "f32-GB/s", "dns-mtt(ms)", "dns-GF/s",
              "sp-swp/s", "dn-swp/s");
  for (double density : densities) {
    const tensor::CooTensor coo = data::make_sparse_random(shape, density, 7);
    const tensor::CsfTensor csf(coo);
    const tensor::DenseTensor dense = coo.densify();
    const int order = csf.order();

    std::vector<la::Matrix> factors;
    for (int m = 0; m < order; ++m) {
      Rng rng(100 + static_cast<std::uint64_t>(m));
      la::Matrix a(csf.extent(m), rank);
      a.fill_uniform(rng);
      factors.push_back(std::move(a));
    }

    Row row;
    row.density_requested = density;
    row.nnz = static_cast<long long>(csf.nnz());
    row.density = csf.density();

    util::KernelWorkspace ws;
    la::Matrix out;
    double sparse_flops = 0.0;
    for (int m = 0; m < order; ++m) {
      sparse_flops += 2.0 * static_cast<double>(rank) *
                      static_cast<double>(csf.nnz() +
                                          csf.tree(m).internal_nodes);
    }
    // Warm the workspace so the timed reps are steady-state.
    for (int m = 0; m < order; ++m)
      tensor::mttkrp_csf_into(csf, factors, m, out, nullptr, &ws);
    WallTimer timer;
    for (int rep = 0; rep < reps; ++rep)
      for (int m = 0; m < order; ++m)
        tensor::mttkrp_csf_into(csf, factors, m, out, nullptr, &ws);
    row.csf_mttkrp_ms = timer.seconds() / reps * 1e3;
    row.csf_gflops = sparse_flops / (timer.seconds() / reps) * 1e-9;
    double csf_bytes64 = 0.0;
    double csf_bytes32 = 0.0;
    for (int m = 0; m < order; ++m) {
      csf_bytes64 += csf_walk_bytes(csf, m, rank, 8.0);
      csf_bytes32 += csf_walk_bytes(csf, m, rank, 4.0);
    }
    row.csf_gbs = csf_bytes64 / (timer.seconds() / reps) / (1 << 30);

    // fp32-storage walk: fp32 factor mirrors + value mirrors, fp64
    // accumulation (the --scalar fp32 engine path).
    std::vector<la::MatrixF32> mirrors;
    la::sync_mirrors(factors, mirrors);
    tensor::CsfValsF32 vals32;
    vals32.sync(csf);
    for (int m = 0; m < order; ++m)
      tensor::mttkrp_csf_into_f32(csf, mirrors, m, vals32, out, nullptr,
                                  &ws);
    timer.reset();
    for (int rep = 0; rep < reps; ++rep)
      for (int m = 0; m < order; ++m)
        tensor::mttkrp_csf_into_f32(csf, mirrors, m, vals32, out, nullptr,
                                    &ws);
    row.csf32_mttkrp_ms = timer.seconds() / reps * 1e3;
    row.csf32_gbs = csf_bytes32 / (timer.seconds() / reps) / (1 << 30);

    const double dense_flops = static_cast<double>(order) * 2.0 *
                               static_cast<double>(dense.size()) *
                               static_cast<double>(rank);
    for (int m = 0; m < order; ++m)
      tensor::mttkrp_into(dense, factors, m, out, nullptr, &ws);
    timer.reset();
    for (int rep = 0; rep < reps; ++rep)
      for (int m = 0; m < order; ++m)
        tensor::mttkrp_into(dense, factors, m, out, nullptr, &ws);
    row.dense_mttkrp_ms = timer.seconds() / reps * 1e3;
    row.dense_gflops = dense_flops / (timer.seconds() / reps) * 1e-9;
    const double dense_bytes =
        static_cast<double>(order) *
        (static_cast<double>(dense.size()) +
         static_cast<double>(size) * static_cast<double>(rank)) *
        8.0;
    row.dense_gbs = dense_bytes / (timer.seconds() / reps) / (1 << 30);

    row.sparse_sweeps_per_sec = run_sweeps_per_sec(
        csf, static_cast<int>(rank), sweeps, core::EngineKind::kSparse);
    row.densified_sweeps_per_sec = run_sweeps_per_sec(
        dense, static_cast<int>(rank), sweeps, core::EngineKind::kNaive);

    rows.push_back(row);
    std::printf(
        "%10.1e %9lld %12.3f %9.2f %9.2f %12.3f %9.2f %12.3f %9.2f "
        "%11.1f %11.1f\n",
        row.density_requested, row.nnz, row.csf_mttkrp_ms, row.csf_gflops,
        row.csf_gbs, row.csf32_mttkrp_ms, row.csf32_gbs, row.dense_mttkrp_ms,
        row.dense_gflops, row.sparse_sweeps_per_sec,
        row.densified_sweeps_per_sec);
  }

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f,
               "{\n  \"bench\": \"sparse\",\n  \"size\": %lld,\n"
               "  \"rank\": %lld,\n  \"sweeps\": %d,\n  \"rows\": [\n",
               static_cast<long long>(size), static_cast<long long>(rank),
               sweeps);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(
        f,
        "    {\"density_requested\": %g, \"nnz\": %lld, \"density\": %g, "
        "\"csf_mttkrp_ms\": %.6f, \"csf_gflops\": %.4f, "
        "\"csf_gbs\": %.4f, "
        "\"csf32_mttkrp_ms\": %.6f, \"csf32_gbs\": %.4f, "
        "\"dense_mttkrp_ms\": %.6f, \"dense_gflops\": %.4f, "
        "\"dense_gbs\": %.4f, "
        "\"sparse_sweeps_per_sec\": %.3f, "
        "\"densified_sweeps_per_sec\": %.3f}%s\n",
        r.density_requested, r.nnz, r.density, r.csf_mttkrp_ms, r.csf_gflops,
        r.csf_gbs, r.csf32_mttkrp_ms, r.csf32_gbs, r.dense_mttkrp_ms,
        r.dense_gflops, r.dense_gbs, r.sparse_sweeps_per_sec,
        r.densified_sweeps_per_sec, i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("\nwrote %s\n", out_path.c_str());
  return 0;
}
