// Figure 4 + Table III: PP speed-up vs exact-factor collinearity buckets.
//
// Paper setting: s = 1600, R = 400, 4x4x4 grid, PP tolerance 0.2, stopping
// tolerance 1e-5, <= 300 sweeps, 5 seeds per bucket. Scaled default:
// s = 72, R = 16, sequential drivers (the speed-up ratio is what matters),
// 3 seeds per bucket.
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "parpp/data/collinearity.hpp"
#include "parpp/solver/solver.hpp"
#include "parpp/util/timer.hpp"

using namespace parpp;

namespace {

struct RunStat {
  double seconds;
  double fitness;
  int n_als, n_pp_init, n_pp_approx;
};

RunStat time_solver(const tensor::DenseTensor& t, index_t rank, double tol,
                    int max_sweeps, core::EngineKind engine, bool use_pp,
                    double pp_tol) {
  solver::SolverSpec spec;
  spec.method = use_pp ? solver::Method::kPp : solver::Method::kAls;
  spec.rank = rank;
  spec.engine = use_pp ? core::EngineKind::kMsdt : engine;
  spec.stopping.max_sweeps = max_sweeps;
  spec.stopping.fitness_tol = tol;
  spec.engine_options.use_transposed_copy = core::TransposedCopy::kOn;
  spec.pp.pp_tol = pp_tol;
  WallTimer timer;
  const solver::SolveReport r = parpp::solve(t, spec);
  return {timer.seconds(), r.fitness, r.num_als_sweeps, r.num_pp_init,
          r.num_pp_approx};
}

}  // namespace

int main(int argc, char** argv) {
  bench::Args args(argc, argv);
  const index_t s = args.get_long("--size", 72);
  const index_t rank = args.get_long("--rank", 16);
  const int seeds = static_cast<int>(args.get_long("--seeds", 3));
  const int max_sweeps = static_cast<int>(args.get_long("--max-sweeps", 300));
  const double tol = args.get_double("--tol", 1e-5);
  const double pp_tol = args.get_double("--pp-tol", 0.2);
  // Small noise floor so convergence has the slow tail of the paper's
  // large instances (exact tiny rank-R tensors converge in a handful of
  // sweeps and nothing would differentiate the methods).
  const double args_noise = args.get_double("--noise", 1e-3);

  bench::print_header(
      "Figure 4 + Table III — PP/MSDT speed-up vs factor collinearity",
      "Ma & Solomonik, IPDPS 2021, Fig. 4 & Table III (s=1600, R=400, "
      "4x4x4 grid; scaled down, sequential timing)");
  std::printf("s=%lld R=%lld seeds=%d tol=%.0e pp_tol=%.2f\n\n",
              static_cast<long long>(s), static_cast<long long>(rank), seeds,
              tol, pp_tol);
  std::printf("%-12s %9s %9s %8s %8s %11s %11s\n", "collinearity",
              "PP-speedup", "MSDT-spd", "N-ALS", "N-PPinit", "N-PPapprox",
              "fitness-PP");

  const std::vector<std::pair<double, double>> buckets{
      {0.0, 0.2}, {0.2, 0.4}, {0.4, 0.6}, {0.6, 0.8}, {0.8, 1.0}};

  for (const auto& [lo, hi] : buckets) {
    double pp_speedup = 0.0, msdt_speedup = 0.0, fit = 0.0;
    double n_als = 0.0, n_init = 0.0, n_approx = 0.0;
    for (int seed = 0; seed < seeds; ++seed) {
      const auto gen = data::make_collinear_tensor(
          {s, s, s}, rank, lo, hi, 1000 + seed * 37 + static_cast<int>(lo * 10),
          args_noise);
      const RunStat dt = time_solver(gen.tensor, rank, tol, max_sweeps,
                                     core::EngineKind::kDt, false, pp_tol);
      const RunStat msdt = time_solver(gen.tensor, rank, tol, max_sweeps,
                                       core::EngineKind::kMsdt, false, pp_tol);
      const RunStat pp = time_solver(gen.tensor, rank, tol, max_sweeps,
                                     core::EngineKind::kMsdt, true, pp_tol);
      pp_speedup += dt.seconds / pp.seconds;
      msdt_speedup += dt.seconds / msdt.seconds;
      fit += pp.fitness;
      n_als += pp.n_als;
      n_init += pp.n_pp_init;
      n_approx += pp.n_pp_approx;
    }
    const double inv = 1.0 / seeds;
    std::printf("[%.1f, %.1f)   %9.2f %9.2f %8.1f %8.1f %11.1f %11.4f\n", lo,
                hi, pp_speedup * inv, msdt_speedup * inv, n_als * inv,
                n_init * inv, n_approx * inv, fit * inv);
    std::fflush(stdout);
  }

  std::printf(
      "\nExpected shape (paper): PP speed-up peaks for collinearity in\n"
      "[0.4, 0.8) where ALS needs many sweeps and many PP-approximated\n"
      "sweeps activate (Table III); low/high collinearity converges in few\n"
      "sweeps and benefits less.\n");
  return 0;
}
