// Ablation (Sec. IV): combining upper tree levels — auxiliary memory vs
// per-sweep compute trade-off.
//
// The paper notes both MSDT and PP can cap the order of cached
// intermediates at the cost of recomputing contractions: capping at l
// levels raises MSDT's cost to 2N/(N-l) s^N R / P while shrinking auxiliary
// memory from (s^N/P)^{(N-1)/N} R toward (s^N/P)^{(N-l)/N} R. We sweep
// max_cached_modes for DT and MSDT on an order-4 tensor and report
// per-sweep time, first-level TTM count and cached elements.
#include <cstdio>

#include "bench_util.hpp"
#include "parpp/core/cp_als.hpp"
#include "parpp/core/dim_tree.hpp"
#include "parpp/core/msdt.hpp"
#include "parpp/util/rng.hpp"
#include "parpp/util/timer.hpp"

using namespace parpp;

namespace {

template <typename Engine>
void run(const char* name, const tensor::DenseTensor& t,
         std::vector<la::Matrix>& factors, int max_cached, int sweeps) {
  core::EngineOptions opt;
  opt.max_cached_modes = max_cached;
  Engine engine(t, factors, nullptr, opt);
  const int n = t.order();
  // Warm-up sweep.
  for (int i = 0; i < n; ++i) {
    (void)engine.mttkrp(i);
    engine.notify_update(i);
  }
  index_t peak_elements = 0;
  const long ttm0 = engine.ttm_count();
  WallTimer timer;
  for (int s = 0; s < sweeps; ++s) {
    for (int i = 0; i < n; ++i) {
      (void)engine.mttkrp(i);
      peak_elements = std::max(peak_elements, engine.cached_elements());
      engine.notify_update(i);
    }
  }
  std::printf("%-6s %12d %14.4f %10.2f %16lld\n", name, max_cached,
              timer.seconds() / sweeps,
              static_cast<double>(engine.ttm_count() - ttm0) / sweeps,
              static_cast<long long>(peak_elements));
  std::fflush(stdout);
}

}  // namespace

int main(int argc, char** argv) {
  bench::Args args(argc, argv);
  const index_t s = args.get_long("--size", 28);
  const index_t rank = args.get_long("--rank", 24);
  const int sweeps = static_cast<int>(args.get_long("--sweeps", 3));

  bench::print_header(
      "Ablation — level combining: cached-intermediate cap vs time/memory",
      "Ma & Solomonik, IPDPS 2021, Sec. IV (auxiliary-memory trade-off)");
  std::printf("order-4 tensor s=%lld R=%lld\n\n", static_cast<long long>(s),
              static_cast<long long>(rank));
  std::printf("%-6s %12s %14s %10s %16s\n", "engine", "max-cached",
              "sec/sweep", "TTM/sweep", "peak-elements");

  const std::vector<index_t> shape{s, s, s, s};
  tensor::DenseTensor t(shape);
  Rng rng(37);
  t.fill_uniform(rng);
  auto factors = core::init_factors(shape, rank, 38);

  for (int cap : {0, 3, 2, 1}) {
    run<core::DtEngine>("DT", t, factors, cap, sweeps);
  }
  for (int cap : {0, 3, 2, 1}) {
    run<core::MsdtEngine>("MSDT", t, factors, cap, sweeps);
  }

  std::printf(
      "\nExpected shape: lowering the cap shrinks peak cached elements and\n"
      "raises TTM count / per-sweep time (recomputation), matching the\n"
      "trade-off analyzed in Sec. IV. cap=0 means cache everything.\n");
  return 0;
}
