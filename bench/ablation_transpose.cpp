// Ablation (Sec. IV): MSDT with vs without the stored transposed copy.
//
// MSDT's rotating first-level TTMs hit interior tensor modes, which on a
// row-major layout degrade to many small GEMMs. The paper stores one
// transposed copy of the input tensor (enough for orders 3 and 4) so every
// first-level contraction lands on a boundary mode of some copy. We time
// per-sweep MSDT with the copy enabled/disabled and report the one-time
// cost of building the copy.
#include <cstdio>

#include "bench_util.hpp"
#include "parpp/core/cp_als.hpp"
#include "parpp/core/msdt.hpp"
#include "parpp/util/rng.hpp"
#include "parpp/util/timer.hpp"

using namespace parpp;

namespace {

void run_order(int order, index_t s, index_t rank, int sweeps) {
  std::vector<index_t> shape(static_cast<std::size_t>(order), s);
  tensor::DenseTensor t(shape);
  Rng rng(41);
  t.fill_uniform(rng);
  auto factors = core::init_factors(shape, rank, 42);

  for (bool copy : {false, true}) {
    core::EngineOptions opt;
    opt.use_transposed_copy =
      copy ? core::TransposedCopy::kOn : core::TransposedCopy::kOff;
    WallTimer build_timer;
    core::MsdtEngine engine(t, factors, nullptr, opt);
    const double build = build_timer.seconds();
    // Warm-up rotation.
    for (int w = 0; w < order; ++w)
      for (int i = 0; i < order; ++i) {
        (void)engine.mttkrp(i);
        engine.notify_update(i);
      }
    WallTimer timer;
    for (int sw = 0; sw < sweeps; ++sw)
      for (int i = 0; i < order; ++i) {
        (void)engine.mttkrp(i);
        engine.notify_update(i);
      }
    std::printf("%5d %5lld %10s %12.4f %14.4f\n", order,
                static_cast<long long>(s), copy ? "yes" : "no",
                timer.seconds() / sweeps, build);
    std::fflush(stdout);
  }
}

}  // namespace

int main(int argc, char** argv) {
  bench::Args args(argc, argv);
  const index_t s3 = args.get_long("--size3", 96);
  const index_t s4 = args.get_long("--size4", 28);
  const index_t rank = args.get_long("--rank", 24);
  const int sweeps = static_cast<int>(args.get_long("--sweeps", 3));

  bench::print_header(
      "Ablation — MSDT stored-transpose optimization",
      "Ma & Solomonik, IPDPS 2021, Sec. IV (transpose avoidance in MSDT)");
  std::printf("%5s %5s %10s %12s %14s\n", "order", "s", "copy", "sec/sweep",
              "copy-build-s");

  run_order(3, s3, rank, sweeps);
  run_order(4, s4, rank, sweeps);

  std::printf(
      "\nExpected shape: the stored copy pays a one-time transpose cost and\n"
      "reduces per-sweep time whenever interior-mode TTMs dominate.\n");
  return 0;
}
