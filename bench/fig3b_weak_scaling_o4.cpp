// Figure 3b: weak scaling of per-sweep time on order-4 synthetic tensors.
//
// Paper setting: s_local = 75, R = 200, grids 1x1x1x1 .. 4x4x8x8. Scaled
// default: s_local = 16, R = 24, up to --max-procs simulated ranks.
#include <cstdio>

#include "bench_util.hpp"
#include "parpp/par/par_cp_als.hpp"
#include "parpp/par/par_pp.hpp"
#include "parpp/par/planc_baseline.hpp"
#include "parpp/util/rng.hpp"

using namespace parpp;

int main(int argc, char** argv) {
  bench::Args args(argc, argv);
  const index_t slocal = args.get_long("--slocal", 16);
  const index_t rank = args.get_long("--rank", 24);
  const int max_procs = static_cast<int>(args.get_long("--max-procs", 16));
  const int sweeps = static_cast<int>(args.get_long("--sweeps", 3));

  bench::print_header(
      "Figure 3b — order-4 weak scaling, per-ALS-sweep time (seconds)",
      "Ma & Solomonik, IPDPS 2021, Fig. 3b (s_local=75, R=200 on KNL; "
      "scaled down here)");
  std::printf("s_local=%lld rank=%lld sweeps=%d\n\n",
              static_cast<long long>(slocal), static_cast<long long>(rank),
              sweeps);
  std::printf("%-12s %8s %8s %8s %8s %9s %12s\n", "grid", "PLANC", "DT",
              "MSDT", "PP-init", "PP-approx", "comm-words");

  for (const auto& grid : bench::grid_ladder(4, max_procs)) {
    int procs = 1;
    std::vector<index_t> shape;
    for (int d : grid) {
      procs *= d;
      shape.push_back(slocal * d);
    }
    tensor::DenseTensor t(shape);
    Rng rng(19);
    t.fill_uniform(rng);

    par::ParOptions opt;
    opt.base.rank = rank;
    opt.base.max_sweeps = sweeps;
    opt.base.tol = 0.0;
    opt.grid_dims = grid;

    opt.local_engine = core::EngineKind::kDt;
    const double dt = par::par_cp_als(t, procs, opt).mean_sweep_seconds;
    const double planc =
        par::par_cp_als(t, procs, par::planc_options(opt)).mean_sweep_seconds;
    opt.local_engine = core::EngineKind::kMsdt;
    opt.engine_options.use_transposed_copy = core::TransposedCopy::kOn;
    const double msdt = par::par_cp_als(t, procs, opt).mean_sweep_seconds;

    par::ParPpOptions ppopt;
    ppopt.par = opt;
    const par::PpKernelTimings pp =
        par::time_pp_kernels(t, procs, ppopt, sweeps);

    std::printf("%-12s %8.4f %8.4f %8.4f %8.4f %9.4f %12.3e\n",
                bench::grid_to_string(grid).c_str(), planc, dt, msdt,
                pp.init_seconds, pp.approx_sweep_seconds,
                pp.comm_cost.total().words_horizontal);
    std::fflush(stdout);
  }

  std::printf(
      "\nExpected shape (paper): MSDT < DT; PP-init is *slower* relative to\n"
      "DT than in the order-3 case (tensor transposes in the PP tree); the\n"
      "PP-approx speed-up is smaller than for order 3.\n");
  return 0;
}
