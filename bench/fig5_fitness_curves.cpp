// Figure 5 + Table IV: fitness-versus-time for PP / MSDT / DT on the
// synthetic-collinearity tensor and the three application workloads
// (quantum-chemistry density fitting, COIL-like images, time-lapse
// hyperspectral), plus the per-method sweep statistics of Table IV.
//
// Paper tensors: chemistry 4520x280x280 (R=300/600/1000), COIL
// 128x128x3x7200 (R=20), Souto time-lapse 1024x1344x33x9 (R=50),
// synthetic 1600^3 (R=400). Scaled-down synthetic substitutes per
// DESIGN.md; select with --case {synth,chem,coil,timelapse,all}.
#include <cstdio>
#include <string>

#include "bench_util.hpp"
#include "parpp/data/chemistry.hpp"
#include "parpp/data/coil.hpp"
#include "parpp/data/collinearity.hpp"
#include "parpp/data/hyperspectral.hpp"
#include "parpp/solver/solver.hpp"
#include "parpp/util/timer.hpp"

using namespace parpp;

namespace {

void print_curve(const char* method, const solver::SolveReport& r,
                 double total_seconds) {
  std::printf("  %-6s finished: fitness=%.6f sweeps=%d time=%.3fs "
              "(ALS=%d, PP-init=%d, PP-approx=%d)\n",
              method, r.fitness, r.sweeps, total_seconds, r.num_als_sweeps,
              r.num_pp_init, r.num_pp_approx);
  // Downsampled fitness-time series (the paper's curve).
  const std::size_t n = r.history.size();
  const std::size_t step = n > 12 ? n / 12 : 1;
  std::printf("  %-6s curve: ", method);
  for (std::size_t i = 0; i < n; i += step)
    std::printf("(%.2fs, %.4f) ", r.history[i].seconds,
                r.history[i].fitness);
  if (n > 0)
    std::printf("(%.2fs, %.4f)", r.history[n - 1].seconds,
                r.history[n - 1].fitness);
  std::printf("\n");
}

void run_case(const char* label, const tensor::DenseTensor& t, index_t rank,
              double tol, int max_sweeps, double pp_tol) {
  std::printf("\n--- %s: shape ", label);
  for (index_t e : t.shape()) std::printf("%lld ", static_cast<long long>(e));
  std::printf("R=%lld ---\n", static_cast<long long>(rank));

  solver::SolverSpec spec;
  spec.rank = rank;
  spec.stopping.max_sweeps = max_sweeps;
  spec.stopping.fitness_tol = tol;

  {
    spec.engine = core::EngineKind::kDt;
    WallTimer w;
    const auto r = parpp::solve(t, spec);
    print_curve("DT", r, w.seconds());
  }
  {
    spec.engine = core::EngineKind::kMsdt;
    WallTimer w;
    const auto r = parpp::solve(t, spec);
    print_curve("MSDT", r, w.seconds());
  }
  {
    spec.method = solver::Method::kPp;
    spec.engine = core::EngineKind::kMsdt;
    spec.pp.pp_tol = pp_tol;
    WallTimer w;
    const auto r = parpp::solve(t, spec);
    print_curve("PP", r, w.seconds());
  }
  std::fflush(stdout);
}

}  // namespace

int main(int argc, char** argv) {
  bench::Args args(argc, argv);
  const std::string which = args.get_string("--case", "all");
  const int max_sweeps = static_cast<int>(args.get_long("--max-sweeps", 120));
  const double tol = args.get_double("--tol", 1e-5);

  bench::print_header(
      "Figure 5 + Table IV — fitness vs time on application tensors",
      "Ma & Solomonik, IPDPS 2021, Fig. 5a-f & Table IV; synthetic "
      "substitutes at reduced size (see DESIGN.md)");

  if (which == "all" || which == "synth") {
    const auto gen = data::make_collinear_tensor({96, 96, 96}, 24, 0.6, 0.8,
                                                 5001);
    run_case("Fig 5a analogue — synthetic, collinearity [0.6,0.8)",
             gen.tensor, 24, tol, max_sweeps, 0.2);
  }
  if (which == "all" || which == "chem") {
    data::ChemistryOptions chem;
    chem.naux = 160;
    chem.norb = 48;
    chem.terms = 80;
    const auto t = data::make_density_fitting_tensor(chem);
    run_case("Fig 5b analogue — chemistry, low rank", t, 24, tol, max_sweeps,
             0.1);
    run_case("Fig 5c analogue — chemistry, mid rank", t, 48, tol, max_sweeps,
             0.1);
    run_case("Fig 5d analogue — chemistry, high rank", t, 72, tol, max_sweeps,
             0.1);
  }
  if (which == "all" || which == "coil") {
    data::CoilOptions coil;
    coil.height = 32;
    coil.width = 32;
    coil.objects = 8;
    coil.poses = 24;
    const auto t = data::make_coil_tensor(coil);
    run_case("Fig 5e analogue — COIL-like images", t, 20, tol, max_sweeps,
             0.1);
  }
  if (which == "all" || which == "timelapse") {
    data::HyperspectralOptions hs;
    hs.height = 64;
    hs.width = 80;
    const auto t = data::make_hyperspectral_tensor(hs);
    run_case("Fig 5f analogue — time-lapse hyperspectral", t, 50, tol,
             max_sweeps, 0.1);
  }

  std::printf(
      "\nExpected shape (paper): PP reaches any given fitness level at\n"
      "least as fast as MSDT, which beats DT; fitness increases\n"
      "monotonically (PP error is controlled); Table IV counts show most\n"
      "sweeps are PP-approximated once PP engages.\n");
  return 0;
}
