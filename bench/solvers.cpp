// Solver-level benchmark: every registered method x engine through the
// parpp::solve() facade, emitting BENCH_solvers.json (sweeps/sec and
// time-to-fitness per cell) for cross-PR perf tracking.
//
//   bench_solvers [--size 40] [--rank 12] [--target 0.9] [--procs 1]
//                 [--max-sweeps 200] [--tol 1e-6] [--out BENCH_solvers.json]
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "parpp/data/collinearity.hpp"
#include "parpp/solver/solver.hpp"
#include "parpp/util/timer.hpp"

using namespace parpp;

namespace {

struct Cell {
  std::string method;
  std::string engine;
  double fitness = 0.0;
  int sweeps = 0;
  int regular_sweeps = 0, pp_init = 0, pp_approx = 0;
  double seconds = 0.0;
  double sweeps_per_sec = 0.0;
  double time_to_target = -1.0;  ///< seconds; -1 when never reached
};

}  // namespace

int main(int argc, char** argv) {
  bench::Args args(argc, argv);
  const index_t size = args.get_long("--size", 40);
  const index_t rank = args.get_long("--rank", 12);
  const int procs = static_cast<int>(args.get_long("--procs", 1));
  const int max_sweeps = static_cast<int>(args.get_long("--max-sweeps", 200));
  const double tol = args.get_double("--tol", 1e-6);
  const double target = args.get_double("--target", 0.9);
  const std::string out_path =
      args.get_string("--out", "BENCH_solvers.json");

  bench::print_header(
      "Solver matrix — method x engine through parpp::solve()",
      "facade-level sweeps/sec and time-to-fitness (collinearity tensor)");
  std::printf("s=%lld R=%lld procs=%d target=%.2f tol=%.0e\n\n",
              static_cast<long long>(size), static_cast<long long>(rank),
              procs, target, tol);

  const auto gen = data::make_collinear_tensor({size, size, size}, rank, 0.5,
                                               0.9, 97, 1e-3);

  std::vector<Cell> cells;
  std::printf("%-8s %-6s %10s %7s %9s %11s %13s\n", "method", "engine",
              "fitness", "sweeps", "time(s)", "sweeps/sec", "t-to-target");
  for (const solver::MethodEntry& entry : solver::registered_methods()) {
    for (core::EngineKind engine :
         {core::EngineKind::kDt, core::EngineKind::kMsdt}) {
      solver::SolverSpec spec;
      spec.method = entry.method;
      spec.rank = rank;
      spec.engine = engine;
      spec.stopping.max_sweeps = max_sweeps;
      spec.stopping.fitness_tol = tol;
      spec.pp.pp_tol = 0.2;
      if (procs > 1)
        spec.execution = solver::Execution::simulated_parallel(procs);

      WallTimer timer;
      const solver::SolveReport r = parpp::solve(gen.tensor, spec);
      Cell c;
      c.method = std::string(entry.name);
      c.engine = std::string(solver::to_string(engine));
      c.fitness = r.fitness;
      c.sweeps = r.sweeps;
      c.regular_sweeps = r.num_als_sweeps;
      c.pp_init = r.num_pp_init;
      c.pp_approx = r.num_pp_approx;
      c.seconds = timer.seconds();
      c.sweeps_per_sec =
          c.seconds > 0.0 ? static_cast<double>(c.sweeps) / c.seconds : 0.0;
      for (const core::SweepRecord& rec : r.history) {
        if (rec.fitness >= target) {
          c.time_to_target = rec.seconds;
          break;
        }
      }
      cells.push_back(c);
      std::printf("%-8s %-6s %10.6f %7d %9.3f %11.1f %13.3f\n",
                  c.method.c_str(), c.engine.c_str(), c.fitness, c.sweeps,
                  c.seconds, c.sweeps_per_sec, c.time_to_target);
    }
  }

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f,
               "{\n  \"bench\": \"solvers\",\n  \"size\": %lld,\n"
               "  \"rank\": %lld,\n  \"procs\": %d,\n"
               "  \"target_fitness\": %g,\n  \"cells\": [\n",
               static_cast<long long>(size), static_cast<long long>(rank),
               procs, target);
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const Cell& c = cells[i];
    std::fprintf(
        f,
        "    {\"method\": \"%s\", \"engine\": \"%s\", \"fitness\": %.8f, "
        "\"sweeps\": %d, \"regular_sweeps\": %d, \"pp_init\": %d, "
        "\"pp_approx\": %d, \"seconds\": %.6f, \"sweeps_per_sec\": %.3f, "
        "\"time_to_target\": %.6f}%s\n",
        c.method.c_str(), c.engine.c_str(), c.fitness, c.sweeps,
        c.regular_sweeps, c.pp_init, c.pp_approx, c.seconds,
        c.sweeps_per_sec, c.time_to_target,
        i + 1 < cells.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("\nwrote %s (%zu cells)\n", out_path.c_str(), cells.size());
  return 0;
}
