// Ablation (Eq. (7)): contribution of the second-order PP correction V(n).
//
// The PP approximated step adds V(n) on top of the first-order operators
// "to lower the error to a greater extent". This harness quantifies that:
// for a fixed snapshot and a controlled perturbation size, it reports the
// relative MTTKRP approximation error with and without V(n), and the
// end-to-end PP convergence with each setting.
#include <algorithm>
#include <cmath>
#include <cstdio>

#include "bench_util.hpp"
#include "parpp/core/gram.hpp"
#include "parpp/core/pp_als.hpp"
#include "parpp/core/pp_engine.hpp"
#include "parpp/data/collinearity.hpp"
#include "parpp/tensor/mttkrp_naive.hpp"
#include "parpp/tensor/reconstruct.hpp"
#include "parpp/util/timer.hpp"

using namespace parpp;

namespace {

/// Error measured around a *near-converged* snapshot: V(n) is derived from
/// the ALS fixed-point structure, so (as in the PP regime of Algorithm 2)
/// the snapshot must satisfy the normal equations approximately.
double approx_error(const tensor::DenseTensor& t, index_t rank, double delta,
                    bool second_order, std::uint64_t seed) {
  core::CpOptions warm;
  warm.rank = rank;
  warm.max_sweeps = 15;
  warm.tol = 0.0;
  warm.seed = seed;
  auto a_p = core::cp_als(t, warm).factors;
  auto factors = a_p;
  Rng rng(seed + 1);
  for (auto& f : factors) {
    la::Matrix noise(f.rows(), f.cols());
    noise.fill_normal(rng);
    f.axpy(delta, noise);
  }
  // Build operators at the snapshot a_p: PpOperators reads the *current*
  // values of the vector it binds to, so bind to a_p.
  core::PpOperators ops(t, a_p);
  ops.build();
  const auto grams = core::all_grams(factors);
  core::PpApprox approx(ops, factors, a_p, grams);
  approx.set_second_order(second_order);
  double err = 0.0;
  for (int n = 0; n < t.order(); ++n) {
    const la::Matrix want = tensor::mttkrp_krp(t, factors, n);
    err = std::max(err, approx.mttkrp_approx(n).max_abs_diff(want) /
                            want.frobenius_norm());
  }
  return err;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Args args(argc, argv);
  const index_t s = args.get_long("--size", 32);
  const index_t rank = args.get_long("--rank", 12);

  bench::print_header(
      "Ablation — second-order PP correction V(n), Eq. (7)",
      "Ma & Solomonik, IPDPS 2021, Sec. II-D (error control of PP)");

  std::printf("MTTKRP approximation error vs perturbation size (order-4, "
              "s=%lld, R=%lld):\n\n",
              static_cast<long long>(s), static_cast<long long>(rank));
  std::printf("%12s %16s %16s %10s\n", "||dA||/||A||", "err (1st order)",
              "err (1st+2nd)", "gain");
  // Low-rank-plus-noise tensor so the warm-started snapshot is meaningful.
  const std::vector<index_t> shape{s, s, s, s};
  tensor::DenseTensor t = tensor::reconstruct(
      core::init_factors(shape, rank, 51));
  {
    Rng rng(51);
    const double scale = 1e-3 * t.frobenius_norm() /
                         std::sqrt(static_cast<double>(t.size()));
    for (index_t i = 0; i < t.size(); ++i) t[i] += scale * rng.normal();
  }
  for (double delta : {0.08, 0.04, 0.02, 0.01, 0.005}) {
    const double e1 = approx_error(t, rank, delta, false, 52);
    const double e2 = approx_error(t, rank, delta, true, 52);
    std::printf("%12.3f %16.3e %16.3e %9.2fx\n", delta, e1, e2, e1 / e2);
  }

  std::printf("\nEnd-to-end PP convergence with and without V(n) "
              "(collinear order-3 tensor):\n\n");
  const auto gen =
      data::make_collinear_tensor({2 * s, 2 * s, 2 * s}, rank, 0.6, 0.8, 53,
                                  1e-3);
  for (bool second : {true, false}) {
    core::CpOptions opt;
    opt.rank = rank;
    opt.max_sweeps = 150;
    opt.tol = 1e-6;
    core::PpOptions pp;
    pp.pp_tol = 0.2;
    pp.second_order = second;
    WallTimer timer;
    const auto r = core::pp_cp_als(gen.tensor, opt, pp);
    std::printf("  V(n) %-3s: fitness %.6f in %3d sweeps (%d PP-approx), "
                "%.2fs\n",
                second ? "on" : "off", r.fitness, r.sweeps, r.num_pp_approx,
                timer.seconds());
  }

  std::printf(
      "\nExpected shape: the error gain of V(n) grows quadratically as the\n"
      "perturbation shrinks relative to the first-order-only error, and\n"
      "disabling it costs accuracy/extra sweeps end to end.\n");
  return 0;
}
