// Figure 3c-f: per-sweep time breakdown into TTM / mTTV / hadamard / solve /
// others (+ comm, which the paper folds into the kernels it delays).
//
// Paper grids: 2x4x4 and 8x8x8 for order 3 (s_local=400, R=400), 2x2x2x2 and
// 4x4x4x4 for order 4 (s_local=75, R=200). Scaled default grids: 2x2x2 and
// 2x2x4 (order 3), 2x2x2x2 (order 4), with s_local=48/16.
#include <cstdio>

#include "bench_util.hpp"
#include "parpp/par/par_cp_als.hpp"
#include "parpp/par/par_pp.hpp"
#include "parpp/par/planc_baseline.hpp"
#include "parpp/util/rng.hpp"

using namespace parpp;

namespace {

void print_profile_row(const char* method, const Profile& p) {
  std::printf("%-10s %8.4f %8.4f %9.4f %8.4f %8.4f %8.4f | total %8.4f\n",
              method, p.seconds(Kernel::kTTM), p.seconds(Kernel::kMTTV),
              p.seconds(Kernel::kHadamard), p.seconds(Kernel::kSolve),
              p.seconds(Kernel::kComm), p.seconds(Kernel::kOther),
              p.total_seconds());
}

Profile mean_sweep_profile(const std::vector<Profile>& sweeps) {
  Profile mean;
  if (sweeps.empty()) return mean;
  for (const auto& p : sweeps) mean.accumulate(p);
  Profile scaled;
  for (int k = 0; k < static_cast<int>(Kernel::kCount); ++k) {
    scaled.add(static_cast<Kernel>(k),
               mean.seconds(static_cast<Kernel>(k)) /
                   static_cast<double>(sweeps.size()),
               mean.flops(static_cast<Kernel>(k)) /
                   static_cast<double>(sweeps.size()));
  }
  return scaled;
}

void run_case(const char* label, const std::vector<int>& grid, index_t slocal,
              index_t rank, int sweeps) {
  int procs = 1;
  std::vector<index_t> shape;
  for (int d : grid) {
    procs *= d;
    shape.push_back(slocal * d);
  }
  tensor::DenseTensor t(shape);
  Rng rng(23);
  t.fill_uniform(rng);

  std::printf("\n--- %s: grid %s (s_local=%lld, R=%lld) ---\n", label,
              bench::grid_to_string(grid).c_str(),
              static_cast<long long>(slocal), static_cast<long long>(rank));
  std::printf("%-10s %8s %8s %9s %8s %8s %8s\n", "method", "TTM", "mTTV",
              "hadamard", "solve", "comm", "others");

  par::ParOptions opt;
  opt.base.rank = rank;
  opt.base.max_sweeps = sweeps;
  opt.base.tol = 0.0;
  opt.grid_dims = grid;

  const auto planc = par::planc_cp_als(t, procs, opt);
  print_profile_row("PLANC", mean_sweep_profile(planc.sweep_profiles));

  opt.local_engine = core::EngineKind::kDt;
  const auto dt = par::par_cp_als(t, procs, opt);
  print_profile_row("DT", mean_sweep_profile(dt.sweep_profiles));

  opt.local_engine = core::EngineKind::kMsdt;
  opt.engine_options.use_transposed_copy = core::TransposedCopy::kOn;
  const auto msdt = par::par_cp_als(t, procs, opt);
  print_profile_row("MSDT", mean_sweep_profile(msdt.sweep_profiles));

  par::ParPpOptions ppopt;
  ppopt.par = opt;
  const auto pp = par::time_pp_kernels(t, procs, ppopt, sweeps);
  print_profile_row("PP-init", pp.init_profile);
  Profile approx = mean_sweep_profile({pp.approx_profile});
  // approx_profile is summed over `sweeps`; normalize.
  Profile approx_mean;
  for (int k = 0; k < static_cast<int>(Kernel::kCount); ++k)
    approx_mean.add(static_cast<Kernel>(k),
                    approx.seconds(static_cast<Kernel>(k)) / sweeps,
                    approx.flops(static_cast<Kernel>(k)) / sweeps);
  print_profile_row("PP-approx", approx_mean);
  std::fflush(stdout);
}

}  // namespace

int main(int argc, char** argv) {
  bench::Args args(argc, argv);
  const index_t slocal3 = args.get_long("--slocal3", 48);
  const index_t rank3 = args.get_long("--rank3", 32);
  const index_t slocal4 = args.get_long("--slocal4", 16);
  const index_t rank4 = args.get_long("--rank4", 24);
  const int sweeps = static_cast<int>(args.get_long("--sweeps", 3));

  bench::print_header(
      "Figure 3c-f — per-sweep time breakdown by kernel (seconds)",
      "Ma & Solomonik, IPDPS 2021, Fig. 3c/3d (order 3, grids 2x4x4 & 8x8x8) "
      "and Fig. 3e/3f (order 4, grids 2x2x2x2 & 4x4x4x4); scaled down here");

  run_case("Fig 3c analogue (order 3, small grid)", {2, 2, 2}, slocal3, rank3,
           sweeps);
  run_case("Fig 3d analogue (order 3, large grid)", {4, 2, 2}, slocal3, rank3,
           sweeps);
  run_case("Fig 3e analogue (order 4, small grid)", {2, 2, 2, 1}, slocal4,
           rank4, sweeps);
  run_case("Fig 3f analogue (order 4, large grid)", {2, 2, 2, 2}, slocal4,
           rank4, sweeps);

  std::printf(
      "\nExpected shape (paper): TTM dominates every kernel except\n"
      "PP-approx, which is mTTV-bound (memory-bandwidth bound); solve time\n"
      "is visible for PLANC on the larger grids (sequential solve).\n");
  return 0;
}
