// Google-benchmark microbenchmarks for the compute kernels underlying all
// of the paper-reproduction harnesses: GEMM, first-level TTM, batched mTTV,
// tensor transpose, Gram, the SPD solve, and the fused vs KRP+GEMM MTTKRP
// comparison the allocation-free path is judged by.
//
// These quantify the compute/bandwidth character the paper's breakdown
// relies on (TTM compute-bound, mTTV bandwidth-bound). Unless the caller
// passes --benchmark_out, results are also written to BENCH_kernels.json
// (GFLOP/s and GB/s counters per kernel) so successive PRs have a perf
// trajectory to regress against.
#include <benchmark/benchmark.h>

#include <cstring>
#include <string>
#include <vector>

#include "parpp/core/gram.hpp"
#include "parpp/data/sparse_synthetic.hpp"
#include "parpp/la/gemm.hpp"
#include "parpp/la/scalar.hpp"
#include "parpp/la/spd_solve.hpp"
#include "parpp/tensor/csf_tensor.hpp"
#include "parpp/tensor/mttkrp_fused.hpp"
#include "parpp/tensor/mttkrp_naive.hpp"
#include "parpp/tensor/mttkrp_sparse.hpp"
#include "parpp/tensor/mttv.hpp"
#include "parpp/tensor/transpose.hpp"
#include "parpp/tensor/ttm.hpp"
#include "parpp/util/rng.hpp"
#include "parpp/util/workspace.hpp"

using namespace parpp;

namespace {

la::Matrix rand_matrix(index_t r, index_t c, std::uint64_t seed) {
  la::Matrix m(r, c);
  Rng rng(seed);
  m.fill_uniform(rng);
  return m;
}

tensor::DenseTensor rand_tensor(std::vector<index_t> shape,
                                std::uint64_t seed) {
  tensor::DenseTensor t(std::move(shape));
  Rng rng(seed);
  t.fill_uniform(rng);
  return t;
}

std::vector<la::Matrix> rand_factors(const std::vector<index_t>& shape,
                                     index_t rank, std::uint64_t seed) {
  std::vector<la::Matrix> f;
  for (std::size_t m = 0; m < shape.size(); ++m)
    f.push_back(rand_matrix(shape[m], rank, seed + m));
  return f;
}

// Rate counters shared by every benchmark: flops and bytes are per
// iteration; google-benchmark divides by elapsed time.
void set_rates(benchmark::State& state, double flops, double bytes) {
  state.counters["GFLOPs"] = benchmark::Counter(
      flops, benchmark::Counter::kIsIterationInvariantRate,
      benchmark::Counter::kIs1000);
  state.counters["GBs"] = benchmark::Counter(
      bytes, benchmark::Counter::kIsIterationInvariantRate,
      benchmark::Counter::kIs1024);
}

void BM_Gemm(benchmark::State& state) {
  const index_t n = state.range(0);
  const auto a = rand_matrix(n, n, 1);
  const auto b = rand_matrix(n, n, 2);
  for (auto _ : state) {
    auto c = la::matmul(a, b);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
  const double nn = static_cast<double>(n) * static_cast<double>(n);
  set_rates(state, 2.0 * nn * static_cast<double>(n), 3.0 * nn * 8.0);
}
BENCHMARK(BM_Gemm)->Arg(64)->Arg(128)->Arg(256);

void BM_TtmFirstMode(benchmark::State& state) {
  const index_t s = state.range(0);
  const auto t = rand_tensor({s, s, s}, 3);
  const auto a = rand_matrix(s, 32, 4);
  for (auto _ : state) {
    auto out = tensor::ttm_first(t, 0, a);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * s * s * s * 32);
  const double ts = static_cast<double>(t.size());
  set_rates(state, 2.0 * ts * 32.0, (ts + ts / s * 32.0) * 8.0);
}
BENCHMARK(BM_TtmFirstMode)->Arg(48)->Arg(96);

void BM_TtmMiddleMode(benchmark::State& state) {
  const index_t s = state.range(0);
  const auto t = rand_tensor({s, s, s}, 5);
  const auto a = rand_matrix(s, 32, 6);
  for (auto _ : state) {
    auto out = tensor::ttm_first(t, 1, a);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * s * s * s * 32);
  const double ts = static_cast<double>(t.size());
  set_rates(state, 2.0 * ts * 32.0, (ts + ts / s * 32.0) * 8.0);
}
BENCHMARK(BM_TtmMiddleMode)->Arg(48)->Arg(96);

void BM_Mttv(benchmark::State& state) {
  const index_t s = state.range(0);
  const auto k = rand_tensor({s, s, 32}, 7);
  const auto a = rand_matrix(s, 32, 8);
  for (auto _ : state) {
    auto out = tensor::mttv(k, 1, a);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * s * s * 32);
  const double ks = static_cast<double>(k.size());
  set_rates(state, 2.0 * ks, (ks + static_cast<double>(s) * 32.0) * 8.0);
}
BENCHMARK(BM_Mttv)->Arg(128)->Arg(256);

void BM_Transpose(benchmark::State& state) {
  const index_t s = state.range(0);
  const auto t = rand_tensor({s, s, s}, 9);
  const std::vector<int> perm{2, 0, 1};
  for (auto _ : state) {
    auto out = tensor::transpose(t, perm);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * s * s * s);
  set_rates(state, 0.0, 2.0 * static_cast<double>(t.size()) * 8.0);
}
BENCHMARK(BM_Transpose)->Arg(64)->Arg(128);

void BM_Gram(benchmark::State& state) {
  const index_t s = state.range(0);
  const auto a = rand_matrix(s, 64, 10);
  for (auto _ : state) {
    auto g = la::gram(a);
    benchmark::DoNotOptimize(g.data());
  }
  state.SetItemsProcessed(state.iterations() * s * 64 * 64);
  set_rates(state, static_cast<double>(s) * 64.0 * 64.0,
            static_cast<double>(s) * 64.0 * 8.0);
}
BENCHMARK(BM_Gram)->Arg(1024)->Arg(8192);

void BM_SolveGram(benchmark::State& state) {
  const index_t r = state.range(0);
  la::Matrix g = la::matmul(rand_matrix(r, r, 11), rand_matrix(r, r, 11),
                            la::Trans::kYes, la::Trans::kNo);
  for (index_t i = 0; i < r; ++i) g(i, i) += static_cast<double>(r);
  const auto m = rand_matrix(512, r, 12);
  for (auto _ : state) {
    auto x = la::solve_gram(g, m);
    benchmark::DoNotOptimize(x.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * 512 * r * r);
  const double rd = static_cast<double>(r);
  set_rates(state, 2.0 * 512.0 * rd * rd, (2.0 * 512.0 * rd + rd * rd) * 8.0);
}
BENCHMARK(BM_SolveGram)->Arg(32)->Arg(96);

// ---------------------------------------------------------------------------
// Fused vs KRP+GEMM MTTKRP. Default scale: order-3 s=96 R=32 (per mode) and
// the full-sweep aggregate (sum over modes — the per-ALS-sweep cost the
// paper's breakdown charges). The fused path must stay >= 2x the reference.

constexpr index_t kMttkrpS = 128;
constexpr index_t kMttkrpR = 32;

double mttkrp_flops(const tensor::DenseTensor& t, index_t r, int modes) {
  return 2.0 * static_cast<double>(t.size()) * r * modes;
}

// Bytes actually streamed by the fused path: the tensor once per mode plus
// the output. The KRP reference additionally materializes (writes + reads)
// the KRP matrix and an unfolding copy; we charge both paths the same
// useful traffic so the GBs counter reflects *effective* bandwidth.
double mttkrp_bytes(const tensor::DenseTensor& t, index_t r, int modes) {
  return (static_cast<double>(t.size()) +
          static_cast<double>(t.extent(0)) * r) *
         8.0 * modes;
}

void BM_MttkrpKrp(benchmark::State& state) {
  const int mode = static_cast<int>(state.range(0));
  const auto t = rand_tensor({kMttkrpS, kMttkrpS, kMttkrpS}, 13);
  const auto f = rand_factors(t.shape(), kMttkrpR, 14);
  for (auto _ : state) {
    auto m = tensor::mttkrp_krp(t, f, mode);
    benchmark::DoNotOptimize(m.data());
  }
  set_rates(state, mttkrp_flops(t, kMttkrpR, 1), mttkrp_bytes(t, kMttkrpR, 1));
}
BENCHMARK(BM_MttkrpKrp)->Arg(0)->Arg(1)->Arg(2);

void BM_MttkrpFused(benchmark::State& state) {
  const int mode = static_cast<int>(state.range(0));
  const auto t = rand_tensor({kMttkrpS, kMttkrpS, kMttkrpS}, 13);
  const auto f = rand_factors(t.shape(), kMttkrpR, 14);
  util::KernelWorkspace ws;
  la::Matrix out;
  for (auto _ : state) {
    tensor::mttkrp_into(t, f, mode, out, nullptr, &ws);
    benchmark::DoNotOptimize(out.data());
  }
  set_rates(state, mttkrp_flops(t, kMttkrpR, 1), mttkrp_bytes(t, kMttkrpR, 1));
}
BENCHMARK(BM_MttkrpFused)->Arg(0)->Arg(1)->Arg(2);

void BM_MttkrpSweepKrp(benchmark::State& state) {
  const auto t = rand_tensor({kMttkrpS, kMttkrpS, kMttkrpS}, 13);
  const auto f = rand_factors(t.shape(), kMttkrpR, 14);
  for (auto _ : state) {
    for (int mode = 0; mode < 3; ++mode) {
      auto m = tensor::mttkrp_krp(t, f, mode);
      benchmark::DoNotOptimize(m.data());
    }
  }
  set_rates(state, mttkrp_flops(t, kMttkrpR, 3), mttkrp_bytes(t, kMttkrpR, 3));
}
BENCHMARK(BM_MttkrpSweepKrp);

void BM_MttkrpSweepFused(benchmark::State& state) {
  const auto t = rand_tensor({kMttkrpS, kMttkrpS, kMttkrpS}, 13);
  const auto f = rand_factors(t.shape(), kMttkrpR, 14);
  util::KernelWorkspace ws;
  std::vector<la::Matrix> out(3);
  for (auto _ : state) {
    for (int mode = 0; mode < 3; ++mode) {
      tensor::mttkrp_into(t, f, mode, out[static_cast<std::size_t>(mode)],
                          nullptr, &ws);
      benchmark::DoNotOptimize(out[static_cast<std::size_t>(mode)].data());
    }
  }
  set_rates(state, mttkrp_flops(t, kMttkrpR, 3), mttkrp_bytes(t, kMttkrpR, 3));
}
BENCHMARK(BM_MttkrpSweepFused);

void BM_MttkrpOrder4Fused(benchmark::State& state) {
  const auto t = rand_tensor({48, 48, 48, 48}, 15);
  const auto f = rand_factors(t.shape(), kMttkrpR, 16);
  util::KernelWorkspace ws;
  std::vector<la::Matrix> out(4);
  for (auto _ : state) {
    for (int mode = 0; mode < 4; ++mode) {
      tensor::mttkrp_into(t, f, mode, out[static_cast<std::size_t>(mode)],
                          nullptr, &ws);
      benchmark::DoNotOptimize(out[static_cast<std::size_t>(mode)].data());
    }
  }
  set_rates(state, mttkrp_flops(t, kMttkrpR, 4), mttkrp_bytes(t, kMttkrpR, 4));
}
BENCHMARK(BM_MttkrpOrder4Fused);

// ---------------------------------------------------------------------------
// The scalar-type axis (fp32 storage, fp64 accumulation). Two regimes:
//
//   * compute-bound (s=128, R=32 — the default fused config above): fp32
//     mostly measures the conversion overhead, speedup ~1x.
//   * bandwidth-bound (R=8, s=320 — arithmetic intensity R/4 = 2 flop/byte
//     over a 327 MB tensor): the tensor stream has to come from DRAM, which
//     a single core drains far slower than the register-blocked kernel
//     computes, so halving the streamed bytes is the whole game; fp32
//     storage must be >= 1.5x (acceptance bar). The size matters: at
//     ~64 MB the tensor is served out of the (large, shared) L3 on the
//     reference host and the same config reads as compute-bound.

std::vector<float> to_f32(const double* src, index_t n) {
  std::vector<float> out(static_cast<std::size_t>(n));
  for (index_t i = 0; i < n; ++i)
    out[static_cast<std::size_t>(i)] = static_cast<float>(src[i]);
  return out;
}

double mttkrp_bytes_f32(const tensor::DenseTensor& t, index_t r, int modes) {
  return (static_cast<double>(t.size()) +
          static_cast<double>(t.extent(0)) * r) *
         4.0 * modes;
}

void BM_MttkrpFusedF32(benchmark::State& state) {
  const int mode = static_cast<int>(state.range(0));
  const auto t = rand_tensor({kMttkrpS, kMttkrpS, kMttkrpS}, 13);
  const auto f = rand_factors(t.shape(), kMttkrpR, 14);
  const std::vector<float> t32 = to_f32(t.data(), t.size());
  std::vector<la::MatrixF32> mirrors;
  la::sync_mirrors(f, mirrors);
  util::KernelWorkspace ws;
  la::Matrix out;
  for (auto _ : state) {
    tensor::mttkrp_into_f32(t32.data(), t.shape(), mirrors, mode, out,
                            nullptr, &ws);
    benchmark::DoNotOptimize(out.data());
  }
  set_rates(state, mttkrp_flops(t, kMttkrpR, 1),
            mttkrp_bytes_f32(t, kMttkrpR, 1));
}
BENCHMARK(BM_MttkrpFusedF32)->Arg(0)->Arg(1)->Arg(2);

constexpr index_t kBwS = 320;
constexpr index_t kBwR = 8;

void BM_MttkrpFusedBandwidth(benchmark::State& state) {
  const int mode = static_cast<int>(state.range(0));
  const auto t = rand_tensor({kBwS, kBwS, kBwS}, 17);
  const auto f = rand_factors(t.shape(), kBwR, 18);
  util::KernelWorkspace ws;
  la::Matrix out;
  for (auto _ : state) {
    tensor::mttkrp_into(t, f, mode, out, nullptr, &ws);
    benchmark::DoNotOptimize(out.data());
  }
  set_rates(state, mttkrp_flops(t, kBwR, 1), mttkrp_bytes(t, kBwR, 1));
}
BENCHMARK(BM_MttkrpFusedBandwidth)->Arg(0)->Arg(1);

void BM_MttkrpFusedBandwidthF32(benchmark::State& state) {
  const int mode = static_cast<int>(state.range(0));
  const auto t = rand_tensor({kBwS, kBwS, kBwS}, 17);
  const auto f = rand_factors(t.shape(), kBwR, 18);
  const std::vector<float> t32 = to_f32(t.data(), t.size());
  std::vector<la::MatrixF32> mirrors;
  la::sync_mirrors(f, mirrors);
  util::KernelWorkspace ws;
  la::Matrix out;
  for (auto _ : state) {
    tensor::mttkrp_into_f32(t32.data(), t.shape(), mirrors, mode, out,
                            nullptr, &ws);
    benchmark::DoNotOptimize(out.data());
  }
  set_rates(state, mttkrp_flops(t, kBwR, 1), mttkrp_bytes_f32(t, kBwR, 1));
}
BENCHMARK(BM_MttkrpFusedBandwidthF32)->Arg(0)->Arg(1);

// ---------------------------------------------------------------------------
// CSF walk at large extents: every nonzero gathers a random factor row
// (256 B = 4 cache lines at R=32 fp64), so the walk is a bandwidth/latency
// gather over ~190 MB of factors — the sparse bandwidth-bound regime. fp32
// storage halves both the gathered lines per row and the streamed values.
// As with the fused bandwidth config, the factors must overflow the shared
// L3 of the reference host for the gather stream to actually hit DRAM —
// at extent 2^16 (16 MB per factor) the same walk reads as cache-resident.

constexpr index_t kCsfExtent = 1 << 18;
constexpr index_t kCsfR = 32;

const tensor::CsfTensor& big_csf() {
  // ~3M nonzeros at extent 2^18: density 1.7e-10.
  static const tensor::CsfTensor csf(data::make_sparse_random(
      {kCsfExtent, kCsfExtent, kCsfExtent}, 1.7e-10, 21));
  return csf;
}

double csf_flops(const tensor::CsfTensor& t, int mode, index_t r) {
  return 2.0 * static_cast<double>(r) *
         static_cast<double>(t.nnz() + t.tree(mode).internal_nodes);
}

// Bytes-moved model of the root walk: values + one gathered leaf row per
// nonzero + one row per interior node (all at the storage width), plus the
// fp64 output scatter.
double csf_bytes(const tensor::CsfTensor& t, int mode, index_t r,
                 double storage_bytes) {
  return static_cast<double>(t.nnz()) * (1.0 + static_cast<double>(r)) *
             storage_bytes +
         static_cast<double>(t.tree(mode).internal_nodes) *
             static_cast<double>(r) * storage_bytes +
         static_cast<double>(t.extent(mode)) * static_cast<double>(r) * 8.0;
}

void BM_CsfWalkBandwidth(benchmark::State& state) {
  const int mode = static_cast<int>(state.range(0));
  const tensor::CsfTensor& csf = big_csf();
  const auto f = rand_factors(csf.shape(), kCsfR, 22);
  util::KernelWorkspace ws;
  la::Matrix out;
  for (auto _ : state) {
    tensor::mttkrp_csf_into(csf, f, mode, out, nullptr, &ws);
    benchmark::DoNotOptimize(out.data());
  }
  set_rates(state, csf_flops(csf, mode, kCsfR),
            csf_bytes(csf, mode, kCsfR, 8.0));
}
BENCHMARK(BM_CsfWalkBandwidth)->Arg(0)->Arg(1);

void BM_CsfWalkBandwidthF32(benchmark::State& state) {
  const int mode = static_cast<int>(state.range(0));
  const tensor::CsfTensor& csf = big_csf();
  const auto f = rand_factors(csf.shape(), kCsfR, 22);
  std::vector<la::MatrixF32> mirrors;
  la::sync_mirrors(f, mirrors);
  tensor::CsfValsF32 vals32;
  vals32.sync(csf);
  util::KernelWorkspace ws;
  la::Matrix out;
  for (auto _ : state) {
    tensor::mttkrp_csf_into_f32(csf, mirrors, mode, vals32, out, nullptr,
                                &ws);
    benchmark::DoNotOptimize(out.data());
  }
  set_rates(state, csf_flops(csf, mode, kCsfR),
            csf_bytes(csf, mode, kCsfR, 4.0));
}
BENCHMARK(BM_CsfWalkBandwidthF32)->Arg(0)->Arg(1);

}  // namespace

// Custom main: inject a default --benchmark_out=BENCH_kernels.json (JSON
// format) unless the caller already chose an output file.
int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  bool has_out = false;
  for (int i = 1; i < argc; ++i)
    if (std::strncmp(argv[i], "--benchmark_out=", 16) == 0) has_out = true;
  std::string out_flag = "--benchmark_out=BENCH_kernels.json";
  std::string fmt_flag = "--benchmark_out_format=json";
  if (!has_out) {
    args.push_back(out_flag.data());
    args.push_back(fmt_flag.data());
  }
  int new_argc = static_cast<int>(args.size());
  benchmark::Initialize(&new_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(new_argc, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
