// Google-benchmark microbenchmarks for the compute kernels underlying all
// of the paper-reproduction harnesses: GEMM, first-level TTM, batched mTTV,
// tensor transpose, Gram, and the SPD solve.
//
// These quantify the compute/bandwidth character the paper's breakdown
// relies on (TTM compute-bound, mTTV bandwidth-bound).
#include <benchmark/benchmark.h>

#include "parpp/core/gram.hpp"
#include "parpp/la/gemm.hpp"
#include "parpp/la/spd_solve.hpp"
#include "parpp/tensor/mttv.hpp"
#include "parpp/tensor/transpose.hpp"
#include "parpp/tensor/ttm.hpp"
#include "parpp/util/rng.hpp"

using namespace parpp;

namespace {

la::Matrix rand_matrix(index_t r, index_t c, std::uint64_t seed) {
  la::Matrix m(r, c);
  Rng rng(seed);
  m.fill_uniform(rng);
  return m;
}

tensor::DenseTensor rand_tensor(std::vector<index_t> shape,
                                std::uint64_t seed) {
  tensor::DenseTensor t(std::move(shape));
  Rng rng(seed);
  t.fill_uniform(rng);
  return t;
}

void BM_Gemm(benchmark::State& state) {
  const index_t n = state.range(0);
  const auto a = rand_matrix(n, n, 1);
  const auto b = rand_matrix(n, n, 2);
  for (auto _ : state) {
    auto c = la::matmul(a, b);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_Gemm)->Arg(64)->Arg(128)->Arg(256);

void BM_TtmFirstMode(benchmark::State& state) {
  const index_t s = state.range(0);
  const auto t = rand_tensor({s, s, s}, 3);
  const auto a = rand_matrix(s, 32, 4);
  for (auto _ : state) {
    auto out = tensor::ttm_first(t, 0, a);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * s * s * s * 32);
}
BENCHMARK(BM_TtmFirstMode)->Arg(48)->Arg(96);

void BM_TtmMiddleMode(benchmark::State& state) {
  const index_t s = state.range(0);
  const auto t = rand_tensor({s, s, s}, 5);
  const auto a = rand_matrix(s, 32, 6);
  for (auto _ : state) {
    auto out = tensor::ttm_first(t, 1, a);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * s * s * s * 32);
}
BENCHMARK(BM_TtmMiddleMode)->Arg(48)->Arg(96);

void BM_Mttv(benchmark::State& state) {
  const index_t s = state.range(0);
  const auto k = rand_tensor({s, s, 32}, 7);
  const auto a = rand_matrix(s, 32, 8);
  for (auto _ : state) {
    auto out = tensor::mttv(k, 1, a);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * s * s * 32);
}
BENCHMARK(BM_Mttv)->Arg(128)->Arg(256);

void BM_Transpose(benchmark::State& state) {
  const index_t s = state.range(0);
  const auto t = rand_tensor({s, s, s}, 9);
  const std::vector<int> perm{2, 0, 1};
  for (auto _ : state) {
    auto out = tensor::transpose(t, perm);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * s * s * s);
}
BENCHMARK(BM_Transpose)->Arg(64)->Arg(128);

void BM_Gram(benchmark::State& state) {
  const index_t s = state.range(0);
  const auto a = rand_matrix(s, 64, 10);
  for (auto _ : state) {
    auto g = la::gram(a);
    benchmark::DoNotOptimize(g.data());
  }
  state.SetItemsProcessed(state.iterations() * s * 64 * 64);
}
BENCHMARK(BM_Gram)->Arg(1024)->Arg(8192);

void BM_SolveGram(benchmark::State& state) {
  const index_t r = state.range(0);
  la::Matrix g = la::matmul(rand_matrix(r, r, 11), rand_matrix(r, r, 11),
                            la::Trans::kYes, la::Trans::kNo);
  for (index_t i = 0; i < r; ++i) g(i, i) += static_cast<double>(r);
  const auto m = rand_matrix(512, r, 12);
  for (auto _ : state) {
    auto x = la::solve_gram(g, m);
    benchmark::DoNotOptimize(x.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * 512 * r * r);
}
BENCHMARK(BM_SolveGram)->Arg(32)->Arg(96);

}  // namespace

BENCHMARK_MAIN();
