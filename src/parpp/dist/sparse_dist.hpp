// Sparse block distribution over the processor grid (the sparse sibling of
// extract_local_block).
//
// Nonzeros are partitioned by the grid's hyper-rectangular blocks — entry
// ownership follows the same padded BlockDist geometry the dense path and
// the factor distribution use, so the medium-grained collective pattern of
// Algorithm 3 (slice All-Gather, Reduce-Scatter of slice-shaped MTTKRP
// contributions) carries over unchanged. Each rank's block becomes a local
// CsfTensor with block-relative coordinates; blocks that own no nonzeros
// still get a valid (empty) CSF tensor whose MTTKRP contributes zeros.
//
// Partitioning is a plain geometric split of the coalesced entry list; a
// load-balanced (nnz-aware) partition is a ROADMAP item.
#pragma once

#include "parpp/dist/local_problem.hpp"
#include "parpp/tensor/coo_tensor.hpp"
#include "parpp/tensor/csf_tensor.hpp"

namespace parpp::dist {

class SparseBlockDist final : public DistProblem {
 public:
  /// Non-owning view of a coalesced COO tensor (must outlive this and
  /// every local problem made from it).
  explicit SparseBlockDist(const tensor::CooTensor& coo);

  /// Owning adapter for already-compressed storage: reconstructs the
  /// coalesced entry list from `t`'s mode-0 fiber tree. `t` may be
  /// discarded afterwards.
  explicit SparseBlockDist(const tensor::CsfTensor& t);

  // coo_ may point into owned_, so default copies/moves would leave the
  // new object aimed at the source's storage.
  SparseBlockDist(const SparseBlockDist&) = delete;
  SparseBlockDist& operator=(const SparseBlockDist&) = delete;

  [[nodiscard]] const std::vector<index_t>& global_shape() const override;

  /// Scans the entry list for the nonzeros inside the block at `coords`
  /// and builds a local CsfTensor with reindexed (block-relative)
  /// coordinates. Thread-safe: concurrent calls only read the shared list.
  [[nodiscard]] std::unique_ptr<LocalProblem> make_local(
      const BlockDist& dist, const std::vector<int>& coords) const override;

 private:
  tensor::CooTensor owned_;  ///< engaged by the CsfTensor constructor
  const tensor::CooTensor* coo_;
};

}  // namespace parpp::dist
