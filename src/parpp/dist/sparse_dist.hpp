// Sparse block distributions over the processor grid (the sparse siblings
// of extract_local_block).
//
// Nonzeros are partitioned by per-mode boundary arrays — entry ownership
// follows the same padded BlockDist geometry the dense path and the factor
// distribution use, so the medium-grained collective pattern of Algorithm 3
// (slice All-Gather, Reduce-Scatter of slice-shaped MTTKRP contributions)
// carries over unchanged. Each rank's block becomes a local CsfTensor with
// block-relative coordinates; blocks that own no nonzeros still get a valid
// (empty) CSF tensor whose MTTKRP contributes zeros.
//
// Two geometries are offered behind the same DistProblem interface:
//
//   * SparseBlockDist — the grid's uniform hyper-rectangular blocks. On
//     skewed tensors (power-law fibers) the blocks holding the head slices
//     carry most of the nonzeros while other ranks idle.
//   * BalancedSparseDist — nnz-balanced boundaries: per mode, a
//     chains-on-chains partition of the slice nnz histogram (exact minimal
//     bottleneck via parametric search) equalizes per-slab nnz, which on
//     independently-skewed modes equalizes per-block nnz. The padded local
//     extent grows to the widest slab, so slice collectives exchange more
//     words; the trade wins whenever the critical-path MTTKRP dominates.
//
// Setup cost: every nonzero is assigned to its owner block in one shared
// bucketing pass over the entry list (plus one pass for the balanced
// histograms), not one full scan per rank — make_local() then hands each
// rank its prebuilt coalesced bucket. partition_passes() exposes the pass
// count so tests can pin the O(nnz) setup.
#pragma once

#include <mutex>
#include <vector>

#include "parpp/dist/local_problem.hpp"
#include "parpp/tensor/coo_tensor.hpp"
#include "parpp/tensor/csf_tensor.hpp"

namespace parpp::dist {

class SparseBlockDist : public DistProblem {
 public:
  /// Non-owning view of a coalesced COO tensor (must outlive this and
  /// every local problem made from it).
  explicit SparseBlockDist(const tensor::CooTensor& coo);

  /// Owning adapter for already-compressed storage: reconstructs the
  /// coalesced entry list from `t`'s mode-0 fiber tree. `t` may be
  /// discarded afterwards.
  explicit SparseBlockDist(const tensor::CsfTensor& t);

  // coo_ may point into owned_, so default copies/moves would leave the
  // new object aimed at the source's storage.
  SparseBlockDist(const SparseBlockDist&) = delete;
  SparseBlockDist& operator=(const SparseBlockDist&) = delete;

  [[nodiscard]] const std::vector<index_t>& global_shape() const override;

  /// Hands out this rank's bucket of the shared partition as a local
  /// CsfTensor with block-relative coordinates. The first caller for a
  /// given geometry runs the single O(nnz) bucketing pass (serialized);
  /// concurrent callers with the same geometry only read their bucket.
  [[nodiscard]] std::unique_ptr<LocalProblem> make_local(
      const BlockDist& dist, const std::vector<int>& coords) const override;

  /// Number of full entry-list bucketing passes run so far: one per
  /// distinct BlockDist geometry, regardless of the rank count (the old
  /// per-rank scan was O(nprocs * nnz); this pins O(nnz)).
  [[nodiscard]] std::size_t partition_passes() const;

 protected:
  [[nodiscard]] const tensor::CooTensor& coo() const { return *coo_; }

 private:
  /// The shared bucketing pass (call with mu_ held).
  void rebuild_buckets(const BlockDist& dist) const;

  tensor::CooTensor owned_;  ///< engaged by the CsfTensor constructor
  const tensor::CooTensor* coo_;

  // Bucket cache for the current geometry, built lazily under mu_ by the
  // first make_local of a run, read by every rank, and dropped once all
  // blocks have been fetched (each coordinate asks exactly once per run,
  // so holding the copy longer would waste O(nnz) memory). Rebuilt if a
  // later call arrives with a different geometry (e.g. another grid).
  mutable std::mutex mu_;
  mutable std::vector<std::vector<index_t>> cached_bounds_;
  mutable std::vector<tensor::CooTensor> buckets_;  ///< row-major by coords
  mutable std::vector<char> taken_;  ///< buckets already moved out
  mutable index_t fetched_ = 0;
  mutable std::size_t partition_passes_ = 0;
};

/// nnz-balanced sparse distribution: same bucketing machinery, non-uniform
/// chains-on-chains boundaries. Slice nnz histograms are accumulated once
/// at construction (O(nnz)); each make_block_dist() call only partitions
/// the histograms for the requested grid (O(sum extents * log nnz)).
class BalancedSparseDist final : public SparseBlockDist {
 public:
  explicit BalancedSparseDist(const tensor::CooTensor& coo);
  explicit BalancedSparseDist(const tensor::CsfTensor& t);

  [[nodiscard]] BlockDist make_block_dist(
      const mpsim::ProcessorGrid& grid) const override;

 private:
  void build_histograms();

  std::vector<std::vector<index_t>> slice_nnz_;  ///< per mode, per slice
};

/// Chains-on-chains partition of `loads` into `parts` contiguous chunks
/// minimizing the bottleneck chunk load (parametric search over the exact
/// optimum). Returns parts+1 monotone boundaries with front 0 and back
/// loads.size(); trailing chunks may be empty. Exposed for tests.
[[nodiscard]] std::vector<index_t> chains_on_chains(
    const std::vector<index_t>& loads, int parts);

/// Factory for the partition axis: wraps `t` in the matching DistProblem.
[[nodiscard]] std::unique_ptr<DistProblem> make_sparse_problem(
    const tensor::CsfTensor& t, PartitionKind partition);

}  // namespace parpp::dist
