// Factor-matrix distribution for Algorithm 3 (paper Sec. II-A).
//
// For each mode m the global factor A(m) is row-distributed over *all* P
// ranks: grid coordinate x_m owns the slab of local_extent(m) rows starting
// at slab_offset(m, x_m), and inside the mode-m slice group (the P / I_m
// ranks sharing x_m) each member owns a contiguous chunk of rows_q(m) rows
// of that slab, ordered by slice rank. Two representations are kept:
//
//   * q(m)     — the rows_q(m) x R chunk this rank updates ("Q rows");
//   * slice(m) — the full local_extent(m) x R slab, assembled from the
//                slice group by All-Gather, which is what the local MTTKRP
//                engines consume (its rows match the local tensor block).
//
// reduce_scatter() is the inverse collective: slice-shaped local MTTKRP
// contributions are summed across the slice group and scattered back to
// Q-row chunks.
#pragma once

#include <vector>

#include "parpp/dist/dist_tensor.hpp"
#include "parpp/la/matrix.hpp"
#include "parpp/mpsim/grid.hpp"

namespace parpp::dist {

class FactorDist {
 public:
  /// Binds to a grid and block distribution (both must outlive this).
  /// `rank` is the CP rank R (factor column count).
  FactorDist(const mpsim::ProcessorGrid& grid, const BlockDist& dist,
             index_t rank);

  [[nodiscard]] int order() const { return dist_->order(); }
  [[nodiscard]] index_t cp_rank() const { return rank_; }

  /// This rank's Q-row chunk of factor `mode` (mutable: drivers overwrite
  /// it after each solve, then call gather_slice()).
  [[nodiscard]] la::Matrix& q(int mode) {
    return q_[static_cast<std::size_t>(mode)];
  }
  [[nodiscard]] const la::Matrix& q(int mode) const {
    return q_[static_cast<std::size_t>(mode)];
  }

  /// Assembled slab of factor rows matching the local tensor block.
  [[nodiscard]] const la::Matrix& slice(int mode) const {
    return slices_[static_cast<std::size_t>(mode)];
  }
  /// All slice matrices; stable address, suitable for binding an engine.
  [[nodiscard]] const std::vector<la::Matrix>& slices() const {
    return slices_;
  }

  /// Global row index of Q row `r` of `mode`, or -1 for a padding row.
  [[nodiscard]] index_t q_row_global(int mode, index_t r) const;

  /// Local copy of both factor representations, for sweep rollback. The
  /// pair restores together with restore() — no collective involved, so
  /// every rank can roll back in lockstep after a replicated verdict.
  struct Snapshot {
    std::vector<la::Matrix> q, slices;
  };
  [[nodiscard]] Snapshot snapshot() const { return {q_, slices_}; }
  /// Restores a snapshot taken on this rank. Assignment keeps the slices
  /// vector's address stable, so engines bound via slices() stay valid
  /// (they must still be re-notified of the changed factor values).
  void restore(const Snapshot& s) {
    PARPP_CHECK(s.q.size() == q_.size() && s.slices.size() == slices_.size(),
                "FactorDist::restore: snapshot shape mismatch");
    q_ = s.q;
    slices_ = s.slices;
  }

  /// Overwrites q(mode) with this rank's rows of a replicated global factor
  /// (padding rows zeroed). Does not touch slice(mode).
  void set_q_from_global(int mode, const la::Matrix& global);

  /// Collective (slice group): rebuilds slice(mode) from the members' Q
  /// rows. Call after q(mode) changes.
  void gather_slice(int mode);

  /// Collective (slice group): sums slice-shaped `contribution` across the
  /// group and returns this rank's Q-row chunk of the total.
  [[nodiscard]] la::Matrix reduce_scatter(int mode,
                                          const la::Matrix& contribution);

  /// Collective (world): assembles the full, unpadded global factor.
  [[nodiscard]] la::Matrix allgather_global(int mode);

 private:
  [[nodiscard]] int slice_rank(int mode) const {
    return grid_->slice_comm(mode).rank();
  }

  const mpsim::ProcessorGrid* grid_;
  const BlockDist* dist_;
  index_t rank_;
  std::vector<la::Matrix> q_;
  std::vector<la::Matrix> slices_;
};

}  // namespace parpp::dist
