// Storage-agnostic distributed tensor problems for the parallel drivers.
//
// dist::LocalProblem is the per-rank analogue of core::TensorProblem: the
// complete contract between one grid block's storage and the Algorithm 3/4
// driver loop — the (padded) block shape the slice factors must match, the
// block's squared Frobenius norm feeding the Eq. (3) residual reductions,
// the local MTTKRP engine factory, and the pairwise-perturbation operator
// factory for the Algorithm 4 initialization. dist::DistProblem hands out
// LocalProblems per grid coordinate; the historical dense slab extraction
// (extract_local_block) is one implementation (DenseBlockProblem, bit for
// bit the old behavior), the sparse COO partition another
// (SparseBlockDist, sparse_dist.hpp). Drivers written against these
// interfaces cannot see the storage class, so they cannot densify.
#pragma once

#include <memory>
#include <vector>

#include "parpp/core/mttkrp_engine.hpp"
#include "parpp/dist/dist_tensor.hpp"

namespace parpp::dist {

/// How a DistProblem carves the global index space into grid blocks.
enum class PartitionKind {
  kUniformBlocks,  ///< uniform hyper-rectangular slabs (Sec. II-A geometry)
  kBalancedNnz,    ///< nnz-balanced per-mode chains-on-chains boundaries
};

class LocalProblem {
 public:
  virtual ~LocalProblem() = default;

  /// Padded block extents; equals BlockDist::local_shape() of the build.
  [[nodiscard]] virtual const std::vector<index_t>& shape() const = 0;

  /// Squared Frobenius norm of the block (padding contributes zero); the
  /// world All-Reduce of these is ||T||^2 in Eq. (3).
  [[nodiscard]] virtual double squared_norm() const = 0;

  /// Engine over the block storage, bound to the slice factor matrices
  /// (dist::FactorDist::slices(); both must outlive the engine).
  [[nodiscard]] virtual std::unique_ptr<core::MttkrpEngine> make_engine(
      core::EngineKind kind, const std::vector<la::Matrix>& slice_factors,
      Profile* profile, const core::EngineOptions& options) const = 0;

  /// PP operators over the block storage (Algorithm 4 line 2); bound like
  /// the engine. `options` carries the storage scalar (sparse blocks honor
  /// kF32; dense blocks reject it). The LocalProblem must outlive the
  /// returned operators.
  [[nodiscard]] virtual std::unique_ptr<core::PpOperators> make_pp_operators(
      const std::vector<la::Matrix>& slice_factors, Profile* profile,
      const core::EngineOptions& options) const = 0;

  /// Nonzeros stored in the block, or -1 when the storage has no meaningful
  /// sparsity (dense slabs). Feeds the per-rank load-imbalance report.
  [[nodiscard]] virtual index_t nnz() const { return -1; }
};

/// A global decomposition input that knows how to carve itself into
/// per-rank local problems over a BlockDist.
class DistProblem {
 public:
  virtual ~DistProblem() = default;

  [[nodiscard]] virtual const std::vector<index_t>& global_shape() const = 0;

  /// Block geometry over `grid`. The default is the uniform split; nnz-aware
  /// problems override this with their non-uniform boundaries. Called
  /// concurrently from every simulated rank body; every rank must receive
  /// an identical geometry (deterministic, grid-only inputs).
  [[nodiscard]] virtual BlockDist make_block_dist(
      const mpsim::ProcessorGrid& grid) const {
    return BlockDist(grid, global_shape());
  }

  /// Builds the local problem for the block at grid coordinates `coords`.
  /// Called concurrently from every simulated rank body — implementations
  /// must be thread-safe (const reads of the shared global storage).
  [[nodiscard]] virtual std::unique_ptr<LocalProblem> make_local(
      const BlockDist& dist, const std::vector<int>& coords) const = 0;
};

/// Dense storage: hyper-rectangular zero-padded slabs via
/// extract_local_block (Sec. II-A). Non-owning — `t` must outlive this and
/// every local problem made from it.
class DenseBlockProblem final : public DistProblem {
 public:
  explicit DenseBlockProblem(const tensor::DenseTensor& t) : t_(&t) {}

  [[nodiscard]] const std::vector<index_t>& global_shape() const override {
    return t_->shape();
  }
  [[nodiscard]] std::unique_ptr<LocalProblem> make_local(
      const BlockDist& dist, const std::vector<int>& coords) const override;

 private:
  const tensor::DenseTensor* t_;
};

}  // namespace parpp::dist
