#include "parpp/dist/local_problem.hpp"

#include "parpp/core/pp_operators.hpp"

namespace parpp::dist {

namespace {

class DenseLocalProblem final : public LocalProblem {
 public:
  explicit DenseLocalProblem(tensor::DenseTensor block)
      : block_(std::move(block)), sq_norm_(block_.squared_norm()) {}

  [[nodiscard]] const std::vector<index_t>& shape() const override {
    return block_.shape();
  }
  [[nodiscard]] double squared_norm() const override { return sq_norm_; }

  [[nodiscard]] std::unique_ptr<core::MttkrpEngine> make_engine(
      core::EngineKind kind, const std::vector<la::Matrix>& slice_factors,
      Profile* profile, const core::EngineOptions& options) const override {
    return core::make_engine(kind, block_, slice_factors, profile, options);
  }

  [[nodiscard]] std::unique_ptr<core::PpOperators> make_pp_operators(
      const std::vector<la::Matrix>& slice_factors, Profile* profile,
      const core::EngineOptions& options) const override {
    PARPP_CHECK(options.scalar == la::Scalar::kF64,
                "make_pp_operators: dense PP operator chains are fp64-only");
    return std::make_unique<core::PpOperators>(block_, slice_factors,
                                               profile);
  }

 private:
  tensor::DenseTensor block_;
  double sq_norm_;
};

}  // namespace

std::unique_ptr<LocalProblem> DenseBlockProblem::make_local(
    const BlockDist& dist, const std::vector<int>& coords) const {
  return std::make_unique<DenseLocalProblem>(
      extract_local_block(*t_, dist, coords));
}

}  // namespace parpp::dist
