#include "parpp/dist/dist_tensor.hpp"

#include <algorithm>

namespace parpp::dist {

namespace {

index_t round_up(index_t v, index_t multiple) {
  return (v + multiple - 1) / multiple * multiple;
}

}  // namespace

BlockDist::BlockDist(const mpsim::ProcessorGrid& grid,
                     std::vector<index_t> global_shape)
    : global_shape_(std::move(global_shape)) {
  PARPP_CHECK(static_cast<int>(global_shape_.size()) == grid.order(),
              "BlockDist: tensor order ", global_shape_.size(),
              " != grid order ", grid.order());
  bounds_.resize(global_shape_.size());
  for (int m = 0; m < order(); ++m) {
    const index_t s = global_shape_[static_cast<std::size_t>(m)];
    PARPP_CHECK(s >= 0, "BlockDist: negative extent");
    const index_t dim = grid.dim(m);
    // Uniform boundaries at multiples of the padded per-rank extent; the
    // padded extent is fixed first (ceil(s / dim), slice-rounded), so the
    // trailing boundary may point past the true extent (all-padding slabs).
    const index_t base = (s + dim - 1) / dim;
    const index_t padded = round_up(std::max<index_t>(base, 1),
                                    grid.slice_size(m));
    auto& b = bounds_[static_cast<std::size_t>(m)];
    b.resize(static_cast<std::size_t>(dim) + 1);
    for (index_t c = 0; c <= dim; ++c)
      b[static_cast<std::size_t>(c)] = c * padded;
  }
  finalize(grid);
}

BlockDist::BlockDist(const mpsim::ProcessorGrid& grid,
                     std::vector<index_t> global_shape,
                     std::vector<std::vector<index_t>> bounds)
    : global_shape_(std::move(global_shape)), bounds_(std::move(bounds)) {
  PARPP_CHECK(static_cast<int>(global_shape_.size()) == grid.order(),
              "BlockDist: tensor order ", global_shape_.size(),
              " != grid order ", grid.order());
  PARPP_CHECK(bounds_.size() == global_shape_.size(),
              "BlockDist: need one boundary array per mode");
  for (int m = 0; m < order(); ++m) {
    const auto& b = bounds_[static_cast<std::size_t>(m)];
    const index_t s = global_shape_[static_cast<std::size_t>(m)];
    PARPP_CHECK(static_cast<int>(b.size()) == grid.dim(m) + 1,
                "BlockDist: mode ", m, " boundary count ", b.size(),
                " != grid dim + 1");
    PARPP_CHECK(b.front() == 0, "BlockDist: boundaries must start at 0");
    PARPP_CHECK(b.back() >= s,
                "BlockDist: boundaries must cover the global extent");
    for (std::size_t c = 1; c < b.size(); ++c)
      PARPP_CHECK(b[c] >= b[c - 1],
                  "BlockDist: boundaries must be non-decreasing");
  }
  finalize(grid);
}

void BlockDist::finalize(const mpsim::ProcessorGrid& grid) {
  local_shape_.resize(global_shape_.size());
  rows_q_.resize(global_shape_.size());
  for (int m = 0; m < order(); ++m) {
    const auto& b = bounds_[static_cast<std::size_t>(m)];
    // Common padded extent: the widest owned slab, rounded up so the slice
    // group can split it into equal Q-row chunks.
    index_t widest = 1;
    for (std::size_t c = 0; c + 1 < b.size(); ++c) {
      const index_t end = std::min(b[c + 1],
                                   global_shape_[static_cast<std::size_t>(m)]);
      widest = std::max(widest, end - std::min(b[c], end));
    }
    const index_t padded = round_up(widest, grid.slice_size(m));
    local_shape_[static_cast<std::size_t>(m)] = padded;
    rows_q_[static_cast<std::size_t>(m)] = padded / grid.slice_size(m);
  }
}

tensor::DenseTensor extract_local_block(const tensor::DenseTensor& global,
                                        const BlockDist& dist,
                                        const std::vector<int>& coords) {
  const int n = dist.order();
  PARPP_CHECK(static_cast<int>(coords.size()) == n,
              "extract_local_block: coordinate order mismatch");
  tensor::DenseTensor local(dist.local_shape());
  if (local.size() == 0) return local;

  std::vector<index_t> offset(static_cast<std::size_t>(n));
  std::vector<index_t> end(static_cast<std::size_t>(n));
  for (int m = 0; m < n; ++m) {
    const int c = coords[static_cast<std::size_t>(m)];
    offset[static_cast<std::size_t>(m)] = dist.slab_offset(m, c);
    end[static_cast<std::size_t>(m)] = dist.slab_end(m, c);
  }

  std::vector<index_t> lidx(static_cast<std::size_t>(n), 0);
  std::vector<index_t> gidx(static_cast<std::size_t>(n), 0);
  index_t lin = 0;
  do {
    bool inside = true;
    for (int m = 0; m < n; ++m) {
      const auto um = static_cast<std::size_t>(m);
      gidx[um] = offset[um] + lidx[um];
      // Rows past the owned range are padding, even when the padded slab
      // overlaps the next coordinate's rows (non-uniform boundaries).
      if (gidx[um] >= end[um]) {
        inside = false;
        break;
      }
    }
    local[lin++] = inside ? global.at(gidx) : 0.0;
  } while (tensor::next_index(local.shape(), lidx));
  return local;
}

}  // namespace parpp::dist
