#include "parpp/dist/dist_tensor.hpp"

namespace parpp::dist {

namespace {

index_t round_up(index_t v, index_t multiple) {
  return (v + multiple - 1) / multiple * multiple;
}

}  // namespace

BlockDist::BlockDist(const mpsim::ProcessorGrid& grid,
                     std::vector<index_t> global_shape)
    : global_shape_(std::move(global_shape)) {
  PARPP_CHECK(static_cast<int>(global_shape_.size()) == grid.order(),
              "BlockDist: tensor order ", global_shape_.size(),
              " != grid order ", grid.order());
  local_shape_.resize(global_shape_.size());
  rows_q_.resize(global_shape_.size());
  for (int m = 0; m < order(); ++m) {
    const index_t s = global_shape_[static_cast<std::size_t>(m)];
    PARPP_CHECK(s >= 0, "BlockDist: negative extent");
    const index_t dim = grid.dim(m);
    const index_t slice = grid.slice_size(m);
    // Per-rank extent: ceil(s / dim), then padded up so the slice group can
    // split it into equal Q-row chunks.
    const index_t base = (s + dim - 1) / dim;
    const index_t padded = round_up(std::max<index_t>(base, 1), slice);
    local_shape_[static_cast<std::size_t>(m)] = padded;
    rows_q_[static_cast<std::size_t>(m)] = padded / slice;
  }
}

tensor::DenseTensor extract_local_block(const tensor::DenseTensor& global,
                                        const BlockDist& dist,
                                        const std::vector<int>& coords) {
  const int n = dist.order();
  PARPP_CHECK(static_cast<int>(coords.size()) == n,
              "extract_local_block: coordinate order mismatch");
  tensor::DenseTensor local(dist.local_shape());
  if (local.size() == 0) return local;

  std::vector<index_t> offset(static_cast<std::size_t>(n));
  for (int m = 0; m < n; ++m)
    offset[static_cast<std::size_t>(m)] =
        dist.slab_offset(m, coords[static_cast<std::size_t>(m)]);

  std::vector<index_t> lidx(static_cast<std::size_t>(n), 0);
  std::vector<index_t> gidx(static_cast<std::size_t>(n), 0);
  index_t lin = 0;
  do {
    bool inside = true;
    for (int m = 0; m < n; ++m) {
      const auto um = static_cast<std::size_t>(m);
      gidx[um] = offset[um] + lidx[um];
      if (gidx[um] >= global.extent(m)) {
        inside = false;
        break;
      }
    }
    local[lin++] = inside ? global.at(gidx) : 0.0;
  } while (tensor::next_index(local.shape(), lidx));
  return local;
}

}  // namespace parpp::dist
