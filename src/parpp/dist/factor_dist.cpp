#include "parpp/dist/factor_dist.hpp"

#include <algorithm>

namespace parpp::dist {

namespace {

// Slice rank of an arbitrary world rank for `mode`: the grid builds slice
// communicators with key = flattened remaining coordinates, and every
// combination is present, so the key *is* the slice rank.
int slice_rank_of(const mpsim::ProcessorGrid& grid, int mode,
                  const std::vector<int>& coords) {
  int key = 0;
  for (int m = 0; m < grid.order(); ++m) {
    if (m == mode) continue;
    key = key * grid.dim(m) + coords[static_cast<std::size_t>(m)];
  }
  return key;
}

}  // namespace

FactorDist::FactorDist(const mpsim::ProcessorGrid& grid, const BlockDist& dist,
                       index_t rank)
    : grid_(&grid), dist_(&dist), rank_(rank) {
  PARPP_CHECK(rank_ >= 1, "FactorDist: CP rank must be positive");
  q_.reserve(static_cast<std::size_t>(order()));
  slices_.reserve(static_cast<std::size_t>(order()));
  for (int m = 0; m < order(); ++m) {
    q_.emplace_back(dist_->rows_q(m), rank_);
    slices_.emplace_back(dist_->local_extent(m), rank_);
  }
}

index_t FactorDist::q_row_global(int mode, index_t r) const {
  PARPP_ASSERT(r >= 0 && r < dist_->rows_q(mode), "q_row_global: bad row");
  const int coord = grid_->coord(mode);
  const index_t g = dist_->slab_offset(mode, coord) +
                    static_cast<index_t>(slice_rank(mode)) *
                        dist_->rows_q(mode) +
                    r;
  // Rows at or past the slab's owned range are padding. With non-uniform
  // boundaries the padded slab can overlap the next coordinate's rows, so
  // the bound is the per-coordinate slab end, not the global extent —
  // every global row keeps exactly one owner.
  return g < dist_->slab_end(mode, coord) ? g : -1;
}

void FactorDist::set_q_from_global(int mode, const la::Matrix& global) {
  PARPP_CHECK(global.cols() == rank_, "set_q_from_global: column mismatch");
  PARPP_CHECK(global.rows() ==
                  dist_->global_shape()[static_cast<std::size_t>(mode)],
              "set_q_from_global: row count != global extent");
  la::Matrix& q = q_[static_cast<std::size_t>(mode)];
  for (index_t r = 0; r < q.rows(); ++r) {
    const index_t g = q_row_global(mode, r);
    if (g >= 0) {
      std::copy(global.row(g), global.row(g) + rank_, q.row(r));
    } else {
      std::fill(q.row(r), q.row(r) + rank_, 0.0);
    }
  }
}

void FactorDist::gather_slice(int mode) {
  const auto& comm = grid_->slice_comm(mode);
  la::Matrix& slice = slices_[static_cast<std::size_t>(mode)];
  const la::Matrix& q = q_[static_cast<std::size_t>(mode)];
  PARPP_ASSERT(slice.rows() == q.rows() * comm.size(),
               "gather_slice: slab/chunk mismatch");
  // Chunks land in slice-rank order, which is exactly slab row order.
  comm.allgather(q.data(), q.size(), slice.data(),
                 PARPP_COMM_TAG("factor-slice-allgather"));
}

la::Matrix FactorDist::reduce_scatter(int mode,
                                      const la::Matrix& contribution) {
  PARPP_CHECK(contribution.rows() == dist_->local_extent(mode) &&
                  contribution.cols() == rank_,
              "reduce_scatter: contribution is not slice-shaped");
  const auto& comm = grid_->slice_comm(mode);
  la::Matrix out(dist_->rows_q(mode), rank_);
  comm.reduce_scatter_sum(contribution.data(), contribution.size(),
                          out.data(), PARPP_COMM_TAG("mttkrp-reduce-scatter"));
  return out;
}

la::Matrix FactorDist::allgather_global(int mode) {
  const auto& world = grid_->world();
  const la::Matrix& q = q_[static_cast<std::size_t>(mode)];
  std::vector<double> all(static_cast<std::size_t>(q.size()) *
                          static_cast<std::size_t>(world.size()));
  world.allgather(q.data(), q.size(), all.data(),
                  PARPP_COMM_TAG("factor-global-allgather"));

  const index_t s = dist_->global_shape()[static_cast<std::size_t>(mode)];
  const index_t rows_q = dist_->rows_q(mode);
  la::Matrix global(s, rank_);
  for (int p = 0; p < world.size(); ++p) {
    const auto coords = grid_->coords_of(p);
    const int coord = coords[static_cast<std::size_t>(mode)];
    const index_t start =
        dist_->slab_offset(mode, coord) +
        static_cast<index_t>(slice_rank_of(*grid_, mode, coords)) * rows_q;
    // Stop at the slab's owned range (mirrors q_row_global): padding rows
    // of p's chunk must not clobber the owner's rows.
    const index_t end = dist_->slab_end(mode, coord);
    const double* src = all.data() + static_cast<index_t>(p) * rows_q * rank_;
    for (index_t r = 0; r < rows_q; ++r) {
      const index_t g = start + r;
      if (g >= end) break;
      std::copy(src + r * rank_, src + (r + 1) * rank_, global.row(g));
    }
  }
  return global;
}

}  // namespace parpp::dist
