#include "parpp/dist/sparse_dist.hpp"

#include <algorithm>

#include "parpp/core/pp_operators.hpp"
#include "parpp/core/sparse_engine.hpp"

namespace parpp::dist {

namespace {

class SparseLocalProblem final : public LocalProblem {
 public:
  explicit SparseLocalProblem(const tensor::CooTensor& local_coo)
      : block_(local_coo) {}

  [[nodiscard]] const std::vector<index_t>& shape() const override {
    return block_.shape();
  }
  [[nodiscard]] double squared_norm() const override {
    return block_.squared_norm();
  }
  [[nodiscard]] index_t nnz() const override { return block_.nnz(); }

  [[nodiscard]] std::unique_ptr<core::MttkrpEngine> make_engine(
      core::EngineKind kind, const std::vector<la::Matrix>& slice_factors,
      Profile* profile, const core::EngineOptions& options) const override {
    // The CSF factory resolves every EngineKind to the sparse engine, so a
    // spec tuned for dense local engines still runs on a sparse block.
    return core::make_engine(kind, block_, slice_factors, profile, options);
  }

  [[nodiscard]] std::unique_ptr<core::PpOperators> make_pp_operators(
      const std::vector<la::Matrix>& slice_factors, Profile* profile,
      const core::EngineOptions& options) const override {
    return std::make_unique<core::PpOperators>(block_, slice_factors,
                                               profile, options.scalar);
  }

 private:
  tensor::CsfTensor block_;
};

}  // namespace

SparseBlockDist::SparseBlockDist(const tensor::CooTensor& coo) : coo_(&coo) {
  PARPP_CHECK(coo.coalesced(),
              "SparseBlockDist: COO input must be coalesced — call "
              "CooTensor::coalesce() first");
}

SparseBlockDist::SparseBlockDist(const tensor::CsfTensor& t)
    : owned_(t.to_coo()), coo_(&owned_) {}

const std::vector<index_t>& SparseBlockDist::global_shape() const {
  return coo_->shape();
}

std::size_t SparseBlockDist::partition_passes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return partition_passes_;
}

std::unique_ptr<LocalProblem> SparseBlockDist::make_local(
    const BlockDist& dist, const std::vector<int>& coords) const {
  const int n = dist.order();
  PARPP_CHECK(static_cast<int>(coords.size()) == n,
              "SparseBlockDist: coordinate order mismatch");
  PARPP_CHECK(coo_->shape() == dist.global_shape(),
              "SparseBlockDist: BlockDist shape mismatch");

  index_t flat = 0;
  for (int m = 0; m < n; ++m) {
    const int c = coords[static_cast<std::size_t>(m)];
    PARPP_CHECK(c >= 0 && c < dist.blocks(m),
                "SparseBlockDist: coordinate out of grid");
    flat = flat * dist.blocks(m) + c;
  }

  // The first rank to arrive with this geometry runs the shared bucketing
  // pass; everyone else (the common case: all P ranks of one run) finds
  // the cache hot and *moves* its bucket out — O(1) under the lock, so
  // ranks never serialize on per-bucket memory traffic — while the
  // expensive CSF build runs outside, concurrently. Each coordinate
  // fetches once per run: after the last fetch the (emptied) cache is
  // dropped rather than carried for the problem's lifetime, and an
  // out-of-contract re-fetch of an already-taken bucket just re-runs the
  // bucketing pass instead of silently returning an empty block.
  tensor::CooTensor bucket;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (cached_bounds_ != dist.bounds() ||
        taken_[static_cast<std::size_t>(flat)])
      rebuild_buckets(dist);
    bucket = std::move(buckets_[static_cast<std::size_t>(flat)]);
    taken_[static_cast<std::size_t>(flat)] = 1;
    if (++fetched_ == static_cast<index_t>(buckets_.size())) {
      buckets_.clear();
      taken_.clear();
      cached_bounds_.clear();
      fetched_ = 0;
    }
  }
  return std::make_unique<SparseLocalProblem>(bucket);
}

void SparseBlockDist::rebuild_buckets(const BlockDist& dist) const {
  const int n = dist.order();
  const index_t nnz = coo_->nnz();

  // Owner lookup tables, one per mode: O(sum extents), O(1) per entry.
  std::vector<std::vector<int>> owner(static_cast<std::size_t>(n));
  for (int m = 0; m < n; ++m) {
    auto& o = owner[static_cast<std::size_t>(m)];
    o.resize(static_cast<std::size_t>(
        dist.global_shape()[static_cast<std::size_t>(m)]));
    for (int c = 0; c < dist.blocks(m); ++c) {
      const index_t lo = std::min(dist.slab_offset(m, c),
                                  static_cast<index_t>(o.size()));
      const index_t hi = dist.slab_end(m, c);
      for (index_t i = lo; i < hi; ++i) o[static_cast<std::size_t>(i)] = c;
    }
  }

  index_t nblocks = 1;
  for (int m = 0; m < n; ++m) nblocks *= dist.blocks(m);

  // Single O(nnz) bucketing pass: count, reserve, fill. The global list is
  // sorted and the per-mode offset subtraction preserves lexicographic
  // order within a block, so each bucket's coalesce() only restores the
  // invariant (no re-sort work, no duplicates).
  std::vector<index_t> dest(static_cast<std::size_t>(nnz));
  std::vector<index_t> counts(static_cast<std::size_t>(nblocks), 0);
  for (index_t e = 0; e < nnz; ++e) {
    index_t b = 0;
    for (int m = 0; m < n; ++m)
      b = b * dist.blocks(m) +
          owner[static_cast<std::size_t>(m)]
               [static_cast<std::size_t>(coo_->index(e, m))];
    dest[static_cast<std::size_t>(e)] = b;
    ++counts[static_cast<std::size_t>(b)];
  }
  buckets_.clear();
  buckets_.reserve(static_cast<std::size_t>(nblocks));
  for (index_t b = 0; b < nblocks; ++b) {
    buckets_.emplace_back(dist.local_shape());
    buckets_.back().reserve(counts[static_cast<std::size_t>(b)]);
  }
  std::vector<index_t> lidx(static_cast<std::size_t>(n));
  for (index_t e = 0; e < nnz; ++e) {
    const index_t b = dest[static_cast<std::size_t>(e)];
    index_t rem = b;
    for (int m = n - 1; m >= 0; --m) {
      const int c = static_cast<int>(rem % dist.blocks(m));
      rem /= dist.blocks(m);
      lidx[static_cast<std::size_t>(m)] =
          coo_->index(e, m) - dist.slab_offset(m, c);
    }
    buckets_[static_cast<std::size_t>(b)].push(lidx, coo_->value(e));
  }
  for (auto& b : buckets_) b.coalesce();
  cached_bounds_ = dist.bounds();
  taken_.assign(static_cast<std::size_t>(nblocks), 0);
  fetched_ = 0;
  ++partition_passes_;
}

std::vector<index_t> chains_on_chains(const std::vector<index_t>& loads,
                                      int parts) {
  PARPP_CHECK(parts >= 1, "chains_on_chains: need at least one part");
  const auto s = static_cast<index_t>(loads.size());
  std::vector<index_t> prefix(static_cast<std::size_t>(s) + 1, 0);
  index_t max_load = 0;
  for (index_t i = 0; i < s; ++i) {
    PARPP_CHECK(loads[static_cast<std::size_t>(i)] >= 0,
                "chains_on_chains: negative load");
    prefix[static_cast<std::size_t>(i) + 1] =
        prefix[static_cast<std::size_t>(i)] + loads[static_cast<std::size_t>(i)];
    max_load = std::max(max_load, loads[static_cast<std::size_t>(i)]);
  }
  const index_t total = prefix[static_cast<std::size_t>(s)];

  // Greedy max-fill from `pos` under `cap`; returns the end of the chunk.
  const auto chunk_end = [&](index_t pos, index_t cap) {
    const auto it = std::upper_bound(prefix.begin() + pos + 1, prefix.end(),
                                     prefix[static_cast<std::size_t>(pos)] + cap);
    return static_cast<index_t>(it - prefix.begin()) - 1;
  };
  const auto feasible = [&](index_t cap) {
    index_t pos = 0;
    for (int used = 0; pos < s; ++used) {
      if (used == parts) return false;
      pos = chunk_end(pos, cap);
    }
    return true;
  };

  // Parametric search for the minimal feasible bottleneck. Any cap below
  // max_load or the mean is infeasible, so start the bracket there.
  index_t lo = std::max(max_load, (total + parts - 1) / parts);
  index_t hi = total;
  while (lo < hi) {
    const index_t mid = lo + (hi - lo) / 2;
    if (feasible(mid)) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }

  std::vector<index_t> bounds;
  bounds.reserve(static_cast<std::size_t>(parts) + 1);
  bounds.push_back(0);
  index_t pos = 0;
  for (int c = 0; c < parts; ++c) {
    pos = (c == parts - 1) ? s : chunk_end(pos, lo);
    bounds.push_back(pos);
  }
  return bounds;
}

BalancedSparseDist::BalancedSparseDist(const tensor::CooTensor& coo)
    : SparseBlockDist(coo) {
  build_histograms();
}

BalancedSparseDist::BalancedSparseDist(const tensor::CsfTensor& t)
    : SparseBlockDist(t) {
  build_histograms();
}

void BalancedSparseDist::build_histograms() {
  const tensor::CooTensor& c = coo();
  const int n = c.order();
  slice_nnz_.resize(static_cast<std::size_t>(n));
  for (int m = 0; m < n; ++m)
    slice_nnz_[static_cast<std::size_t>(m)].assign(
        static_cast<std::size_t>(c.extent(m)), 0);
  for (index_t e = 0; e < c.nnz(); ++e)
    for (int m = 0; m < n; ++m)
      ++slice_nnz_[static_cast<std::size_t>(m)]
                  [static_cast<std::size_t>(c.index(e, m))];
}

BlockDist BalancedSparseDist::make_block_dist(
    const mpsim::ProcessorGrid& grid) const {
  PARPP_CHECK(grid.order() == static_cast<int>(slice_nnz_.size()),
              "BalancedSparseDist: grid order mismatch");
  std::vector<std::vector<index_t>> bounds;
  bounds.reserve(slice_nnz_.size());
  for (int m = 0; m < grid.order(); ++m)
    bounds.push_back(
        chains_on_chains(slice_nnz_[static_cast<std::size_t>(m)], grid.dim(m)));
  return BlockDist(grid, global_shape(), std::move(bounds));
}

std::unique_ptr<DistProblem> make_sparse_problem(const tensor::CsfTensor& t,
                                                 PartitionKind partition) {
  switch (partition) {
    case PartitionKind::kUniformBlocks:
      return std::make_unique<SparseBlockDist>(t);
    case PartitionKind::kBalancedNnz:
      return std::make_unique<BalancedSparseDist>(t);
  }
  PARPP_CHECK(false, "make_sparse_problem: unknown partition kind");
  return nullptr;  // unreachable
}

}  // namespace parpp::dist
