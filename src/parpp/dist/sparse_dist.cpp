#include "parpp/dist/sparse_dist.hpp"

#include "parpp/core/pp_operators.hpp"
#include "parpp/core/sparse_engine.hpp"

namespace parpp::dist {

namespace {

class SparseLocalProblem final : public LocalProblem {
 public:
  explicit SparseLocalProblem(const tensor::CooTensor& local_coo)
      : block_(local_coo) {}

  [[nodiscard]] const std::vector<index_t>& shape() const override {
    return block_.shape();
  }
  [[nodiscard]] double squared_norm() const override {
    return block_.squared_norm();
  }

  [[nodiscard]] std::unique_ptr<core::MttkrpEngine> make_engine(
      core::EngineKind kind, const std::vector<la::Matrix>& slice_factors,
      Profile* profile, const core::EngineOptions& options) const override {
    // The CSF factory resolves every EngineKind to the sparse engine, so a
    // spec tuned for dense local engines still runs on a sparse block.
    return core::make_engine(kind, block_, slice_factors, profile, options);
  }

  [[nodiscard]] std::unique_ptr<core::PpOperators> make_pp_operators(
      const std::vector<la::Matrix>& slice_factors,
      Profile* profile) const override {
    return std::make_unique<core::PpOperators>(block_, slice_factors,
                                               profile);
  }

 private:
  tensor::CsfTensor block_;
};

}  // namespace

SparseBlockDist::SparseBlockDist(const tensor::CooTensor& coo) : coo_(&coo) {
  PARPP_CHECK(coo.coalesced(),
              "SparseBlockDist: COO input must be coalesced — call "
              "CooTensor::coalesce() first");
}

SparseBlockDist::SparseBlockDist(const tensor::CsfTensor& t)
    : owned_(t.to_coo()), coo_(&owned_) {}

const std::vector<index_t>& SparseBlockDist::global_shape() const {
  return coo_->shape();
}

std::unique_ptr<LocalProblem> SparseBlockDist::make_local(
    const BlockDist& dist, const std::vector<int>& coords) const {
  const int n = dist.order();
  PARPP_CHECK(static_cast<int>(coords.size()) == n,
              "SparseBlockDist: coordinate order mismatch");
  PARPP_CHECK(coo_->shape() == dist.global_shape(),
              "SparseBlockDist: BlockDist shape mismatch");

  std::vector<index_t> offset(static_cast<std::size_t>(n));
  for (int m = 0; m < n; ++m)
    offset[static_cast<std::size_t>(m)] =
        dist.slab_offset(m, coords[static_cast<std::size_t>(m)]);

  tensor::CooTensor local(dist.local_shape());
  std::vector<index_t> lidx(static_cast<std::size_t>(n));
  for (index_t e = 0; e < coo_->nnz(); ++e) {
    bool inside = true;
    for (int m = 0; m < n; ++m) {
      const index_t l = coo_->index(e, m) - offset[static_cast<std::size_t>(m)];
      if (l < 0 || l >= dist.local_extent(m)) {
        inside = false;
        break;
      }
      lidx[static_cast<std::size_t>(m)] = l;
    }
    if (inside) local.push(lidx, coo_->value(e));
  }
  // The global list is sorted and the per-mode offset subtraction preserves
  // lexicographic order within a block, so this only restores the
  // coalesced invariant (no re-sort work, no duplicates).
  local.coalesce();
  return std::make_unique<SparseLocalProblem>(local);
}

}  // namespace parpp::dist
