// Block distribution of a tensor over a processor grid (Sec. II-A).
//
// Each grid coordinate owns one hyper-rectangular block of the global
// tensor, delimited per mode by a monotone boundary array: coordinate c on
// mode m owns global indices [slab_offset(m, c), slab_end(m, c)). The
// default construction splits every mode uniformly (the paper's geometry);
// the boundary-array construction accepts non-uniform splits — e.g. the
// nnz-balanced chains-on-chains partition of dist::BalancedSparseDist — on
// the same interface.
//
// Local extents are padded so that (a) every rank's block has identical
// shape (collectives exchange fixed-size buffers; for non-uniform
// boundaries the padded extent is the widest slab of the mode) and (b)
// each mode's local extent divides evenly into the Q-row chunks of the
// factor distribution (local_extent(m) is a multiple of the mode-m
// slice-group size). Padding rows are explicit zeros for dense storage and
// simply absent for sparse blocks; either way they contribute nothing to
// MTTKRP, Gram, or norm reductions. With non-uniform boundaries a padded
// slab can overlap the *next* coordinate's rows; ownership is always
// decided by slab_end, never by the padded extent, so every global index
// still has exactly one owner.
#pragma once

#include <algorithm>
#include <vector>

#include "parpp/mpsim/grid.hpp"
#include "parpp/tensor/dense_tensor.hpp"
#include "parpp/util/common.hpp"

namespace parpp::dist {

class BlockDist {
 public:
  /// Uniform split: coordinate c on mode m owns [c*L, (c+1)*L) clipped to
  /// the global extent, L = padded per-rank extent.
  BlockDist(const mpsim::ProcessorGrid& grid, std::vector<index_t> global_shape);

  /// Non-uniform split: bounds[m] has grid.dim(m)+1 monotone entries with
  /// bounds[m][0] == 0 and bounds[m][dim] == global extent of m; coordinate
  /// c owns [bounds[m][c], bounds[m][c+1]). Zero-width slabs are valid
  /// (all-padding ranks).
  BlockDist(const mpsim::ProcessorGrid& grid, std::vector<index_t> global_shape,
            std::vector<std::vector<index_t>> bounds);

  [[nodiscard]] int order() const {
    return static_cast<int>(global_shape_.size());
  }
  [[nodiscard]] const std::vector<index_t>& global_shape() const {
    return global_shape_;
  }
  /// Grid extents the distribution was built for (blocks per mode).
  [[nodiscard]] int blocks(int mode) const {
    return static_cast<int>(bounds_[static_cast<std::size_t>(mode)].size()) - 1;
  }
  /// Padded per-rank block extent of `mode`; identical on every rank.
  [[nodiscard]] index_t local_extent(int mode) const {
    return local_shape_[static_cast<std::size_t>(mode)];
  }
  [[nodiscard]] const std::vector<index_t>& local_shape() const {
    return local_shape_;
  }
  /// Rows of the mode-`mode` factor owned by each rank:
  /// local_extent(mode) / slice_size(mode).
  [[nodiscard]] index_t rows_q(int mode) const {
    return rows_q_[static_cast<std::size_t>(mode)];
  }
  /// Global start index of the slab owned by grid coordinate `coord` on
  /// `mode` (may point past the true extent for all-padding slabs).
  [[nodiscard]] index_t slab_offset(int mode, int coord) const {
    return bounds_[static_cast<std::size_t>(mode)]
                  [static_cast<std::size_t>(coord)];
  }
  /// One past the last global index *owned* by `coord` on `mode` (clipped
  /// to the global extent). Rows of the padded slab at or beyond this are
  /// padding — they belong to no coordinate (uniform tail) or to the next
  /// coordinate (non-uniform boundaries).
  [[nodiscard]] index_t slab_end(int mode, int coord) const {
    return std::min(bounds_[static_cast<std::size_t>(mode)]
                           [static_cast<std::size_t>(coord) + 1],
                    global_shape_[static_cast<std::size_t>(mode)]);
  }
  /// Per-mode boundary arrays (size blocks(m)+1 each; uniform bounds are
  /// uncapped multiples of local_extent).
  [[nodiscard]] const std::vector<std::vector<index_t>>& bounds() const {
    return bounds_;
  }

 private:
  void finalize(const mpsim::ProcessorGrid& grid);

  std::vector<index_t> global_shape_;
  std::vector<std::vector<index_t>> bounds_;  ///< per mode, size dim+1
  std::vector<index_t> local_shape_;
  std::vector<index_t> rows_q_;
};

/// Extracts the local block owned by grid coordinates `coords`, zero-padding
/// indices past the slab's owned range.
[[nodiscard]] tensor::DenseTensor extract_local_block(
    const tensor::DenseTensor& global, const BlockDist& dist,
    const std::vector<int>& coords);

}  // namespace parpp::dist
