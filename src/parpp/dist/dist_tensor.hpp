// Block distribution of a dense tensor over a processor grid (Sec. II-A).
//
// Each grid coordinate owns one hyper-rectangular block of the global
// tensor. Extents are padded so that (a) every rank's block has identical
// shape (collectives exchange fixed-size buffers) and (b) each mode's local
// extent divides evenly into the Q-row chunks of the factor distribution
// (local_extent(m) is a multiple of the mode-m slice-group size). Padding
// regions are stored as explicit zeros, which contribute nothing to MTTKRP,
// Gram, or norm reductions.
#pragma once

#include <vector>

#include "parpp/mpsim/grid.hpp"
#include "parpp/tensor/dense_tensor.hpp"
#include "parpp/util/common.hpp"

namespace parpp::dist {

class BlockDist {
 public:
  BlockDist(const mpsim::ProcessorGrid& grid, std::vector<index_t> global_shape);

  [[nodiscard]] int order() const {
    return static_cast<int>(global_shape_.size());
  }
  [[nodiscard]] const std::vector<index_t>& global_shape() const {
    return global_shape_;
  }
  /// Padded per-rank block extent of `mode`; identical on every rank.
  [[nodiscard]] index_t local_extent(int mode) const {
    return local_shape_[static_cast<std::size_t>(mode)];
  }
  [[nodiscard]] const std::vector<index_t>& local_shape() const {
    return local_shape_;
  }
  /// Rows of the mode-`mode` factor owned by each rank:
  /// local_extent(mode) / slice_size(mode).
  [[nodiscard]] index_t rows_q(int mode) const {
    return rows_q_[static_cast<std::size_t>(mode)];
  }
  /// Global start index of the slab owned by grid coordinate `coord` on
  /// `mode` (may point past the true extent for all-padding slabs).
  [[nodiscard]] index_t slab_offset(int mode, int coord) const {
    return static_cast<index_t>(coord) * local_extent(mode);
  }

 private:
  std::vector<index_t> global_shape_;
  std::vector<index_t> local_shape_;
  std::vector<index_t> rows_q_;
};

/// Extracts the local block owned by grid coordinates `coords`, zero-padding
/// indices past the global extent.
[[nodiscard]] tensor::DenseTensor extract_local_block(
    const tensor::DenseTensor& global, const BlockDist& dist,
    const std::vector<int>& coords);

}  // namespace parpp::dist
