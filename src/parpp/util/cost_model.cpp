#include "parpp/util/cost_model.hpp"

#include <cmath>

namespace parpp {

namespace {
double ipow(double base, int e) {
  double r = 1.0;
  for (int i = 0; i < e; ++i) r *= base;
  return r;
}
}  // namespace

double TableOneModel::dt_seq_flops() const {
  return 4.0 * ipow(static_cast<double>(s), N) * static_cast<double>(R);
}

double TableOneModel::msdt_seq_flops() const {
  return 2.0 * N / (N - 1.0) * ipow(static_cast<double>(s), N) *
         static_cast<double>(R);
}

double TableOneModel::pp_init_seq_flops() const { return dt_seq_flops(); }

double TableOneModel::pp_approx_seq_flops() const {
  const double sd = static_cast<double>(s), Rd = static_cast<double>(R);
  return 2.0 * N * N * (sd * sd * Rd + Rd * Rd);
}

double TableOneModel::dt_local_flops() const {
  return dt_seq_flops() / static_cast<double>(P);
}

double TableOneModel::msdt_local_flops() const {
  return msdt_seq_flops() / static_cast<double>(P);
}

double TableOneModel::pp_approx_local_flops() const {
  const double sd = static_cast<double>(s), Rd = static_cast<double>(R);
  const double Pd = static_cast<double>(P);
  return 2.0 * N * N *
         (sd * sd * Rd / std::pow(Pd, 2.0 / N) + Rd * Rd / Pd);
}

double TableOneModel::local_tree_horizontal_words() const {
  const double sd = static_cast<double>(s), Rd = static_cast<double>(R);
  const double Pd = static_cast<double>(P);
  return N * (sd * Rd / std::pow(Pd, 1.0 / N) + Rd * Rd);
}

double TableOneModel::ref_pp_horizontal_words() const {
  const double sd = static_cast<double>(s), Rd = static_cast<double>(R);
  return static_cast<double>(N) * N * sd * Rd / static_cast<double>(P);
}

}  // namespace parpp
