// Per-kernel-category wall-time accounting.
//
// The paper's Figure 3c–f breaks each ALS sweep into five categories:
// TTM, mTTV, hadamard, solve, and "others". Library kernels tag their work
// with a ScopedProfile so drivers and benchmarks can report the same
// breakdown. Profiling is per-thread-context: each simulator rank and the
// sequential drivers own a Profile instance that kernels reach through an
// explicit parameter or the thread-local default.
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "parpp/util/timer.hpp"

namespace parpp {

enum class Kernel : int {
  kTTM = 0,       // first-level tensor-times-matrix (GEMM-bound)
  kMTTV,          // batched tensor-times-vector (bandwidth-bound)
  kHadamard,      // Gram Hadamard chains, Eq. (1)/(7)
  kSolve,         // SPD linear system solves
  kComm,          // collective communication (mpsim only)
  kOther,         // everything else in a sweep
  kCount
};

[[nodiscard]] const char* kernel_name(Kernel k);

/// Accumulates seconds and flop counts per kernel category.
class Profile {
 public:
  void add(Kernel k, double seconds, double flops = 0.0) {
    seconds_[static_cast<int>(k)] += seconds;
    flops_[static_cast<int>(k)] += flops;
  }

  [[nodiscard]] double seconds(Kernel k) const {
    return seconds_[static_cast<int>(k)];
  }
  [[nodiscard]] double flops(Kernel k) const {
    return flops_[static_cast<int>(k)];
  }
  [[nodiscard]] double total_seconds() const;
  [[nodiscard]] double total_flops() const;

  void clear();

  /// Difference (this - other), used to extract per-phase slices.
  [[nodiscard]] Profile delta_since(const Profile& earlier) const;

  /// Merge another profile into this one (e.g. max/sum across ranks).
  void accumulate(const Profile& other);

  /// Per-category maximum with `other` — the critical path of each kernel
  /// class across ranks (the rank slowest at MTTKRP need not be the rank
  /// slowest overall, e.g. when idle ranks wait in collectives).
  void max_merge(const Profile& other);

  /// Render a one-line summary like "TTM 1.2s | mTTV 0.3s | ...".
  [[nodiscard]] std::string summary() const;

  /// Profile used by kernels when no explicit profile is passed.
  /// Thread-local so concurrent mpsim ranks do not interleave.
  static Profile& thread_default();

 private:
  std::array<double, static_cast<int>(Kernel::kCount)> seconds_{};
  std::array<double, static_cast<int>(Kernel::kCount)> flops_{};
};

/// RAII timer that charges elapsed wall time (and optional flops) to a
/// category on destruction.
class ScopedProfile {
 public:
  ScopedProfile(Profile& p, Kernel k, double flops = 0.0)
      : profile_(p), kernel_(k), flops_(flops) {}
  explicit ScopedProfile(Kernel k, double flops = 0.0)
      : ScopedProfile(Profile::thread_default(), k, flops) {}
  ScopedProfile(const ScopedProfile&) = delete;
  ScopedProfile& operator=(const ScopedProfile&) = delete;
  ~ScopedProfile() { profile_.add(kernel_, timer_.seconds(), flops_); }

 private:
  Profile& profile_;
  Kernel kernel_;
  double flops_;
  WallTimer timer_;
};

}  // namespace parpp
