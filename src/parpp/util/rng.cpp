#include "parpp/util/rng.hpp"

#include <cmath>

namespace parpp {

namespace {

inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

// splitmix64: seeds the xoshiro state from a single 64-bit value.
inline std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t x = seed;
  for (auto& s : s_) s = splitmix64(x);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 top bits -> double in [0,1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

double Rng::normal() {
  if (has_spare_) {
    has_spare_ = false;
    return spare_normal_;
  }
  double u1 = 0.0;
  while (u1 == 0.0) u1 = uniform();
  const double u2 = uniform();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  constexpr double two_pi = 6.283185307179586476925286766559;
  spare_normal_ = mag * std::sin(two_pi * u2);
  has_spare_ = true;
  return mag * std::cos(two_pi * u2);
}

index_t Rng::uniform_index(index_t n) {
  PARPP_CHECK(n > 0, "uniform_index requires n > 0");
  return static_cast<index_t>(next_u64() % static_cast<std::uint64_t>(n));
}

Rng Rng::split(std::uint64_t stream_id) const {
  std::uint64_t mix = s_[0] ^ rotl(s_[3], 13) ^ (stream_id * 0xA24BAED4963EE407ull);
  return Rng(mix);
}

std::array<std::uint64_t, 4> Rng::state() const {
  return {s_[0], s_[1], s_[2], s_[3]};
}

void Rng::set_state(const std::array<std::uint64_t, 4>& s) {
  for (int i = 0; i < 4; ++i) s_[i] = s[static_cast<std::size_t>(i)];
  has_spare_ = false;
  spare_normal_ = 0.0;
}

}  // namespace parpp
