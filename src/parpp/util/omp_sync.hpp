// TSan-visible happens-before edges for OpenMP fork/join points.
//
// GCC's libgomp is not ThreadSanitizer-instrumented, so the synchronization
// a parallel region really performs — the fork that publishes the master's
// setup to the team, the implicit join barrier that publishes worker writes
// back, and any explicit `#pragma omp barrier` — is invisible to TSan. The
// racing *accesses* it then reports are in instrumented user code (a kernel
// reading its per-thread slabs after the join), which a library suppression
// cannot cover. OmpJoinFence restates those edges with C++ atomics that
// TSan does understand: a release/acquire pair over one counter, mirroring
// exactly the ordering the OpenMP memory model already guarantees.
//
// In normal builds every method is an empty inline — the fence exists only
// so that `-fsanitize=thread` builds can prove the joins instead of
// flagging them. Usage:
//
//   OmpJoinFence fence;
//   fence.fork();                 // master: publish pre-region writes
//   #pragma omp parallel
//   {
//     fence.enter();              // worker: observe master's setup
//     ... work ...
//     fence.leave();              // worker: publish this thread's writes
//   }
//   fence.join();                 // master: observe every worker's writes
//
// For a mid-region `#pragma omp barrier`, call publish() before and
// observe() after on every thread; the acq_rel RMW chain over the shared
// counter gives each post-barrier observer an edge from every pre-barrier
// publisher.
#pragma once

#if defined(__SANITIZE_THREAD__)
#define PARPP_TSAN_BUILD 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define PARPP_TSAN_BUILD 1
#endif
#endif

#ifdef PARPP_TSAN_BUILD
#include <atomic>
#endif

namespace parpp::util {

#ifdef PARPP_TSAN_BUILD

class OmpJoinFence {
 public:
  /// Release this thread's writes-so-far to later observers.
  void publish() noexcept { epoch_.fetch_add(1, std::memory_order_acq_rel); }
  /// Acquire every prior publisher's writes.
  void observe() noexcept {
    (void)epoch_.load(std::memory_order_acquire);
  }

  void fork() noexcept { publish(); }    ///< master, before the region
  void enter() noexcept { observe(); }   ///< worker, first thing inside
  void leave() noexcept { publish(); }   ///< worker, after its last write
  void join() noexcept { observe(); }    ///< master, after the region

 private:
  std::atomic<unsigned> epoch_{0};
};

#else  // normal builds: the OpenMP join itself is the synchronization

class OmpJoinFence {
 public:
  void publish() noexcept {}
  void observe() noexcept {}
  void fork() noexcept {}
  void enter() noexcept {}
  void leave() noexcept {}
  void join() noexcept {}
};

#endif

}  // namespace parpp::util
