#include "parpp/util/workspace.hpp"

#include <algorithm>
#include <mutex>
#include <new>

namespace parpp::util {

namespace {

constexpr std::size_t kAlignment = 64;
// Capacities are rounded up so near-miss requests (e.g. the ragged last
// panel of a blocked loop) reuse the same buffer instead of growing.
constexpr index_t kGranularity = 512;

struct AlignedDeleter {
  void operator()(double* p) const {
    ::operator delete[](p, std::align_val_t{kAlignment});
  }
};

using AlignedPtr = std::unique_ptr<double[], AlignedDeleter>;

AlignedPtr aligned_alloc_doubles(index_t n) {
  return AlignedPtr(static_cast<double*>(::operator new[](
      static_cast<std::size_t>(n) * sizeof(double),
      std::align_val_t{kAlignment})));
}

}  // namespace

struct WorkspacePool {
  struct Buffer {
    AlignedPtr data;
    index_t capacity = 0;
    bool in_use = false;
  };
  // Guards buffers/alloc_count. A lease can outlive the thread that took it
  // (workspace-backed tensors move across rank threads; OpenMP workers
  // return panels drawn on the team leader), so the free-list must be
  // internally synchronized even though each pool is *owned* by one driver.
  // Uncontended in the steady state — hot kernels lease once per panel, not
  // per element — so the lock never shows up in profiles.
  mutable std::mutex mutex;
  std::vector<Buffer> buffers;
  std::size_t alloc_count = 0;

  void release(double* p) {
    const std::lock_guard<std::mutex> lock(mutex);
    for (auto& b : buffers) {
      if (b.data.get() == p) {
        PARPP_ASSERT(b.in_use, "workspace: double release");
        b.in_use = false;
        return;
      }
    }
  }
};

KernelWorkspace::Lease& KernelWorkspace::Lease::operator=(
    Lease&& other) noexcept {
  if (this != &other) {
    release();
    pool_ = std::move(other.pool_);
    data_ = other.data_;
    capacity_ = other.capacity_;
    other.data_ = nullptr;
    other.capacity_ = 0;
    other.pool_.reset();
  }
  return *this;
}

void KernelWorkspace::Lease::release() {
  if (data_ && pool_) pool_->release(data_);
  data_ = nullptr;
  capacity_ = 0;
  pool_.reset();
}

KernelWorkspace::KernelWorkspace() : pool_(std::make_shared<WorkspacePool>()) {}

KernelWorkspace::Lease KernelWorkspace::lease(index_t n) {
  PARPP_CHECK(n >= 0, "workspace: negative lease size");
  if (n == 0) return {};

  const std::lock_guard<std::mutex> lock(pool_->mutex);
  // Best fit among free buffers: smallest capacity that still holds n.
  WorkspacePool::Buffer* best = nullptr;
  for (auto& b : pool_->buffers) {
    if (b.in_use || b.capacity < n) continue;
    if (!best || b.capacity < best->capacity) best = &b;
  }
  if (!best) {
    const index_t cap = (n + kGranularity - 1) / kGranularity * kGranularity;
    WorkspacePool::Buffer fresh;
    fresh.data = aligned_alloc_doubles(cap);
    fresh.capacity = cap;
    ++pool_->alloc_count;
    pool_->buffers.push_back(std::move(fresh));
    best = &pool_->buffers.back();
  }
  best->in_use = true;
  return Lease(pool_, best->data.get(), best->capacity);
}

std::size_t KernelWorkspace::total_bytes() const {
  const std::lock_guard<std::mutex> lock(pool_->mutex);
  std::size_t bytes = 0;
  for (const auto& b : pool_->buffers)
    bytes += static_cast<std::size_t>(b.capacity) * sizeof(double);
  return bytes;
}

std::size_t KernelWorkspace::allocation_count() const {
  const std::lock_guard<std::mutex> lock(pool_->mutex);
  return pool_->alloc_count;
}

std::size_t KernelWorkspace::leased_buffers() const {
  const std::lock_guard<std::mutex> lock(pool_->mutex);
  std::size_t n = 0;
  for (const auto& b : pool_->buffers) n += b.in_use ? 1 : 0;
  return n;
}

void KernelWorkspace::trim() {
  const std::lock_guard<std::mutex> lock(pool_->mutex);
  auto& v = pool_->buffers;
  v.erase(std::remove_if(v.begin(), v.end(),
                         [](const WorkspacePool::Buffer& b) {
                           return !b.in_use;
                         }),
          v.end());
}

KernelWorkspace& KernelWorkspace::thread_default() {
  thread_local KernelWorkspace ws;
  return ws;
}

}  // namespace parpp::util
