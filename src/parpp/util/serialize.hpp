// Binary serialization for tensors and factor sets.
//
// Simple versioned little-endian container so decompositions can be
// checkpointed and compared across runs (the CLI tool and long experiments
// use this). Format: 8-byte magic, u32 version, u32 order, i64 extents,
// raw doubles.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "parpp/la/matrix.hpp"
#include "parpp/tensor/coo_tensor.hpp"
#include "parpp/tensor/dense_tensor.hpp"

namespace parpp::io {

void save_tensor(std::ostream& os, const tensor::DenseTensor& t);
[[nodiscard]] tensor::DenseTensor load_tensor(std::istream& is);

void save_matrix(std::ostream& os, const la::Matrix& m);
[[nodiscard]] la::Matrix load_matrix(std::istream& is);

void save_factors(std::ostream& os, const std::vector<la::Matrix>& factors);
[[nodiscard]] std::vector<la::Matrix> load_factors(std::istream& is);

/// File-path conveniences; throw parpp::error on I/O failure.
void save_tensor_file(const std::string& path, const tensor::DenseTensor& t);
[[nodiscard]] tensor::DenseTensor load_tensor_file(const std::string& path);
void save_factors_file(const std::string& path,
                       const std::vector<la::Matrix>& factors);
[[nodiscard]] std::vector<la::Matrix> load_factors_file(
    const std::string& path);

/// FROSTT `.tns` text format: one "i1 i2 ... iN value" line per nonzero,
/// 1-indexed coordinates, '#' comment lines tolerated anywhere. save_tns
/// additionally writes a "# dims s1 ... sN" comment (still a valid FROSTT
/// comment) so all-zero trailing slices survive a round-trip; load_tns
/// honors it when present and otherwise infers each extent as the per-mode
/// maximum index. The loaded tensor is coalesced (duplicate coordinates
/// sum, FROSTT convention).
void save_tns(std::ostream& os, const tensor::CooTensor& t);
[[nodiscard]] tensor::CooTensor load_tns(std::istream& is);
void save_tns_file(const std::string& path, const tensor::CooTensor& t);
[[nodiscard]] tensor::CooTensor load_tns_file(const std::string& path);

}  // namespace parpp::io
