// Binary serialization for tensors and factor sets.
//
// Simple versioned little-endian container so decompositions can be
// checkpointed and compared across runs (the CLI tool and long experiments
// use this). Format: 8-byte magic, u32 version, u32 order, i64 extents,
// raw doubles.
#pragma once

#include <array>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "parpp/la/matrix.hpp"
#include "parpp/tensor/coo_tensor.hpp"
#include "parpp/tensor/dense_tensor.hpp"

namespace parpp::io {

void save_tensor(std::ostream& os, const tensor::DenseTensor& t);
[[nodiscard]] tensor::DenseTensor load_tensor(std::istream& is);

void save_matrix(std::ostream& os, const la::Matrix& m);
[[nodiscard]] la::Matrix load_matrix(std::istream& is);

void save_factors(std::ostream& os, const std::vector<la::Matrix>& factors);
[[nodiscard]] std::vector<la::Matrix> load_factors(std::istream& is);

/// File-path conveniences; throw parpp::error on I/O failure.
void save_tensor_file(const std::string& path, const tensor::DenseTensor& t);
[[nodiscard]] tensor::DenseTensor load_tensor_file(const std::string& path);
void save_factors_file(const std::string& path,
                       const std::vector<la::Matrix>& factors);
[[nodiscard]] std::vector<la::Matrix> load_factors_file(
    const std::string& path);

/// Everything a solve needs to restart mid-run: the factor set, the sweep
/// counter, the stopping-rule state (current and previous fitness, so the
/// resumed run makes exactly the stopping decision the uninterrupted run
/// would have), and the RNG provenance (seed + raw xoshiro state).
///
/// The factors are stored GLOBAL (assembled), never per-rank, which makes
/// a checkpoint rank-count-agnostic by construction: a run may resume on
/// any --ranks value — including fewer ranks than wrote it, the cold-path
/// complement of elastic shrink recovery — and the drivers repartition on
/// load. `written_ranks` records the writer's world size as provenance
/// only (0 = unknown: a sequential writer or a pre-v2 file).
struct CheckpointState {
  std::vector<la::Matrix> factors;
  int sweep = 0;
  double fitness = 0.0;
  double prev_fitness = -1.0;
  double residual = 1.0;
  std::uint64_t seed = 0;
  std::array<std::uint64_t, 4> rng_state = {0, 0, 0, 0};
  int written_ranks = 0;
};

void save_checkpoint(std::ostream& os, const CheckpointState& ck);
[[nodiscard]] CheckpointState load_checkpoint(std::istream& is);

/// Crash-consistent file checkpoint: the state is serialized to `path +
/// ".tmp"`, flushed with fsync, then atomically renamed over `path`. A
/// crash at any point leaves either the previous complete checkpoint or
/// the new one — never a torn file. Throws parpp::error on I/O failure.
void save_checkpoint_file(const std::string& path, const CheckpointState& ck);
[[nodiscard]] CheckpointState load_checkpoint_file(const std::string& path);

/// FROSTT `.tns` text format: one "i1 i2 ... iN value" line per nonzero,
/// 1-indexed coordinates, '#' comment lines tolerated anywhere. save_tns
/// additionally writes a "# dims s1 ... sN" comment (still a valid FROSTT
/// comment) so all-zero trailing slices survive a round-trip; load_tns
/// honors it when present and otherwise infers each extent as the per-mode
/// maximum index. The loaded tensor is coalesced (duplicate coordinates
/// sum, FROSTT convention).
void save_tns(std::ostream& os, const tensor::CooTensor& t);
[[nodiscard]] tensor::CooTensor load_tns(std::istream& is);
void save_tns_file(const std::string& path, const tensor::CooTensor& t);
[[nodiscard]] tensor::CooTensor load_tns_file(const std::string& path);

}  // namespace parpp::io
