// Deterministic, splittable random number generation.
//
// All stochastic behaviour in the library (factor initialization, workload
// generators) flows through Rng so experiments are reproducible from a seed.
#pragma once

#include <array>
#include <cstdint>

#include "parpp/util/common.hpp"

namespace parpp {

/// xoshiro256** PRNG. Chosen over std::mt19937_64 for speed and a tiny,
/// copyable state; statistical quality is more than sufficient for
/// initializing factor matrices and synthetic tensors.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull);

  /// Next raw 64-bit value.
  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Standard normal variate (Box–Muller; stateless between calls except for
  /// the cached spare value).
  double normal();

  /// Uniform integer in [0, n). Requires n > 0.
  index_t uniform_index(index_t n);

  /// Derive an independent stream, e.g. one per thread-rank or per tensor
  /// mode. Derivation is deterministic in (current state, stream_id).
  [[nodiscard]] Rng split(std::uint64_t stream_id) const;

  /// Raw xoshiro256** state, for checkpoint/restart. set_state restores the
  /// uniform/integer stream exactly; the Box–Muller spare is dropped (the
  /// next normal() recomputes a pair), which only matters mid-pair.
  [[nodiscard]] std::array<std::uint64_t, 4> state() const;
  void set_state(const std::array<std::uint64_t, 4>& s);

 private:
  std::uint64_t s_[4];
  double spare_normal_ = 0.0;
  bool has_spare_ = false;
};

}  // namespace parpp
