// BSP alpha-beta-gamma-nu cost model (paper Sec. II-E, Table I).
//
// The simulator's collectives charge alpha (per-message latency) and beta
// (per-word bandwidth) costs; kernels charge gamma (per-flop) and nu
// (per-word vertical / memory traffic) costs. The closed-form leading-order
// expressions of Table I are provided so benchmarks can print
// measured-vs-model comparisons.
#pragma once

#include "parpp/util/common.hpp"

namespace parpp {

/// Machine parameters of the alpha-beta-gamma-nu model. Defaults are
/// loosely modeled on a Stampede2 KNL node fabric and are only used for
/// *relative* modeled-cost reporting, never for correctness.
struct CostParams {
  double alpha = 2.0e-6;  ///< seconds per message
  double beta = 4.0e-9;   ///< seconds per word moved between processors
  double gamma = 2.5e-11; ///< seconds per flop
  double nu = 1.0e-9;     ///< seconds per word moved between memory and cache
};

/// Accumulated model-cost terms for one processor.
struct CostTally {
  double messages = 0.0;        ///< number of alpha charges
  double words_horizontal = 0.0;///< words sent/received (beta)
  double flops = 0.0;           ///< gamma
  double words_vertical = 0.0;  ///< nu

  void add_collective(double msgs, double words) {
    messages += msgs;
    words_horizontal += words;
  }
  void add_compute(double f, double wv) {
    flops += f;
    words_vertical += wv;
  }
  [[nodiscard]] double seconds(const CostParams& p) const {
    return messages * p.alpha + words_horizontal * p.beta + flops * p.gamma +
           words_vertical * p.nu;
  }
  void accumulate(const CostTally& o) {
    messages += o.messages;
    words_horizontal += o.words_horizontal;
    flops += o.flops;
    words_vertical += o.words_vertical;
  }
};

/// Closed-form leading-order costs from Table I of the paper, for an
/// equidimensional order-N tensor (dimension s, rank R) on P processors.
/// These are returned in *flops* / *words* so benches can compare against
/// measured tallies.
struct TableOneModel {
  int N;        ///< tensor order
  index_t s;    ///< mode dimension
  index_t R;    ///< CP rank
  index_t P;    ///< processor count

  [[nodiscard]] double dt_seq_flops() const;        ///< 4 s^N R
  [[nodiscard]] double msdt_seq_flops() const;      ///< 2N/(N-1) s^N R
  [[nodiscard]] double pp_init_seq_flops() const;   ///< 4 s^N R
  [[nodiscard]] double pp_approx_seq_flops() const; ///< 2 N^2 (s^2 R + R^2)
  [[nodiscard]] double dt_local_flops() const;
  [[nodiscard]] double msdt_local_flops() const;
  [[nodiscard]] double pp_approx_local_flops() const;
  /// Horizontal words per sweep for the local-tree algorithms:
  /// N (s R / P^{1/N} + R^2)
  [[nodiscard]] double local_tree_horizontal_words() const;
  /// Horizontal words per sweep for PP-approx-ref: N^2 s R / P
  [[nodiscard]] double ref_pp_horizontal_words() const;
};

}  // namespace parpp
