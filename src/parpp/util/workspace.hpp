// Reusable kernel scratch arena (ggml-style preallocation discipline).
//
// Every hot kernel in the library (fused MTTKRP panels, GEMM packing
// buffers, tree-engine intermediates) draws its scratch memory from a
// KernelWorkspace instead of the heap. Buffers are cache-line aligned and
// recycled by capacity: the first sweep of an ALS run grows the arena to
// its steady-state footprint, after which acquire/release never touches the
// allocator. Tests assert this via total_bytes()/allocation_count().
//
// Threading: each pool guards its free-list with a mutex, because a lease
// can legitimately cross threads — workspace-backed tensors are moved
// between rank threads, and an OpenMP worker may return a panel the team
// leader acquired. The lock is per-lease (not per-element) and uncontended
// in the steady state, so it costs nothing measurable. Kernels that need
// scratch inside an OpenMP region still prefer each worker's thread-local
// thread_default() workspace, which is private by construction. Leases keep
// the underlying pool alive through a shared_ptr, so releasing a lease
// after its workspace has been destroyed is safe.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "parpp/util/common.hpp"

namespace parpp::util {

// KernelWorkspace itself is a cheap, copyable *handle*: copies share the
// same underlying pool (and stats), so holders that may outlive the
// original handle — e.g. workspace-backed DenseTensors that get moved —
// keep a copy instead of a pointer.
class KernelWorkspace {
 public:
  /// RAII handle to one scratch buffer of doubles. Movable, not copyable;
  /// releases the buffer back to the pool on destruction. Contents are
  /// uninitialized on acquisition — callers must write before reading.
  class Lease {
   public:
    Lease() = default;
    Lease(Lease&& other) noexcept { *this = std::move(other); }
    Lease& operator=(Lease&& other) noexcept;
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;
    ~Lease() { release(); }

    [[nodiscard]] double* data() const { return data_; }
    /// Usable capacity in doubles (>= the requested size).
    [[nodiscard]] index_t capacity() const { return capacity_; }
    [[nodiscard]] bool engaged() const { return data_ != nullptr; }

    /// Returns the buffer to the pool early (idempotent).
    void release();

   private:
    friend class KernelWorkspace;
    Lease(std::shared_ptr<struct WorkspacePool> pool, double* data,
          index_t capacity)
        : pool_(std::move(pool)), data_(data), capacity_(capacity) {}

    std::shared_ptr<struct WorkspacePool> pool_;
    double* data_ = nullptr;
    index_t capacity_ = 0;
  };

  KernelWorkspace();

  /// Leases a buffer of at least `n` doubles. Reuses the smallest free
  /// buffer with sufficient capacity; allocates (64-byte aligned) only when
  /// none fits. n == 0 yields a valid empty lease without a pool trip.
  [[nodiscard]] Lease lease(index_t n);

  /// Bytes currently held by the arena (free + leased). Steady-state ALS
  /// sweeps must not grow this.
  [[nodiscard]] std::size_t total_bytes() const;
  /// Number of distinct backing allocations performed since construction.
  [[nodiscard]] std::size_t allocation_count() const;
  /// Number of buffers currently leased out (diagnostic).
  [[nodiscard]] std::size_t leased_buffers() const;

  /// Frees all non-leased buffers (leased ones are dropped when returned).
  void trim();

  /// Per-thread workspace used when no explicit workspace is passed.
  [[nodiscard]] static KernelWorkspace& thread_default();

 private:
  std::shared_ptr<struct WorkspacePool> pool_;
};

}  // namespace parpp::util
