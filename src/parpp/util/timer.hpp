// Wall-clock timing helpers.
#pragma once

#include <chrono>

namespace parpp {

/// Simple monotonic wall timer. `seconds()` returns time since construction
/// or the last `reset()`.
class WallTimer {
 public:
  WallTimer() : start_(clock::now()) {}

  void reset() { start_ = clock::now(); }

  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace parpp
