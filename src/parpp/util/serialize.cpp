#include "parpp/util/serialize.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <limits>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <string>

namespace parpp::io {

namespace {

constexpr char kTensorMagic[8] = {'p', 'a', 'r', 'p', 'p', 'T', 'v', '1'};
constexpr char kMatrixMagic[8] = {'p', 'a', 'r', 'p', 'p', 'M', 'v', '1'};
constexpr char kFactorMagic[8] = {'p', 'a', 'r', 'p', 'p', 'F', 'v', '1'};
constexpr char kCheckpointMagic[8] = {'p', 'a', 'r', 'p', 'p', 'C', 'v', '1'};
constexpr std::uint32_t kVersion = 1;

void write_raw(std::ostream& os, const void* p, std::size_t bytes) {
  os.write(static_cast<const char*>(p), static_cast<std::streamsize>(bytes));
  PARPP_CHECK(os.good(), "serialize: write failed");
}

void read_raw(std::istream& is, void* p, std::size_t bytes) {
  is.read(static_cast<char*>(p), static_cast<std::streamsize>(bytes));
  PARPP_CHECK(is.good(), "serialize: read failed (truncated stream?)");
}

void write_magic(std::ostream& os, const char (&magic)[8]) {
  write_raw(os, magic, 8);
  write_raw(os, &kVersion, sizeof(kVersion));
}

void check_magic(std::istream& is, const char (&magic)[8]) {
  char got[8];
  read_raw(is, got, 8);
  PARPP_CHECK(std::memcmp(got, magic, 8) == 0,
              "serialize: magic mismatch (wrong file type?)");
  std::uint32_t version = 0;
  read_raw(is, &version, sizeof(version));
  PARPP_CHECK(version == kVersion, "serialize: unsupported version ", version);
}

}  // namespace

void save_tensor(std::ostream& os, const tensor::DenseTensor& t) {
  write_magic(os, kTensorMagic);
  const std::uint32_t order = static_cast<std::uint32_t>(t.order());
  write_raw(os, &order, sizeof(order));
  for (index_t e : t.shape()) write_raw(os, &e, sizeof(e));
  write_raw(os, t.data(), static_cast<std::size_t>(t.size()) * sizeof(double));
}

tensor::DenseTensor load_tensor(std::istream& is) {
  check_magic(is, kTensorMagic);
  std::uint32_t order = 0;
  read_raw(is, &order, sizeof(order));
  PARPP_CHECK(order <= 16, "load_tensor: implausible order ", order);
  std::vector<index_t> shape(order);
  for (auto& e : shape) {
    read_raw(is, &e, sizeof(e));
    PARPP_CHECK(e >= 0, "load_tensor: negative extent");
  }
  tensor::DenseTensor t(shape);
  read_raw(is, t.data(), static_cast<std::size_t>(t.size()) * sizeof(double));
  return t;
}

void save_matrix(std::ostream& os, const la::Matrix& m) {
  write_magic(os, kMatrixMagic);
  const index_t rows = m.rows(), cols = m.cols();
  write_raw(os, &rows, sizeof(rows));
  write_raw(os, &cols, sizeof(cols));
  write_raw(os, m.data(), static_cast<std::size_t>(m.size()) * sizeof(double));
}

la::Matrix load_matrix(std::istream& is) {
  check_magic(is, kMatrixMagic);
  index_t rows = 0, cols = 0;
  read_raw(is, &rows, sizeof(rows));
  read_raw(is, &cols, sizeof(cols));
  PARPP_CHECK(rows >= 0 && cols >= 0, "load_matrix: negative dims");
  la::Matrix m(rows, cols);
  read_raw(is, m.data(), static_cast<std::size_t>(m.size()) * sizeof(double));
  return m;
}

void save_factors(std::ostream& os, const std::vector<la::Matrix>& factors) {
  write_magic(os, kFactorMagic);
  const std::uint32_t count = static_cast<std::uint32_t>(factors.size());
  write_raw(os, &count, sizeof(count));
  for (const auto& f : factors) save_matrix(os, f);
}

std::vector<la::Matrix> load_factors(std::istream& is) {
  check_magic(is, kFactorMagic);
  std::uint32_t count = 0;
  read_raw(is, &count, sizeof(count));
  PARPP_CHECK(count <= 16, "load_factors: implausible factor count ", count);
  std::vector<la::Matrix> factors;
  factors.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) factors.push_back(load_matrix(is));
  return factors;
}

void save_checkpoint(std::ostream& os, const CheckpointState& ck) {
  // Checkpoints carry their own version (2 adds the writer's rank count as
  // provenance); the magic bytes stay 'parppCv1' so older files are still
  // recognized and newer readers branch on the version field.
  write_raw(os, kCheckpointMagic, 8);
  const std::uint32_t version = 2;
  write_raw(os, &version, sizeof(version));
  const std::int32_t sweep = ck.sweep;
  write_raw(os, &sweep, sizeof(sweep));
  const std::int32_t ranks = ck.written_ranks;
  write_raw(os, &ranks, sizeof(ranks));
  write_raw(os, &ck.fitness, sizeof(ck.fitness));
  write_raw(os, &ck.prev_fitness, sizeof(ck.prev_fitness));
  write_raw(os, &ck.residual, sizeof(ck.residual));
  write_raw(os, &ck.seed, sizeof(ck.seed));
  write_raw(os, ck.rng_state.data(), sizeof(ck.rng_state));
  save_factors(os, ck.factors);
}

CheckpointState load_checkpoint(std::istream& is) {
  char got[8];
  read_raw(is, got, 8);
  PARPP_CHECK(std::memcmp(got, kCheckpointMagic, 8) == 0,
              "serialize: magic mismatch (wrong file type?)");
  std::uint32_t version = 0;
  read_raw(is, &version, sizeof(version));
  PARPP_CHECK(version == 1 || version == 2,
              "load_checkpoint: unsupported version ", version);
  CheckpointState ck;
  std::int32_t sweep = 0;
  read_raw(is, &sweep, sizeof(sweep));
  PARPP_CHECK(sweep >= 0, "load_checkpoint: negative sweep counter");
  ck.sweep = sweep;
  if (version >= 2) {
    std::int32_t ranks = 0;
    read_raw(is, &ranks, sizeof(ranks));
    PARPP_CHECK(ranks >= 0, "load_checkpoint: negative writer rank count");
    // Provenance only — the factors are global, so resuming on any rank
    // count (including after losing nodes) just repartitions them.
    ck.written_ranks = ranks;
  }
  read_raw(is, &ck.fitness, sizeof(ck.fitness));
  read_raw(is, &ck.prev_fitness, sizeof(ck.prev_fitness));
  read_raw(is, &ck.residual, sizeof(ck.residual));
  PARPP_CHECK(std::isfinite(ck.fitness) && std::isfinite(ck.prev_fitness) &&
                  std::isfinite(ck.residual),
              "load_checkpoint: non-finite stopping-rule state");
  read_raw(is, &ck.seed, sizeof(ck.seed));
  read_raw(is, ck.rng_state.data(), sizeof(ck.rng_state));
  ck.factors = load_factors(is);
  for (std::size_t m = 0; m < ck.factors.size(); ++m) {
    PARPP_CHECK(ck.factors[m].all_finite(),
                "load_checkpoint: factor ", m, " has non-finite entries");
  }
  return ck;
}

void save_checkpoint_file(const std::string& path, const CheckpointState& ck) {
  std::ostringstream buf(std::ios::binary);
  save_checkpoint(buf, ck);
  const std::string bytes = buf.str();

  // write-tmp + fsync + rename: a crash leaves either the old complete
  // checkpoint or the new one, never a torn file.
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  PARPP_CHECK(fd >= 0, "checkpoint: cannot open ", tmp, ": ",
              std::strerror(errno));
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n = ::write(fd, bytes.data() + off, bytes.size() - off);
    if (n < 0 && errno == EINTR) continue;
    if (n < 0) {
      const int err = errno;
      ::close(fd);
      ::unlink(tmp.c_str());
      PARPP_CHECK(false, "checkpoint: write to ", tmp, " failed: ",
                  std::strerror(err));
    }
    off += static_cast<std::size_t>(n);
  }
  if (::fsync(fd) != 0) {
    const int err = errno;
    ::close(fd);
    ::unlink(tmp.c_str());
    PARPP_CHECK(false, "checkpoint: fsync of ", tmp, " failed: ",
                std::strerror(err));
  }
  ::close(fd);
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    const int err = errno;
    ::unlink(tmp.c_str());
    PARPP_CHECK(false, "checkpoint: rename to ", path, " failed: ",
                std::strerror(err));
  }
}

CheckpointState load_checkpoint_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  PARPP_CHECK(is.is_open(), "cannot open ", path, " for reading");
  return load_checkpoint(is);
}

void save_tensor_file(const std::string& path, const tensor::DenseTensor& t) {
  std::ofstream os(path, std::ios::binary);
  PARPP_CHECK(os.is_open(), "cannot open ", path, " for writing");
  save_tensor(os, t);
}

tensor::DenseTensor load_tensor_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  PARPP_CHECK(is.is_open(), "cannot open ", path, " for reading");
  return load_tensor(is);
}

void save_factors_file(const std::string& path,
                       const std::vector<la::Matrix>& factors) {
  std::ofstream os(path, std::ios::binary);
  PARPP_CHECK(os.is_open(), "cannot open ", path, " for writing");
  save_factors(os, factors);
}

std::vector<la::Matrix> load_factors_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  PARPP_CHECK(is.is_open(), "cannot open ", path, " for reading");
  return load_factors(is);
}

void save_tns(std::ostream& os, const tensor::CooTensor& t) {
  os << "# dims";
  for (index_t e : t.shape()) os << ' ' << e;
  os << '\n';
  const int n = t.order();
  // max_digits10 (not the default stream precision of 6) round-trips every
  // double bit-exactly through text.
  constexpr int kPrecision = std::numeric_limits<double>::max_digits10;
  for (index_t e = 0; e < t.nnz(); ++e) {
    for (int m = 0; m < n; ++m) os << t.index(e, m) + 1 << ' ';  // 1-indexed
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.*g", kPrecision, t.value(e));
    os << buf << '\n';
  }
  PARPP_CHECK(os.good(), "save_tns: write failed");
}

tensor::CooTensor load_tns(std::istream& is) {
  std::vector<index_t> dims_header;
  std::vector<index_t> idx;      // entry-major coordinates, 0-indexed
  std::vector<double> vals;
  std::vector<index_t> max_idx;  // per-mode maxima (0-indexed)
  int order = 0;

  std::string line;
  index_t line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    std::istringstream ls(line);
    // FROSTT comment lines start with '#'; our writer stashes the shape in
    // a "# dims ..." comment that plain FROSTT readers simply skip.
    ls >> std::ws;
    if (ls.peek() == '#') {
      ls.get();
      std::string key;
      if (ls >> key && key == "dims") {
        index_t d = 0;
        while (ls >> d) {
          PARPP_CHECK(d >= 0, "load_tns: negative extent in dims header");
          dims_header.push_back(d);
        }
        ls.clear();
        ls >> std::ws;
        PARPP_CHECK(ls.eof(), "load_tns: line ", line_no,
                    ": malformed dims header (non-numeric extent)");
      }
      continue;
    }
    std::vector<double> fields;
    double v = 0.0;
    while (ls >> v) fields.push_back(v);
    // `>>` stops silently at the first unparseable token; surface it as a
    // loader error instead of truncating the line.
    ls.clear();
    ls >> std::ws;
    PARPP_CHECK(ls.eof(), "load_tns: line ", line_no,
                ": unparseable token (expected numbers only)");
    if (fields.empty()) continue;  // blank line
    PARPP_CHECK(fields.size() >= 2, "load_tns: line ", line_no,
                ": need at least one coordinate and a value");
    if (order == 0) {
      order = static_cast<int>(fields.size()) - 1;
      max_idx.assign(static_cast<std::size_t>(order), -1);
    }
    PARPP_CHECK(static_cast<int>(fields.size()) == order + 1, "load_tns: line ",
                line_no, ": expected ", order + 1, " fields, got ",
                fields.size());
    for (int m = 0; m < order; ++m) {
      const double c = fields[static_cast<std::size_t>(m)];
      PARPP_CHECK(std::isfinite(c) && c >= 1.0 &&
                      c == static_cast<double>(static_cast<index_t>(c)),
                  "load_tns: line ", line_no,
                  ": coordinates must be positive integers (1-indexed)");
      const index_t i = static_cast<index_t>(c) - 1;
      idx.push_back(i);
      max_idx[static_cast<std::size_t>(m)] =
          std::max(max_idx[static_cast<std::size_t>(m)], i);
    }
    PARPP_CHECK(std::isfinite(fields.back()), "load_tns: line ", line_no,
                ": non-finite value");
    vals.push_back(fields.back());
  }
  PARPP_CHECK(!is.bad(), "load_tns: I/O error after line ", line_no,
              " (truncated file?)");
  if (order == 0) {
    // No data lines: still a valid (empty) tensor when the dims header
    // pins down the shape — save_tns always writes one, so nnz == 0
    // round-trips.
    PARPP_CHECK(!dims_header.empty(),
                "load_tns: no nonzero entries and no '# dims' header");
    return tensor::CooTensor(dims_header);
  }
  PARPP_CHECK(dims_header.empty() ||
                  static_cast<int>(dims_header.size()) == order,
              "load_tns: dims header order mismatch");

  std::vector<index_t> shape(static_cast<std::size_t>(order));
  for (int m = 0; m < order; ++m) {
    const index_t seen = max_idx[static_cast<std::size_t>(m)] + 1;
    if (!dims_header.empty()) {
      PARPP_CHECK(dims_header[static_cast<std::size_t>(m)] >= seen,
                  "load_tns: mode ", m, " index exceeds dims header");
      shape[static_cast<std::size_t>(m)] =
          dims_header[static_cast<std::size_t>(m)];
    } else {
      shape[static_cast<std::size_t>(m)] = seen;
    }
  }
  tensor::CooTensor t(shape);
  t.reserve(static_cast<index_t>(vals.size()));
  for (std::size_t e = 0; e < vals.size(); ++e) {
    t.push({idx.data() + e * static_cast<std::size_t>(order),
            static_cast<std::size_t>(order)},
           vals[e]);
  }
  t.coalesce();
  return t;
}

void save_tns_file(const std::string& path, const tensor::CooTensor& t) {
  std::ofstream os(path);
  PARPP_CHECK(os.is_open(), "cannot open ", path, " for writing");
  save_tns(os, t);
}

tensor::CooTensor load_tns_file(const std::string& path) {
  std::ifstream is(path);
  PARPP_CHECK(is.is_open(), "cannot open ", path, " for reading");
  return load_tns(is);
}

}  // namespace parpp::io
