#include "parpp/util/profile.hpp"

#include <algorithm>
#include <sstream>

namespace parpp {

const char* kernel_name(Kernel k) {
  switch (k) {
    case Kernel::kTTM: return "TTM";
    case Kernel::kMTTV: return "mTTV";
    case Kernel::kHadamard: return "hadamard";
    case Kernel::kSolve: return "solve";
    case Kernel::kComm: return "comm";
    case Kernel::kOther: return "others";
    case Kernel::kCount: break;
  }
  return "?";
}

double Profile::total_seconds() const {
  double t = 0.0;
  for (double s : seconds_) t += s;
  return t;
}

double Profile::total_flops() const {
  double t = 0.0;
  for (double f : flops_) t += f;
  return t;
}

void Profile::clear() {
  seconds_.fill(0.0);
  flops_.fill(0.0);
}

Profile Profile::delta_since(const Profile& earlier) const {
  Profile d;
  for (int i = 0; i < static_cast<int>(Kernel::kCount); ++i) {
    d.seconds_[i] = seconds_[i] - earlier.seconds_[i];
    d.flops_[i] = flops_[i] - earlier.flops_[i];
  }
  return d;
}

void Profile::accumulate(const Profile& other) {
  for (int i = 0; i < static_cast<int>(Kernel::kCount); ++i) {
    seconds_[i] += other.seconds_[i];
    flops_[i] += other.flops_[i];
  }
}

void Profile::max_merge(const Profile& other) {
  for (int i = 0; i < static_cast<int>(Kernel::kCount); ++i) {
    seconds_[i] = std::max(seconds_[i], other.seconds_[i]);
    flops_[i] = std::max(flops_[i], other.flops_[i]);
  }
}

std::string Profile::summary() const {
  std::ostringstream os;
  bool first = true;
  for (int i = 0; i < static_cast<int>(Kernel::kCount); ++i) {
    if (seconds_[i] == 0.0 && flops_[i] == 0.0) continue;
    if (!first) os << " | ";
    first = false;
    os << kernel_name(static_cast<Kernel>(i)) << " " << seconds_[i] << "s";
  }
  if (first) os << "(empty)";
  return os.str();
}

Profile& Profile::thread_default() {
  thread_local Profile p;
  return p;
}

}  // namespace parpp
