// Common definitions shared across the parpp library.
#pragma once

#include <cstddef>
#include <cstdint>
#include <sstream>
#include <stdexcept>
#include <string>

namespace parpp {

/// Index type used for tensor extents and linearized offsets. Signed so that
/// reverse loops and differences are safe (Core Guidelines ES.107).
using index_t = std::int64_t;

/// Thrown on any precondition violation detected by PARPP_CHECK.
class error : public std::runtime_error {
 public:
  explicit error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
template <typename... Args>
[[noreturn]] inline void fail(const char* file, int line, const char* expr,
                              Args&&... args) {
  std::ostringstream os;
  os << "parpp check failed: " << expr << " at " << file << ":" << line;
  if constexpr (sizeof...(Args) > 0) {
    os << " — ";
    (os << ... << args);
  }
  throw error(os.str());
}
}  // namespace detail

}  // namespace parpp

// Precondition check that survives release builds (cheap, API-boundary use).
#define PARPP_CHECK(expr, ...)                                       \
  do {                                                               \
    if (!(expr)) {                                                   \
      ::parpp::detail::fail(__FILE__, __LINE__, #expr, ##__VA_ARGS__); \
    }                                                                \
  } while (0)

// Internal invariant check, compiled out unless PARPP_ENABLE_ASSERTS.
#if defined(PARPP_ENABLE_ASSERTS) && PARPP_ENABLE_ASSERTS
#define PARPP_ASSERT(expr, ...) PARPP_CHECK(expr, ##__VA_ARGS__)
#else
#define PARPP_ASSERT(expr, ...) ((void)0)
#endif
