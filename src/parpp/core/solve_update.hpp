// ALS factor update step: A(n) <- M(n) Γ(n)†.
#pragma once

#include "parpp/la/matrix.hpp"
#include "parpp/util/profile.hpp"

namespace parpp::core {

/// Solves the normal equations of one ALS subproblem (Algorithm 1 line 8).
/// Thin named wrapper over la::solve_gram so drivers read like the paper.
[[nodiscard]] la::Matrix update_factor(const la::Matrix& gamma,
                                       const la::Matrix& mttkrp,
                                       Profile* profile = nullptr);

/// Relative factor change ||A_new - A_old||_F / ||A_new||_F, the quantity
/// compared against the PP tolerance in Algorithm 2.
[[nodiscard]] double relative_change(const la::Matrix& a_new,
                                     const la::Matrix& a_old);

}  // namespace parpp::core
