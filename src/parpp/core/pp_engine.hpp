// Pairwise-perturbation approximated step (paper Eq. (5)-(8)).
//
//   ~M(n) = M_p(n) + sum_{i != n} U(n,i) + V(n)
//   U(n,i)(x,k) = sum_y M_p(n,i)(x,y,k) dA(i)(y,k)     (first order)
//   V(n) = A(n) (sum_{i<j != n} dS(i) * dS(j) * (*_{k != i,j,n} S(k)))
//   dS(i) = A(i)^T dA(i)
//
// Costs per sweep: 2 N^2 s^2 R for the U corrections (mTTV on the pair
// operators) plus O(N^2 (R^2 + s R^2)) small terms — replacing the
// O(s^N R) tree contractions entirely.
#pragma once

#include "parpp/core/pp_operators.hpp"

namespace parpp::core {

class PpApprox {
 public:
  /// Binds to built operators and the live factor/Gram vectors; `a_p` is
  /// the snapshot taken at the operator build.
  PpApprox(const PpOperators& ops, const std::vector<la::Matrix>& factors,
           const std::vector<la::Matrix>& a_p,
           const std::vector<la::Matrix>& grams, Profile* profile = nullptr);

  /// Recomputes dA(i) = A(i) - A_p(i) and dS(i); call after A(i) changes.
  void refresh_mode(int i);

  /// The approximated MTTKRP ~M(n) at the current factors.
  [[nodiscard]] la::Matrix mttkrp_approx(int n) const;

  /// Include the second-order V(n) term (Eq. (7)); on by default, exposed
  /// so the ablation bench can measure its contribution.
  void set_second_order(bool enabled) { second_order_ = enabled; }

  [[nodiscard]] const la::Matrix& d_factor(int i) const {
    return d_factors_[static_cast<std::size_t>(i)];
  }

 private:
  const PpOperators* ops_;
  const std::vector<la::Matrix>* factors_;
  const std::vector<la::Matrix>* a_p_;
  const std::vector<la::Matrix>* grams_;
  Profile* profile_;
  int n_;
  bool second_order_ = true;
  std::vector<la::Matrix> d_factors_;  ///< dA(i)
  std::vector<la::Matrix> d_grams_;    ///< dS(i)
  /// Scratch for the U(n,i) mTTV corrections, recycled across calls.
  mutable util::KernelWorkspace ws_;
  mutable tensor::DenseTensor u_scratch_{ws_};
};

}  // namespace parpp::core
