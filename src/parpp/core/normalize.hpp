// Factor normalization utilities.
//
// Standard CP practice (Kolda & Bader): keep every factor column at unit
// norm and carry the magnitudes in a weight vector lambda, which improves
// the conditioning of the Γ Hadamard chains for long ALS runs and makes
// factors comparable across modes.
#pragma once

#include <vector>

#include "parpp/la/matrix.hpp"

namespace parpp::core {

/// Scales every column of every factor to unit 2-norm and returns the
/// per-rank-component weights lambda_r = prod_n ||A(n)(:,r)||. Zero columns
/// are left untouched and contribute weight 0.
[[nodiscard]] std::vector<double> normalize_columns(
    std::vector<la::Matrix>& factors);

/// Multiplies the weights back into one mode (the usual way to store a
/// normalized decomposition without a separate lambda).
void absorb_weights(std::vector<la::Matrix>& factors,
                    const std::vector<double>& lambda, int mode);

/// Column 2-norms of a matrix.
[[nodiscard]] std::vector<double> column_norms(const la::Matrix& a);

}  // namespace parpp::core
