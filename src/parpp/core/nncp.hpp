// Nonnegative CP decomposition via HALS (hierarchical ALS).
//
// The paper's time-lapse hyperspectral dataset (Fig. 5f) is "usually used
// on the benchmark of nonnegative tensor decomposition" (citing Liavas et
// al. and Ballard et al.), and the PLANC comparator is a nonnegative CP
// code. This module completes that context: a nonnegative CP-ALS whose
// bottleneck is the *same* MTTKRP the tree engines accelerate, so DT/MSDT
// plug in unchanged.
//
// HALS updates one rank-one component at a time:
//   A(n)(:,r) <- max(0, A(n)(:,r) + (M(n)(:,r) - A(n) Γ(n)(:,r)) / Γ(n)(r,r))
// which needs exactly one MTTKRP per mode per sweep — identical cost
// structure to plain ALS, plus O(s R^2) vector work.
#pragma once

#include "parpp/core/cp_als.hpp"

namespace parpp::core {

struct NncpOptions {
  /// Engine used for the MTTKRPs (DT or MSDT; both exact).
  EngineKind engine = EngineKind::kMsdt;
  /// Floor applied after each HALS column update (keeps Γ nonsingular).
  double epsilon = 1e-12;
  /// Number of HALS inner passes over the columns per mode update.
  int inner_iterations = 1;
};

/// One HALS pass over the columns of A given M = MTTKRP(A's mode) and Γ:
///   A(:,r) <- max(0, A(:,r) + (M(:,r) - A Γ(:,r)) / Γ(r,r))
/// followed by an eps_floor rescue of exactly-zero columns (keeps Γ
/// nonsingular). Columns update sequentially (Gauss-Seidel), rows
/// independently — shared by the plain and PP-accelerated HALS drivers.
void hals_update(la::Matrix& a, const la::Matrix& m, const la::Matrix& gamma,
                 double eps_floor, Profile& profile);

/// Runs nonnegative CP-ALS (HALS) until the fitness change drops below
/// options.tol or max_sweeps is reached. Factors are initialized uniform
/// in [0,1) (already nonnegative) and stay entrywise >= 0. Like cp_als, the
/// TensorProblem overload is the storage-agnostic core (HALS consumes only
/// the MTTKRP and the grams, so sparse storage plugs in unchanged); the
/// DenseTensor/CsfTensor overloads adapt via core::make_problem.
[[nodiscard]] CpResult nncp_hals(const TensorProblem& problem,
                                 const CpOptions& options,
                                 const NncpOptions& nn_options = {},
                                 const DriverHooks& hooks = {});
[[nodiscard]] CpResult nncp_hals(const tensor::DenseTensor& t,
                                 const CpOptions& options,
                                 const NncpOptions& nn_options = {});
[[nodiscard]] CpResult nncp_hals(const tensor::DenseTensor& t,
                                 const CpOptions& options,
                                 const NncpOptions& nn_options,
                                 const DriverHooks& hooks);
[[nodiscard]] CpResult nncp_hals(const tensor::CsfTensor& t,
                                 const CpOptions& options,
                                 const NncpOptions& nn_options = {},
                                 const DriverHooks& hooks = {});

}  // namespace parpp::core
