// Pairwise-perturbation operator construction (paper Sec. II-D, Fig. 1b).
//
// The PP initialization step materializes, at the snapshot factors A_p:
//   * pair operators  M_p(i,j) = T contracted with A_p(k) for all k not in
//     {i,j}  — an (s_i, s_j, R) tensor per pair i < j;
//   * the full MTTKRPs M_p(n) for every mode.
//
// The build uses a PP dimension tree: three first-level TTM intermediates
// (sets full\{0}, full\{N-1}, full\{N-2}) cover every pair; chains of mTTVs
// with per-(root, subset) memoization produce the pairs and leaves. When a
// regular-sweep engine is supplied as donor, any version-current cached
// intermediate covering a needed set is reused — in the steady state this
// amortizes one of the three first-level TTMs (footnote 1), giving the
// 4 s^N R leading cost of Table I.
#pragma once

#include <map>
#include <vector>

#include "parpp/core/dim_tree.hpp"
#include "parpp/la/matrix.hpp"
#include "parpp/la/scalar.hpp"
#include "parpp/tensor/csf_tensor.hpp"
#include "parpp/tensor/dense_tensor.hpp"
#include "parpp/util/profile.hpp"
#include "parpp/util/workspace.hpp"

namespace parpp::core {

class PpOperators {
 public:
  /// Binds to the tensor and the factor vector whose *current* values are
  /// snapshotted on each build().
  PpOperators(const tensor::DenseTensor& t,
              const std::vector<la::Matrix>& factors,
              Profile* profile = nullptr);

  /// Sparse storage: pair operators come from two-free-mode CSF walks
  /// (tensor::pair_mttkrp_csf_into) and the leaves M_p(n) are the sparse
  /// engine's exact MTTKRPs — nothing is densified, and the approximated
  /// sweeps downstream (PpApprox, the Algorithm 4 corrections) consume the
  /// same dense pair operators either storage produces. Under
  /// la::Scalar::kF32 the build streams fp32 factor/value mirrors through
  /// the same walks (fp64 accumulation) and each PairOp additionally keeps
  /// an fp32 copy of its data for the fp32-streaming corrections in
  /// PpApprox. The dense constructor above is fp64-only.
  PpOperators(const tensor::CsfTensor& t,
              const std::vector<la::Matrix>& factors,
              Profile* profile = nullptr,
              la::Scalar scalar = la::Scalar::kF64);

  /// (Re)builds all operators at the current factor values. `donor` may be
  /// the regular-sweep tree engine (or null; sparse builds have no tree
  /// cache to amortize against and ignore it).
  void build(const TreeEngineBase* donor = nullptr);

  [[nodiscard]] bool built() const { return built_; }
  [[nodiscard]] int order() const { return n_; }
  [[nodiscard]] bool sparse() const { return sparse_t_ != nullptr; }
  [[nodiscard]] la::Scalar scalar() const { return scalar_; }

  /// Build-arena counters: steady-state rebuilds must hold both flat
  /// (tests assert the PP phase never allocates after the first build).
  [[nodiscard]] std::size_t workspace_bytes() const {
    return ws_.total_bytes();
  }
  [[nodiscard]] std::size_t workspace_allocations() const {
    return ws_.allocation_count();
  }

  /// Pair operator for i < j; `modes` reports the storage order of its two
  /// tensor modes (the rank mode is always last). Under kF32, `data_f32`
  /// mirrors `data` (f32_valid true) so consumers can stream half the
  /// bytes; `data` itself stays the fp64 accumulation result.
  struct PairOp {
    tensor::DenseTensor data;
    std::vector<int> modes;
    std::vector<float> data_f32;
    bool f32_valid = false;
  };
  [[nodiscard]] const PairOp& pair_op(int i, int j) const;
  /// Mutable access for drivers that post-process operators in place (the
  /// reference PP implementation reduces them across ranks). Invalidates
  /// the operator's fp32 mirror — post-processed operators are consumed
  /// through the fp64 data.
  [[nodiscard]] PairOp& mutable_pair_op(int i, int j);

  /// M_p(n): the exact MTTKRP at the snapshot factors.
  [[nodiscard]] const la::Matrix& mttkrp_p(int n) const;

  /// Diagnostic: first-level TTMs executed by the last build (2 when the
  /// donor amortization fired, 3 otherwise; N=3..; tests rely on this).
  [[nodiscard]] long last_build_ttms() const { return last_build_ttms_; }

  /// Total elements held by the pair operators (auxiliary memory proxy).
  [[nodiscard]] index_t operator_elements() const;

 private:
  struct Node {
    tensor::DenseTensor data;
    std::vector<int> modes;
  };

  /// Root set choice for a pair (Sec. DESIGN.md): the first of
  /// {0, N-1, N-2} not contained in the pair.
  [[nodiscard]] int root_exclusion_for(int i, int j) const;

  /// Ensures the intermediate covering `set` (sorted) under root exclusion
  /// `c`; memoized on the set.
  const Node& ensure_set(int c, const std::vector<int>& set,
                         const TreeEngineBase* donor);

  void build_sparse();

  const tensor::DenseTensor* t_ = nullptr;
  const tensor::CsfTensor* sparse_t_ = nullptr;
  const std::vector<la::Matrix>* factors_;
  Profile* profile_;
  int n_;
  la::Scalar scalar_ = la::Scalar::kF64;
  /// fp32 build-state mirrors (kF32 sparse builds only): factor mirrors
  /// re-synced at each build (the build snapshots the current factors) and
  /// a one-time value mirror of the immutable tensor.
  std::vector<la::MatrixF32> factor_mirrors_;
  tensor::CsfValsF32 vals32_;
  bool vals32_synced_ = false;
  bool built_ = false;
  long last_build_ttms_ = 0;
  /// Arena for build-chain intermediates: memo nodes release their buffers
  /// here when the build finishes, so periodic rebuilds do not allocate.
  util::KernelWorkspace ws_;
  std::map<std::vector<int>, Node> memo_;
  std::map<std::pair<int, int>, PairOp> pairs_;
  std::vector<la::Matrix> mp_;
  tensor::DenseTensor leaf_scratch_{ws_};
};

}  // namespace parpp::core
