// Sequential PP-CP-ALS driver (Algorithm 2).
#pragma once

#include "parpp/core/cp_als.hpp"

namespace parpp::core {

struct PpOptions {
  /// PP tolerance epsilon: the approximated step runs while every factor's
  /// relative change since the snapshot stays below it.
  double pp_tol = 0.1;
  /// Engine used for the regular ALS sweeps (the paper pairs PP with MSDT).
  EngineKind regular_engine = EngineKind::kMsdt;
  /// Record (approximate) fitness after each PP-approximated sweep too.
  bool record_pp_sweeps = true;
  /// Disable the second-order V(n) correction (ablation).
  bool second_order = true;
  /// Cap on consecutive PP-approximated sweeps inside one PP phase,
  /// guarding against a stalled inner loop (generous by default).
  int max_pp_sweeps_per_phase = 500;
};

/// Runs PP-CP-ALS: regular sweeps until the factors move slowly, then PP
/// initialization + approximated sweeps, falling back to regular sweeps
/// whenever the perturbation grows past pp_tol (Algorithm 2). Like cp_als,
/// the TensorProblem overload is the storage-agnostic core; the
/// DenseTensor and CsfTensor overloads adapt via core::make_problem (the
/// sparse path builds its operators with CSF pair walks and never
/// densifies).
[[nodiscard]] CpResult pp_cp_als(const tensor::DenseTensor& t,
                                 const CpOptions& options,
                                 const PpOptions& pp_options = {});
[[nodiscard]] CpResult pp_cp_als(const tensor::DenseTensor& t,
                                 const CpOptions& options,
                                 const PpOptions& pp_options,
                                 const DriverHooks& hooks);
[[nodiscard]] CpResult pp_cp_als(const tensor::CsfTensor& t,
                                 const CpOptions& options,
                                 const PpOptions& pp_options = {},
                                 const DriverHooks& hooks = {});

namespace detail {

/// One factor update inside the shared Algorithm-2 loop: overwrite `a`
/// given Γ and the (exact or PP-approximated) MTTKRP `m`.
using FactorUpdate = std::function<void(
    la::Matrix& a, const la::Matrix& gamma, const la::Matrix& m,
    Profile& profile)>;

/// The Algorithm-2 driver core shared by pp_cp_als and pp_nncp_hals: the
/// PP-phase trigger, divergence guard, stopping comparison and final exact
/// residual are identical for both; only the factor update differs.
/// `regular_phase` labels the exact sweeps in the history ("als"/"nncp").
/// `problem` must provide make_pp_operators.
[[nodiscard]] CpResult run_pp_driver(const TensorProblem& problem,
                                     const CpOptions& options,
                                     const PpOptions& pp_options,
                                     const DriverHooks& hooks,
                                     const FactorUpdate& update,
                                     const char* regular_phase);

}  // namespace detail

}  // namespace parpp::core
