#include "parpp/core/dim_tree.hpp"

#include <algorithm>

#include "parpp/core/msdt.hpp"
#include "parpp/core/pp_operators.hpp"
#include "parpp/tensor/mttkrp_fused.hpp"
#include "parpp/tensor/mttv.hpp"
#include "parpp/tensor/transpose.hpp"
#include "parpp/tensor/ttm.hpp"

namespace parpp::core {

const char* engine_kind_name(EngineKind kind) {
  switch (kind) {
    case EngineKind::kNaive: return "naive";
    case EngineKind::kDt: return "DT";
    case EngineKind::kMsdt: return "MSDT";
    case EngineKind::kSparse: return "sparse";
  }
  return "?";
}

TreeEngineBase::TreeEngineBase(const tensor::DenseTensor& t,
                               const std::vector<la::Matrix>& factors,
                               Profile* profile, const EngineOptions& options,
                               bool copy_default)
    : t_(&t),
      factors_(&factors),
      profile_(profile),
      n_(t.order()),
      max_cached_modes_(options.max_cached_modes),
      versions_(static_cast<std::size_t>(t.order()), 0),
      use_transposed_copy_(
          options.use_transposed_copy == TransposedCopy::kAuto
              ? copy_default
              : options.use_transposed_copy == TransposedCopy::kOn) {
  PARPP_CHECK(static_cast<int>(factors.size()) == n_,
              "engine: factor count mismatch");
  for (int m = 0; m < n_; ++m) {
    PARPP_CHECK(factors[static_cast<std::size_t>(m)].rows() == t.extent(m),
                "engine: factor ", m, " rows mismatch");
  }
  identity_order_.resize(static_cast<std::size_t>(n_));
  for (int m = 0; m < n_; ++m) identity_order_[static_cast<std::size_t>(m)] = m;

  if (use_transposed_copy_ && n_ >= 3) {
    // Rotation by h = ceil(N/2): copy modes (h, h+1, ..., N-1, 0, ..., h-1).
    // Together with the original this places modes {0, N-1, h, h-1} at a
    // boundary position of some copy — all N modes for N in {3, 4}.
    const int h = (n_ + 1) / 2;
    rotated_order_.reserve(static_cast<std::size_t>(n_));
    for (int m = 0; m < n_; ++m) rotated_order_.push_back((h + m) % n_);
    rotated_ = std::make_unique<tensor::DenseTensor>(
        tensor::transpose(t, rotated_order_));
  }
}

void TreeEngineBase::notify_update(int mode) {
  PARPP_CHECK(mode >= 0 && mode < n_, "notify_update: bad mode");
  ++versions_[static_cast<std::size_t>(mode)];
  // Opportunistically drop stale nodes to bound auxiliary memory.
  for (auto it = cache_.begin(); it != cache_.end();) {
    if (!node_current(*it->second))
      it = cache_.erase(it);
    else
      ++it;
  }
}

bool TreeEngineBase::node_current(const detail::TreeNode& node) const {
  for (const auto& [mode, ver] : node.deps) {
    if (versions_[static_cast<std::size_t>(mode)] != ver) return false;
  }
  return true;
}

index_t TreeEngineBase::cached_elements() const {
  index_t total = 0;
  for (const auto& [key, node] : cache_) total += node->data.size();
  return total;
}

detail::NodePtr TreeEngineBase::find_current_superset(
    const std::vector<int>& subset) const {
  detail::NodePtr best;
  for (const auto& [key, node] : cache_) {
    if (!node_current(*node)) continue;
    bool covers = true;
    for (int m : subset) {
      if (std::find(node->modes.begin(), node->modes.end(), m) ==
          node->modes.end()) {
        covers = false;
        break;
      }
    }
    if (covers && (!best || node->modes.size() < best->modes.size()))
      best = node;
  }
  return best;
}

detail::NodePtr TreeEngineBase::cache_lookup(const RangeKey& key) {
  auto it = cache_.find(key);
  if (it == cache_.end()) return nullptr;
  if (!node_current(*it->second)) {
    cache_.erase(it);
    return nullptr;
  }
  return it->second;
}

void TreeEngineBase::cache_store(const RangeKey& key, detail::NodePtr node) {
  if (cacheable(key.second)) cache_[key] = std::move(node);
}

std::vector<int> TreeEngineBase::range_modes(const RangeKey& key) const {
  std::vector<int> modes;
  modes.reserve(static_cast<std::size_t>(key.second));
  for (int i = 0; i < key.second; ++i) modes.push_back((key.first + i) % n_);
  return modes;
}

std::pair<const tensor::DenseTensor*, const std::vector<int>*>
TreeEngineBase::pick_copy(int ttm_mode) const {
  if (rotated_) {
    // Position of ttm_mode in the rotated order.
    const auto it =
        std::find(rotated_order_.begin(), rotated_order_.end(), ttm_mode);
    const int rpos = static_cast<int>(it - rotated_order_.begin());
    const bool orig_boundary = ttm_mode == 0 || ttm_mode == n_ - 1;
    const bool rot_boundary = rpos == 0 || rpos == n_ - 1;
    if (!orig_boundary && rot_boundary) return {rotated_.get(), &rotated_order_};
  }
  return {t_, &identity_order_};
}

detail::NodePtr TreeEngineBase::build_from_raw(const RangeKey& key) {
  auto modes_keep = range_modes(key);
  std::vector<bool> keep(static_cast<std::size_t>(n_), false);
  for (int m : modes_keep) keep[static_cast<std::size_t>(m)] = true;

  std::vector<int> contract;
  for (int m = 0; m < n_; ++m)
    if (!keep[static_cast<std::size_t>(m)]) contract.push_back(m);
  PARPP_ASSERT(!contract.empty(), "build_from_raw: nothing to contract");

  // Choose the TTM mode: prefer boundary modes of the raw layout (single
  // large GEMM); otherwise any copy that puts the mode on a boundary.
  int ttm_mode = contract.back();
  if (std::find(contract.begin(), contract.end(), n_ - 1) != contract.end())
    ttm_mode = n_ - 1;
  else if (std::find(contract.begin(), contract.end(), 0) != contract.end())
    ttm_mode = 0;

  const auto [src, order] = pick_copy(ttm_mode);
  const auto uorder = *order;
  const int pos =
      static_cast<int>(std::find(uorder.begin(), uorder.end(), ttm_mode) -
                       uorder.begin());

  auto node = std::make_shared<detail::TreeNode>();
  // Node storage is workspace-backed: buffers of invalidated nodes cycle
  // back through ws_, so repeated sweeps rebuild allocation-free.
  tensor::DenseTensor cur(ws_), tmp(ws_);
  tensor::ttm_first_into(*src, pos,
                         (*factors_)[static_cast<std::size_t>(ttm_mode)], cur,
                         &profile());
  ++ttm_count_;
  node->modes = uorder;
  node->modes.erase(node->modes.begin() + pos);
  node->deps.emplace_back(ttm_mode, version(ttm_mode));

  // Remaining contractions by mTTV, largest mode index first (determinism;
  // cost is order-independent for equidimensional tensors).
  std::vector<int> rest;
  for (int m : contract)
    if (m != ttm_mode) rest.push_back(m);
  std::sort(rest.rbegin(), rest.rend());
  for (int m : rest) {
    const auto it = std::find(node->modes.begin(), node->modes.end(), m);
    PARPP_ASSERT(it != node->modes.end(), "contract mode not in node");
    const int p = static_cast<int>(it - node->modes.begin());
    tensor::mttv_into(cur, p, (*factors_)[static_cast<std::size_t>(m)], tmp,
                      &profile());
    std::swap(cur, tmp);
    ++mttv_count_;
    node->modes.erase(node->modes.begin() + p);
    node->deps.emplace_back(m, version(m));
  }
  node->data = std::move(cur);
  return node;
}

detail::NodePtr TreeEngineBase::build_from_parent(
    const detail::NodePtr& parent, const RangeKey& key) {
  auto modes_keep = range_modes(key);
  std::vector<int> contract;
  for (int m : parent->modes) {
    if (std::find(modes_keep.begin(), modes_keep.end(), m) == modes_keep.end())
      contract.push_back(m);
  }
  PARPP_ASSERT(!contract.empty(), "build_from_parent: nothing to contract");
  std::sort(contract.rbegin(), contract.rend());

  auto node = std::make_shared<detail::TreeNode>();
  node->modes = parent->modes;
  node->deps = parent->deps;
  const tensor::DenseTensor* src = &parent->data;
  tensor::DenseTensor cur(ws_), tmp(ws_);
  for (int m : contract) {
    const auto it = std::find(node->modes.begin(), node->modes.end(), m);
    PARPP_ASSERT(it != node->modes.end(), "contract mode not in parent");
    const int p = static_cast<int>(it - node->modes.begin());
    tensor::mttv_into(*src, p, (*factors_)[static_cast<std::size_t>(m)], tmp,
                      &profile());
    std::swap(cur, tmp);
    src = &cur;
    ++mttv_count_;
    node->modes.erase(node->modes.begin() + p);
    node->deps.emplace_back(m, version(m));
  }
  node->data = std::move(cur);
  return node;
}

la::Matrix TreeEngineBase::leaf_matrix(const detail::TreeNode& node) const {
  PARPP_CHECK(node.modes.size() == 1, "leaf_matrix: node is not a leaf");
  PARPP_CHECK(node.data.order() == 2, "leaf_matrix: unexpected node shape");
  la::Matrix m(node.data.extent(0), node.data.extent(1));
  std::copy(node.data.data(), node.data.data() + node.data.size(), m.data());
  return m;
}

// ---------------------------------------------------------------------------
// DtEngine

detail::NodePtr DtEngine::ensure_contiguous(int lo, int len) {
  const int n = order();
  PARPP_ASSERT(len >= 1 && len < n, "ensure_contiguous: bad range");
  const RangeKey key{lo, len};
  if (auto hit = cache_lookup(key)) return hit;

  // Find the parent on the fixed binary-split descent from [0, n).
  int plo = 0, plen = n;
  while (true) {
    const int left_len = (plen + 1) / 2;
    int clo, clen;
    if (lo >= plo && lo + len <= plo + left_len) {
      clo = plo;
      clen = left_len;
    } else {
      clo = plo + left_len;
      clen = plen - left_len;
    }
    if (clo == lo && clen == len) break;  // (plo, plen) is the parent chain
    plo = clo;
    plen = clen;
    PARPP_ASSERT(plen >= len, "descent failed");
  }

  detail::NodePtr node;
  if (plen == n) {
    node = build_from_raw(key);
  } else {
    const auto parent = ensure_contiguous(plo, plen);
    node = build_from_parent(parent, key);
  }
  cache_store(key, node);
  return node;
}

la::Matrix DtEngine::mttkrp(int mode) {
  PARPP_CHECK(mode >= 0 && mode < order(), "mttkrp: bad mode");
  if (order() == 1) {
    // Degenerate: M(0) is the tensor itself replicated over rank columns.
    la::Matrix m(factors()[0].rows(), factors()[0].cols());
    return m;
  }
  const auto leaf = ensure_contiguous(mode, 1);
  return leaf_matrix(*leaf);
}

// ---------------------------------------------------------------------------
// NaiveEngine

namespace {

// Reference (non-amortizing) engine on the fused MTTKRP path: no KRP
// materialization, no unfold copy, O(block·R) auxiliary memory, and zero
// steady-state workspace growth across sweeps via the persistent arena.
// (The returned result matrix is the one allocation the by-value interface
// requires; callers needing full reuse take tensor::mttkrp_into directly.)
class NaiveEngine final : public MttkrpEngine {
 public:
  NaiveEngine(const tensor::DenseTensor& t,
              const std::vector<la::Matrix>& factors, Profile* profile,
              la::Scalar scalar = la::Scalar::kF64)
      : t_(&t), factors_(&factors), profile_(profile), scalar_(scalar) {
    if (scalar_ == la::Scalar::kF32) {
      // One-time fp32 copy of the (immutable) tensor plus per-factor
      // mirrors; mttkrp() re-syncs only the mirrors notify_update marked
      // stale, so the steady-state sweep converts N rows-worth per mode,
      // not the whole factor set.
      t32_.resize(static_cast<std::size_t>(t.size()));
      const double* src = t.data();
      for (std::size_t i = 0; i < t32_.size(); ++i)
        t32_[i] = static_cast<float>(src[i]);
      mirrors_.resize(factors.size());
      dirty_.assign(factors.size(), 1);
    }
  }

  [[nodiscard]] la::Matrix mttkrp(int mode) override {
    if (scalar_ == la::Scalar::kF32) {
      for (std::size_t m = 0; m < mirrors_.size(); ++m) {
        if (dirty_[m] != 0) mirrors_[m].sync((*factors_)[m]);
        dirty_[m] = 0;
      }
      la::Matrix out;
      tensor::mttkrp_into_f32(t32_.data(), t_->shape(), mirrors_, mode, out,
                              profile_, &ws_);
      return out;
    }
    return tensor::mttkrp_fused(*t_, *factors_, mode, profile_, &ws_);
  }
  void notify_update(int mode) override {
    if (!dirty_.empty()) dirty_[static_cast<std::size_t>(mode)] = 1;
  }
  [[nodiscard]] std::string_view name() const override { return "naive"; }

 private:
  const tensor::DenseTensor* t_;
  const std::vector<la::Matrix>* factors_;
  Profile* profile_;
  la::Scalar scalar_;
  std::vector<float> t32_;
  std::vector<la::MatrixF32> mirrors_;
  std::vector<char> dirty_;
  util::KernelWorkspace ws_;
};

}  // namespace

std::unique_ptr<MttkrpEngine> make_engine(EngineKind kind,
                                          const tensor::DenseTensor& t,
                                          const std::vector<la::Matrix>& factors,
                                          Profile* profile,
                                          const EngineOptions& options) {
  switch (kind) {
    case EngineKind::kNaive:
      return std::make_unique<NaiveEngine>(t, factors, profile,
                                           options.scalar);
    case EngineKind::kDt:
    case EngineKind::kMsdt:
      // The tree engines cache fp64 intermediates whose chains feed each
      // other; an fp32 storage axis there would change what "cached exact"
      // means mid-chain, so they stay fp64-only.
      PARPP_CHECK(options.scalar == la::Scalar::kF64,
                  "make_engine: fp32 storage is supported by the naive "
                  "(fused) and sparse engines only — the dimension-tree "
                  "engines are fp64-only");
      if (kind == EngineKind::kDt)
        return std::make_unique<DtEngine>(t, factors, profile, options);
      return std::make_unique<MsdtEngine>(t, factors, profile, options);
    case EngineKind::kSparse:
      PARPP_CHECK(false,
                  "make_engine: the sparse engine needs CSF storage — build "
                  "a tensor::CsfTensor and use the sparse_engine.hpp overload");
  }
  PARPP_CHECK(false, "make_engine: unknown kind");
  return nullptr;
}

TensorProblem make_problem(const tensor::DenseTensor& t) {
  TensorProblem p;
  p.shape = t.shape();
  p.squared_norm = t.squared_norm();
  p.make_engine = [&t](EngineKind kind, const std::vector<la::Matrix>& factors,
                       Profile* profile, const EngineOptions& options) {
    return make_engine(kind, t, factors, profile, options);
  };
  p.make_pp_operators = [&t](const std::vector<la::Matrix>& factors,
                             Profile* profile, const EngineOptions& options) {
    PARPP_CHECK(options.scalar == la::Scalar::kF64,
                "make_pp_operators: the dense PP operator chains are "
                "fp64-only — fp32 storage applies to sparse PP builds");
    return std::make_unique<PpOperators>(t, factors, profile);
  };
  return p;
}

}  // namespace parpp::core
