#include "parpp/core/pp_engine.hpp"

#include <algorithm>

#include "parpp/la/gemm.hpp"
#include "parpp/tensor/mttv.hpp"

namespace parpp::core {

PpApprox::PpApprox(const PpOperators& ops,
                   const std::vector<la::Matrix>& factors,
                   const std::vector<la::Matrix>& a_p,
                   const std::vector<la::Matrix>& grams, Profile* profile)
    : ops_(&ops),
      factors_(&factors),
      a_p_(&a_p),
      grams_(&grams),
      profile_(profile),
      n_(ops.order()) {
  PARPP_CHECK(ops.built(), "PpApprox: operators not built");
  d_factors_.resize(static_cast<std::size_t>(n_));
  d_grams_.resize(static_cast<std::size_t>(n_));
  for (int i = 0; i < n_; ++i) refresh_mode(i);
}

void PpApprox::refresh_mode(int i) {
  const auto ui = static_cast<std::size_t>(i);
  la::Matrix d = (*factors_)[ui];
  d.axpy(-1.0, (*a_p_)[ui]);
  d_factors_[ui] = std::move(d);
  // dS(i) = A(i)^T dA(i) (Eq. (8)).
  Profile& prof = profile_ ? *profile_ : Profile::thread_default();
  ScopedProfile sp(prof, Kernel::kOther,
                   2.0 * static_cast<double>((*factors_)[ui].rows()) *
                       (*factors_)[ui].cols() * (*factors_)[ui].cols());
  d_grams_[ui] =
      la::matmul((*factors_)[ui], d_factors_[ui], la::Trans::kYes);
}

la::Matrix PpApprox::mttkrp_approx(int n) const {
  Profile& prof = profile_ ? *profile_ : Profile::thread_default();
  la::Matrix m = ops_->mttkrp_p(n);

  // First-order corrections U(n,i) via the pair operators.
  for (int i = 0; i < n_; ++i) {
    if (i == n) continue;
    const auto& op = ops_->pair_op(std::min(n, i), std::max(n, i));
    const auto it = std::find(op.modes.begin(), op.modes.end(), i);
    PARPP_ASSERT(it != op.modes.end(), "pair op missing mode");
    const int pos = static_cast<int>(it - op.modes.begin());
    tensor::DenseTensor& u = u_scratch_;
    // fp32-stored pair operators (sparse kF32 builds) stream half the
    // bytes through the correction's mTTV; operators whose mirror went
    // stale (post-processed via mutable_pair_op) fall back to fp64.
    if (op.f32_valid) {
      tensor::mttv_into_f32(op.data, op.data_f32.data(), pos,
                            d_factors_[static_cast<std::size_t>(i)], u,
                            &prof);
    } else {
      tensor::mttv_into(op.data, pos, d_factors_[static_cast<std::size_t>(i)],
                        u, &prof);
    }
    PARPP_ASSERT(u.order() == 2 && u.extent(0) == m.rows(),
                 "U correction shape mismatch");
    const double* ud = u.data();
    double* md = m.data();
    for (index_t x = 0; x < m.size(); ++x) md[x] += ud[x];
  }

  if (!second_order_) return m;

  // Second-order correction V(n) (Eq. (7)).
  const index_t r = m.cols();
  la::Matrix w(r, r);
  {
    ScopedProfile sp(prof, Kernel::kHadamard,
                     static_cast<double>(n_) * n_ * n_ * r * r);
    for (int i = 0; i < n_; ++i) {
      if (i == n) continue;
      for (int j = i + 1; j < n_; ++j) {
        if (j == n) continue;
        la::Matrix term = la::hadamard(d_grams_[static_cast<std::size_t>(i)],
                                       d_grams_[static_cast<std::size_t>(j)]);
        for (int k = 0; k < n_; ++k) {
          if (k == i || k == j || k == n) continue;
          term.hadamard_inplace((*grams_)[static_cast<std::size_t>(k)]);
        }
        w.axpy(1.0, term);
      }
    }
  }
  {
    ScopedProfile sp(prof, Kernel::kOther,
                     2.0 * static_cast<double>(m.rows()) * r * r);
    la::Matrix v = la::matmul((*factors_)[static_cast<std::size_t>(n)], w);
    m.axpy(1.0, v);
  }
  return m;
}

}  // namespace parpp::core
