#include "parpp/core/pp_operators.hpp"

#include <algorithm>

#include "parpp/tensor/csf_tensor.hpp"
#include "parpp/tensor/mttkrp_sparse.hpp"
#include "parpp/tensor/mttv.hpp"
#include "parpp/tensor/ttm.hpp"

namespace parpp::core {

PpOperators::PpOperators(const tensor::DenseTensor& t,
                         const std::vector<la::Matrix>& factors,
                         Profile* profile)
    : t_(&t), factors_(&factors), profile_(profile), n_(t.order()) {
  PARPP_CHECK(n_ >= 3, "pairwise perturbation requires order >= 3");
  PARPP_CHECK(static_cast<int>(factors.size()) == n_,
              "PpOperators: factor count mismatch");
}

PpOperators::PpOperators(const tensor::CsfTensor& t,
                         const std::vector<la::Matrix>& factors,
                         Profile* profile, la::Scalar scalar)
    : sparse_t_(&t),
      factors_(&factors),
      profile_(profile),
      n_(t.order()),
      scalar_(scalar) {
  PARPP_CHECK(n_ >= 3, "pairwise perturbation requires order >= 3");
  PARPP_CHECK(static_cast<int>(factors.size()) == n_,
              "PpOperators: factor count mismatch");
  PARPP_CHECK(t.layout() == tensor::CsfLayout::kAllModes,
              "PpOperators: the pair-operator walks need a root tree per "
              "mode — build the CsfTensor with CsfLayout::kAllModes");
}

int PpOperators::root_exclusion_for(int i, int j) const {
  for (int c : {0, n_ - 1, n_ - 2}) {
    if (c != i && c != j) return c;
  }
  PARPP_CHECK(false, "no admissible root exclusion for pair (", i, ",", j, ")");
  return -1;
}

const PpOperators::Node& PpOperators::ensure_set(int c,
                                                 const std::vector<int>& set,
                                                 const TreeEngineBase* donor) {
  auto it = memo_.find(set);
  if (it != memo_.end()) return it->second;

  Profile& prof = profile_ ? *profile_ : Profile::thread_default();

  // Donor lookup: an exactly-matching current intermediate from the regular
  // sweep's cache can be adopted wholesale.
  if (donor) {
    if (auto d = donor->find_current_superset(set);
        d && d->modes.size() == set.size()) {
      Node node;
      node.data = d->data;  // copy; donor cache stays valid
      node.modes = d->modes;
      return memo_.emplace(set, std::move(node)).first->second;
    }
  }

  const std::vector<int> full = [&] {
    std::vector<int> f;
    for (int m = 0; m < n_; ++m)
      if (m != c) f.push_back(m);
    return f;
  }();

  if (set == full) {
    // First-level intermediate: one TTM on mode c, into workspace-backed
    // storage recycled across builds.
    Node node;
    node.data = tensor::DenseTensor(ws_);
    tensor::ttm_first_into(*t_, c, (*factors_)[static_cast<std::size_t>(c)],
                           node.data, &prof);
    ++last_build_ttms_;
    node.modes = full;
    return memo_.emplace(set, std::move(node)).first->second;
  }

  // Parent on the canonical chain removes elements of full \ set in
  // descending order, so the parent re-adds the smallest missing element.
  std::vector<int> missing;
  std::set_difference(full.begin(), full.end(), set.begin(), set.end(),
                      std::back_inserter(missing));
  PARPP_ASSERT(!missing.empty(), "ensure_set: set not below root");
  const int q = missing.front();
  std::vector<int> parent_set = set;
  parent_set.insert(
      std::upper_bound(parent_set.begin(), parent_set.end(), q), q);
  const Node& parent = ensure_set(c, parent_set, donor);

  const auto pit = std::find(parent.modes.begin(), parent.modes.end(), q);
  PARPP_ASSERT(pit != parent.modes.end(), "parent missing contract mode");
  const int pos = static_cast<int>(pit - parent.modes.begin());

  Node node;
  node.data = tensor::DenseTensor(ws_);
  tensor::mttv_into(parent.data, pos,
                    (*factors_)[static_cast<std::size_t>(q)], node.data,
                    &prof);
  node.modes = parent.modes;
  node.modes.erase(node.modes.begin() + pos);
  return memo_.emplace(set, std::move(node)).first->second;
}

void PpOperators::build_sparse() {
  if (mp_.size() != static_cast<std::size_t>(n_))
    mp_.resize(static_cast<std::size_t>(n_));
  last_build_ttms_ = 0;
  Profile& prof = profile_ ? *profile_ : Profile::thread_default();

  const bool f32 = scalar_ == la::Scalar::kF32;
  if (f32) {
    // The build snapshots the current factor values, so the mirrors are
    // re-synced here once per build; the tensor value mirror is one-time.
    if (factor_mirrors_.size() != static_cast<std::size_t>(n_))
      factor_mirrors_.resize(static_cast<std::size_t>(n_));
    la::sync_mirrors(*factors_, factor_mirrors_);
    if (!vals32_synced_) {
      vals32_.sync(*sparse_t_);
      vals32_synced_ = true;
    }
  }

  // Pair operators via the two-free-mode CSF walk. The map entries keep
  // workspace-backed storage across rebuilds (shapes are build-invariant),
  // so the periodic PP initializations never allocate after the first.
  for (int i = 0; i < n_; ++i) {
    for (int j = i + 1; j < n_; ++j) {
      PairOp& op = pairs_[std::make_pair(i, j)];
      if (op.modes.empty()) op.data = tensor::DenseTensor(ws_);
      if (f32) {
        tensor::pair_mttkrp_csf_into_f32(*sparse_t_, factor_mirrors_, i, j,
                                         vals32_, op.data, &prof, &ws_);
        // fp32 copy for the fp32-streaming PpApprox corrections; the size
        // is build-invariant, so steady-state rebuilds reuse the buffer.
        op.data_f32.resize(static_cast<std::size_t>(op.data.size()));
        const double* src = op.data.data();
#pragma omp simd
        for (index_t x = 0; x < op.data.size(); ++x)
          op.data_f32[static_cast<std::size_t>(x)] =
              static_cast<float>(src[x]);
        op.f32_valid = true;
      } else {
        tensor::pair_mttkrp_csf_into(*sparse_t_, *factors_, i, j, op.data,
                                     &prof, &ws_);
      }
      op.modes = {i, j};
    }
  }
  built_ = true;

  // Leaves M_p(n): the sparse engine's exact MTTKRP at the snapshot
  // factors (the CSF analogue of contracting the partner mode out of a
  // pair operator, with the same no-densification guarantee).
  for (int m = 0; m < n_; ++m) {
    if (f32) {
      tensor::mttkrp_csf_into_f32(*sparse_t_, factor_mirrors_, m, vals32_,
                                  mp_[static_cast<std::size_t>(m)], &prof,
                                  &ws_);
    } else {
      tensor::mttkrp_csf_into(*sparse_t_, *factors_, m,
                              mp_[static_cast<std::size_t>(m)], &prof, &ws_);
    }
  }
}

void PpOperators::build(const TreeEngineBase* donor) {
  if (sparse_t_ != nullptr) {
    build_sparse();
    return;
  }
  memo_.clear();
  if (mp_.size() != static_cast<std::size_t>(n_))
    mp_.resize(static_cast<std::size_t>(n_));
  last_build_ttms_ = 0;

  // Pair operators. Existing map entries (shapes are build-invariant) are
  // assigned in place so periodic rebuilds reuse their buffers.
  for (int i = 0; i < n_; ++i) {
    for (int j = i + 1; j < n_; ++j) {
      const int c = root_exclusion_for(i, j);
      const Node& node = ensure_set(c, {i, j}, donor);
      PairOp& op = pairs_[std::make_pair(i, j)];
      op.data = node.data;
      op.modes = node.modes;
    }
  }

  built_ = true;  // pair operators are complete; leaves draw on them

  // Leaves M_p(n): contract the partner mode out of an existing pair.
  Profile& prof = profile_ ? *profile_ : Profile::thread_default();
  for (int m = 0; m < n_; ++m) {
    const int partner = m == 0 ? 1 : 0;
    const auto& op = pair_op(std::min(m, partner), std::max(m, partner));
    const auto pit = std::find(op.modes.begin(), op.modes.end(), partner);
    const int pos = static_cast<int>(pit - op.modes.begin());
    tensor::mttv_into(op.data, pos,
                      (*factors_)[static_cast<std::size_t>(partner)],
                      leaf_scratch_, &prof);
    la::Matrix& mp = mp_[static_cast<std::size_t>(m)];
    if (mp.rows() != leaf_scratch_.extent(0) ||
        mp.cols() != leaf_scratch_.extent(1))
      mp = la::Matrix(leaf_scratch_.extent(0), leaf_scratch_.extent(1));
    std::copy(leaf_scratch_.data(), leaf_scratch_.data() + leaf_scratch_.size(),
              mp.data());
  }

  // Keep only the pair operators and leaves; drop larger intermediates
  // (their buffers return to the workspace for the next build).
  memo_.clear();
}

const PpOperators::PairOp& PpOperators::pair_op(int i, int j) const {
  PARPP_CHECK(built_, "pair_op: operators not built");
  PARPP_CHECK(i < j, "pair_op: require i < j");
  return pairs_.at(std::make_pair(i, j));
}

PpOperators::PairOp& PpOperators::mutable_pair_op(int i, int j) {
  PARPP_CHECK(built_, "mutable_pair_op: operators not built");
  PARPP_CHECK(i < j, "mutable_pair_op: require i < j");
  PairOp& op = pairs_.at(std::make_pair(i, j));
  op.f32_valid = false;  // caller may rewrite data; mirror goes stale
  return op;
}

const la::Matrix& PpOperators::mttkrp_p(int n) const {
  PARPP_CHECK(built_, "mttkrp_p: operators not built");
  return mp_[static_cast<std::size_t>(n)];
}

index_t PpOperators::operator_elements() const {
  index_t total = 0;
  for (const auto& [key, op] : pairs_) total += op.data.size();
  return total;
}

}  // namespace parpp::core
