// MTTKRP engine over compressed sparse fiber (CSF) storage.
#pragma once

#include "parpp/core/mttkrp_engine.hpp"
#include "parpp/tensor/csf_tensor.hpp"
#include "parpp/util/workspace.hpp"

namespace parpp::core {

/// Sparse engine: each mttkrp(mode) walks the CSF tree rooted at that mode
/// (OpenMP-parallel over root fibers, tensor::mttkrp_csf). No cross-mode
/// amortization — and, by construction, no densification: auxiliary memory
/// is O(threads * order * R) scratch leased from the engine-owned
/// workspace, whose counters tests assert stay flat (and far below the
/// dense footprint) across steady-state sweeps.
///
/// The class is exposed (unlike the dense tree engines) so tests and
/// benches can reach workspace() for those assertions.
class SparseEngine final : public MttkrpEngine {
 public:
  /// `options.csf_walk` picks the parallel schedule; `options.scalar` the
  /// storage scalar. Under kF32 the engine keeps fp32 factor mirrors
  /// (re-synced lazily for the modes notify_update marked stale) plus a
  /// one-time fp32 mirror of the tensor values, and every walk streams
  /// those — accumulation stays fp64 (see mttkrp_sparse.hpp).
  SparseEngine(const tensor::CsfTensor& t,
               const std::vector<la::Matrix>& factors, Profile* profile,
               const EngineOptions& options = {});

  [[nodiscard]] la::Matrix mttkrp(int mode) override;
  void notify_update(int mode) override {
    if (!dirty_.empty()) dirty_[static_cast<std::size_t>(mode)] = 1;
  }
  [[nodiscard]] std::string_view name() const override { return "sparse"; }

  /// Engine-owned scratch arena (per-thread interior-level accumulators).
  [[nodiscard]] const util::KernelWorkspace& workspace() const { return ws_; }

 private:
  const tensor::CsfTensor* t_;
  const std::vector<la::Matrix>* factors_;
  Profile* profile_;
  tensor::CsfWalk walk_;
  la::Scalar scalar_;
  std::vector<la::MatrixF32> mirrors_;
  std::vector<char> dirty_;
  tensor::CsfValsF32 vals32_;
  util::KernelWorkspace ws_;
};

/// Engine factory for CSF storage. Sparse storage has exactly one engine,
/// so every EngineKind resolves to SparseEngine (mirroring the kNaive →
/// kMsdt promotion the PP methods apply): a spec tuned for dense engines
/// still runs when pointed at a sparse tensor.
[[nodiscard]] std::unique_ptr<MttkrpEngine> make_engine(
    EngineKind kind, const tensor::CsfTensor& t,
    const std::vector<la::Matrix>& factors, Profile* profile = nullptr,
    const EngineOptions& options = {});

/// Views a CSF tensor as a storage-agnostic TensorProblem (non-owning).
[[nodiscard]] TensorProblem make_problem(const tensor::CsfTensor& t);

}  // namespace parpp::core
