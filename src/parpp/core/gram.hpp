// Gram matrices and Hadamard chains (Eq. (1)).
#pragma once

#include <vector>

#include "parpp/la/matrix.hpp"
#include "parpp/util/profile.hpp"

namespace parpp::core {

/// Γ(n) = S(1) * ... * S(n-1) * S(n+1) * ... * S(N) — the Hadamard chain of
/// all Gram matrices except `skip` (pass skip = -1 for the full chain).
/// Charged to Kernel::kHadamard.
[[nodiscard]] la::Matrix gamma_chain(const std::vector<la::Matrix>& grams,
                                     int skip, Profile* profile = nullptr);

/// Recompute every Gram matrix S(i) = A(i)^T A(i).
[[nodiscard]] std::vector<la::Matrix> all_grams(
    const std::vector<la::Matrix>& factors, Profile* profile = nullptr);

}  // namespace parpp::core
