#include "parpp/core/nncp.hpp"

#include <algorithm>
#include <cmath>

#include "parpp/core/fitness.hpp"
#include "parpp/core/gram.hpp"
#include "parpp/core/sparse_engine.hpp"
#include "parpp/core/sweep_guard.hpp"
#include "parpp/la/gemm.hpp"
#include "parpp/util/timer.hpp"

namespace parpp::core {

void hals_update(la::Matrix& a, const la::Matrix& m, const la::Matrix& gamma,
                 double eps_floor, Profile& profile) {
  const index_t s = a.rows(), r = a.cols();
  ScopedProfile sp(profile, Kernel::kSolve,
                   2.0 * static_cast<double>(s) * r * r);
  for (index_t j = 0; j < r; ++j) {
    const double gjj = std::max(gamma(j, j), eps_floor);
#pragma omp parallel for schedule(static) if (s > 4096)
    for (index_t i = 0; i < s; ++i) {
      // (A Γ)(i, j) via the row-dot; columns update sequentially so later
      // columns see earlier updates (Gauss-Seidel — the HALS property).
      double agij = 0.0;
      const double* arow = a.row(i);
      for (index_t k = 0; k < r; ++k) agij += arow[k] * gamma(k, j);
      const double v = a(i, j) + (m(i, j) - agij) / gjj;
      a(i, j) = std::max(v, 0.0);
    }
  }
  // Keep columns away from exact zero so Γ stays nonsingular.
  for (index_t j = 0; j < r; ++j) {
    double col = 0.0;
    for (index_t i = 0; i < s; ++i) col += a(i, j) * a(i, j);
    if (col == 0.0) {
      for (index_t i = 0; i < s; ++i) a(i, j) = eps_floor;
    }
  }
}

CpResult nncp_hals(const tensor::DenseTensor& t, const CpOptions& options,
                   const NncpOptions& nn_options) {
  return nncp_hals(make_problem(t), options, nn_options, DriverHooks{});
}

CpResult nncp_hals(const tensor::DenseTensor& t, const CpOptions& options,
                   const NncpOptions& nn_options, const DriverHooks& hooks) {
  return nncp_hals(make_problem(t), options, nn_options, hooks);
}

CpResult nncp_hals(const tensor::CsfTensor& t, const CpOptions& options,
                   const NncpOptions& nn_options, const DriverHooks& hooks) {
  return nncp_hals(make_problem(t), options, nn_options, hooks);
}

CpResult nncp_hals(const TensorProblem& problem, const CpOptions& options,
                   const NncpOptions& nn_options, const DriverHooks& hooks) {
  const int n = problem.order();
  PARPP_CHECK(n >= 2, "nncp_hals: tensor order must be >= 2");
  PARPP_CHECK(nn_options.inner_iterations >= 1,
              "nncp_hals: need at least one inner iteration");

  CpResult result;
  Profile profile;
  result.factors =
      resolve_init_factors(problem.shape, options.rank, options.seed, hooks);
  auto& factors = result.factors;
  std::vector<la::Matrix> grams = all_grams(factors, &profile);
  auto engine = problem.make_engine(nn_options.engine, factors, &profile,
                                    options.engine_options);

  const double t_sq = problem.squared_norm;
  WallTimer timer;
  double fit = 0.0, fit_old = -1.0;
  if (hooks.resume != nullptr) {
    fit = hooks.resume->fitness;
    fit_old = hooks.resume->prev_fitness;
  }
  int sweep = 0;
  SweepGuard guard(result, factors, grams);
  while (sweep < options.max_sweeps && std::abs(fit - fit_old) > options.tol) {
    guard.snapshot(fit, fit_old, result.residual);
    la::Matrix gamma_last, m_last;
    for (int i = 0; i < n; ++i) {
      la::Matrix gamma = gamma_chain(grams, i, &profile);
      la::Matrix m = engine->mttkrp(i);
      for (int pass = 0; pass < nn_options.inner_iterations; ++pass) {
        hals_update(factors[static_cast<std::size_t>(i)], m, gamma,
                    nn_options.epsilon, profile);
      }
      engine->notify_update(i);
      grams[static_cast<std::size_t>(i)] =
          la::gram(factors[static_cast<std::size_t>(i)], &profile);
      if (i == n - 1) {
        gamma_last = std::move(gamma);
        m_last = std::move(m);
      }
    }
    ++sweep;
    fit_old = fit;
    result.residual = relative_residual(
        t_sq, gamma_last, grams[static_cast<std::size_t>(n - 1)], m_last,
        factors[static_cast<std::size_t>(n - 1)]);
    fit = fitness_from_residual(result.residual);
    if (!guard.check_sweep(sweep, fit, fit_old, engine.get())) break;
    const SweepRecord rec{timer.seconds(), fit, "nncp"};
    if (options.record_history) result.history.push_back(rec);
    if (hooks.checkpoint_every > 0 && hooks.on_checkpoint &&
        sweep % hooks.checkpoint_every == 0)
      hooks.on_checkpoint(factors, sweep, fit, fit_old);
    if (hooks.on_sweep && !hooks.on_sweep(rec, factors)) break;
  }

  result.fitness = fit;
  result.sweeps = sweep;
  result.num_als_sweeps = sweep;
  result.profile = profile;
  return result;
}

}  // namespace parpp::core
