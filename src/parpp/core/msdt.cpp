#include "parpp/core/msdt.hpp"

namespace parpp::core {

MsdtEngine::MsdtEngine(const tensor::DenseTensor& t,
                       const std::vector<la::Matrix>& factors,
                       Profile* profile, const EngineOptions& options)
    : TreeEngineBase(t, factors, profile, options, /*copy_default=*/true),
      current_c_(t.order() - 1),
      leaves_served_(0) {
  PARPP_CHECK(t.order() >= 2, "MSDT requires an order >= 2 tensor");
}

void MsdtEngine::advance_subtree() {
  current_c_ = (current_c_ - 1 + order()) % order();
  leaves_served_ = 0;
}

la::Matrix MsdtEngine::mttkrp(int mode) {
  PARPP_CHECK(mode >= 0 && mode < order(), "mttkrp: bad mode");
  // The active subtree cannot produce its own excluded mode, and after N-1
  // leaves it is exhausted; under the standard ALS order both rotations
  // coincide, but out-of-order callers may need two advances in a row.
  if (leaves_served_ >= order() - 1) advance_subtree();
  if (mode == current_c_) advance_subtree();
  PARPP_ASSERT(mode != current_c_, "subtree rotation failed");
  ++leaves_served_;
  const auto leaf = ensure_cyclic(mode, 1);
  return leaf_matrix(*leaf);
}

detail::NodePtr MsdtEngine::ensure_cyclic(int start, int len) {
  const int n = order();
  start = ((start % n) + n) % n;
  const RangeKey key{start, len};
  if (auto hit = cache_lookup(key)) return hit;

  const int root_start = (current_c_ + 1) % n;
  detail::NodePtr node;
  if (start == root_start && len == n - 1) {
    node = build_from_raw(key);
  } else {
    // Parent on the binary-split descent from the subtree root; splits take
    // the cyclically-first ceil(len/2) modes left, matching the order in
    // which ALS consumes the leaves.
    int plo = root_start, plen = n - 1;
    while (true) {
      const int left_len = (plen + 1) / 2;
      const int d = ((start - plo) % n + n) % n;
      PARPP_ASSERT(d + len <= plen, "target outside subtree");
      int clo, clen;
      if (d + len <= left_len) {
        clo = plo;
        clen = left_len;
      } else {
        PARPP_ASSERT(d >= left_len, "target straddles the split");
        clo = (plo + left_len) % n;
        clen = plen - left_len;
      }
      if (clo == start && clen == len) break;
      plo = clo;
      plen = clen;
    }
    const auto parent = ensure_cyclic(plo, plen);
    node = build_from_parent(parent, key);
  }
  cache_store(key, node);
  return node;
}

}  // namespace parpp::core
