#include "parpp/core/gram.hpp"

#include "parpp/la/gemm.hpp"

namespace parpp::core {

la::Matrix gamma_chain(const std::vector<la::Matrix>& grams, int skip,
                       Profile* profile) {
  PARPP_CHECK(!grams.empty(), "gamma_chain: no grams");
  const index_t r = grams[0].rows();
  ScopedProfile sp(profile ? *profile : Profile::thread_default(),
                   Kernel::kHadamard,
                   static_cast<double>(grams.size()) * r * r);
  la::Matrix gamma(r, r);
  gamma.fill(1.0);
  for (int i = 0; i < static_cast<int>(grams.size()); ++i) {
    if (i == skip) continue;
    gamma.hadamard_inplace(grams[static_cast<std::size_t>(i)]);
  }
  return gamma;
}

std::vector<la::Matrix> all_grams(const std::vector<la::Matrix>& factors,
                                  Profile* profile) {
  std::vector<la::Matrix> grams;
  grams.reserve(factors.size());
  for (const auto& f : factors) grams.push_back(la::gram(f, profile));
  return grams;
}

}  // namespace parpp::core
