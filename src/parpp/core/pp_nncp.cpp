#include "parpp/core/pp_nncp.hpp"

#include "parpp/core/sparse_engine.hpp"

namespace parpp::core {

namespace {

CpResult run_pp_nncp(const TensorProblem& problem, const CpOptions& options,
                     const PpOptions& pp_options,
                     const NncpOptions& nn_options,
                     const DriverHooks& hooks) {
  PARPP_CHECK(nn_options.inner_iterations >= 1,
              "pp_nncp_hals: need at least one inner iteration");
  // The shared Algorithm-2 loop with the projected HALS passes substituted
  // for the normal-equations solve; the PP machinery is untouched because
  // it only produces the (approximated) MTTKRP the update consumes.
  return detail::run_pp_driver(
      problem, options, pp_options, hooks,
      [&nn_options](la::Matrix& a, const la::Matrix& gamma,
                    const la::Matrix& m, Profile& profile) {
        for (int pass = 0; pass < nn_options.inner_iterations; ++pass)
          hals_update(a, m, gamma, nn_options.epsilon, profile);
      },
      "nncp");
}

}  // namespace

CpResult pp_nncp_hals(const tensor::DenseTensor& t, const CpOptions& options,
                      const PpOptions& pp_options,
                      const NncpOptions& nn_options) {
  return pp_nncp_hals(t, options, pp_options, nn_options, DriverHooks{});
}

CpResult pp_nncp_hals(const tensor::DenseTensor& t, const CpOptions& options,
                      const PpOptions& pp_options,
                      const NncpOptions& nn_options,
                      const DriverHooks& hooks) {
  return run_pp_nncp(make_problem(t), options, pp_options, nn_options, hooks);
}

CpResult pp_nncp_hals(const tensor::CsfTensor& t, const CpOptions& options,
                      const PpOptions& pp_options,
                      const NncpOptions& nn_options,
                      const DriverHooks& hooks) {
  return run_pp_nncp(make_problem(t), options, pp_options, nn_options, hooks);
}

}  // namespace parpp::core
