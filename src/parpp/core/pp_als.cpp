#include "parpp/core/pp_als.hpp"

#include <cmath>

#include "parpp/core/dim_tree.hpp"
#include "parpp/core/fitness.hpp"
#include "parpp/core/gram.hpp"
#include "parpp/core/pp_engine.hpp"
#include "parpp/core/pp_operators.hpp"
#include "parpp/core/solve_update.hpp"
#include "parpp/core/sparse_engine.hpp"
#include "parpp/core/sweep_guard.hpp"
#include "parpp/la/gemm.hpp"
#include "parpp/util/timer.hpp"

namespace parpp::core {

namespace {

/// All factors moved less than eps (relatively) since `reference`?
bool all_changes_small(const std::vector<la::Matrix>& factors,
                       const std::vector<la::Matrix>& reference, double eps) {
  for (std::size_t i = 0; i < factors.size(); ++i) {
    if (relative_change(factors[i], reference[i]) >= eps) return false;
  }
  return true;
}

}  // namespace

CpResult pp_cp_als(const tensor::DenseTensor& t, const CpOptions& options,
                   const PpOptions& pp_options) {
  return pp_cp_als(t, options, pp_options, DriverHooks{});
}

namespace {

detail::FactorUpdate als_update() {
  return [](la::Matrix& a, const la::Matrix& gamma, const la::Matrix& m,
            Profile& profile) { a = update_factor(gamma, m, &profile); };
}

}  // namespace

CpResult pp_cp_als(const tensor::DenseTensor& t, const CpOptions& options,
                   const PpOptions& pp_options, const DriverHooks& hooks) {
  return detail::run_pp_driver(make_problem(t), options, pp_options, hooks,
                               als_update(), "als");
}

CpResult pp_cp_als(const tensor::CsfTensor& t, const CpOptions& options,
                   const PpOptions& pp_options, const DriverHooks& hooks) {
  return detail::run_pp_driver(make_problem(t), options, pp_options, hooks,
                               als_update(), "als");
}

namespace detail {

CpResult run_pp_driver(const TensorProblem& problem, const CpOptions& options,
                       const PpOptions& pp_options, const DriverHooks& hooks,
                       const FactorUpdate& update,
                       const char* regular_phase) {
  const int n = problem.order();
  PARPP_CHECK(n >= 3, "pp driver: order must be >= 3");
  PARPP_CHECK(pp_options.pp_tol > 0.0 && pp_options.pp_tol < 1.0,
              "pp driver: pp_tol must be in (0,1)");
  PARPP_CHECK(problem.make_pp_operators != nullptr,
              "pp driver: storage provides no PP operator factory");

  CpResult result;
  Profile profile;
  result.factors =
      resolve_init_factors(problem.shape, options.rank, options.seed, hooks);
  auto& factors = result.factors;
  std::vector<la::Matrix> grams = all_grams(factors, &profile);

  EngineOptions eopt = options.engine_options;
  auto engine = problem.make_engine(pp_options.regular_engine, factors,
                                    &profile, eopt);
  auto* tree_engine = dynamic_cast<TreeEngineBase*>(engine.get());
  auto ops_ptr = problem.make_pp_operators(factors, &profile, eopt);
  PpOperators& ops = *ops_ptr;

  // One mode update: apply the method's factor update, then refresh the
  // engine and Gram state (identical for exact and approximated MTTKRPs).
  auto update_mode = [&](int i, const la::Matrix& gamma, const la::Matrix& m) {
    update(factors[static_cast<std::size_t>(i)], gamma, m, profile);
    engine->notify_update(i);
    grams[static_cast<std::size_t>(i)] =
        la::gram(factors[static_cast<std::size_t>(i)], &profile);
  };

  const double t_sq = problem.squared_norm;
  WallTimer timer;

  // dA across the latest regular sweep; seeded with A itself so the PP
  // branch is skipped until at least one regular sweep ran (Algorithm 2
  // line 2: dA(i) <- A(i)).
  std::vector<la::Matrix> prev_sweep(factors.size());
  for (std::size_t i = 0; i < factors.size(); ++i) {
    prev_sweep[i] = la::Matrix(factors[i].rows(), factors[i].cols());
  }

  double fit = 0.0, fit_old = -1.0;
  if (hooks.resume != nullptr) {
    fit = hooks.resume->fitness;
    fit_old = hooks.resume->prev_fitness;
  }
  int total_sweeps = 0;
  int last_checkpoint = 0;
  SweepGuard guard(result, factors, grams);
  bool aborted = false;
  auto sweep_hook = [&](const SweepRecord& rec) {
    if (hooks.on_sweep && !hooks.on_sweep(rec, factors)) aborted = true;
    return !aborted;
  };
  while (!aborted && total_sweeps < options.max_sweeps &&
         std::abs(fit - fit_old) > options.tol) {
    // ---- PP phase (lines 5-18) --------------------------------------
    if (all_changes_small(factors, prev_sweep, pp_options.pp_tol)) {
      const std::vector<la::Matrix> a_p = factors;  // snapshot
      const std::vector<la::Matrix> grams_p = grams;
      const double fit_p = fit;
      ops.build(tree_engine);
      ++result.num_pp_init;
      ++total_sweeps;
      const SweepRecord init_rec{timer.seconds(), fit, "pp-init"};
      if (options.record_history) result.history.push_back(init_rec);
      if (!sweep_hook(init_rec)) break;

      PpApprox approx(ops, factors, a_p, grams, &profile);
      approx.set_second_order(pp_options.second_order);

      int pp_sweeps = 0;
      bool discarded = false;
      double pp_fit = fit, pp_fit_old = fit - 1.0;
      // Trust guard floor: the PP model can break down when Γ is
      // rank-deficient (e.g. CP rank above a mode extent). A phase whose
      // approximate fitness drops below this floor — or goes non-finite —
      // is discarded wholesale (factors, Grams and engine state restored
      // to the phase entry) and exact sweeps take over; the pair operators
      // are rebuilt at the next phase entry.
      const double fit_floor = fit - 10.0 * std::max(options.tol, 1e-6);
      while (all_changes_small(factors, a_p, pp_options.pp_tol) &&
             std::abs(pp_fit - pp_fit_old) > options.tol &&
             pp_sweeps < pp_options.max_pp_sweeps_per_phase &&
             total_sweeps < options.max_sweeps) {
        la::Matrix gamma_last, m_last;
        for (int j = 0; j < n; ++j) {
          la::Matrix gamma = gamma_chain(grams, j, &profile);
          la::Matrix m = approx.mttkrp_approx(j);
          update_mode(j, gamma, m);
          approx.refresh_mode(j);
          if (j == n - 1) {
            gamma_last = std::move(gamma);
            m_last = std::move(m);
          }
        }
        ++pp_sweeps;
        ++result.num_pp_approx;
        ++total_sweeps;
        // Fitness from the approximated MTTKRP — cheap and close to exact
        // while the PP condition holds; also the inner stopping criterion
        // (the paper stops on the fitness difference of neighbouring
        // sweeps, which must apply inside the PP phase too or a converged
        // run would spin until max_sweeps).
        const double r_approx = relative_residual(
            t_sq, gamma_last, grams[static_cast<std::size_t>(n - 1)], m_last,
            factors[static_cast<std::size_t>(n - 1)]);
        pp_fit_old = pp_fit;
        pp_fit = fitness_from_residual(r_approx);
        if (!std::isfinite(pp_fit) || pp_fit < fit_floor ||
            !guard.state_finite(pp_fit)) {
          factors = a_p;
          grams = grams_p;
          for (int j = 0; j < n; ++j) engine->notify_update(j);
          guard.record(total_sweeps,
                       "PP trust guard: approximated sweep regressed or went "
                       "non-finite; discarded the PP phase and resumed exact "
                       "sweeps");
          discarded = true;
          break;
        }
        const SweepRecord rec{timer.seconds(), pp_fit, "pp-approx"};
        if (options.record_history && pp_options.record_pp_sweeps) {
          result.history.push_back(rec);
        }
        if (!sweep_hook(rec)) break;
      }
      // Carry the PP-phase progress into the outer stopping comparison;
      // otherwise the next regular sweep is compared against a fitness
      // from before the whole phase and the loop re-initializes forever.
      // A discarded phase instead keeps the entry fitness (its sweeps
      // were reverted) so the driver continues with exact sweeps.
      if (discarded)
        fit = fit_p;
      else if (pp_sweeps > 0)
        fit = pp_fit;
    }

    if (aborted || total_sweeps >= options.max_sweeps) break;

    // ---- Regular sweep (line 19) ------------------------------------
    guard.snapshot(fit, fit_old, result.residual);
    prev_sweep = factors;
    la::Matrix gamma_last, m_last;
    for (int i = 0; i < n; ++i) {
      la::Matrix gamma = gamma_chain(grams, i, &profile);
      la::Matrix m = engine->mttkrp(i);
      update_mode(i, gamma, m);
      if (i == n - 1) {
        gamma_last = std::move(gamma);
        m_last = std::move(m);
      }
    }
    ++result.num_als_sweeps;
    ++total_sweeps;

    fit_old = fit;
    result.residual = relative_residual(
        t_sq, gamma_last, grams[static_cast<std::size_t>(n - 1)], m_last,
        factors[static_cast<std::size_t>(n - 1)]);
    fit = fitness_from_residual(result.residual);
    if (!guard.check_sweep(total_sweeps, fit, fit_old, engine.get())) break;
    const SweepRecord rec{timer.seconds(), fit, regular_phase};
    if (options.record_history) result.history.push_back(rec);
    // Checkpoints land after regular (exact) sweeps only, so the saved
    // factors are never mid-approximation.
    if (hooks.checkpoint_every > 0 && hooks.on_checkpoint &&
        total_sweeps - last_checkpoint >= hooks.checkpoint_every) {
      hooks.on_checkpoint(factors, total_sweeps, fit, fit_old);
      last_checkpoint = total_sweeps;
    }
    if (!sweep_hook(rec)) break;
  }

  // The loop may exit mid-PP-phase (max_sweeps); the stored residual would
  // then predate the last factor updates. Recompute it exactly with one
  // fresh MTTKRP of the last mode (no factor update).
  {
    const la::Matrix gamma = gamma_chain(grams, n - 1, &profile);
    const la::Matrix m = engine->mttkrp(n - 1);
    result.residual = relative_residual(
        t_sq, gamma, grams[static_cast<std::size_t>(n - 1)], m,
        factors[static_cast<std::size_t>(n - 1)]);
    fit = fitness_from_residual(result.residual);
  }

  result.fitness = fit;
  result.sweeps = total_sweeps;
  result.profile = profile;
  return result;
}

}  // namespace detail

}  // namespace parpp::core
