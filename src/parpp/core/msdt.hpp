// Multi-sweep dimension tree (paper Sec. III).
//
// MSDT amortizes first-level TTMs *across* ALS sweeps: the subtree rooted at
// T x_c A(c) serves the MTTKRP of modes c+1, ..., c+N-1 (mod N) — a window
// that crosses the sweep boundary — and roots rotate c = N-1, N-2, ..., 0,
// N-1, ... Every N-1 sweeps use exactly N first-level TTMs, so the leading
// per-sweep cost drops from the standard tree's 4 s^N R to 2N/(N-1) s^N R
// while producing bit-identical results (version-stamped caching guarantees
// semantic exactness; the savings come from the ALS update order).
#pragma once

#include "parpp/core/dim_tree.hpp"

namespace parpp::core {

class MsdtEngine final : public TreeEngineBase {
 public:
  MsdtEngine(const tensor::DenseTensor& t,
             const std::vector<la::Matrix>& factors, Profile* profile,
             const EngineOptions& options);

  [[nodiscard]] la::Matrix mttkrp(int mode) override;
  [[nodiscard]] std::string_view name() const override { return "MSDT"; }

  /// Mode currently excluded by the active subtree root (diagnostic).
  [[nodiscard]] int current_root_exclusion() const { return current_c_; }

 private:
  void advance_subtree();
  [[nodiscard]] detail::NodePtr ensure_cyclic(int start, int len);

  int current_c_;      ///< excluded mode of the active subtree
  int leaves_served_;  ///< leaves already produced from the active subtree
};

}  // namespace parpp::core
