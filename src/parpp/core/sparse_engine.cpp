#include "parpp/core/sparse_engine.hpp"

#include "parpp/core/pp_operators.hpp"
#include "parpp/tensor/mttkrp_sparse.hpp"

namespace parpp::core {

SparseEngine::SparseEngine(const tensor::CsfTensor& t,
                           const std::vector<la::Matrix>& factors,
                           Profile* profile, const EngineOptions& options)
    : t_(&t),
      factors_(&factors),
      profile_(profile),
      walk_(options.csf_walk),
      scalar_(options.scalar) {
  PARPP_CHECK(static_cast<int>(factors.size()) == t.order(),
              "engine: factor count mismatch");
  for (int m = 0; m < t.order(); ++m) {
    PARPP_CHECK(factors[static_cast<std::size_t>(m)].rows() == t.extent(m),
                "engine: factor ", m, " rows mismatch");
  }
  if (scalar_ == la::Scalar::kF32) {
    mirrors_.resize(factors.size());
    dirty_.assign(factors.size(), 1);
    vals32_.sync(t);  // tensor values are immutable: one-time mirror
  }
}

la::Matrix SparseEngine::mttkrp(int mode) {
  if (scalar_ == la::Scalar::kF32) {
    for (std::size_t m = 0; m < mirrors_.size(); ++m) {
      if (dirty_[m] != 0) mirrors_[m].sync((*factors_)[m]);
      dirty_[m] = 0;
    }
    la::Matrix out;
    tensor::mttkrp_csf_into_f32(*t_, mirrors_, mode, vals32_, out, profile_,
                                &ws_, walk_);
    return out;
  }
  return tensor::mttkrp_csf(*t_, *factors_, mode, profile_, &ws_, walk_);
}

std::unique_ptr<MttkrpEngine> make_engine(EngineKind /*kind*/,
                                          const tensor::CsfTensor& t,
                                          const std::vector<la::Matrix>& factors,
                                          Profile* profile,
                                          const EngineOptions& options) {
  return std::make_unique<SparseEngine>(t, factors, profile, options);
}

TensorProblem make_problem(const tensor::CsfTensor& t) {
  TensorProblem p;
  p.shape = t.shape();
  p.squared_norm = t.squared_norm();
  p.make_engine = [&t](EngineKind kind, const std::vector<la::Matrix>& factors,
                       Profile* profile, const EngineOptions& options) {
    return make_engine(kind, t, factors, profile, options);
  };
  p.make_pp_operators = [&t](const std::vector<la::Matrix>& factors,
                             Profile* profile, const EngineOptions& options) {
    return std::make_unique<PpOperators>(t, factors, profile,
                                         options.scalar);
  };
  return p;
}

}  // namespace parpp::core
