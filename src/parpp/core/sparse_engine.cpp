#include "parpp/core/sparse_engine.hpp"

#include "parpp/core/pp_operators.hpp"
#include "parpp/tensor/mttkrp_sparse.hpp"

namespace parpp::core {

SparseEngine::SparseEngine(const tensor::CsfTensor& t,
                           const std::vector<la::Matrix>& factors,
                           Profile* profile, tensor::CsfWalk walk)
    : t_(&t), factors_(&factors), profile_(profile), walk_(walk) {
  PARPP_CHECK(static_cast<int>(factors.size()) == t.order(),
              "engine: factor count mismatch");
  for (int m = 0; m < t.order(); ++m) {
    PARPP_CHECK(factors[static_cast<std::size_t>(m)].rows() == t.extent(m),
                "engine: factor ", m, " rows mismatch");
  }
}

la::Matrix SparseEngine::mttkrp(int mode) {
  return tensor::mttkrp_csf(*t_, *factors_, mode, profile_, &ws_, walk_);
}

std::unique_ptr<MttkrpEngine> make_engine(EngineKind /*kind*/,
                                          const tensor::CsfTensor& t,
                                          const std::vector<la::Matrix>& factors,
                                          Profile* profile,
                                          const EngineOptions& options) {
  return std::make_unique<SparseEngine>(t, factors, profile,
                                        options.csf_walk);
}

TensorProblem make_problem(const tensor::CsfTensor& t) {
  TensorProblem p;
  p.shape = t.shape();
  p.squared_norm = t.squared_norm();
  p.make_engine = [&t](EngineKind kind, const std::vector<la::Matrix>& factors,
                       Profile* profile, const EngineOptions& options) {
    return make_engine(kind, t, factors, profile, options);
  };
  p.make_pp_operators = [&t](const std::vector<la::Matrix>& factors,
                             Profile* profile) {
    return std::make_unique<PpOperators>(t, factors, profile);
  };
  return p;
}

}  // namespace parpp::core
