// Sequential CP-ALS driver (Algorithm 1).
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "parpp/core/mttkrp_engine.hpp"
#include "parpp/la/matrix.hpp"
#include "parpp/tensor/dense_tensor.hpp"
#include "parpp/util/profile.hpp"

namespace parpp::core {

struct CpOptions {
  index_t rank = 16;
  int max_sweeps = 300;
  /// Stop when |fitness(t) - fitness(t-1)| < tol (paper's stopping
  /// criterion Delta on the relative residual).
  double tol = 1e-5;
  std::uint64_t seed = 42;
  EngineKind engine = EngineKind::kDt;
  EngineOptions engine_options = {};
  /// Record (time, fitness, phase) after every sweep.
  bool record_history = true;
};

struct SweepRecord {
  double seconds;       ///< elapsed wall time since the run started
  double fitness;       ///< 1 - relative residual (approximate in PP sweeps)
  std::string phase;    ///< "als", "pp-init" or "pp-approx"
};

struct CpResult {
  std::vector<la::Matrix> factors;
  double residual = 1.0;
  double fitness = 0.0;
  int sweeps = 0;  ///< total sweeps of any kind
  std::vector<SweepRecord> history;
  Profile profile;

  // PP statistics (zero for plain ALS): counts match Tables III/IV.
  int num_als_sweeps = 0;
  int num_pp_init = 0;
  int num_pp_approx = 0;
};

/// Cross-cutting extension points the parpp::solve() facade threads through
/// every driver. Default-constructed hooks leave a driver bit-for-bit on its
/// legacy behavior (no extra collectives, no extra callbacks).
struct DriverHooks {
  /// Warm start: used in place of the seeded initialization when non-null.
  /// Shapes are validated against the tensor and rank. The matrices are
  /// copied, so the caller's set is untouched.
  const std::vector<la::Matrix>* initial_factors = nullptr;
  /// Called after every sweep of any kind ("als", "nncp", "pp-init",
  /// "pp-approx") with the record just produced and the current factors.
  /// The simulated-parallel drivers pass an empty factor vector (factors
  /// live distributed) and broadcast the verdict so all ranks agree.
  /// Returning false aborts the run after the current sweep.
  std::function<bool(const SweepRecord&, const std::vector<la::Matrix>&)>
      on_sweep;
};

/// Uniform-[0,1) factor initialization (Algorithm 1 line 2), deterministic
/// in (seed, mode).
[[nodiscard]] std::vector<la::Matrix> init_factors(
    const std::vector<index_t>& shape, index_t rank, std::uint64_t seed);

/// The warm-start factors from `hooks` (validated against `shape`/`rank`)
/// or, when absent, the seeded initialization above.
[[nodiscard]] std::vector<la::Matrix> resolve_init_factors(
    const std::vector<index_t>& shape, index_t rank, std::uint64_t seed,
    const DriverHooks& hooks);

/// Runs CP-ALS with the selected MTTKRP engine until the fitness change
/// falls below `tol` or `max_sweeps` is reached. The storage-agnostic
/// TensorProblem overload is the driver core; the DenseTensor and CsfTensor
/// overloads are adapters over core::make_problem, so dense and sparse
/// storage run the identical sweep (including the Eq. (3) residual, which
/// reuses the last MTTKRP and never reconstructs the tensor).
[[nodiscard]] CpResult cp_als(const TensorProblem& problem,
                              const CpOptions& options,
                              const DriverHooks& hooks = {});
[[nodiscard]] CpResult cp_als(const tensor::DenseTensor& t,
                              const CpOptions& options);
[[nodiscard]] CpResult cp_als(const tensor::DenseTensor& t,
                              const CpOptions& options,
                              const DriverHooks& hooks);
[[nodiscard]] CpResult cp_als(const tensor::CsfTensor& t,
                              const CpOptions& options,
                              const DriverHooks& hooks = {});

}  // namespace parpp::core
