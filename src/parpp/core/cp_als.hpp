// Sequential CP-ALS driver (Algorithm 1).
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "parpp/core/mttkrp_engine.hpp"
#include "parpp/la/matrix.hpp"
#include "parpp/tensor/dense_tensor.hpp"
#include "parpp/util/profile.hpp"

namespace parpp::core {

struct CpOptions {
  index_t rank = 16;
  int max_sweeps = 300;
  /// Stop when |fitness(t) - fitness(t-1)| < tol (paper's stopping
  /// criterion Delta on the relative residual).
  double tol = 1e-5;
  std::uint64_t seed = 42;
  EngineKind engine = EngineKind::kDt;
  EngineOptions engine_options = {};
  /// Record (time, fitness, phase) after every sweep.
  bool record_history = true;
};

struct SweepRecord {
  double seconds;       ///< elapsed wall time since the run started
  double fitness;       ///< 1 - relative residual (approximate in PP sweeps)
  std::string phase;    ///< "als", "pp-init" or "pp-approx"
};

/// Health verdict of a completed solve. Anything but kOk means the
/// recovery_log has at least one event explaining what happened.
enum class SolveStatus {
  kOk,               ///< clean run, no guardrail fired
  kRecovered,        ///< guardrails fired but the run completed
  kRecoveredShrunk,  ///< ranks were lost; the run finished on the survivors
  kNumericalAbort,   ///< non-finite state persisted past the rollback budget
  kCommAbort,        ///< a communicator failure ended the run
};

/// One guardrail / fault event, ordered by sweep. The messages are
/// deterministic (no wall-clock content) so same-seed reruns produce
/// bitwise-identical logs.
struct RecoveryEvent {
  int sweep = 0;        ///< total sweep count when the event fired
  std::string what;
};

struct CpResult {
  std::vector<la::Matrix> factors;
  double residual = 1.0;
  double fitness = 0.0;
  int sweeps = 0;  ///< total sweeps of any kind
  std::vector<SweepRecord> history;
  Profile profile;

  // PP statistics (zero for plain ALS): counts match Tables III/IV.
  int num_als_sweeps = 0;
  int num_pp_init = 0;
  int num_pp_approx = 0;

  // Resilience outcome (kOk + empty log on the legacy happy path).
  SolveStatus status = SolveStatus::kOk;
  std::vector<RecoveryEvent> recovery_log;
};

/// Cross-cutting extension points the parpp::solve() facade threads through
/// every driver. Default-constructed hooks leave a driver bit-for-bit on its
/// legacy behavior (no extra collectives, no extra callbacks).
struct DriverHooks {
  /// Warm start: used in place of the seeded initialization when non-null.
  /// Shapes are validated against the tensor and rank. The matrices are
  /// copied, so the caller's set is untouched.
  const std::vector<la::Matrix>* initial_factors = nullptr;
  /// Called after every sweep of any kind ("als", "nncp", "pp-init",
  /// "pp-approx") with the record just produced and the current factors.
  /// The simulated-parallel drivers pass an empty factor vector (factors
  /// live distributed) and broadcast the verdict so all ranks agree.
  /// Returning false aborts the run after the current sweep.
  std::function<bool(const SweepRecord&, const std::vector<la::Matrix>&)>
      on_sweep;

  /// Checkpointing: when checkpoint_every > 0 and on_checkpoint is set, the
  /// drivers call it after every checkpoint_every-th sweep with the current
  /// global factors and stopping-rule state. The parallel drivers assemble
  /// the factors collectively and invoke the callback on rank 0 only. The
  /// PP drivers checkpoint after regular (exact) sweeps only, so the saved
  /// factors are never mid-approximation.
  int checkpoint_every = 0;
  std::function<void(const std::vector<la::Matrix>& factors, int sweep,
                     double fitness, double prev_fitness)>
      on_checkpoint;

  /// Resume support: when set (alongside initial_factors carrying the
  /// checkpointed factors), the drivers seed their stopping comparison from
  /// the checkpointed (fitness, prev_fitness) pair instead of (0, -1), so a
  /// resumed run takes exactly the sweeps the uninterrupted run would have.
  struct ResumeState {
    double fitness = 0.0;
    double prev_fitness = -1.0;
  };
  const ResumeState* resume = nullptr;
};

/// Uniform-[0,1) factor initialization (Algorithm 1 line 2), deterministic
/// in (seed, mode).
[[nodiscard]] std::vector<la::Matrix> init_factors(
    const std::vector<index_t>& shape, index_t rank, std::uint64_t seed);

/// The warm-start factors from `hooks` (validated against `shape`/`rank`)
/// or, when absent, the seeded initialization above.
[[nodiscard]] std::vector<la::Matrix> resolve_init_factors(
    const std::vector<index_t>& shape, index_t rank, std::uint64_t seed,
    const DriverHooks& hooks);

/// Runs CP-ALS with the selected MTTKRP engine until the fitness change
/// falls below `tol` or `max_sweeps` is reached. The storage-agnostic
/// TensorProblem overload is the driver core; the DenseTensor and CsfTensor
/// overloads are adapters over core::make_problem, so dense and sparse
/// storage run the identical sweep (including the Eq. (3) residual, which
/// reuses the last MTTKRP and never reconstructs the tensor).
[[nodiscard]] CpResult cp_als(const TensorProblem& problem,
                              const CpOptions& options,
                              const DriverHooks& hooks = {});
[[nodiscard]] CpResult cp_als(const tensor::DenseTensor& t,
                              const CpOptions& options);
[[nodiscard]] CpResult cp_als(const tensor::DenseTensor& t,
                              const CpOptions& options,
                              const DriverHooks& hooks);
[[nodiscard]] CpResult cp_als(const tensor::CsfTensor& t,
                              const CpOptions& options,
                              const DriverHooks& hooks = {});

}  // namespace parpp::core
