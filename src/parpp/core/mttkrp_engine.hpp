// MTTKRP engine interface and factory.
//
// Engines compute M(n) = T_(n) P(n) for the ALS driver, each with its own
// amortization strategy. Drivers call `mttkrp(mode)` in ALS order and
// `notify_update(mode)` immediately after overwriting A(mode); engines use
// version stamps to decide which cached intermediates are still valid, so
// they remain *semantically exact* even if called out of order — the
// claimed flop savings simply rely on the standard sweep order.
#pragma once

#include <functional>
#include <memory>
#include <string_view>
#include <vector>

#include "parpp/la/matrix.hpp"
#include "parpp/la/scalar.hpp"
#include "parpp/tensor/dense_tensor.hpp"
#include "parpp/tensor/mttkrp_sparse.hpp"
#include "parpp/util/profile.hpp"

namespace parpp::core {

class MttkrpEngine {
 public:
  virtual ~MttkrpEngine() = default;

  /// MTTKRP of `mode` at the current factor values.
  [[nodiscard]] virtual la::Matrix mttkrp(int mode) = 0;

  /// Must be called after factors[mode] changes.
  virtual void notify_update(int mode) = 0;

  [[nodiscard]] virtual std::string_view name() const = 0;

  /// Diagnostic counters: first-level TTM and mTTV kernel invocations since
  /// construction — tests assert the paper's per-sweep contraction counts.
  [[nodiscard]] virtual long ttm_count() const { return 0; }
  [[nodiscard]] virtual long mttv_count() const { return 0; }
};

enum class EngineKind {
  kNaive,   ///< fused MTTKRP per mode; no amortization (reference)
  kDt,      ///< standard binary dimension tree (Sec. II-C)
  kMsdt,    ///< multi-sweep dimension tree (Sec. III)
  kSparse,  ///< CSF fiber-tree walk; requires sparse (CsfTensor) storage
};

/// Human-facing display name ("naive"/"DT"/"MSDT") for logs and reports.
/// The machine-readable round-trip tokens live in parpp/solver/strings.hpp
/// (solver::to_string / solver::engine_from_string) — a new EngineKind must
/// be added to both switches (-Wswitch flags the omission).
[[nodiscard]] const char* engine_kind_name(EngineKind kind);

enum class TransposedCopy {
  kAuto,  ///< on for MSDT (the paper's configuration), off for DT
  kOn,
  kOff,
};

struct EngineOptions {
  /// Keep a rotated copy of the input tensor so every first-level TTM hits
  /// a boundary mode of some copy (Sec. IV, transpose avoidance). Only
  /// MSDT rotates its first-level contractions through interior modes, so
  /// kAuto enables the copy there and skips it for DT.
  TransposedCopy use_transposed_copy = TransposedCopy::kAuto;
  /// Level-combining ablation: intermediates covering more than this many
  /// tensor modes are recomputed instead of cached (<=0 means cache all).
  /// Trades flops for auxiliary memory as analyzed in Sec. IV.
  int max_cached_modes = 0;
  /// Parallel schedule of the sparse engine's CSF walk (ignored by the
  /// dense engines). kAuto tiles only when the root mode is too short to
  /// feed the OpenMP team.
  tensor::CsfWalk csf_walk = tensor::CsfWalk::kAuto;
  /// Storage scalar for the data the hot kernels *stream* (factor mirrors,
  /// the dense tensor copy / CSF value mirrors, PP pair operators). kF32
  /// halves the streamed bytes while every accumulator stays fp64 —
  /// supported by the naive (fused) and sparse engines; the dimension-tree
  /// engines (kDt/kMsdt) and the dense PP operator chains are fp64-only
  /// and reject it. kF64 is bit-for-bit the historical behavior.
  la::Scalar scalar = la::Scalar::kF64;
};

/// Creates an engine bound to `t` and `factors`; both must outlive the
/// engine. `profile` may be null (thread-default profile is charged).
/// kSparse is rejected here — it needs CSF storage (see sparse_engine.hpp
/// for the CsfTensor overload).
[[nodiscard]] std::unique_ptr<MttkrpEngine> make_engine(
    EngineKind kind, const tensor::DenseTensor& t,
    const std::vector<la::Matrix>& factors, Profile* profile = nullptr,
    const EngineOptions& options = {});

class PpOperators;

/// Storage-agnostic view of a decomposition input — the complete contract
/// between a tensor storage format and the sequential driver cores: the
/// shape, the squared Frobenius norm feeding the Eq. (3) residual identity
/// ||T - [[A]]||^2 = ||T||^2 - 2<M(N), A(N)> + <Γ(N), S(N)> (which reuses
/// the sweep's last MTTKRP and never reconstructs the tensor), an engine
/// factory bound to the storage, and a pairwise-perturbation operator
/// factory for the PP drivers. Drivers written against TensorProblem
/// cannot see the storage class, so they cannot densify.
struct TensorProblem {
  std::vector<index_t> shape;
  double squared_norm = 0.0;
  std::function<std::unique_ptr<MttkrpEngine>(
      EngineKind, const std::vector<la::Matrix>&, Profile*,
      const EngineOptions&)>
      make_engine;
  /// PP operators bound to the storage (dense dimension-tree chains or
  /// sparse CSF pair walks); both emit the same dense pair operators, so
  /// PpApprox and the Algorithm 2/4 loops are storage-blind. `options`
  /// carries the storage scalar (EngineOptions::scalar): sparse builds
  /// honor kF32, the dense chains reject it.
  std::function<std::unique_ptr<PpOperators>(const std::vector<la::Matrix>&,
                                             Profile*, const EngineOptions&)>
      make_pp_operators;

  [[nodiscard]] int order() const { return static_cast<int>(shape.size()); }
};

/// Views a tensor as a TensorProblem (non-owning: `t` must outlive the
/// problem and every engine made from it). The CsfTensor adapter lives in
/// sparse_engine.hpp.
[[nodiscard]] TensorProblem make_problem(const tensor::DenseTensor& t);

}  // namespace parpp::core
