#include "parpp/core/cp_als.hpp"

#include <cmath>

#include "parpp/core/fitness.hpp"
#include "parpp/core/gram.hpp"
#include "parpp/core/solve_update.hpp"
#include "parpp/core/sparse_engine.hpp"
#include "parpp/core/sweep_guard.hpp"
#include "parpp/la/gemm.hpp"
#include "parpp/util/timer.hpp"

namespace parpp::core {

std::vector<la::Matrix> init_factors(const std::vector<index_t>& shape,
                                     index_t rank, std::uint64_t seed) {
  Rng root(seed);
  std::vector<la::Matrix> factors;
  factors.reserve(shape.size());
  for (std::size_t m = 0; m < shape.size(); ++m) {
    Rng rng = root.split(m + 1);
    la::Matrix a(shape[m], rank);
    a.fill_uniform(rng);
    factors.push_back(std::move(a));
  }
  return factors;
}

std::vector<la::Matrix> resolve_init_factors(const std::vector<index_t>& shape,
                                             index_t rank, std::uint64_t seed,
                                             const DriverHooks& hooks) {
  if (hooks.initial_factors == nullptr)
    return init_factors(shape, rank, seed);
  const auto& init = *hooks.initial_factors;
  PARPP_CHECK(init.size() == shape.size(),
              "warm start: need one factor per tensor mode");
  for (std::size_t m = 0; m < init.size(); ++m) {
    PARPP_CHECK(init[m].rows() == shape[m] && init[m].cols() == rank,
                "warm start: factor ", m, " shape mismatch");
  }
  return init;
}

CpResult cp_als(const tensor::DenseTensor& t, const CpOptions& options) {
  return cp_als(make_problem(t), options, DriverHooks{});
}

CpResult cp_als(const tensor::DenseTensor& t, const CpOptions& options,
                const DriverHooks& hooks) {
  return cp_als(make_problem(t), options, hooks);
}

CpResult cp_als(const tensor::CsfTensor& t, const CpOptions& options,
                const DriverHooks& hooks) {
  return cp_als(make_problem(t), options, hooks);
}

CpResult cp_als(const TensorProblem& problem, const CpOptions& options,
                const DriverHooks& hooks) {
  const int n = problem.order();
  PARPP_CHECK(n >= 2, "cp_als: tensor order must be >= 2");
  PARPP_CHECK(options.rank >= 1, "cp_als: rank must be positive");

  CpResult result;
  Profile profile;
  result.factors =
      resolve_init_factors(problem.shape, options.rank, options.seed, hooks);
  auto& factors = result.factors;
  std::vector<la::Matrix> grams = all_grams(factors, &profile);

  auto engine = problem.make_engine(options.engine, factors, &profile,
                                    options.engine_options);

  const double t_sq = problem.squared_norm;
  WallTimer timer;
  double fit = 0.0, fit_old = -1.0;
  if (hooks.resume != nullptr) {
    fit = hooks.resume->fitness;
    fit_old = hooks.resume->prev_fitness;
  }
  int sweep = 0;
  SweepGuard guard(result, factors, grams);
  while (sweep < options.max_sweeps &&
         std::abs(fit - fit_old) > options.tol) {
    guard.snapshot(fit, fit_old, result.residual);
    la::Matrix gamma_last, m_last;
    for (int i = 0; i < n; ++i) {
      la::Matrix gamma = gamma_chain(grams, i, &profile);
      la::Matrix m = engine->mttkrp(i);
      factors[static_cast<std::size_t>(i)] =
          update_factor(gamma, m, &profile);
      engine->notify_update(i);
      grams[static_cast<std::size_t>(i)] =
          la::gram(factors[static_cast<std::size_t>(i)], &profile);
      if (i == n - 1) {
        gamma_last = std::move(gamma);
        m_last = std::move(m);
      }
    }
    ++sweep;
    fit_old = fit;
    result.residual = relative_residual(
        t_sq, gamma_last, grams[static_cast<std::size_t>(n - 1)], m_last,
        factors[static_cast<std::size_t>(n - 1)]);
    fit = fitness_from_residual(result.residual);
    if (!guard.check_sweep(sweep, fit, fit_old, engine.get())) break;
    const SweepRecord rec{timer.seconds(), fit, "als"};
    if (options.record_history) result.history.push_back(rec);
    if (hooks.checkpoint_every > 0 && hooks.on_checkpoint &&
        sweep % hooks.checkpoint_every == 0)
      hooks.on_checkpoint(factors, sweep, fit, fit_old);
    if (hooks.on_sweep && !hooks.on_sweep(rec, factors)) break;
  }

  result.fitness = fit;
  result.sweeps = sweep;
  result.num_als_sweeps = sweep;
  result.profile = profile;
  return result;
}

}  // namespace parpp::core
