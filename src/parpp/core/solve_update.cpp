#include "parpp/core/solve_update.hpp"

#include "parpp/la/spd_solve.hpp"

namespace parpp::core {

la::Matrix update_factor(const la::Matrix& gamma, const la::Matrix& mttkrp,
                         Profile* profile) {
  return la::solve_gram(gamma, mttkrp, profile);
}

double relative_change(const la::Matrix& a_new, const la::Matrix& a_old) {
  la::Matrix d = a_new;
  d.axpy(-1.0, a_old);
  const double denom = a_new.frobenius_norm();
  return denom > 0.0 ? d.frobenius_norm() / denom : 0.0;
}

}  // namespace parpp::core
