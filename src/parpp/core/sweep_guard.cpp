#include "parpp/core/sweep_guard.hpp"

#include <cmath>
#include <utility>

namespace parpp::core {

void SweepGuard::snapshot(double fit, double fit_old, double residual) {
  saved_factors_ = factors_;
  saved_grams_ = grams_;
  saved_fit_ = fit;
  saved_fit_old_ = fit_old;
  saved_residual_ = residual;
}

void SweepGuard::record(int sweep, std::string what) {
  result_.recovery_log.push_back({sweep, std::move(what)});
  if (result_.status == SolveStatus::kOk)
    result_.status = SolveStatus::kRecovered;
}

bool SweepGuard::state_finite(double fit) const {
  if (!std::isfinite(fit)) return false;
  for (const auto& a : factors_)
    if (!a.all_finite()) return false;
  for (const auto& g : grams_)
    if (!g.all_finite()) return false;
  return true;
}

void SweepGuard::restore(double& fit, double& fit_old, MttkrpEngine* engine) {
  factors_ = saved_factors_;
  grams_ = saved_grams_;
  fit = saved_fit_;
  fit_old = saved_fit_old_;
  result_.residual = saved_residual_;
  if (engine != nullptr) {
    for (std::size_t i = 0; i < factors_.size(); ++i)
      engine->notify_update(static_cast<int>(i));
  }
}

bool SweepGuard::check_sweep(int sweep, double& fit, double& fit_old,
                             MttkrpEngine* engine) {
  const la::SpdStats now = la::spd_stats();
  if (now.ridge_recoveries > last_.ridge_recoveries) {
    record(sweep, "ridge-regularized retry recovered " +
                      std::to_string(now.ridge_recoveries -
                                     last_.ridge_recoveries) +
                      " Gram solve(s) after Cholesky breakdown");
  }
  if (now.pinv_fallbacks > last_.pinv_fallbacks) {
    record(sweep, "pseudo-inverse fallback used for " +
                      std::to_string(now.pinv_fallbacks -
                                     last_.pinv_fallbacks) +
                      " Gram solve(s)");
  }
  if (now.nonfinite_grams > last_.nonfinite_grams) {
    record(sweep, "non-finite Gram short-circuited to a zero update in " +
                      std::to_string(now.nonfinite_grams -
                                     last_.nonfinite_grams) +
                      " solve(s)");
  }
  last_ = now;

  if (state_finite(fit)) return true;

  if (rollbacks_ < kRollbackBudget) {
    ++rollbacks_;
    restore(fit, fit_old, engine);
    record(sweep, "non-finite iterate: rolled back to the last good sweep "
                  "(rollback " +
                      std::to_string(rollbacks_) + "/" +
                      std::to_string(kRollbackBudget) + ")");
    return true;
  }
  restore(fit, fit_old, engine);
  record(sweep,
         "non-finite iterate persisted past the rollback budget; "
         "aborting on the last good state");
  result_.status = SolveStatus::kNumericalAbort;
  return false;
}

}  // namespace parpp::core
