#include "parpp/core/normalize.hpp"

#include <cmath>

namespace parpp::core {

std::vector<double> column_norms(const la::Matrix& a) {
  std::vector<double> norms(static_cast<std::size_t>(a.cols()), 0.0);
  for (index_t i = 0; i < a.rows(); ++i) {
    const double* row = a.row(i);
    for (index_t j = 0; j < a.cols(); ++j)
      norms[static_cast<std::size_t>(j)] += row[j] * row[j];
  }
  for (double& n : norms) n = std::sqrt(n);
  return norms;
}

std::vector<double> normalize_columns(std::vector<la::Matrix>& factors) {
  PARPP_CHECK(!factors.empty(), "normalize_columns: no factors");
  const index_t r = factors[0].cols();
  std::vector<double> lambda(static_cast<std::size_t>(r), 1.0);
  for (auto& a : factors) {
    PARPP_CHECK(a.cols() == r, "normalize_columns: rank mismatch");
    const auto norms = column_norms(a);
    for (index_t j = 0; j < r; ++j) {
      const double n = norms[static_cast<std::size_t>(j)];
      lambda[static_cast<std::size_t>(j)] *= n;
      if (n > 0.0) {
        const double inv = 1.0 / n;
        for (index_t i = 0; i < a.rows(); ++i) a(i, j) *= inv;
      }
    }
  }
  // A zero column in any mode zeroes the component's weight.
  for (index_t j = 0; j < r; ++j) {
    for (const auto& a : factors) {
      double col = 0.0;
      for (index_t i = 0; i < a.rows(); ++i) col += a(i, j) * a(i, j);
      if (col == 0.0) lambda[static_cast<std::size_t>(j)] = 0.0;
    }
  }
  return lambda;
}

void absorb_weights(std::vector<la::Matrix>& factors,
                    const std::vector<double>& lambda, int mode) {
  PARPP_CHECK(mode >= 0 && mode < static_cast<int>(factors.size()),
              "absorb_weights: bad mode");
  la::Matrix& a = factors[static_cast<std::size_t>(mode)];
  PARPP_CHECK(static_cast<index_t>(lambda.size()) == a.cols(),
              "absorb_weights: weight count mismatch");
  for (index_t i = 0; i < a.rows(); ++i)
    for (index_t j = 0; j < a.cols(); ++j)
      a(i, j) *= lambda[static_cast<std::size_t>(j)];
}

}  // namespace parpp::core
