// Per-sweep numerical guardrails shared by the sequential drivers.
#pragma once

#include <string>
#include <vector>

#include "parpp/core/cp_als.hpp"
#include "parpp/la/spd_solve.hpp"

namespace parpp::core {

/// Watches a sweep loop for non-finite state and Gram-solve breakdowns.
/// Per iteration:
///
///   guard.snapshot(fit, fit_old, result.residual);   // known-good state
///   ... sweep body ...
///   if (!guard.check_sweep(sweep, fit, fit_old, engine.get())) break;
///
/// check_sweep (a) folds la::spd_stats() deltas (ridge retries, pinv
/// fallbacks, zeroed non-finite Grams) into result.recovery_log and flips
/// the status to kRecovered, and (b) when factors / Grams / fitness went
/// non-finite, rolls the iterate back to the snapshot (re-notifying the
/// engine for every mode) up to kRollbackBudget times; past the budget it
/// restores the last good state, marks kNumericalAbort and returns false.
/// The sweep counter keeps advancing across rollbacks, so termination stays
/// bounded by max_sweeps. All log messages are deterministic (no wall-clock
/// or pointer content) — same-seed reruns produce identical logs.
class SweepGuard {
 public:
  static constexpr int kRollbackBudget = 3;

  SweepGuard(CpResult& result, std::vector<la::Matrix>& factors,
             std::vector<la::Matrix>& grams)
      : result_(result), factors_(factors), grams_(grams),
        last_(la::spd_stats()) {}

  void snapshot(double fit, double fit_old, double residual);

  [[nodiscard]] bool check_sweep(int sweep, double& fit, double& fit_old,
                                 MttkrpEngine* engine);

  /// Append an event and upgrade kOk -> kRecovered (abort statuses stick).
  void record(int sweep, std::string what);

  /// True when the tracked factors, Grams and `fit` are all finite.
  [[nodiscard]] bool state_finite(double fit) const;

 private:
  void restore(double& fit, double& fit_old, MttkrpEngine* engine);

  CpResult& result_;
  std::vector<la::Matrix>& factors_;
  std::vector<la::Matrix>& grams_;
  std::vector<la::Matrix> saved_factors_, saved_grams_;
  double saved_fit_ = 0.0, saved_fit_old_ = -1.0, saved_residual_ = 1.0;
  la::SpdStats last_;
  int rollbacks_ = 0;
};

}  // namespace parpp::core
