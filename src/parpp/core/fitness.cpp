#include "parpp/core/fitness.hpp"

#include <algorithm>
#include <cmath>

#include "parpp/util/common.hpp"

namespace parpp::core {

double relative_residual(double t_sq_norm, const la::Matrix& gamma,
                         const la::Matrix& gram_last, const la::Matrix& m_last,
                         const la::Matrix& a_last) {
  PARPP_CHECK(t_sq_norm >= 0.0, "relative_residual: negative norm");
  // <Γ, S> = ||T~||_F^2 ; <M, A> = <T, T~>.
  const double model_sq = gamma.dot(gram_last);
  const double cross = m_last.dot(a_last);
  const double num_sq = std::max(0.0, t_sq_norm + model_sq - 2.0 * cross);
  if (t_sq_norm == 0.0) return 0.0;
  return std::sqrt(num_sq) / std::sqrt(t_sq_norm);
}

}  // namespace parpp::core
