// Version-stamped dimension-tree node cache and the standard DT engine.
//
// Both the standard dimension tree (Sec. II-C) and the multi-sweep tree
// (Sec. III) materialize intermediates
//
//   M(S) = T contracted with A(j) for every mode j outside S,
//
// stored with the rank mode last. Here every cached node records the
// *version* of each factor contracted into it; a node is reusable iff all
// recorded versions are current. This makes caching semantically exact —
// the engines differ only in which node chains they walk, and the paper's
// amortization (2 TTMs/sweep for DT, N TTMs per N-1 sweeps for MSDT) falls
// out of the ALS update order.
#pragma once

#include <map>
#include <memory>
#include <utility>

#include "parpp/core/mttkrp_engine.hpp"
#include "parpp/tensor/dense_tensor.hpp"
#include "parpp/util/workspace.hpp"

namespace parpp::core {

namespace detail {

struct TreeNode {
  tensor::DenseTensor data;  ///< extents follow `modes`, rank mode last
  std::vector<int> modes;    ///< storage order of remaining tensor modes
  std::vector<std::pair<int, std::uint64_t>> deps;  ///< (mode, version used)
};

using NodePtr = std::shared_ptr<const TreeNode>;

}  // namespace detail

/// Shared implementation for tree-based engines: factor versioning, the
/// node cache, and the two build primitives (from the raw tensor via one
/// TTM + mTTVs, and from a parent node via mTTVs).
class TreeEngineBase : public MttkrpEngine {
 public:
  /// `copy_default` is the engine's kAuto resolution for the stored
  /// transposed copy (true for MSDT, false for DT).
  TreeEngineBase(const tensor::DenseTensor& t,
                 const std::vector<la::Matrix>& factors, Profile* profile,
                 const EngineOptions& options, bool copy_default = false);

  void notify_update(int mode) override;

  [[nodiscard]] long ttm_count() const override { return ttm_count_; }
  [[nodiscard]] long mttv_count() const override { return mttv_count_; }

  /// Number of live cached nodes (diagnostic; ablation benches watch this).
  [[nodiscard]] std::size_t cached_nodes() const { return cache_.size(); }
  /// Total elements held by cached nodes (auxiliary memory proxy).
  [[nodiscard]] index_t cached_elements() const;
  /// Bytes held by the node arena (steady-state sweeps must not grow this).
  [[nodiscard]] std::size_t workspace_bytes() const {
    return ws_.total_bytes();
  }
  /// Backing allocations performed by the node arena since construction.
  [[nodiscard]] std::size_t workspace_allocations() const {
    return ws_.allocation_count();
  }

  /// Smallest cached, version-current node whose mode set contains `subset`
  /// (modes sorted ascending), or null. The pairwise-perturbation
  /// initialization uses this to amortize first-level intermediates from
  /// the preceding regular sweep (paper footnote 1).
  [[nodiscard]] detail::NodePtr find_current_superset(
      const std::vector<int>& subset) const;

 protected:
  [[nodiscard]] int order() const { return n_; }
  [[nodiscard]] const std::vector<la::Matrix>& factors() const {
    return *factors_;
  }
  [[nodiscard]] std::uint64_t version(int mode) const {
    return versions_[static_cast<std::size_t>(mode)];
  }
  [[nodiscard]] bool node_current(const detail::TreeNode& node) const;

  /// Cyclic mode range key: modes {start, start+1, ..., start+len-1 mod N}.
  using RangeKey = std::pair<int, int>;

  /// Cache lookup; null if absent or stale (stale entries are erased).
  [[nodiscard]] detail::NodePtr cache_lookup(const RangeKey& key);
  void cache_store(const RangeKey& key, detail::NodePtr node);

  /// Builds the node covering cyclic range `key` directly from the raw
  /// tensor: one first-level TTM on a chosen mode of the complement, then
  /// mTTVs for the rest.
  [[nodiscard]] detail::NodePtr build_from_raw(const RangeKey& key);

  /// Builds a child covering `key` from `parent` by contracting every
  /// parent mode outside the range.
  [[nodiscard]] detail::NodePtr build_from_parent(const detail::NodePtr& parent,
                                                  const RangeKey& key);

  /// Extracts the leaf (single-mode node) as the MTTKRP result matrix.
  [[nodiscard]] la::Matrix leaf_matrix(const detail::TreeNode& node) const;

  /// True if the range (cyclically) contains `mode`.
  [[nodiscard]] bool range_contains(const RangeKey& key, int mode) const {
    return ((mode - key.first) % n_ + n_) % n_ < key.second;
  }
  /// Modes of a cyclic range in cyclic order.
  [[nodiscard]] std::vector<int> range_modes(const RangeKey& key) const;

  /// Whether a node of `len` modes may be cached (level-combining option).
  [[nodiscard]] bool cacheable(int len) const {
    return max_cached_modes_ <= 0 || len <= max_cached_modes_;
  }

  Profile& profile() const {
    return profile_ ? *profile_ : Profile::thread_default();
  }

  /// Arena backing all cache-node storage: invalidated nodes return their
  /// buffers here, so steady-state sweeps rebuild without allocating.
  [[nodiscard]] util::KernelWorkspace& workspace() { return ws_; }

 private:
  const tensor::DenseTensor* t_;
  const std::vector<la::Matrix>* factors_;
  Profile* profile_;
  int n_;
  int max_cached_modes_;
  util::KernelWorkspace ws_;
  std::vector<std::uint64_t> versions_;
  std::map<RangeKey, detail::NodePtr> cache_;
  long ttm_count_ = 0;
  long mttv_count_ = 0;

  // Optional rotated copy of T (modes rotated by ceil(N/2)) so first-level
  // TTMs on mid modes hit a boundary position of some copy.
  bool use_transposed_copy_;
  std::unique_ptr<tensor::DenseTensor> rotated_;
  std::vector<int> rotated_order_;

  /// Picks the (tensor, mode order) copy to contract `ttm_mode` on.
  [[nodiscard]] std::pair<const tensor::DenseTensor*, const std::vector<int>*>
  pick_copy(int ttm_mode) const;
  std::vector<int> identity_order_;
};

/// Standard binary dimension tree engine: every leaf is reached by the
/// fixed contiguous-split descent from [0, N).
class DtEngine final : public TreeEngineBase {
 public:
  using TreeEngineBase::TreeEngineBase;

  [[nodiscard]] la::Matrix mttkrp(int mode) override;
  [[nodiscard]] std::string_view name() const override { return "DT"; }

 private:
  [[nodiscard]] detail::NodePtr ensure_contiguous(int lo, int len);
};

}  // namespace parpp::core
