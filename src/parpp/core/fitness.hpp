// Relative residual and fitness via the amortized formula, Eq. (3).
#pragma once

#include "parpp/la/matrix.hpp"

namespace parpp::core {

/// Relative residual r = ||T - T~||_F / ||T||_F computed from quantities
/// already amortized by the sweep (Eq. (3) of the paper, with the
/// square-norm reading of the numerator):
///
///   r = sqrt( ||T||_F^2 + <Γ(N), A(N)^T A(N)> - 2 <M(N), A(N)> ) / ||T||_F
///
/// `m_last` must be the MTTKRP of the last-updated mode evaluated at the
/// factor values used in that update, `a_last` the updated factor, `gamma`
/// and `gram_last` the matching Γ(N) and S(N). The argument of the sqrt is
/// clamped at zero against round-off.
[[nodiscard]] double relative_residual(double t_sq_norm,
                                       const la::Matrix& gamma,
                                       const la::Matrix& gram_last,
                                       const la::Matrix& m_last,
                                       const la::Matrix& a_last);

/// fitness = 1 - r.
[[nodiscard]] inline double fitness_from_residual(double r) { return 1.0 - r; }

}  // namespace parpp::core
