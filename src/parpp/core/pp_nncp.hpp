// PP-accelerated nonnegative HALS (new method cell of the solver matrix).
//
// Pairwise perturbation (Algorithm 2) approximates the MTTKRP — it never
// looks at how the factor update consumes it. HALS consumes exactly one
// MTTKRP per mode per sweep, same as the ALS normal-equations solve, so the
// PP machinery composes with the nonnegative update unchanged: regular HALS
// sweeps run until the factors move slowly, then the PP operators take over
// and the approximated ~M(n) feeds the HALS column passes. The projection
// max(0, ·) keeps factors feasible regardless of the approximation error,
// and the usual pp_tol / divergence guards bound that error exactly as in
// the unconstrained driver.
#pragma once

#include "parpp/core/nncp.hpp"
#include "parpp/core/pp_als.hpp"

namespace parpp::core {

/// Runs nonnegative CP (HALS) with PP-approximated sweeps once the factors
/// settle. Counters split sweeps into regular (num_als_sweeps) and
/// PP-init / PP-approx, as for pp_cp_als.
[[nodiscard]] CpResult pp_nncp_hals(const tensor::DenseTensor& t,
                                    const CpOptions& options,
                                    const PpOptions& pp_options = {},
                                    const NncpOptions& nn_options = {});
[[nodiscard]] CpResult pp_nncp_hals(const tensor::DenseTensor& t,
                                    const CpOptions& options,
                                    const PpOptions& pp_options,
                                    const NncpOptions& nn_options,
                                    const DriverHooks& hooks);
[[nodiscard]] CpResult pp_nncp_hals(const tensor::CsfTensor& t,
                                    const CpOptions& options,
                                    const PpOptions& pp_options = {},
                                    const NncpOptions& nn_options = {},
                                    const DriverHooks& hooks = {});

}  // namespace parpp::core
