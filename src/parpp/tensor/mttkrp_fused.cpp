#include "parpp/tensor/mttkrp_fused.hpp"

#include <omp.h>

#include <algorithm>
#include <array>
#include <cstring>

#include "parpp/la/gemm.hpp"
#include "parpp/la/scalar.hpp"
#include "parpp/util/omp_sync.hpp"

namespace parpp::tensor {

namespace {

// Panel budget in scalars: one KRP panel (block x R) stays L1/L2 resident
// next to the GEMM tiles it feeds. Counted in elements, not bytes, so the
// fp32 path gets the same panel geometry with half the footprint.
constexpr index_t kPanelDoubles = 8192;

index_t panel_rows(index_t r) {
  return std::max<index_t>(1, kPanelDoubles / std::max<index_t>(r, 1));
}

// Upper bound on tensor order for the stack-allocated odometer below; the
// panel builder runs per l-row inside the hot parallel loop and must not
// touch the heap.
constexpr std::size_t kMaxOrder = 24;

// Scalar-typed gemm_raw selection (fp64 / fp32 storage, fp64 accumulate).
inline void gemm_raw_s(la::Trans ta, la::Trans tb, index_t m, index_t n,
                       index_t k, double alpha, const double* a, index_t lda,
                       const double* b, index_t ldb, double beta, double* c,
                       index_t ldc) {
  la::gemm_raw(ta, tb, m, n, k, alpha, a, lda, b, ldb, beta, c, ldc);
}
inline void gemm_raw_s(la::Trans ta, la::Trans tb, index_t m, index_t n,
                       index_t k, double alpha, const float* a, index_t lda,
                       const float* b, index_t ldb, double beta, double* c,
                       index_t ldc) {
  la::gemm_raw_f32(ta, tb, m, n, k, alpha, a, lda, b, ldb, beta, c, ldc);
}

// Writes rows [start, start + count) of the Khatri-Rao product of `mats`
// (row-major linearization: the *last* matrix's index varies fastest) into
// `out` (count x r, row-major, same scalar as the factor storage). `mats`
// must be non-empty. fp64 factors keep the exact pre-scalar-axis
// arithmetic; fp32 factors form the product in storage precision (the
// panel feeds an fp32 GEMM stream, error covered by the 1e-5 parity
// tests).
template <typename MatT>
void krp_panel(const std::vector<const MatT*>& mats, index_t start,
               index_t count, index_t r, la::matrix_scalar_t<MatT>* out) {
  using S = la::matrix_scalar_t<MatT>;
  const std::size_t nm = mats.size();
  if (nm == 1) {
    std::memcpy(out, mats[0]->row(start),
                static_cast<std::size_t>(count * r) * sizeof(S));
    return;
  }
  // Odometer over the member indices, advanced once per row. Stack storage:
  // this runs once per l-row of the interior-mode loop and must stay
  // allocation-free.
  PARPP_ASSERT(nm <= kMaxOrder, "krp_panel: order cap exceeded");
  std::array<index_t, kMaxOrder> idx;
  index_t rem = start;
  for (std::size_t m = nm; m-- > 0;) {
    const index_t e = mats[m]->rows();
    idx[m] = rem % e;
    rem /= e;
  }
  for (index_t row = 0; row < count; ++row) {
    S* PARPP_RESTRICT o = out + row * r;
    std::memcpy(o, mats[0]->row(idx[0]),
                static_cast<std::size_t>(r) * sizeof(S));
    for (std::size_t m = 1; m < nm; ++m) {
      const S* PARPP_RESTRICT f = mats[m]->row(idx[m]);
#pragma omp simd
      for (index_t k = 0; k < r; ++k) o[k] *= f[k];
    }
    for (std::size_t m = nm; m-- > 0;) {
      if (++idx[m] < mats[m]->rows()) break;
      idx[m] = 0;
    }
  }
}

// One KRP row (product of one row from each matrix) for a linearized index.
template <typename MatT>
void krp_row(const std::vector<const MatT*>& mats, index_t lin, index_t r,
             la::matrix_scalar_t<MatT>* out) {
  krp_panel(mats, lin, 1, r, out);
}

// Register-blocked rank-broadcast multiply-accumulate of the interior-mode
// path: Mlocal(i, :) += P(i, :) ∘ lrow. RB ∈ {8, 16, 32} instantiates the
// rank loop with an exact trip count (fully held in vector registers);
// RB = 0 is the generic runtime-bound tail. Element-wise over k, so the
// fp64 summation order is identical to the pre-blocking kernel.
template <int RB, typename S>
void mac_rows(index_t sn, index_t r, const double* p, const S* lrow,
              double* mlocal) {
  const index_t rr = RB != 0 ? RB : r;
  for (index_t i = 0; i < sn; ++i) {
    const double* PARPP_RESTRICT pi = p + i * r;
    double* PARPP_RESTRICT mi = mlocal + i * r;
    const S* PARPP_RESTRICT lr = lrow;
#pragma omp simd
    for (index_t k = 0; k < rr; ++k)
      mi[k] += pi[k] * static_cast<double>(lr[k]);
  }
}

// Number of doubles a scratch run of `n` scalars occupies in the
// (double-granular) workspace slab.
template <typename S>
constexpr index_t slots(index_t n) {
  if constexpr (std::is_same_v<S, float>) return la::f32_lease_doubles(n);
  return n;
}

template <typename MatT>
void mttkrp_into_impl(const la::matrix_scalar_t<MatT>* src,
                      const std::vector<index_t>& shape,
                      const std::vector<MatT>& factors, int n, la::Matrix& out,
                      Profile* profile, util::KernelWorkspace* ws) {
  using S = la::matrix_scalar_t<MatT>;
  const int order = static_cast<int>(shape.size());
  PARPP_CHECK(static_cast<int>(factors.size()) == order,
              "mttkrp_fused: factor count mismatch");
  PARPP_CHECK(static_cast<std::size_t>(order) <= kMaxOrder,
              "mttkrp_fused: order ", order, " exceeds cap ", kMaxOrder);
  PARPP_CHECK(n >= 0 && n < order, "mttkrp_fused: bad mode ", n);
  index_t size = 1;
  for (int m = 0; m < order; ++m) {
    const index_t e = shape[static_cast<std::size_t>(m)];
    PARPP_CHECK(factors[static_cast<std::size_t>(m)].rows() == e,
                "mttkrp_fused: factor ", m, " rows ",
                factors[static_cast<std::size_t>(m)].rows(), " != extent ", e);
    size *= e;
  }
  const index_t r = factors[static_cast<std::size_t>(n)].cols();
  const index_t sn = shape[static_cast<std::size_t>(n)];
  if (out.rows() != sn || out.cols() != r) out = la::Matrix(sn, r);
  out.set_zero();
  if (size == 0 || r == 0) return;

  if (order == 1) {
    // No partner factors: the KRP is an empty product (all-ones), so every
    // rank column is the tensor itself — matches mttkrp_elementwise.
    for (index_t i = 0; i < sn; ++i)
      std::fill(out.row(i), out.row(i) + r, static_cast<double>(src[i]));
    return;
  }

  util::KernelWorkspace& wsp =
      ws ? *ws : util::KernelWorkspace::thread_default();
  index_t left = 1, right = 1;
  for (int m = 0; m < n; ++m) left *= shape[static_cast<std::size_t>(m)];
  for (int m = n + 1; m < order; ++m)
    right *= shape[static_cast<std::size_t>(m)];

  // O(order) pointer setup before the panel loops, not steady-state work.
  std::vector<const MatT*> left_mats, right_mats;  // parpp-lint: allow(alloc)
  for (int m = 0; m < n; ++m)
    // parpp-lint: allow(alloc)
    left_mats.push_back(&factors[static_cast<std::size_t>(m)]);
  for (int m = n + 1; m < order; ++m)
    // parpp-lint: allow(alloc)
    right_mats.push_back(&factors[static_cast<std::size_t>(m)]);

  ScopedProfile sp(profile ? *profile : Profile::thread_default(),
                   Kernel::kTTM, 2.0 * static_cast<double>(size) * r);

  if (right_mats.empty()) {
    // Last mode: M = U^T L with U = T viewed as (left x s_n) — the
    // unfolding is reached by a transposed GEMM, no copy. The left KRP is
    // produced panel-by-panel.
    const index_t pb = panel_rows(r);
    auto panel = wsp.lease(slots<S>(pb * r));
    S* pdata = reinterpret_cast<S*>(panel.data());
    for (index_t l0 = 0; l0 < left; l0 += pb) {
      const index_t lb = std::min(pb, left - l0);
      krp_panel(left_mats, l0, lb, r, pdata);
      gemm_raw_s(la::Trans::kYes, la::Trans::kNo, sn, r, lb, 1.0,
                 src + l0 * sn, sn, pdata, r, 1.0, out.data(), r);
    }
    return;
  }

  if (left_mats.empty()) {
    // First mode: M = U W with U = T viewed as (s_n x right) — already the
    // unfolding in place. The right KRP is produced panel-by-panel.
    const index_t pb = panel_rows(r);
    auto panel = wsp.lease(slots<S>(pb * r));
    S* pdata = reinterpret_cast<S*>(panel.data());
    for (index_t t0 = 0; t0 < right; t0 += pb) {
      const index_t tb = std::min(pb, right - t0);
      krp_panel(right_mats, t0, tb, r, pdata);
      gemm_raw_s(la::Trans::kNo, la::Trans::kNo, sn, r, tb, 1.0, src + t0,
                 right, pdata, r, 1.0, out.data(), r);
    }
    return;
  }

  // Interior mode. With U(i, l·right + t) = T(l, i, t) and the KRP row
  // factored as L(l,:) ∘ Rt(t,:):
  //
  //   M(i, r) = Σ_l L(l, r) · [ Σ_t T(l, i, t) · Rt(t, r) ]
  //
  // Per l: a strided (s_n x right) GEMM against panel-built Rt blocks into a
  // scratch P, then a rank-broadcast multiply-accumulate by L(l,:). The l
  // loop is split across threads with private output accumulators so the
  // result is deterministic and lock-free.
  const index_t pb = panel_rows(r);
  const int maxt = omp_get_max_threads();
  const index_t msize = sn * r;
  // Per-thread runs: Mlocal and the GEMM scratch P accumulate in fp64
  // regardless of the storage scalar; only the lrow/panel KRP streams size
  // by scalar type.
  const index_t scratch_per_thread =
      msize /*P*/ + slots<S>(r /*lrow*/ + pb * r /*Rt panel*/);
  const index_t per_thread = msize /*Mlocal*/ + scratch_per_thread;
  auto slab = wsp.lease(static_cast<index_t>(maxt) * per_thread);
  // Mlocal slots lead the slab so they can be zeroed (and later reduced) as
  // one contiguous run; non-spawned threads' slots must read as zero.
  double* mlocal0 = slab.data();
  std::fill(mlocal0, mlocal0 + static_cast<index_t>(maxt) * msize, 0.0);
  double* scratch0 = mlocal0 + static_cast<index_t>(maxt) * msize;

  util::OmpJoinFence fence;
  fence.fork();
  // When the whole right KRP fits in one panel its rows are identical for
  // every l — build it once per thread instead of `left` times inside the
  // hot loop (same values, so fp64 results are unchanged).
  const bool hoist_panel = right <= pb;

#pragma omp parallel
  {
    fence.enter();
    const int tid = omp_get_thread_num();
    double* mlocal = mlocal0 + static_cast<index_t>(tid) * msize;
    double* scratch = scratch0 + static_cast<index_t>(tid) * scratch_per_thread;
    double* p = scratch;
    S* lrow = reinterpret_cast<S*>(scratch + msize);
    S* panel = lrow + r;
    if (hoist_panel) krp_panel(right_mats, 0, right, r, panel);

#pragma omp for schedule(static)
    for (index_t l = 0; l < left; ++l) {
      krp_row(left_mats, l, r, lrow);
      std::fill(p, p + msize, 0.0);
      const S* tl = src + l * sn * right;
      for (index_t t0 = 0; t0 < right; t0 += pb) {
        const index_t tb = std::min(pb, right - t0);
        if (!hoist_panel) krp_panel(right_mats, t0, tb, r, panel);
        gemm_raw_s(la::Trans::kNo, la::Trans::kNo, sn, r, tb, 1.0, tl + t0,
                   right, panel, r, 1.0, p, r);
      }
      la::rank_dispatch(r, [&](auto rb) {
        mac_rows<decltype(rb)::value>(sn, r, p, lrow, mlocal);
      });
    }
    fence.leave();
  }
  fence.join();

  // Deterministic reduction in thread order.
  double* dst = out.data();
  for (int tid = 0; tid < maxt; ++tid) {
    const double* mlocal = mlocal0 + static_cast<index_t>(tid) * msize;
    for (index_t i = 0; i < msize; ++i) dst[i] += mlocal[i];
  }
}

}  // namespace

la::Matrix mttkrp_fused(const DenseTensor& t,
                        const std::vector<la::Matrix>& factors, int n,
                        Profile* profile, util::KernelWorkspace* ws) {
  la::Matrix m;
  mttkrp_into(t, factors, n, m, profile, ws);
  return m;
}

void mttkrp_into(const DenseTensor& t, const std::vector<la::Matrix>& factors,
                 int n, la::Matrix& out, Profile* profile,
                 util::KernelWorkspace* ws) {
  mttkrp_into_impl(t.data(), t.shape(), factors, n, out, profile, ws);
}

void mttkrp_into_f32(const float* t32, const std::vector<index_t>& shape,
                     const std::vector<la::MatrixF32>& factors, int n,
                     la::Matrix& out, Profile* profile,
                     util::KernelWorkspace* ws) {
  mttkrp_into_impl(t32, shape, factors, n, out, profile, ws);
}

}  // namespace parpp::tensor
