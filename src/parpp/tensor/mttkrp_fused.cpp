#include "parpp/tensor/mttkrp_fused.hpp"

#include <omp.h>

#include <algorithm>
#include <array>
#include <cstring>

#include "parpp/la/gemm.hpp"
#include "parpp/util/omp_sync.hpp"

namespace parpp::tensor {

namespace {

// Panel budget in doubles: one KRP panel (block x R) stays L1/L2 resident
// next to the GEMM tiles it feeds.
constexpr index_t kPanelDoubles = 8192;

index_t panel_rows(index_t r) {
  return std::max<index_t>(1, kPanelDoubles / std::max<index_t>(r, 1));
}

// Upper bound on tensor order for the stack-allocated odometer below; the
// panel builder runs per l-row inside the hot parallel loop and must not
// touch the heap.
constexpr std::size_t kMaxOrder = 24;

// Writes rows [start, start + count) of the Khatri-Rao product of `mats`
// (row-major linearization: the *last* matrix's index varies fastest) into
// `out` (count x r, row-major). `mats` must be non-empty.
void krp_panel(const std::vector<const la::Matrix*>& mats, index_t start,
               index_t count, index_t r, double* out) {
  const std::size_t nm = mats.size();
  if (nm == 1) {
    std::memcpy(out, mats[0]->row(start),
                static_cast<std::size_t>(count * r) * sizeof(double));
    return;
  }
  // Odometer over the member indices, advanced once per row. Stack storage:
  // this runs once per l-row of the interior-mode loop and must stay
  // allocation-free.
  PARPP_ASSERT(nm <= kMaxOrder, "krp_panel: order cap exceeded");
  std::array<index_t, kMaxOrder> idx;
  index_t rem = start;
  for (std::size_t m = nm; m-- > 0;) {
    const index_t e = mats[m]->rows();
    idx[m] = rem % e;
    rem /= e;
  }
  for (index_t row = 0; row < count; ++row) {
    double* o = out + row * r;
    std::memcpy(o, mats[0]->row(idx[0]),
                static_cast<std::size_t>(r) * sizeof(double));
    for (std::size_t m = 1; m < nm; ++m) {
      const double* f = mats[m]->row(idx[m]);
      for (index_t k = 0; k < r; ++k) o[k] *= f[k];
    }
    for (std::size_t m = nm; m-- > 0;) {
      if (++idx[m] < mats[m]->rows()) break;
      idx[m] = 0;
    }
  }
}

// One KRP row (product of one row from each matrix) for a linearized index.
void krp_row(const std::vector<const la::Matrix*>& mats, index_t lin,
             index_t r, double* out) {
  krp_panel(mats, lin, 1, r, out);
}

}  // namespace

la::Matrix mttkrp_fused(const DenseTensor& t,
                        const std::vector<la::Matrix>& factors, int n,
                        Profile* profile, util::KernelWorkspace* ws) {
  la::Matrix m;
  mttkrp_into(t, factors, n, m, profile, ws);
  return m;
}

void mttkrp_into(const DenseTensor& t, const std::vector<la::Matrix>& factors,
                 int n, la::Matrix& out, Profile* profile,
                 util::KernelWorkspace* ws) {
  const int order = t.order();
  PARPP_CHECK(static_cast<int>(factors.size()) == order,
              "mttkrp_fused: factor count mismatch");
  PARPP_CHECK(static_cast<std::size_t>(order) <= kMaxOrder,
              "mttkrp_fused: order ", order, " exceeds cap ", kMaxOrder);
  PARPP_CHECK(n >= 0 && n < order, "mttkrp_fused: bad mode ", n);
  for (int m = 0; m < order; ++m) {
    PARPP_CHECK(factors[static_cast<std::size_t>(m)].rows() == t.extent(m),
                "mttkrp_fused: factor ", m, " rows ",
                factors[static_cast<std::size_t>(m)].rows(), " != extent ",
                t.extent(m));
  }
  const index_t r = factors[static_cast<std::size_t>(n)].cols();
  const index_t sn = t.extent(n);
  if (out.rows() != sn || out.cols() != r) out = la::Matrix(sn, r);
  out.set_zero();
  if (t.size() == 0 || r == 0) return;

  if (order == 1) {
    // No partner factors: the KRP is an empty product (all-ones), so every
    // rank column is the tensor itself — matches mttkrp_elementwise.
    for (index_t i = 0; i < sn; ++i)
      std::fill(out.row(i), out.row(i) + r, t[i]);
    return;
  }

  util::KernelWorkspace& wsp =
      ws ? *ws : util::KernelWorkspace::thread_default();
  const index_t left = t.extent_product(0, n);
  const index_t right = t.extent_product(n + 1, order);

  // O(order) pointer setup before the panel loops, not steady-state work.
  std::vector<const la::Matrix*> left_mats, right_mats;  // parpp-lint: allow(alloc)
  for (int m = 0; m < n; ++m)
    // parpp-lint: allow(alloc)
    left_mats.push_back(&factors[static_cast<std::size_t>(m)]);
  for (int m = n + 1; m < order; ++m)
    // parpp-lint: allow(alloc)
    right_mats.push_back(&factors[static_cast<std::size_t>(m)]);

  ScopedProfile sp(profile ? *profile : Profile::thread_default(),
                   Kernel::kTTM, 2.0 * static_cast<double>(t.size()) * r);

  const double* src = t.data();

  if (right_mats.empty()) {
    // Last mode: M = U^T L with U = T viewed as (left x s_n) — the
    // unfolding is reached by a transposed GEMM, no copy. The left KRP is
    // produced panel-by-panel.
    const index_t pb = panel_rows(r);
    auto panel = wsp.lease(pb * r);
    for (index_t l0 = 0; l0 < left; l0 += pb) {
      const index_t lb = std::min(pb, left - l0);
      krp_panel(left_mats, l0, lb, r, panel.data());
      la::gemm_raw(la::Trans::kYes, la::Trans::kNo, sn, r, lb, 1.0,
                   src + l0 * sn, sn, panel.data(), r, 1.0, out.data(), r);
    }
    return;
  }

  if (left_mats.empty()) {
    // First mode: M = U W with U = T viewed as (s_n x right) — already the
    // unfolding in place. The right KRP is produced panel-by-panel.
    const index_t pb = panel_rows(r);
    auto panel = wsp.lease(pb * r);
    for (index_t t0 = 0; t0 < right; t0 += pb) {
      const index_t tb = std::min(pb, right - t0);
      krp_panel(right_mats, t0, tb, r, panel.data());
      la::gemm_raw(la::Trans::kNo, la::Trans::kNo, sn, r, tb, 1.0, src + t0,
                   right, panel.data(), r, 1.0, out.data(), r);
    }
    return;
  }

  // Interior mode. With U(i, l·right + t) = T(l, i, t) and the KRP row
  // factored as L(l,:) ∘ Rt(t,:):
  //
  //   M(i, r) = Σ_l L(l, r) · [ Σ_t T(l, i, t) · Rt(t, r) ]
  //
  // Per l: a strided (s_n x right) GEMM against panel-built Rt blocks into a
  // scratch P, then a rank-broadcast multiply-accumulate by L(l,:). The l
  // loop is split across threads with private output accumulators so the
  // result is deterministic and lock-free.
  const index_t pb = panel_rows(r);
  const int maxt = omp_get_max_threads();
  const index_t msize = sn * r;
  const index_t per_thread = msize /*Mlocal*/ + msize /*P*/ + r /*lrow*/ +
                             pb * r /*Rt panel*/;
  auto slab = wsp.lease(static_cast<index_t>(maxt) * per_thread);
  // Mlocal slots lead the slab so they can be zeroed (and later reduced) as
  // one contiguous run; non-spawned threads' slots must read as zero.
  double* mlocal0 = slab.data();
  std::fill(mlocal0, mlocal0 + static_cast<index_t>(maxt) * msize, 0.0);
  double* scratch0 = mlocal0 + static_cast<index_t>(maxt) * msize;
  const index_t scratch_per_thread = msize + r + pb * r;

  util::OmpJoinFence fence;
  fence.fork();
#pragma omp parallel
  {
    fence.enter();
    const int tid = omp_get_thread_num();
    double* mlocal = mlocal0 + static_cast<index_t>(tid) * msize;
    double* scratch = scratch0 + static_cast<index_t>(tid) * scratch_per_thread;
    double* p = scratch;
    double* lrow = scratch + msize;
    double* panel = lrow + r;

#pragma omp for schedule(static)
    for (index_t l = 0; l < left; ++l) {
      krp_row(left_mats, l, r, lrow);
      std::fill(p, p + msize, 0.0);
      const double* tl = src + l * sn * right;
      for (index_t t0 = 0; t0 < right; t0 += pb) {
        const index_t tb = std::min(pb, right - t0);
        krp_panel(right_mats, t0, tb, r, panel);
        la::gemm_raw(la::Trans::kNo, la::Trans::kNo, sn, r, tb, 1.0, tl + t0,
                     right, panel, r, 1.0, p, r);
      }
      for (index_t i = 0; i < sn; ++i) {
        const double* pi = p + i * r;
        double* mi = mlocal + i * r;
        for (index_t k = 0; k < r; ++k) mi[k] += pi[k] * lrow[k];
      }
    }
    fence.leave();
  }
  fence.join();

  // Deterministic reduction in thread order.
  double* dst = out.data();
  for (int tid = 0; tid < maxt; ++tid) {
    const double* mlocal = mlocal0 + static_cast<index_t>(tid) * msize;
    for (index_t i = 0; i < msize; ++i) dst[i] += mlocal[i];
  }
}

}  // namespace parpp::tensor
