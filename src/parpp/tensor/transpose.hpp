// Tensor transposition (mode permutation), standing in for HPTT.
#pragma once

#include <vector>

#include "parpp/tensor/dense_tensor.hpp"

namespace parpp::tensor {

/// Returns T permuted so that output mode m equals input mode perm[m]:
/// out(i_0, ..., i_{N-1}) = in(i_{perm^{-1}(0)}, ...), i.e.
/// out.shape[m] == in.shape[perm[m]].
///
/// Implementation walks the input linearly and scatters with precomputed
/// output strides; the common "rotate one mode to the front" case used by
/// MSDT's stored-transpose optimization hits a contiguous inner loop.
[[nodiscard]] DenseTensor transpose(const DenseTensor& in,
                                    const std::vector<int>& perm);

/// Out-parameter variant: `out` is reshaped (reusing its storage — possibly
/// workspace-backed — when capacity allows) and fully overwritten.
void transpose_into(const DenseTensor& in, const std::vector<int>& perm,
                    DenseTensor& out);

/// True if `perm` is a valid permutation of 0..n-1.
[[nodiscard]] bool is_permutation(const std::vector<int>& perm, int n);

}  // namespace parpp::tensor
