#include "parpp/tensor/dense_tensor.hpp"

#include <algorithm>
#include <cmath>

namespace parpp::tensor {

std::vector<index_t> row_major_strides(const std::vector<index_t>& shape) {
  std::vector<index_t> strides(shape.size(), 1);
  for (int i = static_cast<int>(shape.size()) - 2; i >= 0; --i) {
    strides[static_cast<std::size_t>(i)] =
        strides[static_cast<std::size_t>(i + 1)] *
        shape[static_cast<std::size_t>(i + 1)];
  }
  return strides;
}

bool next_index(std::span<const index_t> shape, std::span<index_t> idx) {
  for (int m = static_cast<int>(shape.size()) - 1; m >= 0; --m) {
    auto um = static_cast<std::size_t>(m);
    if (++idx[um] < shape[um]) return true;
    idx[um] = 0;
  }
  return false;
}

void DenseTensor::set_shape(std::vector<index_t> shape) {
  shape_ = std::move(shape);
  strides_ = row_major_strides(shape_);
  size_ = 1;
  for (index_t s : shape_) {
    PARPP_CHECK(s >= 0, "tensor extent must be non-negative");
    size_ *= s;
  }
}

DenseTensor::DenseTensor(std::vector<index_t> shape) {
  set_shape(std::move(shape));
  owned_.assign(static_cast<std::size_t>(size_), 0.0);
  data_ptr_ = owned_.data();
}

DenseTensor::DenseTensor(std::vector<index_t> shape, util::KernelWorkspace& ws)
    : ws_(ws) {
  set_shape(std::move(shape));
  lease_ = ws_->lease(size_);
  data_ptr_ = lease_.data();
}

DenseTensor::DenseTensor(const DenseTensor& other) { *this = other; }

DenseTensor& DenseTensor::operator=(const DenseTensor& other) {
  if (this == &other) return *this;
  // Copies always land in owned storage: shared tree nodes are snapshotted
  // by value (e.g. the PP donor path), and tying the copy to the source's
  // workspace would couple unrelated lifetimes.
  shape_ = other.shape_;
  strides_ = other.strides_;
  size_ = other.size_;
  lease_.release();
  ws_.reset();
  owned_.resize(static_cast<std::size_t>(size_));
  if (size_ > 0) std::copy(other.data_ptr_, other.data_ptr_ + size_, owned_.data());
  data_ptr_ = owned_.data();
  return *this;
}

void DenseTensor::reshape(std::vector<index_t> shape) {
  set_shape(std::move(shape));
  if (ws_) {
    if (size_ > lease_.capacity()) lease_ = ws_->lease(size_);
    data_ptr_ = lease_.data();
  } else {
    if (size_ > static_cast<index_t>(owned_.size()))
      owned_.resize(static_cast<std::size_t>(size_), 0.0);
    data_ptr_ = owned_.data();
  }
}

index_t DenseTensor::linearize(std::span<const index_t> idx) const {
  PARPP_ASSERT(static_cast<int>(idx.size()) == order(),
               "linearize: index order mismatch");
  index_t lin = 0;
  for (std::size_t m = 0; m < idx.size(); ++m) {
    PARPP_ASSERT(idx[m] >= 0 && idx[m] < shape_[m], "index out of bounds");
    lin += idx[m] * strides_[m];
  }
  return lin;
}

void DenseTensor::fill(double v) { std::fill(data_ptr_, data_ptr_ + size_, v); }

void DenseTensor::fill_uniform(Rng& rng) {
  for (index_t i = 0; i < size_; ++i) data_ptr_[i] = rng.uniform();
}

void DenseTensor::fill_normal(Rng& rng) {
  for (index_t i = 0; i < size_; ++i) data_ptr_[i] = rng.normal();
}

double DenseTensor::squared_norm() const {
  double s = 0.0;
#pragma omp parallel for reduction(+ : s) schedule(static) \
    if (size_ > (index_t{1} << 18))
  for (index_t i = 0; i < size_; ++i) {
    const double x = data_ptr_[i];
    s += x * x;
  }
  return s;
}

double DenseTensor::frobenius_norm() const { return std::sqrt(squared_norm()); }

double DenseTensor::max_abs_diff(const DenseTensor& other) const {
  PARPP_CHECK(shape_ == other.shape_, "max_abs_diff: shape mismatch");
  double m = 0.0;
  for (index_t i = 0; i < size_; ++i)
    m = std::max(m, std::abs(data_ptr_[i] - other.data_ptr_[i]));
  return m;
}

void DenseTensor::axpy(double alpha, const DenseTensor& other) {
  PARPP_CHECK(shape_ == other.shape_, "axpy: shape mismatch");
#pragma omp parallel for schedule(static) if (size_ > (index_t{1} << 18))
  for (index_t i = 0; i < size_; ++i)
    data_ptr_[i] += alpha * other.data_ptr_[i];
}

index_t DenseTensor::extent_product(int first, int last) const {
  PARPP_ASSERT(first >= 0 && last <= order() && first <= last,
               "extent_product: bad range");
  index_t p = 1;
  for (int m = first; m < last; ++m) p *= shape_[static_cast<std::size_t>(m)];
  return p;
}

}  // namespace parpp::tensor
