#include "parpp/tensor/dense_tensor.hpp"

#include <algorithm>
#include <cmath>

namespace parpp::tensor {

std::vector<index_t> row_major_strides(const std::vector<index_t>& shape) {
  std::vector<index_t> strides(shape.size(), 1);
  for (int i = static_cast<int>(shape.size()) - 2; i >= 0; --i) {
    strides[static_cast<std::size_t>(i)] =
        strides[static_cast<std::size_t>(i + 1)] *
        shape[static_cast<std::size_t>(i + 1)];
  }
  return strides;
}

bool next_index(std::span<const index_t> shape, std::span<index_t> idx) {
  for (int m = static_cast<int>(shape.size()) - 1; m >= 0; --m) {
    auto um = static_cast<std::size_t>(m);
    if (++idx[um] < shape[um]) return true;
    idx[um] = 0;
  }
  return false;
}

DenseTensor::DenseTensor(std::vector<index_t> shape)
    : shape_(std::move(shape)), strides_(row_major_strides(shape_)) {
  size_ = 1;
  for (index_t s : shape_) {
    PARPP_CHECK(s >= 0, "tensor extent must be non-negative");
    size_ *= s;
  }
  data_.assign(static_cast<std::size_t>(size_), 0.0);
}

index_t DenseTensor::linearize(std::span<const index_t> idx) const {
  PARPP_ASSERT(static_cast<int>(idx.size()) == order(),
               "linearize: index order mismatch");
  index_t lin = 0;
  for (std::size_t m = 0; m < idx.size(); ++m) {
    PARPP_ASSERT(idx[m] >= 0 && idx[m] < shape_[m], "index out of bounds");
    lin += idx[m] * strides_[m];
  }
  return lin;
}

void DenseTensor::fill(double v) { std::fill(data_.begin(), data_.end(), v); }

void DenseTensor::fill_uniform(Rng& rng) {
  for (auto& x : data_) x = rng.uniform();
}

void DenseTensor::fill_normal(Rng& rng) {
  for (auto& x : data_) x = rng.normal();
}

double DenseTensor::squared_norm() const {
  double s = 0.0;
#pragma omp parallel for reduction(+ : s) schedule(static) \
    if (size_ > (index_t{1} << 18))
  for (index_t i = 0; i < size_; ++i) {
    const double x = data_[static_cast<std::size_t>(i)];
    s += x * x;
  }
  return s;
}

double DenseTensor::frobenius_norm() const { return std::sqrt(squared_norm()); }

double DenseTensor::max_abs_diff(const DenseTensor& other) const {
  PARPP_CHECK(shape_ == other.shape_, "max_abs_diff: shape mismatch");
  double m = 0.0;
  for (index_t i = 0; i < size_; ++i)
    m = std::max(m, std::abs(data_[static_cast<std::size_t>(i)] -
                             other.data_[static_cast<std::size_t>(i)]));
  return m;
}

void DenseTensor::axpy(double alpha, const DenseTensor& other) {
  PARPP_CHECK(shape_ == other.shape_, "axpy: shape mismatch");
#pragma omp parallel for schedule(static) if (size_ > (index_t{1} << 18))
  for (index_t i = 0; i < size_; ++i)
    data_[static_cast<std::size_t>(i)] +=
        alpha * other.data_[static_cast<std::size_t>(i)];
}

index_t DenseTensor::extent_product(int first, int last) const {
  PARPP_ASSERT(first >= 0 && last <= order() && first <= last,
               "extent_product: bad range");
  index_t p = 1;
  for (int m = first; m < last; ++m) p *= shape_[static_cast<std::size_t>(m)];
  return p;
}

}  // namespace parpp::tensor
