// First-level TTM: contract one tensor mode against a factor matrix,
// appending the rank mode last.
#pragma once

#include "parpp/la/matrix.hpp"
#include "parpp/tensor/dense_tensor.hpp"
#include "parpp/util/profile.hpp"

namespace parpp::tensor {

/// Contracts mode `mode` of an order-N tensor T (which carries *no* rank
/// mode) with factor A in R^{s_mode x R}:
///
///   out(i_1, .., î_mode, .., i_N, r) = sum_y T(i_1, .., y, .., i_N) A(y, r)
///
/// The result has order N: the contracted mode is removed and the rank mode
/// R is appended last — the canonical layout for dimension-tree
/// intermediates. Executed as a batch of GEMMs over the leading block index
/// (one large GEMM when mode == 0). Work is charged to Kernel::kTTM.
[[nodiscard]] DenseTensor ttm_first(const DenseTensor& t, int mode,
                                    const la::Matrix& a,
                                    Profile* profile = nullptr);

/// Out-parameter variant: `out` is reshaped (reusing its storage — possibly
/// workspace-backed — when capacity allows) and fully overwritten. This is
/// the allocation-free path the tree engines use for cache nodes.
void ttm_first_into(const DenseTensor& t, int mode, const la::Matrix& a,
                    DenseTensor& out, Profile* profile = nullptr);

}  // namespace parpp::tensor
