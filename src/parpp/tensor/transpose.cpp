#include "parpp/tensor/transpose.hpp"

#include <algorithm>

namespace parpp::tensor {

bool is_permutation(const std::vector<int>& perm, int n) {
  if (static_cast<int>(perm.size()) != n) return false;
  std::vector<bool> seen(static_cast<std::size_t>(n), false);
  for (int p : perm) {
    if (p < 0 || p >= n || seen[static_cast<std::size_t>(p)]) return false;
    seen[static_cast<std::size_t>(p)] = true;
  }
  return true;
}

DenseTensor transpose(const DenseTensor& in, const std::vector<int>& perm) {
  DenseTensor out;
  transpose_into(in, perm, out);
  return out;
}

void transpose_into(const DenseTensor& in, const std::vector<int>& perm,
                    DenseTensor& out) {
  PARPP_CHECK(&in != &out, "transpose_into: input must not alias output");
  const int n = in.order();
  PARPP_CHECK(is_permutation(perm, n), "transpose: invalid permutation");

  std::vector<index_t> out_shape(static_cast<std::size_t>(n));
  for (int m = 0; m < n; ++m)
    out_shape[static_cast<std::size_t>(m)] =
        in.extent(perm[static_cast<std::size_t>(m)]);
  out.reshape(std::move(out_shape));
  if (in.size() == 0) return;

  // ostride_for_input[k] = output stride of the output mode that reads input
  // mode k. Walking the input in order and adding these gives the scatter
  // offset directly.
  std::vector<index_t> ostride_for_input(static_cast<std::size_t>(n));
  for (int m = 0; m < n; ++m)
    ostride_for_input[static_cast<std::size_t>(perm[static_cast<std::size_t>(m)])] =
        out.strides()[static_cast<std::size_t>(m)];

  const index_t inner = in.extent(n - 1);       // contiguous in input
  const index_t outer = in.size() / inner;       // leading block count
  const index_t inner_ostride = ostride_for_input[static_cast<std::size_t>(n - 1)];
  const double* src = in.data();
  double* dst = out.data();
  const auto& ishape = in.shape();

#pragma omp parallel for schedule(static) if (in.size() > (index_t{1} << 18))
  for (index_t blk = 0; blk < outer; ++blk) {
    // Decompose blk into the first n-1 input indices and accumulate the
    // output offset.
    index_t rem = blk;
    index_t obase = 0;
    for (int m = n - 2; m >= 0; --m) {
      const index_t e = ishape[static_cast<std::size_t>(m)];
      const index_t im = rem % e;
      rem /= e;
      obase += im * ostride_for_input[static_cast<std::size_t>(m)];
    }
    const double* s = src + blk * inner;
    if (inner_ostride == 1) {
      std::copy(s, s + inner, dst + obase);
    } else {
      for (index_t j = 0; j < inner; ++j) dst[obase + j * inner_ostride] = s[j];
    }
  }
}

}  // namespace parpp::tensor
