#include "parpp/tensor/ttm.hpp"

#include "parpp/la/gemm.hpp"

namespace parpp::tensor {

DenseTensor ttm_first(const DenseTensor& t, int mode, const la::Matrix& a,
                      Profile* profile) {
  DenseTensor out;
  ttm_first_into(t, mode, a, out, profile);
  return out;
}

void ttm_first_into(const DenseTensor& t, int mode, const la::Matrix& a,
                    DenseTensor& out, Profile* profile) {
  PARPP_CHECK(&t != &out, "ttm_first_into: input must not alias output");
  const int n = t.order();
  PARPP_CHECK(mode >= 0 && mode < n, "ttm_first: bad mode ", mode);
  PARPP_CHECK(a.rows() == t.extent(mode), "ttm_first: A rows ", a.rows(),
              " != extent ", t.extent(mode));
  const index_t r = a.cols();
  const index_t left = t.extent_product(0, mode);
  const index_t sj = t.extent(mode);
  const index_t right = t.extent_product(mode + 1, n);

  std::vector<index_t> out_shape;
  out_shape.reserve(static_cast<std::size_t>(n));
  for (int m = 0; m < n; ++m)
    if (m != mode) out_shape.push_back(t.extent(m));
  out_shape.push_back(r);
  out.reshape(std::move(out_shape));
  if (out.size() == 0) return;

  const double flops = 2.0 * static_cast<double>(t.size()) * r;
  ScopedProfile sp(profile ? *profile : Profile::thread_default(),
                   Kernel::kTTM, flops);

  // For each leading block l: out_l(right x R) = T_l^T (right x sj) * A.
  // T_l is the (sj x right) slab at offset l * sj * right.
  const double* src = t.data();
  double* dst = out.data();
  if (right == 1) {
    // Contracting the trailing mode: out(l, r) = sum_y T(l, y) A(y, r) is a
    // single (left x sj) * (sj x R) GEMM.
    la::gemm_raw(la::Trans::kNo, la::Trans::kNo, left, r, sj, 1.0, src, sj,
                 a.data(), r, 0.0, dst, r);
  } else if (left == 1) {
    la::gemm_raw(la::Trans::kYes, la::Trans::kNo, right, r, sj, 1.0, src,
                 right, a.data(), r, 0.0, dst, r);
  } else {
#pragma omp parallel for schedule(static)
    for (index_t l = 0; l < left; ++l) {
      la::gemm_raw(la::Trans::kYes, la::Trans::kNo, right, r, sj, 1.0,
                   src + l * sj * right, right, a.data(), r, 0.0,
                   dst + l * right * r, r);
    }
  }
}

}  // namespace parpp::tensor
