// Compressed sparse fiber (CSF) tensor with per-mode orderings.
#pragma once

#include <vector>

#include "parpp/tensor/coo_tensor.hpp"
#include "parpp/util/common.hpp"

namespace parpp::tensor {

/// SPLATT-style compressed sparse fiber storage. One fiber tree is kept per
/// root mode (mode order: root first, remaining modes ascending), so the
/// MTTKRP of any mode walks a tree rooted at that mode and parallelizes
/// over its root fibers without write conflicts. The N-tree layout trades
/// memory (N copies of the pattern, still O(N * nnz) words versus the dense
/// prod(shape)) for a branch-free, mode-symmetric kernel — the right trade
/// for the repeated sweeps of ALS.
///
/// Immutable once built: construct from a coalesced CooTensor.
class CsfTensor {
 public:
  /// One fiber tree. Level l stores one node per distinct coordinate prefix
  /// of length l+1 (modes taken in mode_order): fids[l][j] is node j's
  /// coordinate in mode mode_order[l], its children occupy
  /// [fptr[l][j], fptr[l][j+1]) at level l+1, and the leaf level (order-1)
  /// carries vals aligned with its fids.
  struct Tree {
    std::vector<int> mode_order;             ///< size order, root first
    std::vector<std::vector<index_t>> fptr;  ///< levels 0 .. order-2
    std::vector<std::vector<index_t>> fids;  ///< levels 0 .. order-1
    std::vector<double> vals;                ///< aligned with fids.back()
    /// Nodes strictly between root and leaf levels — the Hadamard-add count
    /// of a root-mode MTTKRP walk (flop accounting).
    index_t internal_nodes = 0;

    // Cache-blocked tiling of the level-1 node array (SPLATT-style): tile t
    // covers level-1 nodes [tile_ptr[t], tile_ptr[t+1]) — about
    // kTileLeafTarget leaf entries each — and intersects the root fibers
    // [tile_root[t], tile_root_end[t]). Splitting at level-1 (not root)
    // granularity lets the tiled MTTKRP walk keep every thread busy even
    // when the root mode is short; a tile's first/last root may be shared
    // with its neighbors, which the walk resolves with private partial
    // rows and a serial fix-up (see mttkrp_sparse.cpp).
    std::vector<index_t> tile_ptr;       ///< size tiles+1
    std::vector<index_t> tile_root;      ///< first intersecting root fiber
    std::vector<index_t> tile_root_end;  ///< one past the last

    [[nodiscard]] index_t root_count() const {
      return static_cast<index_t>(fids.front().size());
    }
    [[nodiscard]] index_t tile_count() const {
      return static_cast<index_t>(tile_ptr.size()) - 1;
    }
  };

  /// Leaf entries a tile targets (the last tile of a tree may be smaller;
  /// a single level-1 node with a larger subtree is never split).
  static constexpr index_t kTileLeafTarget = 2048;

  /// Builds the per-mode trees. `coo` must be coalesced (sorted entries,
  /// no duplicate coordinates) — call CooTensor::coalesce() first.
  explicit CsfTensor(const CooTensor& coo);

  [[nodiscard]] int order() const { return static_cast<int>(shape_.size()); }
  [[nodiscard]] const std::vector<index_t>& shape() const { return shape_; }
  [[nodiscard]] index_t extent(int mode) const {
    PARPP_ASSERT(mode >= 0 && mode < order(), "extent: bad mode ", mode);
    return shape_[static_cast<std::size_t>(mode)];
  }
  [[nodiscard]] index_t nnz() const { return nnz_; }
  [[nodiscard]] double squared_norm() const { return squared_norm_; }
  [[nodiscard]] double frobenius_norm() const;
  [[nodiscard]] double density() const;

  /// Reconstructs the coalesced COO entry list (mode-0 tree walk; entries
  /// come out lexicographically sorted). The inverse of construction — used
  /// to re-partition an already-compressed tensor, e.g. for the
  /// dist::SparseBlockDist grid decomposition.
  [[nodiscard]] CooTensor to_coo() const;

  /// The fiber tree rooted at `root_mode`.
  [[nodiscard]] const Tree& tree(int root_mode) const {
    PARPP_ASSERT(root_mode >= 0 && root_mode < order(),
                 "tree: bad root mode ", root_mode);
    return trees_[static_cast<std::size_t>(root_mode)];
  }

 private:
  std::vector<index_t> shape_;
  index_t nnz_ = 0;
  double dense_size_ = 0.0;  ///< CooTensor::dense_size() of the source
  double squared_norm_ = 0.0;
  std::vector<Tree> trees_;  ///< one per root mode
};

}  // namespace parpp::tensor
