// Compressed sparse fiber (CSF) tensor with per-mode orderings.
#pragma once

#include <vector>

#include "parpp/tensor/coo_tensor.hpp"
#include "parpp/util/common.hpp"

namespace parpp::tensor {

/// How many fiber trees a CsfTensor keeps (SPLATT's "number of CSF
/// allocations" knob, specialized to the two layouts the kernels support).
enum class CsfLayout {
  /// One tree per mode (root first, remaining modes ascending). Every
  /// MTTKRP is a root walk — branch-free and mode-symmetric, at the cost
  /// of N copies of the nonzero pattern.
  kAllModes,
  /// ceil(N/2) trees: tree m is rooted at mode m with mode N-1-m as its
  /// *leaf* level, so each tree serves two modes — mode m by the classic
  /// root walk and mode N-1-m by a downward product-carrying walk that
  /// scatters at the leaves. Halves the pattern memory for order-N
  /// tensors. (The middle tree of an odd order serves only its root.)
  kHalf,
};

struct CsfOptions {
  CsfLayout layout = CsfLayout::kAllModes;
};

/// SPLATT-style compressed sparse fiber storage. One fiber tree is kept per
/// root mode (mode order: root first, remaining modes ascending), so the
/// MTTKRP of any mode walks a tree rooted at that mode and parallelizes
/// over its root fibers without write conflicts. The N-tree layout trades
/// memory (N copies of the pattern, still O(N * nnz) words versus the dense
/// prod(shape)) for a branch-free, mode-symmetric kernel — the right trade
/// for the repeated sweeps of ALS. `CsfLayout::kHalf` halves that pattern
/// memory by serving two modes per tree (see walk_for).
///
/// Immutable once built: construct from a coalesced CooTensor.
class CsfTensor {
 public:
  /// One fiber tree. Level l stores one node per distinct coordinate prefix
  /// of length l+1 (modes taken in mode_order): fids[l][j] is node j's
  /// coordinate in mode mode_order[l], its children occupy
  /// [fptr[l][j], fptr[l][j+1]) at level l+1, and the leaf level (order-1)
  /// carries vals aligned with its fids.
  struct Tree {
    std::vector<int> mode_order;             ///< size order, root first
    std::vector<std::vector<index_t>> fptr;  ///< levels 0 .. order-2
    std::vector<std::vector<index_t>> fids;  ///< levels 0 .. order-1
    std::vector<double> vals;                ///< aligned with fids.back()
    /// Nodes strictly between root and leaf levels — the Hadamard-add count
    /// of a root-mode MTTKRP walk (flop accounting).
    index_t internal_nodes = 0;

    // Cache-blocked tiling of the level-1 node array (SPLATT-style): tile t
    // covers level-1 nodes [tile_ptr[t], tile_ptr[t+1]) — about
    // kTileLeafTarget leaf entries each — and intersects the root fibers
    // [tile_root[t], tile_root_end[t]). Splitting at level-1 (not root)
    // granularity lets the tiled MTTKRP walk keep every thread busy even
    // when the root mode is short; a tile's first/last root may be shared
    // with its neighbors, which the walk resolves with private partial
    // rows and a serial fix-up (see mttkrp_sparse.cpp).
    std::vector<index_t> tile_ptr;       ///< size tiles+1
    std::vector<index_t> tile_root;      ///< first intersecting root fiber
    std::vector<index_t> tile_root_end;  ///< one past the last

    [[nodiscard]] index_t root_count() const {
      return static_cast<index_t>(fids.front().size());
    }
    [[nodiscard]] index_t tile_count() const {
      return static_cast<index_t>(tile_ptr.size()) - 1;
    }
  };

  /// Leaf entries a tile targets (the last tile of a tree may be smaller;
  /// a single level-1 node with a larger subtree is never split).
  static constexpr index_t kTileLeafTarget = 2048;

  /// Builds the per-mode trees (kAllModes). `coo` must be coalesced (sorted
  /// entries, no duplicate coordinates) — call CooTensor::coalesce() first.
  explicit CsfTensor(const CooTensor& coo);
  /// Layout-selecting constructor; same coalesced-input contract.
  CsfTensor(const CooTensor& coo, const CsfOptions& options);

  [[nodiscard]] int order() const { return static_cast<int>(shape_.size()); }
  [[nodiscard]] const std::vector<index_t>& shape() const { return shape_; }
  [[nodiscard]] index_t extent(int mode) const {
    PARPP_ASSERT(mode >= 0 && mode < order(), "extent: bad mode ", mode);
    return shape_[static_cast<std::size_t>(mode)];
  }
  [[nodiscard]] index_t nnz() const { return nnz_; }
  [[nodiscard]] double squared_norm() const { return squared_norm_; }
  [[nodiscard]] double frobenius_norm() const;
  [[nodiscard]] double density() const;
  [[nodiscard]] CsfLayout layout() const { return layout_; }
  [[nodiscard]] int tree_count() const {
    return static_cast<int>(trees_.size());
  }
  /// Index/pointer words across all trees' fptr+fids arrays — the pattern
  /// memory the kHalf layout halves. Diagnostic for tests and benches.
  [[nodiscard]] index_t pattern_words() const;

  /// Reconstructs the coalesced COO entry list (mode-0 tree walk; entries
  /// come out lexicographically sorted). The inverse of construction — used
  /// to re-partition an already-compressed tensor, e.g. for the
  /// dist::SparseBlockDist grid decomposition. Valid under both layouts:
  /// tree 0's mode order is the identity in each.
  [[nodiscard]] CooTensor to_coo() const;

  /// The fiber tree *rooted* at `root_mode`. Under kHalf only modes
  /// [0, tree_count()) have a root tree — use walk_for() for the general
  /// mode→tree mapping.
  [[nodiscard]] const Tree& tree(int root_mode) const {
    PARPP_CHECK(root_mode >= 0 && root_mode < tree_count(), "tree: mode ",
                root_mode, " has no root tree (layout keeps ", tree_count(),
                " trees) — use walk_for()");
    return trees_[static_cast<std::size_t>(root_mode)];
  }

  /// How the MTTKRP of `mode` traverses the tensor.
  struct Walk {
    const Tree* tree = nullptr;
    int tree_index = 0;  ///< index into the tree array (vals mirrors key)
    /// false: `mode` is the tree's root — classic upward walk. true:
    /// `mode` is the tree's leaf level — downward product-carrying walk.
    bool leaf = false;
  };
  [[nodiscard]] Walk walk_for(int mode) const;

 private:
  void build(const CooTensor& coo);

  std::vector<index_t> shape_;
  index_t nnz_ = 0;
  double dense_size_ = 0.0;  ///< CooTensor::dense_size() of the source
  double squared_norm_ = 0.0;
  CsfLayout layout_ = CsfLayout::kAllModes;
  std::vector<Tree> trees_;  ///< one per root mode (kAllModes) or ceil(N/2)
};

/// fp32 mirrors of a CsfTensor's per-tree value arrays, indexed like the
/// tensor's trees (CsfTensor::Walk::tree_index). Engines build one mirror
/// bank per tensor and reuse it across sweeps — tensor values are
/// immutable, so unlike factor mirrors it never re-syncs.
struct CsfValsF32 {
  std::vector<std::vector<float>> trees;
  void sync(const CsfTensor& t);
  [[nodiscard]] const float* tree_vals(int tree_index) const {
    PARPP_ASSERT(tree_index >= 0 &&
                     tree_index < static_cast<int>(trees.size()),
                 "CsfValsF32: bad tree index ", tree_index);
    return trees[static_cast<std::size_t>(tree_index)].data();
  }
};

}  // namespace parpp::tensor
