// Fused, allocation-free MTTKRP.
//
// Computes M(n) = T_(n) · KRP(factors != n) without materializing either
// the Khatri-Rao product (O(|T|/s_n · R) in the reference path) or the
// transposed unfolding copy (O(|T|)). The mode-n unfolding is addressed in
// place via stride arithmetic over the original row-major layout, and the
// KRP is formed block-wise as R-wide panels in workspace scratch that feed
// blocked GEMM micro-kernels — peak auxiliary memory is O(block · R)
// instead of O(|T|), and in steady state (reused workspace) the hot path
// performs zero heap allocations.
#pragma once

#include <vector>

#include "parpp/la/matrix.hpp"
#include "parpp/la/scalar.hpp"
#include "parpp/tensor/dense_tensor.hpp"
#include "parpp/util/profile.hpp"
#include "parpp/util/workspace.hpp"

namespace parpp::tensor {

/// Fused MTTKRP of mode `n`. Bit-for-bit deterministic for a fixed thread
/// count. `ws` defaults to the calling thread's workspace. Charged to
/// Kernel::kTTM (2 |T| R flops), like the KRP+GEMM reference.
[[nodiscard]] la::Matrix mttkrp_fused(const DenseTensor& t,
                                      const std::vector<la::Matrix>& factors,
                                      int n, Profile* profile = nullptr,
                                      util::KernelWorkspace* ws = nullptr);

/// Out-parameter variant: reuses `out`'s storage when it already has the
/// right shape (the per-mode steady state of an ALS sweep), so repeated
/// sweeps allocate nothing.
void mttkrp_into(const DenseTensor& t, const std::vector<la::Matrix>& factors,
                 int n, la::Matrix& out, Profile* profile = nullptr,
                 util::KernelWorkspace* ws = nullptr);

/// fp32-storage variant: same fused walk over an fp32 copy of the tensor
/// (`t32`, |T| elements in `shape`'s row-major order) against fp32 factor
/// mirrors, accumulating in fp64 — `out` is a full-precision Matrix. KRP
/// panels are built and streamed as fp32, so the kernel moves half the
/// bytes of the fp64 path. Parity vs fp64 is ~1e-5 relative (fp32 storage
/// roundoff), asserted in test_scalar_kernels.cpp.
void mttkrp_into_f32(const float* t32, const std::vector<index_t>& shape,
                     const std::vector<la::MatrixF32>& factors, int n,
                     la::Matrix& out, Profile* profile = nullptr,
                     util::KernelWorkspace* ws = nullptr);

}  // namespace parpp::tensor
