#include "parpp/tensor/csf_tensor.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace parpp::tensor {

namespace {

void build_tiles(CsfTensor::Tree& tree, int n);

bool is_identity(const std::vector<int>& mode_order) {
  for (std::size_t l = 0; l < mode_order.size(); ++l)
    if (mode_order[l] != static_cast<int>(l)) return false;
  return true;
}

CsfTensor::Tree build_tree(const CooTensor& coo, std::vector<int> mode_order) {
  const int n = coo.order();
  const index_t nnz = coo.nnz();

  CsfTensor::Tree tree;
  tree.mode_order = std::move(mode_order);

  // Entry order for this tree: lexicographic in the permuted coordinates.
  // The COO is coalesced (sorted, duplicate-free), so an identity mode
  // order is already sorted; other orders re-sort.
  std::vector<index_t> perm(static_cast<std::size_t>(nnz));
  std::iota(perm.begin(), perm.end(), index_t{0});
  if (!is_identity(tree.mode_order)) {
    std::sort(perm.begin(), perm.end(), [&](index_t a, index_t b) {
      for (int l = 0; l < n; ++l) {
        const int m = tree.mode_order[static_cast<std::size_t>(l)];
        const index_t ia = coo.index(a, m), ib = coo.index(b, m);
        if (ia != ib) return ia < ib;
      }
      return false;
    });
  }

  tree.fids.resize(static_cast<std::size_t>(n));
  tree.fptr.resize(static_cast<std::size_t>(n - 1));
  tree.vals.reserve(static_cast<std::size_t>(nnz));
  for (index_t p = 0; p < nnz; ++p) {
    const index_t e = perm[static_cast<std::size_t>(p)];
    // First level whose coordinate differs from the previous entry: that
    // node and everything below it open fresh.
    int open_from = 0;
    if (p > 0) {
      const index_t prev = perm[static_cast<std::size_t>(p - 1)];
      while (open_from < n - 1 &&
             coo.index(e, tree.mode_order[static_cast<std::size_t>(open_from)]) ==
                 coo.index(prev,
                           tree.mode_order[static_cast<std::size_t>(open_from)]))
        ++open_from;
    }
    for (int l = open_from; l < n; ++l) {
      auto& fids = tree.fids[static_cast<std::size_t>(l)];
      if (l < n - 1) {
        // New node's children start where level l+1 currently ends.
        tree.fptr[static_cast<std::size_t>(l)].push_back(
            static_cast<index_t>(tree.fids[static_cast<std::size_t>(l + 1)].size()));
      }
      fids.push_back(coo.index(e, tree.mode_order[static_cast<std::size_t>(l)]));
    }
    tree.vals.push_back(coo.value(e));
  }
  for (int l = 0; l < n - 1; ++l) {
    tree.fptr[static_cast<std::size_t>(l)].push_back(
        static_cast<index_t>(tree.fids[static_cast<std::size_t>(l + 1)].size()));
  }
  for (int l = 1; l < n - 1; ++l)
    tree.internal_nodes +=
        static_cast<index_t>(tree.fids[static_cast<std::size_t>(l)].size());
  build_tiles(tree, n);
  return tree;
}

/// Mode order for root tree `m` of the kAllModes layout: root first, the
/// rest ascending.
std::vector<int> all_modes_order(int n, int m) {
  std::vector<int> order;
  order.reserve(static_cast<std::size_t>(n));
  order.push_back(m);
  for (int k = 0; k < n; ++k)
    if (k != m) order.push_back(k);
  return order;
}

/// Mode order for tree `m` of the kHalf layout: rooted at m, leaf n-1-m,
/// remaining modes ascending in between — each tree serves its root mode
/// (upward walk) and its leaf mode (downward scatter walk). The middle
/// tree of an odd order would have leaf == root; it falls back to the
/// plain ascending order and serves only its root.
std::vector<int> half_order(int n, int m) {
  const int leaf = n - 1 - m;
  if (leaf == m) return all_modes_order(n, m);
  std::vector<int> order;
  order.reserve(static_cast<std::size_t>(n));
  order.push_back(m);
  for (int k = 0; k < n; ++k)
    if (k != m && k != leaf) order.push_back(k);
  order.push_back(leaf);
  return order;
}

/// Splits the level-1 node array into tiles of ~kTileLeafTarget leaf
/// entries and records which root fibers each tile intersects. Level-1
/// granularity (rather than whole root fibers) is what lets the tiled
/// MTTKRP walk scale on short root modes.
void build_tiles(CsfTensor::Tree& tree, int n) {
  const auto n1 = static_cast<index_t>(tree.fids[1].size());
  // Leaf offset of level-1 node k: compose the child pointers down to the
  // leaf level (identity for order 2, where level 1 *is* the leaf level).
  const auto leaf_start = [&](index_t k) {
    index_t cur = k;
    for (int l = 1; l <= n - 2; ++l)
      cur = tree.fptr[static_cast<std::size_t>(l)][static_cast<std::size_t>(cur)];
    return cur;
  };

  tree.tile_ptr.push_back(0);
  index_t acc = 0;
  index_t prev = leaf_start(0);
  for (index_t k = 0; k < n1; ++k) {
    const index_t next = leaf_start(k + 1);
    acc += next - prev;
    prev = next;
    if (acc >= CsfTensor::kTileLeafTarget) {
      tree.tile_ptr.push_back(k + 1);
      acc = 0;
    }
  }
  if (tree.tile_ptr.back() != n1) tree.tile_ptr.push_back(n1);

  const auto& root_ptr = tree.fptr[0];
  const index_t roots = tree.root_count();
  index_t r = 0;
  for (index_t t = 0; t + 1 < static_cast<index_t>(tree.tile_ptr.size()); ++t) {
    const index_t k0 = tree.tile_ptr[static_cast<std::size_t>(t)];
    const index_t k1 = tree.tile_ptr[static_cast<std::size_t>(t) + 1];
    while (root_ptr[static_cast<std::size_t>(r) + 1] <= k0) ++r;
    tree.tile_root.push_back(r);
    index_t re = r;
    while (re < roots && root_ptr[static_cast<std::size_t>(re)] < k1) ++re;
    tree.tile_root_end.push_back(re);
  }
}

}  // namespace

CsfTensor::CsfTensor(const CooTensor& coo) : CsfTensor(coo, CsfOptions{}) {}

CsfTensor::CsfTensor(const CooTensor& coo, const CsfOptions& options)
    : shape_(coo.shape()),
      nnz_(coo.nnz()),
      dense_size_(coo.dense_size()),
      layout_(options.layout) {
  PARPP_CHECK(order() >= 2, "CsfTensor: tensor order must be >= 2");
  PARPP_CHECK(coo.coalesced(),
              "CsfTensor: COO input must be coalesced (sorted, no duplicate "
              "coordinates) — call CooTensor::coalesce() first");
  squared_norm_ = coo.squared_norm();
  build(coo);
}

void CsfTensor::build(const CooTensor& coo) {
  const int n = order();
  if (layout_ == CsfLayout::kAllModes) {
    trees_.reserve(static_cast<std::size_t>(n));
    for (int m = 0; m < n; ++m)
      trees_.push_back(build_tree(coo, all_modes_order(n, m)));
  } else {
    const int half = (n + 1) / 2;
    trees_.reserve(static_cast<std::size_t>(half));
    for (int m = 0; m < half; ++m)
      trees_.push_back(build_tree(coo, half_order(n, m)));
  }
}

CsfTensor::Walk CsfTensor::walk_for(int mode) const {
  PARPP_CHECK(mode >= 0 && mode < order(), "walk_for: bad mode ", mode);
  if (mode < tree_count())
    return {&trees_[static_cast<std::size_t>(mode)], mode, /*leaf=*/false};
  // kHalf upper-half mode: served as the leaf level of tree n-1-mode.
  const int ti = order() - 1 - mode;
  const Walk w{&trees_[static_cast<std::size_t>(ti)], ti, /*leaf=*/true};
  PARPP_ASSERT(w.tree->mode_order.back() == mode,
               "walk_for: tree ", ti, " does not end in mode ", mode);
  return w;
}

index_t CsfTensor::pattern_words() const {
  index_t words = 0;
  for (const Tree& t : trees_) {
    for (const auto& v : t.fptr) words += static_cast<index_t>(v.size());
    for (const auto& v : t.fids) words += static_cast<index_t>(v.size());
  }
  return words;
}

CooTensor CsfTensor::to_coo() const {
  CooTensor coo(shape_);
  coo.reserve(nnz_);
  const Tree& tree = trees_.front();  // mode order is the identity
  PARPP_ASSERT(tree.mode_order.front() == 0, "to_coo: tree 0 not rooted at 0");
  const int n = order();
  std::vector<index_t> idx(static_cast<std::size_t>(n), 0);
  // Depth-first walk emitting one entry per leaf; tree 0's identity mode
  // order (both layouts) makes the output lexicographically sorted, so
  // coalesce() below only restores the invariant flag (no re-sort work, no
  // duplicates to merge).
  auto walk = [&](auto&& self, int lv, index_t begin, index_t end) -> void {
    const auto& fids = tree.fids[static_cast<std::size_t>(lv)];
    for (index_t k = begin; k < end; ++k) {
      idx[static_cast<std::size_t>(
          tree.mode_order[static_cast<std::size_t>(lv)])] =
          fids[static_cast<std::size_t>(k)];
      if (lv == n - 1) {
        coo.push(idx, tree.vals[static_cast<std::size_t>(k)]);
      } else {
        const auto& fptr = tree.fptr[static_cast<std::size_t>(lv)];
        self(self, lv + 1, fptr[static_cast<std::size_t>(k)],
             fptr[static_cast<std::size_t>(k + 1)]);
      }
    }
  };
  walk(walk, 0, 0, tree.root_count());
  coo.coalesce();
  return coo;
}

void CsfValsF32::sync(const CsfTensor& t) {
  trees.resize(static_cast<std::size_t>(t.tree_count()));
  for (int m = 0; m < t.tree_count(); ++m) {
    const auto& vals = t.walk_for(m).tree->vals;
    auto& dst = trees[static_cast<std::size_t>(m)];
    dst.resize(vals.size());
    for (std::size_t i = 0; i < vals.size(); ++i)
      dst[i] = static_cast<float>(vals[i]);
  }
}

double CsfTensor::frobenius_norm() const { return std::sqrt(squared_norm_); }

double CsfTensor::density() const {
  return dense_size_ > 0.0 ? static_cast<double>(nnz_) / dense_size_ : 0.0;
}

}  // namespace parpp::tensor
