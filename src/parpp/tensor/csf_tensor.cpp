#include "parpp/tensor/csf_tensor.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace parpp::tensor {

namespace {

void build_tiles(CsfTensor::Tree& tree, int n);

CsfTensor::Tree build_tree(const CooTensor& coo, int root_mode) {
  const int n = coo.order();
  const index_t nnz = coo.nnz();

  CsfTensor::Tree tree;
  tree.mode_order.reserve(static_cast<std::size_t>(n));
  tree.mode_order.push_back(root_mode);
  for (int m = 0; m < n; ++m)
    if (m != root_mode) tree.mode_order.push_back(m);

  // Entry order for this tree: lexicographic in the permuted coordinates.
  // The COO is coalesced (sorted, duplicate-free), so for root_mode == 0
  // the identity permutation already sorts; other roots re-sort.
  std::vector<index_t> perm(static_cast<std::size_t>(nnz));
  std::iota(perm.begin(), perm.end(), index_t{0});
  if (root_mode != 0) {
    std::sort(perm.begin(), perm.end(), [&](index_t a, index_t b) {
      for (int l = 0; l < n; ++l) {
        const int m = tree.mode_order[static_cast<std::size_t>(l)];
        const index_t ia = coo.index(a, m), ib = coo.index(b, m);
        if (ia != ib) return ia < ib;
      }
      return false;
    });
  }

  tree.fids.resize(static_cast<std::size_t>(n));
  tree.fptr.resize(static_cast<std::size_t>(n - 1));
  tree.vals.reserve(static_cast<std::size_t>(nnz));
  for (index_t p = 0; p < nnz; ++p) {
    const index_t e = perm[static_cast<std::size_t>(p)];
    // First level whose coordinate differs from the previous entry: that
    // node and everything below it open fresh.
    int open_from = 0;
    if (p > 0) {
      const index_t prev = perm[static_cast<std::size_t>(p - 1)];
      while (open_from < n - 1 &&
             coo.index(e, tree.mode_order[static_cast<std::size_t>(open_from)]) ==
                 coo.index(prev,
                           tree.mode_order[static_cast<std::size_t>(open_from)]))
        ++open_from;
    }
    for (int l = open_from; l < n; ++l) {
      auto& fids = tree.fids[static_cast<std::size_t>(l)];
      if (l < n - 1) {
        // New node's children start where level l+1 currently ends.
        tree.fptr[static_cast<std::size_t>(l)].push_back(
            static_cast<index_t>(tree.fids[static_cast<std::size_t>(l + 1)].size()));
      }
      fids.push_back(coo.index(e, tree.mode_order[static_cast<std::size_t>(l)]));
    }
    tree.vals.push_back(coo.value(e));
  }
  for (int l = 0; l < n - 1; ++l) {
    tree.fptr[static_cast<std::size_t>(l)].push_back(
        static_cast<index_t>(tree.fids[static_cast<std::size_t>(l + 1)].size()));
  }
  for (int l = 1; l < n - 1; ++l)
    tree.internal_nodes +=
        static_cast<index_t>(tree.fids[static_cast<std::size_t>(l)].size());
  build_tiles(tree, n);
  return tree;
}

/// Splits the level-1 node array into tiles of ~kTileLeafTarget leaf
/// entries and records which root fibers each tile intersects. Level-1
/// granularity (rather than whole root fibers) is what lets the tiled
/// MTTKRP walk scale on short root modes.
void build_tiles(CsfTensor::Tree& tree, int n) {
  const auto n1 = static_cast<index_t>(tree.fids[1].size());
  // Leaf offset of level-1 node k: compose the child pointers down to the
  // leaf level (identity for order 2, where level 1 *is* the leaf level).
  const auto leaf_start = [&](index_t k) {
    index_t cur = k;
    for (int l = 1; l <= n - 2; ++l)
      cur = tree.fptr[static_cast<std::size_t>(l)][static_cast<std::size_t>(cur)];
    return cur;
  };

  tree.tile_ptr.push_back(0);
  index_t acc = 0;
  index_t prev = leaf_start(0);
  for (index_t k = 0; k < n1; ++k) {
    const index_t next = leaf_start(k + 1);
    acc += next - prev;
    prev = next;
    if (acc >= CsfTensor::kTileLeafTarget) {
      tree.tile_ptr.push_back(k + 1);
      acc = 0;
    }
  }
  if (tree.tile_ptr.back() != n1) tree.tile_ptr.push_back(n1);

  const auto& root_ptr = tree.fptr[0];
  const index_t roots = tree.root_count();
  index_t r = 0;
  for (index_t t = 0; t + 1 < static_cast<index_t>(tree.tile_ptr.size()); ++t) {
    const index_t k0 = tree.tile_ptr[static_cast<std::size_t>(t)];
    const index_t k1 = tree.tile_ptr[static_cast<std::size_t>(t) + 1];
    while (root_ptr[static_cast<std::size_t>(r) + 1] <= k0) ++r;
    tree.tile_root.push_back(r);
    index_t re = r;
    while (re < roots && root_ptr[static_cast<std::size_t>(re)] < k1) ++re;
    tree.tile_root_end.push_back(re);
  }
}

}  // namespace

CsfTensor::CsfTensor(const CooTensor& coo)
    : shape_(coo.shape()), nnz_(coo.nnz()), dense_size_(coo.dense_size()) {
  PARPP_CHECK(order() >= 2, "CsfTensor: tensor order must be >= 2");
  PARPP_CHECK(coo.coalesced(),
              "CsfTensor: COO input must be coalesced (sorted, no duplicate "
              "coordinates) — call CooTensor::coalesce() first");
  squared_norm_ = coo.squared_norm();
  trees_.reserve(static_cast<std::size_t>(order()));
  for (int m = 0; m < order(); ++m) trees_.push_back(build_tree(coo, m));
}

CooTensor CsfTensor::to_coo() const {
  CooTensor coo(shape_);
  coo.reserve(nnz_);
  const Tree& tree = trees_.front();  // mode order is the identity
  const int n = order();
  std::vector<index_t> idx(static_cast<std::size_t>(n), 0);
  // Depth-first walk emitting one entry per leaf; the identity mode order
  // makes the output lexicographically sorted, so coalesce() below only
  // restores the invariant flag (no re-sort work, no duplicates to merge).
  auto walk = [&](auto&& self, int lv, index_t begin, index_t end) -> void {
    const auto& fids = tree.fids[static_cast<std::size_t>(lv)];
    for (index_t k = begin; k < end; ++k) {
      idx[static_cast<std::size_t>(lv)] = fids[static_cast<std::size_t>(k)];
      if (lv == n - 1) {
        coo.push(idx, tree.vals[static_cast<std::size_t>(k)]);
      } else {
        const auto& fptr = tree.fptr[static_cast<std::size_t>(lv)];
        self(self, lv + 1, fptr[static_cast<std::size_t>(k)],
             fptr[static_cast<std::size_t>(k + 1)]);
      }
    }
  };
  walk(walk, 0, 0, tree.root_count());
  coo.coalesce();
  return coo;
}

double CsfTensor::frobenius_norm() const { return std::sqrt(squared_norm_); }

double CsfTensor::density() const {
  return dense_size_ > 0.0 ? static_cast<double>(nnz_) / dense_size_ : 0.0;
}

}  // namespace parpp::tensor
