// Coordinate-format sparse tensor (the ingest/builder storage).
#pragma once

#include <span>
#include <vector>

#include "parpp/tensor/dense_tensor.hpp"
#include "parpp/util/common.hpp"

namespace parpp::tensor {

/// Sparse tensor in coordinate format: nnz (index tuple, value) pairs plus
/// an explicit shape. This is the mutable ingest form — push() accepts
/// entries in any order, including duplicate coordinates, and coalesce()
/// sorts lexicographically and merges duplicates (summing their values, as
/// FROSTT loaders conventionally do). Compute kernels run on the compressed
/// CsfTensor built from a coalesced CooTensor; only the reference MTTKRP
/// (tensor::mttkrp_coo) reads COO directly.
class CooTensor {
 public:
  CooTensor() = default;
  explicit CooTensor(std::vector<index_t> shape);

  [[nodiscard]] int order() const { return static_cast<int>(shape_.size()); }
  [[nodiscard]] const std::vector<index_t>& shape() const { return shape_; }
  [[nodiscard]] index_t extent(int mode) const {
    PARPP_ASSERT(mode >= 0 && mode < order(), "extent: bad mode ", mode);
    return shape_[static_cast<std::size_t>(mode)];
  }
  [[nodiscard]] index_t nnz() const {
    return static_cast<index_t>(vals_.size());
  }
  /// Dense element count prod(shape) as a double (immune to overflow for
  /// pathological shapes) — the denominator of density().
  [[nodiscard]] double dense_size() const;
  [[nodiscard]] double density() const;

  void reserve(index_t nnz);
  /// Appends one entry; idx is 0-indexed, one coordinate per mode.
  void push(std::span<const index_t> idx, double value);

  [[nodiscard]] index_t index(index_t entry, int mode) const {
    PARPP_ASSERT(entry >= 0 && entry < nnz(), "index: bad entry ", entry);
    return idx_[static_cast<std::size_t>(entry * order() + mode)];
  }
  [[nodiscard]] double value(index_t entry) const {
    PARPP_ASSERT(entry >= 0 && entry < nnz(), "value: bad entry ", entry);
    return vals_[static_cast<std::size_t>(entry)];
  }

  /// Sorts entries lexicographically, merges duplicate coordinates (values
  /// sum) and drops exact zeros. Idempotent; stable with respect to the
  /// push order of duplicates, so merged sums are deterministic.
  void coalesce();
  /// True when the entry list is sorted and duplicate-free (the invariant
  /// CsfTensor construction and squared_norm() require). Trivially true for
  /// an empty tensor; push() clears it.
  [[nodiscard]] bool coalesced() const { return coalesced_; }

  /// Sum of squared values. Requires a coalesced tensor — with duplicate
  /// coordinates present the per-entry squares do not sum to ||T||_F^2.
  [[nodiscard]] double squared_norm() const;
  [[nodiscard]] double frobenius_norm() const;

  /// Materializes the dense tensor (duplicates accumulate). Test/debug and
  /// the explicit densified baselines only — never on a solve path.
  [[nodiscard]] DenseTensor densify() const;

  /// All entries of `t` with |value| > threshold, coalesced by construction.
  [[nodiscard]] static CooTensor from_dense(const DenseTensor& t,
                                            double threshold = 0.0);

 private:
  std::vector<index_t> shape_;
  std::vector<index_t> idx_;  ///< nnz * order, entry-major
  std::vector<double> vals_;
  bool coalesced_ = true;
};

}  // namespace parpp::tensor
