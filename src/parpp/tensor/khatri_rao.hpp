// Khatri-Rao products and the KRP-based MTTKRP reference path.
#pragma once

#include <vector>

#include "parpp/la/matrix.hpp"
#include "parpp/tensor/dense_tensor.hpp"

namespace parpp::tensor {

/// Column-wise Khatri-Rao product C = A ⊙ B:
/// C((i*J + j), k) = A(i, k) * B(j, k) for A (I x K), B (J x K).
[[nodiscard]] la::Matrix khatri_rao(const la::Matrix& a, const la::Matrix& b);

/// Khatri-Rao product of all factors except `skip`, with rows linearized in
/// row-major order of the remaining modes (leftmost slowest):
///   W(row(i_1..î_skip..i_N), k) = prod_{m != skip} A(m)(i_m, k).
/// Pass skip = -1 to include every factor.
[[nodiscard]] la::Matrix khatri_rao_all(const std::vector<la::Matrix>& factors,
                                        int skip);

}  // namespace parpp::tensor
