#include "parpp/tensor/mttv.hpp"

#include <omp.h>

#include <algorithm>
#include <vector>

#include "parpp/la/scalar.hpp"
#include "parpp/util/omp_sync.hpp"

namespace parpp::tensor {

namespace {

// Templated on the storage scalar of the streamed intermediate (double for
// the classic path, float for PP pair-operator mirrors); loads widen to
// fp64, every accumulation is fp64, and the loops are element-wise over j,
// so the double instantiation reproduces the historical results exactly.

// Accumulate out_plane(right x R) += sum_y in(y, rt_range, R) * A(y, :),
// restricted to rt in [rt0, rt1).
template <typename S>
inline void accumulate_rt_range(const S* in_block, const double* am,
                                double* out_plane, index_t dp, index_t right,
                                index_t r, index_t rt0, index_t rt1) {
  const index_t plane = right * r;
  for (index_t y = 0; y < dp; ++y) {
    const S* in_plane = in_block + y * plane;
    const double* arow = am + y * r;
    for (index_t rt = rt0; rt < rt1; ++rt) {
      const S* PARPP_RESTRICT ip = in_plane + rt * r;
      const double* PARPP_RESTRICT ar = arow;
      double* PARPP_RESTRICT op = out_plane + rt * r;
#pragma omp simd
      for (index_t j = 0; j < r; ++j)
        op[j] += static_cast<double>(ip[j]) * ar[j];
    }
  }
}

template <typename S>
void mttv_into_impl(const DenseTensor& k, const S* src, int pos,
                    const la::Matrix& a, DenseTensor& out, Profile* profile) {
  PARPP_CHECK(&k != &out, "mttv_into: input must not alias output");
  const int n = k.order();
  PARPP_CHECK(n >= 2, "mttv: intermediate must carry a rank mode");
  PARPP_CHECK(pos >= 0 && pos < n - 1, "mttv: bad contraction position ", pos);
  PARPP_CHECK(a.rows() == k.extent(pos), "mttv: A rows ", a.rows(),
              " != extent ", k.extent(pos));
  const index_t r = k.extent(n - 1);
  PARPP_CHECK(a.cols() == r, "mttv: A cols ", a.cols(), " != rank mode ", r);

  const index_t left = k.extent_product(0, pos);
  const index_t dp = k.extent(pos);
  const index_t right = k.extent_product(pos + 1, n - 1);  // excludes rank

  // O(order) shape bookkeeping once per call — not steady-state work.
  std::vector<index_t> out_shape;
  out_shape.reserve(static_cast<std::size_t>(n - 1));  // parpp-lint: allow(alloc)
  for (int m = 0; m < n - 1; ++m)
    // parpp-lint: allow(alloc)
    if (m != pos) out_shape.push_back(k.extent(m));
  out_shape.push_back(r);  // parpp-lint: allow(alloc)
  out.reshape(std::move(out_shape));
  out.set_zero();  // the kernel accumulates; reused buffers are stale

  const double flops = 2.0 * static_cast<double>(k.size());
  ScopedProfile sp(profile ? *profile : Profile::thread_default(),
                   Kernel::kMTTV, flops);

  const double* am = a.data();
  double* dst = out.data();
  const index_t plane = right * r;

  if (left > 1) {
    // Disjoint output planes per l: parallelize over l.
#pragma omp parallel for schedule(static)
    for (index_t l = 0; l < left; ++l) {
      accumulate_rt_range(src + l * dp * plane, am, dst + l * plane, dp, right,
                          r, 0, right);
    }
  } else if (right > 1) {
    // Single slab: split the rt range across threads (disjoint outputs).
    util::OmpJoinFence fence;
    fence.fork();
#pragma omp parallel
    {
      fence.enter();
      const int nt = omp_get_num_threads();
      const int tid = omp_get_thread_num();
      const index_t chunk = (right + nt - 1) / nt;
      const index_t rt0 = std::min<index_t>(right, tid * chunk);
      const index_t rt1 = std::min<index_t>(right, rt0 + chunk);
      if (rt0 < rt1)
        accumulate_rt_range(src, am, dst, dp, right, r, rt0, rt1);
      fence.leave();
    }
    fence.join();
  } else {
    // Final leaf contraction: out(r) view is (1 x R); reduce over y in
    // parallel with a per-thread accumulator.
    util::OmpJoinFence fence;
    fence.fork();
#pragma omp parallel
    {
      fence.enter();
      std::vector<double> local(static_cast<std::size_t>(r), 0.0);
#pragma omp for schedule(static) nowait
      for (index_t y = 0; y < dp; ++y) {
        const S* ip = src + y * r;
        const double* arow = am + y * r;
        for (index_t j = 0; j < r; ++j)
          local[static_cast<std::size_t>(j)] +=
              static_cast<double>(ip[j]) * arow[j];
      }
      // The critical section's lock lives in libgomp, invisible to TSan;
      // observe-on-entry / publish-on-exit restate the serialization the
      // lock provides, so the dst accumulation is provably ordered.
#pragma omp critical
      {
        fence.observe();
        for (index_t j = 0; j < r; ++j)
          dst[j] += local[static_cast<std::size_t>(j)];
        fence.publish();
      }
    }
    fence.join();
  }
}

}  // namespace

DenseTensor mttv(const DenseTensor& k, int pos, const la::Matrix& a,
                 Profile* profile) {
  DenseTensor out;
  mttv_into(k, pos, a, out, profile);
  return out;
}

void mttv_into(const DenseTensor& k, int pos, const la::Matrix& a,
               DenseTensor& out, Profile* profile) {
  mttv_into_impl(k, k.data(), pos, a, out, profile);
}

void mttv_into_f32(const DenseTensor& k, const float* k32, int pos,
                   const la::Matrix& a, DenseTensor& out, Profile* profile) {
  mttv_into_impl(k, k32, pos, a, out, profile);
}

}  // namespace parpp::tensor
