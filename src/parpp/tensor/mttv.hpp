// Batched multi-TTV: contract one mode of a rank-carrying intermediate.
#pragma once

#include "parpp/la/matrix.hpp"
#include "parpp/tensor/dense_tensor.hpp"
#include "parpp/util/profile.hpp"

namespace parpp::tensor {

/// Contracts mode `pos` of an intermediate K whose *last* mode is the rank
/// mode R, against factor A in R^{d_pos x R}, column-matched on r:
///
///   out(..., r) = sum_y K(..., y, ..., r) * A(y, r)
///
/// This is the batched TTV (mTTV) kernel of dimension trees: one TTV per
/// rank column, fused. `pos` must not name the trailing rank mode.
/// Bandwidth-bound by design (paper Sec. IV); charged to Kernel::kMTTV.
[[nodiscard]] DenseTensor mttv(const DenseTensor& k, int pos,
                               const la::Matrix& a, Profile* profile = nullptr);

/// Out-parameter variant: `out` is reshaped (reusing its storage — possibly
/// workspace-backed — when capacity allows), zeroed, and accumulated into.
void mttv_into(const DenseTensor& k, int pos, const la::Matrix& a,
               DenseTensor& out, Profile* profile = nullptr);

/// fp32-streaming variant: `k` supplies only the shape bookkeeping; the
/// intermediate's data is streamed from `k32` (an fp32 mirror of k.data(),
/// k.size() elements — e.g. a PpOperators::PairOp::data_f32). A stays
/// fp64 and every accumulation is fp64 — only the dominant stream (the
/// intermediate, which dwarfs A) is halved.
void mttv_into_f32(const DenseTensor& k, const float* k32, int pos,
                   const la::Matrix& a, DenseTensor& out,
                   Profile* profile = nullptr);

}  // namespace parpp::tensor
