// Batched multi-TTV: contract one mode of a rank-carrying intermediate.
#pragma once

#include "parpp/la/matrix.hpp"
#include "parpp/tensor/dense_tensor.hpp"
#include "parpp/util/profile.hpp"

namespace parpp::tensor {

/// Contracts mode `pos` of an intermediate K whose *last* mode is the rank
/// mode R, against factor A in R^{d_pos x R}, column-matched on r:
///
///   out(..., r) = sum_y K(..., y, ..., r) * A(y, r)
///
/// This is the batched TTV (mTTV) kernel of dimension trees: one TTV per
/// rank column, fused. `pos` must not name the trailing rank mode.
/// Bandwidth-bound by design (paper Sec. IV); charged to Kernel::kMTTV.
[[nodiscard]] DenseTensor mttv(const DenseTensor& k, int pos,
                               const la::Matrix& a, Profile* profile = nullptr);

/// Out-parameter variant: `out` is reshaped (reusing its storage — possibly
/// workspace-backed — when capacity allows), zeroed, and accumulated into.
void mttv_into(const DenseTensor& k, int pos, const la::Matrix& a,
               DenseTensor& out, Profile* profile = nullptr);

}  // namespace parpp::tensor
