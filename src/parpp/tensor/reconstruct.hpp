// Reconstruction of the full tensor from CP factors (small problems only).
#pragma once

#include <vector>

#include "parpp/la/matrix.hpp"
#include "parpp/tensor/dense_tensor.hpp"

namespace parpp::tensor {

/// Builds [[A(1), ..., A(N)]] = sum_r A(1)(:,r) o ... o A(N)(:,r) as a dense
/// tensor. O(prod s_i * R) time and O(prod s_i) memory — intended for tests,
/// examples and exact-residual checks, not for production-scale fitness
/// (use core::fitness for that).
[[nodiscard]] DenseTensor reconstruct(const std::vector<la::Matrix>& factors);

}  // namespace parpp::tensor
