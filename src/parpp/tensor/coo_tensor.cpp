#include "parpp/tensor/coo_tensor.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace parpp::tensor {

CooTensor::CooTensor(std::vector<index_t> shape) : shape_(std::move(shape)) {
  PARPP_CHECK(!shape_.empty(), "CooTensor: empty shape");
  for (index_t e : shape_) PARPP_CHECK(e >= 0, "CooTensor: negative extent");
}

double CooTensor::dense_size() const {
  double prod = 1.0;
  for (index_t e : shape_) prod *= static_cast<double>(e);
  return prod;
}

double CooTensor::density() const {
  const double denom = dense_size();
  return denom > 0.0 ? static_cast<double>(nnz()) / denom : 0.0;
}

void CooTensor::reserve(index_t nnz) {
  idx_.reserve(static_cast<std::size_t>(nnz * order()));
  vals_.reserve(static_cast<std::size_t>(nnz));
}

void CooTensor::push(std::span<const index_t> idx, double value) {
  PARPP_CHECK(static_cast<int>(idx.size()) == order(),
              "CooTensor::push: expected ", order(), " coordinates, got ",
              idx.size());
  for (int m = 0; m < order(); ++m) {
    PARPP_CHECK(idx[static_cast<std::size_t>(m)] >= 0 &&
                    idx[static_cast<std::size_t>(m)] < extent(m),
                "CooTensor::push: coordinate ", idx[static_cast<std::size_t>(m)],
                " out of range for mode ", m);
  }
  idx_.insert(idx_.end(), idx.begin(), idx.end());
  vals_.push_back(value);
  coalesced_ = false;
}

void CooTensor::coalesce() {
  if (coalesced_) return;
  const int n = order();
  const index_t count = nnz();
  // Fast path: entries pushed in strictly increasing lexicographic order
  // with no zeros (e.g. a CSF walk or a block extraction from an already
  // coalesced list) only need the invariant flag restored — one linear
  // scan instead of a full sort + rebuild.
  {
    bool sorted_unique_nonzero = true;
    for (index_t e = 0; e < count && sorted_unique_nonzero; ++e) {
      if (vals_[static_cast<std::size_t>(e)] == 0.0) {
        sorted_unique_nonzero = false;
        break;
      }
      if (e == 0) continue;
      const index_t* prev = idx_.data() + (e - 1) * n;
      const index_t* cur = idx_.data() + e * n;
      if (!std::lexicographical_compare(prev, prev + n, cur, cur + n))
        sorted_unique_nonzero = false;
    }
    if (sorted_unique_nonzero) {
      coalesced_ = true;
      return;
    }
  }
  std::vector<index_t> perm(static_cast<std::size_t>(count));
  std::iota(perm.begin(), perm.end(), index_t{0});
  // stable_sort keeps duplicates in push order, so their merged sum is
  // deterministic regardless of the sort implementation.
  std::stable_sort(perm.begin(), perm.end(), [&](index_t a, index_t b) {
    const index_t* pa = idx_.data() + a * n;
    const index_t* pb = idx_.data() + b * n;
    return std::lexicographical_compare(pa, pa + n, pb, pb + n);
  });

  std::vector<index_t> new_idx;
  std::vector<double> new_vals;
  new_idx.reserve(idx_.size());
  new_vals.reserve(vals_.size());
  auto same = [&](index_t a, const index_t* tuple) {
    const index_t* pa = idx_.data() + a * n;
    return std::equal(pa, pa + n, tuple);
  };
  for (index_t p = 0; p < count; ++p) {
    const index_t e = perm[static_cast<std::size_t>(p)];
    const index_t* tuple = idx_.data() + e * n;
    double v = vals_[static_cast<std::size_t>(e)];
    while (p + 1 < count && same(perm[static_cast<std::size_t>(p + 1)], tuple)) {
      ++p;
      v += vals_[static_cast<std::size_t>(perm[static_cast<std::size_t>(p)])];
    }
    if (v == 0.0) continue;  // drop entries that cancel (or explicit zeros)
    new_idx.insert(new_idx.end(), tuple, tuple + n);
    new_vals.push_back(v);
  }
  idx_ = std::move(new_idx);
  vals_ = std::move(new_vals);
  coalesced_ = true;
}

double CooTensor::squared_norm() const {
  PARPP_CHECK(coalesced_,
              "CooTensor::squared_norm: coalesce() first (duplicate "
              "coordinates would be double-counted)");
  double sq = 0.0;
  for (double v : vals_) sq += v * v;
  return sq;
}

double CooTensor::frobenius_norm() const { return std::sqrt(squared_norm()); }

DenseTensor CooTensor::densify() const {
  DenseTensor t(shape_);
  const int n = order();
  std::vector<index_t> tuple(static_cast<std::size_t>(n));
  for (index_t e = 0; e < nnz(); ++e) {
    for (int m = 0; m < n; ++m)
      tuple[static_cast<std::size_t>(m)] = index(e, m);
    t.at(tuple) += value(e);
  }
  return t;
}

CooTensor CooTensor::from_dense(const DenseTensor& t, double threshold) {
  CooTensor coo(t.shape());
  std::vector<index_t> tuple(static_cast<std::size_t>(t.order()), 0);
  if (t.size() == 0) return coo;
  do {
    const double v = t.at(tuple);
    if (std::abs(v) > threshold) coo.push(tuple, v);
  } while (next_index(t.shape(), tuple));
  // Row-major traversal pushes coordinates in lexicographic order with no
  // duplicates, so the result is coalesced by construction.
  coo.coalesced_ = true;
  return coo;
}

}  // namespace parpp::tensor
