#include "parpp/tensor/mttkrp_naive.hpp"

#include "parpp/la/gemm.hpp"
#include "parpp/tensor/khatri_rao.hpp"
#include "parpp/tensor/transpose.hpp"

namespace parpp::tensor {

la::Matrix mttkrp_elementwise(const DenseTensor& t,
                              const std::vector<la::Matrix>& factors, int n) {
  const int order = t.order();
  PARPP_CHECK(static_cast<int>(factors.size()) == order,
              "mttkrp: factor count mismatch");
  PARPP_CHECK(n >= 0 && n < order, "mttkrp: bad mode");
  const index_t r = factors[0].cols();
  la::Matrix m(t.extent(n), r);

  std::vector<index_t> idx(static_cast<std::size_t>(order), 0);
  if (t.size() == 0) return m;
  index_t lin = 0;
  do {
    const double tv = t[lin++];
    if (tv != 0.0) {
      double* mrow = m.row(idx[static_cast<std::size_t>(n)]);
      for (index_t k = 0; k < r; ++k) {
        double prod = tv;
        for (int mm = 0; mm < order; ++mm) {
          if (mm == n) continue;
          prod *= factors[static_cast<std::size_t>(mm)](
              idx[static_cast<std::size_t>(mm)], k);
        }
        mrow[k] += prod;
      }
    }
  } while (next_index(t.shape(), idx));
  return m;
}

la::Matrix unfold(const DenseTensor& t, int n) {
  const int order = t.order();
  PARPP_CHECK(n >= 0 && n < order, "unfold: bad mode");
  la::Matrix u(t.extent(n), t.size() / std::max<index_t>(t.extent(n), 1));
  if (n == 0) {
    // The mode-0 unfolding is the row-major buffer itself: one copy, no
    // permutation pass.
    std::copy(t.data(), t.data() + t.size(), u.data());
    return u;
  }
  // Permute mode n to the front, remaining modes keep increasing order;
  // the resulting buffer *is* the row-major unfolding.
  std::vector<int> perm;
  perm.reserve(static_cast<std::size_t>(order));
  perm.push_back(n);
  for (int m = 0; m < order; ++m)
    if (m != n) perm.push_back(m);
  DenseTensor moved = transpose(t, perm);
  std::copy(moved.data(), moved.data() + moved.size(), u.data());
  return u;
}

la::Matrix mttkrp_krp(const DenseTensor& t,
                      const std::vector<la::Matrix>& factors, int n,
                      Profile* profile) {
  const index_t r = factors[0].cols();
  la::Matrix w = khatri_rao_all(factors, n);
  la::Matrix u = unfold(t, n);
  PARPP_CHECK(u.cols() == w.rows(), "mttkrp_krp: unfolding mismatch");
  la::Matrix m(u.rows(), r);
  {
    ScopedProfile sp(profile ? *profile : Profile::thread_default(),
                     Kernel::kTTM, 2.0 * static_cast<double>(t.size()) * r);
    la::gemm_raw(la::Trans::kNo, la::Trans::kNo, u.rows(), r, u.cols(), 1.0,
                 u.data(), u.cols(), w.data(), w.cols(), 0.0, m.data(),
                 m.cols());
  }
  return m;
}

}  // namespace parpp::tensor
