#include "parpp/tensor/reconstruct.hpp"

#include "parpp/la/gemm.hpp"
#include "parpp/tensor/khatri_rao.hpp"

namespace parpp::tensor {

DenseTensor reconstruct(const std::vector<la::Matrix>& factors) {
  PARPP_CHECK(!factors.empty(), "reconstruct: no factors");
  std::vector<index_t> shape;
  shape.reserve(factors.size());
  for (const auto& f : factors) shape.push_back(f.rows());
  DenseTensor t(shape);
  if (t.size() == 0) return t;

  if (factors.size() == 1) {
    // Rank-sum of single vectors: T(i) = sum_r A(i,r).
    const auto& a = factors[0];
    for (index_t i = 0; i < a.rows(); ++i) {
      double s = 0.0;
      for (index_t k = 0; k < a.cols(); ++k) s += a(i, k);
      t[i] = s;
    }
    return t;
  }

  // T unfolded along mode 0 (row-major) = A(1) * W^T with W the KRP of the
  // remaining factors in increasing mode order.
  la::Matrix w = khatri_rao_all(factors, 0);
  const auto& a0 = factors[0];
  la::gemm_raw(la::Trans::kNo, la::Trans::kYes, a0.rows(), w.rows(), a0.cols(),
               1.0, a0.data(), a0.cols(), w.data(), w.cols(), 0.0, t.data(),
               w.rows());
  return t;
}

}  // namespace parpp::tensor
