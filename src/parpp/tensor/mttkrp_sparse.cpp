#include "parpp/tensor/mttkrp_sparse.hpp"

#include <omp.h>

#include <algorithm>

#include "parpp/util/omp_sync.hpp"

namespace parpp::tensor {

namespace {

template <typename Tensor, typename MatT>
void check_factors(const Tensor& t, const std::vector<MatT>& factors, int n) {
  PARPP_CHECK(n >= 0 && n < t.order(), "mttkrp: bad mode ", n);
  PARPP_CHECK(static_cast<int>(factors.size()) == t.order(),
              "mttkrp: factor count mismatch");
  const index_t r = factors.empty() ? 0 : factors.front().cols();
  for (int m = 0; m < t.order(); ++m) {
    const auto& f = factors[static_cast<std::size_t>(m)];
    PARPP_CHECK(f.rows() == t.extent(m) && f.cols() == r,
                "mttkrp: factor ", m, " shape mismatch");
  }
}

void prepare_out(la::Matrix& out, index_t rows, index_t cols) {
  if (out.rows() != rows || out.cols() != cols) out = la::Matrix(rows, cols);
  out.set_zero();
}

/// Size of the team the next parallel region will get. Unlike
/// omp_get_max_threads() this reflects dynamic adjustment and nesting caps
/// (a simulated rank capped to threads_per_rank inside an outer region), so
/// workspace slabs are sized by threads that actually run, not the global
/// maximum. The discovery region runs once per calling thread and is then
/// cached until that thread's omp_set_num_threads() setting changes — the
/// kernels below sit on the hottest path and must not pay an extra
/// fork-join per call.
int openmp_team_size() {
  thread_local int cached_max = -1;
  thread_local int cached_team = 1;
  const int maxt = omp_get_max_threads();
  if (maxt != cached_max) {
    int team = 1;
    util::OmpJoinFence fence;
    fence.fork();
#pragma omp parallel
    {
      fence.enter();
#pragma omp single
      team = omp_get_num_threads();
      fence.leave();
    }
    fence.join();
    cached_max = maxt;
    cached_team = team;
  }
  return cached_team;
}

// All walks below are templated on the factor-matrix type (la::Matrix or
// la::MatrixF32 — `vals` matches its storage scalar) and on a register
// block RB ∈ {0, 8, 16, 32}: nonzero RB instantiates the rank loops with
// exact compile-time trip counts the autovectorizer holds in registers,
// RB = 0 is the runtime-bound generic. Loads widen to fp64 at the register
// boundary; every accumulator (`acc` slabs, `dst` rows, partial rows) is
// fp64 for both storage scalars, element-wise over the rank index, so the
// fp64 instantiation reproduces the pre-blocking summation order exactly.

// The gathered rows are the latency wall of every walk: the pattern stream
// (fids / values / fptr) prefetches itself, but each nonzero's factor (or
// output) row is a random fetch the hardware cannot predict, and at bench
// extents almost every one misses to DRAM. The leaf loops therefore stay
// kGatherAhead nonzeros in front of the walk; interior loops prefetch one
// node ahead (the recursion underneath is the latency window). Prefetching
// changes no arithmetic — fp64 stays bit-for-bit.
constexpr index_t kGatherAhead = 16;

/// Sums the contributions of the level-`lv` nodes [begin, end) into `dst`
/// (length R). `acc` holds one R-vector per interior level (lv in
/// [1, order-2]), indexed acc + (lv-1)*R.
template <int RB, typename MatT>
void accumulate_children(const CsfTensor::Tree& tree,
                         const la::matrix_scalar_t<MatT>* vals,
                         const std::vector<MatT>& factors, int lv,
                         index_t begin, index_t end, index_t r, double* acc,
                         double* dst) {
  using S = la::matrix_scalar_t<MatT>;
  const index_t rr = RB != 0 ? RB : r;
  const int leaf = static_cast<int>(tree.mode_order.size()) - 1;
  const auto& fids = tree.fids[static_cast<std::size_t>(lv)];
  const MatT& factor =
      factors[static_cast<std::size_t>(tree.mode_order[static_cast<std::size_t>(lv)])];
  if (lv == leaf) {
    double* PARPP_RESTRICT d = dst;
    for (index_t k = begin; k < end; ++k) {
      const index_t pf = k + kGatherAhead < end ? k + kGatherAhead : end - 1;
      const char* prow = reinterpret_cast<const char*>(
          factor.row(fids[static_cast<std::size_t>(pf)]));
      __builtin_prefetch(prow);
      if (rr * static_cast<index_t>(sizeof(S)) > 64)
        __builtin_prefetch(prow + 64);
      const double v = static_cast<double>(vals[k]);
      const S* PARPP_RESTRICT arow = factor.row(fids[static_cast<std::size_t>(k)]);
#pragma omp simd
      for (index_t j = 0; j < rr; ++j) d[j] += v * static_cast<double>(arow[j]);
    }
    return;
  }
  const auto& fptr = tree.fptr[static_cast<std::size_t>(lv)];
  double* mine = acc + static_cast<std::size_t>((lv - 1) * r);
  for (index_t k = begin; k < end; ++k) {
    if (k + 1 < end)
      __builtin_prefetch(factor.row(fids[static_cast<std::size_t>(k + 1)]));
    std::fill(mine, mine + r, 0.0);
    accumulate_children<RB>(tree, vals, factors, lv + 1,
                            fptr[static_cast<std::size_t>(k)],
                            fptr[static_cast<std::size_t>(k + 1)], r, acc,
                            mine);
    const S* PARPP_RESTRICT arow = factor.row(fids[static_cast<std::size_t>(k)]);
    const double* PARPP_RESTRICT m = mine;
    double* PARPP_RESTRICT d = dst;
#pragma omp simd
    for (index_t j = 0; j < rr; ++j) d[j] += m[j] * static_cast<double>(arow[j]);
  }
}

/// Downward pass for the pair operator: `prod` carries the Hadamard product
/// of the factor rows of every *contracted* mode on the path so far, `xj`
/// the current coordinate of free mode j (valid once the walk passed
/// j_level). `out_slab` points at out(x_i, 0, 0); per-level product slabs
/// live at scratch + lv*r.
template <int RB, typename MatT>
void pair_walk(const CsfTensor::Tree& tree,
               const la::matrix_scalar_t<MatT>* vals,
               const std::vector<MatT>& factors, int j_level, int lv,
               index_t begin, index_t end, const double* prod, index_t xj,
               index_t r, double* scratch, double* out_slab) {
  using S = la::matrix_scalar_t<MatT>;
  const index_t rr = RB != 0 ? RB : r;
  const int leaf = static_cast<int>(tree.mode_order.size()) - 1;
  const auto& fids = tree.fids[static_cast<std::size_t>(lv)];
  const MatT& factor = factors[static_cast<std::size_t>(
      tree.mode_order[static_cast<std::size_t>(lv)])];
  if (lv == leaf) {
    if (lv == j_level) {
      const double* PARPP_RESTRICT p = prod;
      for (index_t k = begin; k < end; ++k) {
        const index_t pf =
            k + kGatherAhead < end ? k + kGatherAhead : end - 1;
        __builtin_prefetch(out_slab + fids[static_cast<std::size_t>(pf)] * r,
                           1);
        const double v = static_cast<double>(vals[k]);
        double* PARPP_RESTRICT dst =
            out_slab + fids[static_cast<std::size_t>(k)] * r;
#pragma omp simd
        for (index_t q = 0; q < rr; ++q) dst[q] += v * p[q];
      }
    } else {
      double* PARPP_RESTRICT dst = out_slab + xj * r;
      const double* PARPP_RESTRICT p = prod;
      for (index_t k = begin; k < end; ++k) {
        const index_t pf =
            k + kGatherAhead < end ? k + kGatherAhead : end - 1;
        __builtin_prefetch(factor.row(fids[static_cast<std::size_t>(pf)]));
        const double v = static_cast<double>(vals[k]);
        const S* PARPP_RESTRICT arow =
            factor.row(fids[static_cast<std::size_t>(k)]);
#pragma omp simd
        for (index_t q = 0; q < rr; ++q)
          dst[q] += v * static_cast<double>(arow[q]) * p[q];
      }
    }
    return;
  }
  const auto& fptr = tree.fptr[static_cast<std::size_t>(lv)];
  if (lv == j_level) {
    for (index_t k = begin; k < end; ++k) {
      pair_walk<RB>(tree, vals, factors, j_level, lv + 1,
                    fptr[static_cast<std::size_t>(k)],
                    fptr[static_cast<std::size_t>(k + 1)], prod,
                    fids[static_cast<std::size_t>(k)], r, scratch, out_slab);
    }
    return;
  }
  double* mine = scratch + static_cast<index_t>(lv) * r;
  for (index_t k = begin; k < end; ++k) {
    const S* PARPP_RESTRICT arow = factor.row(fids[static_cast<std::size_t>(k)]);
    const double* PARPP_RESTRICT p = prod;
    double* PARPP_RESTRICT m = mine;
#pragma omp simd
    for (index_t q = 0; q < rr; ++q) m[q] = p[q] * static_cast<double>(arow[q]);
    pair_walk<RB>(tree, vals, factors, j_level, lv + 1,
                  fptr[static_cast<std::size_t>(k)],
                  fptr[static_cast<std::size_t>(k + 1)], mine, xj, r, scratch,
                  out_slab);
  }
}

template <typename MatT>
void pair_mttkrp_csf_into_impl(const CsfTensor& t,
                               const la::matrix_scalar_t<MatT>* vals,
                               const std::vector<MatT>& factors, int i, int j,
                               DenseTensor& out, Profile* profile,
                               util::KernelWorkspace* ws) {
  PARPP_CHECK(t.order() >= 3, "pair_mttkrp: order must be >= 3");
  PARPP_CHECK(i != j, "pair_mttkrp: free modes must differ");
  PARPP_CHECK(t.layout() == CsfLayout::kAllModes,
              "pair_mttkrp: pair operators need a root tree per mode — "
              "build the CsfTensor with CsfLayout::kAllModes (the kHalf "
              "layout serves plain MTTKRPs only)");
  check_factors(t, factors, i);
  PARPP_CHECK(j >= 0 && j < t.order(), "pair_mttkrp: bad mode ", j);
  const int order = t.order();
  const index_t r = factors.front().cols();
  const CsfTensor::Tree& tree = t.tree(i);
  ScopedProfile sp(profile ? *profile : Profile::thread_default(),
                   Kernel::kTTM,
                   2.0 * static_cast<double>(r) *
                       static_cast<double>(t.nnz() + tree.internal_nodes));
  out.reshape({t.extent(i), t.extent(j), r});
  out.set_zero();

  const int j_level = static_cast<int>(
      std::find(tree.mode_order.begin(), tree.mode_order.end(), j) -
      tree.mode_order.begin());

  util::KernelWorkspace& wsp =
      ws != nullptr ? *ws : util::KernelWorkspace::thread_default();
  const int team = openmp_team_size();
  // Per thread: one ones-vector (the root's incoming product) plus one
  // product slab per level, leased up front like the MTTKRP walk and sized
  // by the team that will actually run (not the global thread maximum).
  // Products and accumulators are fp64 for both storage scalars, so the
  // slab size never depends on the scalar axis.
  const index_t per_thread = static_cast<index_t>(order + 1) * r;
  auto slab = wsp.lease(static_cast<index_t>(team) * per_thread);

  const index_t roots = tree.root_count();
  const auto& root_fids = tree.fids.front();
  const auto& root_fptr = tree.fptr.front();
  const index_t slab_stride = t.extent(j) * r;
  double* const out_base = out.data();
  util::OmpJoinFence fence;
  fence.fork();
#pragma omp parallel num_threads(team)
  {
    fence.enter();
    double* mine = slab.data() +
                   static_cast<index_t>(omp_get_thread_num()) * per_thread;
    double* ones = mine + static_cast<index_t>(order) * r;
    std::fill(ones, ones + r, 1.0);
#pragma omp for schedule(dynamic, 32)
    for (index_t k = 0; k < roots; ++k) {
      la::rank_dispatch(r, [&](auto rb) {
        pair_walk<decltype(rb)::value>(
            tree, vals, factors, j_level, 1,
            root_fptr[static_cast<std::size_t>(k)],
            root_fptr[static_cast<std::size_t>(k + 1)], ones, 0, r, mine,
            out_base + root_fids[static_cast<std::size_t>(k)] * slab_stride);
      });
    }
    fence.leave();
  }
  fence.join();
}

}  // namespace

void pair_mttkrp_csf_into(const CsfTensor& t,
                          const std::vector<la::Matrix>& factors, int i,
                          int j, DenseTensor& out, Profile* profile,
                          util::KernelWorkspace* ws) {
  PARPP_CHECK(t.layout() == CsfLayout::kAllModes,
              "pair_mttkrp: pair operators need a root tree per mode — "
              "build the CsfTensor with CsfLayout::kAllModes");
  pair_mttkrp_csf_into_impl(t, t.tree(i).vals.data(), factors, i, j, out,
                            profile, ws);
}

void pair_mttkrp_csf_into_f32(const CsfTensor& t,
                              const std::vector<la::MatrixF32>& factors,
                              int i, int j, const CsfValsF32& vals32,
                              DenseTensor& out, Profile* profile,
                              util::KernelWorkspace* ws) {
  PARPP_CHECK(t.layout() == CsfLayout::kAllModes,
              "pair_mttkrp: pair operators need a root tree per mode — "
              "build the CsfTensor with CsfLayout::kAllModes");
  pair_mttkrp_csf_into_impl(t, vals32.tree_vals(i), factors, i, j, out,
                            profile, ws);
}

DenseTensor pair_mttkrp_coo(const CooTensor& t,
                            const std::vector<la::Matrix>& factors, int i,
                            int j, Profile* profile) {
  PARPP_CHECK(t.order() >= 3, "pair_mttkrp: order must be >= 3");
  PARPP_CHECK(i != j, "pair_mttkrp: free modes must differ");
  check_factors(t, factors, i);
  PARPP_CHECK(j >= 0 && j < t.order(), "pair_mttkrp: bad mode ", j);
  const int order = t.order();
  const index_t r = factors.front().cols();
  ScopedProfile sp(profile ? *profile : Profile::thread_default(),
                   Kernel::kTTM,
                   2.0 * static_cast<double>(t.nnz()) *
                       static_cast<double>(r) * (order - 2));
  DenseTensor out({t.extent(i), t.extent(j), r});
  std::vector<double> w(static_cast<std::size_t>(r));
  for (index_t e = 0; e < t.nnz(); ++e) {
    std::fill(w.begin(), w.end(), t.value(e));
    for (int m = 0; m < order; ++m) {
      if (m == i || m == j) continue;
      const double* arow =
          factors[static_cast<std::size_t>(m)].row(t.index(e, m));
      for (index_t q = 0; q < r; ++q) w[static_cast<std::size_t>(q)] *= arow[q];
    }
    double* dst = out.data() + (t.index(e, i) * t.extent(j) + t.index(e, j)) * r;
    for (index_t q = 0; q < r; ++q) dst[q] += w[static_cast<std::size_t>(q)];
  }
  return out;
}

la::Matrix mttkrp_coo(const CooTensor& t, const std::vector<la::Matrix>& factors,
                      int n, Profile* profile) {
  check_factors(t, factors, n);
  const int order = t.order();
  const index_t r = factors.front().cols();
  ScopedProfile sp(profile ? *profile : Profile::thread_default(),
                   Kernel::kTTM,
                   2.0 * static_cast<double>(t.nnz()) * static_cast<double>(r) *
                       (order - 1));
  la::Matrix out(t.extent(n), r);
  std::vector<double> w(static_cast<std::size_t>(r));
  for (index_t e = 0; e < t.nnz(); ++e) {
    std::fill(w.begin(), w.end(), t.value(e));
    for (int m = 0; m < order; ++m) {
      if (m == n) continue;
      const double* arow =
          factors[static_cast<std::size_t>(m)].row(t.index(e, m));
      for (index_t j = 0; j < r; ++j) w[static_cast<std::size_t>(j)] *= arow[j];
    }
    double* orow = out.row(t.index(e, n));
    for (index_t j = 0; j < r; ++j) orow[j] += w[static_cast<std::size_t>(j)];
  }
  return out;
}

namespace {

/// Classic schedule: one root fiber per task.
template <int RB, typename MatT>
void csf_walk_fiber(const CsfTensor::Tree& tree,
                    const la::matrix_scalar_t<MatT>* vals,
                    const std::vector<MatT>& factors, index_t r,
                    index_t levels, int team, la::Matrix& out,
                    util::KernelWorkspace& wsp) {
  // One slab of interior-level accumulators per thread, leased up front so
  // the parallel region never contends on the pool lock. Accumulators are
  // fp64 regardless of the storage scalar.
  auto slab = wsp.lease(static_cast<index_t>(team) * levels * r);
  const index_t roots = tree.root_count();
  const auto& root_fids = tree.fids.front();
  const auto& root_fptr = tree.fptr.front();
  util::OmpJoinFence fence;
  fence.fork();
#pragma omp parallel num_threads(team)
  {
    fence.enter();
    double* acc = slab.data() + static_cast<index_t>(omp_get_thread_num()) *
                                    levels * r;
    // Root fibers can be heavily skewed in real sparse tensors; dynamic
    // scheduling keeps the long ones from serializing the sweep.
#pragma omp for schedule(dynamic, 32)
    for (index_t j = 0; j < roots; ++j) {
      accumulate_children<RB>(tree, vals, factors, 1,
                              root_fptr[static_cast<std::size_t>(j)],
                              root_fptr[static_cast<std::size_t>(j + 1)], r,
                              acc,
                              out.row(root_fids[static_cast<std::size_t>(j)]));
    }
    fence.leave();
  }
  fence.join();
}

/// Tiled schedule: work stealing over the tree's cache-sized level-1 tiles.
/// A tile's interior roots are wholly owned (their output rows are written
/// directly); its first/last root may be shared with neighbor tiles, so
/// those contributions go to tile-private partial rows merged in a serial
/// O(tiles) fix-up after the parallel region.
template <int RB, typename MatT>
void csf_walk_tiled(const CsfTensor::Tree& tree,
                    const la::matrix_scalar_t<MatT>* vals,
                    const std::vector<MatT>& factors, index_t r,
                    index_t levels, int team, la::Matrix& out,
                    util::KernelWorkspace& wsp) {
  const index_t tiles = tree.tile_count();
  const auto& root_fids = tree.fids.front();
  const auto& root_fptr = tree.fptr.front();
  // Per-thread accumulator slabs, then two partial rows per tile — all
  // fp64; the scalar axis never changes accumulator sizing.
  auto slab = wsp.lease(static_cast<index_t>(team) * levels * r +
                        tiles * 2 * r);
  double* const part_base = slab.data() + static_cast<index_t>(team) * levels * r;

  // Boundary intersection of tile tt with root fiber `root`, mirrored
  // exactly in the fix-up below.
  const auto clip = [&](index_t tt, index_t root, index_t* cb, index_t* ce) {
    *cb = std::max(tree.tile_ptr[static_cast<std::size_t>(tt)],
                   root_fptr[static_cast<std::size_t>(root)]);
    *ce = std::min(tree.tile_ptr[static_cast<std::size_t>(tt) + 1],
                   root_fptr[static_cast<std::size_t>(root) + 1]);
  };
  const auto whole = [&](index_t root, index_t cb, index_t ce) {
    return cb == root_fptr[static_cast<std::size_t>(root)] &&
           ce == root_fptr[static_cast<std::size_t>(root) + 1];
  };

  // The serial fix-up below reads worker-written partial rows (part_base);
  // the fence makes that join edge visible to TSan (see omp_sync.hpp).
  util::OmpJoinFence fence;
  fence.fork();
#pragma omp parallel num_threads(team)
  {
    fence.enter();
    double* acc = slab.data() + static_cast<index_t>(omp_get_thread_num()) *
                                    levels * r;
#pragma omp for schedule(dynamic, 1)
    for (index_t tt = 0; tt < tiles; ++tt) {
      const index_t rb = tree.tile_root[static_cast<std::size_t>(tt)];
      const index_t re = tree.tile_root_end[static_cast<std::size_t>(tt)];
      double* part = part_base + tt * 2 * r;
      for (index_t root = rb; root < re; ++root) {
        index_t cb = 0, ce = 0;
        clip(tt, root, &cb, &ce);
        double* dst;
        if (whole(root, cb, ce)) {
          dst = out.row(root_fids[static_cast<std::size_t>(root)]);
        } else {
          dst = root == rb ? part : part + r;
          std::fill(dst, dst + r, 0.0);
        }
        accumulate_children<RB>(tree, vals, factors, 1, cb, ce, r, acc, dst);
      }
    }
    fence.leave();
  }
  fence.join();

  for (index_t tt = 0; tt < tiles; ++tt) {
    const index_t rb = tree.tile_root[static_cast<std::size_t>(tt)];
    const index_t re = tree.tile_root_end[static_cast<std::size_t>(tt)];
    if (rb >= re) continue;
    const double* part = part_base + tt * 2 * r;
    index_t cb = 0, ce = 0;
    clip(tt, rb, &cb, &ce);
    if (!whole(rb, cb, ce)) {
      double* dst = out.row(root_fids[static_cast<std::size_t>(rb)]);
      for (index_t q = 0; q < r; ++q) dst[q] += part[q];
    }
    if (re - rb >= 2) {
      clip(tt, re - 1, &cb, &ce);
      if (!whole(re - 1, cb, ce)) {
        double* dst = out.row(root_fids[static_cast<std::size_t>(re - 1)]);
        for (index_t q = 0; q < r; ++q) dst[q] += part[r + q];
      }
    }
  }
}

/// Downward scatter pass of the kHalf leaf walk: `prod` holds the Hadamard
/// product of the factor rows of every level above `lv`; leaves add
/// val * prod into their output row. Interior product slabs live at
/// scratch + lv*r.
template <int RB, typename MatT>
void leaf_scatter(const CsfTensor::Tree& tree,
                  const la::matrix_scalar_t<MatT>* vals,
                  const std::vector<MatT>& factors, int lv, index_t begin,
                  index_t end, const double* prod, index_t r, double* scratch,
                  double* out0) {
  using S = la::matrix_scalar_t<MatT>;
  const index_t rr = RB != 0 ? RB : r;
  const int leaf = static_cast<int>(tree.mode_order.size()) - 1;
  const auto& fids = tree.fids[static_cast<std::size_t>(lv)];
  if (lv == leaf) {
    const double* PARPP_RESTRICT p = prod;
    for (index_t k = begin; k < end; ++k) {
      const index_t pf = k + kGatherAhead < end ? k + kGatherAhead : end - 1;
      const char* prow = reinterpret_cast<const char*>(
          out0 + fids[static_cast<std::size_t>(pf)] * r);
      __builtin_prefetch(prow, 1);
      if (rr > 8) __builtin_prefetch(prow + 64, 1);
      const double v = static_cast<double>(vals[k]);
      double* PARPP_RESTRICT dst = out0 + fids[static_cast<std::size_t>(k)] * r;
#pragma omp simd
      for (index_t q = 0; q < rr; ++q) dst[q] += v * p[q];
    }
    return;
  }
  const MatT& factor = factors[static_cast<std::size_t>(
      tree.mode_order[static_cast<std::size_t>(lv)])];
  const auto& fptr = tree.fptr[static_cast<std::size_t>(lv)];
  double* mine = scratch + static_cast<index_t>(lv) * r;
  for (index_t k = begin; k < end; ++k) {
    if (k + 1 < end)
      __builtin_prefetch(factor.row(fids[static_cast<std::size_t>(k + 1)]));
    const S* PARPP_RESTRICT arow = factor.row(fids[static_cast<std::size_t>(k)]);
    const double* PARPP_RESTRICT p = prod;
    double* PARPP_RESTRICT m = mine;
#pragma omp simd
    for (index_t q = 0; q < rr; ++q) m[q] = p[q] * static_cast<double>(arow[q]);
    leaf_scatter<RB>(tree, vals, factors, lv + 1,
                     fptr[static_cast<std::size_t>(k)],
                     fptr[static_cast<std::size_t>(k + 1)], mine, r, scratch,
                     out0);
  }
}

/// kHalf leaf-mode schedule: roots are split over the team like the fiber
/// walk, but distinct roots may reach the *same* leaf-mode output row, so a
/// parallel team scatters into per-thread output slabs merged in thread
/// order (deterministic for a fixed team size); a single thread writes the
/// output directly.
template <int RB, typename MatT>
void csf_walk_leaf(const CsfTensor::Tree& tree,
                   const la::matrix_scalar_t<MatT>* vals,
                   const std::vector<MatT>& factors, index_t r, int team,
                   la::Matrix& out, util::KernelWorkspace& wsp) {
  using S = la::matrix_scalar_t<MatT>;
  const int order = static_cast<int>(tree.mode_order.size());
  const index_t roots = tree.root_count();
  const auto& root_fids = tree.fids.front();
  const auto& root_fptr = tree.fptr.front();
  const MatT& root_factor =
      factors[static_cast<std::size_t>(tree.mode_order.front())];
  const index_t osize = out.rows() * r;
  // Per thread: one product slab per level (levels 0..order-2; the root
  // product occupies slot 0) plus, when the team is parallel, a private
  // output copy. fp64 throughout — the scalar axis only changes what the
  // loads stream.
  const index_t scratch_per_thread = static_cast<index_t>(order) * r;
  const index_t per_thread =
      scratch_per_thread + (team > 1 ? osize : index_t{0});
  auto slab = wsp.lease(static_cast<index_t>(team) * per_thread);
  double* const slab0 = slab.data();
  if (team > 1)
    std::fill(slab0 + scratch_per_thread * team,
              slab0 + scratch_per_thread * team +
                  static_cast<index_t>(team) * osize,
              0.0);
  double* const outlocal0 = slab0 + scratch_per_thread * team;

  util::OmpJoinFence fence;
  fence.fork();
#pragma omp parallel num_threads(team)
  {
    fence.enter();
    const int tid = omp_get_thread_num();
    double* scratch = slab0 + static_cast<index_t>(tid) * scratch_per_thread;
    double* out0 =
        team > 1 ? outlocal0 + static_cast<index_t>(tid) * osize : out.data();
    double* rootprod = scratch;
#pragma omp for schedule(dynamic, 32)
    for (index_t k = 0; k < roots; ++k) {
      const S* PARPP_RESTRICT arow =
          root_factor.row(root_fids[static_cast<std::size_t>(k)]);
      double* PARPP_RESTRICT rp = rootprod;
      const index_t rr = RB != 0 ? RB : r;
#pragma omp simd
      for (index_t q = 0; q < rr; ++q) rp[q] = static_cast<double>(arow[q]);
      leaf_scatter<RB>(tree, vals, factors, 1,
                       root_fptr[static_cast<std::size_t>(k)],
                       root_fptr[static_cast<std::size_t>(k + 1)], rootprod, r,
                       scratch, out0);
    }
    fence.leave();
  }
  fence.join();

  if (team > 1) {
    // Deterministic reduction in thread order.
    double* dst = out.data();
    for (int tid = 0; tid < team; ++tid) {
      const double* src = outlocal0 + static_cast<index_t>(tid) * osize;
      for (index_t i = 0; i < osize; ++i) dst[i] += src[i];
    }
  }
}

template <typename MatT>
void mttkrp_csf_into_impl(const CsfTensor& t,
                          const la::matrix_scalar_t<MatT>* vals,
                          const std::vector<MatT>& factors, int n,
                          la::Matrix& out, Profile* profile,
                          util::KernelWorkspace* ws, CsfWalk walk) {
  check_factors(t, factors, n);
  const int order = t.order();
  const index_t r = factors.front().cols();
  const CsfTensor::Walk wk = t.walk_for(n);
  const CsfTensor::Tree& tree = *wk.tree;
  ScopedProfile sp(profile ? *profile : Profile::thread_default(),
                   Kernel::kTTM,
                   2.0 * static_cast<double>(r) *
                       static_cast<double>(t.nnz() + tree.internal_nodes));
  prepare_out(out, t.extent(n), r);

  util::KernelWorkspace& wsp =
      ws != nullptr ? *ws : util::KernelWorkspace::thread_default();
  const index_t levels = std::max(order - 2, 0);
  const int team = openmp_team_size();

  if (wk.leaf) {
    // kHalf layout, upper-half mode: downward scatter walk. The
    // fiber/tiled distinction does not apply (scatter targets are output
    // rows, not subtree sums).
    la::rank_dispatch(r, [&](auto rb) {
      csf_walk_leaf<decltype(rb)::value>(tree, vals, factors, r, team, out,
                                         wsp);
    });
    return;
  }

  if (walk == CsfWalk::kAuto) {
    // The fiber schedule hands out chunks of 32 roots; when the root mode
    // cannot fill the team at that granularity, switch to tiles.
    const bool starved = tree.root_count() < static_cast<index_t>(team) * 32;
    walk = (team > 1 && starved && tree.tile_count() > 1) ? CsfWalk::kTiled
                                                          : CsfWalk::kFiber;
  }
  la::rank_dispatch(r, [&](auto rb) {
    if (walk == CsfWalk::kTiled) {
      csf_walk_tiled<decltype(rb)::value>(tree, vals, factors, r, levels,
                                          team, out, wsp);
    } else {
      csf_walk_fiber<decltype(rb)::value>(tree, vals, factors, r, levels,
                                          team, out, wsp);
    }
  });
}

}  // namespace

void mttkrp_csf_into(const CsfTensor& t, const std::vector<la::Matrix>& factors,
                     int n, la::Matrix& out, Profile* profile,
                     util::KernelWorkspace* ws, CsfWalk walk) {
  const CsfTensor::Walk wk = t.walk_for(n);
  mttkrp_csf_into_impl(t, wk.tree->vals.data(), factors, n, out, profile, ws,
                       walk);
}

void mttkrp_csf_into_f32(const CsfTensor& t,
                         const std::vector<la::MatrixF32>& factors, int n,
                         const CsfValsF32& vals32, la::Matrix& out,
                         Profile* profile, util::KernelWorkspace* ws,
                         CsfWalk walk) {
  const CsfTensor::Walk wk = t.walk_for(n);
  mttkrp_csf_into_impl(t, vals32.tree_vals(wk.tree_index), factors, n, out,
                       profile, ws, walk);
}

la::Matrix mttkrp_csf(const CsfTensor& t, const std::vector<la::Matrix>& factors,
                      int n, Profile* profile, util::KernelWorkspace* ws,
                      CsfWalk walk) {
  la::Matrix out;
  mttkrp_csf_into(t, factors, n, out, profile, ws, walk);
  return out;
}

}  // namespace parpp::tensor
