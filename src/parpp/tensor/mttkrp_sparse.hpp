// Sparse MTTKRP kernels over COO (reference) and CSF (execution) storage.
//
// The CSF path walks the fiber tree rooted at the requested mode: leaves
// contribute val * A(last).row, interior levels Hadamard the accumulated
// child sum with their own factor row, and the root scatters into the
// output row — 2R(nnz + interior nodes) flops, nothing proportional to the
// dense size. Parallelism is over root fibers (distinct output rows, so no
// write conflicts); per-thread accumulators are leased from the workspace,
// making steady-state sweeps allocation-free exactly like the dense fused
// path.
#pragma once

#include <vector>

#include "parpp/la/matrix.hpp"
#include "parpp/tensor/coo_tensor.hpp"
#include "parpp/tensor/csf_tensor.hpp"
#include "parpp/util/profile.hpp"
#include "parpp/util/workspace.hpp"

namespace parpp::tensor {

/// Entry-wise COO reference: M(n).row(i_n) += v * hadamard of the other
/// factor rows, per nonzero. Sequential, O(R) scratch — the validation
/// oracle for the CSF walk, not a performance path.
[[nodiscard]] la::Matrix mttkrp_coo(const CooTensor& t,
                                    const std::vector<la::Matrix>& factors,
                                    int n, Profile* profile = nullptr);

/// CSF MTTKRP of mode `n` (tree rooted at n, OpenMP over root fibers).
/// `ws` defaults to the calling thread's workspace. Charged to Kernel::kTTM
/// with the exact sparse flop count, like the dense engines.
[[nodiscard]] la::Matrix mttkrp_csf(const CsfTensor& t,
                                    const std::vector<la::Matrix>& factors,
                                    int n, Profile* profile = nullptr,
                                    util::KernelWorkspace* ws = nullptr);

/// Out-parameter variant: reuses `out`'s storage when the shape already
/// matches (the per-mode steady state of an ALS sweep).
void mttkrp_csf_into(const CsfTensor& t,
                     const std::vector<la::Matrix>& factors, int n,
                     la::Matrix& out, Profile* profile = nullptr,
                     util::KernelWorkspace* ws = nullptr);

/// Pairwise-perturbation pair operator M_p(i,j) over sparse storage: the
/// (s_i, s_j, R) dense tensor obtained by contracting every mode except
/// {i, j} with its factor — an MTTKRP with two free modes. Walks the tree
/// rooted at `i` carrying a running Hadamard product down each path
/// (OpenMP over root fibers: distinct roots own distinct (x_i, :, :)
/// slabs, so there are no write conflicts). `out` is reshaped in place and
/// may be workspace-backed, which is what keeps periodic PP operator
/// rebuilds allocation-free. Requires order >= 3 and i != j.
void pair_mttkrp_csf_into(const CsfTensor& t,
                          const std::vector<la::Matrix>& factors, int i,
                          int j, DenseTensor& out, Profile* profile = nullptr,
                          util::KernelWorkspace* ws = nullptr);

/// Entry-wise COO reference for the pair operator (validation oracle).
[[nodiscard]] DenseTensor pair_mttkrp_coo(const CooTensor& t,
                                          const std::vector<la::Matrix>& factors,
                                          int i, int j,
                                          Profile* profile = nullptr);

}  // namespace parpp::tensor
