// Sparse MTTKRP kernels over COO (reference) and CSF (execution) storage.
//
// The CSF path walks the fiber tree rooted at the requested mode: leaves
// contribute val * A(last).row, interior levels Hadamard the accumulated
// child sum with their own factor row, and the root scatters into the
// output row — 2R(nnz + interior nodes) flops, nothing proportional to the
// dense size. Two parallel schedules share that walk:
//
//   * fiber — one root fiber per task (distinct output rows, no write
//     conflicts). Starves when the root mode is shorter than the team.
//   * tiled — cache-sized tiles of level-1 nodes (CsfTensor::Tree tiling)
//     with work stealing over tiles. A root fiber split across tiles gets
//     its boundary contributions accumulated into tile-private rows and
//     added back in a serial O(tiles) fix-up, so short root modes still
//     scale.
//
// Under CsfLayout::kHalf a mode may instead be the *leaf* level of its
// serving tree; that takes a third schedule — a downward product-carrying
// walk that scatters val * prod into the leaf-mode rows (per-thread output
// slabs merged in thread order when the team is parallel).
//
// Per-thread accumulators (and the tile-boundary rows) are leased from the
// workspace and sized by the actual OpenMP team, making steady-state sweeps
// allocation-free exactly like the dense fused path. Accumulation is always
// fp64 — the fp32 entry points below change only the *streamed* storage
// (factor mirrors + CsfValsF32 value mirrors), never the accumulator slabs.
#pragma once

#include <vector>

#include "parpp/la/matrix.hpp"
#include "parpp/la/scalar.hpp"
#include "parpp/tensor/coo_tensor.hpp"
#include "parpp/tensor/csf_tensor.hpp"
#include "parpp/util/profile.hpp"
#include "parpp/util/workspace.hpp"

namespace parpp::tensor {

/// Entry-wise COO reference: M(n).row(i_n) += v * hadamard of the other
/// factor rows, per nonzero. Sequential, O(R) scratch — the validation
/// oracle for the CSF walk, not a performance path.
[[nodiscard]] la::Matrix mttkrp_coo(const CooTensor& t,
                                    const std::vector<la::Matrix>& factors,
                                    int n, Profile* profile = nullptr);

/// Parallel schedule of the CSF walk (see file comment).
enum class CsfWalk {
  kAuto,   ///< tiled when the root mode is too short to feed the team
  kFiber,  ///< one root fiber per task (the classic SPLATT schedule)
  kTiled,  ///< level-1 tiles with work stealing + boundary fix-up
};

/// CSF MTTKRP of mode `n` (tree rooted at n). `ws` defaults to the calling
/// thread's workspace. Charged to Kernel::kTTM with the exact sparse flop
/// count, like the dense engines.
[[nodiscard]] la::Matrix mttkrp_csf(const CsfTensor& t,
                                    const std::vector<la::Matrix>& factors,
                                    int n, Profile* profile = nullptr,
                                    util::KernelWorkspace* ws = nullptr,
                                    CsfWalk walk = CsfWalk::kAuto);

/// Out-parameter variant: reuses `out`'s storage when the shape already
/// matches (the per-mode steady state of an ALS sweep).
void mttkrp_csf_into(const CsfTensor& t,
                     const std::vector<la::Matrix>& factors, int n,
                     la::Matrix& out, Profile* profile = nullptr,
                     util::KernelWorkspace* ws = nullptr,
                     CsfWalk walk = CsfWalk::kAuto);

/// fp32-storage CSF MTTKRP: identical walk with fp32 factor mirrors and
/// fp32 value mirrors (`vals32`, built once per tensor via
/// CsfValsF32::sync), widening every load to fp64 before accumulating —
/// the per-thread accumulator slabs stay fp64-sized. Halves the bytes of
/// the dominant streams (factor rows + values); parity vs the fp64 walk
/// is ~1e-5 relative (asserted in test_scalar_kernels.cpp).
void mttkrp_csf_into_f32(const CsfTensor& t,
                         const std::vector<la::MatrixF32>& factors, int n,
                         const CsfValsF32& vals32, la::Matrix& out,
                         Profile* profile = nullptr,
                         util::KernelWorkspace* ws = nullptr,
                         CsfWalk walk = CsfWalk::kAuto);

/// Pairwise-perturbation pair operator M_p(i,j) over sparse storage: the
/// (s_i, s_j, R) dense tensor obtained by contracting every mode except
/// {i, j} with its factor — an MTTKRP with two free modes. Walks the tree
/// rooted at `i` carrying a running Hadamard product down each path
/// (OpenMP over root fibers: distinct roots own distinct (x_i, :, :)
/// slabs, so there are no write conflicts). `out` is reshaped in place and
/// may be workspace-backed, which is what keeps periodic PP operator
/// rebuilds allocation-free. Requires order >= 3 and i != j.
/// Requires CsfLayout::kAllModes (every mode must have a root tree).
void pair_mttkrp_csf_into(const CsfTensor& t,
                          const std::vector<la::Matrix>& factors, int i,
                          int j, DenseTensor& out, Profile* profile = nullptr,
                          util::KernelWorkspace* ws = nullptr);

/// fp32-storage pair operator: same walk as pair_mttkrp_csf_into over fp32
/// factor/value mirrors with fp64 accumulation into `out`.
void pair_mttkrp_csf_into_f32(const CsfTensor& t,
                              const std::vector<la::MatrixF32>& factors,
                              int i, int j, const CsfValsF32& vals32,
                              DenseTensor& out, Profile* profile = nullptr,
                              util::KernelWorkspace* ws = nullptr);

/// Entry-wise COO reference for the pair operator (validation oracle).
[[nodiscard]] DenseTensor pair_mttkrp_coo(const CooTensor& t,
                                          const std::vector<la::Matrix>& factors,
                                          int i, int j,
                                          Profile* profile = nullptr);

}  // namespace parpp::tensor
