#include "parpp/tensor/khatri_rao.hpp"

namespace parpp::tensor {

la::Matrix khatri_rao(const la::Matrix& a, const la::Matrix& b) {
  PARPP_CHECK(a.cols() == b.cols(), "khatri_rao: column count mismatch");
  const index_t i_n = a.rows(), j_n = b.rows(), k_n = a.cols();
  la::Matrix c(i_n * j_n, k_n);
#pragma omp parallel for schedule(static) if (i_n * j_n * k_n > (index_t{1} << 16))
  for (index_t i = 0; i < i_n; ++i) {
    const double* arow = a.row(i);
    for (index_t j = 0; j < j_n; ++j) {
      const double* brow = b.row(j);
      double* crow = c.row(i * j_n + j);
      for (index_t k = 0; k < k_n; ++k) crow[k] = arow[k] * brow[k];
    }
  }
  return c;
}

la::Matrix khatri_rao_all(const std::vector<la::Matrix>& factors, int skip) {
  PARPP_CHECK(!factors.empty(), "khatri_rao_all: no factors");
  la::Matrix result;
  bool started = false;
  for (int m = 0; m < static_cast<int>(factors.size()); ++m) {
    if (m == skip) continue;
    const auto& f = factors[static_cast<std::size_t>(m)];
    if (!started) {
      result = f;
      started = true;
    } else {
      result = khatri_rao(result, f);
    }
  }
  PARPP_CHECK(started, "khatri_rao_all: all factors skipped");
  return result;
}

}  // namespace parpp::tensor
