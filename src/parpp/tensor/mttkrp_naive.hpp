// Reference MTTKRP implementations (no amortization).
//
// Two independent paths are provided so the dimension-tree engines can be
// validated against implementations with entirely different control flow:
// an element-wise triple-checked loop and a KRP + GEMM formulation.
#pragma once

#include <vector>

#include "parpp/la/matrix.hpp"
#include "parpp/tensor/dense_tensor.hpp"
#include "parpp/util/profile.hpp"

namespace parpp::tensor {

/// Element-wise reference: M(n)(i_n, r) = sum over all other indices of
/// T(i_1..i_N) * prod_{m != n} A(m)(i_m, r). O(size * N * R) — tests only.
[[nodiscard]] la::Matrix mttkrp_elementwise(
    const DenseTensor& t, const std::vector<la::Matrix>& factors, int n);

/// KRP reference: materializes W = KRP of all factors except n and computes
/// M(n) = T_(n) W via one GEMM on the mode-n unfolding. O(size * R) flops
/// but O(size) extra memory — usable on mid-size tensors.
[[nodiscard]] la::Matrix mttkrp_krp(const DenseTensor& t,
                                    const std::vector<la::Matrix>& factors,
                                    int n, Profile* profile = nullptr);

/// Mode-n unfolding T_(n) in R^{s_n x K}: column index is the row-major
/// linearization of the remaining modes in increasing mode order.
[[nodiscard]] la::Matrix unfold(const DenseTensor& t, int n);

}  // namespace parpp::tensor
