// Dense order-N tensor with row-major (last-mode-fastest) layout.
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "parpp/la/matrix.hpp"
#include "parpp/util/common.hpp"
#include "parpp/util/rng.hpp"
#include "parpp/util/workspace.hpp"

namespace parpp::tensor {

/// Dense tensor of doubles. Storage is row-major: the last mode varies
/// fastest, matching the layout assumptions of the TTM/mTTV kernels
/// (dimension-tree intermediates carry their rank mode last so corrections
/// and contractions stream over contiguous memory).
///
/// Storage is either owned (zero-initialized, the default) or leased from a
/// KernelWorkspace (uninitialized — the engines overwrite every element via
/// the *_into kernels). reshape() re-targets the same storage when capacity
/// allows, which is what makes steady-state tree sweeps allocation-free.
/// Copying always deep-copies into owned storage; moving transfers the
/// lease.
class DenseTensor {
 public:
  DenseTensor() = default;
  explicit DenseTensor(std::vector<index_t> shape);
  /// Workspace-backed tensor; contents are UNINITIALIZED.
  DenseTensor(std::vector<index_t> shape, util::KernelWorkspace& ws);
  /// Empty workspace-backed tensor: holds no buffer until reshape()d, then
  /// leases from `ws`. The canonical start state for engine cache nodes.
  explicit DenseTensor(util::KernelWorkspace& ws) : ws_(ws) { set_shape({0}); }

  DenseTensor(const DenseTensor& other);
  DenseTensor& operator=(const DenseTensor& other);
  DenseTensor(DenseTensor&& other) noexcept = default;
  DenseTensor& operator=(DenseTensor&& other) noexcept = default;

  /// Re-shapes in place. Reuses the current buffer when its capacity holds
  /// the new size (workspace-backed tensors re-lease when it does not;
  /// owned tensors resize, zero-filling only newly exposed elements).
  /// Existing contents are NOT preserved in any meaningful layout.
  void reshape(std::vector<index_t> shape);

  [[nodiscard]] int order() const { return static_cast<int>(shape_.size()); }
  [[nodiscard]] const std::vector<index_t>& shape() const { return shape_; }
  [[nodiscard]] index_t extent(int mode) const {
    PARPP_ASSERT(mode >= 0 && mode < order(), "extent: bad mode ", mode);
    return shape_[static_cast<std::size_t>(mode)];
  }
  [[nodiscard]] index_t size() const { return size_; }
  [[nodiscard]] const std::vector<index_t>& strides() const { return strides_; }

  [[nodiscard]] double* data() { return data_ptr_; }
  [[nodiscard]] const double* data() const { return data_ptr_; }

  [[nodiscard]] double& operator[](index_t linear) {
    PARPP_ASSERT(linear >= 0 && linear < size_, "linear index out of range");
    return data_ptr_[linear];
  }
  [[nodiscard]] double operator[](index_t linear) const {
    PARPP_ASSERT(linear >= 0 && linear < size_, "linear index out of range");
    return data_ptr_[linear];
  }

  [[nodiscard]] double& at(std::span<const index_t> idx) {
    return data_ptr_[linearize(idx)];
  }
  [[nodiscard]] double at(std::span<const index_t> idx) const {
    return data_ptr_[linearize(idx)];
  }

  [[nodiscard]] index_t linearize(std::span<const index_t> idx) const;

  void fill(double v);
  void set_zero() { fill(0.0); }
  void fill_uniform(Rng& rng);
  void fill_normal(Rng& rng);

  [[nodiscard]] double frobenius_norm() const;
  [[nodiscard]] double squared_norm() const;
  [[nodiscard]] double max_abs_diff(const DenseTensor& other) const;

  /// this += alpha * other (same shape).
  void axpy(double alpha, const DenseTensor& other);

  /// Product of extents over [first, last) — helper for kernel loop bounds.
  [[nodiscard]] index_t extent_product(int first, int last) const;

 private:
  void set_shape(std::vector<index_t> shape);

  std::vector<index_t> shape_;
  std::vector<index_t> strides_;
  index_t size_ = 0;
  // Exactly one of the two storages backs data_ptr_ (owned_ when the lease
  // is disengaged). ws_ holds a *copy* of the workspace handle — a cheap
  // shared-pool reference — so reshape() growth stays valid even if the
  // tensor is moved beyond the lifetime of the original handle.
  std::vector<double> owned_;
  util::KernelWorkspace::Lease lease_;
  std::optional<util::KernelWorkspace> ws_;
  double* data_ptr_ = nullptr;
};

/// Row-major strides for a shape (last mode has stride 1).
[[nodiscard]] std::vector<index_t> row_major_strides(
    const std::vector<index_t>& shape);

/// Advance a multi-index odometer-style; returns false after wrapping.
bool next_index(std::span<const index_t> shape, std::span<index_t> idx);

}  // namespace parpp::tensor
