// Dense order-N tensor with row-major (last-mode-fastest) layout.
#pragma once

#include <span>
#include <vector>

#include "parpp/la/matrix.hpp"
#include "parpp/util/common.hpp"
#include "parpp/util/rng.hpp"

namespace parpp::tensor {

/// Dense tensor of doubles. Storage is row-major: the last mode varies
/// fastest, matching the layout assumptions of the TTM/mTTV kernels
/// (dimension-tree intermediates carry their rank mode last so corrections
/// and contractions stream over contiguous memory).
class DenseTensor {
 public:
  DenseTensor() = default;
  explicit DenseTensor(std::vector<index_t> shape);

  [[nodiscard]] int order() const { return static_cast<int>(shape_.size()); }
  [[nodiscard]] const std::vector<index_t>& shape() const { return shape_; }
  [[nodiscard]] index_t extent(int mode) const {
    PARPP_ASSERT(mode >= 0 && mode < order(), "extent: bad mode ", mode);
    return shape_[static_cast<std::size_t>(mode)];
  }
  [[nodiscard]] index_t size() const { return size_; }
  [[nodiscard]] const std::vector<index_t>& strides() const { return strides_; }

  [[nodiscard]] double* data() { return data_.data(); }
  [[nodiscard]] const double* data() const { return data_.data(); }

  [[nodiscard]] double& operator[](index_t linear) {
    PARPP_ASSERT(linear >= 0 && linear < size_, "linear index out of range");
    return data_[static_cast<std::size_t>(linear)];
  }
  [[nodiscard]] double operator[](index_t linear) const {
    PARPP_ASSERT(linear >= 0 && linear < size_, "linear index out of range");
    return data_[static_cast<std::size_t>(linear)];
  }

  [[nodiscard]] double& at(std::span<const index_t> idx) {
    return data_[static_cast<std::size_t>(linearize(idx))];
  }
  [[nodiscard]] double at(std::span<const index_t> idx) const {
    return data_[static_cast<std::size_t>(linearize(idx))];
  }

  [[nodiscard]] index_t linearize(std::span<const index_t> idx) const;

  void fill(double v);
  void set_zero() { fill(0.0); }
  void fill_uniform(Rng& rng);
  void fill_normal(Rng& rng);

  [[nodiscard]] double frobenius_norm() const;
  [[nodiscard]] double squared_norm() const;
  [[nodiscard]] double max_abs_diff(const DenseTensor& other) const;

  /// this += alpha * other (same shape).
  void axpy(double alpha, const DenseTensor& other);

  /// Product of extents over [first, last) — helper for kernel loop bounds.
  [[nodiscard]] index_t extent_product(int first, int last) const;

 private:
  std::vector<index_t> shape_;
  std::vector<index_t> strides_;
  index_t size_ = 0;
  std::vector<double> data_;
};

/// Row-major strides for a shape (last mode has stride 1).
[[nodiscard]] std::vector<index_t> row_major_strides(
    const std::vector<index_t>& shape);

/// Advance a multi-index odometer-style; returns false after wrapping.
bool next_index(std::span<const index_t> shape, std::span<index_t> idx);

}  // namespace parpp::tensor
