#include "parpp/data/hyperspectral.hpp"

#include <cmath>
#include <vector>

#include "parpp/util/rng.hpp"

namespace parpp::data {

tensor::DenseTensor make_hyperspectral_tensor(
    const HyperspectralOptions& options) {
  const index_t h = options.height, w = options.width;
  const index_t b_n = options.bands, f_n = options.frames;
  tensor::DenseTensor t({h, w, b_n, f_n});
  Rng rng(options.seed);

  struct Material {
    double cx, cy, sx, sy;                 // spatial Gaussian footprint
    std::vector<double> spectrum;          // smooth radiance curve
    std::vector<double> illumination;      // per-frame scale
  };
  std::vector<Material> mats(static_cast<std::size_t>(options.materials));
  for (auto& m : mats) {
    m.cx = rng.uniform();
    m.cy = rng.uniform();
    m.sx = 0.08 + 0.25 * rng.uniform();
    m.sy = 0.08 + 0.25 * rng.uniform();
    // Spectrum: sum of two smooth bumps over the band axis.
    const double p1 = rng.uniform(), p2 = rng.uniform();
    const double w1 = 0.1 + 0.3 * rng.uniform(), w2 = 0.1 + 0.3 * rng.uniform();
    const double a1 = 0.4 + rng.uniform(), a2 = 0.4 + rng.uniform();
    m.spectrum.resize(static_cast<std::size_t>(b_n));
    for (index_t b = 0; b < b_n; ++b) {
      const double x = static_cast<double>(b) / static_cast<double>(b_n - 1);
      const double d1 = (x - p1) / w1, d2 = (x - p2) / w2;
      m.spectrum[static_cast<std::size_t>(b)] =
          a1 * std::exp(-0.5 * d1 * d1) + a2 * std::exp(-0.5 * d2 * d2);
    }
    // Illumination: slow drift across the time-lapse plus small jitter.
    const double drift = -0.5 + rng.uniform();
    m.illumination.resize(static_cast<std::size_t>(f_n));
    for (index_t f = 0; f < f_n; ++f) {
      const double x = static_cast<double>(f) /
                       static_cast<double>(std::max<index_t>(f_n - 1, 1));
      m.illumination[static_cast<std::size_t>(f)] =
          1.0 + drift * x + 0.05 * rng.normal();
    }
  }

#pragma omp parallel for schedule(static)
  for (index_t y = 0; y < h; ++y) {
    const double yy = static_cast<double>(y) / static_cast<double>(h);
    for (index_t x = 0; x < w; ++x) {
      const double xx = static_cast<double>(x) / static_cast<double>(w);
      for (const auto& m : mats) {
        const double dx = (xx - m.cx) / m.sx, dy = (yy - m.cy) / m.sy;
        const double footprint = std::exp(-0.5 * (dx * dx + dy * dy));
        if (footprint < 1e-6) continue;
        double* cell = t.data() + ((y * w + x) * b_n) * f_n;
        for (index_t b = 0; b < b_n; ++b) {
          const double sb = footprint * m.spectrum[static_cast<std::size_t>(b)];
          for (index_t f = 0; f < f_n; ++f) {
            cell[b * f_n + f] +=
                sb * m.illumination[static_cast<std::size_t>(f)];
          }
        }
      }
    }
  }
  return t;
}

}  // namespace parpp::data
