// Synthetic time-lapse hyperspectral radiance tensor.
//
// Substitutes for the "Souto wood pile" dataset (1024 x 1344 x 33 x 9:
// space x space x wavelength x time). Fig. 5f needs an order-4 tensor with
// two large, spatially smooth modes, a small spectral mode with smooth
// per-material radiance curves, and a short time mode with slow
// illumination drift. We synthesize a scene as a mixture of spatial
// Gaussian blobs ("materials"), each with a smooth spectrum and a per-frame
// illumination scale.
#pragma once

#include "parpp/tensor/dense_tensor.hpp"

namespace parpp::data {

struct HyperspectralOptions {
  index_t height = 160;
  index_t width = 200;
  index_t bands = 33;
  index_t frames = 9;
  int materials = 12;
  std::uint64_t seed = 13;
};

/// Order-4 tensor (height, width, bands, frames).
[[nodiscard]] tensor::DenseTensor make_hyperspectral_tensor(
    const HyperspectralOptions& options);

}  // namespace parpp::data
