#include "parpp/data/sparse_synthetic.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "parpp/util/rng.hpp"

namespace parpp::data {

namespace {

/// k distinct values from [0, n), deterministic partial Fisher-Yates.
std::vector<index_t> sample_without_replacement(index_t n, index_t k,
                                                Rng& rng) {
  std::vector<index_t> pool(static_cast<std::size_t>(n));
  std::iota(pool.begin(), pool.end(), index_t{0});
  for (index_t i = 0; i < k; ++i) {
    const index_t j = i + rng.uniform_index(n - i);
    std::swap(pool[static_cast<std::size_t>(i)],
              pool[static_cast<std::size_t>(j)]);
  }
  pool.resize(static_cast<std::size_t>(k));
  std::sort(pool.begin(), pool.end());
  return pool;
}

/// Cumulative (unnormalized) Zipf weights over [0, s): slice i carries
/// weight (i+1)^-exponent.
std::vector<double> zipf_cdf(index_t s, double exponent) {
  std::vector<double> cdf(static_cast<std::size_t>(s));
  double acc = 0.0;
  for (index_t i = 0; i < s; ++i) {
    acc += std::pow(static_cast<double>(i + 1), -exponent);
    cdf[static_cast<std::size_t>(i)] = acc;
  }
  return cdf;
}

index_t zipf_draw(const std::vector<double>& cdf, Rng& rng) {
  const double u = rng.uniform() * cdf.back();
  const auto it = std::upper_bound(cdf.begin(), cdf.end(), u);
  return std::min(static_cast<index_t>(it - cdf.begin()),
                  static_cast<index_t>(cdf.size()) - 1);
}

/// k distinct Zipf-weighted draws from [0, cdf.size()), sorted. Rejection
/// sampling with a deterministic fallback (ascending unused indices) so the
/// call terminates even when k approaches the extent.
std::vector<index_t> zipf_sample_distinct(const std::vector<double>& cdf,
                                          index_t k, Rng& rng) {
  const auto s = static_cast<index_t>(cdf.size());
  std::vector<char> used(static_cast<std::size_t>(s), 0);
  std::vector<index_t> out;
  out.reserve(static_cast<std::size_t>(k));
  for (index_t attempts = 0;
       static_cast<index_t>(out.size()) < k && attempts < 30 * k + 100;
       ++attempts) {
    const index_t i = zipf_draw(cdf, rng);
    if (!used[static_cast<std::size_t>(i)]) {
      used[static_cast<std::size_t>(i)] = 1;
      out.push_back(i);
    }
  }
  for (index_t i = 0; static_cast<index_t>(out.size()) < k && i < s; ++i) {
    if (!used[static_cast<std::size_t>(i)]) out.push_back(i);
  }
  std::sort(out.begin(), out.end());
  return out;
}

/// Emits each rank-one term of `factors` on its support cross-product
/// (odometer walk); the caller's coalesce() then sums overlapping terms,
/// which is exactly [[A]] there.
void emit_rank_one_terms(
    const std::vector<std::vector<std::vector<index_t>>>& supports,
    const std::vector<la::Matrix>& factors, index_t rank,
    tensor::CooTensor& t) {
  const int n = static_cast<int>(supports.size());
  std::vector<index_t> tuple(static_cast<std::size_t>(n));
  std::vector<index_t> pos(static_cast<std::size_t>(n));
  for (index_t r = 0; r < rank; ++r) {
    std::fill(pos.begin(), pos.end(), index_t{0});
    while (true) {
      double v = 1.0;
      for (int m = 0; m < n; ++m) {
        const index_t i =
            supports[static_cast<std::size_t>(m)][static_cast<std::size_t>(r)]
                    [static_cast<std::size_t>(pos[static_cast<std::size_t>(m)])];
        tuple[static_cast<std::size_t>(m)] = i;
        v *= factors[static_cast<std::size_t>(m)](i, r);
      }
      t.push(tuple, v);
      int m = n - 1;
      while (m >= 0) {
        auto& pm = pos[static_cast<std::size_t>(m)];
        if (++pm < static_cast<index_t>(
                       supports[static_cast<std::size_t>(m)]
                               [static_cast<std::size_t>(r)].size()))
          break;
        pm = 0;
        --m;
      }
      if (m < 0) break;
    }
  }
}

}  // namespace

SparseLowRankData make_sparse_lowrank(const std::vector<index_t>& shape,
                                      index_t rank, double density,
                                      std::uint64_t seed) {
  const int n = static_cast<int>(shape.size());
  PARPP_CHECK(n >= 2, "make_sparse_lowrank: order must be >= 2");
  PARPP_CHECK(rank >= 1, "make_sparse_lowrank: rank must be positive");
  PARPP_CHECK(density > 0.0 && density <= 1.0,
              "make_sparse_lowrank: density must be in (0, 1]");
  for (index_t e : shape)
    PARPP_CHECK(e >= 1, "make_sparse_lowrank: extents must be positive");

  // Per-term support density: rank terms, each a cross product of per-mode
  // supports of density p, together land near the requested total density.
  const double p = std::pow(density / static_cast<double>(rank), 1.0 / n);
  Rng root(seed);

  SparseLowRankData out;
  out.tensor = tensor::CooTensor(shape);
  // supports[m][r]: the rows of mode m on which column r is nonzero.
  std::vector<std::vector<std::vector<index_t>>> supports(
      static_cast<std::size_t>(n));
  for (int m = 0; m < n; ++m) {
    Rng rng = root.split(static_cast<std::uint64_t>(m) + 1);
    const index_t s = shape[static_cast<std::size_t>(m)];
    const index_t k = std::clamp<index_t>(
        static_cast<index_t>(std::lround(p * static_cast<double>(s))), 1, s);
    la::Matrix a(s, rank);  // zero-initialized
    auto& mode_supports = supports[static_cast<std::size_t>(m)];
    mode_supports.reserve(static_cast<std::size_t>(rank));
    for (index_t r = 0; r < rank; ++r) {
      mode_supports.push_back(sample_without_replacement(s, k, rng));
      // Values bounded away from zero so rank-one terms never vanish.
      for (index_t i : mode_supports.back())
        a(i, r) = rng.uniform(0.25, 1.25);
    }
    out.factors.push_back(std::move(a));
  }

  emit_rank_one_terms(supports, out.factors, rank, out.tensor);
  out.tensor.coalesce();
  return out;
}

tensor::CooTensor make_sparse_random(const std::vector<index_t>& shape,
                                     double density, std::uint64_t seed) {
  const int n = static_cast<int>(shape.size());
  PARPP_CHECK(n >= 2, "make_sparse_random: order must be >= 2");
  PARPP_CHECK(density > 0.0 && density <= 1.0,
              "make_sparse_random: density must be in (0, 1]");
  tensor::CooTensor t(shape);
  double dense_size = 1.0;
  for (index_t e : shape) {
    PARPP_CHECK(e >= 1, "make_sparse_random: extents must be positive");
    dense_size *= static_cast<double>(e);
  }
  const index_t target = std::max<index_t>(
      1, static_cast<index_t>(std::llround(density * dense_size)));
  Rng rng(seed);
  t.reserve(target);
  std::vector<index_t> tuple(static_cast<std::size_t>(n));
  for (index_t e = 0; e < target; ++e) {
    for (int m = 0; m < n; ++m)
      tuple[static_cast<std::size_t>(m)] =
          rng.uniform_index(shape[static_cast<std::size_t>(m)]);
    t.push(tuple, rng.uniform());
  }
  t.coalesce();  // collisions merge; nnz may land slightly under target
  return t;
}

SparseLowRankData make_sparse_powerlaw(const std::vector<index_t>& shape,
                                       double density, double exponent,
                                       std::uint64_t seed,
                                       index_t exact_rank) {
  const int n = static_cast<int>(shape.size());
  PARPP_CHECK(n >= 2, "make_sparse_powerlaw: order must be >= 2");
  PARPP_CHECK(density > 0.0 && density <= 1.0,
              "make_sparse_powerlaw: density must be in (0, 1]");
  PARPP_CHECK(exponent >= 0.0,
              "make_sparse_powerlaw: exponent must be >= 0");
  PARPP_CHECK(exact_rank >= 0,
              "make_sparse_powerlaw: exact_rank must be >= 0");
  double dense_size = 1.0;
  for (index_t e : shape) {
    PARPP_CHECK(e >= 1, "make_sparse_powerlaw: extents must be positive");
    dense_size *= static_cast<double>(e);
  }

  std::vector<std::vector<double>> cdf(static_cast<std::size_t>(n));
  for (int m = 0; m < n; ++m)
    cdf[static_cast<std::size_t>(m)] =
        zipf_cdf(shape[static_cast<std::size_t>(m)], exponent);

  Rng root(seed);
  SparseLowRankData out;
  out.tensor = tensor::CooTensor(shape);

  if (exact_rank == 0) {
    // Unstructured: every coordinate of every entry is an independent Zipf
    // draw, giving each mode the requested slice skew.
    const index_t target = std::max<index_t>(
        1, static_cast<index_t>(std::llround(density * dense_size)));
    out.tensor.reserve(target);
    std::vector<index_t> tuple(static_cast<std::size_t>(n));
    for (index_t e = 0; e < target; ++e) {
      for (int m = 0; m < n; ++m)
        tuple[static_cast<std::size_t>(m)] =
            zipf_draw(cdf[static_cast<std::size_t>(m)], root);
      out.tensor.push(tuple, root.uniform());
    }
    out.tensor.coalesce();
    return out;
  }

  // Exactly low rank: the make_sparse_lowrank construction with
  // Zipf-weighted per-column supports, so the planted tensor is both
  // recoverable at exact_rank and head-heavy on every mode.
  const double p =
      std::pow(density / static_cast<double>(exact_rank), 1.0 / n);
  std::vector<std::vector<std::vector<index_t>>> supports(
      static_cast<std::size_t>(n));
  for (int m = 0; m < n; ++m) {
    Rng rng = root.split(static_cast<std::uint64_t>(m) + 1);
    const index_t s = shape[static_cast<std::size_t>(m)];
    const index_t k = std::clamp<index_t>(
        static_cast<index_t>(std::lround(p * static_cast<double>(s))), 1, s);
    la::Matrix a(s, exact_rank);  // zero-initialized
    auto& mode_supports = supports[static_cast<std::size_t>(m)];
    mode_supports.reserve(static_cast<std::size_t>(exact_rank));
    for (index_t r = 0; r < exact_rank; ++r) {
      mode_supports.push_back(
          zipf_sample_distinct(cdf[static_cast<std::size_t>(m)], k, rng));
      // Values bounded away from zero so rank-one terms never vanish.
      for (index_t i : mode_supports.back())
        a(i, r) = rng.uniform(0.25, 1.25);
    }
    out.factors.push_back(std::move(a));
  }
  emit_rank_one_terms(supports, out.factors, exact_rank, out.tensor);
  out.tensor.coalesce();
  return out;
}

}  // namespace parpp::data
