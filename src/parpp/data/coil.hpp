// Synthetic COIL-like multi-object image tensor.
//
// Substitutes for COIL-100 (128 x 128 x 3 x 7200: objects x poses). The
// Fig. 5e experiment needs an order-4 tensor with two image modes, a tiny
// colour mode, and one long mode of images that are smooth functions of an
// object identity and a pose angle — strongly compressible at small CP
// rank. Each object is a random mixture of 2-D Gabor-like patterns whose
// phases rotate with the pose, imitating the view-angle sweep of COIL.
#pragma once

#include "parpp/tensor/dense_tensor.hpp"

namespace parpp::data {

struct CoilOptions {
  index_t height = 48;
  index_t width = 48;
  index_t channels = 3;
  index_t objects = 20;
  index_t poses = 30;  ///< images per object; image mode = objects * poses
  int patterns_per_object = 6;
  std::uint64_t seed = 11;
};

/// Order-4 tensor (height, width, channels, objects * poses).
[[nodiscard]] tensor::DenseTensor make_coil_tensor(const CoilOptions& options);

}  // namespace parpp::data
