#include "parpp/data/collinearity.hpp"

#include <cmath>

#include "parpp/la/eig_jacobi.hpp"
#include "parpp/la/gemm.hpp"
#include "parpp/tensor/reconstruct.hpp"

namespace parpp::data {

namespace {

/// Gram-Schmidt orthonormalization of random Gaussian columns.
la::Matrix random_orthonormal(index_t s, index_t rank, Rng& rng) {
  PARPP_CHECK(s >= rank, "random_orthonormal: need s >= rank");
  la::Matrix q(s, rank);
  q.fill_normal(rng);
  for (index_t j = 0; j < rank; ++j) {
    for (index_t k = 0; k < j; ++k) {
      double dot = 0.0;
      for (index_t i = 0; i < s; ++i) dot += q(i, j) * q(i, k);
      for (index_t i = 0; i < s; ++i) q(i, j) -= dot * q(i, k);
    }
    double norm = 0.0;
    for (index_t i = 0; i < s; ++i) norm += q(i, j) * q(i, j);
    norm = std::sqrt(norm);
    PARPP_CHECK(norm > 1e-12, "random_orthonormal: degenerate column");
    for (index_t i = 0; i < s; ++i) q(i, j) /= norm;
  }
  return q;
}

}  // namespace

la::Matrix collinear_factor(index_t s, index_t rank, double c, Rng& rng) {
  PARPP_CHECK(c >= 0.0 && c < 1.0, "collinearity must be in [0,1)");
  la::Matrix q = random_orthonormal(s, rank, rng);
  // K = (1-c) I + c 1 1^T has eigenvalues (1-c) [multiplicity R-1] and
  // 1 + (R-1)c [eigenvector 1/sqrt(R)]; build K^{1/2} in closed form:
  // K^{1/2} = sqrt(1-c) (I - P) + sqrt(1+(R-1)c) P with P = 1 1^T / R.
  const double a = std::sqrt(1.0 - c);
  const double b = std::sqrt(1.0 + (static_cast<double>(rank) - 1.0) * c);
  la::Matrix k_half(rank, rank);
  for (index_t i = 0; i < rank; ++i) {
    for (index_t j = 0; j < rank; ++j) {
      const double p = 1.0 / static_cast<double>(rank);
      k_half(i, j) = (i == j ? a * (1.0 - p) : -a * p) + b * p;
    }
  }
  return la::matmul(q, k_half);
}

CollinearTensor make_collinear_tensor(const std::vector<index_t>& shape,
                                      index_t rank, double c_lo, double c_hi,
                                      std::uint64_t seed, double noise) {
  PARPP_CHECK(!shape.empty(), "make_collinear_tensor: empty shape");
  PARPP_CHECK(noise >= 0.0, "make_collinear_tensor: negative noise");
  Rng root(seed);
  CollinearTensor out;
  out.collinearity = root.uniform(c_lo, c_hi);
  out.factors.reserve(shape.size());
  for (std::size_t m = 0; m < shape.size(); ++m) {
    Rng rng = root.split(m + 101);
    out.factors.push_back(
        collinear_factor(shape[m], rank, out.collinearity, rng));
  }
  out.tensor = tensor::reconstruct(out.factors);
  if (noise > 0.0) {
    const double scale = noise * out.tensor.frobenius_norm() /
                         std::sqrt(static_cast<double>(out.tensor.size()));
    Rng nrng = root.split(4242);
    for (index_t i = 0; i < out.tensor.size(); ++i)
      out.tensor[i] += scale * nrng.normal();
  }
  return out;
}

}  // namespace parpp::data
