// Synthetic tensors with prescribed factor-column collinearity
// (Battaglino et al. construction, used for paper Fig. 4 / Fig. 5a).
#pragma once

#include <vector>

#include "parpp/la/matrix.hpp"
#include "parpp/tensor/dense_tensor.hpp"

namespace parpp::data {

/// Ground-truth factors plus the assembled tensor.
struct CollinearTensor {
  tensor::DenseTensor tensor;
  std::vector<la::Matrix> factors;
  double collinearity;
};

/// A single factor matrix A in R^{s x R} whose columns all satisfy
/// <a_i, a_j> / (|a_i| |a_j|) = c for i != j: A = Q K^{1/2} with Q having
/// orthonormal columns and K = (1-c) I + c 1 1^T.
[[nodiscard]] la::Matrix collinear_factor(index_t s, index_t rank, double c,
                                          Rng& rng);

/// Order-N tensor (shape `shape`) assembled from per-mode collinear factors
/// with collinearity drawn uniformly from [c_lo, c_hi). `noise` adds iid
/// Gaussian entries at the given fraction of the RMS tensor magnitude;
/// noise = 0 keeps the tensor exactly rank R. A small noise floor emulates
/// the slow convergence tail the paper's large instances exhibit.
[[nodiscard]] CollinearTensor make_collinear_tensor(
    const std::vector<index_t>& shape, index_t rank, double c_lo, double c_hi,
    std::uint64_t seed, double noise = 0.0);

}  // namespace parpp::data
