#include "parpp/data/chemistry.hpp"

#include <cmath>
#include <vector>

#include "parpp/util/rng.hpp"

namespace parpp::data {

tensor::DenseTensor make_density_fitting_tensor(
    const ChemistryOptions& options) {
  const index_t e_n = options.naux, p_n = options.norb;
  PARPP_CHECK(e_n > 0 && p_n > 0 && options.terms > 0,
              "make_density_fitting_tensor: bad sizes");
  tensor::DenseTensor d({e_n, p_n, p_n});
  Rng rng(options.seed);

  // Per-term ingredients: a Gaussian orbital profile phi_k centred on the
  // chain, an auxiliary envelope g_k (smooth oscillation with random phase),
  // and weight w_k = decay^k.
  std::vector<std::vector<double>> phi(
      static_cast<std::size_t>(options.terms));
  std::vector<std::vector<double>> g(static_cast<std::size_t>(options.terms));
  std::vector<double> w(static_cast<std::size_t>(options.terms));
  for (index_t k = 0; k < options.terms; ++k) {
    const auto uk = static_cast<std::size_t>(k);
    w[uk] = std::pow(options.decay, static_cast<double>(k));
    const double centre = rng.uniform() * static_cast<double>(p_n);
    const double width = 1.5 + 6.0 * rng.uniform();
    phi[uk].resize(static_cast<std::size_t>(p_n));
    for (index_t p = 0; p < p_n; ++p) {
      const double x = (static_cast<double>(p) - centre) / width;
      phi[uk][static_cast<std::size_t>(p)] = std::exp(-0.5 * x * x);
    }
    const double freq = 0.5 + 3.0 * rng.uniform();
    const double phase = rng.uniform() * 6.28318530717958647692;
    const double env_c = rng.uniform() * static_cast<double>(e_n);
    const double env_w = 0.15 * static_cast<double>(e_n) * (0.5 + rng.uniform());
    g[uk].resize(static_cast<std::size_t>(e_n));
    for (index_t e = 0; e < e_n; ++e) {
      const double y = (static_cast<double>(e) - env_c) / env_w;
      g[uk][static_cast<std::size_t>(e)] =
          std::exp(-0.5 * y * y) *
          std::cos(freq * static_cast<double>(e) / static_cast<double>(e_n) *
                       6.28318530717958647692 +
                   phase);
    }
  }

  // D(e,p,q) = sum_k w_k g_k(e) phi_k(p) phi_k(q): build the orbital-pair
  // image per term once, then rank-1 update over e (O(K (p^2 + e p^2))).
  std::vector<double> pair(static_cast<std::size_t>(p_n * p_n));
  for (index_t k = 0; k < options.terms; ++k) {
    const auto uk = static_cast<std::size_t>(k);
    for (index_t p = 0; p < p_n; ++p)
      for (index_t q = 0; q < p_n; ++q)
        pair[static_cast<std::size_t>(p * p_n + q)] =
            phi[uk][static_cast<std::size_t>(p)] *
            phi[uk][static_cast<std::size_t>(q)];
#pragma omp parallel for schedule(static)
    for (index_t e = 0; e < e_n; ++e) {
      const double scale = w[uk] * g[uk][static_cast<std::size_t>(e)];
      if (scale == 0.0) continue;
      double* slab = d.data() + e * p_n * p_n;
      for (index_t x = 0; x < p_n * p_n; ++x)
        slab[x] += scale * pair[static_cast<std::size_t>(x)];
    }
  }

  if (options.noise > 0.0) {
    const double scale = options.noise * d.frobenius_norm() /
                         std::sqrt(static_cast<double>(d.size()));
    Rng nrng = rng.split(999);
    for (index_t i = 0; i < d.size(); ++i) d[i] += scale * nrng.normal();
  }
  return d;
}

}  // namespace parpp::data
