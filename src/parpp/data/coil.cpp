#include "parpp/data/coil.hpp"

#include <cmath>
#include <vector>

#include "parpp/util/rng.hpp"

namespace parpp::data {

tensor::DenseTensor make_coil_tensor(const CoilOptions& options) {
  const index_t h = options.height, w = options.width, c_n = options.channels;
  const index_t n_img = options.objects * options.poses;
  tensor::DenseTensor t({h, w, c_n, n_img});
  Rng root(options.seed);
  constexpr double two_pi = 6.28318530717958647692;

  struct Pattern {
    double fx, fy, phase, amp;
    double rgb[3];
  };

#pragma omp parallel for schedule(dynamic)
  for (index_t obj = 0; obj < options.objects; ++obj) {
    Rng rng = root.split(static_cast<std::uint64_t>(obj) + 1);
    std::vector<Pattern> pats(
        static_cast<std::size_t>(options.patterns_per_object));
    for (auto& p : pats) {
      p.fx = 1.0 + 3.0 * rng.uniform();
      p.fy = 1.0 + 3.0 * rng.uniform();
      p.phase = two_pi * rng.uniform();
      p.amp = 0.3 + rng.uniform();
      for (double& ch : p.rgb) ch = 0.2 + 0.8 * rng.uniform();
    }
    for (index_t pose = 0; pose < options.poses; ++pose) {
      const double theta =
          two_pi * static_cast<double>(pose) / static_cast<double>(options.poses);
      const index_t img = obj * options.poses + pose;
      for (index_t y = 0; y < h; ++y) {
        const double yy = static_cast<double>(y) / static_cast<double>(h);
        for (index_t x = 0; x < w; ++x) {
          const double xx = static_cast<double>(x) / static_cast<double>(w);
          double base = 0.0;
          double colour[3] = {0.0, 0.0, 0.0};
          for (const auto& p : pats) {
            // Pose rotates the pattern phase — smooth view-angle sweep.
            const double v = p.amp * std::sin(two_pi * (p.fx * xx + p.fy * yy) +
                                              p.phase + theta);
            base += v;
            for (int ch = 0; ch < 3; ++ch) colour[ch] += v * p.rgb[ch];
          }
          (void)base;
          for (index_t ch = 0; ch < c_n; ++ch) {
            const double val = colour[ch % 3];
            t[((y * w + x) * c_n + ch) * n_img + img] = val;
          }
        }
      }
    }
  }
  return t;
}

}  // namespace parpp::data
