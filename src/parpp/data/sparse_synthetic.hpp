// Synthetic sparse tensors (workload generators for the sparse backend).
#pragma once

#include <cstdint>
#include <vector>

#include "parpp/la/matrix.hpp"
#include "parpp/tensor/coo_tensor.hpp"
#include "parpp/util/common.hpp"

namespace parpp::data {

struct SparseLowRankData {
  tensor::CooTensor tensor;          ///< coalesced, exactly rank <= rank
  std::vector<la::Matrix> factors;   ///< the generating factors
};

/// Exactly-low-rank sparse tensor: each factor column has a random sparse
/// support of per-mode density ~ (density/rank)^(1/order), and the tensor
/// is the exact reconstruction [[A(1)..A(N)]] restricted to the union of
/// the rank-one support cross-products — everywhere else every term
/// carries a zero factor entry, so the COO *is* the full reconstruction
/// and the tensor has CP rank <= rank exactly. Total nnz lands near
/// density * prod(shape) (up to per-mode rounding and overlap). CP-ALS at
/// `rank` can therefore reach fitness 1, which makes this the convergence
/// workload for sparse-vs-densified equivalence tests and CLI smoke runs
/// (--density).
[[nodiscard]] SparseLowRankData make_sparse_lowrank(
    const std::vector<index_t>& shape, index_t rank, double density,
    std::uint64_t seed);

/// Unstructured uniform sparse tensor: ~density * prod(shape) entries at
/// uniformly random coordinates (coalesced, so collisions merge), values
/// uniform in [0, 1). The MTTKRP/bench workload.
[[nodiscard]] tensor::CooTensor make_sparse_random(
    const std::vector<index_t>& shape, double density, std::uint64_t seed);

}  // namespace parpp::data
