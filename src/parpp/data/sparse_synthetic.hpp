// Synthetic sparse tensors (workload generators for the sparse backend).
#pragma once

#include <cstdint>
#include <vector>

#include "parpp/la/matrix.hpp"
#include "parpp/tensor/coo_tensor.hpp"
#include "parpp/util/common.hpp"

namespace parpp::data {

struct SparseLowRankData {
  tensor::CooTensor tensor;          ///< coalesced, exactly rank <= rank
  std::vector<la::Matrix> factors;   ///< the generating factors
};

/// Exactly-low-rank sparse tensor: each factor column has a random sparse
/// support of per-mode density ~ (density/rank)^(1/order), and the tensor
/// is the exact reconstruction [[A(1)..A(N)]] restricted to the union of
/// the rank-one support cross-products — everywhere else every term
/// carries a zero factor entry, so the COO *is* the full reconstruction
/// and the tensor has CP rank <= rank exactly. Total nnz lands near
/// density * prod(shape) (up to per-mode rounding and overlap). CP-ALS at
/// `rank` can therefore reach fitness 1, which makes this the convergence
/// workload for sparse-vs-densified equivalence tests and CLI smoke runs
/// (--density).
[[nodiscard]] SparseLowRankData make_sparse_lowrank(
    const std::vector<index_t>& shape, index_t rank, double density,
    std::uint64_t seed);

/// Unstructured uniform sparse tensor: ~density * prod(shape) entries at
/// uniformly random coordinates (coalesced, so collisions merge), values
/// uniform in [0, 1). The MTTKRP/bench workload.
[[nodiscard]] tensor::CooTensor make_sparse_random(
    const std::vector<index_t>& shape, double density, std::uint64_t seed);

/// Skewed sparse tensor with Zipf-distributed slice density: on every mode,
/// slice i is hit with probability proportional to (i+1)^-exponent, so the
/// head slices hold most of the nonzeros — the power-law fiber structure of
/// real-world sparse tensors that breaks uniform block partitioning.
/// exponent 0 degenerates to the uniform generators; ~1.0-1.5 matches
/// FROSTT-style skew.
///
/// exact_rank == 0 draws ~density * prod(shape) unstructured entries
/// (values uniform, collisions merge; `factors` left empty). exact_rank > 0
/// plants an exactly-low-rank tensor instead (the make_sparse_lowrank
/// construction with Zipf-weighted per-column supports), so CP-ALS at that
/// rank can reach fitness 1 — the convergence workload for
/// balanced-vs-uniform partition equivalence tests.
[[nodiscard]] SparseLowRankData make_sparse_powerlaw(
    const std::vector<index_t>& shape, double density, double exponent,
    std::uint64_t seed, index_t exact_rank = 0);

}  // namespace parpp::data
