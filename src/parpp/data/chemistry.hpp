// Synthetic density-fitting (Cholesky-factor) tensor.
//
// Substitutes for the PySCF-generated order-3 tensor D(e, p, q) of the
// paper (Sec. V-A, tensor 2): the Cholesky factor of the two-electron
// integral tensor of a water chain. What the Fig. 5b-d experiments need is
// an order-3 tensor with (a) strong but slowly-decaying low-rank structure
// (so CP-ALS takes many sweeps and PP pays off) and (b) localized
// orbital-pair structure. We synthesize D as a sum of K separable terms
// with exponentially decaying weights, Gaussian orbital profiles placed on
// a 1-D chain, and smooth auxiliary-basis envelopes, plus a small noise
// floor.
#pragma once

#include "parpp/tensor/dense_tensor.hpp"

namespace parpp::data {

struct ChemistryOptions {
  index_t naux = 600;      ///< auxiliary (Cholesky) dimension E
  index_t norb = 120;      ///< orbital dimension (two modes)
  index_t terms = 160;     ///< separable terms K
  double decay = 0.965;    ///< weight decay w_k = decay^k
  double noise = 1e-4;     ///< relative iid noise floor
  std::uint64_t seed = 7;
};

/// Order-3 tensor of shape (naux, norb, norb), symmetric in the orbital
/// modes up to noise.
[[nodiscard]] tensor::DenseTensor make_density_fitting_tensor(
    const ChemistryOptions& options);

}  // namespace parpp::data
