// Cholesky factorization and triangular solves for SPD systems.
#pragma once

#include "parpp/la/matrix.hpp"

namespace parpp::la {

/// Attempts the in-place lower Cholesky factorization of a symmetric matrix.
/// On success `l` holds L with zero strict upper triangle and returns true;
/// returns false if a non-positive pivot is met (matrix not PD).
[[nodiscard]] bool cholesky_lower(Matrix& l);

/// Solve L y = b in-place (forward substitution), b is n x nrhs row-major.
void forward_subst(const Matrix& l, double* b, index_t nrhs);

/// Solve L^T x = b in-place (backward substitution).
void backward_subst(const Matrix& l, double* b, index_t nrhs);

/// Solve (L L^T) X = B for X, where `l` is a lower Cholesky factor and B is
/// n x nrhs. Returns X.
[[nodiscard]] Matrix cholesky_solve(const Matrix& l, const Matrix& b);

}  // namespace parpp::la
