#include "parpp/la/cholesky.hpp"

#include <cmath>

namespace parpp::la {

bool cholesky_lower(Matrix& l) {
  PARPP_CHECK(l.rows() == l.cols(), "cholesky: matrix must be square");
  const index_t n = l.rows();
  for (index_t j = 0; j < n; ++j) {
    double d = l(j, j);
    for (index_t k = 0; k < j; ++k) d -= l(j, k) * l(j, k);
    if (!(d > 0.0) || !std::isfinite(d)) return false;
    const double djj = std::sqrt(d);
    l(j, j) = djj;
    const double inv = 1.0 / djj;
#pragma omp parallel for schedule(static) if (n - j > 256)
    for (index_t i = j + 1; i < n; ++i) {
      double s = l(i, j);
      for (index_t k = 0; k < j; ++k) s -= l(i, k) * l(j, k);
      l(i, j) = s * inv;
    }
    for (index_t i = j + 1; i < n; ++i) l(j, i) = 0.0;
  }
  return true;
}

void forward_subst(const Matrix& l, double* b, index_t nrhs) {
  const index_t n = l.rows();
  for (index_t i = 0; i < n; ++i) {
    double* bi = b + i * nrhs;
    for (index_t k = 0; k < i; ++k) {
      const double lik = l(i, k);
      if (lik == 0.0) continue;
      const double* bk = b + k * nrhs;
      for (index_t j = 0; j < nrhs; ++j) bi[j] -= lik * bk[j];
    }
    const double inv = 1.0 / l(i, i);
    for (index_t j = 0; j < nrhs; ++j) bi[j] *= inv;
  }
}

void backward_subst(const Matrix& l, double* b, index_t nrhs) {
  const index_t n = l.rows();
  for (index_t i = n - 1; i >= 0; --i) {
    double* bi = b + i * nrhs;
    for (index_t k = i + 1; k < n; ++k) {
      const double lki = l(k, i);  // (L^T)(i,k)
      if (lki == 0.0) continue;
      const double* bk = b + k * nrhs;
      for (index_t j = 0; j < nrhs; ++j) bi[j] -= lki * bk[j];
    }
    const double inv = 1.0 / l(i, i);
    for (index_t j = 0; j < nrhs; ++j) bi[j] *= inv;
  }
}

Matrix cholesky_solve(const Matrix& l, const Matrix& b) {
  PARPP_CHECK(l.rows() == b.rows(), "cholesky_solve: shape mismatch");
  Matrix x = b;
  forward_subst(l, x.data(), x.cols());
  backward_subst(l, x.data(), x.cols());
  return x;
}

}  // namespace parpp::la
