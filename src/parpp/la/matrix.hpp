// Dense row-major matrix type used throughout parpp.
#pragma once

#include <initializer_list>
#include <vector>

#include "parpp/util/common.hpp"
#include "parpp/util/rng.hpp"

namespace parpp::la {

/// Dense row-major matrix of doubles. Row-major is the natural layout for
/// factor matrices A(i) in Rs×R: one row per tensor index, contiguous over
/// the rank mode, which is what the mTTV and Khatri-Rao kernels stream over.
class Matrix {
 public:
  Matrix() = default;
  Matrix(index_t rows, index_t cols);
  Matrix(index_t rows, index_t cols, std::initializer_list<double> values);

  [[nodiscard]] index_t rows() const { return rows_; }
  [[nodiscard]] index_t cols() const { return cols_; }
  [[nodiscard]] index_t size() const { return rows_ * cols_; }
  [[nodiscard]] bool empty() const { return data_.empty(); }

  [[nodiscard]] double* data() { return data_.data(); }
  [[nodiscard]] const double* data() const { return data_.data(); }

  double& operator()(index_t i, index_t j) {
    PARPP_ASSERT(i >= 0 && i < rows_ && j >= 0 && j < cols_,
                 "matrix index (", i, ",", j, ") out of ", rows_, "x", cols_);
    return data_[static_cast<std::size_t>(i * cols_ + j)];
  }
  double operator()(index_t i, index_t j) const {
    PARPP_ASSERT(i >= 0 && i < rows_ && j >= 0 && j < cols_,
                 "matrix index (", i, ",", j, ") out of ", rows_, "x", cols_);
    return data_[static_cast<std::size_t>(i * cols_ + j)];
  }

  [[nodiscard]] double* row(index_t i) { return data() + i * cols_; }
  [[nodiscard]] const double* row(index_t i) const { return data() + i * cols_; }

  void fill(double v);
  void set_zero() { fill(0.0); }

  /// Fill with uniform [0,1) entries (paper's factor initialization).
  void fill_uniform(Rng& rng);
  /// Fill with standard normal entries.
  void fill_normal(Rng& rng);

  [[nodiscard]] Matrix transposed() const;

  /// Frobenius norm and inner product.
  [[nodiscard]] double frobenius_norm() const;
  [[nodiscard]] double dot(const Matrix& other) const;

  /// this += alpha * other (same shape).
  void axpy(double alpha, const Matrix& other);
  /// this *= alpha.
  void scale(double alpha);

  /// Element-wise (Hadamard) product into this.
  void hadamard_inplace(const Matrix& other);

  /// Max |a_ij - b_ij| between two same-shaped matrices.
  [[nodiscard]] double max_abs_diff(const Matrix& other) const;

  /// True when every entry is finite (no NaN/Inf) — the cheap per-sweep
  /// health check the resilient drivers run on factors and Grams.
  [[nodiscard]] bool all_finite() const;

  friend bool operator==(const Matrix& a, const Matrix& b) {
    return a.rows_ == b.rows_ && a.cols_ == b.cols_ && a.data_ == b.data_;
  }

 private:
  index_t rows_ = 0;
  index_t cols_ = 0;
  std::vector<double> data_;
};

/// Hadamard product C = A * B (element-wise).
[[nodiscard]] Matrix hadamard(const Matrix& a, const Matrix& b);

/// Identity matrix of size n.
[[nodiscard]] Matrix identity(index_t n);

}  // namespace parpp::la
