// Blocked, OpenMP-threaded general matrix multiply and Gram kernels.
//
// These stand in for the MKL routines the paper links against; they keep
// the same asymptotic compute/bandwidth profile (TTM is GEMM-bound).
#pragma once

#include "parpp/la/matrix.hpp"
#include "parpp/util/common.hpp"
#include "parpp/util/profile.hpp"
#include "parpp/util/workspace.hpp"

namespace parpp::la {

enum class Trans { kNo, kYes };

/// C = alpha * op(A) * op(B) + beta * C over raw row-major buffers.
/// op(A) is m x k, op(B) is k x n, C is m x n with leading dimensions
/// lda/ldb/ldc (row strides).
void gemm_raw(Trans trans_a, Trans trans_b, index_t m, index_t n, index_t k,
              double alpha, const double* a, index_t lda, const double* b,
              index_t ldb, double beta, double* c, index_t ldc);

/// Same contract with fp32 *storage* for A and B: C accumulates in fp64
/// across k chunks while the register tile accumulates fp32 within one
/// chunk (<= 512 terms, ~1e-6 relative roundoff — see the micro-kernel
/// notes in gemm.cpp and la/scalar.hpp), so only the streamed bytes halve.
/// Shares the blocked driver with the fp64 path by template instantiation.
void gemm_raw_f32(Trans trans_a, Trans trans_b, index_t m, index_t n,
                  index_t k, double alpha, const float* a, index_t lda,
                  const float* b, index_t ldb, double beta, double* c,
                  index_t ldc);

/// C = op(A) * op(B) convenience wrapper on Matrix.
[[nodiscard]] Matrix matmul(const Matrix& a, const Matrix& b,
                            Trans trans_a = Trans::kNo,
                            Trans trans_b = Trans::kNo);

/// Gram matrix S = A^T A for A in R^{m x n} (paper's S(i) = A(i)^T A(i)).
/// Exploits symmetry of the result; per-thread partial sums come from the
/// workspace pool (`ws` defaults to the calling thread's) and are merged by
/// a parallel binary tree. Charges Kernel::kOther.
[[nodiscard]] Matrix gram(const Matrix& a, Profile* profile = nullptr,
                          util::KernelWorkspace* ws = nullptr);

}  // namespace parpp::la
