#include "parpp/la/spd_solve.hpp"

#include <cmath>

#include "parpp/la/cholesky.hpp"
#include "parpp/la/eig_jacobi.hpp"
#include "parpp/la/gemm.hpp"

namespace parpp::la {

namespace {

// Row-wise triangular solves: for each row m_i of M, solve L z = m_i then
// L^T w = z; X row i = w. Rows are independent -> OpenMP over i.
Matrix solve_rows_cholesky(const Matrix& l, const Matrix& m) {
  const index_t s = m.rows();
  const index_t r = m.cols();
  Matrix x = m;
#pragma omp parallel for schedule(static) if (s * r * r > (index_t{1} << 14))
  for (index_t i = 0; i < s; ++i) {
    double* row = x.row(i);
    // forward: z_j = (row_j - sum_{k<j} L(j,k) z_k) / L(j,j)
    for (index_t j = 0; j < r; ++j) {
      double v = row[j];
      for (index_t k = 0; k < j; ++k) v -= l(j, k) * row[k];
      row[j] = v / l(j, j);
    }
    // backward: w_j = (z_j - sum_{k>j} L(k,j) w_k) / L(j,j)
    for (index_t j = r - 1; j >= 0; --j) {
      double v = row[j];
      for (index_t k = j + 1; k < r; ++k) v -= l(k, j) * row[k];
      row[j] = v / l(j, j);
    }
  }
  return x;
}

}  // namespace

SpdStats& spd_stats() {
  thread_local SpdStats stats;
  return stats;
}

Matrix solve_gram(const Matrix& g, const Matrix& m, Profile* profile,
                  double rcond) {
  PARPP_CHECK(g.rows() == g.cols(), "solve_gram: G must be square");
  PARPP_CHECK(m.cols() == g.rows(), "solve_gram: M cols ", m.cols(),
              " != G dim ", g.rows());
  const index_t r = g.rows();
  const double flops = 2.0 * static_cast<double>(m.rows()) * r * r;
  ScopedProfile sp(profile ? *profile : Profile::thread_default(),
                   Kernel::kSolve, flops);

  if (!g.all_finite()) {
    // The Jacobi eigensolver is not NaN-safe; return zeros and leave the
    // NaN Gram in place for the drivers' per-sweep health check to catch.
    ++spd_stats().nonfinite_grams;
    Matrix zero(m.rows(), m.cols());
    return zero;
  }

  Matrix l = g;
  if (cholesky_lower(l)) {
    return solve_rows_cholesky(l, m);
  }
  ++spd_stats().cholesky_failures;

  // Ridge-regularized retries: G + λI is PD for any λ > 0 when G is PSD,
  // so an escalating relative ridge recovers from the rank-deficient Grams
  // ALS produces (duplicate columns, rank above a mode extent) at Cholesky
  // speed and with O(λ) perturbation of the update.
  double mean_diag = 0.0;
  for (index_t j = 0; j < r; ++j) mean_diag += g(j, j);
  mean_diag = std::max(mean_diag / static_cast<double>(r), 1e-300);
  for (double rel : {1e-12, 1e-8, 1e-4}) {
    Matrix gr = g;
    const double ridge = rel * mean_diag;
    for (index_t j = 0; j < r; ++j) gr(j, j) += ridge;
    l = gr;
    if (cholesky_lower(l)) {
      ++spd_stats().ridge_recoveries;
      return solve_rows_cholesky(l, m);
    }
  }
  ++spd_stats().pinv_fallbacks;

  // Pseudo-inverse fallback: X = M V diag(1/lambda_i if lambda_i > cut) V^T.
  const SymmetricEig eig = eig_symmetric(g);
  double lam_max = 0.0;
  for (double lam : eig.eigenvalues) lam_max = std::max(lam_max, std::abs(lam));
  const double cut = rcond * std::max(lam_max, 1e-300);

  Matrix mv = matmul(m, eig.eigenvectors);  // s x r
  for (index_t j = 0; j < r; ++j) {
    const double lam = eig.eigenvalues[static_cast<std::size_t>(j)];
    const double inv = std::abs(lam) > cut ? 1.0 / lam : 0.0;
    for (index_t i = 0; i < mv.rows(); ++i) mv(i, j) *= inv;
  }
  return matmul(mv, eig.eigenvectors, Trans::kNo, Trans::kYes);
}

}  // namespace parpp::la
