#include "parpp/la/matrix.hpp"

#include <algorithm>
#include <cmath>

namespace parpp::la {

Matrix::Matrix(index_t rows, index_t cols)
    : rows_(rows), cols_(cols),
      data_(static_cast<std::size_t>(rows * cols), 0.0) {
  PARPP_CHECK(rows >= 0 && cols >= 0, "matrix dims must be non-negative, got ",
              rows, "x", cols);
}

Matrix::Matrix(index_t rows, index_t cols, std::initializer_list<double> values)
    : Matrix(rows, cols) {
  PARPP_CHECK(static_cast<index_t>(values.size()) == rows * cols,
              "initializer size ", values.size(), " != ", rows * cols);
  std::copy(values.begin(), values.end(), data_.begin());
}

void Matrix::fill(double v) { std::fill(data_.begin(), data_.end(), v); }

void Matrix::fill_uniform(Rng& rng) {
  for (auto& x : data_) x = rng.uniform();
}

void Matrix::fill_normal(Rng& rng) {
  for (auto& x : data_) x = rng.normal();
}

Matrix Matrix::transposed() const {
  Matrix t(cols_, rows_);
  for (index_t i = 0; i < rows_; ++i)
    for (index_t j = 0; j < cols_; ++j) t(j, i) = (*this)(i, j);
  return t;
}

double Matrix::frobenius_norm() const {
  double s = 0.0;
  for (double x : data_) s += x * x;
  return std::sqrt(s);
}

double Matrix::dot(const Matrix& other) const {
  PARPP_CHECK(rows_ == other.rows_ && cols_ == other.cols_,
              "dot: shape mismatch");
  double s = 0.0;
  for (std::size_t i = 0; i < data_.size(); ++i) s += data_[i] * other.data_[i];
  return s;
}

void Matrix::axpy(double alpha, const Matrix& other) {
  PARPP_CHECK(rows_ == other.rows_ && cols_ == other.cols_,
              "axpy: shape mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i)
    data_[i] += alpha * other.data_[i];
}

void Matrix::scale(double alpha) {
  for (auto& x : data_) x *= alpha;
}

void Matrix::hadamard_inplace(const Matrix& other) {
  PARPP_CHECK(rows_ == other.rows_ && cols_ == other.cols_,
              "hadamard: shape mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] *= other.data_[i];
}

double Matrix::max_abs_diff(const Matrix& other) const {
  PARPP_CHECK(rows_ == other.rows_ && cols_ == other.cols_,
              "max_abs_diff: shape mismatch");
  double m = 0.0;
  for (std::size_t i = 0; i < data_.size(); ++i)
    m = std::max(m, std::abs(data_[i] - other.data_[i]));
  return m;
}

bool Matrix::all_finite() const {
  for (double v : data_)
    if (!std::isfinite(v)) return false;
  return true;
}

Matrix hadamard(const Matrix& a, const Matrix& b) {
  Matrix c = a;
  c.hadamard_inplace(b);
  return c;
}

Matrix identity(index_t n) {
  Matrix m(n, n);
  for (index_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

}  // namespace parpp::la
