// Cyclic Jacobi eigensolver for symmetric matrices.
//
// Used as the rank-revealing fallback when the ALS Gram matrix Γ is
// (numerically) singular and the update needs the pseudo-inverse Γ†.
#pragma once

#include <vector>

#include "parpp/la/matrix.hpp"

namespace parpp::la {

struct SymmetricEig {
  std::vector<double> eigenvalues;  ///< ascending
  Matrix eigenvectors;              ///< column j pairs with eigenvalues[j]
};

/// Full eigendecomposition of a symmetric matrix via cyclic Jacobi rotations.
/// Converges quadratically; `max_sweeps` bounds work for ill-conditioned
/// inputs. Accuracy ~1e-13 relative for well-scaled matrices.
[[nodiscard]] SymmetricEig eig_symmetric(const Matrix& a, int max_sweeps = 30);

}  // namespace parpp::la
