// The scalar-type axis: reduced-precision *storage* for factor matrices
// (and tensor values) with wide accumulation.
//
// The hot kernels (fused MTTKRP, the CSF walks, GEMM) are bandwidth-bound
// at production sizes, so halving the bytes of the streamed operands buys
// close to 2x regardless of the arithmetic — the ggml quantized-block
// idiom. Factors are always *updated* in fp64 by the solvers; engines keep
// fp32 mirrors (MatrixF32) that are re-quantized after each update. The
// sparse walks widen every inner product to double before accumulating;
// the dense GEMM micro-kernel accumulates fp32 within one 512-term k chunk
// and adds chunks into fp64 (see gemm.cpp — this is what keeps the fp32
// lane bandwidth-bound instead of convert-bound). The enum rides on
// EngineOptions / SolverSpec (`--scalar {fp64,fp32}` on the CLI).
#pragma once

#include <cstddef>
#include <type_traits>
#include <vector>

#include "parpp/la/matrix.hpp"
#include "parpp/util/common.hpp"
#include "parpp/util/workspace.hpp"

// Non-aliasing pointer marker for the register-blocked inner loops; the
// autovectorizer needs it to keep R-wide accumulators in registers.
#if defined(__GNUC__) || defined(__clang__)
#define PARPP_RESTRICT __restrict
#else
#define PARPP_RESTRICT
#endif

namespace parpp::la {

/// Storage precision of factor matrices / tensor values inside an engine.
/// Accumulation is fp64 for every member of the axis.
enum class Scalar { kF64, kF32 };

[[nodiscard]] constexpr const char* scalar_name(Scalar s) {
  return s == Scalar::kF32 ? "fp32" : "fp64";
}

/// fp32 storage mirror of la::Matrix: same row-major layout, same const
/// read surface (rows/cols/row/data) so kernels template over the matrix
/// type. There is no mutable element access by design — the solvers update
/// factors in fp64 and engines re-quantize via sync() afterward, so a
/// mirror is never the authoritative copy.
class MatrixF32 {
 public:
  MatrixF32() = default;

  /// Re-quantizes from the fp64 source. Allocates only when the shape
  /// changes (cold path); steady-state sweeps re-fill the same buffer.
  void sync(const Matrix& src) {
    if (rows_ != src.rows() || cols_ != src.cols()) {
      rows_ = src.rows();
      cols_ = src.cols();
      // parpp-lint: allow(alloc) — shape change only; steady state re-fills
      data_.resize(static_cast<std::size_t>(rows_ * cols_));
    }
    const double* PARPP_RESTRICT s = src.data();
    float* PARPP_RESTRICT d = data_.data();
    const index_t n = rows_ * cols_;
#pragma omp simd
    for (index_t i = 0; i < n; ++i) d[i] = static_cast<float>(s[i]);
  }

  [[nodiscard]] index_t rows() const { return rows_; }
  [[nodiscard]] index_t cols() const { return cols_; }
  [[nodiscard]] index_t size() const { return rows_ * cols_; }
  [[nodiscard]] bool empty() const { return data_.empty(); }

  [[nodiscard]] const float* data() const { return data_.data(); }
  [[nodiscard]] const float* row(index_t i) const {
    PARPP_ASSERT(i >= 0 && i < rows_, "MatrixF32::row: bad row ", i);
    return data_.data() + i * cols_;
  }

 private:
  index_t rows_ = 0;
  index_t cols_ = 0;
  std::vector<float> data_;
};

/// Element scalar of a factor-matrix type — the storage type kernels load
/// before widening to double.
template <typename MatT>
using matrix_scalar_t = std::remove_cv_t<
    std::remove_pointer_t<decltype(std::declval<const MatT&>().data())>>;

/// Refreshes a bank of mirrors from the fp64 factors (resizing the vector
/// itself only when the factor count changes).
inline void sync_mirrors(const std::vector<Matrix>& src,
                         std::vector<MatrixF32>& dst) {
  // parpp-lint: allow(alloc) — factor-count change only (cold)
  if (dst.size() != src.size()) dst.resize(src.size());
  for (std::size_t i = 0; i < src.size(); ++i) dst[i].sync(src[i]);
}

/// Workspace lease size (in doubles — the arena's native unit) for `n`
/// floats. Rounds up, so an fp32 lease of n elements and an fp64 lease of
/// n elements carry *different* capacity keys (ceil(n/2) vs n) and can
/// never be confused for one another in the free list.
[[nodiscard]] constexpr index_t f32_lease_doubles(index_t n) {
  return (n + 1) / 2;
}

/// View a (double-granular) workspace lease as float scratch.
[[nodiscard]] inline float* as_f32(util::KernelWorkspace::Lease& lease) {
  return reinterpret_cast<float*>(lease.data());
}

/// Dispatches a runtime CP rank to a compile-time register-block width.
/// The blocked kernels instantiate R ∈ {8, 16, 32} with exact trip counts
/// (the autovectorizer fully unrolls the rank loop into registers); every
/// other rank takes the generic `0` instantiation with a runtime bound.
template <typename Fn>
decltype(auto) rank_dispatch(index_t r, Fn&& fn) {
  switch (r) {
    case 8:
      return fn(std::integral_constant<int, 8>{});
    case 16:
      return fn(std::integral_constant<int, 16>{});
    case 32:
      return fn(std::integral_constant<int, 32>{});
    default:
      return fn(std::integral_constant<int, 0>{});
  }
}

}  // namespace parpp::la
