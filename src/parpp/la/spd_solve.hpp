// SPD solve with ridge retry and pseudo-inverse fallback — the ALS factor
// update kernel.
#pragma once

#include <cstdint>

#include "parpp/la/matrix.hpp"
#include "parpp/util/profile.hpp"

namespace parpp::la {

/// Thread-local breakdown counters for solve_gram. Drivers snapshot the
/// counters before a sweep and diff after, turning silent numerical rescue
/// paths into reportable recovery-log events (each simulated rank is its
/// own thread, so parallel drivers see exactly their rank's solves).
struct SpdStats {
  std::uint64_t cholesky_failures = 0;  ///< Cholesky rejected the Gram
  std::uint64_t ridge_recoveries = 0;   ///< ridge-regularized retry worked
  std::uint64_t pinv_fallbacks = 0;     ///< fell through to eig pseudo-inverse
  std::uint64_t nonfinite_grams = 0;    ///< G had NaN/Inf; zero solve returned
};

[[nodiscard]] SpdStats& spd_stats();

/// Computes X = M * G† where G is symmetric positive (semi-)definite R x R
/// and M is s x R — the CP-ALS update A(n) = M(n) Γ(n)† (Algorithm 1 line 8).
///
/// Fast path: Cholesky of G and s independent two-triangular solves
/// (parallel over rows of M). If G is not numerically PD, retries with an
/// escalating ridge G + λI (λ relative to the mean diagonal) — the standard
/// ALS regularization for an ill-conditioned Gram, and exact in the limit
/// λ→0 — before falling back to a Jacobi eigendecomposition pseudo-inverse
/// with relative cutoff `rcond`. A non-finite G short-circuits to a zero
/// matrix (the Jacobi iteration is not NaN-safe); the per-sweep health
/// checks in the drivers observe the NaN Gram itself and roll back. Every
/// rescue path bumps spd_stats(). Work is charged to Kernel::kSolve in
/// `profile`.
[[nodiscard]] Matrix solve_gram(const Matrix& g, const Matrix& m,
                                Profile* profile = nullptr,
                                double rcond = 1e-12);

}  // namespace parpp::la
