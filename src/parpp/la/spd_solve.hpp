// SPD solve with pseudo-inverse fallback — the ALS factor update kernel.
#pragma once

#include "parpp/la/matrix.hpp"
#include "parpp/util/profile.hpp"

namespace parpp::la {

/// Computes X = M * G† where G is symmetric positive (semi-)definite R x R
/// and M is s x R — the CP-ALS update A(n) = M(n) Γ(n)† (Algorithm 1 line 8).
///
/// Fast path: Cholesky of G and s independent two-triangular solves
/// (parallel over rows of M). If G is not numerically PD, falls back to a
/// Jacobi eigendecomposition pseudo-inverse with relative cutoff `rcond`.
/// Work is charged to Kernel::kSolve in `profile`.
[[nodiscard]] Matrix solve_gram(const Matrix& g, const Matrix& m,
                                Profile* profile = nullptr,
                                double rcond = 1e-12);

}  // namespace parpp::la
