#include "parpp/la/eig_jacobi.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace parpp::la {

SymmetricEig eig_symmetric(const Matrix& a, int max_sweeps) {
  PARPP_CHECK(a.rows() == a.cols(), "eig_symmetric: matrix must be square");
  const index_t n = a.rows();
  Matrix m = a;
  Matrix v = identity(n);

  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    double off = 0.0;
    for (index_t p = 0; p < n; ++p)
      for (index_t q = p + 1; q < n; ++q) off += m(p, q) * m(p, q);
    if (off < 1e-28 * std::max(1.0, m.frobenius_norm())) break;

    for (index_t p = 0; p < n - 1; ++p) {
      for (index_t q = p + 1; q < n; ++q) {
        const double apq = m(p, q);
        if (std::abs(apq) < 1e-300) continue;
        const double app = m(p, p), aqq = m(q, q);
        const double tau = (aqq - app) / (2.0 * apq);
        const double t = (tau >= 0.0 ? 1.0 : -1.0) /
                         (std::abs(tau) + std::sqrt(1.0 + tau * tau));
        const double c = 1.0 / std::sqrt(1.0 + t * t);
        const double s = t * c;
        // Apply rotation J(p,q,theta) on both sides of M and to V columns.
        for (index_t k = 0; k < n; ++k) {
          const double mkp = m(k, p), mkq = m(k, q);
          m(k, p) = c * mkp - s * mkq;
          m(k, q) = s * mkp + c * mkq;
        }
        for (index_t k = 0; k < n; ++k) {
          const double mpk = m(p, k), mqk = m(q, k);
          m(p, k) = c * mpk - s * mqk;
          m(q, k) = s * mpk + c * mqk;
        }
        for (index_t k = 0; k < n; ++k) {
          const double vkp = v(k, p), vkq = v(k, q);
          v(k, p) = c * vkp - s * vkq;
          v(k, q) = s * vkp + c * vkq;
        }
      }
    }
  }

  // Sort ascending by eigenvalue, permuting eigenvector columns to match.
  std::vector<index_t> perm(static_cast<std::size_t>(n));
  std::iota(perm.begin(), perm.end(), index_t{0});
  std::sort(perm.begin(), perm.end(),
            [&](index_t i, index_t j) { return m(i, i) < m(j, j); });

  SymmetricEig out;
  out.eigenvalues.resize(static_cast<std::size_t>(n));
  out.eigenvectors = Matrix(n, n);
  for (index_t j = 0; j < n; ++j) {
    out.eigenvalues[static_cast<std::size_t>(j)] = m(perm[j], perm[j]);
    for (index_t i = 0; i < n; ++i) out.eigenvectors(i, j) = v(i, perm[j]);
  }
  return out;
}

}  // namespace parpp::la
