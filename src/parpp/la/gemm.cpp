#include "parpp/la/gemm.hpp"

#include <omp.h>

#include <algorithm>

#include "parpp/util/omp_sync.hpp"
#include "parpp/util/workspace.hpp"

namespace parpp::la {

namespace {

// Cache-block sizes tuned for ~32 KiB L1 / 1 MiB L2 per core; not critical,
// the library only needs a consistent compute-bound GEMM.
constexpr index_t kBlockM = 64;
constexpr index_t kBlockN = 128;
constexpr index_t kBlockK = 256;

// Register-tile extents for the micro-kernel: a kTileM x kTileN accumulator
// lives in vector registers across the whole k loop, so C is touched once
// per tile instead of once per rank-1 update.
constexpr index_t kTileM = 4;
constexpr index_t kTileN = 16;

#if defined(__GNUC__) || defined(__clang__)
// 4-wide double vectors with unaligned (8-byte) loads; the compiler lowers
// these to the widest FMA the target has, or scalar pairs without SIMD.
// Explicit vectors matter here: with a runtime lda the autovectorizer
// refuses to keep the accumulator tile in registers (measured >10x slower).
using v4df = double __attribute__((vector_size(32), aligned(8)));
constexpr index_t kTileNV = kTileN / 4;

inline void micro_tile(index_t kb, double alpha, const double* a, index_t lda,
                       const double* b, index_t ldb, double* c, index_t ldc) {
  v4df acc[kTileM][kTileNV] = {};
  for (index_t l = 0; l < kb; ++l) {
    const double* brow = b + l * ldb;
    v4df bv[kTileNV];
    for (index_t tv = 0; tv < kTileNV; ++tv)
      bv[tv] = *reinterpret_cast<const v4df*>(brow + 4 * tv);
    for (index_t ti = 0; ti < kTileM; ++ti) {
      const double s = a[ti * lda + l];
      const v4df av = {s, s, s, s};
      for (index_t tv = 0; tv < kTileNV; ++tv) acc[ti][tv] += av * bv[tv];
    }
  }
  for (index_t ti = 0; ti < kTileM; ++ti) {
    double* crow = c + ti * ldc;
    for (index_t tv = 0; tv < kTileNV; ++tv) {
      v4df cv = *reinterpret_cast<v4df*>(crow + 4 * tv);
      cv += alpha * acc[ti][tv];
      *reinterpret_cast<v4df*>(crow + 4 * tv) = cv;
    }
  }
}
#else
inline void micro_tile(index_t kb, double alpha, const double* a, index_t lda,
                       const double* b, index_t ldb, double* c, index_t ldc) {
  double acc[kTileM][kTileN] = {};
  for (index_t l = 0; l < kb; ++l) {
    const double* brow = b + l * ldb;
    for (index_t ti = 0; ti < kTileM; ++ti) {
      const double av = a[ti * lda + l];
      for (index_t tj = 0; tj < kTileN; ++tj) acc[ti][tj] += av * brow[tj];
    }
  }
  for (index_t ti = 0; ti < kTileM; ++ti) {
    double* crow = c + ti * ldc;
    for (index_t tj = 0; tj < kTileN; ++tj) crow[tj] += alpha * acc[ti][tj];
  }
}
#endif

// Generic edge kernel: C[i,:] += alpha * A[i,l] * B[l,:] with the j-loop
// vectorizable.
inline void edge_kernel(index_t mb, index_t nb, index_t kb, double alpha,
                        const double* a, index_t lda, const double* b,
                        index_t ldb, double* c, index_t ldc) {
  for (index_t i = 0; i < mb; ++i) {
    double* crow = c + i * ldc;
    const double* arow = a + i * lda;
    for (index_t l = 0; l < kb; ++l) {
      const double av = alpha * arow[l];
      if (av == 0.0) continue;
      const double* brow = b + l * ldb;
      for (index_t j = 0; j < nb; ++j) crow[j] += av * brow[j];
    }
  }
}

// Inner kernel on one (mb x nb x kb) block with both operands row-major
// (A mb x kb, B kb x nb): full register tiles take the fast path, ragged
// edges fall back to the generic kernel.
inline void block_kernel(index_t mb, index_t nb, index_t kb, double alpha,
                         const double* a, index_t lda, const double* b,
                         index_t ldb, double* c, index_t ldc) {
  const index_t mt = mb / kTileM * kTileM;
  const index_t nt = nb / kTileN * kTileN;
  for (index_t i = 0; i < mt; i += kTileM) {
    for (index_t j = 0; j < nt; j += kTileN)
      micro_tile(kb, alpha, a + i * lda, lda, b + j, ldb, c + i * ldc + j,
                 ldc);
    if (nt < nb)
      edge_kernel(kTileM, nb - nt, kb, alpha, a + i * lda, lda, b + nt, ldb,
                  c + i * ldc + nt, ldc);
  }
  if (mt < mb)
    edge_kernel(mb - mt, nb, kb, alpha, a + mt * lda, lda, b, ldb,
                c + mt * ldc, ldc);
}

// Packs the (mb x kb) block of op(A) starting at logical (i0, l0) into
// contiguous row-major scratch. For the transposed case this turns the
// strided column walk into a streaming store once per block instead of once
// per inner-loop pass.
inline void pack_a(index_t mb, index_t kb, const double* a, index_t lda,
                   Trans ta, index_t i0, index_t l0, double* dst) {
  if (ta == Trans::kNo) {
    const double* src = a + i0 * lda + l0;
    for (index_t i = 0; i < mb; ++i)
      std::copy(src + i * lda, src + i * lda + kb, dst + i * kb);
  } else {
    const double* src = a + l0 * lda + i0;  // physical (kb x mb)
    for (index_t i = 0; i < mb; ++i)
      for (index_t l = 0; l < kb; ++l) dst[i * kb + l] = src[l * lda + i];
  }
}

inline void pack_b(index_t kb, index_t nb, const double* b, index_t ldb,
                   Trans tb, index_t l0, index_t j0, double* dst) {
  if (tb == Trans::kNo) {
    const double* src = b + l0 * ldb + j0;
    for (index_t l = 0; l < kb; ++l)
      std::copy(src + l * ldb, src + l * ldb + nb, dst + l * nb);
  } else {
    const double* src = b + j0 * ldb + l0;  // physical (nb x kb)
    for (index_t l = 0; l < kb; ++l)
      for (index_t j = 0; j < nb; ++j) dst[l * nb + j] = src[j * ldb + l];
  }
}

}  // namespace

void gemm_raw(Trans trans_a, Trans trans_b, index_t m, index_t n, index_t k,
              double alpha, const double* a, index_t lda, const double* b,
              index_t ldb, double beta, double* c, index_t ldc) {
  PARPP_CHECK(m >= 0 && n >= 0 && k >= 0, "gemm: negative dimension");
  if (m == 0 || n == 0) return;

  if (beta != 1.0) {
    for (index_t i = 0; i < m; ++i) {
      double* crow = c + i * ldc;
      if (beta == 0.0)
        std::fill(crow, crow + n, 0.0);
      else
        for (index_t j = 0; j < n; ++j) crow[j] *= beta;
    }
  }
  if (k == 0 || alpha == 0.0) return;

  // Parallelize over M blocks; each thread owns disjoint C rows. Transposed
  // operands are repacked block-wise into each worker's thread-local
  // workspace (streaming loads in the kernel, zero steady-state
  // allocations); non-transposed A blocks are consumed in place.
#pragma omp parallel for schedule(static) if (m * n * k > (index_t{1} << 16))
  for (index_t i0 = 0; i0 < m; i0 += kBlockM) {
    const index_t mb = std::min(kBlockM, m - i0);
    auto a_scratch = trans_a == Trans::kYes
                         ? util::KernelWorkspace::thread_default().lease(
                               kBlockM * kBlockK)
                         : util::KernelWorkspace::Lease();
    auto b_scratch = trans_b == Trans::kYes
                         ? util::KernelWorkspace::thread_default().lease(
                               kBlockK * kBlockN)
                         : util::KernelWorkspace::Lease();
    for (index_t l0 = 0; l0 < k; l0 += kBlockK) {
      const index_t kb = std::min(kBlockK, k - l0);
      const double* ablk;
      index_t ablk_ld;
      if (trans_a == Trans::kYes) {
        pack_a(mb, kb, a, lda, trans_a, i0, l0, a_scratch.data());
        ablk = a_scratch.data();
        ablk_ld = kb;
      } else {
        ablk = a + i0 * lda + l0;
        ablk_ld = lda;
      }
      for (index_t j0 = 0; j0 < n; j0 += kBlockN) {
        const index_t nb = std::min(kBlockN, n - j0);
        const double* bblk;
        index_t bblk_ld;
        if (trans_b == Trans::kYes) {
          pack_b(kb, nb, b, ldb, trans_b, l0, j0, b_scratch.data());
          bblk = b_scratch.data();
          bblk_ld = nb;
        } else {
          bblk = b + l0 * ldb + j0;
          bblk_ld = ldb;
        }
        block_kernel(mb, nb, kb, alpha, ablk, ablk_ld, bblk, bblk_ld,
                     c + i0 * ldc + j0, ldc);
      }
    }
  }
}

Matrix matmul(const Matrix& a, const Matrix& b, Trans trans_a, Trans trans_b) {
  const index_t m = trans_a == Trans::kNo ? a.rows() : a.cols();
  const index_t ka = trans_a == Trans::kNo ? a.cols() : a.rows();
  const index_t kb = trans_b == Trans::kNo ? b.rows() : b.cols();
  const index_t n = trans_b == Trans::kNo ? b.cols() : b.rows();
  PARPP_CHECK(ka == kb, "matmul: inner dimension mismatch ", ka, " vs ", kb);
  Matrix c(m, n);
  gemm_raw(trans_a, trans_b, m, n, ka, 1.0, a.data(), a.cols(), b.data(),
           b.cols(), 0.0, c.data(), c.cols());
  return c;
}

Matrix gram(const Matrix& a, Profile* profile, util::KernelWorkspace* ws) {
  const index_t n = a.cols();
  const index_t m = a.rows();
  Matrix s(n, n);
  if (n == 0) return s;
  ScopedProfile sp(profile ? *profile : Profile::thread_default(),
                   Kernel::kOther, static_cast<double>(m) * n * n);

  // Per-thread upper-triangle accumulators drawn from the workspace pool,
  // merged by a barrier-synchronized binary tree: log2(T) parallel rounds
  // instead of the serialized O(T · R²) critical-section chain.
  util::KernelWorkspace& wsp =
      ws ? *ws : util::KernelWorkspace::thread_default();
  const int maxt = omp_get_max_threads();
  const index_t nn = n * n;
  auto slab = wsp.lease(static_cast<index_t>(maxt) * nn);
  double* locals = slab.data();
  std::fill(locals, locals + static_cast<index_t>(maxt) * nn, 0.0);

  util::OmpJoinFence fence;
  fence.fork();
#pragma omp parallel
  {
    fence.enter();
    const int tid = omp_get_thread_num();
    const int nthreads = omp_get_num_threads();
    double* local = locals + static_cast<index_t>(tid) * nn;
#pragma omp for schedule(static) nowait
    for (index_t i = 0; i < m; ++i) {
      const double* row = a.row(i);
      for (index_t j = 0; j < n; ++j) {
        const double v = row[j];
        if (v == 0.0) continue;
        double* lrow = local + j * n;
        for (index_t l = j; l < n; ++l) lrow[l] += v * row[l];
      }
    }
    for (int stride = 1; stride < nthreads; stride *= 2) {
      // Each reduction round reads slabs the previous round wrote on other
      // threads; publish/observe restate the barrier edge for TSan.
      fence.publish();
#pragma omp barrier
      fence.observe();
      if (tid % (2 * stride) == 0 && tid + stride < nthreads) {
        const double* other = locals + static_cast<index_t>(tid + stride) * nn;
        for (index_t j = 0; j < n; ++j)
          for (index_t l = j; l < n; ++l)
            local[j * n + l] += other[j * n + l];
      }
    }
    fence.leave();
  }
  fence.join();

  for (index_t j = 0; j < n; ++j)
    for (index_t l = j; l < n; ++l) s(j, l) = locals[j * n + l];
  for (index_t j = 0; j < n; ++j)
    for (index_t l = 0; l < j; ++l) s(j, l) = s(l, j);
  return s;
}

}  // namespace parpp::la
