#include "parpp/la/gemm.hpp"

#include <omp.h>
#if defined(__AVX512F__)
#include <immintrin.h>
#endif

#include <algorithm>

#include "parpp/la/scalar.hpp"
#include "parpp/util/omp_sync.hpp"
#include "parpp/util/workspace.hpp"

namespace parpp::la {

namespace {

// Cache-block sizes tuned for ~32 KiB L1 / 1 MiB L2 per core; not critical,
// the library only needs a consistent compute-bound GEMM.
constexpr index_t kBlockM = 64;
constexpr index_t kBlockN = 128;
constexpr index_t kBlockK = 256;

// Register-tile extents for the micro-kernel: a kTileM x kTileN accumulator
// lives in vector registers across the whole k loop, so C is touched once
// per tile instead of once per rank-1 update. The vector lane width follows
// the target ISA: 512-bit accumulators (and the deeper 8-row tile the 32
// AVX-512 registers afford) under -march=native on AVX-512 hosts, 256-bit
// shapes everywhere else. Narrow panels (n in [8, 16), i.e. rank-8 MTTKRP)
// get their own 8-column register tile instead of falling through to the
// memory-accumulating edge kernel — that fall-through serialized R = 8 on a
// store-forward latency chain and left the fused MTTKRP far below stream
// bandwidth. Tile shape never changes summation order: each C element still
// accumulates over k in index order, so fp64 results are bit-for-bit
// independent of ISA and tile geometry.
#if defined(__GNUC__) || defined(__clang__)
#define PARPP_GEMM_GNU_VEC 1
#endif

#if defined(PARPP_GEMM_GNU_VEC) && defined(__AVX512F__)
constexpr index_t kVecW = 8;   // 512-bit lanes
constexpr index_t kTileM = 8;  // 8x16 tile: 16 of 32 vector registers
#else
constexpr index_t kVecW = 4;
constexpr index_t kTileM = 4;
#endif
constexpr index_t kTileN = 16;
constexpr index_t kTileNNarrow = 8;

#if defined(PARPP_GEMM_GNU_VEC)
// kVecW-wide double vectors with unaligned (8-byte) loads; the compiler
// lowers these to the widest FMA the target has, or scalar pairs without
// SIMD. Explicit vectors matter here: with a runtime lda the autovectorizer
// refuses to keep the accumulator tile in registers (measured >10x slower).
using vdf = double __attribute__((vector_size(kVecW * 8), aligned(8)));
// Half-width float shape (kVecW lanes): load shape for mixed-type tiles and
// the conversion granule between float accumulators and vdf.
using vsf = float __attribute__((vector_size(kVecW * 4), aligned(4)));
// Full-width float shape (2*kVecW lanes, same register width as vdf): the
// accumulator type of the all-fp32 micro-kernel below.
using vff = float __attribute__((vector_size(kVecW * 8), aligned(4)));

// Element-wise braces, not `vdf{} + s`: the zero-add idiom makes GCC emit a
// real vaddsd in the broadcast dependency chain, which halved the measured
// micro-kernel rate. These stay macros rather than vector-returning helper
// functions so non-AVX baseline builds don't trip the -Wpsabi vector-ABI
// warning. PARPP_VLOAD_WIDEN loads kVecW floats and widens: GCC lowers
// __builtin_convertvector on 8-wide lanes to an extract/insert dance
// (4 uops), so the AVX-512 shape uses the single-instruction vcvtps2pd.
#if defined(__AVX512F__)
#define PARPP_VBROADCAST(s) \
  vdf { (s), (s), (s), (s), (s), (s), (s), (s) }
#define PARPP_VLOAD_WIDEN(p) \
  static_cast<vdf>(_mm512_cvtps_pd(_mm256_loadu_ps(p)))
#define PARPP_VSPLATF(s)                                                 \
  vff {                                                                  \
    (s), (s), (s), (s), (s), (s), (s), (s), (s), (s), (s), (s), (s),    \
        (s), (s), (s)                                                    \
  }
#define PARPP_VSPLATH(s) \
  vsf { (s), (s), (s), (s), (s), (s), (s), (s) }
#define PARPP_VWIDEN(v) \
  static_cast<vdf>(_mm512_cvtps_pd(static_cast<__m256>(v)))
#pragma GCC diagnostic push
// GCC 12 flags the unused pass-through operand inside avx512fintrin.h.
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#else
#define PARPP_VBROADCAST(s) \
  vdf { (s), (s), (s), (s) }
#define PARPP_VLOAD_WIDEN(p) \
  __builtin_convertvector(*reinterpret_cast<const vsf*>(p), vdf)
#define PARPP_VSPLATF(s) \
  vff { (s), (s), (s), (s), (s), (s), (s), (s) }
#define PARPP_VSPLATH(s) \
  vsf { (s), (s), (s), (s) }
#define PARPP_VWIDEN(v) __builtin_convertvector((v), vdf)
#endif

// A and B keep their own storage types (the transposed path packs A to
// fp64, so SA can differ from SB); conversion happens at the load — a
// lane-wide convert for B, a scalar widen under the broadcast for A.
//
// The rotating software prefetch on the A rows is what lets large-operand
// GEMMs actually reach stream bandwidth: a narrow-n tile walks TM rows that
// sit lda elements apart, and with a block row set wider than the hardware
// prefetcher's stream table the k loop otherwise stalls on every line. One
// prefetch per k step, rotated across the tile's rows, keeps each row a few
// lines ahead for the cost of a single spare load slot.
template <index_t TM, index_t TN, typename SA, typename SB>
inline void micro_tile(index_t kb, double alpha, const SA* a, index_t lda,
                       const SB* b, index_t ldb, double* c, index_t ldc) {
  constexpr index_t NV = TN / kVecW;
  static_assert(NV * kVecW == TN, "tile width must be lane-multiple");
  vdf acc[TM][NV] = {};
  for (index_t l = 0; l < kb; ++l) {
    __builtin_prefetch(
        reinterpret_cast<const char*>(a + (l % TM) * lda + l) + 512);
    const SB* brow = b + l * ldb;
    vdf bv[NV];
    for (index_t tv = 0; tv < NV; ++tv) {
      if constexpr (std::is_same_v<SB, float>)
        bv[tv] = PARPP_VLOAD_WIDEN(brow + kVecW * tv);
      else
        bv[tv] = *reinterpret_cast<const vdf*>(brow + kVecW * tv);
    }
    for (index_t ti = 0; ti < TM; ++ti) {
      const double s = static_cast<double>(a[ti * lda + l]);
      const vdf av = PARPP_VBROADCAST(s);
      for (index_t tv = 0; tv < NV; ++tv) acc[ti][tv] += av * bv[tv];
    }
  }
  for (index_t ti = 0; ti < TM; ++ti) {
    double* crow = c + ti * ldc;
    for (index_t tv = 0; tv < NV; ++tv) {
      vdf cv = *reinterpret_cast<vdf*>(crow + kVecW * tv);
      cv += alpha * acc[ti][tv];
      *reinterpret_cast<vdf*>(crow + kVecW * tv) = cv;
    }
  }
}

// All-fp32 micro-kernel: both operands stored fp32 and the register tile
// accumulates in fp32 *within one k chunk* (kb <= 512 terms, see kBK in
// the driver), widened and added into the fp64 C tile once per chunk;
// across chunks C still accumulates in fp64. The extra rounding is bounded
// by the <= 512-term fp32 partial sums (~1e-6 relative), comfortably
// inside the fp32 lane's ~1e-5 parity contract. This is what makes the lane actually
// bandwidth-bound: A broadcasts stay single load uops (vbroadcastss) and
// each FMA carries twice the lanes. The alternatives both lose — widening
// under the broadcast makes the kernel convert-bound at half the fp64 rate,
// and a separate widening pack pass serializes the DRAM stream against the
// FMAs, so fp32 ran *slower* than fp64 despite half the bytes.
template <index_t TM, index_t TN>
inline void micro_tile_f32(index_t kb, double alpha, const float* a,
                           index_t lda, const float* b, index_t ldb,
                           double* c, index_t ldc) {
  constexpr index_t kVecWf = 2 * kVecW;
  if constexpr (TN % kVecWf == 0) {
    constexpr index_t NV = TN / kVecWf;
    vff acc[TM][NV] = {};
    for (index_t l = 0; l < kb; ++l) {
      __builtin_prefetch(
          reinterpret_cast<const char*>(a + (l % TM) * lda + l) + 512);
      const float* brow = b + l * ldb;
      vff bv[NV];
      for (index_t tv = 0; tv < NV; ++tv)
        bv[tv] = *reinterpret_cast<const vff*>(brow + kVecWf * tv);
      for (index_t ti = 0; ti < TM; ++ti) {
        const float s = a[ti * lda + l];
        const vff av = PARPP_VSPLATF(s);
        for (index_t tv = 0; tv < NV; ++tv) acc[ti][tv] += av * bv[tv];
      }
    }
    for (index_t ti = 0; ti < TM; ++ti) {
      double* crow = c + ti * ldc;
      for (index_t tv = 0; tv < NV; ++tv) {
        vsf half[2];
        __builtin_memcpy(half, &acc[ti][tv], sizeof(half));
        for (index_t h = 0; h < 2; ++h) {
          double* cpos = crow + kVecWf * tv + kVecW * h;
          vdf cv = *reinterpret_cast<vdf*>(cpos);
          cv += alpha * PARPP_VWIDEN(half[h]);
          *reinterpret_cast<vdf*>(cpos) = cv;
        }
      }
    }
  } else {
    // Narrow tile (an 8-column panel on AVX-512, i.e. rank-8 MTTKRP): one
    // half-width float accumulator per row.
    static_assert(TN == kVecW, "narrow fp32 tile is one half-width vector");
    vsf acc[TM] = {};
    for (index_t l = 0; l < kb; ++l) {
      __builtin_prefetch(
          reinterpret_cast<const char*>(a + (l % TM) * lda + l) + 512);
      const vsf bv = *reinterpret_cast<const vsf*>(b + l * ldb);
      for (index_t ti = 0; ti < TM; ++ti) {
        const float s = a[ti * lda + l];
        acc[ti] += PARPP_VSPLATH(s) * bv;
      }
    }
    for (index_t ti = 0; ti < TM; ++ti) {
      vdf cv = *reinterpret_cast<vdf*>(c + ti * ldc);
      cv += alpha * PARPP_VWIDEN(acc[ti]);
      *reinterpret_cast<vdf*>(c + ti * ldc) = cv;
    }
  }
}
#else
template <index_t TM, index_t TN, typename SA, typename SB>
inline void micro_tile(index_t kb, double alpha, const SA* a, index_t lda,
                       const SB* b, index_t ldb, double* c, index_t ldc) {
  double acc[TM][TN] = {};
  for (index_t l = 0; l < kb; ++l) {
    const SB* brow = b + l * ldb;
    for (index_t ti = 0; ti < TM; ++ti) {
      const double av = static_cast<double>(a[ti * lda + l]);
      for (index_t tj = 0; tj < TN; ++tj)
        acc[ti][tj] += av * static_cast<double>(brow[tj]);
    }
  }
  for (index_t ti = 0; ti < TM; ++ti) {
    double* crow = c + ti * ldc;
    for (index_t tj = 0; tj < TN; ++tj) crow[tj] += alpha * acc[ti][tj];
  }
}

// Without GNU vectors the all-fp32 tile has no register-width story to
// exploit; fall through to the generic fp64-accumulating tile.
template <index_t TM, index_t TN>
inline void micro_tile_f32(index_t kb, double alpha, const float* a,
                           index_t lda, const float* b, index_t ldb,
                           double* c, index_t ldc) {
  micro_tile<TM, TN, float, float>(kb, alpha, a, lda, b, ldb, c, ldc);
}
#endif

// Generic edge kernel: C[i,:] += alpha * A[i,l] * B[l,:] with the j-loop
// vectorizable.
template <typename SA, typename SB>
inline void edge_kernel(index_t mb, index_t nb, index_t kb, double alpha,
                        const SA* a, index_t lda, const SB* b, index_t ldb,
                        double* c, index_t ldc) {
  for (index_t i = 0; i < mb; ++i) {
    double* PARPP_RESTRICT crow = c + i * ldc;
    const SA* arow = a + i * lda;
    for (index_t l = 0; l < kb; ++l) {
      const double av = alpha * static_cast<double>(arow[l]);
      if (av == 0.0) continue;
      const SB* PARPP_RESTRICT brow = b + l * ldb;
#pragma omp simd
      for (index_t j = 0; j < nb; ++j)
        crow[j] += av * static_cast<double>(brow[j]);
    }
  }
}

// Inner kernel on one (mb x nb x kb) block with both operands row-major
// (A mb x kb, B kb x nb): full register tiles take the fast path, ragged
// edges fall back to the generic kernel.
template <typename SA, typename SB>
inline void block_kernel(index_t mb, index_t nb, index_t kb, double alpha,
                         const SA* a, index_t lda, const SB* b, index_t ldb,
                         double* c, index_t ldc) {
  const index_t mt = mb / kTileM * kTileM;
  const index_t nt = nb / kTileN * kTileN;
  // At most one narrow register tile mops up columns [nt, nt8) so an 8-wide
  // panel (rank-8 MTTKRP) never reaches the memory-bound edge kernel.
  const index_t nt8 = nt + (nb - nt) / kTileNNarrow * kTileNNarrow;
  constexpr bool kAllF32 =
      std::is_same_v<SA, float> && std::is_same_v<SB, float>;
  for (index_t i = 0; i < mt; i += kTileM) {
    for (index_t j = 0; j < nt; j += kTileN) {
      if constexpr (kAllF32)
        micro_tile_f32<kTileM, kTileN>(kb, alpha, a + i * lda, lda, b + j,
                                       ldb, c + i * ldc + j, ldc);
      else
        micro_tile<kTileM, kTileN>(kb, alpha, a + i * lda, lda, b + j, ldb,
                                   c + i * ldc + j, ldc);
    }
    if (nt8 > nt) {
      if constexpr (kAllF32)
        micro_tile_f32<kTileM, kTileNNarrow>(kb, alpha, a + i * lda, lda,
                                             b + nt, ldb, c + i * ldc + nt,
                                             ldc);
      else
        micro_tile<kTileM, kTileNNarrow>(kb, alpha, a + i * lda, lda, b + nt,
                                         ldb, c + i * ldc + nt, ldc);
    }
    if (nt8 < nb)
      edge_kernel(kTileM, nb - nt8, kb, alpha, a + i * lda, lda, b + nt8, ldb,
                  c + i * ldc + nt8, ldc);
  }
  if (mt < mb)
    edge_kernel(mb - mt, nb, kb, alpha, a + mt * lda, lda, b, ldb,
                c + mt * ldc, ldc);
}

// Packs the (mb x kb) block of op(A) starting at logical (i0, l0) into
// contiguous row-major fp64 scratch — used only for transposed A, where it
// turns the strided column walk into a streaming store once per block
// instead of once per inner-loop pass (and widens fp32 inputs as it goes,
// so the mixed-type micro_tile sees plain doubles on the broadcast side).
template <typename S>
inline void pack_a(index_t mb, index_t kb, const S* a, index_t lda, Trans ta,
                   index_t i0, index_t l0, double* dst) {
  if (ta == Trans::kNo) {
    const S* src = a + i0 * lda + l0;
    for (index_t i = 0; i < mb; ++i) {
      const S* PARPP_RESTRICT srow = src + i * lda;
      double* PARPP_RESTRICT drow = dst + i * kb;
      // Keep the short per-row runs ahead of the stream: the hardware
      // prefetcher restarts its ramp at every row jump. One touch per line,
      // outside the copy loop so the copy itself stays vectorized.
      constexpr index_t kLine = 64 / static_cast<index_t>(sizeof(S));
      for (index_t l = 0; l < kb; l += kLine)
        __builtin_prefetch(srow + l + 2 * kLine);
#pragma omp simd
      for (index_t l = 0; l < kb; ++l)
        drow[l] = static_cast<double>(srow[l]);
    }
  } else {
    const S* src = a + l0 * lda + i0;  // physical (kb x mb)
    for (index_t i = 0; i < mb; ++i)
      for (index_t l = 0; l < kb; ++l)
        dst[i * kb + l] = static_cast<double>(src[l * lda + i]);
  }
}

template <typename S>
inline void pack_b(index_t kb, index_t nb, const S* b, index_t ldb, Trans tb,
                   index_t l0, index_t j0, S* dst) {
  if (tb == Trans::kNo) {
    const S* src = b + l0 * ldb + j0;
    for (index_t l = 0; l < kb; ++l)
      std::copy(src + l * ldb, src + l * ldb + nb, dst + l * nb);
  } else {
    const S* src = b + j0 * ldb + l0;  // physical (nb x kb)
    for (index_t l = 0; l < kb; ++l)
      for (index_t j = 0; j < nb; ++j) dst[l * nb + j] = src[j * ldb + l];
  }
}

// Lease a pack buffer of `n` elements of S from the calling thread's
// workspace (the arena is double-granular; fp32 packs round up).
template <typename S>
struct PackScratch {
  util::KernelWorkspace::Lease lease;
  S* data = nullptr;
  void acquire(index_t n) {
    if constexpr (std::is_same_v<S, float>) {
      lease = util::KernelWorkspace::thread_default().lease(
          f32_lease_doubles(n));
      data = as_f32(lease);
    } else {
      lease = util::KernelWorkspace::thread_default().lease(n);
      data = lease.data();
    }
  }
};

template <typename S>
void gemm_raw_impl(Trans trans_a, Trans trans_b, index_t m, index_t n,
                   index_t k, double alpha, const S* a, index_t lda,
                   const S* b, index_t ldb, double beta, double* c,
                   index_t ldc) {
  PARPP_CHECK(m >= 0 && n >= 0 && k >= 0, "gemm: negative dimension");
  if (m == 0 || n == 0) return;

  if (beta != 1.0) {
    for (index_t i = 0; i < m; ++i) {
      double* crow = c + i * ldc;
      if (beta == 0.0)
        std::fill(crow, crow + n, 0.0);
      else
        for (index_t j = 0; j < n; ++j) crow[j] *= beta;
    }
  }
  if (k == 0 || alpha == 0.0) return;

  // Parallelize over M blocks; each thread owns disjoint C rows. Transposed
  // operands are repacked block-wise into each worker's thread-local
  // workspace (streaming loads in the kernel, zero steady-state
  // allocations); non-transposed A blocks — fp64 or fp32 — are consumed in
  // place, so the all-fp32 path is a single pass over the stored bytes
  // (micro_tile_f32 above carries the precision story).
  //
  // fp32 operands take a double-length k chunk: same cache footprint in
  // bytes, and the MTTKRP slice shapes (k a few hundred) then run as one
  // chunk instead of a full chunk plus a short strided tail pass — the
  // tail re-walk was the gap between the interior-mode fp32 lane and
  // stream bandwidth. The fp64 chunk length is unchanged (fp64 summation
  // stays bit-for-bit).
  constexpr index_t kBK =
      std::is_same_v<S, float> ? 2 * kBlockK : kBlockK;
#pragma omp parallel for schedule(static) if (m * n * k > (index_t{1} << 16))
  for (index_t i0 = 0; i0 < m; i0 += kBlockM) {
    const index_t mb = std::min(kBlockM, m - i0);
    util::KernelWorkspace::Lease a_scratch;
    if (trans_a == Trans::kYes)
      a_scratch =
          util::KernelWorkspace::thread_default().lease(kBlockM * kBK);
    PackScratch<S> b_scratch;
    if (trans_b == Trans::kYes) b_scratch.acquire(kBK * kBlockN);
    for (index_t l0 = 0; l0 < k; l0 += kBK) {
      const index_t kb = std::min(kBK, k - l0);
      for (index_t j0 = 0; j0 < n; j0 += kBlockN) {
        const index_t nb = std::min(kBlockN, n - j0);
        const S* bblk;
        index_t bblk_ld;
        if (trans_b == Trans::kYes) {
          pack_b(kb, nb, b, ldb, trans_b, l0, j0, b_scratch.data);
          bblk = b_scratch.data;
          bblk_ld = nb;
        } else {
          bblk = b + l0 * ldb + j0;
          bblk_ld = ldb;
        }
        if (trans_a == Trans::kYes) {
          if (j0 == 0)
            pack_a(mb, kb, a, lda, trans_a, i0, l0, a_scratch.data());
          block_kernel(mb, nb, kb, alpha, a_scratch.data(), kb, bblk, bblk_ld,
                       c + i0 * ldc + j0, ldc);
        } else {
          block_kernel(mb, nb, kb, alpha, a + i0 * lda + l0, lda, bblk,
                       bblk_ld, c + i0 * ldc + j0, ldc);
        }
      }
    }
  }
}

}  // namespace

void gemm_raw(Trans trans_a, Trans trans_b, index_t m, index_t n, index_t k,
              double alpha, const double* a, index_t lda, const double* b,
              index_t ldb, double beta, double* c, index_t ldc) {
  gemm_raw_impl<double>(trans_a, trans_b, m, n, k, alpha, a, lda, b, ldb,
                        beta, c, ldc);
}

void gemm_raw_f32(Trans trans_a, Trans trans_b, index_t m, index_t n,
                  index_t k, double alpha, const float* a, index_t lda,
                  const float* b, index_t ldb, double beta, double* c,
                  index_t ldc) {
  gemm_raw_impl<float>(trans_a, trans_b, m, n, k, alpha, a, lda, b, ldb,
                       beta, c, ldc);
}

Matrix matmul(const Matrix& a, const Matrix& b, Trans trans_a, Trans trans_b) {
  const index_t m = trans_a == Trans::kNo ? a.rows() : a.cols();
  const index_t ka = trans_a == Trans::kNo ? a.cols() : a.rows();
  const index_t kb = trans_b == Trans::kNo ? b.rows() : b.cols();
  const index_t n = trans_b == Trans::kNo ? b.cols() : b.rows();
  PARPP_CHECK(ka == kb, "matmul: inner dimension mismatch ", ka, " vs ", kb);
  Matrix c(m, n);
  gemm_raw(trans_a, trans_b, m, n, ka, 1.0, a.data(), a.cols(), b.data(),
           b.cols(), 0.0, c.data(), c.cols());
  return c;
}

Matrix gram(const Matrix& a, Profile* profile, util::KernelWorkspace* ws) {
  const index_t n = a.cols();
  const index_t m = a.rows();
  Matrix s(n, n);
  if (n == 0) return s;
  ScopedProfile sp(profile ? *profile : Profile::thread_default(),
                   Kernel::kOther, static_cast<double>(m) * n * n);

  // Per-thread upper-triangle accumulators drawn from the workspace pool,
  // merged by a barrier-synchronized binary tree: log2(T) parallel rounds
  // instead of the serialized O(T · R²) critical-section chain.
  util::KernelWorkspace& wsp =
      ws ? *ws : util::KernelWorkspace::thread_default();
  const int maxt = omp_get_max_threads();
  const index_t nn = n * n;
  auto slab = wsp.lease(static_cast<index_t>(maxt) * nn);
  double* locals = slab.data();
  std::fill(locals, locals + static_cast<index_t>(maxt) * nn, 0.0);

  util::OmpJoinFence fence;
  fence.fork();
#pragma omp parallel
  {
    fence.enter();
    const int tid = omp_get_thread_num();
    const int nthreads = omp_get_num_threads();
    double* local = locals + static_cast<index_t>(tid) * nn;
#pragma omp for schedule(static) nowait
    for (index_t i = 0; i < m; ++i) {
      const double* row = a.row(i);
      for (index_t j = 0; j < n; ++j) {
        const double v = row[j];
        if (v == 0.0) continue;
        double* lrow = local + j * n;
        for (index_t l = j; l < n; ++l) lrow[l] += v * row[l];
      }
    }
    for (int stride = 1; stride < nthreads; stride *= 2) {
      // Each reduction round reads slabs the previous round wrote on other
      // threads; publish/observe restate the barrier edge for TSan.
      fence.publish();
#pragma omp barrier
      fence.observe();
      if (tid % (2 * stride) == 0 && tid + stride < nthreads) {
        const double* other = locals + static_cast<index_t>(tid + stride) * nn;
        for (index_t j = 0; j < n; ++j)
          for (index_t l = j; l < n; ++l)
            local[j * n + l] += other[j * n + l];
      }
    }
    fence.leave();
  }
  fence.join();

  for (index_t j = 0; j < n; ++j)
    for (index_t l = j; l < n; ++l) s(j, l) = locals[j * n + l];
  for (index_t j = 0; j < n; ++j)
    for (index_t l = 0; l < j; ++l) s(j, l) = s(l, j);
  return s;
}

}  // namespace parpp::la
