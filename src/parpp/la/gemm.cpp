#include "parpp/la/gemm.hpp"

#include <algorithm>

namespace parpp::la {

namespace {

// Cache-block sizes tuned for ~32 KiB L1 / 1 MiB L2 per core; not critical,
// the library only needs a consistent compute-bound GEMM.
constexpr index_t kBlockM = 64;
constexpr index_t kBlockN = 128;
constexpr index_t kBlockK = 256;

inline double elem(const double* p, index_t ld, Trans t, index_t i, index_t j) {
  return t == Trans::kNo ? p[i * ld + j] : p[j * ld + i];
}

// Inner kernel on one (mb x nb x kb) block for the no-transpose-A case:
// accumulates C[i,:] += A[i,l] * Brow(l,:) with the j-loop vectorizable.
inline void block_kernel(index_t mb, index_t nb, index_t kb, double alpha,
                         const double* a, index_t lda, Trans ta,
                         const double* b, index_t ldb, Trans tb, double* c,
                         index_t ldc) {
  for (index_t i = 0; i < mb; ++i) {
    double* crow = c + i * ldc;
    for (index_t l = 0; l < kb; ++l) {
      const double av = alpha * elem(a, lda, ta, i, l);
      if (av == 0.0) continue;
      if (tb == Trans::kNo) {
        const double* brow = b + l * ldb;
        for (index_t j = 0; j < nb; ++j) crow[j] += av * brow[j];
      } else {
        const double* bcol = b + l;  // op(B)(l,j) = B(j,l)
        for (index_t j = 0; j < nb; ++j) crow[j] += av * bcol[j * ldb];
      }
    }
  }
}

}  // namespace

void gemm_raw(Trans trans_a, Trans trans_b, index_t m, index_t n, index_t k,
              double alpha, const double* a, index_t lda, const double* b,
              index_t ldb, double beta, double* c, index_t ldc) {
  PARPP_CHECK(m >= 0 && n >= 0 && k >= 0, "gemm: negative dimension");
  if (m == 0 || n == 0) return;

  if (beta != 1.0) {
    for (index_t i = 0; i < m; ++i) {
      double* crow = c + i * ldc;
      if (beta == 0.0)
        std::fill(crow, crow + n, 0.0);
      else
        for (index_t j = 0; j < n; ++j) crow[j] *= beta;
    }
  }
  if (k == 0 || alpha == 0.0) return;

  // Parallelize over M blocks; each thread owns disjoint C rows.
#pragma omp parallel for schedule(static) if (m * n * k > (index_t{1} << 16))
  for (index_t i0 = 0; i0 < m; i0 += kBlockM) {
    const index_t mb = std::min(kBlockM, m - i0);
    for (index_t l0 = 0; l0 < k; l0 += kBlockK) {
      const index_t kb = std::min(kBlockK, k - l0);
      for (index_t j0 = 0; j0 < n; j0 += kBlockN) {
        const index_t nb = std::min(kBlockN, n - j0);
        const double* ablk = trans_a == Trans::kNo ? a + i0 * lda + l0
                                                   : a + l0 * lda + i0;
        const double* bblk = trans_b == Trans::kNo ? b + l0 * ldb + j0
                                                   : b + j0 * ldb + l0;
        block_kernel(mb, nb, kb, alpha, ablk, lda, trans_a, bblk, ldb, trans_b,
                     c + i0 * ldc + j0, ldc);
      }
    }
  }
}

Matrix matmul(const Matrix& a, const Matrix& b, Trans trans_a, Trans trans_b) {
  const index_t m = trans_a == Trans::kNo ? a.rows() : a.cols();
  const index_t ka = trans_a == Trans::kNo ? a.cols() : a.rows();
  const index_t kb = trans_b == Trans::kNo ? b.rows() : b.cols();
  const index_t n = trans_b == Trans::kNo ? b.cols() : b.rows();
  PARPP_CHECK(ka == kb, "matmul: inner dimension mismatch ", ka, " vs ", kb);
  Matrix c(m, n);
  gemm_raw(trans_a, trans_b, m, n, ka, 1.0, a.data(), a.cols(), b.data(),
           b.cols(), 0.0, c.data(), c.cols());
  return c;
}

Matrix gram(const Matrix& a, Profile* profile) {
  const index_t n = a.cols();
  const index_t m = a.rows();
  Matrix s(n, n);
  {
    ScopedProfile sp(profile ? *profile : Profile::thread_default(),
                     Kernel::kOther,
                     static_cast<double>(m) * n * n);
    // Upper triangle via dot products over contiguous columns of A^T view;
    // A is row-major so we accumulate row-by-row to stay streaming.
#pragma omp parallel for schedule(static) if (m * n * n > (index_t{1} << 16))
    for (index_t j = 0; j < n; ++j) {
      for (index_t l = j; l < n; ++l) s(j, l) = 0.0;
    }
    // Serial accumulation over rows, parallel over output pairs per chunk.
    // For typical shapes (m >> n == R <= a few hundred) this is fast enough.
#pragma omp parallel
    {
      Matrix local(n, n);
#pragma omp for schedule(static) nowait
      for (index_t i = 0; i < m; ++i) {
        const double* row = a.row(i);
        for (index_t j = 0; j < n; ++j) {
          const double v = row[j];
          if (v == 0.0) continue;
          double* lrow = local.row(j);
          for (index_t l = j; l < n; ++l) lrow[l] += v * row[l];
        }
      }
#pragma omp critical
      {
        for (index_t j = 0; j < n; ++j)
          for (index_t l = j; l < n; ++l) s(j, l) += local(j, l);
      }
    }
    for (index_t j = 0; j < n; ++j)
      for (index_t l = 0; l < j; ++l) s(j, l) = s(l, j);
  }
  return s;
}

}  // namespace parpp::la
