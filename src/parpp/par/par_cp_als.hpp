// Parallel CP-ALS (Algorithm 3) over the mpsim runtime.
#pragma once

#include <memory>
#include <vector>

#include "parpp/core/cp_als.hpp"
#include "parpp/dist/dist_tensor.hpp"
#include "parpp/dist/factor_dist.hpp"
#include "parpp/dist/local_problem.hpp"
#include "parpp/la/spd_solve.hpp"
#include "parpp/mpsim/fault.hpp"
#include "parpp/mpsim/runtime.hpp"
#include "parpp/tensor/dense_tensor.hpp"

namespace parpp::par {

/// How the R x R normal equations are solved (Sec. II-E discussion).
enum class SolveMode {
  kDistributedRows,       ///< our approach: each rank solves its own Q rows
  kReplicatedSequential,  ///< PLANC-style: gather M, replicated full solve
};

/// Elastic recovery policy after a communicator failure (ULFM-style).
enum class ElasticMode {
  kOff,     ///< legacy behaviour: CommFailure ends the run (clean abort)
  kShrink,  ///< survivors shrink the communicator and continue the solve
};

struct ElasticOptions {
  ElasticMode mode = ElasticMode::kOff;
  /// Shrink rounds a single solve may attempt before giving up.
  int max_shrinks = 3;
};

struct ParOptions {
  core::CpOptions base;
  std::vector<int> grid_dims;  ///< product must equal the rank count
  core::EngineKind local_engine = core::EngineKind::kDt;
  core::EngineOptions engine_options = {};
  SolveMode solve = SolveMode::kDistributedRows;
  int threads_per_rank = 1;
  /// How sparse inputs are carved over the grid (the CsfTensor driver
  /// overloads pick the matching DistProblem; ignored when the caller
  /// passes a DistProblem directly).
  dist::PartitionKind partition = dist::PartitionKind::kUniformBlocks;
  /// Injected communication fault for chaos runs (kNone = clean run).
  mpsim::FaultPlan fault = {};
  /// Collective timeout; <= 0 picks the runtime default (60 s, or 2 s when
  /// a fault plan is active).
  double comm_timeout_seconds = 0.0;
  /// Elastic shrink-and-continue policy (off by default: a CommFailure
  /// remains a clean collective abort, bit-for-bit the legacy behaviour).
  ElasticOptions elastic = {};
};

struct ParResult {
  std::vector<la::Matrix> factors;  ///< assembled global factors
  double residual = 1.0;
  double fitness = 0.0;
  int sweeps = 0;
  std::vector<core::SweepRecord> history;  ///< rank-0 wall clock
  /// Per-sweep kernel profile of the slowest rank (Fig. 3c-f breakdown).
  std::vector<Profile> sweep_profiles;
  /// Per-category critical path: sum over sweeps of the per-rank maximum of
  /// each kernel class. Unlike sweep_profiles (one whole-rank snapshot),
  /// its TTM seconds are the MTTKRP time of whichever rank was slowest at
  /// MTTKRP each sweep — the load-balance figure of merit.
  Profile critical_path_profile;
  /// Modeled communication cost of the busiest rank.
  mpsim::CostCounter comm_cost;
  double mean_sweep_seconds = 0.0;
  int num_als_sweeps = 0, num_pp_init = 0, num_pp_approx = 0;
  /// Per-rank nonzero load imbalance, max / mean (1.0 = perfectly even;
  /// 0.0 when the storage reports no nnz, i.e. dense runs).
  double nnz_imbalance = 0.0;
  /// Resilience outcome: kOk on the clean path; kRecovered when guardrails
  /// or tolerated faults fired; kNumericalAbort / kCommAbort when the run
  /// ended early (factors may then be empty — assembly is collective and is
  /// skipped once ranks have unwound). Every non-kOk status comes with at
  /// least one recovery_log event.
  core::SolveStatus status = core::SolveStatus::kOk;
  std::vector<core::RecoveryEvent> recovery_log;
  /// Ranks the solve finished on (== the launch count unless an elastic
  /// shrink removed some; 0 for results that never ran a parallel epoch).
  int final_ranks = 0;
  /// nnz imbalance of the repartitioned grid after the last shrink (0.0
  /// when no shrink happened or the storage reports no nnz).
  double post_shrink_nnz_imbalance = 0.0;
};

/// Row-local HALS pass over the Q-distributed rows (see core::hals_update):
/// columns sequentially (Gauss-Seidel), rows independent. The zero-column
/// rescue is global — see rescue_zero_columns. Shared by the nonnegative
/// parallel drivers.
void hals_update_rows(la::Matrix& a, const la::Matrix& m,
                      const la::Matrix& gamma, double eps_floor);

/// Global zero-column rescue matching core::hals_update: `s` is the
/// already All-Reduced Gram of factor `mode`, whose diagonal is the global
/// squared column norm — an exactly-zero entry means the column died on
/// every rank. Each rank then refloors its true (non-padding) Q rows to
/// eps_floor and `s` is rebuilt with one extra All-Reduce. Returns whether
/// a rescue fired; when none does (the common case) no additional
/// communication happens, preserving the legacy collective pattern.
///
/// Runs once per mode update (after the final inner pass), whereas the
/// sequential hals_update rescues inside every inner pass — detecting a
/// mid-iteration collapse globally would cost one collective per pass
/// unconditionally. Parallel NNCP therefore matches sequential exactly
/// for inner_iterations == 1 (the default); with more passes the two can
/// differ only in the rare event that a column hits exactly zero on an
/// inner pass that is not the last.
bool rescue_zero_columns(mpsim::Comm& comm, dist::FactorDist& fd, int mode,
                         la::Matrix& s, double eps_floor);

/// Collective verdict of `hooks.on_sweep`: rank 0 evaluates the hook, the
/// verdict is all-reduced so every rank agrees on continuing. A no-op — and
/// no extra collective, preserving legacy communication costs — when the
/// hook is absent. The factor view passed to the hook is empty (factors
/// live distributed).
[[nodiscard]] bool hooks_continue_collective(mpsim::Comm& comm,
                                             const core::DriverHooks& hooks,
                                             const core::SweepRecord& rec);

/// Per-rank state of Algorithm 3, shared by the plain, PLANC-style, PP and
/// nonnegative parallel drivers. Constructed inside a rank body.
class ParCpContext {
 public:
  /// Storage-agnostic form: `problem` must outlive the context.
  /// `initial_factors`, when non-null, replaces the seeded deterministic
  /// initialization with a (validated) global warm start; every rank keeps
  /// its own block of the same matrices.
  ParCpContext(mpsim::Comm& comm, const dist::DistProblem& problem,
               const ParOptions& options,
               const std::vector<la::Matrix>* initial_factors = nullptr);

  /// Dense convenience (the historical signature): wraps `global_t` in an
  /// owned DenseBlockProblem — behavior is bit for bit the old dense path.
  ParCpContext(mpsim::Comm& comm, const tensor::DenseTensor& global_t,
               const ParOptions& options,
               const std::vector<la::Matrix>* initial_factors = nullptr);

  /// Replaces the normal-equations solve in every subsequent factor update
  /// (regular and PP-approximated) with `inner_iterations` row-local HALS
  /// passes — the nonnegative CP update of PLANC.
  void enable_hals(double epsilon, int inner_iterations);

  [[nodiscard]] int order() const { return n_; }
  [[nodiscard]] const mpsim::ProcessorGrid& grid() const { return grid_; }
  /// This rank's block as a storage-agnostic local problem (engine and PP
  /// operator factories bound to the block storage).
  [[nodiscard]] const dist::LocalProblem& local_problem() const {
    return *local_;
  }
  [[nodiscard]] dist::FactorDist& factor_dist() { return fd_; }
  [[nodiscard]] std::vector<la::Matrix>& grams() { return grams_; }
  [[nodiscard]] core::MttkrpEngine& engine() { return *engine_; }
  /// Engine options of the run (storage scalar, CSF walk, ...) — what the
  /// PP layers pass to make_pp_operators so operators and engine agree.
  [[nodiscard]] const core::EngineOptions& engine_options() const {
    return options_.engine_options;
  }
  [[nodiscard]] double tensor_sq_norm() const { return t_sq_; }
  /// Per-rank nnz imbalance (max / mean) of the block distribution; 0.0
  /// when the storage reports no nnz. Computed collectively at setup.
  [[nodiscard]] double nnz_imbalance() const { return nnz_imbalance_; }

  /// One regular factor update for `mode` (Algorithm 3 lines 12-18).
  /// Stores Γ and M internally when mode == N-1 for the residual.
  void update_mode(int mode);

  /// Relative residual via Eq. (3); collective (one All-Reduce). The
  /// reduction piggybacks the per-rank health flags (non-finite local
  /// state, Gram-solve guardrail counters, injected-fault notices) onto the
  /// same message, so every rank leaves with a replicated health verdict in
  /// last_health() at no extra collective — the abort-agreement mechanism.
  [[nodiscard]] double residual();

  /// Exact residual at the *current* factors: one fresh local MTTKRP of the
  /// last mode plus the Eq. (3) reductions, with no factor update.
  /// Collective; piggybacks health like residual().
  [[nodiscard]] double measure_residual();

  /// Globally-summed health flags from the last residual()/measure_residual()
  /// call. Replicated: every rank sees the same values, so control flow
  /// branching on them stays in lockstep.
  struct SweepHealth {
    double nonfinite = 0.0;    ///< ranks whose factors/Grams went non-finite
    double guardrail = 0.0;    ///< Gram-solve recoveries (ridge/pinv/zeroed)
    double delays = 0.0;       ///< injected delays tolerated
    double corruptions = 0.0;  ///< injected payload corruptions detected
    [[nodiscard]] bool clean() const {
      return nonfinite == 0.0 && guardrail == 0.0 && delays == 0.0 &&
             corruptions == 0.0;
    }
  };
  [[nodiscard]] const SweepHealth& last_health() const { return last_health_; }

  /// Local snapshot / rollback of the whole per-rank iterate (Q rows,
  /// slices, Grams, residual operands). Both are collective-free; after a
  /// replicated bad-health verdict every rank restores in lockstep and the
  /// engine is re-notified for every mode.
  void capture_state();
  void restore_state();

  /// Solve + propagate an already-reduced Q-shaped (approximate) MTTKRP for
  /// `mode` — the tail of a factor update once ~M(n) has been assembled by
  /// the PP driver (Algorithm 4 lines 9-15).
  void apply_pp_mttkrp(int mode, const la::Matrix& m_q);

  /// Global squared Frobenius norm of a Q-distributed matrix set, per mode:
  /// returns {||X||_F^2 for each mode} with one All-Reduce.
  [[nodiscard]] std::vector<double> global_sq_norms(
      const std::vector<la::Matrix>& q_mats) const;

  /// Assemble the full factor for `mode` (collective).
  [[nodiscard]] la::Matrix assemble_factor(int mode) {
    return fd_.allgather_global(mode);
  }

 private:
  /// Delegation target of the two public constructors: exactly one of
  /// `owned` and `problem` is set.
  ParCpContext(mpsim::Comm& comm, const ParOptions& options,
               std::unique_ptr<dist::DistProblem> owned,
               const dist::DistProblem* problem,
               const std::vector<la::Matrix>* initial_factors);

  void solve_and_propagate(int mode, const la::Matrix& m_q,
                           const la::Matrix& gamma);
  /// Piggybacked reduction: buf[0] is the caller's scalar, buf[1..4] the
  /// local health words; one All-Reduce replicates both.
  [[nodiscard]] double reduce_with_health(double local_scalar);

  mpsim::Comm& comm_;
  ParOptions options_;
  bool hals_ = false;
  double hals_epsilon_ = 1e-12;
  int hals_inner_ = 1;
  std::unique_ptr<dist::DistProblem> owned_problem_;
  const dist::DistProblem* problem_;  ///< owned_problem_ or the caller's
  int n_;
  mpsim::ProcessorGrid grid_;
  dist::BlockDist dist_;
  std::unique_ptr<dist::LocalProblem> local_;
  dist::FactorDist fd_;
  std::vector<la::Matrix> grams_;
  std::unique_ptr<core::MttkrpEngine> engine_;
  double t_sq_ = 0.0;
  double nnz_imbalance_ = 0.0;
  la::Matrix gamma_last_, mq_last_;

  SweepHealth last_health_;
  la::SpdStats spd_seen_;  ///< counters already folded into a health word
  dist::FactorDist::Snapshot saved_fd_;
  std::vector<la::Matrix> saved_grams_;
  la::Matrix saved_gamma_last_, saved_mq_last_;
  bool have_snapshot_ = false;
};

/// Folds the per-rank abort slots the rank bodies record on CommFailure (or
/// a poisoned local exception) into `result`: identical reasons are grouped
/// into one deterministic recovery_log event listing the ranks, and the
/// status becomes kCommAbort. No-op when no slot is set.
void merge_abort_records(ParResult& result,
                         const std::vector<std::string>& reasons,
                         const std::vector<int>& sweeps);

/// Elastic-aware overload: slots of ranks in `removed` (world-rank indexed)
/// were folded into a successful shrink's recovery_log entry already — their
/// abort reasons are expected and must not flip the status to kCommAbort.
void merge_abort_records(ParResult& result,
                         const std::vector<std::string>& reasons,
                         const std::vector<int>& sweeps,
                         const std::vector<char>& removed);

/// Rank-0 bookkeeping of a replicated health verdict: folds tolerated
/// events (guardrail fires, injected delays/corruptions) into the recovery
/// log and upgrades kOk to kRecovered. Shared by the parallel drivers.
void record_health_events(ParResult& result, int sweep,
                          const ParCpContext::SweepHealth& h);

/// Sweep-rollback budget shared by the resilient drivers.
inline constexpr int kParRollbackBudget = 3;

/// Runs Algorithm 3 end to end on `nprocs` simulated ranks. The
/// DistProblem overload is the storage-agnostic driver core; the
/// DenseTensor overloads are unchanged shims over DenseBlockProblem and
/// the CsfTensor overload partitions the nonzeros with SparseBlockDist.
[[nodiscard]] ParResult par_cp_als(const dist::DistProblem& problem,
                                   int nprocs, const ParOptions& options,
                                   const core::DriverHooks& hooks = {});
[[nodiscard]] ParResult par_cp_als(const tensor::DenseTensor& global_t,
                                   int nprocs, const ParOptions& options);
[[nodiscard]] ParResult par_cp_als(const tensor::DenseTensor& global_t,
                                   int nprocs, const ParOptions& options,
                                   const core::DriverHooks& hooks);
[[nodiscard]] ParResult par_cp_als(const tensor::CsfTensor& global_t,
                                   int nprocs, const ParOptions& options,
                                   const core::DriverHooks& hooks = {});

}  // namespace parpp::par
