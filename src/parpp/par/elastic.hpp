// Elastic shrink-and-continue machinery shared by the parallel drivers.
//
// ULFM-style continuation over the simulator: when a rank dies mid-solve,
// the survivors (a) agree on the live set and rebuild a smaller world
// communicator (mpsim::Comm::shrink), (b) repartition the tensor onto the
// shrunken grid, and (c) restore the factor iterate from a replicated
// snapshot and re-enter the sweep loop. This header provides the two pieces
// the drivers share:
//
// BuddyStore — the lightweight replica scheme. At every lockstep snapshot
// point (the same place capture_state runs, validated by the next
// sweep-health collective) each rank publishes its owned factor rows, the
// replicated fit scalars, and its nnz manifest into a world-rank-indexed
// slot. Two generations are kept: the rendezvous structure of a sweep (every
// iteration funnels through a world All-Reduce) bounds the cross-rank spread
// to one snapshot generation, so the minimum published sweep is always a
// generation every participant holds — the agreed rollback point. A dead
// rank's slot is read on its behalf by its buddy, the next participant in
// ring order; only a rank and its buddy dying in the same round loses state
// (→ clean abort), which is the classic single-failure guarantee of
// buddy checkpointing.
//
// Generations are additionally tagged with the epoch (shrink round) that
// published them, and the store remembers each epoch's participant roster.
// Row ownership changes when the grid shrinks, so a consistent factor set
// can only be assembled from slots of ONE epoch; recovery walks epochs
// newest-first and uses the newest one whose roster is fully available
// under the buddy rule. This closes the window right after a shrink where
// the survivors have not yet republished under the new layout: the previous
// epoch's roster — including ranks that died in that round, whose slots the
// ring buddies still hold — is used instead.
//
// run_with_elastic — the epoch loop. Runs a driver body; on CommFailure with
// shrink enabled it shrinks the communicator, rebuilds the global factors
// from the store (one All-Reduce per mode on the new communicator),
// recomputes a balanced grid for the survivor count, logs a deterministic
// recovery event, and re-invokes the body warm-started at the agreed sweep.
#pragma once

#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "parpp/par/par_cp_als.hpp"

namespace parpp::par {

/// World-rank-indexed replica store shared by all rank bodies of one solve.
/// Publishes are rank-local under a per-slot mutex; recovery reads foreign
/// slots only after the shrink consensus, when their owners are either
/// unwound (dead) or inside recovery themselves (survivors), so the slot
/// lock is belt-and-braces on top of the rendezvous happens-before chain.
class BuddyStore {
 public:
  struct ModeRows {
    index_t row0 = 0;  ///< global index of the first owned row
    la::Matrix rows;   ///< owned (non-padding) Q rows, count x R
  };
  struct Generation {
    int sweep = -1;  ///< completed sweeps at the snapshot; -1 = never published
    int epoch = -1;  ///< shrink round (roster index) that published it
    double fit = 0.0;
    double fit_old = -1.0;
    index_t nnz = -1;  ///< local nonzeros manifest (-1 = dense storage)
    std::vector<ModeRows> modes;
  };

  explicit BuddyStore(int world_size);

  /// Mirror `ctx`'s current iterate for `world_rank` (current generation;
  /// the previous one is kept as the spread-tolerant fallback).
  void publish(int world_rank, int epoch, int sweep, double fit,
               double fit_old, ParCpContext& ctx);

  /// Register epoch `index`'s participant roster. Every survivor calls this
  /// after a shrink; the call is idempotent (first writer wins, the roster
  /// is identical on all of them).
  void start_epoch(int index, const std::vector<int>& roster);

  [[nodiscard]] int num_epochs();
  [[nodiscard]] std::vector<int> roster(int epoch);

  /// Latest sweep a slot published under `epoch` (-1 when none survives in
  /// the two-generation window).
  [[nodiscard]] int latest_sweep_in_epoch(int world_rank, int epoch);

  /// Copy of the slot's generation with exactly (`sweep`, `epoch`); `ok`
  /// reports whether one exists (current or previous).
  [[nodiscard]] Generation generation_at(int world_rank, int sweep, int epoch,
                                         bool* ok);

  /// Whether any slot ever published anything (distinguishes "cold restart"
  /// from "state existed but is unrecoverable").
  [[nodiscard]] bool any_published();

 private:
  struct Slot {
    std::mutex mutex;
    Generation cur, prev;
  };
  std::vector<std::unique_ptr<Slot>> slots_;
  std::mutex roster_mutex_;
  std::vector<std::vector<int>> rosters_;
};

/// Inputs of one solve epoch. The runner rebinds comm/options/warm-start
/// between epochs; the body runs the whole sweep loop against them.
struct ElasticAttempt {
  mpsim::Comm comm;
  ParOptions options;
  /// Warm start for this epoch: the caller's initial factors on the first
  /// epoch, the rebuilt snapshot afterwards (null = seeded init).
  const std::vector<la::Matrix>* init_factors = nullptr;
  int start_sweep = 0;
  double fit = 0.0;
  double fit_old = -1.0;
  bool shrunk = false;  ///< at least one shrink preceded this epoch
  int epoch = 0;        ///< shrink round index; stamps published generations

  /// Per-epoch bookkeeping the drivers would otherwise triplicate: rank-0
  /// result fields (final rank count, grid imbalance — the post-shrink slot
  /// once shrunk) and the nnz-conservation check of a repartitioned sparse
  /// epoch against the buddy manifest (collective when it runs; throws on
  /// loss, which the drivers surface as a clean abort).
  void begin_epoch(ParCpContext& ctx) const;

  /// Mirror this rank's state on the buddy store; no-op when elastic
  /// recovery is off. Call at every lockstep snapshot point.
  void publish(ParCpContext& ctx, int sweep, double cur_fit,
               double cur_fit_old) const;

  // Wired by run_with_elastic.
  BuddyStore* store = nullptr;
  ParResult* result = nullptr;
  index_t expected_nnz = -1;  ///< manifest total for begin_epoch (-1 = none)
};

/// Runs `body` with elastic shrink recovery. On CommFailure with
/// options.elastic.mode == kShrink (and this rank not itself declared dead,
/// and the shrink budget not exhausted) the runner shrinks, rebuilds state,
/// and re-invokes the body; otherwise the failure propagates to the
/// driver's abort-recording catch. Local (non-CommFailure) exceptions mark
/// this rank dead on the shrink board and poison the *current* epoch's tree
/// before propagating, so survivors can shrink past this rank. `removed`
/// (world-size char flags) receives the ranks folded into successful
/// shrinks, for merge_abort_records.
void run_with_elastic(mpsim::Comm& comm, const dist::DistProblem& problem,
                      const ParOptions& options,
                      const core::DriverHooks& hooks, BuddyStore& store,
                      ParResult& result, std::vector<char>& removed,
                      const std::function<void(ElasticAttempt&)>& body);

}  // namespace parpp::par
