// PLANC-style baseline (paper Sec. II-E / Fig. 3 "PLANC" series).
//
// Per the paper, the PLANC implementation of parallel dense CP-ALS differs
// from ours in two ways: it uses the standard dimension tree (never MSDT or
// PP) and solves the normal equations *sequentially* on replicated data
// after gathering the MTTKRP output. This wrapper configures Algorithm 3
// accordingly so benches can plot the PLANC reference series.
#pragma once

#include "parpp/par/par_cp_als.hpp"

namespace parpp::par {

/// Baseline options: DT local engine + replicated sequential solve.
[[nodiscard]] ParOptions planc_options(const ParOptions& base);

/// Convenience runner.
[[nodiscard]] ParResult planc_cp_als(const tensor::DenseTensor& global_t,
                                     int nprocs, const ParOptions& base);

}  // namespace parpp::par
