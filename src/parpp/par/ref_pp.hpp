// Reference pairwise-perturbation kernels (Table I/II "PP-init-ref" and
// "PP-approx-ref").
//
// Models the original PP implementation of [Ma & Solomonik 2018], which
// drives each PP contraction through a general tensor-contraction library
// (Cyclops): the initialization step performs local multiplications and
// then a *reduction of the full output operator* across the processors
// that share its slabs, and the approximated step issues one collective per
// first-order correction U(n,i) — N^2 collectives per sweep instead of our
// N. Compute per rank is identical to the communication-efficient variant;
// only the collective pattern (and hence alpha/beta cost and wall time)
// differs, which is exactly what Table II measures.
#pragma once

#include "parpp/par/par_pp.hpp"

namespace parpp::par {

/// Times the reference PP kernels under the same setup as time_pp_kernels.
[[nodiscard]] PpKernelTimings time_ref_pp_kernels(
    const tensor::DenseTensor& global_t, int nprocs,
    const ParPpOptions& options, int sweeps);

}  // namespace parpp::par
