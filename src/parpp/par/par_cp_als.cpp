#include "parpp/par/par_cp_als.hpp"

#include <algorithm>
#include <cmath>
#include <string>
#include <utility>

#include "parpp/core/fitness.hpp"
#include "parpp/core/gram.hpp"
#include "parpp/core/solve_update.hpp"
#include "parpp/dist/sparse_dist.hpp"
#include "parpp/la/gemm.hpp"
#include "parpp/par/elastic.hpp"
#include "parpp/util/timer.hpp"

namespace parpp::par {

void hals_update_rows(la::Matrix& a, const la::Matrix& m,
                      const la::Matrix& gamma, double eps_floor) {
  const index_t s = a.rows(), r = a.cols();
  ScopedProfile sp(Profile::thread_default(), Kernel::kSolve,
                   2.0 * static_cast<double>(s) * r * r);
  for (index_t j = 0; j < r; ++j) {
    const double gjj = std::max(gamma(j, j), eps_floor);
    for (index_t i = 0; i < s; ++i) {
      double agij = 0.0;
      const double* arow = a.row(i);
      for (index_t k = 0; k < r; ++k) agij += arow[k] * gamma(k, j);
      a(i, j) = std::max(a(i, j) + (m(i, j) - agij) / gjj, 0.0);
    }
  }
}

bool rescue_zero_columns(mpsim::Comm& comm, dist::FactorDist& fd, int mode,
                         la::Matrix& s, double eps_floor) {
  bool any_zero = false;
  for (index_t j = 0; j < s.cols(); ++j)
    if (s(j, j) == 0.0) any_zero = true;
  // `s` is replicated (post All-Reduce), so every rank takes this branch
  // identically and the extra collective below stays matched.
  if (!any_zero) return false;
  la::Matrix& q = fd.q(mode);
  for (index_t j = 0; j < s.cols(); ++j) {
    if (s(j, j) != 0.0) continue;
    for (index_t r = 0; r < q.rows(); ++r)
      if (fd.q_row_global(mode, r) >= 0) q(r, j) = eps_floor;
  }
  s = la::gram(q);
  comm.allreduce_sum(s.data(), s.size(),
                     PARPP_COMM_TAG("gram-rescue-allreduce"));
  return true;
}

bool hooks_continue_collective(mpsim::Comm& comm,
                               const core::DriverHooks& hooks,
                               const core::SweepRecord& rec) {
  if (!hooks.on_sweep) return true;
  static const std::vector<la::Matrix> kNoFactors;
  double stop = 0.0;
  if (comm.rank() == 0 && !hooks.on_sweep(rec, kNoFactors)) stop = 1.0;
  comm.allreduce_sum(&stop, 1, PARPP_COMM_TAG("observer-stop-allreduce"));
  return stop == 0.0;
}

ParCpContext::ParCpContext(mpsim::Comm& comm, const dist::DistProblem& problem,
                           const ParOptions& options,
                           const std::vector<la::Matrix>* initial_factors)
    : ParCpContext(comm, options, nullptr, &problem, initial_factors) {}

ParCpContext::ParCpContext(mpsim::Comm& comm,
                           const tensor::DenseTensor& global_t,
                           const ParOptions& options,
                           const std::vector<la::Matrix>* initial_factors)
    : ParCpContext(comm, options,
                   std::make_unique<dist::DenseBlockProblem>(global_t),
                   nullptr, initial_factors) {}

ParCpContext::ParCpContext(mpsim::Comm& comm, const ParOptions& options,
                           std::unique_ptr<dist::DistProblem> owned,
                           const dist::DistProblem* problem,
                           const std::vector<la::Matrix>* initial_factors)
    : comm_(comm),
      options_(options),
      owned_problem_(std::move(owned)),
      problem_(owned_problem_ ? owned_problem_.get() : problem),
      n_(static_cast<int>(problem_->global_shape().size())),
      grid_(comm, options.grid_dims),
      dist_(problem_->make_block_dist(grid_)),
      local_(problem_->make_local(dist_, grid_.coords())),
      fd_(grid_, dist_, options.base.rank) {
  // Deterministic global initialization so any grid reproduces the
  // sequential run bit-for-bit (each rank generates — or, for a warm
  // start, copies — the same matrices).
  core::DriverHooks init_hooks;
  init_hooks.initial_factors = initial_factors;
  const auto global_factors = core::resolve_init_factors(
      dist_.global_shape(), options_.base.rank, options_.base.seed,
      init_hooks);
  grams_.resize(static_cast<std::size_t>(n_));
  for (int m = 0; m < n_; ++m) {
    fd_.set_q_from_global(m, global_factors[static_cast<std::size_t>(m)]);
    la::Matrix s = la::gram(fd_.q(m));
    comm_.allreduce_sum(s.data(), s.size(),
                        PARPP_COMM_TAG("init-gram-allreduce"));
    grams_[static_cast<std::size_t>(m)] = std::move(s);
    fd_.gather_slice(m);
  }
  engine_ = local_->make_engine(options_.local_engine, fd_.slices(), nullptr,
                                options_.engine_options);

  double sq = local_->squared_norm();
  comm_.allreduce_sum(&sq, 1, PARPP_COMM_TAG("tensor-sqnorm-allreduce"));
  t_sq_ = sq;

  // Observed per-rank load balance (one setup-time collective; nnz() is -1
  // on every rank or on none, so the collective stays matched).
  if (local_->nnz() >= 0) {
    const double mine = static_cast<double>(local_->nnz());
    std::vector<double> all(static_cast<std::size_t>(comm_.size()));
    comm_.allgather(&mine, 1, all.data(),
                    PARPP_COMM_TAG("nnz-imbalance-allgather"));
    double total = 0.0, worst = 0.0;
    for (double v : all) {
      total += v;
      worst = std::max(worst, v);
    }
    const double mean = total / static_cast<double>(comm_.size());
    nnz_imbalance_ = mean > 0.0 ? worst / mean : 1.0;
  }

  // Baseline the thread-local solver stats so health words report only
  // deltas from this run (each simulated rank is its own thread, but the
  // thread may have touched solve_gram during setup).
  spd_seen_ = la::spd_stats();
}

void ParCpContext::enable_hals(double epsilon, int inner_iterations) {
  PARPP_CHECK(inner_iterations >= 1,
              "enable_hals: need at least one inner iteration");
  hals_ = true;
  hals_epsilon_ = epsilon;
  hals_inner_ = inner_iterations;
}

void ParCpContext::solve_and_propagate(int mode, const la::Matrix& m_q,
                                       const la::Matrix& gamma) {
  if (hals_) {
    // Nonnegative update: the Q rows are independent given Γ and their
    // MTTKRP rows, so the projected HALS passes need no communication
    // beyond the Gram/slice propagation below.
    la::Matrix& q = fd_.q(mode);
    for (int pass = 0; pass < hals_inner_; ++pass)
      hals_update_rows(q, m_q, gamma, hals_epsilon_);
    la::Matrix s = la::gram(q);
    comm_.allreduce_sum(s.data(), s.size(),
                        PARPP_COMM_TAG("hals-gram-allreduce"));
    rescue_zero_columns(comm_, fd_, mode, s, hals_epsilon_);
    grams_[static_cast<std::size_t>(mode)] = std::move(s);
    fd_.gather_slice(mode);
    engine_->notify_update(mode);
    return;
  }
  la::Matrix a_q;
  if (options_.solve == SolveMode::kDistributedRows) {
    a_q = core::update_factor(gamma, m_q);
  } else {
    // PLANC-style sequential solve: gather all Q rows, solve the full
    // system redundantly on every rank, keep our rows. Row-independent, so
    // the result matches the distributed path exactly; only the cost model
    // differs (extra All-Gather + replicated solve flops).
    const index_t rows_q = m_q.rows();
    la::Matrix m_full(rows_q * comm_.size(), m_q.cols());
    comm_.allgather(m_q.data(), m_q.size(), m_full.data(),
                    PARPP_COMM_TAG("planc-mttkrp-allgather"));
    la::Matrix a_full = core::update_factor(gamma, m_full);
    a_q = la::Matrix(rows_q, m_q.cols());
    std::copy(a_full.row(comm_.rank() * rows_q),
              a_full.row(comm_.rank() * rows_q) + a_q.size(), a_q.data());
  }
  fd_.q(mode) = std::move(a_q);
  la::Matrix s = la::gram(fd_.q(mode));
  comm_.allreduce_sum(s.data(), s.size(), PARPP_COMM_TAG("gram-allreduce"));
  grams_[static_cast<std::size_t>(mode)] = std::move(s);
  fd_.gather_slice(mode);
  engine_->notify_update(mode);
}

void ParCpContext::apply_pp_mttkrp(int mode, const la::Matrix& m_q) {
  la::Matrix gamma = core::gamma_chain(grams_, mode);
  if (mode == n_ - 1) {
    gamma_last_ = gamma;
    mq_last_ = m_q;
  }
  solve_and_propagate(mode, m_q, gamma);
}

void ParCpContext::update_mode(int mode) {
  la::Matrix gamma = core::gamma_chain(grams_, mode);
  la::Matrix m_local = engine_->mttkrp(mode);
  la::Matrix m_q = fd_.reduce_scatter(mode, m_local);
  if (mode == n_ - 1) {
    gamma_last_ = gamma;
    mq_last_ = m_q;
  }
  solve_and_propagate(mode, m_q, gamma);
}

double ParCpContext::reduce_with_health(double local_scalar) {
  // One All-Reduce carries the caller's scalar plus the health words — the
  // abort-agreement piggyback. 5 words total, below FaultPlan's
  // min_corrupt_words, so injected corruption can never desynchronize the
  // replicated verdict itself.
  double buf[5] = {local_scalar, 0.0, 0.0, 0.0, 0.0};
  bool nonfinite = !std::isfinite(local_scalar);
  for (int m = 0; m < n_ && !nonfinite; ++m) {
    if (!fd_.q(m).all_finite() ||
        !grams_[static_cast<std::size_t>(m)].all_finite())
      nonfinite = true;
  }
  buf[1] = nonfinite ? 1.0 : 0.0;
  const la::SpdStats now = la::spd_stats();
  buf[2] = static_cast<double>(
      (now.cholesky_failures - spd_seen_.cholesky_failures) +
      (now.nonfinite_grams - spd_seen_.nonfinite_grams));
  spd_seen_ = now;
  if (mpsim::FaultyComm* fault = comm_.fault()) {
    buf[3] = static_cast<double>(fault->take_delay_notices());
    buf[4] = static_cast<double>(fault->take_corruption_notices());
  }
  comm_.allreduce_sum(buf, 5, PARPP_COMM_TAG("residual-health-allreduce"));
  last_health_.nonfinite = buf[1];
  last_health_.guardrail = buf[2];
  last_health_.delays = buf[3];
  last_health_.corruptions = buf[4];
  return buf[0];
}

double ParCpContext::residual() {
  PARPP_CHECK(!mq_last_.empty(), "residual: no completed sweep");
  // <M(N), A(N)> — Q rows are disjoint across ranks, so a scalar All-Reduce
  // completes the inner product; <Γ, S> is replicated. The reduction also
  // carries the health words (see reduce_with_health).
  const double cross = reduce_with_health(mq_last_.dot(fd_.q(n_ - 1)));
  const double model_sq =
      gamma_last_.dot(grams_[static_cast<std::size_t>(n_ - 1)]);
  const double num_sq = std::max(0.0, t_sq_ + model_sq - 2.0 * cross);
  return t_sq_ > 0.0 ? std::sqrt(num_sq) / std::sqrt(t_sq_) : 0.0;
}

double ParCpContext::measure_residual() {
  const int last = n_ - 1;
  la::Matrix gamma = core::gamma_chain(grams_, last);
  la::Matrix m_local = engine_->mttkrp(last);
  la::Matrix m_q = fd_.reduce_scatter(last, m_local);
  const double cross = reduce_with_health(m_q.dot(fd_.q(last)));
  const double model_sq = gamma.dot(grams_[static_cast<std::size_t>(last)]);
  const double num_sq = std::max(0.0, t_sq_ + model_sq - 2.0 * cross);
  return t_sq_ > 0.0 ? std::sqrt(num_sq) / std::sqrt(t_sq_) : 0.0;
}

void ParCpContext::capture_state() {
  saved_fd_ = fd_.snapshot();
  saved_grams_ = grams_;
  saved_gamma_last_ = gamma_last_;
  saved_mq_last_ = mq_last_;
  have_snapshot_ = true;
}

void ParCpContext::restore_state() {
  PARPP_CHECK(have_snapshot_, "restore_state: no snapshot captured");
  fd_.restore(saved_fd_);
  grams_ = saved_grams_;
  gamma_last_ = saved_gamma_last_;
  mq_last_ = saved_mq_last_;
  for (int m = 0; m < n_; ++m) engine_->notify_update(m);
}

std::vector<double> ParCpContext::global_sq_norms(
    const std::vector<la::Matrix>& q_mats) const {
  std::vector<double> sq(q_mats.size(), 0.0);
  for (std::size_t i = 0; i < q_mats.size(); ++i) {
    const double f = q_mats[i].frobenius_norm();
    sq[i] = f * f;
  }
  comm_.allreduce_sum(sq.data(), static_cast<index_t>(sq.size()),
                      PARPP_COMM_TAG("factor-sqnorm-allreduce"));
  return sq;
}

void merge_abort_records(ParResult& result,
                         const std::vector<std::string>& reasons,
                         const std::vector<int>& sweeps) {
  merge_abort_records(result, reasons, sweeps,
                      std::vector<char>(reasons.size(), 0));
}

void merge_abort_records(ParResult& result,
                         const std::vector<std::string>& reasons,
                         const std::vector<int>& sweeps,
                         const std::vector<char>& removed) {
  bool any = false;
  // Group identical reasons in first-rank order so the log is deterministic
  // and compact (a tree-wide poison gives every rank the same reason).
  std::vector<std::pair<std::string, std::string>> groups;  // reason -> ranks
  std::vector<int> group_sweep;
  for (std::size_t r = 0; r < reasons.size(); ++r) {
    if (reasons[r].empty()) continue;
    // Ranks folded into a successful shrink are already covered by the
    // recovery_log entry the survivors wrote; their unwind records must not
    // flip a recovered-shrunk run into a comm-abort.
    if (r < removed.size() && removed[r] != 0) continue;
    any = true;
    bool found = false;
    for (std::size_t g = 0; g < groups.size(); ++g) {
      if (groups[g].first == reasons[r]) {
        groups[g].second += "," + std::to_string(r);
        group_sweep[g] = std::max(group_sweep[g], sweeps[r]);
        found = true;
        break;
      }
    }
    if (!found) {
      groups.emplace_back(reasons[r], std::to_string(r));
      group_sweep.push_back(sweeps[r]);
    }
  }
  if (!any) return;
  for (std::size_t g = 0; g < groups.size(); ++g) {
    result.recovery_log.push_back(
        {group_sweep[g],
         "rank(s) " + groups[g].second + ": " + groups[g].first});
  }
  result.status = core::SolveStatus::kCommAbort;
}

void record_health_events(ParResult& result, int sweep,
                          const ParCpContext::SweepHealth& h) {
  auto add = [&](const std::string& what) {
    result.recovery_log.push_back({sweep, what});
    if (result.status == core::SolveStatus::kOk)
      result.status = core::SolveStatus::kRecovered;
  };
  if (h.guardrail > 0.0) {
    add("Gram-solve guardrail fired " +
        std::to_string(static_cast<long>(h.guardrail)) + " time(s)");
  }
  if (h.delays > 0.0) {
    add("tolerated " + std::to_string(static_cast<long>(h.delays)) +
        " injected communication delay(s)");
  }
  if (h.corruptions > 0.0) {
    add("detected " + std::to_string(static_cast<long>(h.corruptions)) +
        " corrupted collective payload(s)");
  }
}

ParResult par_cp_als(const tensor::DenseTensor& global_t, int nprocs,
                     const ParOptions& options) {
  return par_cp_als(global_t, nprocs, options, core::DriverHooks{});
}

ParResult par_cp_als(const tensor::DenseTensor& global_t, int nprocs,
                     const ParOptions& options,
                     const core::DriverHooks& hooks) {
  const dist::DenseBlockProblem problem(global_t);
  return par_cp_als(problem, nprocs, options, hooks);
}

ParResult par_cp_als(const tensor::CsfTensor& global_t, int nprocs,
                     const ParOptions& options,
                     const core::DriverHooks& hooks) {
  const auto problem = dist::make_sparse_problem(global_t, options.partition);
  return par_cp_als(*problem, nprocs, options, hooks);
}

ParResult par_cp_als(const dist::DistProblem& problem, int nprocs,
                     const ParOptions& options,
                     const core::DriverHooks& hooks) {
  ParResult result;
  std::vector<std::vector<Profile>> sweep_profiles(
      static_cast<std::size_t>(nprocs));
  std::vector<std::string> abort_reasons(static_cast<std::size_t>(nprocs));
  std::vector<int> abort_sweeps(static_cast<std::size_t>(nprocs), 0);
  BuddyStore store(nprocs);
  std::vector<char> removed(static_cast<std::size_t>(nprocs), 0);

  mpsim::RunOptions ropt;
  ropt.threads_per_rank = options.threads_per_rank;
  ropt.fault = options.fault;
  ropt.comm_timeout_seconds = options.comm_timeout_seconds;
  auto run_result = mpsim::run(
      nprocs,
      [&](mpsim::Comm& world) {
        const auto me = static_cast<std::size_t>(world.rank());
        int cur_sweep = 0;
        try {
          run_with_elastic(
              world, problem, options, hooks, store, result, removed,
              [&](ElasticAttempt& at) {
                mpsim::Comm& comm = at.comm;
                ParCpContext ctx(comm, problem, at.options, at.init_factors);
                at.begin_epoch(ctx);
                const int n = ctx.order();
                WallTimer timer;
                double fit = at.fit, fit_old = at.fit_old;
                int sweep = at.start_sweep, rollbacks = 0;
                cur_sweep = sweep;
                while (sweep < options.base.max_sweeps &&
                       std::abs(fit - fit_old) > options.base.tol) {
                  at.publish(ctx, sweep, fit, fit_old);
                  ctx.capture_state();
                  const double saved_fit = fit, saved_fit_old = fit_old;
                  const Profile before = Profile::thread_default();
                  for (int i = 0; i < n; ++i) ctx.update_mode(i);
                  ++sweep;
                  cur_sweep = sweep;
                  fit_old = fit;
                  const double r = ctx.residual();
                  fit = core::fitness_from_residual(r);
                  sweep_profiles[me].push_back(
                      Profile::thread_default().delta_since(before));
                  const ParCpContext::SweepHealth h = ctx.last_health();
                  if (comm.rank() == 0) record_health_events(result, sweep, h);
                  if (h.nonfinite > 0.0 || !std::isfinite(fit)) {
                    // Replicated verdict: every rank rolls back in lockstep
                    // to the pre-sweep iterate. The sweep counter keeps
                    // advancing, so termination stays bounded by max_sweeps.
                    ctx.restore_state();
                    fit = saved_fit;
                    fit_old = saved_fit_old;
                    if (rollbacks < kParRollbackBudget) {
                      ++rollbacks;
                      if (comm.rank() == 0) {
                        result.recovery_log.push_back(
                            {sweep,
                             "non-finite iterate: rolled back to the last "
                             "good sweep (rollback " +
                                 std::to_string(rollbacks) + "/" +
                                 std::to_string(kParRollbackBudget) + ")"});
                        if (result.status == core::SolveStatus::kOk)
                          result.status = core::SolveStatus::kRecovered;
                      }
                      continue;
                    }
                    if (comm.rank() == 0) {
                      result.recovery_log.push_back(
                          {sweep,
                           "non-finite iterate persisted past the rollback "
                           "budget; aborting on the last good state"});
                      result.status = core::SolveStatus::kNumericalAbort;
                    }
                    break;
                  }
                  if (comm.rank() == 0) {
                    if (options.base.record_history)
                      result.history.push_back({timer.seconds(), fit, "als"});
                    result.residual = r;
                    result.fitness = fit;
                    result.sweeps = sweep;
                    result.num_als_sweeps = sweep;
                  }
                  if (hooks.checkpoint_every > 0 && hooks.on_checkpoint &&
                      sweep % hooks.checkpoint_every == 0) {
                    // Collective assembly on the replicated sweep counter;
                    // only rank 0 invokes the callback (and writes the file).
                    std::vector<la::Matrix> ck_factors;
                    ck_factors.reserve(static_cast<std::size_t>(n));
                    for (int m = 0; m < n; ++m)
                      ck_factors.push_back(ctx.assemble_factor(m));
                    if (comm.rank() == 0)
                      hooks.on_checkpoint(ck_factors, sweep, fit, fit_old);
                  }
                  if (!hooks_continue_collective(
                          comm, hooks, {timer.seconds(), fit, "als"}))
                    break;
                }
                // Assemble global factors (collective); rank 0 keeps them.
                std::vector<la::Matrix> assembled;
                assembled.reserve(static_cast<std::size_t>(n));
                for (int m = 0; m < n; ++m)
                  assembled.push_back(ctx.assemble_factor(m));
                if (comm.rank() == 0) result.factors = std::move(assembled);
              });
        } catch (const mpsim::CommFailure& e) {
          abort_reasons[me] = e.what();
          abort_sweeps[me] = cur_sweep;
        } catch (const std::exception& e) {
          // Local failure: poison the communicator tree so peers unwind
          // (they record the poison reason as their own CommFailure). The
          // elastic runner already poisoned the current epoch's tree.
          abort_reasons[me] = std::string("local exception: ") + e.what();
          abort_sweeps[me] = cur_sweep;
          world.poison("rank " + std::to_string(world.rank()) +
                       " failed: " + e.what());
        }
      },
      ropt);
  merge_abort_records(result, abort_reasons, abort_sweeps, removed);

  // Per-sweep profile of the slowest rank. Sized by the longest per-rank
  // record (post-shrink epochs leave survivors with more entries than the
  // ranks that died early).
  std::size_t sweeps = 0;
  if (result.sweeps > 0)
    for (const auto& per_rank : sweep_profiles)
      sweeps = std::max(sweeps, per_rank.size());
  for (std::size_t s = 0; s < sweeps; ++s) {
    Profile worst;
    Profile cat_max;
    double worst_total = -1.0;
    for (const auto& per_rank : sweep_profiles) {
      if (s >= per_rank.size()) continue;
      cat_max.max_merge(per_rank[s]);
      if (per_rank[s].total_seconds() > worst_total) {
        worst_total = per_rank[s].total_seconds();
        worst = per_rank[s];
      }
    }
    result.sweep_profiles.push_back(worst);
    result.critical_path_profile.accumulate(cat_max);
  }
  if (!result.history.empty()) {
    result.mean_sweep_seconds =
        result.history.back().seconds / static_cast<double>(result.sweeps);
  }
  result.comm_cost = run_result.max_cost();
  return result;
}

}  // namespace parpp::par
