#include "parpp/par/planc_baseline.hpp"

namespace parpp::par {

ParOptions planc_options(const ParOptions& base) {
  ParOptions opt = base;
  opt.local_engine = core::EngineKind::kDt;
  opt.solve = SolveMode::kReplicatedSequential;
  return opt;
}

ParResult planc_cp_als(const tensor::DenseTensor& global_t, int nprocs,
                       const ParOptions& base) {
  return par_cp_als(global_t, nprocs, planc_options(base));
}

}  // namespace parpp::par
