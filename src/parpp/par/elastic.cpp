#include "parpp/par/elastic.hpp"

#include <algorithm>
#include <cmath>
#include <string>
#include <utility>

#include "parpp/mpsim/grid.hpp"

namespace parpp::par {

BuddyStore::BuddyStore(int world_size) {
  slots_.reserve(static_cast<std::size_t>(world_size));
  std::vector<int> all;
  for (int r = 0; r < world_size; ++r) {
    slots_.push_back(std::make_unique<Slot>());
    all.push_back(r);
  }
  rosters_.push_back(std::move(all));  // epoch 0: the full world
}

void BuddyStore::publish(int world_rank, int epoch, int sweep, double fit,
                         double fit_old, ParCpContext& ctx) {
  // Build the generation fully before touching the slot, so an exception
  // mid-copy can never leave a half-written snapshot behind.
  Generation g;
  g.sweep = sweep;
  g.epoch = epoch;
  g.fit = fit;
  g.fit_old = fit_old;
  g.nnz = ctx.local_problem().nnz();
  const int n = ctx.order();
  auto& fd = ctx.factor_dist();
  g.modes.resize(static_cast<std::size_t>(n));
  for (int m = 0; m < n; ++m) {
    const la::Matrix& q = fd.q(m);
    // Owned rows are the leading run of the chunk (q_row_global is
    // base + r, cut off at the slab end); everything past is padding.
    index_t count = 0;
    while (count < q.rows() && fd.q_row_global(m, count) >= 0) ++count;
    ModeRows& mr = g.modes[static_cast<std::size_t>(m)];
    mr.row0 = count > 0 ? fd.q_row_global(m, 0) : 0;
    mr.rows = la::Matrix(count, q.cols());
    if (count > 0)
      std::copy(q.data(), q.data() + count * q.cols(), mr.rows.data());
  }
  Slot& s = *slots_[static_cast<std::size_t>(world_rank)];
  std::lock_guard<std::mutex> lk(s.mutex);
  s.prev = std::move(s.cur);
  s.cur = std::move(g);
}

void BuddyStore::start_epoch(int index, const std::vector<int>& roster) {
  std::lock_guard<std::mutex> lk(roster_mutex_);
  // Every survivor of a shrink calls this with the identical roster; only
  // the first append takes effect.
  if (static_cast<std::size_t>(index) == rosters_.size())
    rosters_.push_back(roster);
}

int BuddyStore::num_epochs() {
  std::lock_guard<std::mutex> lk(roster_mutex_);
  return static_cast<int>(rosters_.size());
}

std::vector<int> BuddyStore::roster(int epoch) {
  std::lock_guard<std::mutex> lk(roster_mutex_);
  return rosters_[static_cast<std::size_t>(epoch)];
}

int BuddyStore::latest_sweep_in_epoch(int world_rank, int epoch) {
  Slot& s = *slots_[static_cast<std::size_t>(world_rank)];
  std::lock_guard<std::mutex> lk(s.mutex);
  int latest = -1;
  if (s.cur.epoch == epoch) latest = s.cur.sweep;
  if (s.prev.epoch == epoch) latest = std::max(latest, s.prev.sweep);
  return latest;
}

BuddyStore::Generation BuddyStore::generation_at(int world_rank, int sweep,
                                                 int epoch, bool* ok) {
  Slot& s = *slots_[static_cast<std::size_t>(world_rank)];
  std::lock_guard<std::mutex> lk(s.mutex);
  if (s.cur.sweep == sweep && s.cur.epoch == epoch) {
    *ok = true;
    return s.cur;
  }
  if (s.prev.sweep == sweep && s.prev.epoch == epoch) {
    *ok = true;
    return s.prev;
  }
  *ok = false;
  return {};
}

bool BuddyStore::any_published() {
  for (auto& sp : slots_) {
    std::lock_guard<std::mutex> lk(sp->mutex);
    if (sp->cur.sweep >= 0) return true;
  }
  return false;
}

void ElasticAttempt::begin_epoch(ParCpContext& ctx) const {
  if (comm.rank() == 0 && result != nullptr) {
    result->final_ranks = comm.size();
    if (shrunk)
      result->post_shrink_nnz_imbalance = ctx.nnz_imbalance();
    else
      result->nnz_imbalance = ctx.nnz_imbalance();
  }
  // Conservation check of a repartitioned sparse epoch against the buddy
  // manifest: the new partition must account for every nonzero the old one
  // held. Collective; the branch is replicated (expected_nnz is identical
  // on every survivor and nnz() is -1 on all ranks or on none).
  if (expected_nnz >= 0 && ctx.local_problem().nnz() >= 0) {
    double local = static_cast<double>(ctx.local_problem().nnz());
    comm.allreduce_sum(&local, 1,
                       PARPP_COMM_TAG("shrink-nnz-conservation-allreduce"));
    const auto total = static_cast<index_t>(std::llround(local));
    PARPP_CHECK(total == expected_nnz,
                "elastic repartition lost nonzeros: buddy manifest holds ",
                expected_nnz, " but the shrunken grid holds ", total);
  }
}

void ElasticAttempt::publish(ParCpContext& ctx, int sweep, double cur_fit,
                             double cur_fit_old) const {
  if (store == nullptr || options.elastic.mode != ElasticMode::kShrink)
    return;
  store->publish(comm.world_rank(), epoch, sweep, cur_fit, cur_fit_old, ctx);
}

namespace {

struct RebuiltState {
  std::vector<la::Matrix> factors;  ///< empty = cold restart
  int sweep = 0;
  double fit = 0.0;
  double fit_old = -1.0;
  index_t manifest_nnz = -1;
};

std::string dims_string(const std::vector<int>& dims) {
  std::string s;
  for (std::size_t i = 0; i < dims.size(); ++i) {
    if (i > 0) s += "x";
    s += std::to_string(dims[i]);
  }
  return s;
}

std::string ranks_string(const std::vector<int>& ranks) {
  std::string s;
  for (std::size_t i = 0; i < ranks.size(); ++i) {
    if (i > 0) s += ",";
    s += std::to_string(ranks[i]);
  }
  return s;
}

/// Reconstructs the global factor matrices from the newest epoch whose
/// roster is fully AVAILABLE under the buddy rule: every roster member is
/// either alive now or survived by its ring buddy (which holds its
/// replica), and every roster slot still carries a generation of that epoch
/// at a common sweep. Row ownership changes when the grid shrinks, so a
/// consistent set can only come from slots of one epoch; walking epochs
/// newest-first covers the window right after a shrink where survivors have
/// not yet republished under the new layout. The chosen roster's slots are
/// disjoint row blocks; one All-Reduce per mode on the new communicator
/// assembles them. Throws CommFailure when state was published but no epoch
/// is recoverable (e.g. a rank and its buddy died in the same round) —
/// every survivor computes the identical verdict from identical slot data,
/// so the abort stays collective.
RebuiltState rebuild_from_store(mpsim::Comm& nc, BuddyStore& store,
                                const std::vector<index_t>& shape,
                                index_t cp_rank,
                                const RebuiltState* fallback) {
  const int me = nc.world_rank();
  const std::vector<int>& now = nc.group_world_ranks();
  const auto alive = [&](int w) {
    return std::find(now.begin(), now.end(), w) != now.end();
  };
  const bool have_fallback = fallback != nullptr && !fallback->factors.empty();

  RebuiltState rs;
  if (!store.any_published() && !have_fallback)
    return rs;  // nothing replicated: cold restart

  // Newest-first epoch walk; remember why the newest candidates failed so
  // the abort message names the real obstruction.
  std::string obstruction;
  const int cur = store.num_epochs() - 1;
  for (int e = cur; e >= 0; --e) {
    // The previous round's rebuilt snapshot is held in full by EVERY
    // survivor, so once the newest epoch is ruled out it beats any older
    // epoch (whose rollback point cannot be newer) and needs no collective:
    // all survivors reach this identical verdict from identical state.
    if (e < cur && have_fallback) return *fallback;

    const std::vector<int> roster = store.roster(e);
    const std::size_t np = roster.size();

    // Availability: who reads each slot. A member reads its own slot; a
    // dead member's slot is read by its ring buddy (the next roster member)
    // on its behalf — the buddy is the replica holder, so both dying in the
    // same round genuinely loses the rows.
    bool available = true;
    std::vector<int> reads;  // slots this rank contributes
    for (std::size_t i = 0; i < np && available; ++i) {
      const int w = roster[i];
      if (alive(w)) {
        if (w == me) reads.push_back(w);
        continue;
      }
      const int buddy = roster[(i + 1) % np];
      if (!alive(buddy)) {
        available = false;
        if (obstruction.empty())
          obstruction = "ranks " + std::to_string(w) + " and " +
                        std::to_string(buddy) +
                        " (its replica holder) were lost in the same round; "
                        "owned factor rows are unrecoverable";
        break;
      }
      if (buddy == me) reads.push_back(w);
    }
    if (!available) continue;

    // The agreed rollback point within the epoch: the newest generation
    // every roster member still holds (the spread-<=1 rendezvous argument
    // bounds the in-epoch spread; older epochs may have been evicted from
    // the two-generation window, which just fails this epoch).
    int common = store.latest_sweep_in_epoch(roster[0], e);
    for (std::size_t i = 1; i < np; ++i)
      common = std::min(common, store.latest_sweep_in_epoch(roster[i], e));
    // No common generation: either the epoch was just registered and never
    // published (benign — the previous epoch or the fallback has the data)
    // or its window rolled over. Both just mean "look older".
    if (common < 0) continue;

    rs.sweep = common;
    const int n = static_cast<int>(shape.size());
    rs.factors.assign(static_cast<std::size_t>(n), la::Matrix());
    for (int m = 0; m < n; ++m)
      rs.factors[static_cast<std::size_t>(m)] =
          la::Matrix(shape[static_cast<std::size_t>(m)], cp_rank);

    // All slot reads happen before the first All-Reduce below: no survivor
    // can leave recovery (and publish a fresh generation) until every other
    // survivor reached that rendezvous, so the reads see frozen slots.
    bool dense = false;
    index_t nnz_total = 0;
    bool consistent = true;
    for (std::size_t i = 0; i < np && consistent; ++i) {
      bool ok = false;
      const BuddyStore::Generation g =
          store.generation_at(roster[i], common, e, &ok);
      if (!ok) {
        // A slot advanced past the window between the min scan and this
        // read cannot happen (slots are frozen); a missing generation means
        // the epoch's window already rolled over. Try an older epoch.
        consistent = false;
        if (obstruction.empty())
          obstruction = "shrink recovery: replica generations diverged "
                        "(rank " +
                        std::to_string(roster[i]) + " holds no sweep-" +
                        std::to_string(common) + " snapshot of epoch " +
                        std::to_string(e) + ")";
        break;
      }
      if (g.nnz < 0)
        dense = true;
      else
        nnz_total += g.nnz;
      if (i == 0) {
        // The fit scalars are replicated at a generation; any slot serves.
        rs.fit = g.fit;
        rs.fit_old = g.fit_old;
      }
      if (std::find(reads.begin(), reads.end(), roster[i]) == reads.end())
        continue;
      for (int m = 0; m < n; ++m) {
        const BuddyStore::ModeRows& mr = g.modes[static_cast<std::size_t>(m)];
        la::Matrix& global = rs.factors[static_cast<std::size_t>(m)];
        for (index_t r = 0; r < mr.rows.rows(); ++r)
          std::copy(mr.rows.row(r), mr.rows.row(r) + mr.rows.cols(),
                    global.row(mr.row0 + r));
      }
    }
    if (!consistent) {
      rs.factors.clear();
      continue;
    }
    rs.manifest_nnz = dense ? -1 : nnz_total;

    for (int m = 0; m < n; ++m) {
      la::Matrix& global = rs.factors[static_cast<std::size_t>(m)];
      nc.allreduce_sum(global.data(), global.size(),
                       PARPP_COMM_TAG("shrink-factor-rebuild-allreduce"));
    }
    return rs;
  }

  if (have_fallback) return *fallback;

  // State was published but no epoch can be assembled: refuse to continue
  // from a corrupt or partial iterate.
  throw mpsim::CommFailure(obstruction.empty()
                               ? std::string("shrink recovery: no replica "
                                             "epoch is recoverable")
                               : obstruction);
}

}  // namespace

void run_with_elastic(mpsim::Comm& comm, const dist::DistProblem& problem,
                      const ParOptions& options,
                      const core::DriverHooks& hooks, BuddyStore& store,
                      ParResult& result, std::vector<char>& removed,
                      const std::function<void(ElasticAttempt&)>& body) {
  ElasticAttempt at;
  at.comm = comm;
  at.options = options;
  at.init_factors = hooks.initial_factors;
  if (hooks.resume != nullptr) {
    at.fit = hooks.resume->fitness;
    at.fit_old = hooks.resume->prev_fitness;
  }
  at.store = &store;
  at.result = &result;
  const bool elastic = options.elastic.mode == ElasticMode::kShrink &&
                       at.comm.shrink_supported();
  int shrinks = 0;
  std::vector<la::Matrix> warm;  // owns the rebuilt snapshot across epochs
  // Full copy of the last rebuilt snapshot, replicated on every survivor:
  // the recovery source of last resort for a failure that lands before the
  // new epoch's first publish.
  RebuiltState last_good;
  for (;;) {
    std::string failure;
    try {
      body(at);
      return;
    } catch (const mpsim::CommFailure& e) {
      if (!elastic || shrinks >= options.elastic.max_shrinks ||
          at.comm.marked_dead())
        throw;
      failure = e.what();
    } catch (const std::exception& e) {
      // Local failure: register this rank's death and poison the *current*
      // epoch's tree (the driver's catch poisons the original one, which
      // after a shrink is already dead) so survivors can shrink past us.
      at.comm.mark_self_dead(std::string("local exception: ") + e.what());
      at.comm.poison("rank " + std::to_string(at.comm.world_rank()) +
                     " failed: " + e.what());
      throw;
    }
    // Consensus + rebuild. A second failure in here propagates to the
    // driver's abort path: recovery that cannot complete ends cleanly.
    const std::vector<int> old_parts = at.comm.group_world_ranks();
    mpsim::Comm nc = at.comm.shrink(PARPP_COMM_TAG("elastic-shrink"));
    ++shrinks;
    const std::vector<int>& now = nc.group_world_ranks();
    std::vector<int> lost;
    for (int w : old_parts)
      if (std::find(now.begin(), now.end(), w) == now.end())
        lost.push_back(w);
    store.start_epoch(shrinks, now);
    RebuiltState rs = rebuild_from_store(nc, store, problem.global_shape(),
                                         options.base.rank, &last_good);
    const int order = static_cast<int>(problem.global_shape().size());
    at.comm = nc;
    at.epoch = shrinks;
    at.options.grid_dims =
        mpsim::ProcessorGrid::balanced_dims(nc.size(), order);
    at.shrunk = true;
    const bool cold = rs.factors.empty();
    if (cold) {
      // Nothing was replicated yet (failure during setup): redo the
      // caller's deterministic initialization on the new grid.
      at.init_factors = hooks.initial_factors;
      at.start_sweep = 0;
      at.fit = hooks.resume != nullptr ? hooks.resume->fitness : 0.0;
      at.fit_old = hooks.resume != nullptr ? hooks.resume->prev_fitness : -1.0;
      at.expected_nnz = -1;
      last_good = RebuiltState{};
    } else {
      last_good = rs;  // keep the replicated copy before handing rs over
      warm = std::move(rs.factors);
      at.init_factors = &warm;
      at.start_sweep = rs.sweep;
      at.fit = rs.fit;
      at.fit_old = rs.fit_old;
      at.expected_nnz = rs.manifest_nnz;
    }
    if (nc.rank() == 0) {
      const std::string resume_from =
          cold ? "restarting from the initial factors (no snapshot had been "
                 "replicated yet)"
               : "resuming from the sweep-" + std::to_string(rs.sweep) +
                     " replicated snapshot";
      std::string what;
      if (lost.empty()) {
        what = "communicator rebuilt after transient failure (" + failure +
               "); all " + std::to_string(nc.size()) + " rank(s) rejoined, " +
               resume_from;
        if (result.status == core::SolveStatus::kOk)
          result.status = core::SolveStatus::kRecovered;
      } else {
        what = "rank(s) " + ranks_string(lost) + " lost (" + failure +
               "): communicator shrunk " + std::to_string(old_parts.size()) +
               " -> " + std::to_string(now.size()) +
               "; repartitioned onto grid " +
               dims_string(at.options.grid_dims) + ", " + resume_from;
        if (result.status != core::SolveStatus::kNumericalAbort &&
            result.status != core::SolveStatus::kCommAbort)
          result.status = core::SolveStatus::kRecoveredShrunk;
        for (int d : lost) removed[static_cast<std::size_t>(d)] = 1;
      }
      result.recovery_log.push_back({rs.sweep, what});
      result.final_ranks = nc.size();
    }
  }
}

}  // namespace parpp::par
