// Parallel nonnegative CP-ALS (HALS) on the Algorithm 3 framework.
//
// PLANC — the paper's baseline — is a *nonnegative* CP code; this driver
// completes that comparison: the same block distribution, local-tree
// MTTKRP and collective pattern as Algorithm 3, with the SPD solve
// replaced by row-local HALS column updates (each Q row updates
// independently given Γ and its MTTKRP row, so the nonnegative update
// needs no extra communication).
#pragma once

#include "parpp/core/nncp.hpp"
#include "parpp/par/par_cp_als.hpp"

namespace parpp::par {

struct ParNncpOptions {
  ParOptions par;
  core::NncpOptions nn;
};

[[nodiscard]] ParResult par_nncp_hals(const dist::DistProblem& problem,
                                      int nprocs,
                                      const ParNncpOptions& options,
                                      const core::DriverHooks& hooks = {});
[[nodiscard]] ParResult par_nncp_hals(const tensor::DenseTensor& global_t,
                                      int nprocs,
                                      const ParNncpOptions& options);
[[nodiscard]] ParResult par_nncp_hals(const tensor::DenseTensor& global_t,
                                      int nprocs,
                                      const ParNncpOptions& options,
                                      const core::DriverHooks& hooks);
[[nodiscard]] ParResult par_nncp_hals(const tensor::CsfTensor& global_t,
                                      int nprocs,
                                      const ParNncpOptions& options,
                                      const core::DriverHooks& hooks = {});

}  // namespace parpp::par
