#include "parpp/par/par_pp.hpp"

#include <algorithm>
#include <cmath>
#include <string>

#include "parpp/core/dim_tree.hpp"
#include "parpp/core/fitness.hpp"
#include "parpp/core/gram.hpp"
#include "parpp/core/pp_engine.hpp"
#include "parpp/core/pp_operators.hpp"
#include "parpp/dist/sparse_dist.hpp"
#include "parpp/la/gemm.hpp"
#include "parpp/par/elastic.hpp"
#include "parpp/tensor/mttv.hpp"
#include "parpp/util/timer.hpp"

namespace parpp::par {

namespace {

/// Per-rank PP state layered over the Algorithm 3 context.
class LocalPp {
 public:
  LocalPp(mpsim::Comm& comm, ParCpContext& ctx)
      : comm_(comm), ctx_(ctx), n_(ctx.order()),
        ops_(ctx.local_problem().make_pp_operators(
            ctx.factor_dist().slices(), nullptr, ctx.engine_options())) {}

  /// Algorithm 4 line 2: local PP initialization. The donor is the local
  /// regular-sweep tree engine (footnote-1 amortization applies per rank;
  /// sparse blocks have no tree cache and the cast yields null).
  void build() {
    const auto* donor =
        dynamic_cast<const core::TreeEngineBase*>(&ctx_.engine());
    ops_->build(donor);
    // Snapshot A_p in both layouts; dS starts at zero.
    a_p_slice_.clear();
    a_p_q_.clear();
    d_grams_.assign(static_cast<std::size_t>(n_), la::Matrix());
    for (int m = 0; m < n_; ++m) {
      a_p_slice_.push_back(ctx_.factor_dist().slice(m));
      a_p_q_.push_back(ctx_.factor_dist().q(m));
      d_grams_[static_cast<std::size_t>(m)] =
          la::Matrix(ctx_.grams()[static_cast<std::size_t>(m)].rows(),
                     ctx_.grams()[static_cast<std::size_t>(m)].cols());
    }
  }

  /// dS(i) = A(i)^T dA(i) from Q rows + one R^2 All-Reduce.
  void refresh_dgram(int i) {
    const auto& q = ctx_.factor_dist().q(i);
    la::Matrix dq = q;
    dq.axpy(-1.0, a_p_q_[static_cast<std::size_t>(i)]);
    la::Matrix ds = la::matmul(q, dq, la::Trans::kYes);
    comm_.allreduce_sum(ds.data(), ds.size(),
                        PARPP_COMM_TAG("pp-dgram-allreduce"));
    d_grams_[static_cast<std::size_t>(i)] = std::move(ds);
  }

  /// Local ~M(n) before reduction: M_p(n)_loc + sum_i U(n,i)_loc
  /// (Algorithm 4 lines 5-8). The V(n) term is added after the
  /// Reduce-Scatter by the caller (line 10-11) via second_order_term().
  [[nodiscard]] la::Matrix local_correction(int n) const {
    la::Matrix m = ops_->mttkrp_p(n);
    for (int i = 0; i < n_; ++i) {
      if (i == n) continue;
      const auto& op = ops_->pair_op(std::min(n, i), std::max(n, i));
      const auto it = std::find(op.modes.begin(), op.modes.end(), i);
      const int pos = static_cast<int>(it - op.modes.begin());
      la::Matrix d_slice = ctx_.factor_dist().slice(i);
      d_slice.axpy(-1.0, a_p_slice_[static_cast<std::size_t>(i)]);
      tensor::DenseTensor u = tensor::mttv(op.data, pos, d_slice);
      const double* ud = u.data();
      double* md = m.data();
      for (index_t x = 0; x < m.size(); ++x) md[x] += ud[x];
    }
    return m;
  }

  /// V(n) = A(n) W with the Hadamard chain of Eq. (7) over global dS / S;
  /// applied to the Q rows after the Reduce-Scatter.
  [[nodiscard]] la::Matrix second_order_term(int n) const {
    const auto& grams = ctx_.grams();
    const index_t r = grams[0].rows();
    la::Matrix w(r, r);
    for (int i = 0; i < n_; ++i) {
      if (i == n) continue;
      for (int j = i + 1; j < n_; ++j) {
        if (j == n) continue;
        la::Matrix term = la::hadamard(d_grams_[static_cast<std::size_t>(i)],
                                       d_grams_[static_cast<std::size_t>(j)]);
        for (int k = 0; k < n_; ++k) {
          if (k == i || k == j || k == n) continue;
          term.hadamard_inplace(grams[static_cast<std::size_t>(k)]);
        }
        w.axpy(1.0, term);
      }
    }
    return la::matmul(ctx_.factor_dist().q(n), w);
  }

  /// Relative factor changes ||dA(i)||/||A(i)|| vs the snapshot, global
  /// (one All-Reduce of 2N scalars).
  [[nodiscard]] std::vector<double> relative_changes() const {
    std::vector<double> sq(static_cast<std::size_t>(2 * n_), 0.0);
    for (int i = 0; i < n_; ++i) {
      const auto& q = ctx_.factor_dist().q(i);
      la::Matrix dq = q;
      dq.axpy(-1.0, a_p_q_[static_cast<std::size_t>(i)]);
      const double fa = q.frobenius_norm();
      const double fd = dq.frobenius_norm();
      sq[static_cast<std::size_t>(i)] = fd * fd;
      sq[static_cast<std::size_t>(n_ + i)] = fa * fa;
    }
    comm_.allreduce_sum(sq.data(), static_cast<index_t>(sq.size()),
                        PARPP_COMM_TAG("pp-drift-allreduce"));
    std::vector<double> rel(static_cast<std::size_t>(n_));
    for (int i = 0; i < n_; ++i) {
      const double fa = std::sqrt(sq[static_cast<std::size_t>(n_ + i)]);
      rel[static_cast<std::size_t>(i)] =
          fa > 0.0 ? std::sqrt(sq[static_cast<std::size_t>(i)]) / fa : 0.0;
    }
    return rel;
  }

  /// One full PP-approximated sweep (Algorithm 4 lines 4-16).
  void approx_sweep() {
    for (int j = 0; j < n_; ++j) {
      la::Matrix m_local = local_correction(j);
      la::Matrix m_q = ctx_.factor_dist().reduce_scatter(j, m_local);
      la::Matrix v = second_order_term(j);
      m_q.axpy(1.0, v);
      ctx_.apply_pp_mttkrp(j, m_q);
      refresh_dgram(j);
    }
  }

 private:
  mpsim::Comm& comm_;
  ParCpContext& ctx_;
  int n_;
  std::unique_ptr<core::PpOperators> ops_;
  std::vector<la::Matrix> a_p_slice_, a_p_q_;
  std::vector<la::Matrix> d_grams_;
};

bool all_below(const std::vector<double>& rel, double eps) {
  for (double v : rel)
    if (v >= eps) return false;
  return true;
}

/// Shared Algorithm 2/4 loop: the factor update is the SPD solve when
/// `nn` is null, the row-local HALS passes otherwise (parallel PP-NNCP).
/// Storage-agnostic: `problem` supplies each rank's engine and PP operator
/// factories (dense slabs or sparse CSF blocks).
ParResult run_par_pp(const dist::DistProblem& problem, int nprocs,
                     const ParOptions& par_in, const core::PpOptions& pp_opt,
                     const core::NncpOptions* nn,
                     const core::DriverHooks& hooks) {
  ParResult result;
  std::vector<std::vector<Profile>> sweep_profiles(
      static_cast<std::size_t>(nprocs));
  std::vector<std::string> abort_reasons(static_cast<std::size_t>(nprocs));
  std::vector<int> abort_sweeps(static_cast<std::size_t>(nprocs), 0);
  BuddyStore store(nprocs);
  std::vector<char> removed(static_cast<std::size_t>(nprocs), 0);

  ParOptions par = par_in;
  if (par.local_engine == core::EngineKind::kNaive)
    par.local_engine = core::EngineKind::kMsdt;
  const char* regular_phase = nn ? "nncp" : "als";

  mpsim::RunOptions ropt;
  ropt.threads_per_rank = par.threads_per_rank;
  ropt.fault = par.fault;
  ropt.comm_timeout_seconds = par.comm_timeout_seconds;
  auto run_result = mpsim::run(
      nprocs,
      [&](mpsim::Comm& world) {
        const auto me = static_cast<std::size_t>(world.rank());
        int cur_sweep = 0;
        try {
          run_with_elastic(
              world, problem, par, hooks, store, result, removed,
              [&](ElasticAttempt& at) {
        mpsim::Comm& comm = at.comm;
        ParCpContext ctx(comm, problem, at.options, at.init_factors);
        at.begin_epoch(ctx);
        if (nn) ctx.enable_hals(nn->epsilon, nn->inner_iterations);
        const int n = ctx.order();
        LocalPp pp(comm, ctx);
        WallTimer timer;

        // dA across the latest regular sweep; seeded large so regular
        // sweeps run first (also after a shrink: the rebuilt epoch re-earns
        // PP eligibility with an exact sweep before approximating again).
        std::vector<la::Matrix> prev_q;
        for (int m = 0; m < n; ++m)
          prev_q.emplace_back(ctx.factor_dist().q(m).rows(),
                              ctx.factor_dist().q(m).cols());

        auto sweep_changes = [&] {
          std::vector<double> sq(static_cast<std::size_t>(2 * n), 0.0);
          for (int i = 0; i < n; ++i) {
            const auto& q = ctx.factor_dist().q(i);
            la::Matrix dq = q;
            dq.axpy(-1.0, prev_q[static_cast<std::size_t>(i)]);
            sq[static_cast<std::size_t>(i)] = std::pow(dq.frobenius_norm(), 2);
            sq[static_cast<std::size_t>(n + i)] =
                std::pow(q.frobenius_norm(), 2);
          }
          comm.allreduce_sum(sq.data(), static_cast<index_t>(sq.size()),
                             PARPP_COMM_TAG("ppbench-drift-allreduce"));
          std::vector<double> rel(static_cast<std::size_t>(n));
          for (int i = 0; i < n; ++i) {
            const double fa = std::sqrt(sq[static_cast<std::size_t>(n + i)]);
            rel[static_cast<std::size_t>(i)] =
                fa > 0.0 ? std::sqrt(sq[static_cast<std::size_t>(i)]) / fa
                         : 0.0;
          }
          return rel;
        };

        double fit = at.fit, fit_old = at.fit_old;
        int total = at.start_sweep;
        int last_checkpoint = at.start_sweep;
        int rollbacks = 0;
        bool have_sweep = false;
        bool aborted = false;
        cur_sweep = total;
        auto sweep_hook = [&](const char* phase, double f) {
          if (!hooks_continue_collective(comm, hooks,
                                         {timer.seconds(), f, phase}))
            aborted = true;
          return !aborted;
        };
        while (!aborted && total < par.base.max_sweeps &&
               std::abs(fit - fit_old) > par.base.tol) {
          if (have_sweep && all_below(sweep_changes(), pp_opt.pp_tol)) {
            // ---- PP phase -----------------------------------------
            const Profile before_init = Profile::thread_default();
            // Trust-guard snapshot: the whole phase is discarded back to
            // this iterate if an approximated sweep regresses the fitness
            // or goes non-finite.
            at.publish(ctx, total, fit, fit_old);
            ctx.capture_state();
            const double fit_p = fit;
            pp.build();
            ++total;
            cur_sweep = total;
            sweep_profiles[me].push_back(
                Profile::thread_default().delta_since(before_init));
            if (comm.rank() == 0) {
              ++result.num_pp_init;
              if (par.base.record_history)
                result.history.push_back({timer.seconds(), fit, "pp-init"});
            }
            if (!sweep_hook("pp-init", fit)) break;
            int pp_sweeps = 0;
            bool discarded = false;
            double pp_fit = fit, pp_fit_old = fit - 1.0;
            // Trust-guard floor — see the sequential driver.
            const double fit_floor =
                fit - 10.0 * std::max(par.base.tol, 1e-6);
            while (all_below(pp.relative_changes(), pp_opt.pp_tol) &&
                   std::abs(pp_fit - pp_fit_old) > par.base.tol &&
                   pp_sweeps < pp_opt.max_pp_sweeps_per_phase &&
                   total < par.base.max_sweeps) {
              const Profile before = Profile::thread_default();
              pp.approx_sweep();
              ++pp_sweeps;
              ++total;
              cur_sweep = total;
              sweep_profiles[me].push_back(
                  Profile::thread_default().delta_since(before));
              // Approximate fitness doubles as the inner stopping
              // criterion (same role as in the sequential driver).
              const double r = ctx.residual();
              pp_fit_old = pp_fit;
              pp_fit = core::fitness_from_residual(r);
              const ParCpContext::SweepHealth h = ctx.last_health();
              if (comm.rank() == 0) record_health_events(result, total, h);
              if (h.nonfinite > 0.0 || !std::isfinite(pp_fit) ||
                  pp_fit < fit_floor) {
                // Replicated verdict: discard the approximated phase on
                // every rank, fall back to exact sweeps; pair operators
                // are rebuilt at the next phase entry.
                ctx.restore_state();
                discarded = true;
                if (comm.rank() == 0) {
                  result.recovery_log.push_back(
                      {total, "PP trust guard: approximated sweep regressed "
                              "or went non-finite; discarded the PP phase "
                              "and resumed exact sweeps"});
                  if (result.status == core::SolveStatus::kOk)
                    result.status = core::SolveStatus::kRecovered;
                }
                break;
              }
              if (comm.rank() == 0) {
                ++result.num_pp_approx;
                if (par.base.record_history) {
                  result.history.push_back(
                      {timer.seconds(), pp_fit, "pp-approx"});
                }
              }
              if (!sweep_hook("pp-approx", pp_fit)) break;
            }
            // Carry PP progress into the outer stopping comparison (see
            // the sequential driver); a discarded phase keeps the entry
            // fitness — its sweeps were reverted.
            if (discarded)
              fit = fit_p;
            else if (pp_sweeps > 0)
              fit = pp_fit;
          }
          if (aborted || total >= par.base.max_sweeps) break;

          // ---- Regular sweep ---------------------------------------
          at.publish(ctx, total, fit, fit_old);
          ctx.capture_state();
          const double saved_fit = fit, saved_fit_old = fit_old;
          for (int m = 0; m < n; ++m)
            prev_q[static_cast<std::size_t>(m)] = ctx.factor_dist().q(m);
          const Profile before = Profile::thread_default();
          for (int i = 0; i < n; ++i) ctx.update_mode(i);
          ++total;
          cur_sweep = total;
          have_sweep = true;
          sweep_profiles[me].push_back(
              Profile::thread_default().delta_since(before));
          fit_old = fit;
          const double r = ctx.residual();
          fit = core::fitness_from_residual(r);
          const ParCpContext::SweepHealth h = ctx.last_health();
          if (comm.rank() == 0) record_health_events(result, total, h);
          if (h.nonfinite > 0.0 || !std::isfinite(fit)) {
            ctx.restore_state();
            fit = saved_fit;
            fit_old = saved_fit_old;
            have_sweep = false;  // changes vs prev_q are no longer valid
            if (rollbacks < kParRollbackBudget) {
              ++rollbacks;
              if (comm.rank() == 0) {
                result.recovery_log.push_back(
                    {total, "non-finite iterate: rolled back to the last "
                            "good sweep (rollback " +
                                std::to_string(rollbacks) + "/" +
                                std::to_string(kParRollbackBudget) + ")"});
                if (result.status == core::SolveStatus::kOk)
                  result.status = core::SolveStatus::kRecovered;
              }
              continue;
            }
            if (comm.rank() == 0) {
              result.recovery_log.push_back(
                  {total, "non-finite iterate persisted past the rollback "
                          "budget; aborting on the last good state"});
              result.status = core::SolveStatus::kNumericalAbort;
            }
            break;
          }
          if (comm.rank() == 0) {
            ++result.num_als_sweeps;
            result.residual = r;
            result.fitness = fit;
            result.sweeps = total;
            if (par.base.record_history)
              result.history.push_back({timer.seconds(), fit, regular_phase});
          }
          // Checkpoints land after regular (exact) sweeps only, so the
          // saved factors are never mid-approximation.
          if (hooks.checkpoint_every > 0 && hooks.on_checkpoint &&
              total - last_checkpoint >= hooks.checkpoint_every) {
            std::vector<la::Matrix> ck_factors;
            ck_factors.reserve(static_cast<std::size_t>(n));
            for (int m = 0; m < n; ++m)
              ck_factors.push_back(ctx.assemble_factor(m));
            if (comm.rank() == 0)
              hooks.on_checkpoint(ck_factors, total, fit, fit_old);
            last_checkpoint = total;
          }
          if (!sweep_hook(regular_phase, fit)) break;
        }
        // Final exact residual at the current factors (the loop may exit
        // mid-PP-phase, leaving the stored residual stale).
        const double r_final = ctx.measure_residual();
        std::vector<la::Matrix> assembled;
        for (int m = 0; m < n; ++m) assembled.push_back(ctx.assemble_factor(m));
        if (comm.rank() == 0) {
          result.factors = std::move(assembled);
          result.sweeps = total;
          result.residual = r_final;
          result.fitness = core::fitness_from_residual(r_final);
        }
              });
        } catch (const mpsim::CommFailure& e) {
          abort_reasons[me] = e.what();
          abort_sweeps[me] = cur_sweep;
        } catch (const std::exception& e) {
          abort_reasons[me] = std::string("local exception: ") + e.what();
          abort_sweeps[me] = cur_sweep;
          world.poison("rank " + std::to_string(world.rank()) +
                       " failed: " + e.what());
        }
      },
      ropt);
  merge_abort_records(result, abort_reasons, abort_sweeps, removed);

  for (std::size_t s = 0;; ++s) {
    Profile worst;
    Profile cat_max;
    double worst_total = -1.0;
    bool any = false;
    for (const auto& per_rank : sweep_profiles) {
      if (s >= per_rank.size()) continue;
      any = true;
      cat_max.max_merge(per_rank[s]);
      if (per_rank[s].total_seconds() > worst_total) {
        worst_total = per_rank[s].total_seconds();
        worst = per_rank[s];
      }
    }
    if (!any) break;
    result.sweep_profiles.push_back(worst);
    result.critical_path_profile.accumulate(cat_max);
  }
  if (!result.history.empty() && result.sweeps > 0) {
    result.mean_sweep_seconds =
        result.history.back().seconds / static_cast<double>(result.sweeps);
  }
  result.comm_cost = run_result.max_cost();
  return result;
}

}  // namespace

ParResult par_pp_cp_als(const dist::DistProblem& problem, int nprocs,
                        const ParPpOptions& options,
                        const core::DriverHooks& hooks) {
  return run_par_pp(problem, nprocs, options.par, options.pp, nullptr, hooks);
}

ParResult par_pp_cp_als(const tensor::DenseTensor& global_t, int nprocs,
                        const ParPpOptions& options) {
  return par_pp_cp_als(global_t, nprocs, options, core::DriverHooks{});
}

ParResult par_pp_cp_als(const tensor::DenseTensor& global_t, int nprocs,
                        const ParPpOptions& options,
                        const core::DriverHooks& hooks) {
  const dist::DenseBlockProblem problem(global_t);
  return run_par_pp(problem, nprocs, options.par, options.pp, nullptr,
                    hooks);
}

ParResult par_pp_cp_als(const tensor::CsfTensor& global_t, int nprocs,
                        const ParPpOptions& options,
                        const core::DriverHooks& hooks) {
  const auto problem =
      dist::make_sparse_problem(global_t, options.par.partition);
  return run_par_pp(*problem, nprocs, options.par, options.pp, nullptr,
                    hooks);
}

ParResult par_pp_nncp_hals(const dist::DistProblem& problem, int nprocs,
                           const ParPpNncpOptions& options,
                           const core::DriverHooks& hooks) {
  return run_par_pp(problem, nprocs, options.par, options.pp, &options.nn,
                    hooks);
}

ParResult par_pp_nncp_hals(const tensor::DenseTensor& global_t, int nprocs,
                           const ParPpNncpOptions& options,
                           const core::DriverHooks& hooks) {
  const dist::DenseBlockProblem problem(global_t);
  return run_par_pp(problem, nprocs, options.par, options.pp, &options.nn,
                    hooks);
}

ParResult par_pp_nncp_hals(const tensor::CsfTensor& global_t, int nprocs,
                           const ParPpNncpOptions& options,
                           const core::DriverHooks& hooks) {
  const auto problem =
      dist::make_sparse_problem(global_t, options.par.partition);
  return run_par_pp(*problem, nprocs, options.par, options.pp, &options.nn,
                    hooks);
}

PpKernelTimings time_pp_kernels(const tensor::DenseTensor& global_t,
                                int nprocs, const ParPpOptions& options,
                                int sweeps) {
  PpKernelTimings out;
  std::vector<double> init_secs(static_cast<std::size_t>(nprocs), 0.0);
  std::vector<double> approx_secs(static_cast<std::size_t>(nprocs), 0.0);
  std::vector<Profile> init_prof(static_cast<std::size_t>(nprocs));
  std::vector<Profile> approx_prof(static_cast<std::size_t>(nprocs));

  ParOptions par = options.par;
  mpsim::RunOptions ropt;
  ropt.threads_per_rank = par.threads_per_rank;
  auto run_result = mpsim::run(
      nprocs,
      [&](mpsim::Comm& comm) {
        ParCpContext ctx(comm, global_t, par);
        const int n = ctx.order();
        // One regular sweep to warm the tree cache (donor amortization).
        for (int i = 0; i < n; ++i) ctx.update_mode(i);

        LocalPp pp(comm, ctx);
        const auto r = static_cast<std::size_t>(comm.rank());
        {
          WallTimer t;
          const Profile before = Profile::thread_default();
          pp.build();
          comm.barrier(PARPP_COMM_TAG("ppbench-init-barrier"));
          init_secs[r] = t.seconds();
          init_prof[r] = Profile::thread_default().delta_since(before);
        }
        {
          WallTimer t;
          const Profile before = Profile::thread_default();
          for (int s = 0; s < sweeps; ++s) pp.approx_sweep();
          comm.barrier(PARPP_COMM_TAG("ppbench-sweep-barrier"));
          approx_secs[r] = t.seconds() / std::max(1, sweeps);
          approx_prof[r] = Profile::thread_default().delta_since(before);
        }
      },
      ropt);

  for (int r = 0; r < nprocs; ++r) {
    out.init_seconds = std::max(out.init_seconds, init_secs[static_cast<std::size_t>(r)]);
    out.approx_sweep_seconds =
        std::max(out.approx_sweep_seconds, approx_secs[static_cast<std::size_t>(r)]);
  }
  out.init_profile = init_prof.empty() ? Profile{} : init_prof[0];
  out.approx_profile = approx_prof.empty() ? Profile{} : approx_prof[0];
  out.comm_cost = run_result.max_cost();
  return out;
}

}  // namespace parpp::par
