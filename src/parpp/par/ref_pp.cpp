#include "parpp/par/ref_pp.hpp"

#include <algorithm>
#include <map>

#include "parpp/core/pp_operators.hpp"
#include "parpp/la/gemm.hpp"
#include "parpp/tensor/mttv.hpp"
#include "parpp/util/timer.hpp"

namespace parpp::par {

namespace {

/// Reference PP state: operators are globally reduced over the ranks
/// sharing each (i, j) slab pair, and every U(n,i) triggers its own
/// Reduce-Scatter.
class RefPp {
 public:
  RefPp(mpsim::Comm& comm, ParCpContext& ctx)
      : comm_(comm), ctx_(ctx), n_(ctx.order()),
        ops_(ctx.local_problem().make_pp_operators(
            ctx.factor_dist().slices(), nullptr, ctx.engine_options())) {
    // Sub-communicators of ranks sharing both the i-slab and the j-slab:
    // the group over which the reference implementation reduces the
    // operator output. Built collectively, identical order on all ranks.
    const auto& grid = ctx.grid();
    for (int i = 0; i < n_; ++i) {
      for (int j = i + 1; j < n_; ++j) {
        int color = grid.coord(i) * grid.dim(j) + grid.coord(j);
        int key = 0;
        for (int m = 0; m < grid.order(); ++m) {
          if (m == i || m == j) continue;
          key = key * grid.dim(m) + grid.coord(m);
        }
        pair_comms_.emplace(
            std::make_pair(i, j),
            comm_.split(color, key, PARPP_COMM_TAG("refpp-pair-split")));
      }
    }
  }

  void build() {
    ops_->build(nullptr);  // no donor: the reference recomputes everything
    // "Reduction on the output tensor": All-Reduce every pair operator over
    // the ranks sharing its slabs — the dominant communication of
    // PP-init-ref (Table II).
    for (int i = 0; i < n_; ++i) {
      for (int j = i + 1; j < n_; ++j) {
        auto& op = ops_->mutable_pair_op(i, j);
        const auto& pc = pair_comms_.at(std::make_pair(i, j));
        pc.allreduce_sum(op.data.data(), op.data.size(),
                         PARPP_COMM_TAG("refpp-pairop-allreduce"));
      }
    }
    a_p_slice_.clear();
    for (int m = 0; m < n_; ++m)
      a_p_slice_.push_back(ctx_.factor_dist().slice(m));
  }

  /// One approximated sweep with per-correction collectives.
  void approx_sweep() {
    for (int j = 0; j < n_; ++j) {
      // Base term: M_p(n) local + its own Reduce-Scatter.
      la::Matrix m_q =
          ctx_.factor_dist().reduce_scatter(j, ops_->mttkrp_p(j));
      // Each first-order correction is reduced separately (N-1 extra
      // collectives per mode — the N^2 pattern of the reference).
      for (int i = 0; i < n_; ++i) {
        if (i == j) continue;
        const auto& op = ops_->pair_op(std::min(j, i), std::max(j, i));
        const auto it = std::find(op.modes.begin(), op.modes.end(), i);
        const int pos = static_cast<int>(it - op.modes.begin());
        la::Matrix d_slice = ctx_.factor_dist().slice(i);
        d_slice.axpy(-1.0, a_p_slice_[static_cast<std::size_t>(i)]);
        // CTF-style general contraction redistributes its inputs before
        // multiplying: model the dA redistribution over the operator's
        // owner group (contents are identical within the group, so the
        // broadcast is value-preserving while charging the alpha-beta
        // cost the reference implementation pays).
        const auto& pc_in =
            pair_comms_.at(std::make_pair(std::min(j, i), std::max(j, i)));
        pc_in.bcast(d_slice.data(), d_slice.size(), 0,
                    PARPP_COMM_TAG("refpp-da-bcast"));
        tensor::DenseTensor u = tensor::mttv(op.data, pos, d_slice);
        la::Matrix u_m(u.extent(0), u.extent(1));
        std::copy(u.data(), u.data() + u.size(), u_m.data());
        // The operator was already summed over the pair group; dividing by
        // the redundancy keeps each rank's contribution correctly weighted
        // in the subsequent reduction.
        const auto& pc =
            pair_comms_.at(std::make_pair(std::min(j, i), std::max(j, i)));
        u_m.scale(1.0 / static_cast<double>(pc.size()));
        la::Matrix u_q = ctx_.factor_dist().reduce_scatter(j, u_m);
        m_q.axpy(1.0, u_q);
      }
      ctx_.apply_pp_mttkrp(j, m_q);
    }
  }

 private:
  mpsim::Comm& comm_;
  ParCpContext& ctx_;
  int n_;
  std::unique_ptr<core::PpOperators> ops_;
  std::map<std::pair<int, int>, mpsim::Comm> pair_comms_;
  std::vector<la::Matrix> a_p_slice_;
};

}  // namespace

PpKernelTimings time_ref_pp_kernels(const tensor::DenseTensor& global_t,
                                    int nprocs, const ParPpOptions& options,
                                    int sweeps) {
  PpKernelTimings out;
  std::vector<double> init_secs(static_cast<std::size_t>(nprocs), 0.0);
  std::vector<double> approx_secs(static_cast<std::size_t>(nprocs), 0.0);
  std::vector<Profile> init_prof(static_cast<std::size_t>(nprocs));
  std::vector<Profile> approx_prof(static_cast<std::size_t>(nprocs));

  mpsim::RunOptions ropt;
  ropt.threads_per_rank = options.par.threads_per_rank;
  auto run_result = mpsim::run(
      nprocs,
      [&](mpsim::Comm& comm) {
        ParCpContext ctx(comm, global_t, options.par);
        const int n = ctx.order();
        for (int i = 0; i < n; ++i) ctx.update_mode(i);
        RefPp pp(comm, ctx);
        const auto r = static_cast<std::size_t>(comm.rank());
        {
          WallTimer t;
          const Profile before = Profile::thread_default();
          pp.build();
          comm.barrier(PARPP_COMM_TAG("refpp-init-barrier"));
          init_secs[r] = t.seconds();
          init_prof[r] = Profile::thread_default().delta_since(before);
        }
        {
          WallTimer t;
          const Profile before = Profile::thread_default();
          for (int s = 0; s < sweeps; ++s) pp.approx_sweep();
          comm.barrier(PARPP_COMM_TAG("refpp-sweep-barrier"));
          approx_secs[r] = t.seconds() / std::max(1, sweeps);
          approx_prof[r] = Profile::thread_default().delta_since(before);
        }
      },
      ropt);

  for (int r = 0; r < nprocs; ++r) {
    out.init_seconds =
        std::max(out.init_seconds, init_secs[static_cast<std::size_t>(r)]);
    out.approx_sweep_seconds = std::max(
        out.approx_sweep_seconds, approx_secs[static_cast<std::size_t>(r)]);
  }
  out.init_profile = init_prof.empty() ? Profile{} : init_prof[0];
  out.approx_profile = approx_prof.empty() ? Profile{} : approx_prof[0];
  out.comm_cost = run_result.max_cost();
  return out;
}

}  // namespace parpp::par
