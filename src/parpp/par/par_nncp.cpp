#include "parpp/par/par_nncp.hpp"

#include <algorithm>
#include <cmath>

#include "parpp/core/fitness.hpp"
#include "parpp/core/gram.hpp"
#include "parpp/dist/sparse_dist.hpp"
#include "parpp/la/gemm.hpp"
#include "parpp/util/timer.hpp"

namespace parpp::par {

ParResult par_nncp_hals(const tensor::DenseTensor& global_t, int nprocs,
                        const ParNncpOptions& options) {
  return par_nncp_hals(global_t, nprocs, options, core::DriverHooks{});
}

ParResult par_nncp_hals(const tensor::DenseTensor& global_t, int nprocs,
                        const ParNncpOptions& options,
                        const core::DriverHooks& hooks) {
  const dist::DenseBlockProblem problem(global_t);
  return par_nncp_hals(problem, nprocs, options, hooks);
}

ParResult par_nncp_hals(const tensor::CsfTensor& global_t, int nprocs,
                        const ParNncpOptions& options,
                        const core::DriverHooks& hooks) {
  const auto problem =
      dist::make_sparse_problem(global_t, options.par.partition);
  return par_nncp_hals(*problem, nprocs, options, hooks);
}

ParResult par_nncp_hals(const dist::DistProblem& problem, int nprocs,
                        const ParNncpOptions& options,
                        const core::DriverHooks& hooks) {
  ParResult result;
  const ParOptions& par = options.par;

  mpsim::RunOptions ropt;
  ropt.threads_per_rank = par.threads_per_rank;
  auto run_result = mpsim::run(
      nprocs,
      [&](mpsim::Comm& comm) {
        ParOptions local = par;
        local.local_engine = options.nn.engine;
        ParCpContext ctx(comm, problem, local, hooks.initial_factors);
        if (comm.rank() == 0) result.nnz_imbalance = ctx.nnz_imbalance();
        // MTTKRP + Reduce-Scatter exactly as Algorithm 3, with the factor
        // update swapped for the projected HALS passes (row-local, so zero
        // extra communication) — the same hook the PP-NNCP driver uses.
        ctx.enable_hals(options.nn.epsilon, options.nn.inner_iterations);
        const int n = ctx.order();
        WallTimer timer;
        double fit = 0.0, fit_old = -1.0;
        int sweep = 0;
        while (sweep < par.base.max_sweeps &&
               std::abs(fit - fit_old) > par.base.tol) {
          for (int i = 0; i < n; ++i) ctx.update_mode(i);
          ++sweep;
          fit_old = fit;
          const double r = ctx.measure_residual();
          fit = core::fitness_from_residual(r);
          if (comm.rank() == 0) {
            result.residual = r;
            result.fitness = fit;
            result.sweeps = sweep;
            result.num_als_sweeps = sweep;
            if (par.base.record_history)
              result.history.push_back({timer.seconds(), fit, "nncp"});
          }
          if (!hooks_continue_collective(comm, hooks,
                                         {timer.seconds(), fit, "nncp"}))
            break;
        }
        std::vector<la::Matrix> assembled;
        for (int m = 0; m < n; ++m) assembled.push_back(ctx.assemble_factor(m));
        if (comm.rank() == 0) result.factors = std::move(assembled);
      },
      ropt);

  if (!result.history.empty() && result.sweeps > 0) {
    result.mean_sweep_seconds =
        result.history.back().seconds / static_cast<double>(result.sweeps);
  }
  result.comm_cost = run_result.max_cost();
  return result;
}

}  // namespace parpp::par
