#include "parpp/par/par_nncp.hpp"

#include <algorithm>
#include <cmath>
#include <string>

#include "parpp/core/fitness.hpp"
#include "parpp/core/gram.hpp"
#include "parpp/dist/sparse_dist.hpp"
#include "parpp/la/gemm.hpp"
#include "parpp/par/elastic.hpp"
#include "parpp/util/timer.hpp"

namespace parpp::par {

ParResult par_nncp_hals(const tensor::DenseTensor& global_t, int nprocs,
                        const ParNncpOptions& options) {
  return par_nncp_hals(global_t, nprocs, options, core::DriverHooks{});
}

ParResult par_nncp_hals(const tensor::DenseTensor& global_t, int nprocs,
                        const ParNncpOptions& options,
                        const core::DriverHooks& hooks) {
  const dist::DenseBlockProblem problem(global_t);
  return par_nncp_hals(problem, nprocs, options, hooks);
}

ParResult par_nncp_hals(const tensor::CsfTensor& global_t, int nprocs,
                        const ParNncpOptions& options,
                        const core::DriverHooks& hooks) {
  const auto problem =
      dist::make_sparse_problem(global_t, options.par.partition);
  return par_nncp_hals(*problem, nprocs, options, hooks);
}

ParResult par_nncp_hals(const dist::DistProblem& problem, int nprocs,
                        const ParNncpOptions& options,
                        const core::DriverHooks& hooks) {
  ParResult result;
  ParOptions par = options.par;
  par.local_engine = options.nn.engine;
  std::vector<std::string> abort_reasons(static_cast<std::size_t>(nprocs));
  std::vector<int> abort_sweeps(static_cast<std::size_t>(nprocs), 0);
  BuddyStore store(nprocs);
  std::vector<char> removed(static_cast<std::size_t>(nprocs), 0);

  mpsim::RunOptions ropt;
  ropt.threads_per_rank = par.threads_per_rank;
  ropt.fault = par.fault;
  ropt.comm_timeout_seconds = par.comm_timeout_seconds;
  auto run_result = mpsim::run(
      nprocs,
      [&](mpsim::Comm& world) {
        const auto me = static_cast<std::size_t>(world.rank());
        int cur_sweep = 0;
        try {
          run_with_elastic(
              world, problem, par, hooks, store, result, removed,
              [&](ElasticAttempt& at) {
                mpsim::Comm& comm = at.comm;
                ParCpContext ctx(comm, problem, at.options, at.init_factors);
                at.begin_epoch(ctx);
                // MTTKRP + Reduce-Scatter exactly as Algorithm 3, with the
                // factor update swapped for the projected HALS passes
                // (row-local, so zero extra communication) — the same hook
                // the PP-NNCP driver uses.
                ctx.enable_hals(options.nn.epsilon,
                                options.nn.inner_iterations);
                const int n = ctx.order();
                WallTimer timer;
                double fit = at.fit, fit_old = at.fit_old;
                int sweep = at.start_sweep, rollbacks = 0;
                cur_sweep = sweep;
                while (sweep < par.base.max_sweeps &&
                       std::abs(fit - fit_old) > par.base.tol) {
                  at.publish(ctx, sweep, fit, fit_old);
                  ctx.capture_state();
                  const double saved_fit = fit, saved_fit_old = fit_old;
                  for (int i = 0; i < n; ++i) ctx.update_mode(i);
                  ++sweep;
                  cur_sweep = sweep;
                  fit_old = fit;
                  const double r = ctx.measure_residual();
                  fit = core::fitness_from_residual(r);
                  const ParCpContext::SweepHealth h = ctx.last_health();
                  if (comm.rank() == 0) record_health_events(result, sweep, h);
                  if (h.nonfinite > 0.0 || !std::isfinite(fit)) {
                    ctx.restore_state();
                    fit = saved_fit;
                    fit_old = saved_fit_old;
                    if (rollbacks < kParRollbackBudget) {
                      ++rollbacks;
                      if (comm.rank() == 0) {
                        result.recovery_log.push_back(
                            {sweep,
                             "non-finite iterate: rolled back to the last "
                             "good sweep (rollback " +
                                 std::to_string(rollbacks) + "/" +
                                 std::to_string(kParRollbackBudget) + ")"});
                        if (result.status == core::SolveStatus::kOk)
                          result.status = core::SolveStatus::kRecovered;
                      }
                      continue;
                    }
                    if (comm.rank() == 0) {
                      result.recovery_log.push_back(
                          {sweep,
                           "non-finite iterate persisted past the rollback "
                           "budget; aborting on the last good state"});
                      result.status = core::SolveStatus::kNumericalAbort;
                    }
                    break;
                  }
                  if (comm.rank() == 0) {
                    result.residual = r;
                    result.fitness = fit;
                    result.sweeps = sweep;
                    result.num_als_sweeps = sweep;
                    if (par.base.record_history)
                      result.history.push_back({timer.seconds(), fit, "nncp"});
                  }
                  if (hooks.checkpoint_every > 0 && hooks.on_checkpoint &&
                      sweep % hooks.checkpoint_every == 0) {
                    std::vector<la::Matrix> ck_factors;
                    ck_factors.reserve(static_cast<std::size_t>(n));
                    for (int m = 0; m < n; ++m)
                      ck_factors.push_back(ctx.assemble_factor(m));
                    if (comm.rank() == 0)
                      hooks.on_checkpoint(ck_factors, sweep, fit, fit_old);
                  }
                  if (!hooks_continue_collective(
                          comm, hooks, {timer.seconds(), fit, "nncp"}))
                    break;
                }
                std::vector<la::Matrix> assembled;
                for (int m = 0; m < n; ++m)
                  assembled.push_back(ctx.assemble_factor(m));
                if (comm.rank() == 0) result.factors = std::move(assembled);
              });
        } catch (const mpsim::CommFailure& e) {
          abort_reasons[me] = e.what();
          abort_sweeps[me] = cur_sweep;
        } catch (const std::exception& e) {
          abort_reasons[me] = std::string("local exception: ") + e.what();
          abort_sweeps[me] = cur_sweep;
          world.poison("rank " + std::to_string(world.rank()) +
                       " failed: " + e.what());
        }
      },
      ropt);
  merge_abort_records(result, abort_reasons, abort_sweeps, removed);

  if (!result.history.empty() && result.sweeps > 0) {
    result.mean_sweep_seconds =
        result.history.back().seconds / static_cast<double>(result.sweeps);
  }
  result.comm_cost = run_result.max_cost();
  return result;
}

}  // namespace parpp::par
