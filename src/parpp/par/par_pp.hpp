// Communication-efficient parallel pairwise perturbation (Algorithm 4).
//
// The PP operators are built from each rank's *local* tensor block with the
// locally replicated slice factors — no communication at all in the
// initialization step beyond what the preceding regular sweep already did.
// In the approximated step the first-order corrections U(n,i) are likewise
// local; the only collectives per factor update are the single
// Reduce-Scatter of ~M(n), the R^2 Gram All-Reduce, the slice All-Gather
// (identical to Algorithm 3) and one small All-Reduce for dS(i).
#pragma once

#include "parpp/core/nncp.hpp"
#include "parpp/core/pp_als.hpp"
#include "parpp/par/par_cp_als.hpp"

namespace parpp::par {

struct ParPpOptions {
  ParOptions par;
  core::PpOptions pp;
};

/// Runs PP-CP-ALS (Algorithm 2 with the Algorithm 4 subroutine) on
/// `nprocs` simulated ranks. The DistProblem overload is the
/// storage-agnostic core; DenseTensor overloads are unchanged shims and
/// the CsfTensor overload runs the same loop over SparseBlockDist blocks
/// (sparse PP operators, identical collective pattern).
[[nodiscard]] ParResult par_pp_cp_als(const dist::DistProblem& problem,
                                      int nprocs, const ParPpOptions& options,
                                      const core::DriverHooks& hooks = {});
[[nodiscard]] ParResult par_pp_cp_als(const tensor::DenseTensor& global_t,
                                      int nprocs,
                                      const ParPpOptions& options);
[[nodiscard]] ParResult par_pp_cp_als(const tensor::DenseTensor& global_t,
                                      int nprocs, const ParPpOptions& options,
                                      const core::DriverHooks& hooks);
[[nodiscard]] ParResult par_pp_cp_als(const tensor::CsfTensor& global_t,
                                      int nprocs, const ParPpOptions& options,
                                      const core::DriverHooks& hooks = {});

struct ParPpNncpOptions {
  ParOptions par;
  core::PpOptions pp;
  core::NncpOptions nn;
};

/// Parallel PP-accelerated nonnegative HALS: the Algorithm 4 loop with the
/// row-local HALS update substituted for the SPD solve (see
/// core::pp_nncp_hals for why the composition is exact to PP's usual
/// guarantees). Identical collective pattern and costs to par_pp_cp_als.
[[nodiscard]] ParResult par_pp_nncp_hals(const dist::DistProblem& problem,
                                         int nprocs,
                                         const ParPpNncpOptions& options,
                                         const core::DriverHooks& hooks = {});
[[nodiscard]] ParResult par_pp_nncp_hals(const tensor::DenseTensor& global_t,
                                         int nprocs,
                                         const ParPpNncpOptions& options,
                                         const core::DriverHooks& hooks = {});
[[nodiscard]] ParResult par_pp_nncp_hals(const tensor::CsfTensor& global_t,
                                         int nprocs,
                                         const ParPpNncpOptions& options,
                                         const core::DriverHooks& hooks = {});

/// Benchmark hook: runs `sweeps` PP-approximated sweeps (after one build)
/// regardless of the tolerance, returning per-sweep profiles and costs —
/// used by the Fig. 3 / Table II per-sweep timing benches.
struct PpKernelTimings {
  double init_seconds = 0.0;          ///< PP initialization wall time
  double approx_sweep_seconds = 0.0;  ///< mean approximated-sweep wall time
  Profile init_profile;
  Profile approx_profile;             ///< summed over the timed sweeps
  mpsim::CostCounter comm_cost;
};
[[nodiscard]] PpKernelTimings time_pp_kernels(
    const tensor::DenseTensor& global_t, int nprocs, const ParPpOptions& options,
    int sweeps);

}  // namespace parpp::par
