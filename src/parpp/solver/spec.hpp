// SolverSpec / SolveReport — the one composable description of a CP solve.
//
// The paper's observation is that every CP variant — plain ALS (Alg. 1),
// pairwise perturbation (Alg. 2/4) and the nonnegative HALS the PLANC
// baseline runs — shares the same MTTKRP bottleneck. The spec below makes
// the variants composable instead of multiplicative: `Method` picks the
// update rule, `Execution` picks sequential vs the simulated
// message-passing runtime, `engine` picks the MTTKRP amortization, and
// stopping / warm start / observation are orthogonal to all three. Every
// cell of the method × execution matrix runs through parpp::solve(),
// including PP × NNCP, which no legacy entry point offered.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "parpp/core/cp_als.hpp"
#include "parpp/core/nncp.hpp"
#include "parpp/core/pp_als.hpp"
#include "parpp/mpsim/cost.hpp"
#include "parpp/par/par_cp_als.hpp"

namespace parpp::solver {

/// Non-owning view of the decomposition input — the storage axis of the
/// solve. Implicitly constructible from either storage class, so
/// parpp::solve(tensor, spec) reads the same for dense and sparse callers;
/// the facade dispatches on is_sparse() to the matching driver adapter
/// (sparse runs never densify — they go through core::TensorProblem and
/// the CSF engine). The referenced tensor must outlive the solve call.
class TensorSource {
 public:
  /*implicit*/ TensorSource(const tensor::DenseTensor& t) : dense_(&t) {}
  /*implicit*/ TensorSource(const tensor::CsfTensor& t) : sparse_(&t) {}

  [[nodiscard]] bool is_sparse() const { return sparse_ != nullptr; }
  [[nodiscard]] const tensor::DenseTensor& dense() const {
    PARPP_CHECK(dense_ != nullptr, "TensorSource: not a dense tensor");
    return *dense_;
  }
  [[nodiscard]] const tensor::CsfTensor& sparse() const {
    PARPP_CHECK(sparse_ != nullptr, "TensorSource: not a sparse tensor");
    return *sparse_;
  }

 private:
  const tensor::DenseTensor* dense_ = nullptr;
  const tensor::CsfTensor* sparse_ = nullptr;
};

/// The factor-update rule (one axis of the solver matrix).
enum class Method {
  kAls,       ///< CP-ALS, normal-equations solve (Algorithm 1 / 3)
  kPp,        ///< pairwise-perturbation-accelerated ALS (Algorithm 2 / 4)
  kNncpHals,  ///< nonnegative CP via HALS column updates
  kPpNncp,    ///< PP-accelerated nonnegative HALS (new: PP × NNCP)
};

/// Where the sweeps run. nprocs <= 1 is the sequential driver; nprocs > 1
/// runs the simulated message-passing runtime (Algorithm 3/4) with one
/// thread-rank per processor.
struct Execution {
  int nprocs = 1;
  /// Processor grid; empty picks mpsim::ProcessorGrid::balanced_dims.
  std::vector<int> grid_dims = {};
  /// How the R x R normal equations are solved on the grid (ignored by the
  /// HALS methods, whose update is row-local).
  par::SolveMode solve_mode = par::SolveMode::kDistributedRows;
  int threads_per_rank = 1;
  /// How sparse inputs are partitioned over the grid: uniform blocks, or
  /// nnz-balanced chains-on-chains boundaries for skewed tensors (same
  /// answers, flatter per-rank load). Dense inputs ignore it.
  dist::PartitionKind partition = dist::PartitionKind::kUniformBlocks;
  /// Injected communication fault for chaos runs (kNone = clean). Requires
  /// a parallel execution — faults live in the simulated message-passing
  /// runtime, so solve() rejects an active plan with nprocs == 1.
  mpsim::FaultPlan fault = {};
  /// Collective timeout in seconds; <= 0 picks the runtime default (60 s,
  /// or 2 s when a fault plan is active).
  double comm_timeout_seconds = 0.0;
  /// Elastic fault recovery: with ElasticMode::kShrink, a rank failure
  /// shrinks the communicator to the survivors, repartitions the tensor,
  /// and resumes from the buddy-replicated snapshot instead of aborting
  /// (SolveReport::status reports kRecoveredShrunk). kOff keeps the abort
  /// semantics. Sequential executions ignore it.
  par::ElasticOptions elastic = {};

  [[nodiscard]] bool is_parallel() const { return nprocs > 1; }

  [[nodiscard]] static Execution sequential() { return {}; }
  [[nodiscard]] static Execution simulated_parallel(
      int nprocs, std::vector<int> grid_dims = {},
      par::SolveMode solve_mode = par::SolveMode::kDistributedRows,
      int threads_per_rank = 1) {
    Execution e;
    e.nprocs = nprocs;
    e.grid_dims = std::move(grid_dims);
    e.solve_mode = solve_mode;
    e.threads_per_rank = threads_per_rank;
    return e;
  }
};

/// Composable stopping criteria; the run stops at the first one that fires.
struct StoppingRule {
  int max_sweeps = 300;
  /// Stop when |fitness(t) - fitness(t-1)| < tol (the paper's criterion).
  double fitness_tol = 1e-5;
  /// Wall-clock budget in seconds; <= 0 means unlimited.
  double max_seconds = 0.0;
  /// Arbitrary user criterion, checked once per sweep; true stops the run.
  std::function<bool(const core::SweepRecord&)> predicate = {};
};

/// Why a solve returned.
enum class StopReason {
  kConverged,   ///< fitness delta fell below fitness_tol
  kMaxSweeps,   ///< sweep budget exhausted
  kTimeBudget,  ///< wall-clock budget exhausted
  kPredicate,   ///< StoppingRule::predicate fired
  kObserver,    ///< the observer requested a stop
  kFault,       ///< a guardrail or communicator failure ended the run
                ///< (SolveReport::status and recovery_log say why)
};

/// Checkpoint/restart policy. With a path and every > 0, the drivers write
/// a crash-consistent checkpoint (factors + sweep counter + stopping-rule
/// state + RNG provenance) after every `every`-th sweep — the PP methods
/// checkpoint after exact sweeps only, so the saved factors are never
/// mid-approximation. With resume set, solve() first tries to load `path`:
/// if the file exists the run warm-starts from it and only spends the
/// remaining sweep budget; if it does not (e.g. the previous run died
/// before the first checkpoint) the run cold-starts — so a kill-and-resume
/// loop needs no coordination about whether a checkpoint was reached.
struct CheckpointOptions {
  std::string path;   ///< empty disables checkpointing entirely
  int every = 0;      ///< checkpoint period in sweeps; <= 0 disables saves
  bool resume = false;

  [[nodiscard]] bool saving() const { return !path.empty() && every > 0; }
};

enum class ObserverAction { kContinue, kStop };

/// Per-sweep callback: receives the record just produced and a view of the
/// current factors (empty for simulated-parallel runs, whose factors live
/// distributed until the run assembles them). Subsumes record_history for
/// streaming progress and enables early abort.
using Observer = std::function<ObserverAction(
    const core::SweepRecord&, const std::vector<la::Matrix>&)>;

/// Everything parpp::solve() needs. The defaults run sequential MSDT ALS
/// with the paper's stopping rule on a cold start.
struct SolverSpec {
  Method method = Method::kAls;
  index_t rank = 16;
  std::uint64_t seed = 42;

  /// MTTKRP engine for the regular sweeps — one engine axis for every
  /// method (overrides PpOptions::regular_engine / NncpOptions::engine).
  /// The PP methods need a tree engine for their operator-build
  /// amortization, so kNaive is promoted to kMsdt for them, identically in
  /// sequential and parallel execution.
  core::EngineKind engine = core::EngineKind::kMsdt;
  core::EngineOptions engine_options = {};

  Execution execution = {};
  StoppingRule stopping = {};

  /// PP knobs; used by kPp and kPpNncp (regular_engine is overridden by
  /// `engine` above).
  core::PpOptions pp = {};
  /// HALS knobs; used by kNncpHals and kPpNncp (engine is overridden by
  /// `engine` above).
  core::NncpOptions nncp = {};

  /// Warm start: when non-empty, used instead of the seeded initialization
  /// (one matrix per mode, extent x rank). Enables rank continuation and
  /// restart scenarios; pair with the factors of a previous SolveReport.
  std::vector<la::Matrix> initial_factors = {};

  /// Checkpoint/restart; inert by default. A loaded checkpoint overrides
  /// initial_factors.
  CheckpointOptions checkpoint = {};

  bool record_history = true;
  Observer observer = {};
};

/// Result of a solve; the union of what the sequential and parallel driver
/// cores report (parallel-only fields stay default for sequential runs).
struct SolveReport {
  std::vector<la::Matrix> factors;
  double residual = 1.0;
  double fitness = 0.0;
  int sweeps = 0;  ///< total sweeps of any kind
  StopReason stop_reason = StopReason::kConverged;
  std::vector<core::SweepRecord> history;
  Profile profile;

  /// Resilience outcome (kOk + empty log on the happy path). Any abort
  /// status also sets stop_reason = kFault; kRecovered keeps the normal
  /// stop reason — the run completed, the log just explains the bumps.
  core::SolveStatus status = core::SolveStatus::kOk;
  std::vector<core::RecoveryEvent> recovery_log;

  // Sweep counts by kind (PP statistics zero for the plain methods).
  int num_als_sweeps = 0;
  int num_pp_init = 0;
  int num_pp_approx = 0;

  // Simulated-parallel extras.
  mpsim::CostCounter comm_cost;
  double mean_sweep_seconds = 0.0;
  std::vector<Profile> sweep_profiles;
  /// Per-category critical path across ranks (see ParResult); empty for
  /// sequential runs — use `profile` there.
  Profile critical_path_profile;
  /// Per-rank nonzero load imbalance, max / mean (1.0 = perfectly even;
  /// 0.0 for dense or sequential runs, whose blocks report no nnz).
  double nnz_imbalance = 0.0;
  /// Ranks the run finished on (== execution.nprocs unless an elastic
  /// shrink removed some; 0 for sequential runs).
  int final_ranks = 0;
  /// nnz_imbalance of the repartitioned grid after the last shrink
  /// (0.0 when no shrink happened or the blocks report no nnz).
  double post_shrink_nnz_imbalance = 0.0;
};

}  // namespace parpp::solver
