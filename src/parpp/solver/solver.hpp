// Umbrella header for the parpp::solve() facade.
#pragma once

#include "parpp/solver/registry.hpp"
#include "parpp/solver/solve.hpp"
#include "parpp/solver/spec.hpp"
#include "parpp/solver/strings.hpp"
