// parpp::solve() — the single front door for every CP decomposition.
//
//   solver::SolverSpec spec;
//   spec.method = solver::Method::kPp;
//   spec.rank = 32;
//   auto report = parpp::solve(tensor, spec);
//
// Composes method x execution x engine with pluggable stopping, warm start
// and per-sweep observation; see spec.hpp for the axes and registry.hpp for
// how methods plug in. The legacy free functions (core::cp_als,
// core::pp_cp_als, core::nncp_hals, par::par_cp_als, par::par_pp_cp_als,
// par::par_nncp_hals) remain as thin shims over the same driver cores.
#pragma once

#include "parpp/solver/spec.hpp"

namespace parpp {

/// Runs the solve described by `spec` on any tensor source — dense or CSF
/// sparse storage, uniformly (TensorSource converts implicitly from both).
/// Sparse sources run the storage-agnostic cores through the CSF engine
/// with the no-densification fitness identity, for every method (als, pp,
/// nncp, pp-nncp) and both executions: simulated-parallel sparse runs
/// partition the nonzeros over the grid with dist::SparseBlockDist. Throws
/// parpp::error on an invalid spec (bad rank, warm-start shape mismatch,
/// bad grid) or an unsupported cell.
[[nodiscard]] solver::SolveReport solve(const solver::TensorSource& t,
                                        const solver::SolverSpec& spec);

/// Storage-typed conveniences (exact-match overloads for existing callers).
[[nodiscard]] solver::SolveReport solve(const tensor::DenseTensor& t,
                                        const solver::SolverSpec& spec);
[[nodiscard]] solver::SolveReport solve(const tensor::CsfTensor& t,
                                        const solver::SolverSpec& spec);

}  // namespace parpp
