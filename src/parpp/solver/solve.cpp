#include "parpp/solver/solve.hpp"

#include <cmath>
#include <utility>

#include "parpp/solver/registry.hpp"
#include "parpp/util/timer.hpp"

namespace parpp {

namespace {

using solver::SolveReport;
using solver::SolverSpec;
using solver::StopReason;

SolveReport from_cp_result(core::CpResult&& r) {
  SolveReport report;
  report.factors = std::move(r.factors);
  report.residual = r.residual;
  report.fitness = r.fitness;
  report.sweeps = r.sweeps;
  report.history = std::move(r.history);
  report.profile = r.profile;
  report.num_als_sweeps = r.num_als_sweeps;
  report.num_pp_init = r.num_pp_init;
  report.num_pp_approx = r.num_pp_approx;
  if (!report.history.empty() && report.sweeps > 0) {
    report.mean_sweep_seconds =
        report.history.back().seconds / static_cast<double>(report.sweeps);
  }
  return report;
}

SolveReport from_par_result(par::ParResult&& r) {
  SolveReport report;
  report.factors = std::move(r.factors);
  report.residual = r.residual;
  report.fitness = r.fitness;
  report.sweeps = r.sweeps;
  report.history = std::move(r.history);
  report.num_als_sweeps = r.num_als_sweeps;
  report.num_pp_init = r.num_pp_init;
  report.num_pp_approx = r.num_pp_approx;
  report.comm_cost = r.comm_cost;
  report.mean_sweep_seconds = r.mean_sweep_seconds;
  report.sweep_profiles = std::move(r.sweep_profiles);
  report.critical_path_profile = r.critical_path_profile;
  report.nnz_imbalance = r.nnz_imbalance;
  // The parallel cores report per-sweep slices of the slowest rank;
  // aggregate them so report.profile is populated for both executions.
  for (const Profile& p : report.sweep_profiles) report.profile.accumulate(p);
  return report;
}

}  // namespace

solver::SolveReport solve(const solver::TensorSource& t,
                          const solver::SolverSpec& spec) {
  PARPP_CHECK(spec.rank >= 1, "solve: rank must be positive");
  PARPP_CHECK(spec.execution.nprocs >= 1,
              "solve: execution.nprocs must be >= 1");
  PARPP_CHECK(spec.stopping.max_sweeps >= 1,
              "solve: stopping.max_sweeps must be >= 1");

  const solver::MethodEntry& entry = solver::method_entry(spec.method);
  if (t.is_sparse()) {
    // Every current method fills both sparse cells; the checks keep future
    // methods failing with a structured error instead of a null call.
    if (spec.execution.is_parallel()) {
      PARPP_CHECK(entry.sparse_parallel != nullptr, "solve: method ",
                  entry.name, " has no sparse simulated-parallel driver");
    } else {
      PARPP_CHECK(entry.sparse_sequential != nullptr, "solve: method ",
                  entry.name, " has no sparse sequential driver");
    }
  }

  core::DriverHooks hooks;
  if (!spec.initial_factors.empty())
    hooks.initial_factors = &spec.initial_factors;

  // One driver hook folds the facade-level stopping criteria and the
  // observer; when none is active the drivers run their legacy path with
  // zero callbacks (and, in parallel, zero extra collectives).
  StopReason abort_reason = StopReason::kConverged;
  bool aborted = false;
  WallTimer budget_timer;
  const bool needs_hook = spec.stopping.max_seconds > 0.0 ||
                          static_cast<bool>(spec.stopping.predicate) ||
                          static_cast<bool>(spec.observer);
  if (needs_hook) {
    hooks.on_sweep = [&](const core::SweepRecord& rec,
                         const std::vector<la::Matrix>& factors) {
      if (spec.stopping.max_seconds > 0.0 &&
          budget_timer.seconds() >= spec.stopping.max_seconds) {
        abort_reason = StopReason::kTimeBudget;
        aborted = true;
      } else if (spec.stopping.predicate && spec.stopping.predicate(rec)) {
        abort_reason = StopReason::kPredicate;
        aborted = true;
      } else if (spec.observer &&
                 spec.observer(rec, factors) ==
                     solver::ObserverAction::kStop) {
        abort_reason = StopReason::kObserver;
        aborted = true;
      }
      return !aborted;
    };
  }

  SolveReport report =
      t.is_sparse()
          ? (spec.execution.is_parallel()
                 ? from_par_result(
                       entry.sparse_parallel(t.sparse(), spec, hooks))
                 : from_cp_result(
                       entry.sparse_sequential(t.sparse(), spec, hooks)))
      : spec.execution.is_parallel()
          ? from_par_result(entry.parallel(t.dense(), spec, hooks))
          : from_cp_result(entry.sequential(t.dense(), spec, hooks));

  if (aborted) {
    report.stop_reason = abort_reason;
  } else if (report.sweeps < spec.stopping.max_sweeps) {
    report.stop_reason = StopReason::kConverged;
  } else {
    // The sweep budget was exhausted, but the run may have converged on
    // exactly the final permitted sweep: the drivers' criterion compares
    // the last two sweeps' fitness, which the history preserves.
    const std::size_t h = report.history.size();
    const bool converged_on_last =
        spec.stopping.fitness_tol > 0.0 && h >= 2 &&
        std::abs(report.history[h - 1].fitness -
                 report.history[h - 2].fitness) < spec.stopping.fitness_tol;
    report.stop_reason = converged_on_last ? StopReason::kConverged
                                           : StopReason::kMaxSweeps;
  }
  return report;
}

solver::SolveReport solve(const tensor::DenseTensor& t,
                          const solver::SolverSpec& spec) {
  return solve(solver::TensorSource(t), spec);
}

solver::SolveReport solve(const tensor::CsfTensor& t,
                          const solver::SolverSpec& spec) {
  return solve(solver::TensorSource(t), spec);
}

}  // namespace parpp
