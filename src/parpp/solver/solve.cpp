#include "parpp/solver/solve.hpp"

#include <cmath>
#include <fstream>
#include <utility>

#include "parpp/solver/registry.hpp"
#include "parpp/util/rng.hpp"
#include "parpp/util/serialize.hpp"
#include "parpp/util/timer.hpp"

namespace parpp {

namespace {

using solver::SolveReport;
using solver::SolverSpec;
using solver::StopReason;

SolveReport from_cp_result(core::CpResult&& r) {
  SolveReport report;
  report.factors = std::move(r.factors);
  report.residual = r.residual;
  report.fitness = r.fitness;
  report.sweeps = r.sweeps;
  report.history = std::move(r.history);
  report.profile = r.profile;
  report.num_als_sweeps = r.num_als_sweeps;
  report.num_pp_init = r.num_pp_init;
  report.num_pp_approx = r.num_pp_approx;
  report.status = r.status;
  report.recovery_log = std::move(r.recovery_log);
  if (!report.history.empty() && report.sweeps > 0) {
    report.mean_sweep_seconds =
        report.history.back().seconds / static_cast<double>(report.sweeps);
  }
  return report;
}

SolveReport from_par_result(par::ParResult&& r) {
  SolveReport report;
  report.factors = std::move(r.factors);
  report.residual = r.residual;
  report.fitness = r.fitness;
  report.sweeps = r.sweeps;
  report.history = std::move(r.history);
  report.num_als_sweeps = r.num_als_sweeps;
  report.num_pp_init = r.num_pp_init;
  report.num_pp_approx = r.num_pp_approx;
  report.status = r.status;
  report.recovery_log = std::move(r.recovery_log);
  report.comm_cost = r.comm_cost;
  report.mean_sweep_seconds = r.mean_sweep_seconds;
  report.sweep_profiles = std::move(r.sweep_profiles);
  report.critical_path_profile = r.critical_path_profile;
  report.nnz_imbalance = r.nnz_imbalance;
  report.final_ranks = r.final_ranks;
  report.post_shrink_nnz_imbalance = r.post_shrink_nnz_imbalance;
  // The parallel cores report per-sweep slices of the slowest rank;
  // aggregate them so report.profile is populated for both executions.
  for (const Profile& p : report.sweep_profiles) report.profile.accumulate(p);
  return report;
}

[[nodiscard]] bool aborted_status(core::SolveStatus s) {
  return s == core::SolveStatus::kNumericalAbort ||
         s == core::SolveStatus::kCommAbort;
}

}  // namespace

solver::SolveReport solve(const solver::TensorSource& t,
                          const solver::SolverSpec& spec) {
  PARPP_CHECK(spec.rank >= 1, "solve: rank must be positive");
  PARPP_CHECK(spec.execution.nprocs >= 1,
              "solve: execution.nprocs must be >= 1");
  PARPP_CHECK(spec.stopping.max_sweeps >= 1,
              "solve: stopping.max_sweeps must be >= 1");
  PARPP_CHECK(!spec.execution.fault.active() || spec.execution.is_parallel(),
              "solve: execution.fault injects communication faults, which "
              "need a parallel execution (nprocs > 1)");
  PARPP_CHECK(!spec.checkpoint.resume || !spec.checkpoint.path.empty(),
              "solve: checkpoint.resume needs checkpoint.path");

  // A zero tensor has no direction to fit: the fitness 1 - |T - X| / |T|
  // divides by its norm, so reject it up front with a structured error
  // instead of a NaN cascade deep in a driver.
  const double tensor_norm =
      t.is_sparse() ? t.sparse().frobenius_norm() : t.dense().frobenius_norm();
  PARPP_CHECK(std::isfinite(tensor_norm),
              "solve: tensor has a non-finite Frobenius norm");
  PARPP_CHECK(tensor_norm > 0.0,
              "solve: tensor is identically zero (Frobenius norm 0); CP "
              "fitness is undefined for a zero tensor");

  const solver::MethodEntry& entry = solver::method_entry(spec.method);
  if (t.is_sparse()) {
    // Every current method fills both sparse cells; the checks keep future
    // methods failing with a structured error instead of a null call.
    if (spec.execution.is_parallel()) {
      PARPP_CHECK(entry.sparse_parallel != nullptr, "solve: method ",
                  entry.name, " has no sparse simulated-parallel driver");
    } else {
      PARPP_CHECK(entry.sparse_sequential != nullptr, "solve: method ",
                  entry.name, " has no sparse sequential driver");
    }
  }

  // Resume: if the checkpoint file exists, warm-start from it and spend
  // only the remaining sweep budget; if it does not (the previous run died
  // before its first checkpoint) fall through to a cold start. `eff` is the
  // spec the drivers actually see.
  SolverSpec eff = spec;
  int base_sweeps = 0;
  core::DriverHooks hooks;
  core::DriverHooks::ResumeState resume_state;
  if (spec.checkpoint.resume &&
      std::ifstream(spec.checkpoint.path, std::ios::binary).good()) {
    io::CheckpointState ck = io::load_checkpoint_file(spec.checkpoint.path);
    if (ck.sweep >= spec.stopping.max_sweeps) {
      // The checkpoint already covers the whole budget; nothing to run.
      SolveReport done;
      done.factors = std::move(ck.factors);
      done.residual = ck.residual;
      done.fitness = ck.fitness;
      done.sweeps = ck.sweep;
      done.num_als_sweeps = ck.sweep;
      done.stop_reason =
          spec.stopping.fitness_tol > 0.0 &&
                  std::abs(ck.fitness - ck.prev_fitness) <
                      spec.stopping.fitness_tol
              ? StopReason::kConverged
              : StopReason::kMaxSweeps;
      return done;
    }
    base_sweeps = ck.sweep;
    eff.stopping.max_sweeps = spec.stopping.max_sweeps - ck.sweep;
    eff.initial_factors = std::move(ck.factors);
    resume_state.fitness = ck.fitness;
    resume_state.prev_fitness = ck.prev_fitness;
    hooks.resume = &resume_state;
  }
  if (!eff.initial_factors.empty())
    hooks.initial_factors = &eff.initial_factors;

  if (spec.checkpoint.saving()) {
    hooks.checkpoint_every = spec.checkpoint.every;
    hooks.on_checkpoint = [&](const std::vector<la::Matrix>& factors,
                              int sweep, double fitness,
                              double prev_fitness) {
      io::CheckpointState ck;
      ck.factors = factors;
      ck.sweep = base_sweeps + sweep;
      ck.fitness = fitness;
      ck.prev_fitness = prev_fitness;
      ck.residual = 1.0 - fitness;
      ck.seed = spec.seed;
      ck.rng_state = Rng(spec.seed).state();
      ck.written_ranks = spec.execution.nprocs;
      io::save_checkpoint_file(spec.checkpoint.path, ck);
    };
  }

  // One driver hook folds the facade-level stopping criteria and the
  // observer; when none is active the drivers run their legacy path with
  // zero callbacks (and, in parallel, zero extra collectives).
  StopReason abort_reason = StopReason::kConverged;
  bool aborted = false;
  WallTimer budget_timer;
  const bool needs_hook = spec.stopping.max_seconds > 0.0 ||
                          static_cast<bool>(spec.stopping.predicate) ||
                          static_cast<bool>(spec.observer);
  if (needs_hook) {
    hooks.on_sweep = [&](const core::SweepRecord& rec,
                         const std::vector<la::Matrix>& factors) {
      if (spec.stopping.max_seconds > 0.0 &&
          budget_timer.seconds() >= spec.stopping.max_seconds) {
        abort_reason = StopReason::kTimeBudget;
        aborted = true;
      } else if (spec.stopping.predicate && spec.stopping.predicate(rec)) {
        abort_reason = StopReason::kPredicate;
        aborted = true;
      } else if (spec.observer &&
                 spec.observer(rec, factors) ==
                     solver::ObserverAction::kStop) {
        abort_reason = StopReason::kObserver;
        aborted = true;
      }
      return !aborted;
    };
  }

  SolveReport report =
      t.is_sparse()
          ? (eff.execution.is_parallel()
                 ? from_par_result(
                       entry.sparse_parallel(t.sparse(), eff, hooks))
                 : from_cp_result(
                       entry.sparse_sequential(t.sparse(), eff, hooks)))
      : eff.execution.is_parallel()
          ? from_par_result(entry.parallel(t.dense(), eff, hooks))
          : from_cp_result(entry.sequential(t.dense(), eff, hooks));

  if (aborted_status(report.status)) {
    // A guardrail or communicator failure ended the run; the recovery log
    // carries the why, and the stop reason points the caller at it.
    report.stop_reason = StopReason::kFault;
  } else if (aborted) {
    report.stop_reason = abort_reason;
  } else if (report.sweeps < eff.stopping.max_sweeps) {
    report.stop_reason = StopReason::kConverged;
  } else {
    // The sweep budget was exhausted, but the run may have converged on
    // exactly the final permitted sweep: the drivers' criterion compares
    // the last two sweeps' fitness, which the history preserves.
    const std::size_t h = report.history.size();
    const bool converged_on_last =
        spec.stopping.fitness_tol > 0.0 && h >= 2 &&
        std::abs(report.history[h - 1].fitness -
                 report.history[h - 2].fitness) < spec.stopping.fitness_tol;
    report.stop_reason = converged_on_last ? StopReason::kConverged
                                           : StopReason::kMaxSweeps;
  }
  // A resumed run reports the cumulative sweep count, so resumed and
  // uninterrupted runs with the same budget report the same totals.
  report.sweeps += base_sweeps;
  report.num_als_sweeps += base_sweeps;
  return report;
}

solver::SolveReport solve(const tensor::DenseTensor& t,
                          const solver::SolverSpec& spec) {
  return solve(solver::TensorSource(t), spec);
}

solver::SolveReport solve(const tensor::CsfTensor& t,
                          const solver::SolverSpec& spec) {
  return solve(solver::TensorSource(t), spec);
}

}  // namespace parpp
