// Method registry: dispatches a SolverSpec to the existing driver cores.
//
// Each Method owns one MethodEntry with a sequential and a parallel runner.
// parpp::solve() looks the entry up and calls the runner matching the
// Execution axis — adding a CP variant means registering one entry here,
// not growing another free-function cross-product.
#pragma once

#include <string_view>
#include <vector>

#include "parpp/solver/spec.hpp"

namespace parpp::solver {

struct MethodEntry {
  Method method;
  std::string_view name;
  /// Runs the sequential driver core with the legacy options derived from
  /// the spec plus the facade's hooks.
  core::CpResult (*sequential)(const tensor::DenseTensor&, const SolverSpec&,
                               const core::DriverHooks&);
  /// Runs the simulated-parallel driver core on execution.nprocs ranks.
  par::ParResult (*parallel)(const tensor::DenseTensor&, const SolverSpec&,
                             const core::DriverHooks&);
  /// Runs the sequential core on CSF sparse storage; nullptr when the
  /// method has no sparse driver. solve() reports the gap as a structured
  /// error (parpp::error), never a crash.
  core::CpResult (*sparse_sequential)(const tensor::CsfTensor&,
                                      const SolverSpec&,
                                      const core::DriverHooks&) = nullptr;
  /// Runs the simulated-parallel driver on CSF sparse storage (nonzeros
  /// partitioned over the grid by dist::SparseBlockDist); nullptr when
  /// unsupported — solve() reports a structured error.
  par::ParResult (*sparse_parallel)(const tensor::CsfTensor&,
                                    const SolverSpec&,
                                    const core::DriverHooks&) = nullptr;
};

/// The entry for `method`; throws parpp::error for an unregistered method.
[[nodiscard]] const MethodEntry& method_entry(Method method);

/// All registered methods, in enum order (CLI help, bench sweeps).
[[nodiscard]] const std::vector<MethodEntry>& registered_methods();

/// Legacy option structs derived from a spec — shared by the registry
/// runners and exposed for tests that compare facade vs legacy drivers.
[[nodiscard]] core::CpOptions base_options(const SolverSpec& spec);
[[nodiscard]] par::ParOptions par_options(const SolverSpec& spec, int order);

}  // namespace parpp::solver
