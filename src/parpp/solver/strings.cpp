#include "parpp/solver/strings.hpp"

#include <cctype>
#include <string>

namespace parpp::solver {

namespace {

std::string lower(std::string_view s) {
  std::string out(s);
  for (char& c : out)
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

}  // namespace

std::string_view to_string(Method method) {
  switch (method) {
    case Method::kAls: return "als";
    case Method::kPp: return "pp";
    case Method::kNncpHals: return "nncp";
    case Method::kPpNncp: return "pp-nncp";
  }
  return "?";
}

std::string_view to_string(core::EngineKind kind) {
  switch (kind) {
    case core::EngineKind::kNaive: return "naive";
    case core::EngineKind::kDt: return "dt";
    case core::EngineKind::kMsdt: return "msdt";
    case core::EngineKind::kSparse: return "sparse";
  }
  return "?";
}

std::string_view to_string(la::Scalar scalar) {
  return la::scalar_name(scalar);
}

std::string_view to_string(tensor::CsfLayout layout) {
  switch (layout) {
    case tensor::CsfLayout::kAllModes: return "all-modes";
    case tensor::CsfLayout::kHalf: return "half";
  }
  return "?";
}

std::string_view to_string(par::SolveMode mode) {
  switch (mode) {
    case par::SolveMode::kDistributedRows: return "distributed-rows";
    case par::SolveMode::kReplicatedSequential: return "replicated-sequential";
  }
  return "?";
}

std::string_view to_string(dist::PartitionKind partition) {
  switch (partition) {
    case dist::PartitionKind::kUniformBlocks: return "uniform";
    case dist::PartitionKind::kBalancedNnz: return "balanced";
  }
  return "?";
}

std::string_view to_string(StopReason reason) {
  switch (reason) {
    case StopReason::kConverged: return "converged";
    case StopReason::kMaxSweeps: return "max-sweeps";
    case StopReason::kTimeBudget: return "time-budget";
    case StopReason::kPredicate: return "predicate";
    case StopReason::kObserver: return "observer";
    case StopReason::kFault: return "fault";
  }
  return "?";
}

std::string_view to_string(core::SolveStatus status) {
  switch (status) {
    case core::SolveStatus::kOk: return "ok";
    case core::SolveStatus::kRecovered: return "recovered";
    case core::SolveStatus::kRecoveredShrunk: return "recovered-shrunk";
    case core::SolveStatus::kNumericalAbort: return "numerical-abort";
    case core::SolveStatus::kCommAbort: return "comm-abort";
  }
  return "?";
}

std::string_view to_string(mpsim::FaultKind kind) {
  return mpsim::fault_kind_name(kind);
}

std::string_view to_string(par::ElasticMode mode) {
  switch (mode) {
    case par::ElasticMode::kOff: return "off";
    case par::ElasticMode::kShrink: return "shrink";
  }
  return "?";
}

std::optional<Method> method_from_string(std::string_view s) {
  const std::string t = lower(s);
  if (t == "als") return Method::kAls;
  if (t == "pp") return Method::kPp;
  if (t == "nncp") return Method::kNncpHals;
  if (t == "pp-nncp") return Method::kPpNncp;
  return std::nullopt;
}

std::optional<core::EngineKind> engine_from_string(std::string_view s) {
  const std::string t = lower(s);
  if (t == "naive") return core::EngineKind::kNaive;
  if (t == "dt") return core::EngineKind::kDt;
  if (t == "msdt") return core::EngineKind::kMsdt;
  if (t == "sparse") return core::EngineKind::kSparse;
  return std::nullopt;
}

std::optional<la::Scalar> scalar_from_string(std::string_view s) {
  const std::string t = lower(s);
  if (t == "fp64" || t == "f64" || t == "double") return la::Scalar::kF64;
  if (t == "fp32" || t == "f32" || t == "float") return la::Scalar::kF32;
  return std::nullopt;
}

std::optional<tensor::CsfLayout> csf_layout_from_string(std::string_view s) {
  const std::string t = lower(s);
  if (t == "all-modes" || t == "all") return tensor::CsfLayout::kAllModes;
  if (t == "half") return tensor::CsfLayout::kHalf;
  return std::nullopt;
}

std::optional<par::SolveMode> solve_mode_from_string(std::string_view s) {
  const std::string t = lower(s);
  if (t == "distributed-rows") return par::SolveMode::kDistributedRows;
  if (t == "replicated-sequential")
    return par::SolveMode::kReplicatedSequential;
  return std::nullopt;
}

std::optional<dist::PartitionKind> partition_from_string(std::string_view s) {
  const std::string t = lower(s);
  if (t == "uniform") return dist::PartitionKind::kUniformBlocks;
  if (t == "balanced") return dist::PartitionKind::kBalancedNnz;
  return std::nullopt;
}

std::optional<mpsim::FaultKind> fault_kind_from_string(std::string_view s) {
  const std::string t = lower(s);
  if (t == "none") return mpsim::FaultKind::kNone;
  if (t == "delay") return mpsim::FaultKind::kDelay;
  if (t == "timeout") return mpsim::FaultKind::kTimeout;
  if (t == "rank-abort") return mpsim::FaultKind::kRankAbort;
  if (t == "corruption") return mpsim::FaultKind::kCorruption;
  return std::nullopt;
}

std::optional<par::ElasticMode> elastic_mode_from_string(std::string_view s) {
  const std::string t = lower(s);
  if (t == "off") return par::ElasticMode::kOff;
  if (t == "shrink") return par::ElasticMode::kShrink;
  return std::nullopt;
}

}  // namespace parpp::solver
