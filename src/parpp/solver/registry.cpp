#include "parpp/solver/registry.hpp"

#include "parpp/core/pp_nncp.hpp"
#include "parpp/mpsim/grid.hpp"
#include "parpp/tensor/csf_tensor.hpp"
#include "parpp/par/par_nncp.hpp"
#include "parpp/par/par_pp.hpp"
#include "parpp/solver/strings.hpp"

namespace parpp::solver {

core::CpOptions base_options(const SolverSpec& spec) {
  core::CpOptions o;
  o.rank = spec.rank;
  o.max_sweeps = spec.stopping.max_sweeps;
  o.tol = spec.stopping.fitness_tol;
  o.seed = spec.seed;
  o.engine = spec.engine;
  o.engine_options = spec.engine_options;
  o.record_history = spec.record_history;
  return o;
}

par::ParOptions par_options(const SolverSpec& spec, int order) {
  par::ParOptions p;
  p.base = base_options(spec);
  p.grid_dims = spec.execution.grid_dims.empty()
                    ? mpsim::ProcessorGrid::balanced_dims(
                          spec.execution.nprocs, order)
                    : spec.execution.grid_dims;
  p.local_engine = spec.engine;
  p.engine_options = spec.engine_options;
  p.solve = spec.execution.solve_mode;
  p.threads_per_rank = spec.execution.threads_per_rank;
  p.partition = spec.execution.partition;
  p.fault = spec.execution.fault;
  p.comm_timeout_seconds = spec.execution.comm_timeout_seconds;
  p.elastic = spec.execution.elastic;
  return p;
}

namespace {

/// The PP methods need a tree engine (the operator build amortizes against
/// its cache); kNaive is promoted to kMsdt for BOTH executions, mirroring
/// what the parallel driver does internally, so the same spec resolves to
/// the same engine regardless of the Execution axis.
core::EngineKind pp_engine(const SolverSpec& spec) {
  return spec.engine == core::EngineKind::kNaive ? core::EngineKind::kMsdt
                                                 : spec.engine;
}

core::PpOptions pp_options(const SolverSpec& spec) {
  core::PpOptions pp = spec.pp;
  pp.regular_engine = pp_engine(spec);  // one engine axis for every method
  return pp;
}

core::NncpOptions nncp_options(const SolverSpec& spec) {
  core::NncpOptions nn = spec.nncp;
  nn.engine = spec.engine;
  return nn;
}

// --- sequential runners ---------------------------------------------------

core::CpResult run_als(const tensor::DenseTensor& t, const SolverSpec& spec,
                       const core::DriverHooks& hooks) {
  return core::cp_als(t, base_options(spec), hooks);
}

core::CpResult run_pp(const tensor::DenseTensor& t, const SolverSpec& spec,
                      const core::DriverHooks& hooks) {
  return core::pp_cp_als(t, base_options(spec), pp_options(spec), hooks);
}

core::CpResult run_nncp(const tensor::DenseTensor& t, const SolverSpec& spec,
                        const core::DriverHooks& hooks) {
  return core::nncp_hals(t, base_options(spec), nncp_options(spec), hooks);
}

core::CpResult run_pp_nncp(const tensor::DenseTensor& t,
                           const SolverSpec& spec,
                           const core::DriverHooks& hooks) {
  return core::pp_nncp_hals(t, base_options(spec), pp_options(spec),
                            nncp_options(spec), hooks);
}

// --- sparse sequential runners --------------------------------------------
// The engine axis collapses for sparse storage (every kind resolves to the
// CSF engine), so the runners reuse base_options unchanged.

core::CpResult run_sparse_als(const tensor::CsfTensor& t,
                              const SolverSpec& spec,
                              const core::DriverHooks& hooks) {
  return core::cp_als(t, base_options(spec), hooks);
}

core::CpResult run_sparse_nncp(const tensor::CsfTensor& t,
                               const SolverSpec& spec,
                               const core::DriverHooks& hooks) {
  return core::nncp_hals(t, base_options(spec), nncp_options(spec), hooks);
}

core::CpResult run_sparse_pp(const tensor::CsfTensor& t,
                             const SolverSpec& spec,
                             const core::DriverHooks& hooks) {
  return core::pp_cp_als(t, base_options(spec), pp_options(spec), hooks);
}

core::CpResult run_sparse_pp_nncp(const tensor::CsfTensor& t,
                                  const SolverSpec& spec,
                                  const core::DriverHooks& hooks) {
  return core::pp_nncp_hals(t, base_options(spec), pp_options(spec),
                            nncp_options(spec), hooks);
}

// --- parallel runners -----------------------------------------------------

par::ParResult run_par_als(const tensor::DenseTensor& t,
                           const SolverSpec& spec,
                           const core::DriverHooks& hooks) {
  return par::par_cp_als(t, spec.execution.nprocs,
                         par_options(spec, t.order()), hooks);
}

par::ParResult run_par_pp(const tensor::DenseTensor& t,
                          const SolverSpec& spec,
                          const core::DriverHooks& hooks) {
  par::ParPpOptions o;
  o.par = par_options(spec, t.order());
  o.par.local_engine = pp_engine(spec);
  o.pp = pp_options(spec);
  return par::par_pp_cp_als(t, spec.execution.nprocs, o, hooks);
}

par::ParResult run_par_nncp(const tensor::DenseTensor& t,
                            const SolverSpec& spec,
                            const core::DriverHooks& hooks) {
  par::ParNncpOptions o;
  o.par = par_options(spec, t.order());
  o.nn = nncp_options(spec);
  return par::par_nncp_hals(t, spec.execution.nprocs, o, hooks);
}

par::ParResult run_par_pp_nncp(const tensor::DenseTensor& t,
                               const SolverSpec& spec,
                               const core::DriverHooks& hooks) {
  par::ParPpNncpOptions o;
  o.par = par_options(spec, t.order());
  o.par.local_engine = pp_engine(spec);
  o.pp = pp_options(spec);
  o.nn = nncp_options(spec);
  return par::par_pp_nncp_hals(t, spec.execution.nprocs, o, hooks);
}

// --- sparse parallel runners ----------------------------------------------
// Identical driver cores to the dense parallel runners; the CsfTensor
// overloads partition the nonzeros with dist::SparseBlockDist and run the
// same Algorithm 3/4 loops over sparse local blocks.

par::ParResult run_par_sparse_als(const tensor::CsfTensor& t,
                                  const SolverSpec& spec,
                                  const core::DriverHooks& hooks) {
  return par::par_cp_als(t, spec.execution.nprocs,
                         par_options(spec, t.order()), hooks);
}

par::ParResult run_par_sparse_pp(const tensor::CsfTensor& t,
                                 const SolverSpec& spec,
                                 const core::DriverHooks& hooks) {
  par::ParPpOptions o;
  o.par = par_options(spec, t.order());
  o.par.local_engine = pp_engine(spec);
  o.pp = pp_options(spec);
  return par::par_pp_cp_als(t, spec.execution.nprocs, o, hooks);
}

par::ParResult run_par_sparse_nncp(const tensor::CsfTensor& t,
                                   const SolverSpec& spec,
                                   const core::DriverHooks& hooks) {
  par::ParNncpOptions o;
  o.par = par_options(spec, t.order());
  o.nn = nncp_options(spec);
  return par::par_nncp_hals(t, spec.execution.nprocs, o, hooks);
}

par::ParResult run_par_sparse_pp_nncp(const tensor::CsfTensor& t,
                                      const SolverSpec& spec,
                                      const core::DriverHooks& hooks) {
  par::ParPpNncpOptions o;
  o.par = par_options(spec, t.order());
  o.par.local_engine = pp_engine(spec);
  o.pp = pp_options(spec);
  o.nn = nncp_options(spec);
  return par::par_pp_nncp_hals(t, spec.execution.nprocs, o, hooks);
}

const std::vector<MethodEntry>& registry() {
  static const std::vector<MethodEntry> entries{
      {Method::kAls, to_string(Method::kAls), run_als, run_par_als,
       run_sparse_als, run_par_sparse_als},
      {Method::kPp, to_string(Method::kPp), run_pp, run_par_pp,
       run_sparse_pp, run_par_sparse_pp},
      {Method::kNncpHals, to_string(Method::kNncpHals), run_nncp,
       run_par_nncp, run_sparse_nncp, run_par_sparse_nncp},
      {Method::kPpNncp, to_string(Method::kPpNncp), run_pp_nncp,
       run_par_pp_nncp, run_sparse_pp_nncp, run_par_sparse_pp_nncp},
  };
  return entries;
}

}  // namespace

const MethodEntry& method_entry(Method method) {
  for (const MethodEntry& e : registry()) {
    if (e.method == method) return e;
  }
  PARPP_CHECK(false, "solve: unregistered method ",
              static_cast<int>(method));
  return registry().front();  // unreachable
}

const std::vector<MethodEntry>& registered_methods() { return registry(); }

}  // namespace parpp::solver
