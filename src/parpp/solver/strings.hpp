// Canonical string forms of the solver-axis enums — single source of truth
// for CLI flag parsing and bench JSON emission.
#pragma once

#include <optional>
#include <string_view>

#include "parpp/solver/spec.hpp"

namespace parpp::solver {

/// Canonical lowercase tokens: "als" | "pp" | "nncp" | "pp-nncp".
[[nodiscard]] std::string_view to_string(Method method);
/// "naive" | "dt" | "msdt" | "sparse" — the parse/emit tokens (CLI flags,
/// bench JSON). core::engine_kind_name stays the human-facing display form.
[[nodiscard]] std::string_view to_string(core::EngineKind kind);
/// "fp64" | "fp32" — the storage-scalar axis (EngineOptions::scalar).
[[nodiscard]] std::string_view to_string(la::Scalar scalar);
/// "all-modes" | "half" — CSF layout (tensor::CsfOptions::layout).
[[nodiscard]] std::string_view to_string(tensor::CsfLayout layout);
/// "distributed-rows" | "replicated-sequential".
[[nodiscard]] std::string_view to_string(par::SolveMode mode);
/// "uniform" | "balanced".
[[nodiscard]] std::string_view to_string(dist::PartitionKind partition);
/// "converged" | "max-sweeps" | "time-budget" | "predicate" | "observer" |
/// "fault".
[[nodiscard]] std::string_view to_string(StopReason reason);
/// "ok" | "recovered" | "recovered-shrunk" | "numerical-abort" |
/// "comm-abort".
[[nodiscard]] std::string_view to_string(core::SolveStatus status);
/// "off" | "shrink" — elastic fault recovery (Execution::elastic.mode).
[[nodiscard]] std::string_view to_string(par::ElasticMode mode);
/// "none" | "delay" | "timeout" | "rank-abort" | "corruption" (same tokens
/// as mpsim::fault_kind_name).
[[nodiscard]] std::string_view to_string(mpsim::FaultKind kind);

/// Case-insensitive parses of the tokens above; nullopt on unknown input.
[[nodiscard]] std::optional<Method> method_from_string(std::string_view s);
[[nodiscard]] std::optional<core::EngineKind> engine_from_string(
    std::string_view s);
[[nodiscard]] std::optional<la::Scalar> scalar_from_string(
    std::string_view s);
[[nodiscard]] std::optional<tensor::CsfLayout> csf_layout_from_string(
    std::string_view s);
[[nodiscard]] std::optional<par::SolveMode> solve_mode_from_string(
    std::string_view s);
[[nodiscard]] std::optional<dist::PartitionKind> partition_from_string(
    std::string_view s);
[[nodiscard]] std::optional<mpsim::FaultKind> fault_kind_from_string(
    std::string_view s);
[[nodiscard]] std::optional<par::ElasticMode> elastic_mode_from_string(
    std::string_view s);

}  // namespace parpp::solver
