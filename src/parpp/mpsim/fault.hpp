// Deterministic communication-fault injection for the thread-rank simulator.
//
// A FaultPlan describes scripted misbehaviour — slow ranks, unresponsive
// ranks, ranks that die, corrupted payloads — triggered at the Nth
// collective (of a chosen kind) that a chosen rank participates in. The
// per-rank FaultyComm decorator counts that rank's collectives in program
// order, so the trigger point is bit-reproducible across reruns: no clocks,
// no real randomness, just the plan's seed picking which payload element is
// corrupted. mpsim::run installs one FaultyComm per rank when the plan is
// active; Comm consults it at every collective (including split children,
// which inherit the pointer), so chaos runs exercise exactly the code paths
// a real MPI fault would hit.
//
// A plan may script a *sequence*: its head event can repeat (`repeat` firings
// spaced `period` matching collectives apart) and `then` appends further
// independent events, each with its own target rank and trigger counter.
// Sequences are what elastic-recovery tests need — shrink, then fail again.
#pragma once

#include <atomic>
#include <string>
#include <vector>

#include "parpp/mpsim/cost.hpp"
#include "parpp/util/common.hpp"

namespace parpp::mpsim {

namespace detail {
struct Group;
}

/// Thrown by collectives when the communicator group has been poisoned —
/// a peer timed out, aborted, or threw. Every surviving rank of the group
/// observes the same failure reason, so drivers can report it consistently.
class CommFailure : public parpp::error {
 public:
  using parpp::error::error;
};

enum class FaultKind : int {
  kNone = 0,
  kDelay,       ///< target rank sleeps before the collective, then proceeds
  kTimeout,     ///< target rank stalls past the barrier timeout (peers poison)
  kRankAbort,   ///< target rank poisons the group and dies at the collective
  kCorruption,  ///< one payload element becomes NaN on the target rank
};

[[nodiscard]] const char* fault_kind_name(FaultKind k);

/// One scripted fault. Deterministic: the trigger is a collective count
/// (1-based, counted per target rank across world and sub-communicators from
/// the start of the run, independently per event).
struct FaultEvent {
  FaultKind kind = FaultKind::kNone;
  /// World rank that misbehaves.
  int rank = 0;
  /// Fire at the Nth matching collective that rank participates in.
  int nth = 1;
  /// Restrict the trigger to one collective class; any class when false.
  bool filter_collective = false;
  Collective collective = Collective::kAllReduce;
  /// Sleep length for kDelay.
  double delay_seconds = 0.05;
  /// Total firings of this event (default one-shot).
  int repeat = 1;
  /// Matching collectives between consecutive firings; required >= 1 when
  /// repeat > 1. Firing k (0-based) triggers at match nth + k * period.
  int period = 1;
};

/// A scripted fault sequence. The struct doubles as its own head event (the
/// flat fields predate sequences and every existing call site sets them
/// directly); `then` appends further events fired by the same run.
struct FaultPlan {
  FaultKind kind = FaultKind::kNone;
  int rank = 0;
  int nth = 1;
  bool filter_collective = false;
  Collective collective = Collective::kAllReduce;
  double delay_seconds = 0.05;
  int repeat = 1;
  int period = 1;
  /// kCorruption only fires on payloads of at least this many words, so
  /// scalar control values (stop flags, health verdicts) are never the
  /// corrupted element — corrupting a control word on one rank would
  /// desynchronize collective call sequences across ranks, which is a
  /// different failure class than data corruption. Plan-global.
  index_t min_corrupt_words = 8;
  std::uint64_t seed = 0;
  /// Additional scripted events after the head.
  std::vector<FaultEvent> then;

  [[nodiscard]] bool active() const {
    if (kind != FaultKind::kNone) return true;
    for (const auto& e : then)
      if (e.kind != FaultKind::kNone) return true;
    return false;
  }

  /// The flat head event (when set) followed by `then`, kNone entries
  /// dropped.
  [[nodiscard]] std::vector<FaultEvent> events() const;
};

/// Per-rank fault engine the communicator consults at collective entry/exit.
/// Counts this rank's collectives deterministically; only an event's target
/// rank ever fires it. Notices (delay, corruption) are recorded so drivers
/// can surface even tolerated faults in their recovery logs.
class FaultyComm {
 public:
  FaultyComm(const FaultPlan& plan, int world_rank);

  /// Called on collective entry. `inout` is the in-place payload for
  /// allreduce/bcast (null for the gather-shaped collectives, whose own
  /// output is corrupted in after_collective instead). May sleep, corrupt,
  /// poison the group tree, or throw CommFailure (kRankAbort).
  void before_collective(Collective kind, detail::Group& group, double* inout,
                         index_t words);

  /// Called after the collective wrote `out` (past its final barrier, so
  /// mutating the local buffer needs no synchronization).
  void after_collective(Collective kind, double* out, index_t words);

  /// Injected-fault notices accumulated since the last take_* call. The
  /// drivers fold these into the per-sweep health flags so a recovery log
  /// entry exists even when the solve tolerates the fault numerically.
  [[nodiscard]] int take_delay_notices() { return delay_notices_.exchange(0); }
  [[nodiscard]] int take_corruption_notices() {
    return corruption_notices_.exchange(0);
  }

 private:
  struct EventState {
    FaultEvent ev;
    int matched = 0;  ///< matching collectives seen so far (this rank)
    int fired = 0;    ///< firings so far (capped at ev.repeat)
  };

  [[nodiscard]] bool matches(const FaultEvent& ev, Collective kind,
                             index_t words) const;
  void fire(const EventState& st, detail::Group& group, double* inout,
            index_t words);

  index_t min_corrupt_words_ = 8;
  std::uint64_t seed_ = 0;
  int world_rank_ = 0;
  std::vector<EventState> events_;
  bool corrupt_output_pending_ = false;
  std::atomic<int> delay_notices_{0};
  std::atomic<int> corruption_notices_{0};
};

}  // namespace parpp::mpsim
