// Deterministic communication-fault injection for the thread-rank simulator.
//
// A FaultPlan describes one misbehaviour — a slow rank, an unresponsive
// rank, a rank that dies, or a corrupted payload — triggered at the Nth
// collective (of a chosen kind) that a chosen rank participates in. The
// per-rank FaultyComm decorator counts that rank's collectives in program
// order, so the trigger point is bit-reproducible across reruns: no clocks,
// no real randomness, just the plan's seed picking which payload element is
// corrupted. mpsim::run installs one FaultyComm per rank when the plan is
// active; Comm consults it at every collective (including split children,
// which inherit the pointer), so chaos runs exercise exactly the code paths
// a real MPI fault would hit.
#pragma once

#include <atomic>
#include <string>

#include "parpp/mpsim/cost.hpp"
#include "parpp/util/common.hpp"

namespace parpp::mpsim {

namespace detail {
struct Group;
}

/// Thrown by collectives when the communicator group has been poisoned —
/// a peer timed out, aborted, or threw. Every surviving rank of the group
/// observes the same failure reason, so drivers can report it consistently.
class CommFailure : public parpp::error {
 public:
  using parpp::error::error;
};

enum class FaultKind : int {
  kNone = 0,
  kDelay,       ///< target rank sleeps before the collective, then proceeds
  kTimeout,     ///< target rank stalls past the barrier timeout (peers poison)
  kRankAbort,   ///< target rank poisons the group and dies at the collective
  kCorruption,  ///< one payload element becomes NaN on the target rank
};

[[nodiscard]] const char* fault_kind_name(FaultKind k);

/// One scripted fault. Deterministic: the trigger is a collective count, the
/// corrupted element index derives from `seed`.
struct FaultPlan {
  FaultKind kind = FaultKind::kNone;
  /// World rank that misbehaves.
  int rank = 0;
  /// Fire at the Nth matching collective that rank participates in
  /// (1-based, counted per rank across world and sub-communicators).
  int nth = 1;
  /// Restrict the trigger to one collective class; any class when false.
  bool filter_collective = false;
  Collective collective = Collective::kAllReduce;
  /// Sleep length for kDelay.
  double delay_seconds = 0.05;
  /// kCorruption only fires on payloads of at least this many words, so
  /// scalar control values (stop flags, health verdicts) are never the
  /// corrupted element — corrupting a control word on one rank would
  /// desynchronize collective call sequences across ranks, which is a
  /// different failure class than data corruption.
  index_t min_corrupt_words = 8;
  std::uint64_t seed = 0;

  [[nodiscard]] bool active() const { return kind != FaultKind::kNone; }
};

/// Per-rank fault engine the communicator consults at collective entry/exit.
/// Counts this rank's collectives deterministically; only the plan's target
/// rank ever fires. Notices (delay, corruption) are recorded so drivers can
/// surface even tolerated faults in their recovery logs.
class FaultyComm {
 public:
  FaultyComm(const FaultPlan& plan, int world_rank)
      : plan_(plan), world_rank_(world_rank) {}

  /// Called on collective entry. `inout` is the in-place payload for
  /// allreduce/bcast (null for the gather-shaped collectives, whose own
  /// output is corrupted in after_collective instead). May sleep, corrupt,
  /// poison the group tree, or throw CommFailure (kRankAbort).
  void before_collective(Collective kind, detail::Group& group, double* inout,
                         index_t words);

  /// Called after the collective wrote `out` (past its final barrier, so
  /// mutating the local buffer needs no synchronization).
  void after_collective(Collective kind, double* out, index_t words);

  /// Injected-fault notices accumulated since the last take_* call. The
  /// drivers fold these into the per-sweep health flags so a recovery log
  /// entry exists even when the solve tolerates the fault numerically.
  [[nodiscard]] int take_delay_notices() { return delay_notices_.exchange(0); }
  [[nodiscard]] int take_corruption_notices() {
    return corruption_notices_.exchange(0);
  }

 private:
  [[nodiscard]] bool matches(Collective kind, index_t words) const;

  FaultPlan plan_;
  int world_rank_ = 0;
  int matched_ = 0;      ///< matching collectives seen so far (this rank)
  bool fired_ = false;   ///< each plan fires exactly once
  bool corrupt_output_pending_ = false;
  std::atomic<int> delay_notices_{0};
  std::atomic<int> corruption_notices_{0};
};

}  // namespace parpp::mpsim
