// Simulator entry point: run an SPMD function over P thread-ranks.
#pragma once

#include <functional>
#include <vector>

#include "parpp/mpsim/comm.hpp"
#include "parpp/mpsim/fault.hpp"

namespace parpp::mpsim {

struct RunOptions {
  /// OpenMP threads each rank may use inside kernels. Default 1 so rank
  /// wall-times are comparable; raise it for few-rank runs.
  int threads_per_rank = 1;
  /// Injected communication fault for chaos runs (none by default).
  FaultPlan fault = {};
  /// Barrier timeout; <= 0 picks the default (60 s, or 2 s when a fault
  /// plan is active so timeout-class chaos tests fail fast).
  double comm_timeout_seconds = 0.0;
};

/// Result of a simulated run: per-rank cost tallies and kernel profiles.
struct RunResult {
  std::vector<CostCounter> costs;
  std::vector<Profile> profiles;

  [[nodiscard]] CostCounter max_cost() const;       ///< critical-path proxy
  [[nodiscard]] Profile max_profile() const;        ///< per-category max
};

/// Runs `body(comm)` on `nprocs` ranks (std::thread each) and returns the
/// per-rank accounting. A rank-body exception poisons the communicator tree
/// so the surviving ranks observe CommFailure at their next collective
/// instead of deadlocking; after all ranks join, the first non-CommFailure
/// exception (or, failing that, the first CommFailure) is rethrown. Bodies
/// that catch CommFailure themselves — the resilient drivers — therefore
/// return normally with their structured reports.
RunResult run(int nprocs, const std::function<void(Comm&)>& body,
              const RunOptions& options = {});

}  // namespace parpp::mpsim
