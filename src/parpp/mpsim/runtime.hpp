// Simulator entry point: run an SPMD function over P thread-ranks.
#pragma once

#include <functional>
#include <vector>

#include "parpp/mpsim/comm.hpp"
#include "parpp/mpsim/fault.hpp"

namespace parpp::mpsim {

struct RunOptions {
  /// OpenMP threads each rank may use inside kernels. Default 1 so rank
  /// wall-times are comparable; raise it for few-rank runs.
  int threads_per_rank = 1;
  /// Injected communication fault for chaos runs (none by default).
  FaultPlan fault = {};
  /// Barrier timeout; <= 0 picks the default (60 s, or 2 s when a fault
  /// plan is active so timeout-class chaos tests fail fast).
  double comm_timeout_seconds = 0.0;
  /// Bounded retry-with-backoff on the timed barrier: how many times a
  /// waiter extends its deadline (by timeout * 1.5 each) before declaring
  /// the group dead. Absorbs transient delay faults without poisoning;
  /// 0 restores the strict single-timeout behaviour.
  int barrier_retries = 1;
  /// Collective-matching verifier (see mpsim/verify.hpp): fingerprint every
  /// rendezvous (op kind, payload count, call-site tag, program-order
  /// sequence number) and cross-check the group before any payload moves,
  /// so a mismatched collective aborts deterministically with per-rank
  /// call-site diagnostics instead of deadlocking or corrupting buffers.
  /// On by default — the simulator is the test bed where matching bugs must
  /// surface before a real-MPI backend can inherit them; the check costs a
  /// small struct write plus a compare per collective, no extra barriers.
  /// The PARPP_VERIFY_COLLECTIVES environment variable (0/1) overrides.
  bool verify_collectives = true;
};

/// Result of a simulated run: per-rank cost tallies and kernel profiles.
struct RunResult {
  std::vector<CostCounter> costs;
  std::vector<Profile> profiles;

  [[nodiscard]] CostCounter max_cost() const;       ///< critical-path proxy
  [[nodiscard]] Profile max_profile() const;        ///< per-category max
};

/// Runs `body(comm)` on `nprocs` ranks (std::thread each) and returns the
/// per-rank accounting. A rank-body exception poisons the communicator tree
/// so the surviving ranks observe CommFailure at their next collective
/// instead of deadlocking; after all ranks join, the first non-CommFailure
/// exception (or, failing that, the first CommFailure) is rethrown. Bodies
/// that catch CommFailure themselves — the resilient drivers — therefore
/// return normally with their structured reports.
RunResult run(int nprocs, const std::function<void(Comm&)>& body,
              const RunOptions& options = {});

}  // namespace parpp::mpsim
