// Simulator entry point: run an SPMD function over P thread-ranks.
#pragma once

#include <functional>
#include <vector>

#include "parpp/mpsim/comm.hpp"

namespace parpp::mpsim {

struct RunOptions {
  /// OpenMP threads each rank may use inside kernels. Default 1 so rank
  /// wall-times are comparable; raise it for few-rank runs.
  int threads_per_rank = 1;
};

/// Result of a simulated run: per-rank cost tallies and kernel profiles.
struct RunResult {
  std::vector<CostCounter> costs;
  std::vector<Profile> profiles;

  [[nodiscard]] CostCounter max_cost() const;       ///< critical-path proxy
  [[nodiscard]] Profile max_profile() const;        ///< per-category max
};

/// Runs `body(comm)` on `nprocs` ranks (std::thread each) and returns the
/// per-rank accounting. Exceptions thrown by any rank are captured and the
/// first one is rethrown after all ranks join.
RunResult run(int nprocs, const std::function<void(Comm&)>& body,
              const RunOptions& options = {});

}  // namespace parpp::mpsim
