// Communicator abstraction over the thread-rank simulator.
//
// Substitutes for MPI (see DESIGN.md): each rank is a std::thread; the
// collectives below exchange data through shared staging pointers guarded by
// a group barrier, and additionally charge the BSP alpha-beta model costs
// that a fully-connected network implementation would incur (Sec. II-E).
#pragma once

#include <barrier>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "parpp/mpsim/cost.hpp"
#include "parpp/util/common.hpp"
#include "parpp/util/profile.hpp"

namespace parpp::mpsim {

namespace detail {

/// Shared state for one communicator group. All member ranks hold the same
/// Group through shared_ptr; staging slots are indexed by group rank.
struct Group {
  explicit Group(int size);

  int size;
  std::unique_ptr<std::barrier<>> barrier;
  std::vector<const double*> src;  ///< publish slots (one per rank)
  std::vector<double*> dst;        ///< destination slots where needed

  // split() coordination: rank 0 per color creates the child group.
  std::mutex split_mutex;
  std::map<int, std::shared_ptr<Group>> split_children;
  std::vector<std::pair<int, int>> split_keys;  ///< (color, key) per rank
  std::uint64_t split_generation = 0;
};

}  // namespace detail

/// Handle a rank uses to talk to its group. Cheap to copy.
class Comm {
 public:
  Comm() = default;
  Comm(std::shared_ptr<detail::Group> group, int rank, CostCounter* cost,
       Profile* profile);

  [[nodiscard]] int rank() const { return rank_; }
  [[nodiscard]] int size() const { return group_ ? group_->size : 1; }

  void barrier() const;

  /// All ranks contribute `count` words at `data`; on return every rank's
  /// buffer holds the element-wise sum. In place.
  void allreduce_sum(double* data, index_t count) const;

  /// Gathers `local_count` words from each rank into `out` (size
  /// local_count * size) in rank order. `in` may alias `out + rank*count`.
  void allgather(const double* in, index_t local_count, double* out) const;

  /// Element-wise sums the full `total_count`-word buffers across ranks and
  /// leaves chunk `rank` (of size total_count / size, which must divide) in
  /// `out`.
  void reduce_scatter_sum(const double* in, index_t total_count,
                          double* out) const;

  /// Broadcast `count` words from `root` to all ranks. In place.
  void bcast(double* data, index_t count, int root) const;

  /// Personalized all-to-all: rank r sends chunk q of `in` to rank q, which
  /// stores it at chunk r of `out`. Chunk size = count_per_pair words.
  void alltoall(const double* in, index_t count_per_pair, double* out) const;

  /// Collective split: every member must call with some (color, key); ranks
  /// sharing a color form a child communicator ordered by (key, old rank).
  [[nodiscard]] Comm split(int color, int key) const;

  [[nodiscard]] CostCounter* cost() const { return cost_; }
  [[nodiscard]] Profile* profile() const { return profile_; }

 private:
  std::shared_ptr<detail::Group> group_;
  int rank_ = 0;
  CostCounter* cost_ = nullptr;
  Profile* profile_ = nullptr;
};

}  // namespace parpp::mpsim
